// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation section, plus the ablation benches DESIGN.md lists.
// The benches run the same code paths as cmd/experiments at a reduced
// scale and report the experiment's quality metrics through
// b.ReportMetric, so `go test -bench=. -benchmem` regenerates every
// result (see EXPERIMENTS.md for the full-scale numbers).
package puffer_test

import (
	"testing"

	"puffer"
	"puffer/internal/baseline"
	"puffer/internal/experiments"
	"puffer/internal/router"
	"puffer/internal/synth"
)

// benchOptions keeps benchmark iterations affordable.
func benchOptions() experiments.Options {
	return experiments.Options{Scale: 6000, Seed: 1, PlaceIters: 250}
}

// BenchmarkTable1Stats regenerates Table I (benchmark statistics for all
// ten designs).
func BenchmarkTable1Stats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1(benchOptions())
		if len(rows) != 10 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// table2Bench runs one (design, placer) cell of Table II per iteration and
// reports the routed quality metrics.
func table2Bench(b *testing.B, design string, placer experiments.PlacerName) {
	b.Helper()
	o := benchOptions()
	p, err := synth.ProfileByName(design)
	if err != nil {
		b.Fatal(err)
	}
	var hof, vof, wl float64
	for i := 0; i < b.N; i++ {
		d := synth.Generate(p, o.Scale, o.Seed)
		gw, gh := puffer.CongGridFor(d)
		switch placer {
		case experiments.PUFFER:
			cfg := puffer.DefaultConfig()
			cfg.Place.MaxIters = o.PlaceIters
			if _, err := puffer.Run(d, cfg); err != nil {
				b.Fatal(err)
			}
		case experiments.Commercial:
			opts := baseline.DefaultCommercialOpts()
			opts.Place.MaxIters = o.PlaceIters
			if _, err := baseline.RunCommercial(d, opts, gw, gh); err != nil {
				b.Fatal(err)
			}
		case experiments.RePlAce:
			opts := baseline.DefaultRePlAceOpts()
			opts.Place.MaxIters = o.PlaceIters
			if _, err := baseline.RunRePlAce(d, opts, gw, gh); err != nil {
				b.Fatal(err)
			}
		}
		rr := puffer.Evaluate(d, router.DefaultConfig())
		hof, vof, wl = rr.HOF, rr.VOF, rr.WL
	}
	b.ReportMetric(hof, "HOF%")
	b.ReportMetric(vof, "VOF%")
	b.ReportMetric(wl, "WL")
}

// Table II benches: the stressed design under all three placers, and the
// calm CT_TOP under PUFFER (full per-design sweeps run via
// cmd/experiments -table2).
func BenchmarkTable2PUFFERMediaSubsys(b *testing.B) {
	table2Bench(b, "MEDIA_SUBSYS", experiments.PUFFER)
}

func BenchmarkTable2CommercialMediaSubsys(b *testing.B) {
	table2Bench(b, "MEDIA_SUBSYS", experiments.Commercial)
}

func BenchmarkTable2RePlAceMediaSubsys(b *testing.B) {
	table2Bench(b, "MEDIA_SUBSYS", experiments.RePlAce)
}

func BenchmarkTable2PUFFERCtTop(b *testing.B) {
	table2Bench(b, "CT_TOP", experiments.PUFFER)
}

// BenchmarkFig2Flow regenerates the algorithm-flow trace (Fig. 2).
func BenchmarkFig2Flow(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		out := experiments.Fig2(o)
		if len(out) == 0 {
			b.Fatal("empty trace")
		}
	}
}

// BenchmarkFig3Estimation regenerates the congestion-estimation demand
// maps (Fig. 3).
func BenchmarkFig3Estimation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := experiments.Fig3()
		if len(out) == 0 {
			b.Fatal("empty maps")
		}
	}
}

// BenchmarkFig4Features regenerates the feature-extraction illustration
// (Fig. 4).
func BenchmarkFig4Features(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := experiments.Fig4()
		if len(out) == 0 {
			b.Fatal("empty features")
		}
	}
}

// BenchmarkFig5Maps regenerates the routed congestion maps for all three
// placers (Fig. 5).
func BenchmarkFig5Maps(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		maps, err := experiments.Fig5(o)
		if err != nil {
			b.Fatal(err)
		}
		if len(maps) != 3 {
			b.Fatalf("maps = %d", len(maps))
		}
	}
}

// ablationBench runs one mechanism ablation per iteration and reports the
// on/off quality metrics.
func ablationBench(b *testing.B, fn func(experiments.Options) (experiments.AblationResult, error)) {
	b.Helper()
	o := benchOptions()
	var r experiments.AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = fn(o)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.MetricOn, "ovf_on%")
	b.ReportMetric(r.MetricOff, "ovf_off%")
}

// BenchmarkAblationFeatures: multi-feature vs local-only padding
// (Sec. III-B1 claim).
func BenchmarkAblationFeatures(b *testing.B) {
	ablationBench(b, experiments.AblationFeatures)
}

// BenchmarkAblationExpansion: detour-imitating demand expansion on/off
// (Sec. III-A3 claim).
func BenchmarkAblationExpansion(b *testing.B) {
	ablationBench(b, experiments.AblationExpansion)
}

// BenchmarkAblationRecycling: padding recycling on/off (Eq. 15 claim).
func BenchmarkAblationRecycling(b *testing.B) {
	ablationBench(b, experiments.AblationRecycling)
}

// BenchmarkAblationLegalPadding: white-space-assisted legalization on/off
// (Sec. III-D claim).
func BenchmarkAblationLegalPadding(b *testing.B) {
	ablationBench(b, experiments.AblationLegalPadding)
}

// BenchmarkAblationTPE: TPE strategy exploration vs random search with the
// same budget (Sec. III-C claim).
func BenchmarkAblationTPE(b *testing.B) {
	var r experiments.AblationResult
	for i := 0; i < b.N; i++ {
		r = experiments.AblationTPE(int64(i + 1))
	}
	b.ReportMetric(r.MetricOn, "tpe_best")
	b.ReportMetric(r.MetricOff, "rand_best")
}

// BenchmarkFullFlow measures the end-to-end PUFFER runtime on the largest
// profile at bench scale (the RT column of Table II).
func BenchmarkFullFlow(b *testing.B) {
	p, err := synth.ProfileByName("OPENC910")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := synth.Generate(p, 6000, 1)
		cfg := puffer.DefaultConfig()
		cfg.Place.MaxIters = 250
		if _, err := puffer.Run(d, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
