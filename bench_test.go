// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation section, plus the ablation benches DESIGN.md lists.
// The benches run the same code paths as cmd/experiments at a reduced
// scale and report the experiment's quality metrics through
// b.ReportMetric, so `go test -bench=. -benchmem` regenerates every
// result (see EXPERIMENTS.md for the full-scale numbers).
package puffer_test

import (
	"math"
	"math/rand"
	"testing"

	"puffer"
	"puffer/internal/baseline"
	"puffer/internal/cong"
	"puffer/internal/experiments"
	"puffer/internal/netlist"
	"puffer/internal/router"
	"puffer/internal/synth"
)

// benchOptions keeps benchmark iterations affordable.
func benchOptions() experiments.Options {
	return experiments.Options{Scale: 6000, Seed: 1, PlaceIters: 250}
}

// BenchmarkTable1Stats regenerates Table I (benchmark statistics for all
// ten designs).
func BenchmarkTable1Stats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1(benchOptions())
		if len(rows) != 10 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// table2Bench runs one (design, placer) cell of Table II per iteration and
// reports the routed quality metrics.
func table2Bench(b *testing.B, design string, placer experiments.PlacerName) {
	b.Helper()
	o := benchOptions()
	p, err := synth.ProfileByName(design)
	if err != nil {
		b.Fatal(err)
	}
	var hof, vof, wl float64
	for i := 0; i < b.N; i++ {
		d := synth.Generate(p, o.Scale, o.Seed)
		gw, gh := puffer.CongGridFor(d)
		switch placer {
		case experiments.PUFFER:
			cfg := puffer.DefaultConfig()
			cfg.Place.MaxIters = o.PlaceIters
			if _, err := puffer.Run(d, cfg); err != nil {
				b.Fatal(err)
			}
		case experiments.Commercial:
			opts := baseline.DefaultCommercialOpts()
			opts.Place.MaxIters = o.PlaceIters
			if _, err := baseline.RunCommercial(d, opts, gw, gh); err != nil {
				b.Fatal(err)
			}
		case experiments.RePlAce:
			opts := baseline.DefaultRePlAceOpts()
			opts.Place.MaxIters = o.PlaceIters
			if _, err := baseline.RunRePlAce(d, opts, gw, gh); err != nil {
				b.Fatal(err)
			}
		}
		rr := puffer.Evaluate(d, router.DefaultConfig())
		hof, vof, wl = rr.HOF, rr.VOF, rr.WL
	}
	b.ReportMetric(hof, "HOF%")
	b.ReportMetric(vof, "VOF%")
	b.ReportMetric(wl, "WL")
}

// Table II benches: the stressed design under all three placers, and the
// calm CT_TOP under PUFFER (full per-design sweeps run via
// cmd/experiments -table2).
func BenchmarkTable2PUFFERMediaSubsys(b *testing.B) {
	table2Bench(b, "MEDIA_SUBSYS", experiments.PUFFER)
}

func BenchmarkTable2CommercialMediaSubsys(b *testing.B) {
	table2Bench(b, "MEDIA_SUBSYS", experiments.Commercial)
}

func BenchmarkTable2RePlAceMediaSubsys(b *testing.B) {
	table2Bench(b, "MEDIA_SUBSYS", experiments.RePlAce)
}

func BenchmarkTable2PUFFERCtTop(b *testing.B) {
	table2Bench(b, "CT_TOP", experiments.PUFFER)
}

// BenchmarkFig2Flow regenerates the algorithm-flow trace (Fig. 2).
func BenchmarkFig2Flow(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		out := experiments.Fig2(o)
		if len(out) == 0 {
			b.Fatal("empty trace")
		}
	}
}

// BenchmarkFig3Estimation regenerates the congestion-estimation demand
// maps (Fig. 3).
func BenchmarkFig3Estimation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := experiments.Fig3()
		if len(out) == 0 {
			b.Fatal("empty maps")
		}
	}
}

// BenchmarkFig4Features regenerates the feature-extraction illustration
// (Fig. 4).
func BenchmarkFig4Features(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := experiments.Fig4()
		if len(out) == 0 {
			b.Fatal("empty features")
		}
	}
}

// BenchmarkFig5Maps regenerates the routed congestion maps for all three
// placers (Fig. 5).
func BenchmarkFig5Maps(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		maps, err := experiments.Fig5(o)
		if err != nil {
			b.Fatal(err)
		}
		if len(maps) != 3 {
			b.Fatalf("maps = %d", len(maps))
		}
	}
}

// ablationBench runs one mechanism ablation per iteration and reports the
// on/off quality metrics.
func ablationBench(b *testing.B, fn func(experiments.Options) (experiments.AblationResult, error)) {
	b.Helper()
	o := benchOptions()
	var r experiments.AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = fn(o)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.MetricOn, "ovf_on%")
	b.ReportMetric(r.MetricOff, "ovf_off%")
}

// BenchmarkAblationFeatures: multi-feature vs local-only padding
// (Sec. III-B1 claim).
func BenchmarkAblationFeatures(b *testing.B) {
	ablationBench(b, experiments.AblationFeatures)
}

// BenchmarkAblationExpansion: detour-imitating demand expansion on/off
// (Sec. III-A3 claim).
func BenchmarkAblationExpansion(b *testing.B) {
	ablationBench(b, experiments.AblationExpansion)
}

// BenchmarkAblationRecycling: padding recycling on/off (Eq. 15 claim).
func BenchmarkAblationRecycling(b *testing.B) {
	ablationBench(b, experiments.AblationRecycling)
}

// BenchmarkAblationLegalPadding: white-space-assisted legalization on/off
// (Sec. III-D claim).
func BenchmarkAblationLegalPadding(b *testing.B) {
	ablationBench(b, experiments.AblationLegalPadding)
}

// BenchmarkAblationTPE: TPE strategy exploration vs random search with the
// same budget (Sec. III-C claim).
func BenchmarkAblationTPE(b *testing.B) {
	var r experiments.AblationResult
	for i := 0; i < b.N; i++ {
		r = experiments.AblationTPE(int64(i + 1))
	}
	b.ReportMetric(r.MetricOn, "tpe_best")
	b.ReportMetric(r.MetricOff, "rand_best")
}

// nudgeCells displaces frac of the movable cells by up to two Gcells in
// each axis — the between-estimates churn of the placement loop, where
// most pins stay inside their Gcell.
func nudgeCells(rng *rand.Rand, d *netlist.Design, frac, dx, dy float64) {
	for ci := range d.Cells {
		c := &d.Cells[ci]
		if c.Fixed || rng.Float64() >= frac {
			continue
		}
		c.X = math.Min(d.Region.Hi.X-c.W, math.Max(d.Region.Lo.X, c.X+(rng.Float64()-0.5)*2*dx))
		c.Y = math.Min(d.Region.Hi.Y-c.H, math.Max(d.Region.Lo.Y, c.Y+(rng.Float64()-0.5)*2*dy))
	}
}

// estimateBench measures repeated congestion estimation under a
// placement-loop-shaped workload: a small fraction of cells moves between
// calls. scratch forces a full rebuild every call (the pre-incremental
// behaviour); otherwise the journal serves the clean nets.
func estimateBench(b *testing.B, scratch bool) {
	b.Helper()
	p, err := synth.ProfileByName("MEDIA_SUBSYS")
	if err != nil {
		b.Fatal(err)
	}
	d := synth.Generate(p, 6000, 1)
	gw, gh := puffer.CongGridFor(d)
	e := cong.NewEstimator(d, gw, gh, cong.DefaultParams())
	e.Estimate() // prime the journal outside the timed loop
	rng := rand.New(rand.NewSource(2))
	dx := 2 * d.Region.W() / float64(gw)
	dy := 2 * d.Region.H() / float64(gh)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		nudgeCells(rng, d, 0.01, dx, dy)
		b.StartTimer()
		if scratch {
			e.ForceRebuild()
		}
		e.Estimate()
	}
	b.StopTimer()
	st := e.Stats()
	b.ReportMetric(100*st.HitRate(), "hit%")
	b.ReportMetric(float64(st.LastDirtyNets), "dirty_nets")
}

// BenchmarkEstimateScratch is the from-scratch baseline for the
// incremental engine (BENCH_estimate.json compares the two).
func BenchmarkEstimateScratch(b *testing.B) { estimateBench(b, true) }

// BenchmarkEstimateIncremental exercises the journal path on the same
// workload; the acceptance bar is ≥2× over scratch with <10% of nets
// moving per call.
func BenchmarkEstimateIncremental(b *testing.B) { estimateBench(b, false) }

// BenchmarkFullFlow measures the end-to-end PUFFER runtime on the largest
// profile at bench scale (the RT column of Table II).
func BenchmarkFullFlow(b *testing.B) {
	p, err := synth.ProfileByName("OPENC910")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := synth.Generate(p, 6000, 1)
		cfg := puffer.DefaultConfig()
		cfg.Place.MaxIters = 250
		if _, err := puffer.Run(d, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
