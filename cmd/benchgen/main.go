// Command benchgen generates the synthetic industrial benchmark suite
// (the paper's Table I, scaled) and writes each design in Bookshelf format
// so it can be inspected or fed to other placement tools.
//
// Usage:
//
//	benchgen -dir bench/ -scale 800            # all ten designs
//	benchgen -dir bench/ -design BIT_COIN      # one design
package main

import (
	"flag"
	"fmt"
	"log"
	"path/filepath"

	"puffer"
	"puffer/internal/bookshelf"
	"puffer/internal/synth"
)

func main() {
	var (
		dir    = flag.String("dir", "bench", "output directory")
		design = flag.String("design", "", "single profile name (default: all ten)")
		scale  = flag.Int("scale", 800, "profile scale divisor")
		seed   = flag.Int64("seed", 1, "random seed")

		// Custom profile: set -cells to generate a bespoke design instead
		// of the Table-I suite.
		cells    = flag.Int("cells", 0, "custom profile: movable cell count (enables custom mode)")
		nets     = flag.Int("nets", 0, "custom profile: net count (default cells)")
		pins     = flag.Int("pins", 0, "custom profile: pin count (default 4x nets)")
		macros   = flag.Int("macros", 16, "custom profile: macro count")
		stress   = flag.Float64("stress", 0.5, "custom profile: routability stress in [0,1]")
		locality = flag.Float64("locality", 0.8, "custom profile: net locality in [0,1]")
		route    = flag.Bool("route", false, "also write an ISPD .route file per design")
	)
	flag.Parse()

	profiles := synth.Profiles
	switch {
	case *cells > 0:
		n := *nets
		if n == 0 {
			n = *cells
		}
		pc := *pins
		if pc == 0 {
			pc = 4 * n
		}
		profiles = []synth.Profile{{
			Name: "CUSTOM", Macros: *macros,
			Cells: *cells, Nets: n, Pins: pc,
			Stress: *stress, Locality: *locality, Util: 0.68,
		}}
		*scale = 1
	case *design != "":
		p, err := synth.ProfileByName(*design)
		if err != nil {
			log.Fatal(err)
		}
		profiles = []synth.Profile{p}
	}
	for _, p := range profiles {
		d := synth.Generate(p, *scale, *seed)
		s := d.Stats()
		auxPath, err := bookshelf.Write(d, *dir, p.Name)
		if err != nil {
			log.Fatalf("%s: %v", p.Name, err)
		}
		if *route {
			gw, gh := puffer.CongGridFor(d)
			rp := filepath.Join(*dir, p.Name+".route")
			if err := bookshelf.WriteRoute(d, rp, gw, gh); err != nil {
				log.Fatalf("%s: %v", p.Name, err)
			}
		}
		fmt.Printf("%-16s macros=%-4d cells=%-6d nets=%-6d pins=%-7d -> %s\n",
			p.Name, s.Macros, s.Cells, s.Nets, s.Pins, auxPath)
	}
}
