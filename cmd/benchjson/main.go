// Command benchjson converts `go test -bench` output into a JSON report.
// CI uses it to publish the incremental-estimator comparison as
// BENCH_estimate.json: when both BenchmarkEstimateScratch and
// BenchmarkEstimateIncremental appear in the input, the report includes
// their speedup ratio.
//
// -ratio A/B adds a named ns/op ratio of two benchmarks in the input to
// the report; CI uses it to publish the telemetry-overhead factor
// (PlaceIterObsEnabled over PlaceIterObsDisabled) in BENCH_obs.json, the
// GP serial/parallel speedup in BENCH_gp.json, and the spectral-solver
// speedup (DensitySolveOld over DensitySolveNew, at 256² and 512²) in
// BENCH_density.json. The flag repeats.
//
// Usage:
//
//	go test -run=NONE -bench='BenchmarkEstimate' -benchtime=50x . |
//	    go run ./cmd/benchjson -out BENCH_estimate.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int                `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Report is the emitted JSON document.
type Report struct {
	CPU        string      `json:"cpu,omitempty"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	// SpeedupIncremental is scratch ns/op divided by incremental ns/op
	// when both estimator benches are present (acceptance bar: >= 2).
	SpeedupIncremental float64 `json:"speedup_incremental,omitempty"`
	// Ratios holds the -ratio A/B results, keyed "A/B": ns/op of A
	// divided by ns/op of B.
	Ratios map[string]float64 `json:"ratios,omitempty"`
}

// ratioFlags collects repeated -ratio A/B values.
type ratioFlags []string

func (r *ratioFlags) String() string { return strings.Join(*r, ",") }

func (r *ratioFlags) Set(v string) error {
	if a, b, ok := strings.Cut(v, "/"); !ok || a == "" || b == "" {
		return fmt.Errorf("want A/B, got %q", v)
	}
	*r = append(*r, v)
	return nil
}

func main() {
	out := flag.String("out", "BENCH_estimate.json", "output JSON file (- for stdout)")
	var ratios ratioFlags
	flag.Var(&ratios, "ratio", "emit ns/op ratio of two benchmarks as A/B (repeatable)")
	flag.Parse()

	rep, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		log.Fatal(err)
	}
	if len(rep.Benchmarks) == 0 {
		log.Fatal("benchjson: no benchmark lines in input")
	}

	var scratch, incr float64
	for _, b := range rep.Benchmarks {
		switch b.Name {
		case "EstimateScratch":
			scratch = b.NsPerOp
		case "EstimateIncremental":
			incr = b.NsPerOp
		}
	}
	if scratch > 0 && incr > 0 {
		rep.SpeedupIncremental = scratch / incr
	}

	nsPerOp := make(map[string]float64, len(rep.Benchmarks))
	for _, b := range rep.Benchmarks {
		nsPerOp[b.Name] = b.NsPerOp
	}
	for _, r := range ratios {
		a, b, _ := strings.Cut(r, "/")
		na, nb := nsPerOp[a], nsPerOp[b]
		if na <= 0 || nb <= 0 {
			log.Fatalf("benchjson: -ratio %s: benchmark %q or %q missing from input", r, a, b)
		}
		if rep.Ratios == nil {
			rep.Ratios = make(map[string]float64, len(ratios))
		}
		rep.Ratios[r] = na / nb
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d benchmarks", *out, len(rep.Benchmarks))
	if rep.SpeedupIncremental > 0 {
		fmt.Printf(", incremental speedup %.2fx", rep.SpeedupIncremental)
	}
	for _, r := range ratios {
		fmt.Printf(", %s=%.3f", r, rep.Ratios[r])
	}
	fmt.Println(")")
}

// parse consumes `go test -bench` output: header lines (goos/goarch/cpu)
// and result lines of the form
//
//	BenchmarkName[-P]  N  V ns/op  [V unit]...
func parse(sc *bufio.Scanner) (*Report, error) {
	rep := &Report{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 {
			continue
		}
		name := strings.TrimPrefix(f[0], "Benchmark")
		// Strip the -GOMAXPROCS suffix, keeping dashes inside the name.
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.Atoi(f[1])
		if err != nil {
			continue
		}
		b := Benchmark{Name: name, Iterations: iters, Metrics: map[string]float64{}}
		// Remaining fields come in (value, unit) pairs.
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad value %q in %q", f[i], line)
			}
			if f[i+1] == "ns/op" {
				b.NsPerOp = v
			} else {
				b.Metrics[f[i+1]] = v
			}
		}
		if len(b.Metrics) == 0 {
			b.Metrics = nil
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}
