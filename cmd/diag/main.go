// Command diag is a development harness: it compares flow variants on a
// few profiles and prints HOF/VOF/WL/RT side by side. It is the tool used
// to calibrate the baseline profiles against the paper's Table II shape.
package main

import (
	"flag"
	"fmt"
	"time"

	"puffer"
	"puffer/internal/baseline"
	"puffer/internal/router"
	"puffer/internal/synth"
)

func main() {
	scale := flag.Int("scale", 3000, "profile scale")
	seed := flag.Int64("seed", 1, "seed")
	flag.Parse()

	designs := []string{"CT_TOP", "MEDIA_SUBSYS", "A53_ADB_WRAP", "OR1200"}
	variants := []string{"plain", "puffer", "commercial", "replace"}

	for _, dname := range designs {
		p, _ := synth.ProfileByName(dname)
		for _, v := range variants {
			d := synth.Generate(p, *scale, *seed)
			gw, gh := puffer.CongGridFor(d)
			start := time.Now()
			var err error
			switch v {
			case "plain": // wirelength-only flow, no routability optimizer
				cfg := puffer.DefaultConfig()
				cfg.Place.Seed = *seed
				cfg.Strategy.MaxIters = 0
				cfg.Legal.InheritPadding = false
				cfg.DP.PreservePadding = false
				cfg.DP.Passes = 2
				_, err = puffer.Run(d, cfg)
			case "puffer":
				cfg := puffer.DefaultConfig()
				cfg.Place.Seed = *seed
				_, err = puffer.Run(d, cfg)
			case "commercial":
				opts := baseline.DefaultCommercialOpts()
				opts.Place.Seed = *seed
				_, err = baseline.RunCommercial(d, opts, gw, gh)
			case "replace":
				opts := baseline.DefaultRePlAceOpts()
				opts.Place.Seed = *seed
				_, err = baseline.RunRePlAce(d, opts, gw, gh)
			}
			rt := time.Since(start)
			if err != nil {
				fmt.Printf("%-14s %-12s ERROR %v\n", dname, v, err)
				continue
			}
			rr := puffer.Evaluate(d, router.DefaultConfig())
			fmt.Printf("%-14s %-12s HOF=%6.2f VOF=%6.2f WL=%7.0f RT=%6.0fms\n",
				dname, v, rr.HOF, rr.VOF, rr.WL, float64(rt.Milliseconds()))
		}
		fmt.Println()
	}
}
