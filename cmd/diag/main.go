// Command diag is a development harness with two modes:
//
//   - default: compare flow variants on a few profiles and print
//     HOF/VOF/WL/RT side by side — the tool used to calibrate the baseline
//     profiles against the paper's Table II shape;
//   - -report run.json: summarize a structured run report written by
//     cmd/puffer -report (stage statistics, recorded metric series, final
//     quality numbers), validating that the artifact round-trips;
//   - -ckpt checkpoint.json: validate and summarize a stage-boundary
//     checkpoint (cmd/puffer -checkpoint, or a pufferd job spool) — stage
//     name,
//     cell/net counts, and the bounding box of the stored positions;
//   - -session snapshot.json: validate and summarize a spooled ECO session
//     snapshot (a pufferd session spool) — design hash, delta count,
//     congestion-engine statistics, last HPWL/overflow, and the warm grid;
//   - -ops http://addr: fetch and render a running pufferd's operational
//     snapshot (/api/v1/ops) — queue pressure, latency histogram digests,
//     and live SLO status;
//   - -cas dir: inspect a coordinator's content-addressed store — blobs
//     with sizes and refcounts, cached results with their digest triples,
//     and on-disk orphans; -cas-gc additionally lists what a GC pass would
//     delete (dry run), -cas-gc-apply deletes it;
//   - -explore state.json: validate and render a distributed exploration's
//     explore-state checkpoint (a coordinator job's explore-state.json
//     artifact) — the trial table with schedule identities and outcomes,
//     the merged parameter ranges, the best assignment, and the resume
//     provenance (attempt count, cache hits, replays).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"puffer"
	"puffer/internal/baseline"
	"puffer/internal/cas"
	"puffer/internal/eco"
	"puffer/internal/obs"
	"puffer/internal/router"
	"puffer/internal/synth"
	"puffer/internal/xfarm"
	"puffer/pipeline"
)

func main() {
	scale := flag.Int("scale", 3000, "profile scale")
	seed := flag.Int64("seed", 1, "seed")
	reportPath := flag.String("report", "", "summarize this run report (JSON from cmd/puffer -report) instead of running comparisons")
	ckptPath := flag.String("ckpt", "", "validate and summarize this pipeline checkpoint instead of running comparisons")
	sessionPath := flag.String("session", "", "validate and summarize this ECO session snapshot instead of running comparisons")
	opsAddr := flag.String("ops", "", "render the operational snapshot of the pufferd at this base URL instead of running comparisons")
	casDir := flag.String("cas", "", "inspect the content-addressed store rooted at this directory instead of running comparisons")
	casGC := flag.Bool("cas-gc", false, "with -cas: list the blobs a GC pass would delete (dry run)")
	casGCApply := flag.Bool("cas-gc-apply", false, "with -cas: actually delete unreferenced blobs")
	explorePath := flag.String("explore", "", "validate and summarize this explore-state checkpoint instead of running comparisons")
	flag.Parse()

	if *explorePath != "" {
		if err := summarizeExploreState(*explorePath); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *casDir != "" {
		if err := summarizeCAS(*casDir, *casGC, *casGCApply); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *opsAddr != "" {
		if err := summarizeOps(*opsAddr); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *reportPath != "" {
		if err := summarizeReport(*reportPath); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *ckptPath != "" {
		if err := summarizeCheckpoint(*ckptPath); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *sessionPath != "" {
		if err := summarizeSession(*sessionPath); err != nil {
			log.Fatal(err)
		}
		return
	}

	designs := []string{"CT_TOP", "MEDIA_SUBSYS", "A53_ADB_WRAP", "OR1200"}
	variants := []string{"plain", "puffer", "commercial", "replace"}

	for _, dname := range designs {
		p, _ := synth.ProfileByName(dname)
		for _, v := range variants {
			d := synth.Generate(p, *scale, *seed)
			gw, gh := puffer.CongGridFor(d)
			start := time.Now()
			var err error
			switch v {
			case "plain": // wirelength-only flow, no routability optimizer
				cfg := puffer.DefaultConfig()
				cfg.Place.Seed = *seed
				cfg.Strategy.MaxIters = 0
				cfg.Legal.InheritPadding = false
				cfg.DP.PreservePadding = false
				cfg.DP.Passes = 2
				_, err = puffer.Run(d, cfg)
			case "puffer":
				cfg := puffer.DefaultConfig()
				cfg.Place.Seed = *seed
				_, err = puffer.Run(d, cfg)
			case "commercial":
				opts := baseline.DefaultCommercialOpts()
				opts.Place.Seed = *seed
				_, err = baseline.RunCommercial(d, opts, gw, gh)
			case "replace":
				opts := baseline.DefaultRePlAceOpts()
				opts.Place.Seed = *seed
				_, err = baseline.RunRePlAce(d, opts, gw, gh)
			}
			rt := time.Since(start)
			if err != nil {
				fmt.Printf("%-14s %-12s ERROR %v\n", dname, v, err)
				continue
			}
			rr := puffer.Evaluate(d, router.DefaultConfig())
			fmt.Printf("%-14s %-12s HOF=%6.2f VOF=%6.2f WL=%7.0f RT=%6.0fms\n",
				dname, v, rr.HOF, rr.VOF, rr.WL, float64(rt.Milliseconds()))
		}
		fmt.Println()
	}
}

// summarizeReport loads, prints, and round-trip-validates a run report.
func summarizeReport(path string) error {
	rep, err := obs.LoadReport(path)
	if err != nil {
		return err
	}
	fmt.Printf("run report %s (%s)\n", path, rep.Schema)
	fmt.Printf("design %s: %d cells, %d nets, seed=%d\n", rep.Design, rep.Cells, rep.Nets, rep.Seed)

	// Stage table, through the same fixed-format writer cmd/puffer -stats
	// uses (StageReport carries no estimator type after decoding, so the
	// estimator detail lines are intentionally absent here).
	stages := make([]pipeline.StageStats, len(rep.Stages))
	for i, sr := range rep.Stages {
		stages[i] = pipeline.StageStats{
			Name:        sr.Name,
			Wall:        time.Duration(sr.WallNs),
			Iters:       sr.Iters,
			AllocsDelta: sr.AllocsDelta,
		}
	}
	pipeline.WriteStageStats(os.Stdout, stages)

	if n := len(rep.Metrics.Counters); n > 0 {
		names := sortedKeys(rep.Metrics.Counters)
		fmt.Printf("counters (%d):\n", n)
		for _, k := range names {
			fmt.Printf("  %-24s %d\n", k, rep.Metrics.Counters[k])
		}
	}
	if n := len(rep.Metrics.Gauges); n > 0 {
		names := sortedKeys(rep.Metrics.Gauges)
		fmt.Printf("gauges (%d):\n", n)
		for _, k := range names {
			fmt.Printf("  %-24s %g\n", k, rep.Metrics.Gauges[k])
		}
	}
	if n := len(rep.Metrics.Series); n > 0 {
		names := sortedKeys(rep.Metrics.Series)
		fmt.Printf("series (%d):\n", n)
		for _, k := range names {
			ss := rep.Metrics.Series[k]
			if len(ss) == 0 {
				fmt.Printf("  %-24s empty\n", k)
				continue
			}
			fmt.Printf("  %-24s %d samples, first=%g last=%g\n",
				k, len(ss), ss[0].Value, ss[len(ss)-1].Value)
		}
	}
	if len(rep.Final) > 0 {
		names := sortedKeys(rep.Final)
		fmt.Println("final:")
		for _, k := range names {
			fmt.Printf("  %-24s %g\n", k, rep.Final[k])
		}
	}
	fmt.Printf("stage log: %d lines\n", len(rep.StageLog))

	// Round trip: re-save and reload; a report cmd/diag cannot reproduce
	// losslessly is a bug in the schema.
	tmp := filepath.Join(os.TempDir(), fmt.Sprintf("diag-report-%d.json", os.Getpid()))
	defer os.Remove(tmp)
	if err := rep.Save(tmp); err != nil {
		return fmt.Errorf("round trip save: %w", err)
	}
	again, err := obs.LoadReport(tmp)
	if err != nil {
		return fmt.Errorf("round trip load: %w", err)
	}
	if again.Design != rep.Design || len(again.Stages) != len(rep.Stages) ||
		len(again.Metrics.Series) != len(rep.Metrics.Series) {
		return fmt.Errorf("round trip mismatch: %s/%d stages vs %s/%d stages",
			again.Design, len(again.Stages), rep.Design, len(rep.Stages))
	}
	fmt.Println("round trip: ok")
	return nil
}

// summarizeCheckpoint validates a stage-boundary checkpoint file and
// prints what a resume would see: stage, counts, padding totals, and the
// bounding box of the stored positions. LoadCheckpoint already rejects
// empty/truncated/foreign files, so reaching the summary means the file
// is a usable resume point for a design with matching counts.
func summarizeCheckpoint(path string) error {
	cp, err := pipeline.LoadCheckpoint(path)
	if err != nil {
		return err
	}
	fmt.Printf("checkpoint %s (%s)\n", path, cp.Format)
	fmt.Printf("stage: %s\n", cp.Stage)
	fmt.Printf("cells: %d  nets: %d\n", len(cp.X), len(cp.NetWeight))
	if len(cp.X) > 0 {
		minX, maxX := cp.X[0], cp.X[0]
		minY, maxY := cp.Y[0], cp.Y[0]
		var padded int
		var padTotal float64
		for i := range cp.X {
			minX = math.Min(minX, cp.X[i])
			maxX = math.Max(maxX, cp.X[i])
			minY = math.Min(minY, cp.Y[i])
			maxY = math.Max(maxY, cp.Y[i])
			if cp.PadW[i] > 0 {
				padded++
				padTotal += cp.PadW[i]
			}
		}
		fmt.Printf("bbox: [%.2f, %.2f] x [%.2f, %.2f]\n", minX, maxX, minY, maxY)
		fmt.Printf("padded cells: %d (total pad width %.2f)\n", padded, padTotal)
	}
	var reweighted int
	for _, w := range cp.NetWeight {
		if w != 1 {
			reweighted++
		}
	}
	fmt.Printf("reweighted nets: %d\n", reweighted)
	return nil
}

// summarizeSession validates a spooled ECO session snapshot and prints
// what a rehydrated session would see: the design identity hash, how far
// the delta chain has come, the congestion-engine statistics of the last
// run, and the embedded placement checkpoint's headline numbers.
func summarizeSession(path string) error {
	sn, err := eco.LoadSnapshot(path)
	if err != nil {
		return err
	}
	fmt.Printf("session snapshot %s (%s)\n", path, sn.Format)
	fmt.Printf("design hash: %s\n", sn.DesignHash)
	fmt.Printf("deltas applied: %d\n", sn.Deltas)
	fmt.Printf("last hpwl: %.2f  last overflow: %.4f\n", sn.LastHPWL, sn.LastOverflow)
	fmt.Printf("grid: level %d", sn.GridLevel)
	if sn.GridM > 0 {
		fmt.Printf(", warm density grid %dx%d", sn.GridM, sn.GridN)
	}
	fmt.Println()
	if sn.EstCalls > 0 {
		fmt.Printf("estimator: %d calls, %d full rebuilds, %d dirty nets last, hit rate %.2f\n",
			sn.EstCalls, sn.EstRebuilds, sn.EstDirtyNets, sn.EstHitRate)
	}
	cp := sn.Checkpoint
	fmt.Printf("checkpoint: stage %s, %d cells, %d nets\n", cp.Stage, len(cp.X), len(cp.NetWeight))
	var padded int
	var padTotal float64
	for i := range cp.X {
		if cp.PadW[i] > 0 {
			padded++
			padTotal += cp.PadW[i]
		}
	}
	fmt.Printf("padded cells: %d (total pad width %.2f)\n", padded, padTotal)
	fmt.Printf("padding history: iter %d, %d trigger times, last util %.4f\n",
		sn.Padding.Iter, len(sn.Padding.PadTimes), sn.Padding.LastUtil)
	return nil
}

// summarizeOps fetches a running daemon's /api/v1/ops document and prints
// the operator digest: lifecycle, queue pressure, the service latency
// histograms, and the live SLO evaluation. It is the offline-tool twin of
// `pufferctl top`, so a machine with only the diag binary can still read a
// daemon's health.
func summarizeOps(base string) error {
	resp, err := http.Get(strings.TrimSuffix(base, "/") + "/api/v1/ops")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("ops endpoint: %s", resp.Status)
	}
	var ops struct {
		Status        string           `json:"status"`
		UptimeSeconds float64          `json:"uptime_seconds"`
		QueueDepth    int              `json:"queue_depth"`
		QueueCap      int              `json:"queue_cap"`
		Workers       int              `json:"workers"`
		ActiveJobs    int              `json:"active_jobs"`
		Sessions      map[string]int   `json:"sessions"`
		Counters      map[string]int64 `json:"counters"`
		Histograms    map[string]struct {
			Count uint64  `json:"count"`
			Mean  float64 `json:"mean_seconds"`
			P50   float64 `json:"p50_seconds"`
			P95   float64 `json:"p95_seconds"`
			P99   float64 `json:"p99_seconds"`
		} `json:"histograms"`
		SLO []struct {
			Name      string  `json:"name"`
			Quantile  float64 `json:"quantile"`
			Value     float64 `json:"value_seconds"`
			Bound     float64 `json:"bound_seconds"`
			Window    uint64  `json:"window_count"`
			Evaluable bool    `json:"evaluable"`
			OK        bool    `json:"ok"`
			Burning   bool    `json:"burning"`
		} `json:"slo"`
		SLOHealthy bool `json:"slo_healthy"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ops); err != nil {
		return fmt.Errorf("decode ops: %w", err)
	}
	fmt.Printf("pufferd %s: up %s, queue %d/%d, %d workers, %d active jobs, %d sessions (%d warm)\n",
		ops.Status, time.Duration(ops.UptimeSeconds*float64(time.Second)).Round(time.Second),
		ops.QueueDepth, ops.QueueCap, ops.Workers, ops.ActiveJobs,
		ops.Sessions["tracked"], ops.Sessions["warm"])
	fmt.Printf("slo healthy: %v\n", ops.SLOHealthy)
	for _, o := range ops.SLO {
		status := "ok"
		switch {
		case !o.Evaluable:
			status = "no data"
		case o.Burning:
			status = "BURNING"
		case !o.OK:
			status = "failing"
		}
		fmt.Printf("  %-20s p%02.0f %.4gs vs %.4gs over %d samples: %s\n",
			o.Name, o.Quantile*100, o.Value, o.Bound, o.Window, status)
	}
	if n := len(ops.Histograms); n > 0 {
		fmt.Printf("latency (%d):\n", n)
		for _, k := range sortedKeys(ops.Histograms) {
			h := ops.Histograms[k]
			fmt.Printf("  %-36s n=%-6d mean=%.4gs p95=%.4gs p99=%.4gs\n",
				k, h.Count, h.Mean, h.P95, h.P99)
		}
	}
	if n := len(ops.Counters); n > 0 {
		fmt.Printf("counters (%d):\n", n)
		for _, k := range sortedKeys(ops.Counters) {
			fmt.Printf("  %-36s %d\n", k, ops.Counters[k])
		}
	}
	return nil
}

// summarizeCAS opens a content-addressed store read-mostly and prints its
// inventory: every blob (size, refcount, GC eligibility), every cached
// result with its (design, config, engine) triple, and any orphans — files
// on disk the index doesn't know, or indexed blobs whose file is gone.
func summarizeCAS(dir string, gc, apply bool) error {
	store, err := cas.Open(dir)
	if err != nil {
		return err
	}
	idx := store.Snapshot()
	garbage := map[cas.Digest]bool{}
	for _, d := range store.Garbage() {
		garbage[d] = true
	}

	fmt.Printf("cas store %s: %d blobs, %d cached results\n\n", dir, len(idx.Blobs), len(idx.Results))
	if len(idx.Blobs) > 0 {
		fmt.Printf("%-22s %12s %5s  %s\n", "BLOB", "BYTES", "REFS", "GC")
		var totalBytes int64
		blobs := make([]cas.BlobInfo, len(idx.Blobs))
		copy(blobs, idx.Blobs)
		sort.Slice(blobs, func(i, j int) bool { return blobs[i].Digest < blobs[j].Digest })
		for _, b := range blobs {
			mark := ""
			if garbage[b.Digest] {
				mark = "eligible"
			}
			fmt.Printf("%-22s %12d %5d  %s\n", b.Digest.Short(), b.Size, b.Refs, mark)
			totalBytes += b.Size
		}
		fmt.Printf("%-22s %12d\n\n", "total", totalBytes)
	}

	if len(idx.Results) > 0 {
		fmt.Printf("%-22s %-22s %-18s %-14s %12s\n", "DESIGN", "CONFIG", "ENGINE", "JOB", "HPWL")
		results := make([]cas.ResultEntry, len(idx.Results))
		copy(results, idx.Results)
		sort.Slice(results, func(i, j int) bool { return results[i].Key() < results[j].Key() })
		for _, r := range results {
			fmt.Printf("%-22s %-22s %-18s %-14s %12.0f\n",
				r.Design.Short(), r.Config.Short(), r.Engine, r.Job, r.HPWL)
		}
		fmt.Println()
	}

	onDisk, missing, err := store.Orphans()
	if err != nil {
		return err
	}
	for _, d := range onDisk {
		fmt.Printf("orphan on disk (not indexed): %s\n", d.Short())
	}
	for _, d := range missing {
		fmt.Printf("indexed but missing on disk:  %s\n", d.Short())
	}

	switch {
	case apply:
		removed, err := store.GC()
		if err != nil {
			return err
		}
		fmt.Printf("gc: removed %d blobs\n", len(removed))
		for _, d := range removed {
			fmt.Printf("  %s\n", d.Short())
		}
	case gc:
		eligible := store.Garbage()
		fmt.Printf("gc dry run: %d blobs eligible\n", len(eligible))
		for _, d := range eligible {
			fmt.Printf("  %s\n", d.Short())
		}
	}
	return nil
}

// sortedKeys returns the map's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// summarizeExploreState validates and renders a puffer/explore-state/v1
// checkpoint: provenance (attempts, design, schedule parameters), the trial
// table in submission order, outcome tallies, the best assignment, and the
// merged parameter ranges Algorithm 3 has narrowed to.
func summarizeExploreState(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	st, err := xfarm.ParseState(data)
	if err != nil {
		return err
	}
	fmt.Printf("explore state: %s\n", path)
	fmt.Printf("  format:   %s\n", st.Format)
	if st.Job != "" {
		fmt.Printf("  job:      %s\n", st.Job)
	}
	if st.DesignDigest != "" {
		fmt.Printf("  design:   %s\n", cas.Digest(st.DesignDigest).Short())
	}
	mode := "deterministic"
	if st.EarlyStop {
		mode = "early-stop"
	}
	if st.WarmStart {
		mode += "+warm-start"
	}
	fmt.Printf("  schedule: seed=%d budget=%d (%s)\n", st.Seed, st.Budget, mode)
	fmt.Printf("  attempts: %d (resumed %d time(s))\n", st.Attempts, st.Attempts-1)
	fmt.Printf("  updated:  %s\n", st.UpdatedAt.Format(time.RFC3339))

	byState := map[string]int{}
	cacheHits := 0
	for _, t := range st.Trials {
		byState[t.State]++
		if t.CacheHit {
			cacheHits++
		}
	}
	fmt.Printf("\ntrials: %d (done %d, submitted %d, canceled %d, failed %d; %d cache hits)\n",
		len(st.Trials), byState[xfarm.TrialDone], byState[xfarm.TrialSubmitted],
		byState[xfarm.TrialCanceled], byState[xfarm.TrialFailed], cacheHits)
	fmt.Printf("%4s %6s %-12s %5s %-9s %12s %6s %6s  %s\n",
		"SEQ", "ROUND", "GROUP", "INDEX", "STATE", "SCORE", "CACHE", "ESTOP", "JOB")
	trials := append([]xfarm.TrialRecord(nil), st.Trials...)
	sort.Slice(trials, func(i, j int) bool { return trials[i].Seq < trials[j].Seq })
	for _, t := range trials {
		group := t.Group
		if group == "" {
			group = "(global)"
		}
		score := "-"
		if t.State == xfarm.TrialDone || t.State == xfarm.TrialFailed || t.State == xfarm.TrialCanceled {
			score = fmt.Sprintf("%.6g", t.Score)
		}
		mark := func(b bool) string {
			if b {
				return "yes"
			}
			return "-"
		}
		fmt.Printf("%4d %6d %-12s %5d %-9s %12s %6s %6s  %s\n",
			t.Seq, t.Round, group, t.Index, t.State, score,
			mark(t.CacheHit), mark(t.EarlyStopped), t.JobID)
	}

	if len(st.Best) > 0 {
		fmt.Printf("\nbest assignment (score %.6g):\n", st.BestScore)
		for _, k := range sortedKeys(st.Best) {
			fmt.Printf("  %-18s %g\n", k, st.Best[k])
		}
	}
	if len(st.Ranges) > 0 {
		fmt.Printf("\nmerged ranges:\n")
		for _, k := range sortedKeys(st.Ranges) {
			r := st.Ranges[k]
			fmt.Printf("  %-18s [%g, %g]  mid %g\n", k, r.Lo, r.Hi, (r.Lo+r.Hi)/2)
		}
	}
	return nil
}
