// Command experiments regenerates every table and figure of the paper's
// evaluation section on the synthetic benchmark suite, plus the ablation
// studies DESIGN.md lists.
//
// Usage:
//
//	experiments -all                       # everything at the quick scale
//	experiments -table2 -scale 800         # the full comparison, larger designs
//	experiments -fig5 -pgm maps/           # congestion maps + PGM images
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"puffer/internal/experiments"
)

func main() {
	var (
		all      = flag.Bool("all", false, "run every table, figure and ablation")
		table1   = flag.Bool("table1", false, "Table I: benchmark statistics")
		table2   = flag.Bool("table2", false, "Table II: HOF/VOF/WL/RT comparison")
		fig1     = flag.Bool("fig1", false, "Fig 1: grid-graph model")
		fig2     = flag.Bool("fig2", false, "Fig 2: algorithm flow trace")
		fig3     = flag.Bool("fig3", false, "Fig 3: congestion estimation maps")
		fig4     = flag.Bool("fig4", false, "Fig 4: feature extraction")
		fig5     = flag.Bool("fig5", false, "Fig 5: congestion map comparison")
		ablat    = flag.Bool("ablations", false, "ablation studies")
		sweep    = flag.Bool("rtsweep", false, "runtime-scaling sweep across design sizes")
		parallel = flag.Bool("parallel", false, "run Table-II cells concurrently (RT column becomes noisy)")
		scale    = flag.Int("scale", 3000, "profile scale divisor")
		seed     = flag.Int64("seed", 1, "random seed")
		iters    = flag.Int("iters", 0, "max GP iterations (0 = default)")
		pgmDir   = flag.String("pgm", "", "write Fig-5 maps as PGM images into this directory")
		subset   = flag.String("designs", "", "comma-separated design subset for Table II")
		timeout  = flag.Duration("timeout", 0, "abort the experiment run after this duration (0 = none)")
	)
	flag.Parse()
	if !(*all || *table1 || *table2 || *fig1 || *fig2 || *fig3 || *fig4 || *fig5 || *ablat || *sweep) {
		*all = true
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	o := experiments.Options{
		Scale: *scale, Seed: *seed, PlaceIters: *iters, Parallel: *parallel, Ctx: ctx,
		Logf: func(format string, args ...any) { log.Printf(format, args...) },
	}
	if *subset != "" {
		o.Designs = strings.Split(*subset, ",")
	}

	if *all || *table1 {
		fmt.Println(experiments.FormatTable1(experiments.Table1(o)))
	}
	if *all || *fig1 {
		fmt.Println(experiments.Fig1())
	}
	if *all || *fig2 {
		fmt.Println(experiments.Fig2(o))
	}
	if *all || *fig3 {
		fmt.Println(experiments.Fig3())
	}
	if *all || *fig4 {
		fmt.Println(experiments.Fig4())
	}
	if *all || *table2 {
		rows, sums, err := experiments.Table2(o)
		if err != nil {
			log.Fatal(err)
		}
		experiments.SortRows(rows)
		fmt.Println(experiments.FormatTable2(rows, sums))
	}
	if *all || *fig5 {
		maps, err := experiments.Fig5(o)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(experiments.FormatFig5(maps))
		if *pgmDir != "" {
			if err := os.MkdirAll(*pgmDir, 0o755); err != nil {
				log.Fatal(err)
			}
			for _, m := range maps {
				base := filepath.Join(*pgmDir, fmt.Sprintf("%s_%s", m.Design, m.Placer))
				if err := experiments.WritePGM(base+"_h.pgm", m.H, m.W, m.Ht); err != nil {
					log.Fatal(err)
				}
				if err := experiments.WritePGM(base+"_v.pgm", m.V, m.W, m.Ht); err != nil {
					log.Fatal(err)
				}
			}
			fmt.Printf("PGM maps written to %s\n", *pgmDir)
		}
	}
	if *sweep {
		rows, err := experiments.RTSweep("MEDIA_SUBSYS", []int{6000, 3000, 1500, 800, 400}, o)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(experiments.FormatRTSweep("MEDIA_SUBSYS", rows))
	}
	if *all || *ablat {
		var rows []experiments.AblationResult
		for _, fn := range []func(experiments.Options) (experiments.AblationResult, error){
			experiments.AblationFeatures,
			experiments.AblationExpansion,
			experiments.AblationRecycling,
			experiments.AblationLegalPadding,
		} {
			r, err := fn(o)
			if err != nil {
				log.Fatal(err)
			}
			rows = append(rows, r)
		}
		rows = append(rows, experiments.AblationTPE(*seed))
		fmt.Println(experiments.FormatAblations(rows))
	}
}
