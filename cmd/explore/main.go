// Command explore runs the Bayesian strategy exploration of Sec. III-C:
// it tunes the PUFFER strategy parameters on a small routability-
// challenged design (the paper uses the same approach and applies the
// result to the large benchmarks) and prints the tuned configuration.
//
// Usage:
//
//	explore -design OR1200 -scale 4000 -budget 20
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"

	"puffer"
	"puffer/internal/place"
	"puffer/internal/router"
	"puffer/internal/synth"
)

func main() {
	var (
		design  = flag.String("design", "OR1200", "small profile to tune on")
		scale   = flag.Int("scale", 4000, "profile scale divisor (keep it small: every observation is a full place+route)")
		seed    = flag.Int64("seed", 1, "random seed")
		budget  = flag.Int("budget", 15, "evaluations per parameter-exploration call (TC of Algorithm 2)")
		iters   = flag.Int("iters", 250, "max GP iterations per evaluation")
		out     = flag.String("out", "", "write the best-observed strategy as JSON to this file")
		timeout = flag.Duration("timeout", 0, "abort the exploration after this duration, keeping the best strategies found (0 = none)")
	)
	flag.Parse()

	p, err := synth.ProfileByName(*design)
	if err != nil {
		log.Fatal(err)
	}
	d := synth.Generate(p, *scale, *seed)
	s := d.Stats()
	fmt.Printf("tuning on %s at 1:%d (%d cells, %d nets)\n", p.Name, *scale, s.Cells, s.Nets)

	pcfg := place.DefaultConfig()
	pcfg.MaxIters = *iters
	pcfg.Seed = *seed

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	final, best, n, err := puffer.ExploreStrategyCtx(ctx, d, pcfg, *budget, *seed,
		func(format string, args ...any) { log.Printf(format, args...) })
	if err != nil {
		if !errors.Is(err, puffer.ErrCanceled) {
			log.Fatal(err)
		}
		fmt.Println("exploration timed out; reporting best strategies found so far")
	}

	fmt.Printf("\n%d observations made\n", n)
	report := func(name string, st any) { fmt.Printf("\n%s strategy:\n%+v\n", name, st) }
	report("final (range-median, Algorithm 3)", final)
	report("best observed", best)
	if *out != "" {
		if err := puffer.SaveStrategy(*out, best); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("best strategy written to %s\n", *out)
	}

	// Verify the tuned strategy on the tuning design.
	for _, cand := range []struct {
		name string
		run  func() float64
	}{
		{"default", func() float64 {
			dd := d.Clone()
			cfg := puffer.DefaultConfig()
			cfg.Place = pcfg
			if _, err := puffer.Run(dd, cfg); err != nil {
				log.Fatal(err)
			}
			rr := puffer.Evaluate(dd, router.DefaultConfig())
			return rr.HOF + rr.VOF
		}},
		{"tuned(best)", func() float64 {
			dd := d.Clone()
			cfg := puffer.DefaultConfig()
			cfg.Place = pcfg
			cfg.Strategy = best
			cfg.Legal.Theta = best.Theta
			if _, err := puffer.Run(dd, cfg); err != nil {
				log.Fatal(err)
			}
			rr := puffer.Evaluate(dd, router.DefaultConfig())
			return rr.HOF + rr.VOF
		}},
	} {
		fmt.Printf("%-12s total overflow (HOF+VOF) = %.3f%%\n", cand.name, cand.run())
	}
}
