// Command puffer runs the PUFFER routability-driven placement flow (or one
// of the Table-II baselines) on a synthetic benchmark profile or a
// Bookshelf design, then evaluates the result with the built-in global
// router.
//
// Usage:
//
//	puffer -design MEDIA_SUBSYS -scale 800                 # synthetic profile
//	puffer -aux path/to/design.aux                         # Bookshelf input
//	puffer -design OR1200 -placer replace                  # baseline flow
//	puffer -design OR1200 -out placed/ -pgm maps/          # save results
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"puffer"
	"puffer/internal/baseline"
	"puffer/internal/bookshelf"
	"puffer/internal/experiments"
	"puffer/internal/legal"
	"puffer/internal/netlist"
	"puffer/internal/obs"
	"puffer/internal/report"
	"puffer/internal/router"
	"puffer/internal/synth"
	"puffer/pipeline"
)

func main() {
	var (
		design   = flag.String("design", "", "synthetic benchmark profile name (see -list)")
		aux      = flag.String("aux", "", "Bookshelf .aux file to place instead of a profile")
		scale    = flag.Int("scale", 800, "profile scale divisor (paper size / scale)")
		seed     = flag.Int64("seed", 1, "random seed")
		placer   = flag.String("placer", "puffer", "flow: puffer | replace | commercial")
		iters    = flag.Int("iters", 0, "max global placement iterations (0 = default)")
		pyramid  = flag.Int("pyramid", 0, "density-grid pyramid levels: start coarse, refine as overflow drops (0/1 = single grid)")
		outDir   = flag.String("out", "", "write the placed design as Bookshelf into this directory")
		pgmDir   = flag.String("pgm", "", "write routed congestion maps as PGM images into this directory")
		noEval   = flag.Bool("noeval", false, "skip the global-routing evaluation")
		verify   = flag.Bool("verify", true, "check placement legality after the flow")
		layers   = flag.Bool("layers", false, "report per-layer utilization and via counts after routing")
		trace    = flag.String("trace", "", "write a Chrome trace-event JSON file (load in Perfetto or chrome://tracing) to this path")
		traceCSV = flag.String("trace-csv", "", "write the global-placement iteration trace (CSV) to this file")
		repOut   = flag.String("report", "", "write the structured run report (JSON, consumed by cmd/diag -report) to this file")
		htmlOut  = flag.String("html", "", "write an HTML placement/congestion report to this file")
		debug    = flag.String("debug-addr", "", "serve pprof/expvar/Prometheus metrics on this address while the flow runs (e.g. :6060)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file (go tool pprof); see also -debug-addr for live profiles")
		memProf  = flag.String("memprofile", "", "write a heap profile (after GC) to this file at exit")
		metrics  = flag.String("metrics", "", "stream metric samples to this file as they are observed (.csv extension selects CSV, anything else JSON lines)")
		strategy = flag.String("strategy", "", "JSON strategy file from cmd/explore -out")
		timeout  = flag.Duration("timeout", 0, "abort the PUFFER flow after this duration (0 = none)")
		ckpt     = flag.String("checkpoint", "", "write a flow checkpoint (JSON) to this file after each stage")
		resume   = flag.String("resume", "", "resume the flow from a checkpoint written by -checkpoint")
		workers  = flag.Int("workers", 0, "cap flow parallelism (0 = GOMAXPROCS)")
		stats    = flag.Bool("stats", true, "print per-stage pipeline statistics")
		list     = flag.Bool("list", false, "list the synthetic benchmark profiles and exit")
		verbose  = flag.Bool("v", false, "verbose progress")
	)
	flag.Parse()

	if *list {
		fmt.Println("available profiles (paper statistics):")
		for _, p := range synth.Profiles {
			fmt.Printf("  %-16s macros=%-4d cells=%-8d nets=%-8d pins=%d\n",
				p.Name, p.Macros, p.Cells, p.Nets, p.Pins)
		}
		return
	}

	var d *netlist.Design
	switch {
	case *aux != "":
		var err error
		d, err = bookshelf.Parse(*aux)
		if err != nil {
			log.Fatalf("parse %s: %v", *aux, err)
		}
		fmt.Printf("loaded %s: %d cells, %d nets, %d pins\n",
			d.Name, len(d.Cells), len(d.Nets), len(d.Pins))
	case *design != "":
		p, err := synth.ProfileByName(*design)
		if err != nil {
			log.Fatalf("%v (use -list)", err)
		}
		d = synth.Generate(p, *scale, *seed)
		s := d.Stats()
		fmt.Printf("generated %s at 1:%d: %d macros, %d cells, %d nets, %d pins\n",
			d.Name, *scale, s.Macros, s.Cells, s.Nets, s.Pins)
	default:
		log.Fatal("one of -design or -aux is required (see -list)")
	}

	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, args ...any) { log.Printf(format, args...) }
	}

	// Telemetry: any of -trace/-report/-debug-addr/-metrics turns the
	// recorder on; otherwise the flow runs with the nil (free) recorder.
	var (
		rec      *obs.Recorder
		reg      *obs.Registry
		tracer   *obs.Tracer
		metricsF *os.File
	)
	if *trace != "" || *repOut != "" || *debug != "" || *metrics != "" {
		var sinks []obs.Sink
		if *metrics != "" {
			f, err := os.Create(*metrics)
			if err != nil {
				log.Fatal(err)
			}
			metricsF = f
			if strings.HasSuffix(*metrics, ".csv") {
				sinks = append(sinks, obs.NewCSVSink(f))
			} else {
				sinks = append(sinks, obs.NewJSONLSink(f))
			}
		}
		reg = obs.NewRegistry(sinks...)
		tracer = obs.NewTracer()
		rec = obs.NewRecorder(tracer, reg)
	}
	if *debug != "" {
		ds, err := obs.StartDebug(*debug, reg)
		if err != nil {
			log.Fatal(err)
		}
		defer ds.Close()
		fmt.Printf("debug endpoint: http://%s/ (pprof, /debug/vars, /metrics)\n", ds.Addr())
	}

	// Whole-run profiles (stdlib runtime/pprof). -debug-addr serves live
	// profiles over HTTP instead; these flags capture a run end to end
	// without a second terminal. Profiles are written when the flow exits
	// normally.
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Printf("cpu profile written to %s\n", *cpuProf)
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				log.Printf("memprofile: %v", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the steady-state heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Printf("memprofile: %v", err)
				return
			}
			fmt.Printf("heap profile written to %s\n", *memProf)
		}()
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	start := time.Now()
	gw, gh := puffer.CongGridFor(d)
	evalCfg := router.DefaultConfig()
	evalCfg.Workers = *workers
	evalCfg.Obs = rec
	var puffRC *pipeline.RunContext
	switch *placer {
	case "puffer":
		cfg := puffer.DefaultConfig()
		cfg.Place.Seed = *seed
		cfg.Workers = *workers
		cfg.Logf = logf
		cfg.Obs = rec
		if *iters > 0 {
			cfg.Place.MaxIters = *iters
		}
		cfg.Place.PyramidLevels = *pyramid
		if *strategy != "" {
			s, err := puffer.LoadStrategy(*strategy)
			if err != nil {
				log.Fatal(err)
			}
			cfg.Strategy = s
			cfg.Legal.Theta = s.Theta
		}
		rc, err := pipeline.NewRunContext(d, cfg)
		if err != nil {
			log.Fatal(err)
		}
		puffRC = rc
		pl := pipeline.New()
		if *ckpt != "" {
			pl.Checkpointer = func(cp *pipeline.Checkpoint) error { return cp.Save(*ckpt) }
		}
		if *resume != "" {
			cp, err := pipeline.LoadCheckpoint(*resume)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("resuming after stage %q from %s\n", cp.Stage, *resume)
			err = pl.Resume(ctx, rc, cp)
			if *stats {
				pipeline.WriteStageStats(os.Stdout, rc.Result.Stages)
			}
			if err != nil {
				log.Fatal(err)
			}
		} else {
			err = pl.Run(ctx, rc)
			if *stats {
				pipeline.WriteStageStats(os.Stdout, rc.Result.Stages)
			}
			if err != nil {
				if errors.Is(err, pipeline.ErrCanceled) {
					var se *pipeline.StageError
					stage := "?"
					if errors.As(err, &se) {
						stage = se.Stage
					}
					log.Fatalf("flow timed out during stage %q after %s (design left valid; HPWL=%.0f)",
						stage, time.Since(start).Round(time.Millisecond), rc.Result.HPWL)
				}
				log.Fatal(err)
			}
		}
		res := rc.Result
		fmt.Printf("PUFFER: GP iters=%d overflow=%.3f, %d padding rounds, legal avg disp=%.3f, HPWL=%.0f\n",
			res.GP.Iters, res.GP.Overflow, len(res.PaddingRuns), res.Legal.AvgDisplacement, res.HPWL)
		// Reuse the flow's incrementally maintained congestion grid and
		// RSMT topologies for the routing evaluation below.
		if po := rc.PadOptimizer(); po.Iter() > 0 {
			evalCfg.GridW, evalCfg.GridH = rc.GridW, rc.GridH
			evalCfg.Topo = po.Estimator()
		}
		if *traceCSV != "" {
			var b strings.Builder
			b.WriteString("iter,hpwl,overflow,lambda,gamma,padded\n")
			for _, it := range res.GP.Trace {
				fmt.Fprintf(&b, "%d,%g,%g,%g,%g,%t\n",
					it.Iter, it.HPWL, it.Overflow, it.Lambda, it.Gamma, it.Padded)
			}
			if res.GP.TraceDropped > 0 {
				fmt.Printf("note: iteration trace retained the newest %d of %d iterations (raise Place.TraceCap to keep more)\n",
					len(res.GP.Trace), len(res.GP.Trace)+res.GP.TraceDropped)
			}
			if err := os.WriteFile(*traceCSV, []byte(b.String()), 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("iteration trace written to %s\n", *traceCSV)
		}
	case "replace":
		opts := baseline.DefaultRePlAceOpts()
		opts.Place.Seed = *seed
		opts.Place.Logf = logf
		if *iters > 0 {
			opts.Place.MaxIters = *iters
		}
		res, err := baseline.RunRePlAce(d, opts, gw, gh)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("RePlAce: GP iters=%d overflow=%.3f, %d inflation rounds, HPWL=%.0f\n",
			res.GP.Iters, res.GP.Overflow, res.OptimizerCalls, res.HPWL)
	case "commercial":
		opts := baseline.DefaultCommercialOpts()
		opts.Place.Seed = *seed
		opts.Place.Logf = logf
		if *iters > 0 {
			opts.Place.MaxIters = *iters
		}
		res, err := baseline.RunCommercial(d, opts, gw, gh)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Commercial: GP iters=%d overflow=%.3f, %d optimizer calls, HPWL=%.0f\n",
			res.GP.Iters, res.GP.Overflow, res.OptimizerCalls, res.HPWL)
	default:
		log.Fatalf("unknown placer %q", *placer)
	}
	fmt.Printf("placement runtime: %s\n", time.Since(start).Round(time.Millisecond))

	if *verify {
		if vs := legal.Check(d, 5); len(vs) > 0 {
			fmt.Printf("LEGALITY: %d violations, first: %s\n", len(vs), vs[0])
		} else {
			fmt.Println("legality check: clean")
		}
	}

	var routed *router.Result
	if !*noEval {
		rr := puffer.Evaluate(d, evalCfg)
		routed = rr
		fmt.Printf("routed: HOF=%.2f%% VOF=%.2f%% WL=%.0f (%d segments, %d rerouted)\n",
			rr.HOF, rr.VOF, rr.WL, rr.Segments, rr.Rerouted)
		peak, ace := rr.Map.StandardACE()
		fmt.Printf("ACE: peak=%.3f 0.5%%=%.3f 1%%=%.3f 2%%=%.3f 5%%=%.3f\n",
			peak, ace[0], ace[1], ace[2], ace[3])
		pass := "PASS"
		if rr.HOF > 1 || rr.VOF > 1 {
			pass = "FAIL"
		}
		fmt.Printf("routability (1%% criterion): %s\n", pass)
		if *layers {
			la := router.AssignLayers(d, rr)
			for l := range la.Layers {
				fmt.Printf("layer %-3s %v util=%.3f overflow=%.1f\n",
					la.Layers[l].Name, la.Layers[l].Dir, la.Utilization(l), la.OverflowByLayer[l])
			}
			fmt.Printf("total vias: %.0f\n", la.TotalVias)
		}
		if *pgmDir != "" {
			if err := os.MkdirAll(*pgmDir, 0o755); err != nil {
				log.Fatal(err)
			}
			m := rr.Map
			h := make([]float64, m.W*m.H)
			v := make([]float64, m.W*m.H)
			for i := range h {
				h[i] = m.OverflowH(i)
				v[i] = m.OverflowV(i)
			}
			base := filepath.Join(*pgmDir, d.Name+"_"+*placer)
			if err := experiments.WritePGM(base+"_h.pgm", h, m.W, m.H); err != nil {
				log.Fatal(err)
			}
			if err := experiments.WritePGM(base+"_v.pgm", v, m.W, m.H); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("congestion maps written to %s_{h,v}.pgm\n", base)
		}
	}

	if *htmlOut != "" {
		o := report.DefaultOptions()
		o.Title = fmt.Sprintf("%s — %s", d.Name, *placer)
		if err := report.Write(*htmlOut, d, routed, o); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("HTML report written to %s\n", *htmlOut)
	}

	if *outDir != "" {
		auxPath, err := bookshelf.Write(d, *outDir, d.Name+"_placed")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("placed design written to %s\n", auxPath)
	}

	if *trace != "" {
		if err := tracer.WriteFile(*trace); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace written to %s (%d spans; open in Perfetto or chrome://tracing)\n", *trace, tracer.Len())
	}
	if *repOut != "" {
		if puffRC == nil {
			log.Fatalf("-report requires -placer puffer (got %q)", *placer)
		}
		puffRC.Result.Route = routed
		rep, err := pipeline.BuildReport(puffRC)
		if err != nil {
			log.Fatal(err)
		}
		if err := rep.Save(*repOut); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("run report written to %s\n", *repOut)
	}
	if reg != nil {
		if err := reg.Flush(); err != nil {
			log.Fatal(err)
		}
	}
	if metricsF != nil {
		if err := metricsF.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("metric stream written to %s\n", *metrics)
	}
}
