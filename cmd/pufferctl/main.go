// Command pufferctl is the client for the pufferd placement job daemon.
//
// Usage:
//
//	pufferctl [-addr http://127.0.0.1:8080] <command> [args]
//
// Commands:
//
//	submit   submit a job (synthetic profile or Bookshelf upload); -watch streams it
//	status   print a job's durable manifest
//	watch    stream a job's progress (SSE) until it finishes
//	result   print a finished job's result summary
//	artifact download a spooled artifact (report.json, trace.json, …)
//	cancel   cancel a queued or running job
//	list     list all jobs the daemon knows
//	wait     poll until a job reaches a terminal state
//
// The daemon address can also come from the PUFFERD_ADDR environment
// variable. Exit status is non-zero when the addressed job failed.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"
)

func main() {
	addr := flag.String("addr", envOr("PUFFERD_ADDR", "http://127.0.0.1:8080"), "pufferd base URL")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: pufferctl [-addr URL] {submit|status|watch|result|artifact|cancel|list|wait} ...")
		os.Exit(2)
	}
	c := &client{base: strings.TrimSuffix(*addr, "/")}
	var err error
	switch cmd, rest := args[0], args[1:]; cmd {
	case "submit":
		err = c.submit(rest)
	case "status":
		err = c.getJSON(rest, "status <id>", "/api/v1/jobs/%s")
	case "result":
		err = c.getJSON(rest, "result <id>", "/api/v1/jobs/%s/result")
	case "watch":
		err = c.watch(rest)
	case "artifact":
		err = c.artifact(rest)
	case "cancel":
		err = c.cancel(rest)
	case "list":
		err = c.list()
	case "wait":
		err = c.wait(rest)
	default:
		err = fmt.Errorf("unknown command %q", cmd)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pufferctl:", err)
		os.Exit(1)
	}
}

func envOr(key, def string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return def
}

type client struct{ base string }

// checkStatus turns non-2xx responses into errors carrying the body.
func checkStatus(resp *http.Response) error {
	if resp.StatusCode/100 == 2 {
		return nil
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	msg := strings.TrimSpace(string(body))
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		return fmt.Errorf("%s (Retry-After: %ss): %s", resp.Status, ra, msg)
	}
	return fmt.Errorf("%s: %s", resp.Status, msg)
}

func (c *client) submit(args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	var (
		kind     = fs.String("kind", "place", "job kind: place | explore")
		profile  = fs.String("profile", "", "synthetic benchmark profile name")
		scale    = fs.Int("scale", 800, "profile scale divisor")
		seed     = fs.Int64("seed", 1, "random seed")
		aux      = fs.String("aux", "", "Bookshelf .aux file to upload (with its sibling files)")
		iters    = fs.Int("iters", 0, "max global placement iterations (0 = default)")
		workers  = fs.Int("workers", 0, "cap job parallelism (0 = GOMAXPROCS)")
		route    = fs.Bool("route", false, "append the evaluation-routing stage")
		strategy = fs.String("strategy", "", "JSON strategy file (cmd/explore -out format)")
		budget   = fs.Int("budget", 0, "exploration trial budget (explore jobs)")
		timeout  = fs.Duration("timeout", 0, "per-job deadline (0 = server default)")
		watch    = fs.Bool("watch", false, "stream progress until the job finishes")
	)
	fs.Parse(args)

	spec := map[string]any{"kind": *kind, "scale": *scale, "seed": *seed}
	if *profile != "" {
		spec["profile"] = *profile
	}
	if *aux != "" {
		files, err := inlineBookshelf(*aux)
		if err != nil {
			return err
		}
		spec["bookshelf"] = files
	}
	if *iters > 0 {
		spec["max_iters"] = *iters
	}
	if *workers > 0 {
		spec["workers"] = *workers
	}
	if *route {
		spec["route"] = true
	}
	if *budget > 0 {
		spec["budget"] = *budget
	}
	if *timeout > 0 {
		spec["timeout_sec"] = timeout.Seconds()
	}
	if *strategy != "" {
		data, err := os.ReadFile(*strategy)
		if err != nil {
			return err
		}
		spec["strategy"] = json.RawMessage(data)
	}

	body, _ := json.Marshal(spec)
	resp, err := http.Post(c.base+"/api/v1/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if err := checkStatus(resp); err != nil {
		return err
	}
	var m struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	raw, _ := io.ReadAll(resp.Body)
	if err := json.Unmarshal(raw, &m); err != nil {
		return fmt.Errorf("decode response: %w", err)
	}
	fmt.Printf("job %s %s\n", m.ID, m.State)
	if *watch {
		return c.streamEvents(m.ID)
	}
	return nil
}

// inlineBookshelf reads an .aux file and every sibling file it references,
// returning the filename → content map the submit API expects.
func inlineBookshelf(auxPath string) (map[string]string, error) {
	auxData, err := os.ReadFile(auxPath)
	if err != nil {
		return nil, err
	}
	dir := filepath.Dir(auxPath)
	files := map[string]string{filepath.Base(auxPath): string(auxData)}
	for _, line := range strings.Split(string(auxData), "\n") {
		if i := strings.Index(line, ":"); i >= 0 {
			line = line[i+1:]
		}
		for _, tok := range strings.Fields(line) {
			if filepath.Ext(tok) == "" {
				continue
			}
			data, err := os.ReadFile(filepath.Join(dir, filepath.Base(tok)))
			if err != nil {
				return nil, fmt.Errorf("aux references %s: %w", tok, err)
			}
			files[filepath.Base(tok)] = string(data)
		}
	}
	return files, nil
}

func (c *client) getJSON(args []string, usage, pathFmt string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: pufferctl %s", usage)
	}
	resp, err := http.Get(c.base + fmt.Sprintf(pathFmt, args[0]))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if err := checkStatus(resp); err != nil {
		return err
	}
	_, err = io.Copy(os.Stdout, resp.Body)
	return err
}

func (c *client) list() error {
	resp, err := http.Get(c.base + "/api/v1/jobs")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if err := checkStatus(resp); err != nil {
		return err
	}
	var rows []struct {
		ID          string    `json:"id"`
		Kind        string    `json:"kind"`
		Design      string    `json:"design"`
		State       string    `json:"state"`
		Stage       string    `json:"stage"`
		Attempts    int       `json:"attempts"`
		SubmittedAt time.Time `json:"submitted_at"`
		HPWL        float64   `json:"hpwl"`
		Error       string    `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
		return err
	}
	fmt.Printf("%-14s %-8s %-16s %-9s %-9s %3s  %s\n", "ID", "KIND", "DESIGN", "STATE", "STAGE", "TRY", "HPWL/ERROR")
	for _, r := range rows {
		detail := ""
		if r.HPWL > 0 {
			detail = fmt.Sprintf("%.0f", r.HPWL)
		}
		if r.Error != "" {
			detail = r.Error
		}
		fmt.Printf("%-14s %-8s %-16s %-9s %-9s %3d  %s\n",
			r.ID, r.Kind, r.Design, r.State, r.Stage, r.Attempts, detail)
	}
	return nil
}

func (c *client) cancel(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: pufferctl cancel <id>")
	}
	req, err := http.NewRequest(http.MethodPost, c.base+"/api/v1/jobs/"+args[0]+"/cancel", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if err := checkStatus(resp); err != nil {
		return err
	}
	_, err = io.Copy(os.Stdout, resp.Body)
	return err
}

func (c *client) artifact(args []string) error {
	fs := flag.NewFlagSet("artifact", flag.ExitOnError)
	out := fs.String("o", "", "output path (default: the artifact name)")
	fs.Parse(args)
	rest := fs.Args()
	if len(rest) != 2 {
		return fmt.Errorf("usage: pufferctl artifact [-o path] <id> <name>")
	}
	id, name := rest[0], rest[1]
	resp, err := http.Get(c.base + "/api/v1/jobs/" + id + "/artifacts/" + name)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if err := checkStatus(resp); err != nil {
		return err
	}
	dest := *out
	if dest == "" {
		dest = name
	}
	f, err := os.Create(dest)
	if err != nil {
		return err
	}
	n, err := io.Copy(f, resp.Body)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d bytes\n", dest, n)
	return nil
}

func (c *client) watch(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: pufferctl watch <id>")
	}
	return c.streamEvents(args[0])
}

// streamEvents consumes the job's SSE stream, rendering progress lines
// until the stream ends; the final state decides the error.
func (c *client) streamEvents(id string) error {
	resp, err := http.Get(c.base + "/api/v1/jobs/" + id + "/events")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if err := checkStatus(resp); err != nil {
		return err
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	finalState := ""
	finalErr := ""
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var e struct {
			Type        string  `json:"type"`
			State       string  `json:"state"`
			Error       string  `json:"error"`
			Stage       string  `json:"stage"`
			StageStatus string  `json:"stage_status"`
			Iters       int     `json:"iters"`
			WallMS      float64 `json:"wall_ms"`
			Series      string  `json:"series"`
			Step        int     `json:"step"`
			Value       float64 `json:"value"`
			Line        string  `json:"line"`
		}
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &e); err != nil {
			continue
		}
		switch e.Type {
		case "state":
			fmt.Printf("state: %s %s\n", e.State, e.Error)
			finalState, finalErr = e.State, e.Error
		case "stage":
			fmt.Printf("stage %s %s (iters=%d wall=%.0fms)\n", e.Stage, e.StageStatus, e.Iters, e.WallMS)
		case "sample":
			fmt.Printf("  %s[%d] = %g\n", e.Series, e.Step, e.Value)
		case "log":
			fmt.Println(e.Line)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("stream: %w", err)
	}
	switch finalState {
	case "done", "":
		return nil
	case "parked", "queued":
		fmt.Println("job interrupted; it will resume when the daemon restarts")
		return nil
	default:
		return fmt.Errorf("job %s %s: %s", id, finalState, finalErr)
	}
}

func (c *client) wait(args []string) error {
	fs := flag.NewFlagSet("wait", flag.ExitOnError)
	poll := fs.Duration("poll", 2*time.Second, "poll interval")
	timeout := fs.Duration("timeout", 10*time.Minute, "give up after this long")
	fs.Parse(args)
	rest := fs.Args()
	if len(rest) != 1 {
		return fmt.Errorf("usage: pufferctl wait [-poll d] [-timeout d] <id>")
	}
	id := rest[0]
	deadline := time.Now().Add(*timeout)
	for {
		resp, err := http.Get(c.base + "/api/v1/jobs/" + id)
		if err != nil {
			return err
		}
		var m struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		decErr := json.NewDecoder(resp.Body).Decode(&m)
		resp.Body.Close()
		if serr := checkStatus(resp); serr != nil {
			return serr
		}
		if decErr != nil {
			return decErr
		}
		switch m.State {
		case "done":
			fmt.Println("done")
			return nil
		case "failed", "canceled":
			return fmt.Errorf("job %s %s: %s", id, m.State, m.Error)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s still %s after %s", id, m.State, *timeout)
		}
		time.Sleep(*poll)
	}
}
