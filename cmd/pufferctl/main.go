// Command pufferctl is the client for the pufferd placement job daemon.
//
// Usage:
//
//	pufferctl [-addr http://127.0.0.1:8080] <command> [args]
//
// Commands:
//
//	submit   submit a job (synthetic profile or Bookshelf upload); -watch streams it
//	explore  run a distributed strategy exploration on the fleet; -out saves the tuned strategy
//	status   print a job's durable manifest
//	watch    stream a job's progress (SSE) until it finishes
//	result   print a finished job's result summary
//	artifact download a spooled artifact (report.json, trace.json, …)
//	cancel   cancel a queued or running job
//	list     list all jobs the daemon knows
//	wait     poll until a job reaches a terminal state
//	session  interactive ECO sessions: open | delta | status | watch | close | list
//	top      render the daemon's operational snapshot (/api/v1/ops)
//	fleet    render a coordinator's worker registry (/api/v1/nodes)
//
// Against a fleet coordinator every job command works unchanged — the
// coordinator proxies status, results, artifacts, and event streams.
// submit additionally honors -tenant (fair-share lane) and -nocache
// (bypass the coordinator's content-addressed result cache).
//
// submit honors the daemon's backpressure: with -retry N, a 429 response
// is retried up to N times after the server's Retry-After hint.
//
// submit -trace out.json starts a client span, propagates its W3C
// traceparent to the daemon, waits for the job, and merges the client and
// daemon Chrome traces into one Perfetto-loadable file whose spans — HTTP
// handling, queue wait, pipeline stages, place.gp shards — share a single
// trace ID.
//
// The daemon address can also come from the PUFFERD_ADDR environment
// variable. Exit status is non-zero when the addressed job failed.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"puffer/internal/obs"
)

func main() {
	addr := flag.String("addr", envOr("PUFFERD_ADDR", "http://127.0.0.1:8080"), "pufferd base URL")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: pufferctl [-addr URL] {submit|explore|status|watch|result|artifact|cancel|list|wait|session|top|fleet} ...")
		os.Exit(2)
	}
	c := &client{base: strings.TrimSuffix(*addr, "/")}
	var err error
	switch cmd, rest := args[0], args[1:]; cmd {
	case "submit":
		err = c.submit(rest)
	case "explore":
		err = c.explore(rest)
	case "status":
		err = c.getJSON(rest, "status <id>", "/api/v1/jobs/%s")
	case "result":
		err = c.getJSON(rest, "result <id>", "/api/v1/jobs/%s/result")
	case "watch":
		err = c.watch(rest)
	case "artifact":
		err = c.artifact(rest)
	case "cancel":
		err = c.cancel(rest)
	case "list":
		err = c.list()
	case "wait":
		err = c.wait(rest)
	case "session":
		err = c.session(rest)
	case "top":
		err = c.top()
	case "fleet":
		err = c.fleet()
	default:
		err = fmt.Errorf("unknown command %q", cmd)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pufferctl:", err)
		os.Exit(1)
	}
}

func envOr(key, def string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return def
}

type client struct{ base string }

// checkStatus turns non-2xx responses into errors carrying the body.
func checkStatus(resp *http.Response) error {
	if resp.StatusCode/100 == 2 {
		return nil
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	msg := strings.TrimSpace(string(body))
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		return fmt.Errorf("%s (Retry-After: %ss): %s", resp.Status, ra, msg)
	}
	return fmt.Errorf("%s: %s", resp.Status, msg)
}

func (c *client) submit(args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	var (
		kind     = fs.String("kind", "place", "job kind: place | explore")
		profile  = fs.String("profile", "", "synthetic benchmark profile name")
		scale    = fs.Int("scale", 800, "profile scale divisor")
		seed     = fs.Int64("seed", 1, "random seed")
		aux      = fs.String("aux", "", "Bookshelf .aux file to upload (with its sibling files)")
		iters    = fs.Int("iters", 0, "max global placement iterations (0 = default)")
		workers  = fs.Int("workers", 0, "cap job parallelism (0 = GOMAXPROCS)")
		route    = fs.Bool("route", false, "append the evaluation-routing stage")
		strategy = fs.String("strategy", "", "JSON strategy file (cmd/explore -out format)")
		budget   = fs.Int("budget", 0, "exploration trial budget (explore jobs)")
		timeout  = fs.Duration("timeout", 0, "per-job deadline (0 = server default)")
		watch    = fs.Bool("watch", false, "stream progress until the job finishes")
		retry    = fs.Int("retry", 0, "retry a full queue up to N times, honoring Retry-After")
		trace    = fs.String("trace", "", "wait for the job and write a merged client+daemon Chrome trace here")
		tenant   = fs.String("tenant", "", "tenant name for fleet fair-share scheduling (coordinator only)")
		nocache  = fs.Bool("nocache", false, "force a full run even if the coordinator has a cached result")
	)
	fs.Parse(args)

	spec := map[string]any{"kind": *kind, "scale": *scale, "seed": *seed}
	if *profile != "" {
		spec["profile"] = *profile
	}
	if *aux != "" {
		files, err := inlineBookshelf(*aux)
		if err != nil {
			return err
		}
		spec["bookshelf"] = files
	}
	if *iters > 0 {
		spec["max_iters"] = *iters
	}
	if *workers > 0 {
		spec["workers"] = *workers
	}
	if *route {
		spec["route"] = true
	}
	if *budget > 0 {
		spec["budget"] = *budget
	}
	if *timeout > 0 {
		spec["timeout_sec"] = timeout.Seconds()
	}
	if *strategy != "" {
		data, err := os.ReadFile(*strategy)
		if err != nil {
			return err
		}
		spec["strategy"] = json.RawMessage(data)
	}
	if *nocache {
		spec["nocache"] = true
	}

	// With -trace, this process becomes the root of the distributed trace:
	// the submit span's traceparent rides the POST, the daemon roots its
	// serve.job span under it, and after the job finishes the two Chrome
	// traces merge into one tree on one time axis.
	var (
		tracer      *obs.Tracer
		clientSpan  *obs.Span
		traceparent string
	)
	if *trace != "" {
		tracer = obs.NewTracer()
		clientSpan = tracer.StartSpan("client.submit")
		traceparent = clientSpan.TraceContext().Traceparent()
	}

	body, _ := json.Marshal(spec)
	postStart := time.Now()
	resp, err := c.postWithRetry(c.base+"/api/v1/jobs", body, *retry, traceparent, *tenant)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if err := checkStatus(resp); err != nil {
		return err
	}
	var m struct {
		ID       string `json:"id"`
		State    string `json:"state"`
		CacheHit bool   `json:"cache_hit"`
	}
	raw, _ := io.ReadAll(resp.Body)
	if err := json.Unmarshal(raw, &m); err != nil {
		return fmt.Errorf("decode response: %w", err)
	}
	clientSpan.RecordChild("client.request", postStart, time.Since(postStart))
	clientSpan.SetArg("job", m.ID)
	if m.CacheHit {
		fmt.Printf("job %s %s (cache hit)\n", m.ID, m.State)
	} else {
		fmt.Printf("job %s %s\n", m.ID, m.State)
	}
	if *trace == "" {
		if *watch {
			return c.streamEvents(m.ID)
		}
		return nil
	}

	var watchErr error
	waitStart := time.Now()
	if *watch {
		watchErr = c.streamEvents(m.ID)
	}
	state, errMsg, err := c.waitTerminal(m.ID, 500*time.Millisecond, 15*time.Minute)
	if err != nil {
		return err
	}
	clientSpan.RecordChild("client.wait", waitStart, time.Since(waitStart))
	if err := c.writeMergedTrace(tracer, clientSpan, m.ID, *trace); err != nil {
		return err
	}
	if watchErr != nil {
		return watchErr
	}
	if state != "done" {
		return fmt.Errorf("job %s %s: %s", m.ID, state, errMsg)
	}
	return nil
}

// explore submits a distributed strategy exploration to a fleet
// coordinator: every TPE trial runs as its own place job across the
// workers, the controller checkpoints for durable resume, and the tuned
// strategy document comes back as an artifact (-out saves it locally).
func (c *client) explore(args []string) error {
	fs := flag.NewFlagSet("explore", flag.ExitOnError)
	var (
		profile   = fs.String("profile", "", "synthetic benchmark profile name")
		scale     = fs.Int("scale", 800, "profile scale divisor")
		seed      = fs.Int64("seed", 1, "random seed (drives the trial schedule)")
		aux       = fs.String("aux", "", "Bookshelf .aux file to upload (with its sibling files)")
		budget    = fs.Int("budget", 0, "trials per exploration call (0 = server default 8)")
		iters     = fs.Int("iters", 0, "max global placement iterations per trial (0 = default)")
		earlyStop = fs.Bool("early-stop", false, "cancel dominated trials mid-flight (trades determinism for wall clock)")
		warm      = fs.Bool("warm", false, "seed TPE priors/ranges from prior explorations of the same design family")
		timeout   = fs.Duration("timeout", 0, "per-trial deadline (0 = server default)")
		watch     = fs.Bool("watch", false, "stream exploration progress until it finishes")
		wait      = fs.Duration("wait", 30*time.Minute, "give up waiting for the exploration after this long")
		retry     = fs.Int("retry", 0, "retry a full queue up to N times, honoring Retry-After")
		tenant    = fs.String("tenant", "", "tenant name for fleet fair-share scheduling")
		nocache   = fs.Bool("nocache", false, "recompute the exploration even if a cached result exists (finished trials still dedupe through the result index)")
		out       = fs.String("out", "", "write the tuned strategy JSON here when the exploration finishes")
	)
	fs.Parse(args)

	spec := map[string]any{"kind": "explore", "distributed": true, "scale": *scale, "seed": *seed}
	if *profile != "" {
		spec["profile"] = *profile
	}
	if *aux != "" {
		files, err := inlineBookshelf(*aux)
		if err != nil {
			return err
		}
		spec["bookshelf"] = files
	}
	if *budget > 0 {
		spec["budget"] = *budget
	}
	if *iters > 0 {
		spec["max_iters"] = *iters
	}
	if *earlyStop {
		spec["early_stop"] = true
	}
	if *warm {
		spec["warm_start"] = true
	}
	if *timeout > 0 {
		spec["timeout_sec"] = timeout.Seconds()
	}
	if *nocache {
		spec["nocache"] = true
	}

	body, _ := json.Marshal(spec)
	resp, err := c.postWithRetry(c.base+"/api/v1/jobs", body, *retry, "", *tenant)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if err := checkStatus(resp); err != nil {
		return err
	}
	var m struct {
		ID       string `json:"id"`
		State    string `json:"state"`
		CacheHit bool   `json:"cache_hit"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return fmt.Errorf("decode response: %w", err)
	}
	if m.CacheHit {
		fmt.Printf("exploration %s %s (cache hit)\n", m.ID, m.State)
	} else {
		fmt.Printf("exploration %s %s\n", m.ID, m.State)
	}

	var watchErr error
	if *watch {
		watchErr = c.streamEvents(m.ID)
	}
	state, errMsg, err := c.waitTerminal(m.ID, 500*time.Millisecond, *wait)
	if err != nil {
		return err
	}
	if state != "done" {
		return fmt.Errorf("exploration %s %s: %s", m.ID, state, errMsg)
	}
	var res struct {
		Trials    int     `json:"trials"`
		BestScore float64 `json:"best_score"`
		RuntimeMS float64 `json:"runtime_ms"`
	}
	if raw, err := c.fetchResult(m.ID); err == nil {
		json.Unmarshal(raw, &res)
	}
	fmt.Printf("exploration %s done: %d trials, best score %g, %.0fms\n",
		m.ID, res.Trials, res.BestScore, res.RuntimeMS)
	if *out != "" {
		data, err := c.fetchArtifact(m.ID, "strategy.json")
		if err != nil {
			return fmt.Errorf("fetch tuned strategy: %w", err)
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("tuned strategy: %s (%d bytes)\n", *out, len(data))
	}
	return watchErr
}

// fetchResult downloads a finished job's result document.
func (c *client) fetchResult(id string) ([]byte, error) {
	resp, err := http.Get(c.base + "/api/v1/jobs/" + id + "/result")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if err := checkStatus(resp); err != nil {
		return nil, err
	}
	return io.ReadAll(resp.Body)
}

// waitTerminal polls the job manifest until it leaves the live states,
// returning the terminal state and error message.
func (c *client) waitTerminal(id string, poll, timeout time.Duration) (state, errMsg string, err error) {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(c.base + "/api/v1/jobs/" + id)
		if err != nil {
			return "", "", err
		}
		var m struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		decErr := json.NewDecoder(resp.Body).Decode(&m)
		resp.Body.Close()
		if serr := checkStatus(resp); serr != nil {
			return "", "", serr
		}
		if decErr != nil {
			return "", "", decErr
		}
		switch m.State {
		case "queued", "running", "":
		default:
			return m.State, m.Error, nil
		}
		if time.Now().After(deadline) {
			return "", "", fmt.Errorf("job %s still %s after %s", id, m.State, timeout)
		}
		time.Sleep(poll)
	}
}

// writeMergedTrace ends the client span and merges the client tracer with
// the job's spooled trace artifact into one Chrome trace file. A job that
// died before exporting a trace (canceled in queue, spool failure) still
// yields a file with the client's own spans.
func (c *client) writeMergedTrace(tracer *obs.Tracer, clientSpan *obs.Span, id, dest string) error {
	clientSpan.End()
	var clientBuf bytes.Buffer
	if err := tracer.WriteJSON(&clientBuf); err != nil {
		return err
	}
	parts := []obs.TracePart{{Process: "pufferctl", Data: clientBuf.Bytes()}}
	server, err := c.fetchArtifact(id, "trace.json")
	if err != nil {
		fmt.Fprintf(os.Stderr, "pufferctl: no daemon trace for %s (%v); writing client spans only\n", id, err)
	} else {
		parts = append(parts, obs.TracePart{Process: "pufferd", Data: server})
	}
	f, err := os.Create(dest)
	if err != nil {
		return err
	}
	merr := obs.MergeChromeTraces(f, parts...)
	if cerr := f.Close(); merr == nil {
		merr = cerr
	}
	if merr != nil {
		return merr
	}
	fmt.Printf("trace: %s (%d processes, trace_id %s)\n", dest, len(parts), tracer.TraceID())
	return nil
}

// fetchArtifact downloads one spooled artifact into memory.
func (c *client) fetchArtifact(id, name string) ([]byte, error) {
	resp, err := http.Get(c.base + "/api/v1/jobs/" + id + "/artifacts/" + name)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if err := checkStatus(resp); err != nil {
		return nil, err
	}
	return io.ReadAll(resp.Body)
}

// postWithRetry posts body to url; a 429 response is retried up to retries
// times, sleeping out the server's Retry-After hint (a bounded default
// when the header is absent or unparsable). Any other response — success
// or failure — returns immediately. A non-empty traceparent rides every
// attempt so the daemon adopts the client's trace context; a non-empty
// tenant rides as X-Puffer-Tenant for fleet fair-share scheduling.
func (c *client) postWithRetry(url string, body []byte, retries int, traceparent, tenant string) (*http.Response, error) {
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		if traceparent != "" {
			req.Header.Set(obs.TraceparentHeader, traceparent)
		}
		if tenant != "" {
			req.Header.Set("X-Puffer-Tenant", tenant)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusTooManyRequests || attempt >= retries {
			return resp, nil
		}
		wait := 2 * time.Second
		if ra := strings.TrimSpace(resp.Header.Get("Retry-After")); ra != "" {
			if secs, perr := strconv.Atoi(ra); perr == nil && secs >= 0 {
				wait = time.Duration(secs) * time.Second
			}
		}
		if wait < time.Second {
			wait = time.Second
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		fmt.Fprintf(os.Stderr, "pufferctl: queue full; retry %d/%d in %s\n", attempt+1, retries, wait)
		time.Sleep(wait)
	}
}

// inlineBookshelf reads an .aux file and every sibling file it references,
// returning the filename → content map the submit API expects.
func inlineBookshelf(auxPath string) (map[string]string, error) {
	auxData, err := os.ReadFile(auxPath)
	if err != nil {
		return nil, err
	}
	dir := filepath.Dir(auxPath)
	files := map[string]string{filepath.Base(auxPath): string(auxData)}
	for _, line := range strings.Split(string(auxData), "\n") {
		if i := strings.Index(line, ":"); i >= 0 {
			line = line[i+1:]
		}
		for _, tok := range strings.Fields(line) {
			if filepath.Ext(tok) == "" {
				continue
			}
			data, err := os.ReadFile(filepath.Join(dir, filepath.Base(tok)))
			if err != nil {
				return nil, fmt.Errorf("aux references %s: %w", tok, err)
			}
			files[filepath.Base(tok)] = string(data)
		}
	}
	return files, nil
}

func (c *client) getJSON(args []string, usage, pathFmt string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: pufferctl %s", usage)
	}
	resp, err := http.Get(c.base + fmt.Sprintf(pathFmt, args[0]))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if err := checkStatus(resp); err != nil {
		return err
	}
	_, err = io.Copy(os.Stdout, resp.Body)
	return err
}

func (c *client) list() error {
	resp, err := http.Get(c.base + "/api/v1/jobs")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if err := checkStatus(resp); err != nil {
		return err
	}
	var rows []struct {
		ID          string    `json:"id"`
		Kind        string    `json:"kind"`
		Design      string    `json:"design"`
		State       string    `json:"state"`
		Stage       string    `json:"stage"`
		Attempts    int       `json:"attempts"`
		SubmittedAt time.Time `json:"submitted_at"`
		HPWL        float64   `json:"hpwl"`
		Error       string    `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
		return err
	}
	fmt.Printf("%-14s %-8s %-16s %-9s %-9s %3s  %s\n", "ID", "KIND", "DESIGN", "STATE", "STAGE", "TRY", "HPWL/ERROR")
	for _, r := range rows {
		detail := ""
		if r.HPWL > 0 {
			detail = fmt.Sprintf("%.0f", r.HPWL)
		}
		if r.Error != "" {
			detail = r.Error
		}
		fmt.Printf("%-14s %-8s %-16s %-9s %-9s %3d  %s\n",
			r.ID, r.Kind, r.Design, r.State, r.Stage, r.Attempts, detail)
	}
	return nil
}

func (c *client) cancel(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: pufferctl cancel <id>")
	}
	req, err := http.NewRequest(http.MethodPost, c.base+"/api/v1/jobs/"+args[0]+"/cancel", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if err := checkStatus(resp); err != nil {
		return err
	}
	_, err = io.Copy(os.Stdout, resp.Body)
	return err
}

func (c *client) artifact(args []string) error {
	fs := flag.NewFlagSet("artifact", flag.ExitOnError)
	out := fs.String("o", "", "output path (default: the artifact name)")
	fs.Parse(args)
	rest := fs.Args()
	if len(rest) != 2 {
		return fmt.Errorf("usage: pufferctl artifact [-o path] <id> <name>")
	}
	id, name := rest[0], rest[1]
	resp, err := http.Get(c.base + "/api/v1/jobs/" + id + "/artifacts/" + name)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if err := checkStatus(resp); err != nil {
		return err
	}
	dest := *out
	if dest == "" {
		dest = name
	}
	f, err := os.Create(dest)
	if err != nil {
		return err
	}
	n, err := io.Copy(f, resp.Body)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d bytes\n", dest, n)
	return nil
}

func (c *client) watch(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: pufferctl watch <id>")
	}
	return c.streamEvents(args[0])
}

// streamEvents consumes a job's SSE stream, rendering progress lines
// until the stream ends; the final state decides the error.
func (c *client) streamEvents(id string) error {
	return c.streamEventsURL(c.base+"/api/v1/jobs/"+id+"/events", id)
}

// streamEventsURL consumes any SSE progress stream (job or session).
func (c *client) streamEventsURL(url, id string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if err := checkStatus(resp); err != nil {
		return err
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	finalState := ""
	finalErr := ""
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var e struct {
			Type        string  `json:"type"`
			State       string  `json:"state"`
			Error       string  `json:"error"`
			Stage       string  `json:"stage"`
			StageStatus string  `json:"stage_status"`
			Iters       int     `json:"iters"`
			WallMS      float64 `json:"wall_ms"`
			Series      string  `json:"series"`
			Step        int     `json:"step"`
			Value       float64 `json:"value"`
			Line        string  `json:"line"`
		}
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &e); err != nil {
			continue
		}
		switch e.Type {
		case "state":
			fmt.Printf("state: %s %s\n", e.State, e.Error)
			finalState, finalErr = e.State, e.Error
		case "stage":
			fmt.Printf("stage %s %s (iters=%d wall=%.0fms)\n", e.Stage, e.StageStatus, e.Iters, e.WallMS)
		case "sample":
			fmt.Printf("  %s[%d] = %g\n", e.Series, e.Step, e.Value)
		case "log":
			fmt.Println(e.Line)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("stream: %w", err)
	}
	switch finalState {
	case "done", "open", "closed", "":
		return nil
	case "parked", "queued":
		fmt.Println("interrupted; it will resume when the daemon restarts")
		return nil
	default:
		return fmt.Errorf("%s %s: %s", id, finalState, finalErr)
	}
}

// session dispatches the interactive ECO session subcommands.
func (c *client) session(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: pufferctl session {open|delta|status|watch|close|list} ...")
	}
	switch cmd, rest := args[0], args[1:]; cmd {
	case "open":
		return c.sessionOpen(rest)
	case "delta":
		return c.sessionDelta(rest)
	case "status":
		return c.getJSON(rest, "session status <id>", "/api/v1/sessions/%s")
	case "watch":
		if len(rest) != 1 {
			return fmt.Errorf("usage: pufferctl session watch <id>")
		}
		return c.streamEventsURL(c.base+"/api/v1/sessions/"+rest[0]+"/events", rest[0])
	case "close":
		return c.sessionClose(rest)
	case "list":
		return c.sessionList()
	default:
		return fmt.Errorf("unknown session command %q", cmd)
	}
}

// sessionOpen opens an ECO session and, by default, waits for its base
// placement before returning the session ID on stdout.
func (c *client) sessionOpen(args []string) error {
	fs := flag.NewFlagSet("session open", flag.ExitOnError)
	var (
		profile  = fs.String("profile", "", "synthetic benchmark profile name")
		scale    = fs.Int("scale", 800, "profile scale divisor")
		seed     = fs.Int64("seed", 1, "random seed")
		aux      = fs.String("aux", "", "Bookshelf .aux file to upload (with its sibling files)")
		iters    = fs.Int("iters", 0, "max cold global placement iterations (0 = default)")
		workers  = fs.Int("workers", 0, "cap session parallelism (0 = GOMAXPROCS)")
		strategy = fs.String("strategy", "", "JSON strategy file (cmd/explore -out format)")
		warmMax  = fs.Int("warm-iters", 0, "max warm re-place iterations per delta (0 = derived)")
		nowait   = fs.Bool("nowait", false, "return after admission without waiting for the base placement")
		timeout  = fs.Duration("timeout", 10*time.Minute, "give up waiting for the base placement after this long")
	)
	fs.Parse(args)

	spec := map[string]any{"scale": *scale, "seed": *seed}
	if *profile != "" {
		spec["profile"] = *profile
	}
	if *aux != "" {
		files, err := inlineBookshelf(*aux)
		if err != nil {
			return err
		}
		spec["bookshelf"] = files
	}
	if *iters > 0 {
		spec["max_iters"] = *iters
	}
	if *workers > 0 {
		spec["workers"] = *workers
	}
	if *warmMax > 0 {
		spec["warm_max_iters"] = *warmMax
	}
	if *strategy != "" {
		data, err := os.ReadFile(*strategy)
		if err != nil {
			return err
		}
		spec["strategy"] = json.RawMessage(data)
	}

	body, _ := json.Marshal(spec)
	resp, err := http.Post(c.base+"/api/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if err := checkStatus(resp); err != nil {
		return err
	}
	var m struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return fmt.Errorf("decode response: %w", err)
	}
	fmt.Printf("session %s %s\n", m.ID, m.State)
	if *nowait {
		return nil
	}
	deadline := time.Now().Add(*timeout)
	for {
		st, errMsg, hpwl, err := c.sessionState(m.ID)
		if err != nil {
			return err
		}
		switch st {
		case "open":
			fmt.Printf("session %s open hpwl=%.0f\n", m.ID, hpwl)
			return nil
		case "failed", "closed":
			return fmt.Errorf("session %s %s: %s", m.ID, st, errMsg)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("session %s still %s after %s", m.ID, st, *timeout)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// sessionState fetches one session's durable state.
func (c *client) sessionState(id string) (state, errMsg string, hpwl float64, err error) {
	resp, err := http.Get(c.base + "/api/v1/sessions/" + id)
	if err != nil {
		return "", "", 0, err
	}
	defer resp.Body.Close()
	if err := checkStatus(resp); err != nil {
		return "", "", 0, err
	}
	var m struct {
		State    string  `json:"state"`
		Error    string  `json:"error"`
		LastHPWL float64 `json:"last_hpwl"`
	}
	if derr := json.NewDecoder(resp.Body).Decode(&m); derr != nil {
		return "", "", 0, derr
	}
	return m.State, m.Error, m.LastHPWL, nil
}

// sessionDelta applies a delta document (a file path, or "-" for stdin)
// and prints the new placement summary.
func (c *client) sessionDelta(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: pufferctl session delta <id> <delta.json|->")
	}
	id, src := args[0], args[1]
	var (
		data []byte
		err  error
	)
	if src == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(src)
	}
	if err != nil {
		return err
	}
	resp, err := http.Post(c.base+"/api/v1/sessions/"+id+"/deltas", "application/json", bytes.NewReader(data))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if err := checkStatus(resp); err != nil {
		return err
	}
	var dr struct {
		Deltas     int     `json:"deltas"`
		HPWL       float64 `json:"hpwl"`
		GPIters    int     `json:"gp_iters"`
		RuntimeMS  float64 `json:"runtime_ms"`
		Rehydrated bool    `json:"rehydrated"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
		return fmt.Errorf("decode response: %w", err)
	}
	note := ""
	if dr.Rehydrated {
		note = " (rehydrated)"
	}
	fmt.Printf("delta %d applied: hpwl=%.0f gp_iters=%d %.0fms%s\n",
		dr.Deltas, dr.HPWL, dr.GPIters, dr.RuntimeMS, note)
	return nil
}

func (c *client) sessionClose(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: pufferctl session close <id>")
	}
	req, err := http.NewRequest(http.MethodDelete, c.base+"/api/v1/sessions/"+args[0], nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if err := checkStatus(resp); err != nil {
		return err
	}
	_, err = io.Copy(os.Stdout, resp.Body)
	return err
}

func (c *client) sessionList() error {
	resp, err := http.Get(c.base + "/api/v1/sessions")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if err := checkStatus(resp); err != nil {
		return err
	}
	var rows []struct {
		ID       string  `json:"id"`
		Design   string  `json:"design"`
		State    string  `json:"state"`
		Deltas   int     `json:"deltas"`
		LastHPWL float64 `json:"last_hpwl"`
		Warm     bool    `json:"warm"`
		Error    string  `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
		return err
	}
	fmt.Printf("%-14s %-16s %-8s %6s %5s  %s\n", "ID", "DESIGN", "STATE", "DELTAS", "WARM", "HPWL/ERROR")
	for _, r := range rows {
		detail := ""
		if r.LastHPWL > 0 {
			detail = fmt.Sprintf("%.0f", r.LastHPWL)
		}
		if r.Error != "" {
			detail = r.Error
		}
		warm := "no"
		if r.Warm {
			warm = "yes"
		}
		fmt.Printf("%-14s %-16s %-8s %6d %5s  %s\n", r.ID, r.Design, r.State, r.Deltas, warm, detail)
	}
	return nil
}

// opsSnapshot mirrors the /api/v1/ops document; pufferctl top and
// cmd/diag -ops both render it.
type opsSnapshot struct {
	Status        string             `json:"status"`
	UptimeSeconds float64            `json:"uptime_seconds"`
	QueueDepth    int                `json:"queue_depth"`
	QueueCap      int                `json:"queue_cap"`
	Workers       int                `json:"workers"`
	ActiveJobs    int                `json:"active_jobs"`
	Sessions      map[string]int     `json:"sessions"`
	Counters      map[string]int64   `json:"counters"`
	Gauges        map[string]float64 `json:"gauges"`
	Histograms    map[string]struct {
		Count uint64  `json:"count"`
		Mean  float64 `json:"mean_seconds"`
		P50   float64 `json:"p50_seconds"`
		P95   float64 `json:"p95_seconds"`
		P99   float64 `json:"p99_seconds"`
	} `json:"histograms"`
	SLO []struct {
		Name      string  `json:"name"`
		Quantile  float64 `json:"quantile"`
		Value     float64 `json:"value_seconds"`
		Bound     float64 `json:"bound_seconds"`
		Window    uint64  `json:"window_count"`
		Evaluable bool    `json:"evaluable"`
		OK        bool    `json:"ok"`
		Burning   bool    `json:"burning"`
	} `json:"slo"`
	SLOHealthy bool `json:"slo_healthy"`
}

// top renders the daemon's one-call operational picture: lifecycle, queue
// pressure, latency digests, and live SLO status.
func (c *client) top() error {
	resp, err := http.Get(c.base + "/api/v1/ops")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if err := checkStatus(resp); err != nil {
		return err
	}
	var ops opsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&ops); err != nil {
		return fmt.Errorf("decode ops: %w", err)
	}
	fmt.Printf("pufferd %s  up %s  queue %d/%d  workers %d  active %d  sessions %d (%d warm)\n",
		ops.Status, time.Duration(ops.UptimeSeconds*float64(time.Second)).Round(time.Second),
		ops.QueueDepth, ops.QueueCap, ops.Workers, ops.ActiveJobs,
		ops.Sessions["tracked"], ops.Sessions["warm"])

	if len(ops.Histograms) > 0 {
		fmt.Printf("\n%-36s %8s %9s %9s %9s %9s\n", "LATENCY", "COUNT", "MEAN", "P50", "P95", "P99")
		for _, name := range sortedKeys(ops.Histograms) {
			h := ops.Histograms[name]
			fmt.Printf("%-36s %8d %9s %9s %9s %9s\n", name, h.Count,
				fmtSecs(h.Mean), fmtSecs(h.P50), fmtSecs(h.P95), fmtSecs(h.P99))
		}
	}
	if len(ops.SLO) > 0 {
		fmt.Printf("\n%-20s %6s %9s %9s %8s  %s\n", "SLO", "Q", "VALUE", "BOUND", "WINDOW", "STATUS")
		for _, o := range ops.SLO {
			status := "ok"
			switch {
			case !o.Evaluable:
				status = "no data"
			case o.Burning:
				status = "BURNING"
			case !o.OK:
				status = "failing"
			}
			fmt.Printf("%-20s %6.2f %9s %9s %8d  %s\n",
				o.Name, o.Quantile, fmtSecs(o.Value), fmtSecs(o.Bound), o.Window, status)
		}
	}
	if len(ops.Counters) > 0 {
		fmt.Printf("\n%-36s %8s\n", "COUNTER", "VALUE")
		for _, name := range sortedKeys(ops.Counters) {
			fmt.Printf("%-36s %8d\n", name, ops.Counters[name])
		}
	}
	return nil
}

// fleet renders a coordinator's worker registry: one row per known node
// with liveness, heartbeat age, and the load snapshot dispatch sees.
func (c *client) fleet() error {
	resp, err := http.Get(c.base + "/api/v1/nodes")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if err := checkStatus(resp); err != nil {
		return err
	}
	var rows []struct {
		ID           string  `json:"id"`
		Addr         string  `json:"addr"`
		Engine       string  `json:"engine"`
		Live         bool    `json:"live"`
		HeartbeatAge float64 `json:"heartbeat_age_seconds"`
		Jobs         int     `json:"jobs"`
		Stats        struct {
			Draining   bool `json:"draining"`
			QueueDepth int  `json:"queue_depth"`
			QueueCap   int  `json:"queue_cap"`
			Workers    int  `json:"workers"`
			ActiveJobs int  `json:"active_jobs"`
		} `json:"stats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
		return err
	}
	fmt.Printf("%-16s %-24s %-18s %-6s %9s %5s %7s %7s\n",
		"NODE", "ADDR", "ENGINE", "LIVE", "HEARTBEAT", "JOBS", "QUEUE", "ACTIVE")
	for _, r := range rows {
		live := "yes"
		switch {
		case !r.Live:
			live = "no"
		case r.Stats.Draining:
			live = "drain"
		}
		fmt.Printf("%-16s %-24s %-18s %-6s %8.1fs %5d %3d/%-3d %7d\n",
			r.ID, r.Addr, r.Engine, live, r.HeartbeatAge, r.Jobs,
			r.Stats.QueueDepth, r.Stats.QueueCap, r.Stats.ActiveJobs)
	}
	return nil
}

// fmtSecs renders a duration-in-seconds compactly for the top tables.
func fmtSecs(s float64) string {
	if s == 0 {
		return "-"
	}
	return time.Duration(s * float64(time.Second)).Round(10 * time.Microsecond).String()
}

// sortedKeys returns the map's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func (c *client) wait(args []string) error {
	fs := flag.NewFlagSet("wait", flag.ExitOnError)
	poll := fs.Duration("poll", 2*time.Second, "poll interval")
	timeout := fs.Duration("timeout", 10*time.Minute, "give up after this long")
	fs.Parse(args)
	rest := fs.Args()
	if len(rest) != 1 {
		return fmt.Errorf("usage: pufferctl wait [-poll d] [-timeout d] <id>")
	}
	id := rest[0]
	deadline := time.Now().Add(*timeout)
	for {
		resp, err := http.Get(c.base + "/api/v1/jobs/" + id)
		if err != nil {
			return err
		}
		var m struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		decErr := json.NewDecoder(resp.Body).Decode(&m)
		resp.Body.Close()
		if serr := checkStatus(resp); serr != nil {
			return serr
		}
		if decErr != nil {
			return decErr
		}
		switch m.State {
		case "done":
			fmt.Println("done")
			return nil
		case "failed", "canceled":
			return fmt.Errorf("job %s %s: %s", id, m.State, m.Error)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s still %s after %s", id, m.State, *timeout)
		}
		time.Sleep(*poll)
	}
}
