// Command pufferd is the PUFFER placement job daemon: an HTTP service that
// admits placement and strategy-exploration jobs through a bounded queue,
// runs them on a worker pool with per-stage checkpointing into a spool
// directory, streams live progress as server-sent events, and survives
// restarts — interrupted jobs are re-admitted and resumed from their last
// stage-boundary checkpoint.
//
// Usage:
//
//	pufferd -addr :8080 -spool /var/lib/pufferd -workers 4 -queue 32
//
// Besides one-shot jobs, the daemon serves interactive ECO sessions under
// /api/v1/sessions: open a design once (cold place), then stream small
// deltas against the warm engine state — each re-places in a fraction of
// the cold wall. Session warm state idle longer than -session-idle is
// evicted (the spooled snapshot remains; the next delta rehydrates it).
//
// On SIGTERM or SIGINT the daemon drains gracefully: it stops admitting
// (submissions get 503), cancels running jobs so they park at their last
// checkpoint, parks open ECO sessions at their last applied delta, and
// exits once the pool is idle or -drain-timeout expires. Submit and watch
// jobs with cmd/pufferctl.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"puffer/internal/obs"
	"puffer/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
		addrFile     = flag.String("addr-file", "", "write the bound address to this file once listening")
		spool        = flag.String("spool", "pufferd-spool", "job spool directory (durable; holds manifests, checkpoints, artifacts)")
		queueCap     = flag.Int("queue", 16, "admission queue capacity (excess submissions get 429 + Retry-After)")
		workers      = flag.Int("workers", 2, "job worker pool size")
		jobTimeout   = flag.Duration("job-timeout", 0, "default per-job deadline for jobs that set none (0 = none)")
		sessionIdle  = flag.Duration("session-idle", 15*time.Minute, "evict an ECO session's in-memory warm state after this idle time (snapshot stays; 0 = never)")
		queueSLO     = flag.Duration("queue-slo", time.Minute, "queue-wait p99 SLO bound (/readyz reports 503 while it burns)")
		drainTimeout = flag.Duration("drain-timeout", 60*time.Second, "how long to wait for running jobs to park on shutdown")
		drainGrace   = flag.Duration("drain-grace", 0, "hold /readyz at 503 this long before parking jobs on shutdown (lets load balancers drain)")
		verbose      = flag.Bool("v", true, "log job lifecycle events")
		debugLog     = flag.Bool("log-debug", false, "also log per-request and probe lines")
	)
	flag.Parse()

	// Structured logs on stderr: every record under a request or worker
	// carries trace/span/job/session attrs (obs.LogHandler). -v=false keeps
	// only warnings; -log-debug adds the per-request lines.
	level := slog.LevelInfo
	switch {
	case *debugLog:
		level = slog.LevelDebug
	case !*verbose:
		level = slog.LevelWarn
	}
	logger := obs.NewLogger(os.Stderr, level)
	srv, err := serve.New(serve.Config{
		SpoolDir:          *spool,
		QueueCap:          *queueCap,
		Workers:           *workers,
		DefaultJobTimeout: *jobTimeout,
		SessionIdle:       *sessionIdle,
		QueueWaitSLO:      *queueSLO,
		DrainGrace:        *drainGrace,
		Log:               logger,
	})
	if err != nil {
		log.Fatal(err)
	}
	if srv.Recovered > 0 {
		logger.Info("recovered interrupted jobs", "count", srv.Recovered, "spool", *spool)
	}
	if srv.RecoveredSessions > 0 {
		logger.Info("parked ECO sessions; next delta rehydrates", "count", srv.RecoveredSessions)
	}
	srv.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	// The listening line is a stable interface: scripts scrape the port.
	fmt.Printf("pufferd listening on %s (spool %s, %d workers, queue %d)\n",
		bound, *spool, *workers, *queueCap)

	hsrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	errCh := make(chan error, 1)
	go func() { errCh <- hsrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigCh:
		logger.Info("signal received, draining", "signal", sig.String(), "timeout", *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			logger.Error("drain", "error", err)
		}
		shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer shutCancel()
		hsrv.Shutdown(shutCtx)
		logger.Info("drained; interrupted jobs resume on next start")
	case err := <-errCh:
		log.Fatalf("pufferd: serve: %v", err)
	}
}
