// Command pufferd is the PUFFER placement job daemon: an HTTP service that
// admits placement and strategy-exploration jobs through a bounded queue,
// runs them on a worker pool with per-stage checkpointing into a spool
// directory, streams live progress as server-sent events, and survives
// restarts — interrupted jobs are re-admitted and resumed from their last
// stage-boundary checkpoint.
//
// Usage:
//
//	pufferd -addr :8080 -spool /var/lib/pufferd -workers 4 -queue 32
//
// Besides one-shot jobs, the daemon serves interactive ECO sessions under
// /api/v1/sessions: open a design once (cold place), then stream small
// deltas against the warm engine state — each re-places in a fraction of
// the cold wall. Session warm state idle longer than -session-idle is
// evicted (the spooled snapshot remains; the next delta rehydrates it).
//
// Fleet mode: `pufferd -coordinator` runs the fleet coordinator instead of
// a worker — it owns a content-addressed result cache and dispatches
// submissions to registered workers. A worker joins a fleet with
// `pufferd -join http://coord:9090 -advertise http://me:8080`; it
// heartbeats its load to the coordinator and otherwise behaves exactly as
// stand-alone (the coordinator speaks the same job API any client does).
//
// On SIGTERM or SIGINT the daemon drains gracefully: it stops admitting
// (submissions get 503), cancels running jobs so they park at their last
// checkpoint, parks open ECO sessions at their last applied delta, and
// exits once the pool is idle or -drain-timeout expires. Submit and watch
// jobs with cmd/pufferctl.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"puffer/internal/coord"
	"puffer/internal/obs"
	"puffer/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
		addrFile     = flag.String("addr-file", "", "write the bound address to this file once listening")
		spool        = flag.String("spool", "pufferd-spool", "job spool directory (durable; holds manifests, checkpoints, artifacts)")
		queueCap     = flag.Int("queue", 16, "admission queue capacity (excess submissions get 429 + Retry-After)")
		workers      = flag.Int("workers", 2, "job worker pool size")
		jobTimeout   = flag.Duration("job-timeout", 0, "default per-job deadline for jobs that set none (0 = none)")
		sessionIdle  = flag.Duration("session-idle", 15*time.Minute, "evict an ECO session's in-memory warm state after this idle time (snapshot stays; 0 = never)")
		queueSLO     = flag.Duration("queue-slo", time.Minute, "queue-wait p99 SLO bound (/readyz reports 503 while it burns)")
		drainTimeout = flag.Duration("drain-timeout", 60*time.Second, "how long to wait for running jobs to park on shutdown")
		drainGrace   = flag.Duration("drain-grace", 0, "hold /readyz at 503 this long before parking jobs on shutdown (lets load balancers drain)")
		verbose      = flag.Bool("v", true, "log job lifecycle events")
		debugLog     = flag.Bool("log-debug", false, "also log per-request and probe lines")

		// Fleet: worker side.
		join      = flag.String("join", "", "coordinator base URL to register this worker with (fleet mode)")
		advertise = flag.String("advertise", "", "URL workers advertise to the coordinator (default http://<bound addr>)")
		heartbeat = flag.Duration("heartbeat", 2*time.Second, "heartbeat period when joined to a coordinator")
		nodeID    = flag.String("node-id", "", "stable node ID for fleet registration (default: hostname)")

		// Fleet: coordinator side.
		coordinator = flag.Bool("coordinator", false, "run as the fleet coordinator instead of a worker")
		casDir      = flag.String("cas", "", "content-addressed store directory (coordinator; default <spool>/cas)")
		deadAfter   = flag.Duration("dead-after", 10*time.Second, "heartbeat age past which a worker is dead and its jobs fail over (coordinator)")
		poll        = flag.Duration("poll", time.Second, "dispatched-job watch interval (coordinator)")
		pendingCap  = flag.Int("pending", 64, "fleet-wide pending-job cap before submissions get 429 (coordinator)")
		tenantRate  = flag.Float64("tenant-rate", 0, "per-tenant dispatch rate limit in jobs/sec (coordinator; 0 = unlimited)")
		tenantBurst = flag.Int("tenant-burst", 4, "per-tenant dispatch burst (coordinator)")
		estopMargin = flag.Float64("early-stop-margin", 0, "exploration early-stop domination margin over the best trial's overflow envelope (coordinator; 0 = default 1.5)")
	)
	flag.Parse()

	// Structured logs on stderr: every record under a request or worker
	// carries trace/span/job/session attrs (obs.LogHandler). -v=false keeps
	// only warnings; -log-debug adds the per-request lines.
	level := slog.LevelInfo
	switch {
	case *debugLog:
		level = slog.LevelDebug
	case !*verbose:
		level = slog.LevelWarn
	}
	logger := obs.NewLogger(os.Stderr, level)

	if *coordinator && *join != "" {
		log.Fatal("pufferd: -coordinator and -join are mutually exclusive")
	}
	if *coordinator {
		runCoordinator(logger, coordFlags{
			addr: *addr, addrFile: *addrFile, spool: *spool, casDir: *casDir,
			deadAfter: *deadAfter, poll: *poll, pendingCap: *pendingCap,
			tenantRate: *tenantRate, tenantBurst: *tenantBurst,
			estopMargin:  *estopMargin,
			drainTimeout: *drainTimeout,
		})
		return
	}

	srv, err := serve.New(serve.Config{
		SpoolDir:          *spool,
		QueueCap:          *queueCap,
		Workers:           *workers,
		DefaultJobTimeout: *jobTimeout,
		SessionIdle:       *sessionIdle,
		QueueWaitSLO:      *queueSLO,
		DrainGrace:        *drainGrace,
		Log:               logger,
	})
	if err != nil {
		log.Fatal(err)
	}
	if srv.Recovered > 0 {
		logger.Info("recovered interrupted jobs", "count", srv.Recovered, "spool", *spool)
	}
	if srv.RecoveredSessions > 0 {
		logger.Info("parked ECO sessions; next delta rehydrates", "count", srv.RecoveredSessions)
	}
	srv.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	// The listening line is a stable interface: scripts scrape the port.
	fmt.Printf("pufferd listening on %s (spool %s, %d workers, queue %d)\n",
		bound, *spool, *workers, *queueCap)

	// Joined to a fleet: announce until shutdown. The manifest callback
	// snapshots live load per heartbeat so dispatch sees fresh depth.
	annCtx, annCancel := context.WithCancel(context.Background())
	defer annCancel()
	if *join != "" {
		id := *nodeID
		if id == "" {
			if h, err := os.Hostname(); err == nil {
				id = h
			} else {
				id = "worker-" + bound
			}
		}
		adv := *advertise
		if adv == "" {
			adv = "http://" + bound
		}
		ann := &coord.Announcer{
			Coordinator: *join,
			Interval:    *heartbeat,
			Log:         logger,
			Manifest: func() coord.NodeManifest {
				return coord.NodeManifest{
					Format: coord.NodeManifestFormat,
					ID:     id,
					Addr:   adv,
					Engine: serve.EngineVersion,
					Stats:  srv.Stats(),
				}
			},
		}
		go ann.Run(annCtx)
		logger.Info("joined fleet", "coordinator", *join, "node", id, "advertise", adv)
	}

	hsrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	errCh := make(chan error, 1)
	go func() { errCh <- hsrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigCh:
		logger.Info("signal received, draining", "signal", sig.String(), "timeout", *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			logger.Error("drain", "error", err)
		}
		annCancel() // last heartbeats already carried Draining stats
		shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer shutCancel()
		hsrv.Shutdown(shutCtx)
		logger.Info("drained; interrupted jobs resume on next start")
	case err := <-errCh:
		log.Fatalf("pufferd: serve: %v", err)
	}
}

type coordFlags struct {
	addr, addrFile, spool, casDir string
	deadAfter, poll, drainTimeout time.Duration
	pendingCap, tenantBurst       int
	tenantRate, estopMargin       float64
}

// runCoordinator is the -coordinator main: same listen/drain skeleton as
// the worker, around a coord.Server instead of a serve.Server.
func runCoordinator(logger *slog.Logger, f coordFlags) {
	cs, err := coord.New(coord.Config{
		SpoolDir:        f.spool,
		CASDir:          f.casDir,
		DeadAfter:       f.deadAfter,
		Poll:            f.poll,
		PendingCap:      f.pendingCap,
		TenantRate:      f.tenantRate,
		TenantBurst:     f.tenantBurst,
		EarlyStopMargin: f.estopMargin,
		Log:             logger,
	})
	if err != nil {
		log.Fatal(err)
	}
	if cs.Recovered > 0 {
		logger.Info("recovered fleet jobs", "count", cs.Recovered, "spool", f.spool)
	}
	cs.Start()

	ln, err := net.Listen("tcp", f.addr)
	if err != nil {
		log.Fatal(err)
	}
	bound := ln.Addr().String()
	if f.addrFile != "" {
		if err := os.WriteFile(f.addrFile, []byte(bound+"\n"), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("pufferd coordinator listening on %s (spool %s, dead-after %s)\n",
		bound, f.spool, f.deadAfter)

	hsrv := &http.Server{Handler: cs.Handler(), ReadHeaderTimeout: 10 * time.Second}
	errCh := make(chan error, 1)
	go func() { errCh <- hsrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigCh:
		logger.Info("signal received, stopping dispatch", "signal", sig.String())
		shutCtx, shutCancel := context.WithTimeout(context.Background(), f.drainTimeout)
		defer shutCancel()
		if err := cs.Drain(shutCtx); err != nil {
			logger.Error("drain", "error", err)
		}
		hsrv.Shutdown(shutCtx)
		cs.Close()
		logger.Info("coordinator stopped; pending jobs re-admit on next start")
	case err := <-errCh:
		log.Fatalf("pufferd: coordinator serve: %v", err)
	}
}
