package puffer

import (
	"context"
	"sync"
	"testing"

	"puffer/internal/obs"
	"puffer/internal/synth"
)

// runOutcome captures everything one RunCtx invocation should own
// exclusively: its design's final quality and its registry's contents.
type runOutcome struct {
	hpwl    float64
	gpIters int64
	samples int
}

// runIsolated executes one full flow with its own design instance, obs
// registry, tracer, and recorder — the per-job setup a daemon worker uses.
func runIsolated(t *testing.T, seed int64) runOutcome {
	t.Helper()
	p, err := synth.ProfileByName("MEDIA_SUBSYS")
	if err != nil {
		t.Fatal(err)
	}
	d := synth.Generate(p, 3000, seed)
	cfg := quickConfig()
	cfg.Place.Seed = seed
	reg := obs.NewRegistry()
	cfg.Obs = obs.NewRecorder(obs.NewTracer(), reg)
	res, err := RunCtx(context.Background(), d, cfg)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	snap := reg.Snapshot()
	return runOutcome{
		hpwl:    res.HPWL,
		gpIters: snap.Counters["place.iters"],
		samples: len(snap.Series["place.hpwl"]),
	}
}

// TestConcurrentRunCtxIsolated runs several flows simultaneously, each
// with a separate obs registry, and checks that nothing bleeds across
// them: every concurrent run reproduces its serial twin exactly — same
// HPWL, same iteration counter, same recorded series length. Run under
// -race (the CI serve job does) this also proves the engine shares no
// unsynchronized state between invocations.
func TestConcurrentRunCtxIsolated(t *testing.T) {
	seeds := []int64{1, 9, 23, 57}

	serial := make([]runOutcome, len(seeds))
	for i, seed := range seeds {
		serial[i] = runIsolated(t, seed)
	}

	concurrent := make([]runOutcome, len(seeds))
	var wg sync.WaitGroup
	for i, seed := range seeds {
		wg.Add(1)
		go func(i int, seed int64) {
			defer wg.Done()
			concurrent[i] = runIsolated(t, seed)
		}(i, seed)
	}
	wg.Wait()

	distinct := map[float64]bool{}
	for i, seed := range seeds {
		if concurrent[i] != serial[i] {
			t.Errorf("seed %d: concurrent run %+v != serial run %+v — state bled between invocations",
				seed, concurrent[i], serial[i])
		}
		if concurrent[i].samples == 0 || concurrent[i].gpIters == 0 {
			t.Errorf("seed %d: registry recorded nothing (%+v)", seed, concurrent[i])
		}
		distinct[concurrent[i].hpwl] = true
	}
	// Different seeds must give different answers; identical HPWLs across
	// seeds would mean the runs observed each other's designs.
	if len(distinct) != len(seeds) {
		t.Errorf("only %d distinct HPWLs for %d seeds: %v", len(distinct), len(seeds), distinct)
	}
}
