// Bookshelf demonstrates file-based interoperability: a benchmark is
// generated, written in the standard Bookshelf format (.aux/.nodes/.nets/
// .pl/.scl/.wts), parsed back, placed with PUFFER, and the placed result
// is written out again — the round trip any external placement or
// evaluation tool would use.
//
//	go run ./examples/bookshelf
package main

import (
	"fmt"
	"log"
	"os"

	"puffer"
	"puffer/internal/bookshelf"
	"puffer/internal/router"
	"puffer/internal/synth"
)

func main() {
	dir, err := os.MkdirTemp("", "puffer-bookshelf-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Generate and export.
	profile, err := synth.ProfileByName("ASIC_ENTITY")
	if err != nil {
		log.Fatal(err)
	}
	original := synth.Generate(profile, 1500, 7)
	auxPath, err := bookshelf.Write(original, dir, "asic_entity")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", auxPath)

	// Parse back and verify the round trip.
	design, err := bookshelf.Parse(auxPath)
	if err != nil {
		log.Fatal(err)
	}
	s := design.Stats()
	fmt.Printf("parsed %s: %d macros, %d cells, %d nets, %d pins (HPWL %.0f)\n",
		design.Name, s.Macros, s.Cells, s.Nets, s.Pins, design.HPWL())

	// Place and evaluate.
	if _, err := puffer.Run(design, puffer.DefaultConfig()); err != nil {
		log.Fatal(err)
	}
	rr := puffer.Evaluate(design, router.DefaultConfig())
	fmt.Printf("placed: HPWL=%.0f, routed HOF=%.2f%% VOF=%.2f%%\n",
		design.HPWL(), rr.HOF, rr.VOF)

	// Export the placed result.
	placedPath, err := bookshelf.Write(design, dir, "asic_entity_placed")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote placed design to %s\n", placedPath)
}
