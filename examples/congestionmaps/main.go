// Congestionmaps reproduces the paper's Fig. 5 experiment on one design:
// it places the MEDIA_SUBSYS profile with the three compared flows
// (commercial profile, RePlAce-style, PUFFER), routes each result, and
// renders horizontal/vertical overflow heat maps side by side (plus PGM
// images under ./maps for external viewers).
//
//	go run ./examples/congestionmaps
package main

import (
	"fmt"
	"log"

	"puffer/internal/experiments"
)

func main() {
	opts := experiments.DefaultOptions()
	opts.Scale = 2000
	opts.Logf = func(format string, args ...any) { fmt.Printf("  "+format+"\n", args...) }

	maps, err := experiments.Fig5(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.FormatFig5(maps))

	for _, m := range maps {
		base := fmt.Sprintf("maps/%s_%s", m.Design, m.Placer)
		if err := experiments.WritePGM(base+"_h.pgm", m.H, m.W, m.Ht); err != nil {
			log.Printf("skip %s: %v (run from repo root to write PGM files)", base, err)
			break
		}
		if err := experiments.WritePGM(base+"_v.pgm", m.V, m.W, m.Ht); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s_{h,v}.pgm\n", base)
	}
}
