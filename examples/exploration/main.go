// Exploration demonstrates the Bayesian strategy exploration of
// Sec. III-C: the PUFFER strategy parameters (feature weights, padding
// formula constants, recycling, utilization schedule, triggers, estimator
// knobs) are tuned by SMBO/TPE on a small routability-challenged design,
// and the tuned strategy is then applied to a larger benchmark — exactly
// the workflow the paper prescribes.
//
//	go run ./examples/exploration
package main

import (
	"fmt"
	"log"

	"puffer"
	"puffer/internal/place"
	"puffer/internal/router"
	"puffer/internal/synth"
)

func main() {
	// Tune on a small design (fast objective evaluations)...
	small, err := synth.ProfileByName("OR1200")
	if err != nil {
		log.Fatal(err)
	}
	tuneDesign := synth.Generate(small, 3000, 1)
	fmt.Printf("tuning on %s (%d cells)\n", tuneDesign.Name, tuneDesign.Stats().Cells)

	pcfg := place.DefaultConfig()
	pcfg.MaxIters = 300
	final, best, evals := puffer.ExploreStrategy(tuneDesign, pcfg, 8, 1, nil)
	fmt.Printf("exploration finished after %d observations\n", evals)
	fmt.Printf("  tuned mu=%.2f beta=%.2f zeta=%.2f tau=%.2f xi=%d theta=%.0f\n",
		best.Mu, best.Beta, best.Zeta, best.Tau, best.MaxIters, best.Theta)
	_ = final

	// ...then apply the tuned strategy to a larger, different benchmark.
	big, err := synth.ProfileByName("MEDIA_SUBSYS")
	if err != nil {
		log.Fatal(err)
	}
	for _, run := range []struct {
		name     string
		strategy func(cfg *puffer.Config)
	}{
		{"default ", func(cfg *puffer.Config) {}},
		{"explored", func(cfg *puffer.Config) {
			cfg.Strategy = best
			cfg.Legal.Theta = best.Theta
		}},
	} {
		d := synth.Generate(big, 2000, 1)
		cfg := puffer.DefaultConfig()
		run.strategy(&cfg)
		if _, err := puffer.Run(d, cfg); err != nil {
			log.Fatal(err)
		}
		rr := puffer.Evaluate(d, router.DefaultConfig())
		fmt.Printf("%s on %s: HOF=%.2f%% VOF=%.2f%% WL=%.0f\n",
			run.name, d.Name, rr.HOF, rr.VOF, rr.WL)
	}
}
