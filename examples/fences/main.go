// Fences demonstrates placement region constraints: a block of cells is
// confined to a fence rectangle, the full PUFFER flow runs (the fence is
// honoured by global placement, legalization, and detailed placement),
// and the result is verified with the legality checker.
//
//	go run ./examples/fences
package main

import (
	"fmt"
	"log"

	"puffer"
	"puffer/internal/geom"
	"puffer/internal/legal"
	"puffer/internal/netlist"
	"puffer/internal/router"
	"puffer/internal/synth"
)

func main() {
	profile, err := synth.ProfileByName("ASIC_ENTITY")
	if err != nil {
		log.Fatal(err)
	}
	design := synth.Generate(profile, 1200, 3)

	// Confine every sixth cell to a fence in the upper-left quadrant
	// (think of a voltage island or an analog block's digital wrapper).
	// The synthetic floorplan rings macros around the periphery, so the
	// island sits in the open core.
	fence := netlist.Fence{
		Name: "island",
		Rect: geom.RectWH(
			design.Region.Lo.X+design.Region.W()*0.30,
			design.Region.Lo.Y+float64(int(design.Region.H()*0.30)),
			design.Region.W()*0.40,
			float64(int(design.Region.H()*0.40)),
		),
	}
	design.Fences = append(design.Fences, fence)
	fenced := 0
	for i := range design.Cells {
		if !design.Cells[i].Fixed && i%10 == 0 {
			design.Cells[i].Fence = 1
			fenced++
		}
	}
	fmt.Printf("%d of %d cells fenced into %v\n", fenced, design.Stats().Cells, fence.Rect)

	cfg := puffer.DefaultConfig()
	if _, err := puffer.Run(design, cfg); err != nil {
		log.Fatal(err)
	}

	if vs := legal.Check(design, 0); len(vs) > 0 {
		log.Fatalf("legality violations: %v", vs[0])
	}
	inside := 0
	for i := range design.Cells {
		c := &design.Cells[i]
		if c.Fence == 1 && fence.Rect.ContainsClosed(c.Center()) {
			inside++
		}
	}
	fmt.Printf("legality clean; %d/%d fenced cells inside the island\n", inside, fenced)

	rr := puffer.Evaluate(design, router.DefaultConfig())
	fmt.Printf("routed: HOF=%.2f%% VOF=%.2f%% WL=%.0f\n", rr.HOF, rr.VOF, rr.WL)
}
