// Pipeline: compose a custom PUFFER stage list instead of the default
// Fig.-2 flow. This example skips detailed placement, splices in a second
// routability-optimizer pass between placement and legalization (the
// stage-shared optimizer keeps the padding history of Eq. 15, so the
// second pass recycles against the first), runs the whole thing under a
// deadline, checkpoints after every stage, and prints the per-stage
// statistics the pipeline records.
//
//	go run ./examples/pipeline
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"puffer/internal/router"
	"puffer/internal/synth"
	"puffer/pipeline"
)

func main() {
	profile, err := synth.ProfileByName("MEDIA_SUBSYS")
	if err != nil {
		log.Fatal(err)
	}
	design := synth.Generate(profile, 2000, 1)
	fmt.Printf("design %s: %d cells, %d nets\n",
		design.Name, len(design.Cells), len(design.Nets))

	cfg := pipeline.DefaultConfig()
	rc, err := pipeline.NewRunContext(design, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// A custom stage: one more routability-optimizer call on the converged
	// placement, before legalization freezes the padding into sites.
	secondPass := pipeline.StageFunc{
		StageName: "routability2",
		Fn: func(ctx context.Context, rc *pipeline.RunContext) error {
			info, err := rc.PadOptimizer().RunCtx(ctx)
			if err != nil {
				return err
			}
			rc.Result.PaddingRuns = append(rc.Result.PaddingRuns, info)
			rc.SetIters(1)
			rc.Logf("stage: second routability pass: padded=%d recycled=%d util=%.3f/%.3f",
				info.PaddedCells, info.Recycled, info.Utilization, info.TargetUtil)
			return nil
		},
	}

	// Custom stage list: place, extra padding pass, legalize — no DP.
	pl := pipeline.New(
		pipeline.GlobalPlace(),
		secondPass,
		pipeline.Legalize(),
	)
	pl.Checkpointer = func(cp *pipeline.Checkpoint) error {
		fmt.Printf("  checkpoint after %q (%d cells)\n", cp.Stage, len(cp.X))
		return nil // a real job server would cp.Save(path) here
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := pl.Run(ctx, rc); err != nil {
		var se *pipeline.StageError
		if errors.As(err, &se) && errors.Is(err, pipeline.ErrCanceled) {
			log.Fatalf("deadline hit during stage %q; design still valid, HPWL=%.0f",
				se.Stage, rc.Result.HPWL)
		}
		log.Fatal(err)
	}

	fmt.Printf("placed: HPWL=%.0f, %d padding rounds (incl. second pass)\n",
		rc.Result.HPWL, len(rc.Result.PaddingRuns))
	for _, st := range rc.Result.Stages {
		fmt.Printf("  stage %-12s %10s  iters=%-6d allocs=%d\n",
			st.Name, st.Wall.Round(time.Microsecond), st.Iters, st.AllocsDelta)
	}

	rr := router.Route(design, router.DefaultConfig())
	fmt.Printf("routed: HOF=%.2f%% VOF=%.2f%% WL=%.0f\n", rr.HOF, rr.VOF, rr.WL)
}
