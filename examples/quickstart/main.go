// Quickstart: generate a small routability-challenged design, run the full
// PUFFER flow (global placement → multi-feature cell padding →
// white-space-assisted legalization → detailed placement), and judge the
// result with the evaluation global router.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"puffer"
	"puffer/internal/router"
	"puffer/internal/synth"
)

func main() {
	// 1. A benchmark. MEDIA_SUBSYS is the paper's most congested design;
	//    scale 2000 keeps this example under a second.
	profile, err := synth.ProfileByName("MEDIA_SUBSYS")
	if err != nil {
		log.Fatal(err)
	}
	design := synth.Generate(profile, 2000, 1)
	stats := design.Stats()
	fmt.Printf("design %s: %d macros, %d cells, %d nets, %d pins\n",
		design.Name, stats.Macros, stats.Cells, stats.Nets, stats.Pins)

	// 2. The PUFFER flow with default strategy parameters.
	cfg := puffer.DefaultConfig()
	cfg.Logf = func(format string, args ...any) { fmt.Printf("  "+format+"\n", args...) }
	result, err := puffer.Run(design, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("placed in %s: HPWL=%.0f, %d padding rounds, padding area=%.1f\n",
		result.Runtime.Round(1e6), result.HPWL, len(result.PaddingRuns), result.PaddingArea)

	// 3. Evaluate routability the way the paper's Table II does.
	rr := puffer.Evaluate(design, router.DefaultConfig())
	fmt.Printf("routed: HOF=%.2f%% VOF=%.2f%% WL=%.0f\n", rr.HOF, rr.VOF, rr.WL)
	if rr.HOF <= 1 && rr.VOF <= 1 {
		fmt.Println("routability: PASS (1% criterion)")
	} else {
		fmt.Println("routability: FAIL (1% criterion)")
	}
}
