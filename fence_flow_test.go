package puffer

import (
	"testing"

	"puffer/internal/geom"
	"puffer/internal/legal"
	"puffer/internal/netlist"
	"puffer/internal/synth"
)

// TestFullFlowWithFences runs the complete PUFFER flow on a design with a
// placement fence and verifies the constraint survives every stage
// (global placement, padding, legalization, detailed placement).
func TestFullFlowWithFences(t *testing.T) {
	p, err := synth.ProfileByName("OR1200")
	if err != nil {
		t.Fatal(err)
	}
	d := synth.Generate(p, 2000, 5)
	// Fence in the upper-right quadrant, row aligned.
	fr := geom.RectWH(
		d.Region.Lo.X+d.Region.W()*0.5,
		d.Region.Lo.Y+float64(int(d.Region.H()*0.5)),
		d.Region.W()*0.45,
		float64(int(d.Region.H()*0.4)),
	)
	d.Fences = append(d.Fences, netlist.Fence{Name: "f", Rect: fr})
	fenced := 0
	for i := range d.Cells {
		if !d.Cells[i].Fixed && i%8 == 0 {
			d.Cells[i].Fence = 1
			fenced++
		}
	}
	if fenced == 0 {
		t.Fatal("no cells fenced")
	}
	cfg := DefaultConfig()
	cfg.Place.MaxIters = 300
	if _, err := Run(d, cfg); err != nil {
		t.Fatal(err)
	}
	if vs := legal.Check(d, 0); len(vs) != 0 {
		t.Fatalf("%d violations after fenced flow, first: %s", len(vs), vs[0])
	}
	for i := range d.Cells {
		c := &d.Cells[i]
		if c.Fence != 1 {
			continue
		}
		if c.X < fr.Lo.X-1e-6 || c.X+c.W > fr.Hi.X+1e-6 ||
			c.Y < fr.Lo.Y-1e-6 || c.Y+c.H > fr.Hi.Y+1e-6 {
			t.Fatalf("fenced cell %d at (%v,%v) outside fence %v", i, c.X, c.Y, fr)
		}
	}
}
