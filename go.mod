module puffer

go 1.22
