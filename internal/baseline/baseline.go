// Package baseline implements the two comparison placers of the paper's
// Table II on top of the same electrostatic engine:
//
//   - RePlAce: the academic routability-driven placer [5], modeled by its
//     published mechanism — truncated local cell inflation from a plain
//     probabilistic congestion estimate, no multi-feature padding, no
//     recycling, no detour expansion, and legalization that does not
//     inherit the inflation (the exact deltas PUFFER claims credit over).
//
//   - Commercial: a stand-in for the commercial tool profile — a
//     router-in-the-loop congestion oracle (expensive but accurate),
//     white-space allocation around hotspots, and a finer convergence
//     target. It is tuned to the profile Table II reports: best
//     wirelength, competitive overflow, longest runtime.
package baseline

import (
	"math"

	"puffer/internal/cong"
	"puffer/internal/dp"
	"puffer/internal/geom"
	"puffer/internal/legal"
	"puffer/internal/netlist"
	"puffer/internal/place"
	"puffer/internal/router"
)

// Result summarizes a baseline run.
type Result struct {
	HPWL  float64
	GP    place.Result
	Legal legal.Result
	// OptimizerCalls counts routability-optimizer invocations.
	OptimizerCalls int
}

// RePlAceOpts tunes the RePlAce-style baseline.
type RePlAceOpts struct {
	Place place.Config
	// Tau is the density overflow below which inflation rounds trigger.
	Tau float64
	// MaxRounds bounds inflation rounds.
	MaxRounds int
	// Gain converts positive local congestion into relative inflation.
	Gain float64
	// RoundCap is the maximum relative inflation added per round.
	RoundCap float64
	// TotalCap bounds total inflation area as a fraction of movable area.
	TotalCap float64
}

// DefaultRePlAceOpts returns the baseline defaults.
func DefaultRePlAceOpts() RePlAceOpts {
	cfg := place.DefaultConfig()
	// RePlAce converges further before stopping and pays for it in
	// iterations.
	cfg.StopOverflow = 0.065
	cfg.MaxIters = 700
	// RePlAce runs its engine to deep convergence without an aggressive
	// plateau cut-off, which costs iterations on designs whose overflow
	// floor sits above the stop target.
	cfg.PlateauIters = 160
	return RePlAceOpts{
		Place:     cfg,
		Tau:       0.10,
		MaxRounds: 5,
		Gain:      1.0,
		RoundCap:  0.6,
		TotalCap:  0.15,
	}
}

// RunRePlAce places d with the RePlAce-style inflation flow.
func RunRePlAce(d *netlist.Design, opts RePlAceOpts, gridW, gridH int) (*Result, error) {
	res := &Result{}
	// Plain probabilistic estimation: no detour expansion, and only a weak
	// pin-density signal — RePlAce inflates from router-style wire-demand
	// overflow, which sees pin/escape congestion only indirectly.
	params := cong.DefaultParams()
	params.ExpandRadius = 0
	params.PinPenalty = 0.1
	est := cong.NewEstimator(d, gridW, gridH, params)

	rounds := 0
	movableArea := d.TotalMovableArea()
	hook := place.HookFunc(func(iter int, overflow float64) bool {
		if overflow >= opts.Tau || rounds >= opts.MaxRounds {
			return false
		}
		rounds++
		res.OptimizerCalls++
		m := est.Estimate()
		changed := false
		for ci := range d.Cells {
			c := &d.Cells[ci]
			if c.Fixed {
				continue
			}
			lcg := localCongestion(m, c)
			if lcg <= 0 {
				continue // truncated: slack information discarded
			}
			infl := math.Min(lcg*opts.Gain, opts.RoundCap)
			c.PadW += c.W * infl
			changed = true
		}
		// Global cap.
		if total := d.TotalPaddingArea(); total > opts.TotalCap*movableArea {
			sr := opts.TotalCap * movableArea / total
			for ci := range d.Cells {
				if !d.Cells[ci].Fixed {
					d.Cells[ci].PadW *= sr
				}
			}
		}
		return changed
	})

	placer := place.New(d, opts.Place)
	gp := placer.Run(hook)
	res.GP = *gp

	// RePlAce legalizes physical cells: the inflation is not inherited.
	lcfg := legal.DefaultConfig()
	lcfg.InheritPadding = false
	lres, err := legal.Legalize(d, lcfg)
	if err != nil {
		return nil, err
	}
	res.Legal = lres
	dcfg := dp.DefaultConfig()
	dcfg.Passes = 2
	dcfg.WindowSites = 100
	if _, err := dp.Refine(d, dcfg); err != nil {
		return nil, err
	}
	res.HPWL = d.HPWL()
	return res, nil
}

// localCongestion is the truncated max-over-footprint congestion used by
// inflation-style optimizers.
func localCongestion(m *cong.Map, c *netlist.Cell) float64 {
	r := c.Rect().Intersect(m.Region)
	if r.Empty() {
		return 0
	}
	i0, j0 := m.GcellOf(r.Lo)
	hi := r.Hi
	hi.X -= 1e-9
	hi.Y -= 1e-9
	i1, j1 := m.GcellOf(hi)
	best := math.Inf(-1)
	for j := j0; j <= j1; j++ {
		for i := i0; i <= i1; i++ {
			if v := m.Cg(m.Index(i, j)); v > best {
				best = v
			}
		}
	}
	return best
}

// CommercialOpts tunes the commercial-profile baseline.
type CommercialOpts struct {
	Place place.Config
	// Thresholds are the density overflows at which the router-in-the-
	// loop optimizer fires (descending).
	Thresholds []float64
	// Gain converts router overflow into padding.
	Gain float64
	// SpreadRadius is the white-space allocation radius in Gcells.
	SpreadRadius int
	// RouterCfg is the in-loop routing configuration (coarser/cheaper
	// than the final evaluation, but still the dominant cost).
	RouterCfg router.Config
}

// DefaultCommercialOpts returns the commercial-profile defaults.
func DefaultCommercialOpts() CommercialOpts {
	cfg := place.DefaultConfig()
	// The commercial profile converges deepest and slowest, with a gentler
	// density-weight ramp that favours wirelength.
	cfg.StopOverflow = 0.07
	cfg.MaxIters = 900
	cfg.LambdaMu = 1.04
	r := router.DefaultConfig()
	r.MaxRipup = 5
	return CommercialOpts{
		Place: cfg,
		// Many refinement milestones with light, router-guided padding:
		// each one re-balances the penalty system (the λ re-init on
		// optimizer rounds), which is where commercial engines recover
		// wirelength while polishing congestion.
		Thresholds:   []float64{0.13, 0.11, 0.09, 0.075},
		Gain:         0.3,
		SpreadRadius: 1,
		RouterCfg:    r,
	}
}

// RunCommercial places d with the commercial-profile flow.
func RunCommercial(d *netlist.Design, opts CommercialOpts, gridW, gridH int) (*Result, error) {
	res := &Result{}
	next := 0
	hook := place.HookFunc(func(iter int, overflow float64) bool {
		if next >= len(opts.Thresholds) || overflow >= opts.Thresholds[next] {
			return false
		}
		next++
		res.OptimizerCalls++
		// Router-in-the-loop congestion oracle: accurate and expensive
		// (finer grid than the estimator-based flows use).
		rcfg := opts.RouterCfg
		rcfg.GridW, rcfg.GridH = gridW*3/2, gridH*3/2
		rr := router.Route(d, rcfg)
		m := rr.Map

		// White-space allocation: spread padding over a neighbourhood of
		// each congested Gcell rather than only the cells inside it.
		heat := make([]float64, m.W*m.H)
		for j := 0; j < m.H; j++ {
			for i := 0; i < m.W; i++ {
				idx := m.Index(i, j)
				ov := m.OverflowH(idx)/math.Max(m.CapH[idx], 1) +
					m.OverflowV(idx)/math.Max(m.CapV[idx], 1)
				if ov <= 0 {
					continue
				}
				for dj := -opts.SpreadRadius; dj <= opts.SpreadRadius; dj++ {
					for di := -opts.SpreadRadius; di <= opts.SpreadRadius; di++ {
						ii := geom.ClampInt(i+di, 0, m.W-1)
						jj := geom.ClampInt(j+dj, 0, m.H-1)
						w := 1.0 / (1 + math.Abs(float64(di)) + math.Abs(float64(dj)))
						heat[m.Index(ii, jj)] += ov * w
					}
				}
			}
		}
		changed := false
		for ci := range d.Cells {
			c := &d.Cells[ci]
			if c.Fixed {
				continue
			}
			gi, gj := m.GcellOf(c.Center())
			h := heat[m.Index(gi, gj)]
			if h <= 0 {
				continue
			}
			c.PadW += c.W * math.Min(h*opts.Gain, 0.5)
			changed = true
		}
		return changed
	})

	placer := place.New(d, opts.Place)
	gp := placer.Run(hook)
	res.GP = *gp

	lcfg := legal.DefaultConfig()
	lcfg.InheritPadding = true // commercial tools honour soft density screens
	lres, err := legal.Legalize(d, lcfg)
	if err != nil {
		return nil, err
	}
	res.Legal = lres
	// The commercial profile spends heavily on detailed placement — that
	// is where its wirelength edge (and part of its runtime) comes from.
	dcfg := dp.DefaultConfig()
	dcfg.Passes = 8
	dcfg.WindowSites = 200
	if _, err := dp.Refine(d, dcfg); err != nil {
		return nil, err
	}
	// Signoff-style congestion analysis at fine resolution: commercial
	// flows route and report QoR internally before handing off, which is
	// a real fraction of their wall-clock time.
	signoff := opts.RouterCfg
	signoff.GridW, signoff.GridH = gridW*2, gridH*2
	signoff.MaxRipup = 4
	router.Route(d, signoff)
	res.HPWL = d.HPWL()
	return res, nil
}
