package baseline

import (
	"testing"

	"puffer/internal/netlist"
	"puffer/internal/place"
	"puffer/internal/synth"
)

// quick builds a small stressed design.
func quick(t *testing.T) *netlist.Design {
	t.Helper()
	p, err := synth.ProfileByName("MEDIA_SUBSYS")
	if err != nil {
		t.Fatal(err)
	}
	return synth.Generate(p, 3000, 1)
}

func fastPlace() place.Config {
	cfg := place.DefaultConfig()
	cfg.MaxIters = 400
	cfg.GridM, cfg.GridN = 32, 32
	return cfg
}

func checkPlaced(t *testing.T, d *netlist.Design) {
	t.Helper()
	for i := range d.Cells {
		c := &d.Cells[i]
		if c.Fixed {
			continue
		}
		if !d.Region.ContainsClosed(c.Center()) {
			t.Fatalf("cell %d center outside region", i)
		}
		ry := (c.Y - d.Region.Lo.Y) / d.RowHeight
		if ry != float64(int(ry)) {
			t.Fatalf("cell %d not row aligned (y=%v)", i, c.Y)
		}
	}
}

func TestRunRePlAce(t *testing.T) {
	d := quick(t)
	opts := DefaultRePlAceOpts()
	opts.Place = fastPlace()
	opts.Place.StopOverflow = 0.09
	res, err := RunRePlAce(d, opts, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	checkPlaced(t, d)
	if res.HPWL <= 0 {
		t.Error("zero HPWL")
	}
	if res.OptimizerCalls == 0 {
		t.Error("inflation never triggered on a stressed design")
	}
	// RePlAce keeps inflation out of legalization, but the PadW bookkeeping
	// from GP remains recorded on the cells.
	if d.TotalPaddingArea() <= 0 {
		t.Error("no inflation recorded")
	}
}

func TestRunCommercial(t *testing.T) {
	d := quick(t)
	opts := DefaultCommercialOpts()
	opts.Place = fastPlace()
	opts.Place.StopOverflow = 0.08
	opts.Place.MaxIters = 450
	res, err := RunCommercial(d, opts, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	checkPlaced(t, d)
	if res.OptimizerCalls == 0 {
		t.Error("router-in-the-loop optimizer never fired")
	}
	if res.HPWL <= 0 {
		t.Error("zero HPWL")
	}
}

func TestRePlAceInflationIsTruncated(t *testing.T) {
	// Cells in slack regions (negative congestion) must receive no
	// inflation: the baseline discards slack information by design.
	d := quick(t)
	opts := DefaultRePlAceOpts()
	opts.Place = fastPlace()
	if _, err := RunRePlAce(d, opts, 32, 32); err != nil {
		t.Fatal(err)
	}
	for i := range d.Cells {
		if d.Cells[i].PadW < 0 {
			t.Fatalf("negative inflation on cell %d", i)
		}
	}
}

func TestRePlAceTotalCap(t *testing.T) {
	d := quick(t)
	opts := DefaultRePlAceOpts()
	opts.Place = fastPlace()
	opts.TotalCap = 0.02
	opts.Gain = 10 // force the cap
	if _, err := RunRePlAce(d, opts, 32, 32); err != nil {
		t.Fatal(err)
	}
	if total := d.TotalPaddingArea(); total > 0.02*d.TotalMovableArea()+1e-6 {
		t.Errorf("inflation area %v exceeds cap", total)
	}
}
