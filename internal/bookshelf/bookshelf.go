// Package bookshelf reads and writes the Bookshelf placement benchmark
// format (.aux/.nodes/.nets/.pl/.scl/.wts), the lingua franca of academic
// placement. The paper evaluates on proprietary industrial designs that
// cannot be redistributed; this parser lets the framework run on any
// public Bookshelf benchmark, and the synthetic generator (package synth)
// writes Bookshelf so generated designs can be inspected with standard
// tools.
package bookshelf

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"puffer/internal/geom"
	"puffer/internal/netlist"
)

// Parse loads the design referenced by a .aux file.
func Parse(auxPath string) (*netlist.Design, error) {
	files, err := parseAux(auxPath)
	if err != nil {
		return nil, err
	}
	dir := filepath.Dir(auxPath)
	d := &netlist.Design{
		Name:   strings.TrimSuffix(filepath.Base(auxPath), ".aux"),
		Layers: netlist.DefaultLayers(),
	}
	names := map[string]int{}
	if f, ok := files["nodes"]; ok {
		if err := parseNodes(filepath.Join(dir, f), d, names); err != nil {
			return nil, fmt.Errorf("nodes: %w", err)
		}
	} else {
		return nil, fmt.Errorf("bookshelf: aux lists no .nodes file")
	}
	if f, ok := files["pl"]; ok {
		if err := parsePl(filepath.Join(dir, f), d, names); err != nil {
			return nil, fmt.Errorf("pl: %w", err)
		}
	}
	if f, ok := files["scl"]; ok {
		if err := parseScl(filepath.Join(dir, f), d); err != nil {
			return nil, fmt.Errorf("scl: %w", err)
		}
	}
	if f, ok := files["nets"]; ok {
		if err := parseNets(filepath.Join(dir, f), d, names); err != nil {
			return nil, fmt.Errorf("nets: %w", err)
		}
	}
	if f, ok := files["wts"]; ok {
		if err := parseWts(filepath.Join(dir, f), d); err != nil {
			return nil, fmt.Errorf("wts: %w", err)
		}
	}
	if f, ok := files["route"]; ok {
		ri, err := ParseRoute(filepath.Join(dir, f))
		if err != nil {
			return nil, fmt.Errorf("route: %w", err)
		}
		if err := ri.Apply(d); err != nil {
			return nil, fmt.Errorf("route: %w", err)
		}
	}
	if d.Region.Empty() {
		// Fall back to the bounding box of all cells.
		for i := range d.Cells {
			d.Region = d.Region.Union(d.Cells[i].Rect())
		}
	}
	classifyMacros(d)
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// classifyMacros tags fixed cells much taller than a row as macros, which
// is the usual Bookshelf convention (terminals include both IO pads and
// macro blocks).
func classifyMacros(d *netlist.Design) {
	if d.RowHeight <= 0 {
		return
	}
	for i := range d.Cells {
		c := &d.Cells[i]
		if c.Fixed && c.H > 2*d.RowHeight && c.Area() > 0 {
			c.Macro = true
		}
	}
}

// parseAux extracts the per-extension filenames from the aux line.
// Referenced names must be bare file names: every file a design pulls in
// lives next to its aux. An aux is frequently untrusted input (pufferd
// accepts uploaded designs), so a name with a path separator or ".." is
// rejected rather than joined — it could otherwise read files outside
// the design directory.
func parseAux(path string) (map[string]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := map[string]string{}
	for _, line := range strings.Split(string(data), "\n") {
		if i := strings.Index(line, ":"); i >= 0 {
			line = line[i+1:]
		}
		for _, tok := range strings.Fields(line) {
			ext := strings.TrimPrefix(filepath.Ext(tok), ".")
			if ext == "" {
				continue
			}
			if strings.ContainsAny(tok, `/\`) || strings.Contains(tok, "..") {
				return nil, fmt.Errorf("bookshelf: aux references %q: must be a bare file name next to the aux", tok)
			}
			out[ext] = tok
		}
	}
	return out, nil
}

// lineScanner iterates non-comment, non-header lines of a Bookshelf file.
func lineScanner(path string, fn func(fields []string) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "UCLA") {
			continue
		}
		if err := fn(strings.Fields(line)); err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	return sc.Err()
}

func parseNodes(path string, d *netlist.Design, names map[string]int) error {
	return lineScanner(path, func(f []string) error {
		if f[0] == "NumNodes" || f[0] == "NumTerminals" {
			return nil
		}
		if len(f) < 3 {
			return fmt.Errorf("bad node line %q", strings.Join(f, " "))
		}
		w, err := strconv.ParseFloat(f[1], 64)
		if err != nil {
			return err
		}
		h, err := strconv.ParseFloat(f[2], 64)
		if err != nil {
			return err
		}
		fixed := len(f) > 3 && strings.HasPrefix(f[3], "terminal")
		names[f[0]] = d.AddCell(netlist.Cell{Name: f[0], W: w, H: h, Fixed: fixed})
		return nil
	})
}

func parsePl(path string, d *netlist.Design, names map[string]int) error {
	return lineScanner(path, func(f []string) error {
		if len(f) < 3 {
			return nil
		}
		id, ok := names[f[0]]
		if !ok {
			return fmt.Errorf("unknown node %q", f[0])
		}
		x, err := strconv.ParseFloat(f[1], 64)
		if err != nil {
			return err
		}
		y, err := strconv.ParseFloat(f[2], 64)
		if err != nil {
			return err
		}
		c := &d.Cells[id]
		c.X, c.Y = x, y
		for _, tok := range f[3:] {
			if strings.Contains(tok, "FIXED") {
				c.Fixed = true
			}
		}
		return nil
	})
}

func parseScl(path string, d *netlist.Design) error {
	var cur *netlist.Row
	var height float64
	err := lineScanner(path, func(f []string) error {
		switch f[0] {
		case "NumRows":
			return nil
		case "CoreRow":
			cur = &netlist.Row{}
			height = 0
		case "End":
			if cur != nil {
				d.Rows = append(d.Rows, *cur)
				if height > d.RowHeight {
					d.RowHeight = height
				}
				if cur.SiteW > 0 && (d.SiteWidth == 0 || cur.SiteW < d.SiteWidth) {
					d.SiteWidth = cur.SiteW
				}
				cur = nil
			}
		default:
			if cur == nil || len(f) < 3 {
				return nil
			}
			key := strings.ToLower(f[0])
			val, err := strconv.ParseFloat(f[2], 64)
			if err != nil {
				return nil // tolerate unknown attributes
			}
			switch key {
			case "coordinate":
				cur.Y = val
			case "height":
				height = val
			case "sitewidth":
				cur.SiteW = val
			case "subroworigin":
				cur.X = val
				// NumSites may follow on the same line:
				// "SubrowOrigin : x NumSites : n"
				for i := 3; i+2 < len(f); i++ {
					if strings.EqualFold(f[i], "NumSites") {
						if n, err := strconv.ParseFloat(f[i+2], 64); err == nil {
							cur.W = n * cur.SiteW
						}
					}
				}
			case "numsites":
				cur.W = val * cur.SiteW
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	// Region from the rows.
	for _, r := range d.Rows {
		d.Region = d.Region.Union(geom.RectWH(r.X, r.Y, r.W, d.RowHeight))
	}
	return nil
}

func parseNets(path string, d *netlist.Design, names map[string]int) error {
	curNet := -1
	return lineScanner(path, func(f []string) error {
		switch f[0] {
		case "NumNets", "NumPins":
			return nil
		case "NetDegree":
			name := ""
			if len(f) >= 4 {
				name = f[3]
			}
			curNet = d.AddNet(name, 1)
			return nil
		}
		if curNet < 0 {
			return fmt.Errorf("pin line before NetDegree")
		}
		id, ok := names[f[0]]
		if !ok {
			return fmt.Errorf("unknown node %q", f[0])
		}
		// "node I/O/B : dx dy" with offsets from the node center.
		dx, dy := 0.0, 0.0
		if len(f) >= 5 {
			var err error
			if dx, err = strconv.ParseFloat(f[3], 64); err != nil {
				return err
			}
			if dy, err = strconv.ParseFloat(f[4], 64); err != nil {
				return err
			}
		}
		c := &d.Cells[id]
		d.Connect(id, curNet, c.W/2+dx, c.H/2+dy)
		return nil
	})
}

func parseWts(path string, d *netlist.Design) error {
	byName := map[string]int{}
	for i := range d.Nets {
		if d.Nets[i].Name != "" {
			byName[d.Nets[i].Name] = i
		}
	}
	return lineScanner(path, func(f []string) error {
		if len(f) < 2 {
			return nil
		}
		if id, ok := byName[f[0]]; ok {
			if w, err := strconv.ParseFloat(f[1], 64); err == nil {
				d.Nets[id].Weight = w
			}
		}
		return nil
	})
}

// Write emits the design as a Bookshelf benchmark into dir with the given
// base name, returning the .aux path.
func Write(d *netlist.Design, dir, base string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	write := func(name, content string) error {
		return os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644)
	}

	var nodes strings.Builder
	fmt.Fprintf(&nodes, "UCLA nodes 1.0\n\n")
	terminals := 0
	for i := range d.Cells {
		if d.Cells[i].Fixed {
			terminals++
		}
	}
	fmt.Fprintf(&nodes, "NumNodes : %d\n", len(d.Cells))
	fmt.Fprintf(&nodes, "NumTerminals : %d\n", terminals)
	for i := range d.Cells {
		c := &d.Cells[i]
		term := ""
		if c.Fixed {
			term = " terminal"
		}
		fmt.Fprintf(&nodes, "   %s %g %g%s\n", cellName(d, i), c.W, c.H, term)
	}

	var pl strings.Builder
	fmt.Fprintf(&pl, "UCLA pl 1.0\n\n")
	for i := range d.Cells {
		c := &d.Cells[i]
		fixed := ""
		if c.Fixed {
			fixed = " /FIXED"
		}
		fmt.Fprintf(&pl, "%s %g %g : N%s\n", cellName(d, i), c.X, c.Y, fixed)
	}

	var nets strings.Builder
	fmt.Fprintf(&nets, "UCLA nets 1.0\n\n")
	fmt.Fprintf(&nets, "NumNets : %d\n", len(d.Nets))
	fmt.Fprintf(&nets, "NumPins : %d\n", len(d.Pins))
	for n := range d.Nets {
		net := &d.Nets[n]
		name := net.Name
		if name == "" {
			name = fmt.Sprintf("n%d", n)
		}
		fmt.Fprintf(&nets, "NetDegree : %d %s\n", len(net.Pins), name)
		for _, pid := range net.Pins {
			p := &d.Pins[pid]
			c := &d.Cells[p.Cell]
			fmt.Fprintf(&nets, "   %s B : %g %g\n", cellName(d, p.Cell), p.Dx-c.W/2, p.Dy-c.H/2)
		}
	}

	var wts strings.Builder
	fmt.Fprintf(&wts, "UCLA wts 1.0\n\n")
	for n := range d.Nets {
		name := d.Nets[n].Name
		if name == "" {
			name = fmt.Sprintf("n%d", n)
		}
		fmt.Fprintf(&wts, "%s %g\n", name, weightOr1(d.Nets[n].Weight))
	}

	var scl strings.Builder
	rows := d.Rows
	if len(rows) == 0 && d.RowHeight > 0 {
		nRows := int(d.Region.H() / d.RowHeight)
		for r := 0; r < nRows; r++ {
			rows = append(rows, netlist.Row{
				X: d.Region.Lo.X, Y: d.Region.Lo.Y + float64(r)*d.RowHeight,
				W: d.Region.W(), SiteW: d.SiteWidth,
			})
		}
	}
	fmt.Fprintf(&scl, "UCLA scl 1.0\n\n")
	fmt.Fprintf(&scl, "NumRows : %d\n", len(rows))
	for _, r := range rows {
		fmt.Fprintf(&scl, "CoreRow Horizontal\n")
		fmt.Fprintf(&scl, "  Coordinate : %g\n", r.Y)
		fmt.Fprintf(&scl, "  Height : %g\n", d.RowHeight)
		fmt.Fprintf(&scl, "  Sitewidth : %g\n", r.SiteW)
		fmt.Fprintf(&scl, "  Sitespacing : %g\n", r.SiteW)
		fmt.Fprintf(&scl, "  SubrowOrigin : %g NumSites : %d\n", r.X, r.NumSites())
		fmt.Fprintf(&scl, "End\n")
	}

	if err := write(base+".nodes", nodes.String()); err != nil {
		return "", err
	}
	if err := write(base+".nets", nets.String()); err != nil {
		return "", err
	}
	if err := write(base+".wts", wts.String()); err != nil {
		return "", err
	}
	if err := write(base+".pl", pl.String()); err != nil {
		return "", err
	}
	if err := write(base+".scl", scl.String()); err != nil {
		return "", err
	}
	aux := fmt.Sprintf("RowBasedPlacement : %s.nodes %s.nets %s.wts %s.pl %s.scl\n",
		base, base, base, base, base)
	auxPath := filepath.Join(dir, base+".aux")
	if err := os.WriteFile(auxPath, []byte(aux), 0o644); err != nil {
		return "", err
	}
	return auxPath, nil
}

func cellName(d *netlist.Design, i int) string {
	if d.Cells[i].Name != "" {
		return d.Cells[i].Name
	}
	return fmt.Sprintf("o%d", i)
}

func weightOr1(w float64) float64 {
	if w == 0 {
		return 1
	}
	return w
}
