package bookshelf

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"puffer/internal/geom"
	"puffer/internal/netlist"
)

// sampleDesign builds a small design with a macro, offsets and weights.
func sampleDesign() *netlist.Design {
	d := &netlist.Design{
		Name:      "sample",
		Region:    geom.RectWH(0, 0, 20, 10),
		RowHeight: 1,
		SiteWidth: 0.5,
		Layers:    netlist.DefaultLayers(),
	}
	a := d.AddCell(netlist.Cell{Name: "a", W: 2, H: 1, X: 1, Y: 1})
	b := d.AddCell(netlist.Cell{Name: "b", W: 1, H: 1, X: 5, Y: 2})
	m := d.AddCell(netlist.Cell{Name: "blk", W: 4, H: 4, X: 10, Y: 4, Fixed: true})
	n1 := d.AddNet("clk", 2)
	n2 := d.AddNet("d0", 1)
	d.Connect(a, n1, 0.5, 0.5)
	d.Connect(b, n1, 0.5, 0.5)
	d.Connect(a, n2, 1.5, 0.25)
	d.Connect(m, n2, 2, 2)
	return d
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d := sampleDesign()
	auxPath, err := Write(d, dir, "sample")
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(auxPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(got.Cells) != len(d.Cells) {
		t.Fatalf("cells = %d, want %d", len(got.Cells), len(d.Cells))
	}
	for i := range d.Cells {
		want := &d.Cells[i]
		c := &got.Cells[i]
		if c.Name != want.Name || c.W != want.W || c.H != want.H {
			t.Errorf("cell %d geometry mismatch: %+v vs %+v", i, c, want)
		}
		if c.X != want.X || c.Y != want.Y {
			t.Errorf("cell %d position mismatch: (%v,%v) vs (%v,%v)", i, c.X, c.Y, want.X, want.Y)
		}
		if c.Fixed != want.Fixed {
			t.Errorf("cell %d fixed mismatch", i)
		}
	}
	if len(got.Nets) != 2 || len(got.Pins) != 4 {
		t.Fatalf("nets/pins = %d/%d, want 2/4", len(got.Nets), len(got.Pins))
	}
	if got.Nets[0].Weight != 2 {
		t.Errorf("net weight = %v, want 2 (from wts)", got.Nets[0].Weight)
	}
	for p := range d.Pins {
		a := d.PinPos(p)
		b := got.PinPos(p)
		if math.Abs(a.X-b.X) > 1e-9 || math.Abs(a.Y-b.Y) > 1e-9 {
			t.Errorf("pin %d position %v vs %v", p, b, a)
		}
	}
	if math.Abs(got.HPWL()-d.HPWL()) > 1e-9 {
		t.Errorf("HPWL %v vs %v", got.HPWL(), d.HPWL())
	}
	if got.RowHeight != 1 || got.SiteWidth != 0.5 {
		t.Errorf("row/site = %v/%v, want 1/0.5", got.RowHeight, got.SiteWidth)
	}
	if got.Region.W() != 20 || math.Abs(got.Region.H()-10) > 1e-9 {
		t.Errorf("region = %v", got.Region)
	}
	if len(got.Rows) != 10 {
		t.Errorf("rows = %d, want 10", len(got.Rows))
	}
}

func TestMacroClassification(t *testing.T) {
	dir := t.TempDir()
	d := sampleDesign() // blk is 4 rows tall and fixed
	auxPath, err := Write(d, dir, "s")
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(auxPath)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Cells[2].Macro {
		t.Error("tall fixed terminal not classified as macro")
	}
	if got.Cells[0].Macro {
		t.Error("movable cell classified as macro")
	}
}

func TestParseHandcraftedFiles(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{
		"t.aux": "RowBasedPlacement : t.nodes t.nets t.wts t.pl t.scl\n",
		"t.nodes": `UCLA nodes 1.0
# comment
NumNodes : 2
NumTerminals : 0
  c1 2 1
  c2 3 1
`,
		"t.nets": `UCLA nets 1.0
NumNets : 1
NumPins : 2
NetDegree : 2 n0
  c1 O : 0.0 0.0
  c2 I : -1.5 0.0
`,
		"t.pl": `UCLA pl 1.0
c1 0 0 : N
c2 10 2 : N
`,
		"t.scl": `UCLA scl 1.0
NumRows : 2
CoreRow Horizontal
  Coordinate : 0
  Height : 1
  Sitewidth : 1
  Sitespacing : 1
  SubrowOrigin : 0 NumSites : 20
End
CoreRow Horizontal
  Coordinate : 1
  Height : 1
  Sitewidth : 1
  Sitespacing : 1
  SubrowOrigin : 0 NumSites : 20
End
`,
		"t.wts": "UCLA wts 1.0\nn0 3\n",
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	d, err := Parse(filepath.Join(dir, "t.aux"))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Cells) != 2 || len(d.Nets) != 1 || len(d.Pins) != 2 {
		t.Fatalf("parsed %d cells, %d nets, %d pins", len(d.Cells), len(d.Nets), len(d.Pins))
	}
	// Pin offsets: Bookshelf measures from the node center.
	// c1 pin at center (1, 0.5); c2 pin at center + (-1.5, 0) = (0, 0.5).
	if p := d.PinPos(0); p != geom.Pt(1, 0.5) {
		t.Errorf("pin 0 at %v, want (1, 0.5)", p)
	}
	if p := d.PinPos(1); p != geom.Pt(10, 2.5) {
		t.Errorf("pin 1 at %v, want (10, 2.5)", p)
	}
	if d.Nets[0].Weight != 3 {
		t.Errorf("weight = %v, want 3", d.Nets[0].Weight)
	}
	if d.Region.W() != 20 || d.Region.H() != 2 {
		t.Errorf("region = %v", d.Region)
	}
}

func TestParseErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := Parse(filepath.Join(dir, "missing.aux")); err == nil {
		t.Error("no error for missing aux")
	}

	// aux without nodes entry
	aux := filepath.Join(dir, "empty.aux")
	os.WriteFile(aux, []byte("RowBasedPlacement :\n"), 0o644)
	if _, err := Parse(aux); err == nil {
		t.Error("no error for aux without .nodes")
	}

	// nets referencing unknown node
	os.WriteFile(filepath.Join(dir, "bad.aux"),
		[]byte("RowBasedPlacement : bad.nodes bad.nets\n"), 0o644)
	os.WriteFile(filepath.Join(dir, "bad.nodes"),
		[]byte("UCLA nodes 1.0\nNumNodes : 1\nNumTerminals : 0\nc1 1 1\n"), 0o644)
	os.WriteFile(filepath.Join(dir, "bad.nets"),
		[]byte("UCLA nets 1.0\nNumNets : 1\nNumPins : 1\nNetDegree : 1 n\n ghost O : 0 0\n"), 0o644)
	if _, err := Parse(filepath.Join(dir, "bad.aux")); err == nil {
		t.Error("no error for unknown node in nets")
	}
}

func TestParseAuxRejectsPathEscape(t *testing.T) {
	// An aux is untrusted input (pufferd accepts uploads); a referenced
	// name that is not a bare sibling file name must be rejected, never
	// joined and read — otherwise a hostile aux can pull in files outside
	// its design directory.
	dir := t.TempDir()
	secret := filepath.Join(dir, "secret.nodes")
	if err := os.WriteFile(secret, []byte("UCLA nodes 1.0\nNumNodes : 1\nc1 1 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	sub := filepath.Join(dir, "design")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, ref := range []string{
		"../secret.nodes",
		`..\secret.nodes`,
		"/etc/passwd.nodes",
		"a/../secret.nodes",
	} {
		aux := filepath.Join(sub, "esc.aux")
		if err := os.WriteFile(aux, []byte("RowBasedPlacement : "+ref+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Parse(aux); err == nil {
			t.Errorf("aux referencing %q parsed without error", ref)
		}
	}
}

func TestWriteUnnamedEntities(t *testing.T) {
	d := &netlist.Design{
		Region: geom.RectWH(0, 0, 10, 3), RowHeight: 1, SiteWidth: 0.5,
		Layers: netlist.DefaultLayers(),
	}
	a := d.AddCell(netlist.Cell{W: 1, H: 1})
	b := d.AddCell(netlist.Cell{W: 1, H: 1, X: 4})
	n := d.AddNet("", 0)
	d.Connect(a, n, 0.5, 0.5)
	d.Connect(b, n, 0.5, 0.5)
	dir := t.TempDir()
	auxPath, err := Write(d, dir, "u")
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(auxPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Cells) != 2 || len(got.Nets) != 1 {
		t.Fatalf("round trip of unnamed entities failed: %d cells %d nets", len(got.Cells), len(got.Nets))
	}
}
