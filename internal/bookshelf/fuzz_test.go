package bookshelf

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzParseAux feeds arbitrary bytes to the .aux entry point. Parse must
// never panic: malformed aux lines, references to missing files, and
// hostile filenames must all come back as errors (or as a successfully
// parsed design, for inputs that happen to be valid).
func FuzzParseAux(f *testing.F) {
	f.Add([]byte("RowBasedPlacement : d.nodes d.nets d.pl d.scl d.wts\n"))
	f.Add([]byte("d.nodes"))
	f.Add([]byte(":::\n:"))
	f.Add([]byte("UCLA aux 1.0\n# comment\nx : a.route ..aux .nodes\n"))
	f.Add([]byte{0xff, 0xfe, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		aux := filepath.Join(dir, "fuzz.aux")
		if err := os.WriteFile(aux, data, 0o644); err != nil {
			t.Fatal(err)
		}
		// Give the aux a plausible sibling so inputs that reference
		// "fuzz.nodes" get past the open and into the node parser.
		os.WriteFile(filepath.Join(dir, "fuzz.nodes"),
			[]byte("UCLA nodes 1.0\nNumNodes : 1\na 2 1\n"), 0o644)
		d, err := Parse(aux)
		if err == nil && d == nil {
			t.Fatal("Parse returned nil design and nil error")
		}
	})
}

// FuzzParseNodes drives arbitrary bytes through the .nodes parser (and the
// design validation behind it) via a fixed aux file.
func FuzzParseNodes(f *testing.F) {
	f.Add([]byte("UCLA nodes 1.0\nNumNodes : 2\nNumTerminals : 1\na 2 1\np 0 0 terminal\n"))
	f.Add([]byte("a 2 1\na 2 1\n"))                    // duplicate names
	f.Add([]byte("a NaN Inf\nb -1 -2\nc 1e308 1e308")) // hostile numerics
	f.Add([]byte("a 2\n"))                             // short line
	f.Add([]byte("# only a comment"))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "f.aux"),
			[]byte("RowBasedPlacement : f.nodes\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "f.nodes"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		d, err := Parse(filepath.Join(dir, "f.aux"))
		if err == nil && d == nil {
			t.Fatal("Parse returned nil design and nil error")
		}
	})
}

// FuzzParseNets fuzzes the .nets parser against a small fixed netlist, the
// file with the most positional indexing in the package.
func FuzzParseNets(f *testing.F) {
	f.Add([]byte("NumNets : 1\nNetDegree : 2 n0\na I : 0.5 0.5\nb O : -0.5 -0.5\n"))
	f.Add([]byte("a I\nNetDegree : 1\n"))     // pin before any net
	f.Add([]byte("NetDegree : 1\nzz I\n"))    // unknown node
	f.Add([]byte("NetDegree : 1\na I : x y")) // unparsable offsets
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "f.aux"),
			[]byte("RowBasedPlacement : f.nodes f.nets\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "f.nodes"),
			[]byte("a 2 1\nb 3 1\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "f.nets"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		d, err := Parse(filepath.Join(dir, "f.aux"))
		if err == nil && d == nil {
			t.Fatal("Parse returned nil design and nil error")
		}
	})
}
