package bookshelf

import (
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"puffer/internal/geom"
	"puffer/internal/netlist"
)

// RouteInfo carries the routing-resource description of an ISPD-2011-style
// .route file: the global routing grid, per-layer capacities, wire rules,
// and blockage annotations. The Bookshelf suite used by routability-driven
// placement contests ships these alongside the placement files.
type RouteInfo struct {
	GridX, GridY int
	NumLayers    int
	VertCap      []float64 // per layer, in tracks per tile
	HorizCap     []float64
	WireWidth    []float64
	WireSpacing  []float64
	ViaSpacing   []float64
	OriginX      float64
	OriginY      float64
	TileW, TileH float64
	Porosity     float64 // blockage porosity in [0, 1]

	// BlockageNodes maps node names to the layers they block.
	BlockageNodes map[string][]int
	// NiTerminals lists non-image terminals with their layer.
	NiTerminals map[string]int
}

// ParseRoute reads a .route file.
func ParseRoute(path string) (*RouteInfo, error) {
	ri := &RouteInfo{
		BlockageNodes: map[string][]int{},
		NiTerminals:   map[string]int{},
	}
	mode := ""
	pending := 0
	err := lineScanner(path, func(f []string) error {
		if len(f) == 0 {
			return nil
		}
		if pending > 0 {
			switch mode {
			case "blockage":
				if len(f) < 2 {
					return fmt.Errorf("bad blockage node line %q", strings.Join(f, " "))
				}
				n, err := strconv.Atoi(f[1])
				if err != nil {
					return err
				}
				if len(f) < 2+n {
					return fmt.Errorf("blockage node %s lists %d layers, has %d", f[0], n, len(f)-2)
				}
				var layers []int
				for k := 0; k < n; k++ {
					l, err := strconv.Atoi(f[2+k])
					if err != nil {
						return err
					}
					layers = append(layers, l-1) // .route layers are 1-based
				}
				ri.BlockageNodes[f[0]] = layers
			case "ni":
				if len(f) >= 2 {
					if l, err := strconv.Atoi(f[1]); err == nil {
						ri.NiTerminals[f[0]] = l - 1
					}
				}
			}
			pending--
			return nil
		}
		key := strings.TrimSuffix(f[0], ":")
		vals := f[1:]
		if len(vals) > 0 && vals[0] == ":" {
			vals = vals[1:]
		}
		nums := func() ([]float64, error) {
			out := make([]float64, 0, len(vals))
			for _, v := range vals {
				x, err := strconv.ParseFloat(v, 64)
				if err != nil {
					return nil, err
				}
				out = append(out, x)
			}
			return out, nil
		}
		switch key {
		case "route":
			return nil // header
		case "Grid":
			ns, err := nums()
			if err != nil || len(ns) < 3 {
				return fmt.Errorf("bad Grid line")
			}
			ri.GridX, ri.GridY, ri.NumLayers = int(ns[0]), int(ns[1]), int(ns[2])
		case "VerticalCapacity":
			var err error
			ri.VertCap, err = nums()
			return err
		case "HorizontalCapacity":
			var err error
			ri.HorizCap, err = nums()
			return err
		case "MinWireWidth":
			var err error
			ri.WireWidth, err = nums()
			return err
		case "MinWireSpacing":
			var err error
			ri.WireSpacing, err = nums()
			return err
		case "ViaSpacing":
			var err error
			ri.ViaSpacing, err = nums()
			return err
		case "GridOrigin":
			ns, err := nums()
			if err != nil || len(ns) < 2 {
				return fmt.Errorf("bad GridOrigin")
			}
			ri.OriginX, ri.OriginY = ns[0], ns[1]
		case "TileSize":
			ns, err := nums()
			if err != nil || len(ns) < 2 {
				return fmt.Errorf("bad TileSize")
			}
			ri.TileW, ri.TileH = ns[0], ns[1]
		case "BlockagePorosity":
			ns, err := nums()
			if err != nil || len(ns) < 1 {
				return fmt.Errorf("bad BlockagePorosity")
			}
			ri.Porosity = ns[0]
		case "NumNiTerminals":
			ns, err := nums()
			if err != nil || len(ns) < 1 {
				return fmt.Errorf("bad NumNiTerminals")
			}
			pending = int(ns[0])
			mode = "ni"
		case "NumBlockageNodes":
			ns, err := nums()
			if err != nil || len(ns) < 1 {
				return fmt.Errorf("bad NumBlockageNodes")
			}
			pending = int(ns[0])
			mode = "blockage"
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return ri, nil
}

// Apply installs the routing-resource description into the design: the
// metal stack is rebuilt from the per-layer capacities and wire rules, and
// blockage-node annotations become layer blockages over the named cells'
// outlines (scaled by 1 - porosity).
func (ri *RouteInfo) Apply(d *netlist.Design) error {
	if ri.NumLayers <= 0 || ri.TileW <= 0 || ri.TileH <= 0 {
		return fmt.Errorf("route: incomplete grid description")
	}
	layers := make([]netlist.Layer, 0, ri.NumLayers)
	for l := 0; l < ri.NumLayers; l++ {
		hc := at(ri.HorizCap, l)
		vc := at(ri.VertCap, l)
		// The .route capacities are routing-length units per tile edge;
		// tracks = capacity / wire pitch. Our Layer model derives track
		// counts from tile extent / pitch, so pick pitch = extent / tracks.
		var layer netlist.Layer
		ww := at(ri.WireWidth, l)
		ws := at(ri.WireSpacing, l)
		if ww <= 0 {
			ww = 1
		}
		if ws <= 0 {
			ws = 1
		}
		if hc >= vc { // horizontal layer
			tracks := math.Max(hc/(ww+ws), 0)
			pitch := ri.TileH
			if tracks > 0 {
				pitch = ri.TileH / tracks
			} else {
				pitch = math.Inf(1)
			}
			layer = netlist.Layer{
				Name: fmt.Sprintf("M%d", l+1), Dir: netlist.Horizontal,
				Width: pitch / 2, Spacing: pitch / 2,
			}
			if math.IsInf(pitch, 1) {
				// Zero-capacity layer: give it an enormous pitch so it
				// contributes ~nothing.
				layer.Width = 1e9
				layer.Spacing = 1e9
			}
		} else {
			tracks := math.Max(vc/(ww+ws), 0)
			pitch := ri.TileW
			if tracks > 0 {
				pitch = ri.TileW / tracks
			} else {
				pitch = math.Inf(1)
			}
			layer = netlist.Layer{
				Name: fmt.Sprintf("M%d", l+1), Dir: netlist.Vertical,
				Width: pitch / 2, Spacing: pitch / 2,
			}
			if math.IsInf(pitch, 1) {
				layer.Width = 1e9
				layer.Spacing = 1e9
			}
		}
		layers = append(layers, layer)
	}
	d.Layers = layers

	// Blockage annotations: block the listed layers over each node's
	// outline, scaled by (1 - porosity) via a shrunken rect.
	if len(ri.BlockageNodes) > 0 {
		byName := map[string]int{}
		for i := range d.Cells {
			if d.Cells[i].Name != "" {
				byName[d.Cells[i].Name] = i
			}
		}
		shrink := math.Sqrt(math.Max(0, 1-ri.Porosity))
		// Sorted node order: d.Blockages must not depend on map iteration,
		// both for reproducible flows (checkpoint resume equality) and for
		// tests that index into the blockage list.
		names := make([]string, 0, len(ri.BlockageNodes))
		for name := range ri.BlockageNodes {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			blockedLayers := ri.BlockageNodes[name]
			ci, ok := byName[name]
			if !ok {
				return fmt.Errorf("route: blockage node %q not in design", name)
			}
			r := d.Cells[ci].Rect()
			c := r.Center()
			br := geom.RectWH(
				c.X-r.W()*shrink/2, c.Y-r.H()*shrink/2,
				r.W()*shrink, r.H()*shrink)
			for _, l := range blockedLayers {
				if l < 0 || l >= len(d.Layers) {
					return fmt.Errorf("route: blockage node %q references layer %d", name, l+1)
				}
				d.Blockages = append(d.Blockages, netlist.Blockage{Rect: br, Layer: l})
			}
		}
	}
	return nil
}

func at(s []float64, i int) float64 {
	if i < len(s) {
		return s[i]
	}
	return 0
}

// WriteRoute emits a .route file describing the design's routing
// resources on a gridX×gridY tile grid.
func WriteRoute(d *netlist.Design, path string, gridX, gridY int) error {
	if gridX <= 0 || gridY <= 0 {
		return fmt.Errorf("route: invalid grid %dx%d", gridX, gridY)
	}
	tileW := d.Region.W() / float64(gridX)
	tileH := d.Region.H() / float64(gridY)
	var b strings.Builder
	fmt.Fprintf(&b, "route 1.0\n\n")
	fmt.Fprintf(&b, "Grid : %d %d %d\n", gridX, gridY, len(d.Layers))
	write := func(label string, f func(netlist.Layer) float64) {
		fmt.Fprintf(&b, "%s :", label)
		for _, l := range d.Layers {
			fmt.Fprintf(&b, " %g", f(l))
		}
		fmt.Fprintf(&b, "\n")
	}
	// .route capacities are tracks × pitch in length units; with every
	// cross-section track usable that is exactly the tile extent.
	write("VerticalCapacity", func(l netlist.Layer) float64 {
		if l.Dir != netlist.Vertical {
			return 0
		}
		return math.Floor(tileW/l.Pitch()) * l.Pitch()
	})
	write("HorizontalCapacity", func(l netlist.Layer) float64 {
		if l.Dir != netlist.Horizontal {
			return 0
		}
		return math.Floor(tileH/l.Pitch()) * l.Pitch()
	})
	write("MinWireWidth", func(l netlist.Layer) float64 { return l.Width })
	write("MinWireSpacing", func(l netlist.Layer) float64 { return l.Spacing })
	write("ViaSpacing", func(l netlist.Layer) float64 { return l.Spacing })
	fmt.Fprintf(&b, "GridOrigin : %g %g\n", d.Region.Lo.X, d.Region.Lo.Y)
	fmt.Fprintf(&b, "TileSize : %g %g\n", tileW, tileH)
	fmt.Fprintf(&b, "BlockagePorosity : 0\n")
	fmt.Fprintf(&b, "NumNiTerminals : 0\n")
	// Emit macro cells as blockage nodes over the lower routing layers.
	var macroNames []string
	for i := range d.Cells {
		if d.Cells[i].Macro {
			macroNames = append(macroNames, cellName(d, i))
		}
	}
	fmt.Fprintf(&b, "NumBlockageNodes : %d\n", len(macroNames))
	nBlock := min(3, len(d.Layers))
	for _, name := range macroNames {
		fmt.Fprintf(&b, "   %s %d", name, nBlock)
		for l := 1; l <= nBlock; l++ {
			fmt.Fprintf(&b, " %d", l)
		}
		fmt.Fprintf(&b, "\n")
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
