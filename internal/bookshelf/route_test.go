package bookshelf

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"puffer/internal/netlist"
)

const sampleRoute = `route 1.0

Grid : 10 8 4
VerticalCapacity : 0 40 0 40
HorizontalCapacity : 30 0 30 0
MinWireWidth : 1 1 1 1
MinWireSpacing : 1 1 1 1
ViaSpacing : 1 1 1 1
GridOrigin : 0 0
TileSize : 20 16
BlockagePorosity : 0.2
NumNiTerminals : 1
  pad0 2
NumBlockageNodes : 2
  blk 2 1 2
  blk2 1 3
`

func TestParseRoute(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.route")
	if err := os.WriteFile(path, []byte(sampleRoute), 0o644); err != nil {
		t.Fatal(err)
	}
	ri, err := ParseRoute(path)
	if err != nil {
		t.Fatal(err)
	}
	if ri.GridX != 10 || ri.GridY != 8 || ri.NumLayers != 4 {
		t.Errorf("grid = %d %d %d", ri.GridX, ri.GridY, ri.NumLayers)
	}
	if len(ri.VertCap) != 4 || ri.VertCap[1] != 40 {
		t.Errorf("VertCap = %v", ri.VertCap)
	}
	if ri.TileW != 20 || ri.TileH != 16 {
		t.Errorf("tile = %v x %v", ri.TileW, ri.TileH)
	}
	if ri.Porosity != 0.2 {
		t.Errorf("porosity = %v", ri.Porosity)
	}
	if got := ri.BlockageNodes["blk"]; len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("blk layers = %v (0-based)", got)
	}
	if got := ri.BlockageNodes["blk2"]; len(got) != 1 || got[0] != 2 {
		t.Errorf("blk2 layers = %v", got)
	}
	if l, ok := ri.NiTerminals["pad0"]; !ok || l != 1 {
		t.Errorf("NiTerminals = %v", ri.NiTerminals)
	}
}

func TestRouteApply(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.route")
	if err := os.WriteFile(path, []byte(sampleRoute), 0o644); err != nil {
		t.Fatal(err)
	}
	ri, err := ParseRoute(path)
	if err != nil {
		t.Fatal(err)
	}
	d := sampleDesign()
	d.Cells[2].Name = "blk" // the macro becomes the blockage node
	d.AddCell(netlist.Cell{Name: "blk2", W: 2, H: 2, X: 0, Y: 8, Fixed: true})
	if err := ri.Apply(d); err != nil {
		t.Fatal(err)
	}
	if len(d.Layers) != 4 {
		t.Fatalf("layers = %d", len(d.Layers))
	}
	// Layer 1 (index 0): horizontal, capacity 30 length units with pitch 2
	// → 15 tracks over a 16-tall tile → pitch 16/15.
	if d.Layers[0].Dir != netlist.Horizontal {
		t.Error("layer 1 direction wrong")
	}
	wantPitch := 16.0 / 15.0
	if math.Abs(d.Layers[0].Pitch()-wantPitch) > 1e-9 {
		t.Errorf("layer 1 pitch = %v, want %v", d.Layers[0].Pitch(), wantPitch)
	}
	if d.Layers[1].Dir != netlist.Vertical {
		t.Error("layer 2 direction wrong")
	}
	// 3 blockages total: blk on layers 0,1 and blk2 on layer 2.
	if len(d.Blockages) != 3 {
		t.Fatalf("blockages = %d, want 3", len(d.Blockages))
	}
	// Porosity 0.2 shrinks outlines to 80% area.
	macroArea := d.Cells[2].Area()
	if got := d.Blockages[0].Rect.Area(); math.Abs(got-0.8*macroArea) > 1e-9 {
		t.Errorf("blockage area = %v, want %v", got, 0.8*macroArea)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRouteApplyUnknownNode(t *testing.T) {
	ri := &RouteInfo{
		NumLayers: 2, TileW: 10, TileH: 10,
		HorizCap: []float64{10, 0}, VertCap: []float64{0, 10},
		BlockageNodes: map[string][]int{"ghost": {0}},
	}
	d := sampleDesign()
	if err := ri.Apply(d); err == nil {
		t.Error("unknown blockage node accepted")
	}
}

func TestRouteRoundTripThroughAux(t *testing.T) {
	dir := t.TempDir()
	d := sampleDesign()
	auxPath, err := Write(d, dir, "rt")
	if err != nil {
		t.Fatal(err)
	}
	// Attach a .route file and reference it from the aux.
	if err := WriteRoute(d, filepath.Join(dir, "rt.route"), 10, 5); err != nil {
		t.Fatal(err)
	}
	aux := "RowBasedPlacement : rt.nodes rt.nets rt.wts rt.pl rt.scl rt.route\n"
	if err := os.WriteFile(auxPath, []byte(aux), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(auxPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Layers) != len(d.Layers) {
		t.Fatalf("layers = %d, want %d", len(got.Layers), len(d.Layers))
	}
	for i := range got.Layers {
		if got.Layers[i].Dir != d.Layers[i].Dir {
			t.Errorf("layer %d direction mismatch", i)
		}
	}
}

func TestWriteRouteRejectsBadGrid(t *testing.T) {
	d := sampleDesign()
	if err := WriteRoute(d, filepath.Join(t.TempDir(), "x.route"), 0, 5); err == nil {
		t.Error("bad grid accepted")
	}
}
