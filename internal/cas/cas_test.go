package cas

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestGoldenDigests locks the canonical encodings. These hex values are
// the cache's wire contract: if any of them changes, every deployed
// fleet's result cache silently invalidates (or worse, a digest collision
// across meanings appears). Changing an encoding requires bumping the
// corresponding format version string AND updating these constants in the
// same commit, deliberately.
func TestGoldenDigests(t *testing.T) {
	if d := Sum([]byte("hello")); d != "sha256-2cf24dba5fb0a30e26e83b2ac5b9e29e1b161e5c1fa7425e73043362938b9824" {
		t.Errorf("Sum(hello) = %s", d)
	}

	blob, err := EncodeBookshelf(map[string]string{
		"design.nodes": "NumNodes : 2\n",
		"design.nets":  "NumNets : 1\n",
	})
	if err != nil {
		t.Fatalf("EncodeBookshelf: %v", err)
	}
	wantBlob := `{"format":"puffer/design-blob/v1","files":{"design.nets":"NumNets : 1\n","design.nodes":"NumNodes : 2\n"}}`
	if string(blob) != wantBlob {
		t.Errorf("bookshelf blob encoding changed:\n got %s\nwant %s", blob, wantBlob)
	}
	if d := Sum(blob); d != "sha256-cc2f9b314a8d545d1c189e0775fd070a0a1b410d509776024de246636495d1e9" {
		t.Errorf("bookshelf digest = %s", d)
	}

	if d := ProfileDesignDigest("media_subsys", 3000, 5); d != "sha256-f2b255018ca371cfed4bad9a341d8b785f8464caf277fd2b0eefa28a813760f6" {
		t.Errorf("profile digest = %s", d)
	}

	d1, err := (Config{Kind: "place", Route: true, Seed: 5}).Digest()
	if err != nil {
		t.Fatalf("config digest: %v", err)
	}
	if d1 != "sha256-4cdc3cef7b3de64afdee7323b9ba18d2e3df758629b2c7bdb32ca74e5d50bff3" {
		t.Errorf("config digest (nil strategy) = %s", d1)
	}

	canon, err := CanonicalStrategy(json.RawMessage(`{}`))
	if err != nil {
		t.Fatalf("canonical strategy: %v", err)
	}
	if d := Sum(canon); d != "sha256-bc6f2b6a4bb24dfa1b443b11112b47ed312833aa788e554759b6a6723cfa05ce" {
		t.Errorf("canonical default strategy digest = %s\n(encoding: %s)", d, canon)
	}
	d2, err := (Config{Kind: "place", Route: true, Seed: 5, Strategy: json.RawMessage(`{}`)}).Digest()
	if err != nil {
		t.Fatalf("config digest with strategy: %v", err)
	}
	if d2 != "sha256-2fa0bad77f42f3ff8318c77cdb0f7a60ed457fd510f354e59a4b9fe079d909dc" {
		t.Errorf("config digest (empty strategy json) = %s", d2)
	}
}

func TestDigestValidShort(t *testing.T) {
	d := Sum([]byte("x"))
	if !d.Valid() {
		t.Fatalf("Sum output %q not Valid", d)
	}
	if got := d.Short(); len(got) != 12 || !strings.HasPrefix(string(d), "sha256-"+got) {
		t.Errorf("Short() = %q", got)
	}
	for _, bad := range []Digest{
		"",
		"sha256-",
		"sha256-abc",
		Digest("sha256-" + strings.Repeat("G", 64)),        // non-hex
		Digest("sha256-" + strings.Repeat("A", 64)),        // uppercase hex
		Digest("md5-" + strings.Repeat("a", 64)),           // wrong algo
		Digest("sha256-" + strings.Repeat("a", 63)),        // short
		Digest("sha256-" + strings.Repeat("a", 65)),        // long
		Digest("sha256-" + strings.Repeat("a", 64) + "\n"), // trailing
		Digest("../etc/passwd"),                            // path escape
	} {
		if bad.Valid() {
			t.Errorf("Digest(%q).Valid() = true", bad)
		}
	}
}

func TestConfigDigestSensitivity(t *testing.T) {
	base := Config{Kind: "place", MaxIters: 100, Route: true, Seed: 5}
	bd, err := base.Digest()
	if err != nil {
		t.Fatal(err)
	}
	variants := []Config{
		{Kind: "explore", MaxIters: 100, Route: true, Seed: 5},
		{Kind: "place", MaxIters: 101, Route: true, Seed: 5},
		{Kind: "place", MaxIters: 100, Route: false, Seed: 5},
		{Kind: "place", MaxIters: 100, Route: true, Seed: 6},
		{Kind: "place", MaxIters: 100, Route: true, Seed: 5, Budget: 8},
		{Kind: "place", MaxIters: 100, Route: true, Seed: 5, Strategy: json.RawMessage(`{"Mu":1.3}`)},
	}
	for i, v := range variants {
		vd, err := v.Digest()
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if vd == bd {
			t.Errorf("variant %d: digest did not change (%+v)", i, v)
		}
	}
}

// TestStrategyCanonicalization: two spellings of the same strategy — and
// any worker-count setting — must share a digest.
func TestStrategyCanonicalization(t *testing.T) {
	a, err := CanonicalStrategy(json.RawMessage(`{"Mu": 1.3, "Tau": 0.2}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := CanonicalStrategy(json.RawMessage(` {"Tau":0.2,"Mu":1.3} `))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Errorf("key order / whitespace perturbed canonical form:\n%s\n%s", a, b)
	}
	c, err := CanonicalStrategy(json.RawMessage(`{"Mu":1.3,"Tau":0.2,"Cong":{"Workers":7},"Feat":{"Workers":3}}`))
	if err != nil {
		t.Fatal(err)
	}
	// Worker counts do not affect results (bit-determinism), so they must
	// not affect the canonical form either... except Cong.Workers rides in
	// an embedded struct whose siblings are zeroed by the partial decode —
	// assert only that the Workers fields themselves are scrubbed.
	if strings.Contains(string(c), `"Workers":7`) || strings.Contains(string(c), `"Workers":3`) {
		t.Errorf("worker counts leaked into canonical strategy: %s", c)
	}
	if _, err := CanonicalStrategy(json.RawMessage(`{not json`)); err == nil {
		t.Error("invalid strategy JSON accepted")
	}
}

func TestBookshelfRoundTrip(t *testing.T) {
	files := map[string]string{"a.nodes": "x", "a.nets": "y", "a.pl": "z"}
	blob, err := EncodeBookshelf(files)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBookshelf(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(files) || got["a.nodes"] != "x" || got["a.nets"] != "y" || got["a.pl"] != "z" {
		t.Errorf("round trip lost data: %v", got)
	}
	if _, err := EncodeBookshelf(nil); err == nil {
		t.Error("empty upload accepted")
	}
	if _, err := DecodeBookshelf([]byte(`{"format":"other/v1","files":{"a":"b"}}`)); err == nil {
		t.Error("foreign blob format accepted")
	}
	if _, err := DecodeBookshelf([]byte(`{"format":"puffer/design-blob/v1","files":{}}`)); err == nil {
		t.Error("fileless blob accepted")
	}
}

func mustDigest(t *testing.T, s string) Digest {
	t.Helper()
	d := Sum([]byte(s))
	return d
}

func TestStorePutDedup(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("design bytes")
	d1, existed, err := s.Put(data)
	if err != nil || existed {
		t.Fatalf("first Put: d=%s existed=%v err=%v", d1, existed, err)
	}
	d2, existed, err := s.Put(data)
	if err != nil || !existed || d2 != d1 {
		t.Fatalf("second Put: d=%s existed=%v err=%v", d2, existed, err)
	}
	got, err := s.Blob(d1)
	if err != nil || string(got) != string(data) {
		t.Fatalf("Blob: %q err=%v", got, err)
	}
	// Corrupt the blob on disk: Blob must detect it.
	if err := os.WriteFile(s.BlobPath(d1), []byte("tampered"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Blob(d1); err == nil {
		t.Error("corrupt blob read back without error")
	}
}

func TestStoreRefsAndGC(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	dFree, _, _ := s.Put([]byte("free"))
	dHeld, _, _ := s.Put([]byte("held"))
	dPinned, _, _ := s.Put([]byte("pinned"))
	if err := s.AddRef(dHeld); err != nil {
		t.Fatal(err)
	}
	if err := s.AddRef(mustDigest(t, "never stored")); err == nil {
		t.Error("AddRef of unknown blob succeeded")
	}
	cfg := Sum([]byte("cfg"))
	if err := s.PutResult(ResultEntry{Design: dPinned, Config: cfg, Engine: "e1", Job: "job-1", HPWL: 42}); err != nil {
		t.Fatal(err)
	}

	if g := s.Garbage(); len(g) != 1 || g[0] != dFree {
		t.Fatalf("Garbage() = %v, want only %s", g, dFree)
	}
	victims, err := s.GC()
	if err != nil {
		t.Fatal(err)
	}
	if len(victims) != 1 || victims[0] != dFree {
		t.Fatalf("GC() = %v", victims)
	}
	if _, err := os.Stat(s.BlobPath(dFree)); !os.IsNotExist(err) {
		t.Errorf("GCed blob still on disk (err=%v)", err)
	}
	if _, err := os.Stat(s.BlobPath(dHeld)); err != nil {
		t.Errorf("referenced blob deleted: %v", err)
	}
	if _, err := os.Stat(s.BlobPath(dPinned)); err != nil {
		t.Errorf("result-pinned blob deleted: %v", err)
	}

	// Release the held blob; it becomes garbage. Releasing twice (or an
	// unknown digest) is a no-op.
	if err := s.Release(dHeld); err != nil {
		t.Fatal(err)
	}
	if err := s.Release(dFree); err != nil {
		t.Fatal(err)
	}
	if g := s.Garbage(); len(g) != 1 || g[0] != dHeld {
		t.Fatalf("after release Garbage() = %v", g)
	}

	// Dropping the result unpins dPinned.
	if err := s.DropResult(dPinned, cfg, "e1"); err != nil {
		t.Fatal(err)
	}
	if g := s.Garbage(); len(g) != 2 {
		t.Fatalf("after drop Garbage() = %v", g)
	}

	// A reopened store sees the same state (index persisted atomically).
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if g := s2.Garbage(); len(g) != 2 {
		t.Fatalf("reopened Garbage() = %v", g)
	}
}

func TestStoreResults(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	design := Sum([]byte("d"))
	cfg := Sum([]byte("c"))
	if _, ok := s.Result(design, cfg, "e1"); ok {
		t.Fatal("empty store claims a result")
	}
	e := ResultEntry{Design: design, Config: cfg, Engine: "e1", Job: "job-7", ResultDigest: Sum([]byte("r")), HPWL: 3.5}
	if err := s.PutResult(e); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Result(design, cfg, "e1")
	if !ok || got.Job != "job-7" || got.HPWL != 3.5 || got.CreatedAt.IsZero() {
		t.Fatalf("Result = %+v ok=%v", got, ok)
	}
	// A different engine version misses.
	if _, ok := s.Result(design, cfg, "e2"); ok {
		t.Error("engine version did not partition the cache")
	}
	if err := s.PutResult(ResultEntry{Design: design, Config: cfg, Engine: "", Job: "j"}); err == nil {
		t.Error("entry with empty engine accepted")
	}
	if err := s.PutResult(ResultEntry{Design: "sha256-zz", Config: cfg, Engine: "e1", Job: "j"}); err == nil {
		t.Error("entry with invalid design digest accepted")
	}
}

func TestStoreOrphans(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	dKept, _, _ := s.Put([]byte("kept"))
	dLost, _, _ := s.Put([]byte("lost"))

	// Simulate a file that appeared outside the index, and an index entry
	// whose file vanished.
	stray := Sum([]byte("stray"))
	if err := os.WriteFile(filepath.Join(dir, "blobs", string(stray)), []byte("stray"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(s.BlobPath(dLost)); err != nil {
		t.Fatal(err)
	}
	// Temp files mid-write are ignored.
	if err := os.WriteFile(filepath.Join(dir, "blobs", ".tmp-123"), nil, 0o644); err != nil {
		t.Fatal(err)
	}

	onDisk, missing, err := s.Orphans()
	if err != nil {
		t.Fatal(err)
	}
	if len(onDisk) != 1 || onDisk[0] != stray {
		t.Errorf("onDisk = %v, want [%s]", onDisk, stray)
	}
	if len(missing) != 1 || missing[0] != dLost {
		t.Errorf("missing = %v, want [%s]", missing, dLost)
	}
	_ = dKept
}

func TestOpenRejectsCorruptIndex(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "blobs"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "index.json"), []byte(`{"format":"puffer/cas-index/v1","blobs":[{"dig`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("truncated index opened without error")
	}
}

func TestParseIndexRejections(t *testing.T) {
	okBlob := string(Sum([]byte("b")))
	okCfg := string(Sum([]byte("c")))
	valid := `{"format":"puffer/cas-index/v1","blobs":[{"digest":"` + okBlob + `","size":1,"refs":0}],` +
		`"results":[{"design":"` + okBlob + `","config":"` + okCfg + `","engine":"e1","job":"j1","created_at":"2026-01-01T00:00:00Z"}]}`
	if _, err := ParseIndex([]byte(valid)); err != nil {
		t.Fatalf("valid index rejected: %v", err)
	}

	cases := map[string]string{
		"empty":            "",
		"whitespace":       "  \n ",
		"truncated":        valid[:len(valid)/2],
		"trailing data":    valid + `{"x":1}`,
		"not an object":    `[1,2,3]`,
		"unknown field":    `{"format":"puffer/cas-index/v1","blobs":null,"results":null,"extra":1}`,
		"foreign format":   `{"format":"puffer/spool/v1","blobs":null,"results":null}`,
		"missing format":   `{"blobs":null,"results":null}`,
		"bad blob digest":  `{"format":"puffer/cas-index/v1","blobs":[{"digest":"nope","size":1,"refs":0}],"results":null}`,
		"negative size":    `{"format":"puffer/cas-index/v1","blobs":[{"digest":"` + okBlob + `","size":-1,"refs":0}],"results":null}`,
		"negative refs":    `{"format":"puffer/cas-index/v1","blobs":[{"digest":"` + okBlob + `","size":1,"refs":-2}],"results":null}`,
		"duplicate blob":   `{"format":"puffer/cas-index/v1","blobs":[{"digest":"` + okBlob + `","size":1,"refs":0},{"digest":"` + okBlob + `","size":1,"refs":0}],"results":null}`,
		"bad design":       `{"format":"puffer/cas-index/v1","blobs":null,"results":[{"design":"x","config":"` + okCfg + `","engine":"e","job":"j","created_at":"2026-01-01T00:00:00Z"}]}`,
		"bad config":       `{"format":"puffer/cas-index/v1","blobs":null,"results":[{"design":"` + okBlob + `","config":"x","engine":"e","job":"j","created_at":"2026-01-01T00:00:00Z"}]}`,
		"empty engine":     `{"format":"puffer/cas-index/v1","blobs":null,"results":[{"design":"` + okBlob + `","config":"` + okCfg + `","engine":"","job":"j","created_at":"2026-01-01T00:00:00Z"}]}`,
		"empty job":        `{"format":"puffer/cas-index/v1","blobs":null,"results":[{"design":"` + okBlob + `","config":"` + okCfg + `","engine":"e","job":"","created_at":"2026-01-01T00:00:00Z"}]}`,
		"bad result dig":   `{"format":"puffer/cas-index/v1","blobs":null,"results":[{"design":"` + okBlob + `","config":"` + okCfg + `","engine":"e","job":"j","result_digest":"zz","created_at":"2026-01-01T00:00:00Z"}]}`,
		"duplicate result": `{"format":"puffer/cas-index/v1","blobs":null,"results":[{"design":"` + okBlob + `","config":"` + okCfg + `","engine":"e","job":"j1","created_at":"2026-01-01T00:00:00Z"},{"design":"` + okBlob + `","config":"` + okCfg + `","engine":"e","job":"j2","created_at":"2026-01-01T00:00:00Z"}]}`,
	}
	for name, doc := range cases {
		if _, err := ParseIndex([]byte(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// FuzzParseCASIndex: ParseIndex must never panic, and anything it accepts
// must be internally consistent (valid digests, no duplicates) and
// re-parseable after a marshal round trip. ParseIndex is pure — there is
// no state to mutate on the rejection path.
func FuzzParseCASIndex(f *testing.F) {
	okBlob := string(Sum([]byte("b")))
	f.Add([]byte(""))
	f.Add([]byte(`{"format":"puffer/cas-index/v1","blobs":null,"results":null}`))
	f.Add([]byte(`{"format":"puffer/cas-index/v1","blobs":[{"digest":"` + okBlob + `","size":3,"refs":1}],"results":null}`))
	f.Add([]byte(`{"format":"other/v1"}`))
	f.Add([]byte(`[]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		idx, err := ParseIndex(data)
		if err != nil {
			return
		}
		seen := map[Digest]bool{}
		for _, b := range idx.Blobs {
			if !b.Digest.Valid() || b.Size < 0 || b.Refs < 0 || seen[b.Digest] {
				t.Fatalf("accepted inconsistent blob %+v", b)
			}
			seen[b.Digest] = true
		}
		keys := map[string]bool{}
		for i := range idx.Results {
			e := &idx.Results[i]
			if !e.Design.Valid() || !e.Config.Valid() || e.Engine == "" || e.Job == "" || keys[e.Key()] {
				t.Fatalf("accepted inconsistent result %+v", e)
			}
			keys[e.Key()] = true
		}
		out, err := json.Marshal(idx)
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		if _, err := ParseIndex(out); err != nil {
			t.Fatalf("round trip rejected: %v\n%s", err, out)
		}
	})
}
