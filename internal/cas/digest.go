// Package cas is the content-addressed store behind the fleet coordinator:
// uploaded designs and normalized job configurations hash to stable SHA-256
// digests, blobs live on disk under their digest with reference counts, and
// a result index maps (design digest, config digest, engine version) to the
// job that already computed that placement — so a byte-identical repeat
// submission is a cache hit instead of a recomputed placement, and many
// exploration trials on one design share a single uploaded blob.
//
// Layout under the store root (format puffer/cas/v1):
//
//	index.json             puffer/cas-index/v1: blob refcounts + result index
//	blobs/sha256-<hex>     raw blob bytes, named by their own digest
//
// Every index write is atomic (temp + fsync + rename, like the job spool),
// so a crashed coordinator reopens either the previous or the next complete
// index. Blobs are immutable once written; verification is a re-hash.
package cas

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"puffer/internal/padding"
)

// Digest is a content address: "sha256-" followed by 64 lowercase hex
// digits of the SHA-256 of the content.
type Digest string

// digestHexLen is the length of the hex part of a Digest.
const digestHexLen = sha256.Size * 2

// Sum returns the digest of data.
func Sum(data []byte) Digest {
	h := sha256.Sum256(data)
	return Digest("sha256-" + hex.EncodeToString(h[:]))
}

// Valid reports whether d is syntactically a sha256 content address.
func (d Digest) Valid() bool {
	s := string(d)
	if !strings.HasPrefix(s, "sha256-") || len(s) != len("sha256-")+digestHexLen {
		return false
	}
	for _, c := range s[len("sha256-"):] {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Short returns a 12-hex-digit abbreviation for logs and tables.
func (d Digest) Short() string {
	s := string(d)
	if i := strings.IndexByte(s, '-'); i >= 0 && len(s) >= i+13 {
		return s[i+1 : i+13]
	}
	return s
}

// BlobFormat identifies the canonical bookshelf design blob document: the
// JSON encoding of an uploaded design, with file names as sorted object
// keys so identical uploads produce identical bytes (and so one digest).
const BlobFormat = "puffer/design-blob/v1"

// designBlob is the canonical container for an uploaded Bookshelf design.
// encoding/json marshals map keys in sorted order, which is what makes the
// encoding canonical.
type designBlob struct {
	Format string            `json:"format"`
	Files  map[string]string `json:"files"`
}

// EncodeBookshelf canonically encodes an uploaded design (file name →
// content). The same files always produce the same bytes, so Sum of the
// result is the design's content address.
func EncodeBookshelf(files map[string]string) ([]byte, error) {
	if len(files) == 0 {
		return nil, fmt.Errorf("cas: empty bookshelf upload")
	}
	return json.Marshal(designBlob{Format: BlobFormat, Files: files})
}

// DecodeBookshelf reverses EncodeBookshelf, rejecting foreign documents.
func DecodeBookshelf(blob []byte) (map[string]string, error) {
	var db designBlob
	if err := json.Unmarshal(blob, &db); err != nil {
		return nil, fmt.Errorf("cas: decode design blob: %w", err)
	}
	if db.Format != BlobFormat {
		return nil, fmt.Errorf("cas: design blob format %q, want %q", db.Format, BlobFormat)
	}
	if len(db.Files) == 0 {
		return nil, fmt.Errorf("cas: design blob has no files")
	}
	return db.Files, nil
}

// ProfileDesignDigest is the content address of a synthetic design: the
// generator is deterministic, so (profile, scale, seed) fully identifies
// the netlist without materializing it.
func ProfileDesignDigest(profile string, scale int, seed int64) Digest {
	return Sum([]byte(fmt.Sprintf("puffer/design-profile/v1\nprofile=%s\nscale=%d\nseed=%d\n", profile, scale, seed)))
}

// Config is the normalized, result-determining part of a job submission.
// Fields that cannot change the placement result are deliberately absent:
// worker count (the engine is bit-deterministic for any worker count),
// deadlines, and cache-control/checkpoint hints. Changing any byte of any
// included field changes the digest, so stale cache hits are impossible;
// the golden digest test locks the encoding so it can never silently
// change between releases.
type Config struct {
	// Kind is the job kind ("place" or "explore").
	Kind string
	// MaxIters caps global-placement iterations (0 = engine default).
	MaxIters int
	// Route records whether the evaluation-routing stage runs.
	Route bool
	// Budget is the exploration trial budget (explore jobs).
	Budget int
	// Seed is the generation/placement seed.
	Seed int64
	// Strategy is the raw strategy JSON of the submission (nil when the
	// job uses the default strategy). It is canonicalized — decoded onto
	// the default strategy and re-marshaled — before hashing, so two
	// spellings of the same strategy share a digest.
	Strategy json.RawMessage
	// Distributed marks a farm-controlled exploration (explore jobs).
	// Part of the digest so a distributed exploration and its in-process
	// twin never share a cache entry: their trial schedules agree only
	// when neither early stop nor warm start perturbs the scores.
	Distributed bool
	// EarlyStop marks competitive mid-flight trial cancellation
	// (nondeterministic across fleet load, so it splits the cache).
	EarlyStop bool
	// WarmStart marks TPE priors seeded from earlier explorations (the
	// outcome depends on store history, so it splits the cache).
	WarmStart bool
}

// Digest returns the config's content address over the canonical key=value
// encoding.
func (c Config) Digest() (Digest, error) {
	strategy := "-"
	if len(c.Strategy) > 0 {
		canon, err := CanonicalStrategy(c.Strategy)
		if err != nil {
			return "", err
		}
		strategy = string(Sum(canon))
	}
	enc := fmt.Sprintf("puffer/config/v1\nkind=%s\nmax_iters=%d\nroute=%t\nbudget=%d\nseed=%d\nstrategy=%s\n",
		c.Kind, c.MaxIters, c.Route, c.Budget, c.Seed, strategy)
	// Mode flags append only when set, so every pre-farm digest — and its
	// golden test — is unchanged.
	if c.Distributed {
		enc += "distributed=true\n"
	}
	if c.EarlyStop {
		enc += "early_stop=true\n"
	}
	if c.WarmStart {
		enc += "warm_start=true\n"
	}
	return Sum([]byte(enc)), nil
}

// CanonicalStrategy normalizes a padding.Strategy JSON document: it is
// decoded over the defaults (exactly as the job service does) and
// re-marshaled with the struct's fixed field order, so formatting,
// key order, and explicitly-spelled default values do not perturb the
// config digest. Worker-count knobs are zeroed first — the engine is
// bit-deterministic for any worker count, so parallelism must never
// split the cache.
func CanonicalStrategy(raw json.RawMessage) ([]byte, error) {
	st := padding.DefaultStrategy()
	if err := json.Unmarshal(raw, &st); err != nil {
		return nil, fmt.Errorf("cas: canonicalize strategy: %w", err)
	}
	st.Cong.Workers = 0
	st.Feat.Workers = 0
	return json.Marshal(st)
}

// ResultKey orders and joins the three coordinates of a cached result.
func ResultKey(design, config Digest, engine string) string {
	return string(design) + "|" + string(config) + "|" + engine
}

// sortDigests sorts a digest slice (for stable diagnostics output).
func sortDigests(ds []Digest) {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
}
