package cas

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"
)

// IndexFormat identifies the store index JSON document version.
const IndexFormat = "puffer/cas-index/v1"

// BlobInfo is one stored blob's index record.
type BlobInfo struct {
	// Digest is the blob's content address (also its file name under
	// blobs/).
	Digest Digest `json:"digest"`
	// Size is the blob's byte length.
	Size int64 `json:"size"`
	// Refs counts live (non-terminal) jobs currently referencing the
	// blob. A zero-ref blob is garbage unless a result entry pins its
	// design digest.
	Refs int `json:"refs"`
}

// ResultEntry maps one (design, config, engine) triple to the job that
// computed it. The job's spooled manifest holds the JobResult and the
// artifact files; the entry carries just enough (HPWL, result digest) for
// diagnostics without a spool read.
type ResultEntry struct {
	Design Digest `json:"design"`
	Config Digest `json:"config"`
	// Engine is the engine version string the result was computed with;
	// an engine upgrade naturally invalidates the whole cache without
	// deleting anything.
	Engine string `json:"engine"`
	// Job is the coordinator job ID whose spool directory holds the
	// result and artifacts.
	Job string `json:"job"`
	// ResultDigest is the content address of the canonical JobResult
	// JSON — every cache hit of this entry reports the same digest.
	ResultDigest Digest `json:"result_digest,omitempty"`
	// HPWL mirrors the result's headline number for fleet diagnostics.
	HPWL      float64   `json:"hpwl,omitempty"`
	CreatedAt time.Time `json:"created_at"`
}

// Key returns the entry's composite lookup key.
func (e *ResultEntry) Key() string { return ResultKey(e.Design, e.Config, e.Engine) }

// Index is the store's durable catalog: blob refcounts plus the result
// index. It is rewritten atomically on every mutation.
type Index struct {
	Format  string        `json:"format"`
	Blobs   []BlobInfo    `json:"blobs"`
	Results []ResultEntry `json:"results"`
}

// ParseIndex decodes and validates a store index document. It rejects —
// without mutating any state, it is a pure function — empty or truncated
// input, JSON that is not an index document, foreign or missing format
// strings, syntactically invalid digests, negative sizes or refcounts,
// duplicate blob digests, and duplicate (design, config, engine) result
// keys. The fuzz target FuzzParseCASIndex drives this.
func ParseIndex(data []byte) (*Index, error) {
	if len(bytes.TrimSpace(data)) == 0 {
		return nil, fmt.Errorf("cas: index is empty")
	}
	idx := &Index{}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(idx); err != nil {
		return nil, fmt.Errorf("cas: decode index (truncated or not a CAS index?): %w", err)
	}
	// Trailing garbage after the document is corruption, not an index.
	if dec.More() {
		return nil, fmt.Errorf("cas: index has trailing data")
	}
	if idx.Format != IndexFormat {
		return nil, fmt.Errorf("cas: index format %q, want %q", idx.Format, IndexFormat)
	}
	seenBlobs := make(map[Digest]struct{}, len(idx.Blobs))
	for i := range idx.Blobs {
		b := &idx.Blobs[i]
		if !b.Digest.Valid() {
			return nil, fmt.Errorf("cas: blob %d: invalid digest %q", i, b.Digest)
		}
		if _, dup := seenBlobs[b.Digest]; dup {
			return nil, fmt.Errorf("cas: duplicate blob digest %s", b.Digest)
		}
		seenBlobs[b.Digest] = struct{}{}
		if b.Size < 0 {
			return nil, fmt.Errorf("cas: blob %s: negative size %d", b.Digest, b.Size)
		}
		if b.Refs < 0 {
			return nil, fmt.Errorf("cas: blob %s: negative refcount %d", b.Digest, b.Refs)
		}
	}
	seenResults := make(map[string]struct{}, len(idx.Results))
	for i := range idx.Results {
		e := &idx.Results[i]
		if !e.Design.Valid() {
			return nil, fmt.Errorf("cas: result %d: invalid design digest %q", i, e.Design)
		}
		if !e.Config.Valid() {
			return nil, fmt.Errorf("cas: result %d: invalid config digest %q", i, e.Config)
		}
		if e.Engine == "" {
			return nil, fmt.Errorf("cas: result %d: empty engine version", i)
		}
		if e.Job == "" {
			return nil, fmt.Errorf("cas: result %d: empty job ID", i)
		}
		if e.ResultDigest != "" && !e.ResultDigest.Valid() {
			return nil, fmt.Errorf("cas: result %d: invalid result digest %q", i, e.ResultDigest)
		}
		key := e.Key()
		if _, dup := seenResults[key]; dup {
			return nil, fmt.Errorf("cas: duplicate result key %s", key)
		}
		seenResults[key] = struct{}{}
	}
	return idx, nil
}
