package cas

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"puffer/internal/fsx"
)

// Store is the on-disk content-addressed store. All methods are safe for
// concurrent use; every mutation persists the index atomically before
// returning, so a killed process never loses an acknowledged write.
type Store struct {
	root string

	mu      sync.Mutex
	blobs   map[Digest]*BlobInfo
	results map[string]*ResultEntry
}

// Open creates (if necessary) and opens a store rooted at dir, loading and
// validating the existing index when one is present. A corrupt index is an
// error — the caller decides whether to rebuild, the store never guesses.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("cas: store directory must be set")
	}
	if err := os.MkdirAll(filepath.Join(dir, "blobs"), 0o755); err != nil {
		return nil, fmt.Errorf("cas: open store: %w", err)
	}
	s := &Store{
		root:    dir,
		blobs:   make(map[Digest]*BlobInfo),
		results: make(map[string]*ResultEntry),
	}
	data, err := os.ReadFile(s.indexPath())
	switch {
	case os.IsNotExist(err):
		// Fresh store.
	case err != nil:
		return nil, fmt.Errorf("cas: read index: %w", err)
	default:
		idx, perr := ParseIndex(data)
		if perr != nil {
			return nil, perr
		}
		for i := range idx.Blobs {
			b := idx.Blobs[i]
			s.blobs[b.Digest] = &b
		}
		for i := range idx.Results {
			e := idx.Results[i]
			s.results[e.Key()] = &e
		}
	}
	return s, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

func (s *Store) indexPath() string { return filepath.Join(s.root, "index.json") }

// BlobPath returns where d's bytes live (whether or not they exist yet).
func (s *Store) BlobPath(d Digest) string {
	return filepath.Join(s.root, "blobs", string(d))
}

// saveLocked persists the index; the caller holds s.mu.
func (s *Store) saveLocked() error {
	idx := s.snapshotLocked()
	data, err := json.MarshalIndent(idx, "", "  ")
	if err != nil {
		return fmt.Errorf("cas: encode index: %w", err)
	}
	return fsx.AtomicWriteFile(s.indexPath(), append(data, '\n'))
}

// snapshotLocked builds a sorted Index copy; the caller holds s.mu.
func (s *Store) snapshotLocked() *Index {
	idx := &Index{Format: IndexFormat}
	for _, b := range s.blobs {
		idx.Blobs = append(idx.Blobs, *b)
	}
	sort.Slice(idx.Blobs, func(i, j int) bool { return idx.Blobs[i].Digest < idx.Blobs[j].Digest })
	for _, e := range s.results {
		idx.Results = append(idx.Results, *e)
	}
	sort.Slice(idx.Results, func(i, j int) bool { return idx.Results[i].Key() < idx.Results[j].Key() })
	return idx
}

// Snapshot returns a consistent copy of the index for diagnostics.
func (s *Store) Snapshot() *Index {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapshotLocked()
}

// Put stores data under its own digest, deduplicating: a blob that already
// exists is not rewritten (existed=true). Refcounts are unchanged — pair
// Put with AddRef for each live referencing job.
func (s *Store) Put(data []byte) (d Digest, existed bool, err error) {
	d = Sum(data)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.blobs[d]; ok {
		return d, true, nil
	}
	if err := fsx.AtomicWriteFile(s.BlobPath(d), data); err != nil {
		return d, false, fmt.Errorf("cas: write blob: %w", err)
	}
	s.blobs[d] = &BlobInfo{Digest: d, Size: int64(len(data))}
	if err := s.saveLocked(); err != nil {
		return d, false, err
	}
	return d, false, nil
}

// Blob reads a stored blob and verifies it against its digest — silent
// on-disk corruption surfaces as an error, never as wrong design bytes.
func (s *Store) Blob(d Digest) ([]byte, error) {
	data, err := os.ReadFile(s.BlobPath(d))
	if err != nil {
		return nil, err
	}
	if got := Sum(data); got != d {
		return nil, fmt.Errorf("cas: blob %s corrupt: content hashes to %s", d, got)
	}
	return data, nil
}

// AddRef records one more live job referencing d.
func (s *Store) AddRef(d Digest) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.blobs[d]
	if !ok {
		return fmt.Errorf("cas: addref: unknown blob %s", d)
	}
	b.Refs++
	return s.saveLocked()
}

// Release drops one live reference to d. Releasing an unknown blob is a
// no-op (the blob may have been GCed between the job's admit and retire).
func (s *Store) Release(d Digest) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.blobs[d]
	if !ok {
		return nil
	}
	if b.Refs > 0 {
		b.Refs--
	}
	return s.saveLocked()
}

// PutResult records (or replaces) the cached result for e's key.
func (s *Store) PutResult(e ResultEntry) error {
	if !e.Design.Valid() || !e.Config.Valid() || e.Engine == "" || e.Job == "" {
		return fmt.Errorf("cas: invalid result entry %+v", e)
	}
	if e.CreatedAt.IsZero() {
		e.CreatedAt = time.Now().UTC()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.results[e.Key()] = &e
	return s.saveLocked()
}

// Result looks up the cached result for (design, config, engine).
func (s *Store) Result(design, config Digest, engine string) (ResultEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.results[ResultKey(design, config, engine)]
	if !ok {
		return ResultEntry{}, false
	}
	return *e, true
}

// DropResult removes a cached result entry (e.g. when its job's spool
// record disappeared). Unknown keys are a no-op.
func (s *Store) DropResult(design, config Digest, engine string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := ResultKey(design, config, engine)
	if _, ok := s.results[key]; !ok {
		return nil
	}
	delete(s.results, key)
	return s.saveLocked()
}

// Garbage returns the blobs GC would delete: zero live references and not
// pinned as any cached result's design. Sorted for stable output.
func (s *Store) Garbage() []Digest {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.garbageLocked()
}

func (s *Store) garbageLocked() []Digest {
	pinned := make(map[Digest]struct{}, len(s.results))
	for _, e := range s.results {
		pinned[e.Design] = struct{}{}
	}
	var out []Digest
	for d, b := range s.blobs {
		if b.Refs == 0 {
			if _, pin := pinned[d]; !pin {
				out = append(out, d)
			}
		}
	}
	sortDigests(out)
	return out
}

// GC deletes every garbage blob (zero refs, not pinned by a result) from
// the index and from disk, returning what was removed.
func (s *Store) GC() ([]Digest, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	victims := s.garbageLocked()
	if len(victims) == 0 {
		return nil, nil
	}
	for _, d := range victims {
		delete(s.blobs, d)
	}
	// Persist the shrunken index before unlinking: a crash between the
	// two leaves unreferenced files (reported by Orphans), never index
	// entries pointing at deleted files.
	if err := s.saveLocked(); err != nil {
		return nil, err
	}
	for _, d := range victims {
		if err := os.Remove(s.BlobPath(d)); err != nil && !os.IsNotExist(err) {
			return victims, fmt.Errorf("cas: gc unlink %s: %w", d, err)
		}
	}
	return victims, nil
}

// Orphans reports disagreements between the index and the blobs directory:
// files present on disk but absent from the index (safe to delete), and
// index entries whose blob file is missing (corruption — the entry's data
// is gone).
func (s *Store) Orphans() (onDisk []Digest, missing []Digest, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries, err := os.ReadDir(filepath.Join(s.root, "blobs"))
	if err != nil {
		return nil, nil, err
	}
	disk := make(map[Digest]struct{}, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		d := Digest(e.Name())
		if !d.Valid() {
			continue // temp files mid-write
		}
		disk[d] = struct{}{}
		if _, ok := s.blobs[d]; !ok {
			onDisk = append(onDisk, d)
		}
	}
	for d := range s.blobs {
		if _, ok := disk[d]; !ok {
			missing = append(missing, d)
		}
	}
	sortDigests(onDisk)
	sortDigests(missing)
	return onDisk, missing, nil
}
