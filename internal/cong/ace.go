package cong

import (
	"math"
	"sort"
)

// ACE computes the Average Congestion of Edges metric used by the
// ISPD-2011/DAC-2012 routability contests: for each requested fraction
// x ∈ (0, 1], the mean demand/capacity ratio over the top x fraction of
// the most congested Gcell-direction pairs. ACE complements the overflow
// ratio of Table II: it grades how *deep* the worst congestion runs, not
// just how much demand exceeds capacity in total.
//
// Gcells with zero capacity in a direction are graded against a capacity
// floor of one track, matching the Cg definition of Eq. 11.
func (m *Map) ACE(fractions []float64) []float64 {
	ratios := make([]float64, 0, 2*len(m.DmdH))
	for i := range m.DmdH {
		ratios = append(ratios,
			m.DmdH[i]/math.Max(m.CapH[i], 1),
			m.DmdV[i]/math.Max(m.CapV[i], 1))
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(ratios)))
	prefix := make([]float64, len(ratios)+1)
	for i, r := range ratios {
		prefix[i+1] = prefix[i] + r
	}

	out := make([]float64, len(fractions))
	for fi, f := range fractions {
		n := int(math.Ceil(f * float64(len(ratios))))
		if n < 1 {
			n = 1
		}
		if n > len(ratios) {
			n = len(ratios)
		}
		out[fi] = prefix[n] / float64(n)
	}
	return out
}

// StandardACE evaluates the contest's canonical fractions
// (0.5%, 1%, 2%, 5%) and returns them with the peak ratio prepended.
func (m *Map) StandardACE() (peak float64, ace []float64) {
	fr := []float64{0.005, 0.01, 0.02, 0.05}
	// Fractions must be ascending for the prefix walk.
	vals := m.ACE(fr)
	peak = m.ACE([]float64{1e-12})[0] // top-1 element
	return peak, vals
}
