package cong

import (
	"math"
	"testing"
)

func TestACEKnownValues(t *testing.T) {
	d := testDesign()
	m := NewMap(d, 2, 2) // 4 Gcells → 8 direction pairs
	for i := range m.CapH {
		m.CapH[i] = 10
		m.CapV[i] = 10
	}
	// Ratios: H = {2.0, 1.0, 0.5, 0}, V = {0, 0, 0, 0}.
	m.DmdH[0] = 20
	m.DmdH[1] = 10
	m.DmdH[2] = 5

	// Top 1 of 8 → fraction 1/8.
	got := m.ACE([]float64{0.125, 0.25, 1.0})
	if math.Abs(got[0]-2.0) > 1e-12 {
		t.Errorf("ACE(12.5%%) = %v, want 2.0", got[0])
	}
	if math.Abs(got[1]-1.5) > 1e-12 { // top 2: (2+1)/2
		t.Errorf("ACE(25%%) = %v, want 1.5", got[1])
	}
	if math.Abs(got[2]-3.5/8) > 1e-12 {
		t.Errorf("ACE(100%%) = %v, want %v", got[2], 3.5/8)
	}
}

func TestACEUnorderedFractions(t *testing.T) {
	d := testDesign()
	m := NewMap(d, 2, 2)
	for i := range m.CapH {
		m.CapH[i] = 10
		m.CapV[i] = 10
	}
	m.DmdH[0] = 20
	a := m.ACE([]float64{1.0, 0.125})
	b := m.ACE([]float64{0.125, 1.0})
	if a[0] != b[1] || a[1] != b[0] {
		t.Errorf("fraction order changed results: %v vs %v", a, b)
	}
}

func TestACEMonotoneInFraction(t *testing.T) {
	d := testDesign()
	m := NewMap(d, 8, 8)
	for i := range m.DmdH {
		m.DmdH[i] = float64(i % 13)
		m.DmdV[i] = float64((i * 7) % 11)
	}
	fr := []float64{0.01, 0.05, 0.2, 0.5, 1.0}
	vals := m.ACE(fr)
	for k := 1; k < len(vals); k++ {
		if vals[k] > vals[k-1]+1e-12 {
			t.Fatalf("ACE not non-increasing: %v", vals)
		}
	}
}

func TestStandardACE(t *testing.T) {
	d := testDesign()
	m := NewMap(d, 4, 4)
	for i := range m.CapH {
		m.CapH[i] = 10
		m.CapV[i] = 10
	}
	m.DmdH[3] = 30
	peak, ace := m.StandardACE()
	if math.Abs(peak-3.0) > 1e-12 {
		t.Errorf("peak = %v, want 3.0", peak)
	}
	if len(ace) != 4 {
		t.Fatalf("ace = %v, want 4 values", ace)
	}
	for k := 1; k < len(ace); k++ {
		if ace[k] > ace[k-1]+1e-12 {
			t.Errorf("StandardACE not non-increasing: %v", ace)
		}
	}
}

func TestACEZeroCapacityFloor(t *testing.T) {
	d := testDesign()
	m := NewMap(d, 2, 2)
	// All capacities zero: ratio graded against floor 1.
	for i := range m.CapH {
		m.CapH[i] = 0
		m.CapV[i] = 0
	}
	m.DmdH[0] = 4
	got := m.ACE([]float64{0.125})
	if math.Abs(got[0]-4) > 1e-12 {
		t.Errorf("zero-cap ACE = %v, want 4", got[0])
	}
}
