package cong

import (
	"math"
	"testing"

	"puffer/internal/geom"
	"puffer/internal/netlist"
)

// testDesign builds a 32x32 region with a 6-layer stack and optional
// blockages/cells supplied by the caller.
func testDesign() *netlist.Design {
	return &netlist.Design{
		Name:      "t",
		Region:    geom.RectWH(0, 0, 32, 32),
		RowHeight: 1,
		SiteWidth: 0.2,
		Layers:    netlist.DefaultLayers(),
	}
}

func TestCapacityUniformWithoutBlockages(t *testing.T) {
	d := testDesign()
	m := NewMap(d, 8, 8)
	// 3 horizontal layers with pitches 0.1, 0.1, 0.14; Gcell height 4.
	wantH := 4/0.1 + 4/0.1 + 4/0.14
	wantV := 4/0.1 + 4/0.14 + 4/0.2
	for idx := range m.CapH {
		if math.Abs(m.CapH[idx]-wantH) > 1e-9 {
			t.Fatalf("CapH[%d] = %v, want %v", idx, m.CapH[idx], wantH)
		}
		if math.Abs(m.CapV[idx]-wantV) > 1e-9 {
			t.Fatalf("CapV[%d] = %v, want %v", idx, m.CapV[idx], wantV)
		}
	}
}

func TestBlockageReducesCapacity(t *testing.T) {
	d := testDesign()
	// Full-Gcell blockage on M1 (horizontal) covering Gcell (0,0).
	d.Blockages = append(d.Blockages, netlist.Blockage{
		Rect: geom.RectWH(0, 0, 4, 4), Layer: 0,
	})
	m := NewMap(d, 8, 8)
	free := NewMap(testDesign(), 8, 8)
	blockedTracks := 4 / d.Layers[0].Pitch() // 40 tracks on M1
	if got, want := m.CapH[0], free.CapH[0]-blockedTracks; math.Abs(got-want) > 1e-9 {
		t.Errorf("blocked CapH = %v, want %v", got, want)
	}
	if m.CapV[0] != free.CapV[0] {
		t.Errorf("vertical capacity changed by horizontal-layer blockage")
	}
	if m.CapH[1] != free.CapH[1] {
		t.Errorf("neighbour Gcell capacity changed")
	}
}

func TestPartialBlockageProration(t *testing.T) {
	d := testDesign()
	// Half-width, half-height blockage in Gcell (0,0) on M1.
	d.Blockages = append(d.Blockages, netlist.Blockage{
		Rect: geom.RectWH(0, 0, 2, 2), Layer: 0,
	})
	m := NewMap(d, 8, 8)
	free := NewMap(testDesign(), 8, 8)
	// Blocks (2/pitch) tracks prorated by 2/4 of the Gcell width.
	want := free.CapH[0] - (2/d.Layers[0].Pitch())*(2.0/4.0)
	if math.Abs(m.CapH[0]-want) > 1e-9 {
		t.Errorf("partial blocked CapH = %v, want %v", m.CapH[0], want)
	}
}

func TestCapacityNeverNegative(t *testing.T) {
	d := testDesign()
	for l := range d.Layers {
		d.Blockages = append(d.Blockages,
			netlist.Blockage{Rect: geom.RectWH(0, 0, 32, 32), Layer: l},
			netlist.Blockage{Rect: geom.RectWH(0, 0, 32, 32), Layer: l})
	}
	m := NewMap(d, 8, 8)
	for i := range m.CapH {
		if m.CapH[i] < 0 || m.CapV[i] < 0 {
			t.Fatalf("negative capacity at %d: %v/%v", i, m.CapH[i], m.CapV[i])
		}
	}
}

func TestMacroReducesSites(t *testing.T) {
	d := testDesign()
	d.AddCell(netlist.Cell{Name: "m", W: 4, H: 4, X: 0, Y: 0, Fixed: true, Macro: true})
	m := NewMap(d, 8, 8)
	if m.Sites[0] != 0 {
		t.Errorf("Sites under macro = %v, want 0", m.Sites[0])
	}
	if m.Sites[m.Index(4, 4)] <= 0 {
		t.Error("free Gcell has no sites")
	}
}

func TestCgSignedCombination(t *testing.T) {
	d := testDesign()
	m := NewMap(d, 8, 8)
	idx := 0
	// Both congested: sum.
	m.DmdH[idx] = m.CapH[idx] * 1.5
	m.DmdV[idx] = m.CapV[idx] * 1.25
	wantH := (m.DmdH[idx] - m.CapH[idx]) / math.Max(m.CapH[idx], 1)
	wantV := (m.DmdV[idx] - m.CapV[idx]) / math.Max(m.CapV[idx], 1)
	if got := m.Cg(idx); math.Abs(got-(wantH+wantV)) > 1e-12 {
		t.Errorf("both-congested Cg = %v, want %v", got, wantH+wantV)
	}
	// Opposite signs: max dominates.
	m.DmdV[idx] = m.CapV[idx] * 0.5
	wantV = (m.DmdV[idx] - m.CapV[idx]) / math.Max(m.CapV[idx], 1)
	if got := m.Cg(idx); math.Abs(got-math.Max(wantH, wantV)) > 1e-12 {
		t.Errorf("mixed-sign Cg = %v, want %v", got, math.Max(wantH, wantV))
	}
	// Both negative: sum (preserves slack information, Sec. III-B1).
	m.DmdH[idx] = m.CapH[idx] * 0.5
	wantH = (m.DmdH[idx] - m.CapH[idx]) / math.Max(m.CapH[idx], 1)
	if got := m.Cg(idx); math.Abs(got-(wantH+wantV)) > 1e-12 {
		t.Errorf("both-slack Cg = %v, want %v", got, wantH+wantV)
	}
}

func TestOverflowRatios(t *testing.T) {
	d := testDesign()
	m := NewMap(d, 4, 4)
	for i := range m.CapH {
		m.CapH[i] = 10
		m.CapV[i] = 20
	}
	m.DmdH[0] = 15 // overflow 5
	m.DmdH[1] = 5  // no overflow
	m.DmdV[2] = 30 // overflow 10
	hof, vof := m.OverflowRatios()
	if want := 100 * 5.0 / 160.0; math.Abs(hof-want) > 1e-12 {
		t.Errorf("HOF = %v, want %v", hof, want)
	}
	if want := 100 * 10.0 / 320.0; math.Abs(vof-want) > 1e-12 {
		t.Errorf("VOF = %v, want %v", vof, want)
	}
}

// horizontalPairDesign wires two cells at the same height several Gcells
// apart, yielding one horizontal I-shaped segment.
func horizontalPairDesign() *netlist.Design {
	d := testDesign()
	a := d.AddCell(netlist.Cell{Name: "a", W: 1, H: 1, X: 2, Y: 10})
	b := d.AddCell(netlist.Cell{Name: "b", W: 1, H: 1, X: 26, Y: 10})
	n := d.AddNet("n", 1)
	d.Connect(a, n, 0.5, 0.5)
	d.Connect(b, n, 0.5, 0.5)
	return d
}

func TestIShapeDemand(t *testing.T) {
	d := horizontalPairDesign()
	e := NewEstimator(d, 8, 8, Params{PinPenalty: 0}) // no expansion, no penalty
	m := e.Estimate()
	// Pins at (2.5,10.5) and (26.5,10.5): Gcells (0,2) .. (6,2).
	for i := 0; i <= 6; i++ {
		if got := m.DmdH[m.Index(i, 2)]; got != 1 {
			t.Errorf("DmdH(%d,2) = %v, want 1", i, got)
		}
	}
	if got := m.DmdH[m.Index(7, 2)]; got != 0 {
		t.Errorf("DmdH(7,2) = %v, want 0", got)
	}
	// No vertical demand anywhere.
	for idx, v := range m.DmdV {
		if v != 0 {
			t.Fatalf("DmdV[%d] = %v, want 0", idx, v)
		}
	}
	if len(e.Segs) != 1 || !e.Segs[0].Horizontal {
		t.Fatalf("Segs = %+v, want one horizontal segment", e.Segs)
	}
	if e.Segs[0].ASteiner || e.Segs[0].BSteiner {
		t.Error("pin endpoints tagged as Steiner")
	}
}

func TestLShapeDemandAveraged(t *testing.T) {
	d := testDesign()
	a := d.AddCell(netlist.Cell{Name: "a", W: 1, H: 1, X: 2, Y: 2})
	b := d.AddCell(netlist.Cell{Name: "b", W: 1, H: 1, X: 14, Y: 10})
	n := d.AddNet("n", 1)
	d.Connect(a, n, 0, 0)
	d.Connect(b, n, 0, 0)
	e := NewEstimator(d, 8, 8, Params{PinPenalty: 0})
	m := e.Estimate()
	// Pins at (2,2) Gcell (0,0) and (14,10) Gcell (3,2): bbox 4x3.
	w, h := 4.0, 3.0
	sumH, sumV := 0.0, 0.0
	for j := 0; j <= 2; j++ {
		for i := 0; i <= 3; i++ {
			idx := m.Index(i, j)
			if math.Abs(m.DmdH[idx]-1/h) > 1e-12 {
				t.Errorf("DmdH(%d,%d) = %v, want %v", i, j, m.DmdH[idx], 1/h)
			}
			if math.Abs(m.DmdV[idx]-1/w) > 1e-12 {
				t.Errorf("DmdV(%d,%d) = %v, want %v", i, j, m.DmdV[idx], 1/w)
			}
			sumH += m.DmdH[idx]
			sumV += m.DmdV[idx]
		}
	}
	// Total demand equals the wire the L actually needs: w horizontal and
	// h vertical Gcells.
	if math.Abs(sumH-w) > 1e-9 || math.Abs(sumV-h) > 1e-9 {
		t.Errorf("total demand H=%v V=%v, want %v/%v", sumH, sumV, w, h)
	}
}

func TestPinPenalty(t *testing.T) {
	d := testDesign()
	a := d.AddCell(netlist.Cell{Name: "a", W: 1, H: 1, X: 2, Y: 2})
	b := d.AddCell(netlist.Cell{Name: "b", W: 1, H: 1, X: 2.5, Y: 2})
	n := d.AddNet("n", 1)
	d.Connect(a, n, 0, 0)
	d.Connect(b, n, 0, 0)
	e := NewEstimator(d, 8, 8, Params{PinPenalty: 0.25})
	m := e.Estimate()
	// Both pins in Gcell (0,0); same-Gcell edge adds no I/L demand, so
	// only the pin penalty remains.
	idx := m.Index(0, 0)
	if math.Abs(m.DmdH[idx]-0.5) > 1e-12 || math.Abs(m.DmdV[idx]-0.5) > 1e-12 {
		t.Errorf("local net demand = %v/%v, want 0.5/0.5", m.DmdH[idx], m.DmdV[idx])
	}
	if m.Pins[idx] != 2 {
		t.Errorf("pin count = %v, want 2", m.Pins[idx])
	}
	if m.PinDensity(idx) <= 0 {
		t.Error("pin density not positive")
	}
}

func TestDetourExpansionMovesDemand(t *testing.T) {
	d := horizontalPairDesign()
	e := NewEstimator(d, 8, 8, Params{
		PinPenalty:    0,
		ExpandRadius:  2,
		TransferRatio: 0.5,
	})
	// Choke the row so the single segment overflows.
	m := e.M
	for i := 0; i < m.W; i++ {
		m.CapH[m.Index(i, 2)] = 0.2
	}
	e.Estimate()
	// Half the demand must have left row 2.
	for i := 0; i <= 6; i++ {
		if got := m.DmdH[m.Index(i, 2)]; math.Abs(got-0.5) > 1e-12 {
			t.Errorf("post-expansion DmdH(%d,2) = %v, want 0.5", i, got)
		}
	}
	// And appeared in exactly one neighbouring row within the radius.
	moved := 0.0
	for j := 0; j < m.H; j++ {
		if j == 2 {
			continue
		}
		for i := 0; i <= 6; i++ {
			moved += m.DmdH[m.Index(i, j)]
		}
	}
	if math.Abs(moved-3.5) > 1e-12 { // 7 Gcells × 0.5
		t.Errorf("moved demand = %v, want 3.5", moved)
	}
	// Pin endpoints: no perpendicular demand was added.
	for idx, v := range m.DmdV {
		if v != 0 {
			t.Fatalf("DmdV[%d] = %v, want 0 (pin endpoints move for free)", idx, v)
		}
	}
}

func TestDetourExpansionAddsPerpendicularForSteiner(t *testing.T) {
	// Three pins forming a T: the RSMT has a Steiner point, so one of the
	// I-segments has a Steiner endpoint; detouring it must add vertical
	// connection demand.
	d := testDesign()
	a := d.AddCell(netlist.Cell{Name: "a", W: 1, H: 1, X: 2, Y: 10})
	b := d.AddCell(netlist.Cell{Name: "b", W: 1, H: 1, X: 26, Y: 10})
	c := d.AddCell(netlist.Cell{Name: "c", W: 1, H: 1, X: 14, Y: 26})
	n := d.AddNet("n", 1)
	d.Connect(a, n, 0.5, 0.5)
	d.Connect(b, n, 0.5, 0.5)
	d.Connect(c, n, 0.5, 0.5)
	e := NewEstimator(d, 8, 8, Params{PinPenalty: 0, ExpandRadius: 2, TransferRatio: 0.5})
	m := e.M
	for i := 0; i < m.W; i++ {
		m.CapH[m.Index(i, 2)] = 0.1
	}
	e.Estimate()
	hasSteinerSeg := false
	for _, s := range e.Segs {
		if s.ASteiner || s.BSteiner {
			hasSteinerSeg = true
		}
	}
	if !hasSteinerSeg {
		t.Fatal("expected a segment with a Steiner endpoint")
	}
	sumV := 0.0
	for _, v := range m.DmdV {
		sumV += v
	}
	// Vertical demand exists: the original trunk-to-branch leg plus the
	// detour connection legs.
	if sumV <= 4.0 { // the plain vertical leg alone spans 4 Gcells
		t.Errorf("total DmdV = %v, want > 4 (extra detour connection)", sumV)
	}
}

func TestNoExpansionWhenDisabled(t *testing.T) {
	d := horizontalPairDesign()
	e := NewEstimator(d, 8, 8, Params{PinPenalty: 0, ExpandRadius: 0, TransferRatio: 0.5})
	m := e.M
	for i := 0; i < m.W; i++ {
		m.CapH[m.Index(i, 2)] = 0.2
	}
	e.Estimate()
	for i := 0; i <= 6; i++ {
		if got := m.DmdH[m.Index(i, 2)]; got != 1 {
			t.Errorf("DmdH(%d,2) = %v, want 1 (expansion disabled)", i, got)
		}
	}
}

func TestGcellOfClamps(t *testing.T) {
	d := testDesign()
	m := NewMap(d, 8, 8)
	i, j := m.GcellOf(geom.Pt(-10, 100))
	if i != 0 || j != 7 {
		t.Errorf("GcellOf = (%d,%d), want (0,7)", i, j)
	}
}

func TestGcellRectAndCenter(t *testing.T) {
	d := testDesign()
	m := NewMap(d, 8, 8)
	r := m.GcellRect(2, 3)
	if r.Lo != geom.Pt(8, 12) || r.W() != 4 || r.H() != 4 {
		t.Errorf("GcellRect = %v", r)
	}
	if c := m.GcellCenter(2, 3); c != geom.Pt(10, 14) {
		t.Errorf("GcellCenter = %v", c)
	}
}

func TestEstimateIsRepeatable(t *testing.T) {
	d := horizontalPairDesign()
	e := NewEstimator(d, 8, 8, DefaultParams())
	e.Estimate()
	first := append([]float64(nil), e.M.DmdH...)
	e.Estimate()
	for i := range first {
		if e.M.DmdH[i] != first[i] {
			t.Fatalf("Estimate not idempotent at %d: %v vs %v", i, e.M.DmdH[i], first[i])
		}
	}
}
