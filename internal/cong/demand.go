package cong

import (
	"context"
	"math"

	"puffer/internal/geom"
	"puffer/internal/netlist"
	"puffer/internal/obs"
	"puffer/internal/rsmt"
)

// Params are the tunable strategy parameters of the congestion estimator.
// Several of them are explored by the Bayesian strategy search
// (Sec. III-C).
type Params struct {
	// PinPenalty is the routing demand added per pin in each direction to
	// capture local nets whose pins share one Gcell (Sec. III-A2).
	PinPenalty float64
	// ExpandRadius is how many Gcell rows/columns away the detour
	// expansion may push demand (Sec. III-A3).
	ExpandRadius int
	// TransferRatio is the fraction of a congested I-segment's demand
	// moved to the surrounding region.
	TransferRatio float64
	// CongestThreshold is the per-Gcell overflow above which an I-segment
	// counts as congested.
	CongestThreshold float64

	// Workers caps the estimator's data parallelism (0 = GOMAXPROCS).
	// Results never depend on it: nets and pins are sharded statically by
	// design size, per-shard accumulators merge in fixed shard order, and
	// Workers only bounds how many shards run concurrently — the same
	// any-worker-count bit-determinism contract the GP inner loop keeps
	// (DESIGN.md §3e).
	Workers int
	// RebuildEvery forces a full from-scratch re-estimation every this
	// many Estimate calls, bounding the floating-point drift the
	// incremental subtract/restamp path accumulates. Zero selects
	// DefaultRebuildEvery; negative disables periodic rebuilds (the
	// engine then rebuilds only when forced or when most nets are dirty).
	RebuildEvery int

	// Topo, when non-nil, memoizes RSMT construction across estimators
	// sharing one design (exploration trials on the same worker). It is
	// runtime wiring, not a strategy parameter: rsmt.Build is pure, so
	// attaching a memo never changes results, and the field is excluded
	// from strategy JSON and canonical config digests.
	Topo *rsmt.Memo `json:"-"`
}

// DefaultRebuildEvery is the periodic full-rebuild interval used when
// Params.RebuildEvery is zero.
const DefaultRebuildEvery = 16

// DefaultParams returns the hand-tuned defaults; the strategy exploration
// scheme replaces them with searched values.
func DefaultParams() Params {
	return Params{
		PinPenalty:       0.3,
		ExpandRadius:     3,
		TransferRatio:    0.5,
		CongestThreshold: 0,
	}
}

// Seg is an I-shaped two-point segment of a net topology in Gcell
// coordinates. Horizontal segments have J0 == J1 and I0 <= I1; vertical
// segments have I0 == I1 and J0 <= J1. The endpoint Steiner tags drive the
// detour expansion: only Steiner endpoints need extra perpendicular demand
// when the segment is detoured, because cells (pin endpoints) can simply
// move (Sec. III-A3).
type Seg struct {
	Horizontal         bool
	I0, J0, I1, J1     int
	ASteiner, BSteiner bool
}

// Estimator produces congestion maps by the routing-detour-imitating
// estimation algorithm of Sec. III-A.
//
// Since the incremental refactor the estimator is an engine rather than a
// one-shot pass: every net's deposited demand is journaled (see
// incremental.go), so repeated Estimate calls re-stamp only the nets whose
// pins crossed a Gcell boundary since the previous call, and the full
// rebuild paths shard nets and pins across Params.Workers.
type Estimator struct {
	d *netlist.Design
	M *Map
	P Params

	// Segs holds the I-shaped segments found during the last Estimate
	// call, after which the detour expansion ran over them. Segments are
	// concatenated in net order, so the expansion order is independent of
	// which nets were rebuilt incrementally.
	Segs []Seg

	// Trees holds the last RSMT topology per net; feature extraction
	// (GNN-inspired pin congestion) walks the same topology, and the
	// evaluation router reuses it through SyncTopologies.
	Trees []rsmt.Tree

	// Incremental engine state (incremental.go).
	built        bool
	forceRebuild bool
	lastP        Params
	sinceRebuild int
	pinCell      []int32      // last quantized Gcell per pin
	nets         []netJournal // per-net stamp journal
	baseH        []float64    // pre-expansion demand, maintained incrementally
	baseV        []float64
	basePins     []float64

	accH, accV, accPins [][]float64  // per-worker rebuild accumulators
	movedShards         [][]movedPin // per-shard moved-pin scratch
	dirty               []int        // dirty net ids scratch
	dirtyMark           []bool

	ovH, ovV []uint64 // expansion overflow bitsets

	stats Stats

	// Telemetry (obs.go): instruments resolved once by SetObs; all nil —
	// and therefore no-ops — until a recorder is attached.
	rec        *obs.Recorder
	cEstimates *obs.Counter
	cRebuilds  *obs.Counter
	gHitRate   *obs.Gauge
	sDirty     *obs.Series
}

// NewEstimator creates an estimator over a fresh W×H capacity map for d.
func NewEstimator(d *netlist.Design, w, h int, p Params) *Estimator {
	return &Estimator{d: d, M: NewMap(d, w, h), P: p}
}

// Grid returns the estimator's Gcell grid dimensions.
func (e *Estimator) Grid() (int, int) { return e.M.W, e.M.H }

// Estimate runs the full pipeline — topology generation, probabilistic
// demand, pin penalty, detour expansion — and returns the resulting map.
//
// The first call (and every forced or periodic rebuild) estimates from
// scratch in parallel; other calls subtract and re-stamp only the nets
// whose pins moved across a Gcell boundary, then re-run the detour
// expansion on the refreshed base demand. Estimate is equivalent to a
// from-scratch run up to the bounded floating-point drift of the
// subtract/restamp path; a rebuild (periodic or ForceRebuild) restores
// bit-exactness.
func (e *Estimator) Estimate() *Map {
	// The background context cannot cancel, and estimation has no other
	// error source, so the error is impossible here.
	m, _ := e.EstimateCtx(context.Background())
	return m
}

// stampNet builds the journal entry for net n from the current pin
// positions: the RSMT topology, the demand stamps of every I- and L-shaped
// edge, and the I-segment records the detour expansion consumes. It writes
// only net-owned state (Trees[n] and j), so distinct nets stamp in
// parallel. pts is the caller's scratch buffer.
func (e *Estimator) stampNet(n int, j *netJournal, pts []geom.Point) []geom.Point {
	net := &e.d.Nets[n]
	j.stamps = j.stamps[:0]
	j.segs = j.segs[:0]
	e.Trees[n] = rsmt.Tree{}
	if len(net.Pins) < 2 {
		return pts
	}
	pts = pts[:0]
	for _, pid := range net.Pins {
		pts = append(pts, e.d.PinPos(pid))
	}
	tree := e.P.Topo.Build(pts) // nil memo degrades to plain rsmt.Build
	e.Trees[n] = tree

	for _, edge := range tree.Edges {
		a, b := tree.Nodes[edge.A], tree.Nodes[edge.B]
		ai, aj := e.M.GcellOf(a.P)
		bi, bj := e.M.GcellOf(b.P)
		switch {
		case ai == bi && aj == bj:
			// Both endpoints in one Gcell: covered by the pin penalty.
		case aj == bj: // horizontal I-shape
			i0, i1 := ai, bi
			as, bs := a.Steiner, b.Steiner
			if i0 > i1 {
				i0, i1 = i1, i0
				as, bs = bs, as
			}
			for i := i0; i <= i1; i++ {
				j.stamps = append(j.stamps, stamp{idx: int32(e.M.Index(i, aj)), dh: 1})
			}
			j.segs = append(j.segs, Seg{Horizontal: true, I0: i0, J0: aj, I1: i1, J1: aj, ASteiner: as, BSteiner: bs})
		case ai == bi: // vertical I-shape
			j0, j1 := aj, bj
			as, bs := a.Steiner, b.Steiner
			if j0 > j1 {
				j0, j1 = j1, j0
				as, bs = bs, as
			}
			for jj := j0; jj <= j1; jj++ {
				j.stamps = append(j.stamps, stamp{idx: int32(e.M.Index(ai, jj)), dv: 1})
			}
			j.segs = append(j.segs, Seg{Horizontal: false, I0: ai, J0: j0, I1: ai, J1: j1, ASteiner: as, BSteiner: bs})
		default: // L-shape: average demand over the bounding box
			i0, i1 := ai, bi
			if i0 > i1 {
				i0, i1 = i1, i0
			}
			j0, j1 := aj, bj
			if j0 > j1 {
				j0, j1 = j1, j0
			}
			w := float64(i1 - i0 + 1)
			h := float64(j1 - j0 + 1)
			dh := 1 / h // total horizontal wire w spread over w·h Gcells
			dv := 1 / w
			for jj := j0; jj <= j1; jj++ {
				row := jj * e.M.W
				for i := i0; i <= i1; i++ {
					j.stamps = append(j.stamps, stamp{idx: int32(row + i), dh: dh, dv: dv})
				}
			}
		}
	}
	return pts
}

// expand performs the detour-imitating demand expansion (Sec. III-A3):
// congested I-shaped segments transfer part of their demand to a nearby
// parallel row/column with routing slack; Steiner endpoints additionally
// pay perpendicular connection demand, pin endpoints do not (the cell can
// move instead — that is the "clustered cell spreading" the estimator
// imitates).
//
// The congested-span test is served by per-direction overflow bitsets that
// are rebuilt once per call and kept current through every demand transfer,
// so uncongested segments — the common case — cost a word scan instead of
// a float pass over their span. The transfer semantics are unchanged.
func (e *Estimator) expand() {
	if e.P.ExpandRadius <= 0 || e.P.TransferRatio <= 0 {
		return
	}
	e.buildOverflowBits()
	for _, s := range e.Segs {
		if s.Horizontal {
			e.expandH(s)
		} else {
			e.expandV(s)
		}
	}
}

// buildOverflowBits recomputes the overflow bitsets from the current
// demand: bit g of ovH/ovV is set iff the Gcell's directional overflow
// exceeds the congestion threshold.
func (e *Estimator) buildOverflowBits() {
	words := (e.M.W*e.M.H + 63) / 64
	if cap(e.ovH) < words {
		e.ovH = make([]uint64, words)
		e.ovV = make([]uint64, words)
	}
	e.ovH = e.ovH[:words]
	e.ovV = e.ovV[:words]
	for i := range e.ovH {
		e.ovH[i] = 0
		e.ovV[i] = 0
	}
	for g := range e.M.DmdH {
		if e.M.OverflowH(g) > e.P.CongestThreshold {
			e.ovH[g>>6] |= 1 << (uint(g) & 63)
		}
		if e.M.OverflowV(g) > e.P.CongestThreshold {
			e.ovV[g>>6] |= 1 << (uint(g) & 63)
		}
	}
}

// anyBitInRange reports whether any bit in the inclusive flat index range
// [lo, hi] of bits is set.
func anyBitInRange(bits []uint64, lo, hi int) bool {
	if lo > hi {
		lo, hi = hi, lo
	}
	w0, w1 := lo>>6, hi>>6
	if w0 == w1 {
		mask := (^uint64(0) << (uint(lo) & 63)) & (^uint64(0) >> (63 - (uint(hi) & 63)))
		return bits[w0]&mask != 0
	}
	if bits[w0]&(^uint64(0)<<(uint(lo)&63)) != 0 {
		return true
	}
	for w := w0 + 1; w < w1; w++ {
		if bits[w] != 0 {
			return true
		}
	}
	return bits[w1]&(^uint64(0)>>(63-(uint(hi)&63))) != 0
}

// addDmdH mutates horizontal demand during expansion, keeping the overflow
// bitset in sync.
func (e *Estimator) addDmdH(idx int, delta float64) {
	e.M.DmdH[idx] += delta
	bit := uint64(1) << (uint(idx) & 63)
	if e.M.OverflowH(idx) > e.P.CongestThreshold {
		e.ovH[idx>>6] |= bit
	} else {
		e.ovH[idx>>6] &^= bit
	}
}

// addDmdV is addDmdH for the vertical direction.
func (e *Estimator) addDmdV(idx int, delta float64) {
	e.M.DmdV[idx] += delta
	bit := uint64(1) << (uint(idx) & 63)
	if e.M.OverflowV(idx) > e.P.CongestThreshold {
		e.ovV[idx>>6] |= bit
	} else {
		e.ovV[idx>>6] &^= bit
	}
}

func (e *Estimator) expandH(s Seg) {
	m := e.M
	j := s.J0
	// Congested if any Gcell on the span overflows: a horizontal span is
	// contiguous in flat indices, so one word scan answers it.
	if !anyBitInRange(e.ovH, m.Index(s.I0, j), m.Index(s.I1, j)) {
		return
	}
	// Best alternative row: maximum total slack over the span.
	bestJ, bestSlack := -1, 0.0
	for dj := -e.P.ExpandRadius; dj <= e.P.ExpandRadius; dj++ {
		jj := j + dj
		if dj == 0 || jj < 0 || jj >= m.H {
			continue
		}
		slack := 0.0
		for i := s.I0; i <= s.I1; i++ {
			idx := m.Index(i, jj)
			slack += math.Max(0, m.CapH[idx]-m.DmdH[idx])
		}
		if slack > bestSlack {
			bestSlack = slack
			bestJ = jj
		}
	}
	if bestJ < 0 {
		return
	}
	delta := e.P.TransferRatio
	for i := s.I0; i <= s.I1; i++ {
		e.addDmdH(m.Index(i, j), -delta)
		e.addDmdH(m.Index(i, bestJ), delta)
	}
	// Perpendicular connection demand at Steiner endpoints only.
	lo, hi := j, bestJ
	if lo > hi {
		lo, hi = hi, lo
	}
	if s.ASteiner {
		for jj := lo; jj <= hi; jj++ {
			e.addDmdV(m.Index(s.I0, jj), delta)
		}
	}
	if s.BSteiner {
		for jj := lo; jj <= hi; jj++ {
			e.addDmdV(m.Index(s.I1, jj), delta)
		}
	}
}

func (e *Estimator) expandV(s Seg) {
	m := e.M
	i := s.I0
	congested := false
	for j := s.J0; j <= s.J1; j++ {
		idx := m.Index(i, j)
		if e.ovV[idx>>6]&(1<<(uint(idx)&63)) != 0 {
			congested = true
			break
		}
	}
	if !congested {
		return
	}
	bestI, bestSlack := -1, 0.0
	for di := -e.P.ExpandRadius; di <= e.P.ExpandRadius; di++ {
		ii := i + di
		if di == 0 || ii < 0 || ii >= m.W {
			continue
		}
		slack := 0.0
		for j := s.J0; j <= s.J1; j++ {
			idx := m.Index(ii, j)
			slack += math.Max(0, m.CapV[idx]-m.DmdV[idx])
		}
		if slack > bestSlack {
			bestSlack = slack
			bestI = ii
		}
	}
	if bestI < 0 {
		return
	}
	delta := e.P.TransferRatio
	for j := s.J0; j <= s.J1; j++ {
		e.addDmdV(m.Index(i, j), -delta)
		e.addDmdV(m.Index(bestI, j), delta)
	}
	lo, hi := i, bestI
	if lo > hi {
		lo, hi = hi, lo
	}
	if s.ASteiner {
		for ii := lo; ii <= hi; ii++ {
			e.addDmdH(m.Index(ii, s.J0), delta)
		}
	}
	if s.BSteiner {
		for ii := lo; ii <= hi; ii++ {
			e.addDmdH(m.Index(ii, s.J1), delta)
		}
	}
}
