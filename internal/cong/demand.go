package cong

import (
	"math"

	"puffer/internal/geom"
	"puffer/internal/netlist"
	"puffer/internal/rsmt"
)

// Params are the tunable strategy parameters of the congestion estimator.
// Several of them are explored by the Bayesian strategy search
// (Sec. III-C).
type Params struct {
	// PinPenalty is the routing demand added per pin in each direction to
	// capture local nets whose pins share one Gcell (Sec. III-A2).
	PinPenalty float64
	// ExpandRadius is how many Gcell rows/columns away the detour
	// expansion may push demand (Sec. III-A3).
	ExpandRadius int
	// TransferRatio is the fraction of a congested I-segment's demand
	// moved to the surrounding region.
	TransferRatio float64
	// CongestThreshold is the per-Gcell overflow above which an I-segment
	// counts as congested.
	CongestThreshold float64
}

// DefaultParams returns the hand-tuned defaults; the strategy exploration
// scheme replaces them with searched values.
func DefaultParams() Params {
	return Params{
		PinPenalty:       0.3,
		ExpandRadius:     3,
		TransferRatio:    0.5,
		CongestThreshold: 0,
	}
}

// Seg is an I-shaped two-point segment of a net topology in Gcell
// coordinates. Horizontal segments have J0 == J1 and I0 <= I1; vertical
// segments have I0 == I1 and J0 <= J1. The endpoint Steiner tags drive the
// detour expansion: only Steiner endpoints need extra perpendicular demand
// when the segment is detoured, because cells (pin endpoints) can simply
// move (Sec. III-A3).
type Seg struct {
	Horizontal         bool
	I0, J0, I1, J1     int
	ASteiner, BSteiner bool
}

// Estimator produces congestion maps by the routing-detour-imitating
// estimation algorithm of Sec. III-A.
type Estimator struct {
	d *netlist.Design
	M *Map
	P Params

	// Segs holds the I-shaped segments found during the last Estimate
	// call, after which the detour expansion ran over them.
	Segs []Seg

	// Trees holds the last RSMT topology per net; feature extraction
	// (GNN-inspired pin congestion) walks the same topology.
	Trees []rsmt.Tree

	pts []geom.Point // scratch
}

// NewEstimator creates an estimator over a fresh W×H capacity map for d.
func NewEstimator(d *netlist.Design, w, h int, p Params) *Estimator {
	return &Estimator{d: d, M: NewMap(d, w, h), P: p}
}

// Estimate runs the full pipeline — topology generation, probabilistic
// demand, pin penalty, detour expansion — and returns the resulting map.
func (e *Estimator) Estimate() *Map {
	e.M.ResetDemand()
	e.Segs = e.Segs[:0]
	if cap(e.Trees) < len(e.d.Nets) {
		e.Trees = make([]rsmt.Tree, len(e.d.Nets))
	}
	e.Trees = e.Trees[:len(e.d.Nets)]

	// Pin counts and pin penalty demand.
	for p := range e.d.Pins {
		i, j := e.M.GcellOf(e.d.PinPos(p))
		idx := e.M.Index(i, j)
		e.M.Pins[idx]++
		e.M.DmdH[idx] += e.P.PinPenalty
		e.M.DmdV[idx] += e.P.PinPenalty
	}

	for n := range e.d.Nets {
		e.estimateNet(n)
	}
	e.expand()
	return e.M
}

// estimateNet builds the RSMT topology of net n and deposits its demand.
func (e *Estimator) estimateNet(n int) {
	net := &e.d.Nets[n]
	e.Trees[n] = rsmt.Tree{}
	if len(net.Pins) < 2 {
		return
	}
	e.pts = e.pts[:0]
	for _, pid := range net.Pins {
		e.pts = append(e.pts, e.d.PinPos(pid))
	}
	tree := rsmt.Build(e.pts)
	e.Trees[n] = tree

	for _, edge := range tree.Edges {
		a, b := tree.Nodes[edge.A], tree.Nodes[edge.B]
		ai, aj := e.M.GcellOf(a.P)
		bi, bj := e.M.GcellOf(b.P)
		switch {
		case ai == bi && aj == bj:
			// Both endpoints in one Gcell: covered by the pin penalty.
		case aj == bj: // horizontal I-shape
			i0, i1 := ai, bi
			as, bs := a.Steiner, b.Steiner
			if i0 > i1 {
				i0, i1 = i1, i0
				as, bs = bs, as
			}
			for i := i0; i <= i1; i++ {
				e.M.DmdH[e.M.Index(i, aj)]++
			}
			e.Segs = append(e.Segs, Seg{Horizontal: true, I0: i0, J0: aj, I1: i1, J1: aj, ASteiner: as, BSteiner: bs})
		case ai == bi: // vertical I-shape
			j0, j1 := aj, bj
			as, bs := a.Steiner, b.Steiner
			if j0 > j1 {
				j0, j1 = j1, j0
				as, bs = bs, as
			}
			for j := j0; j <= j1; j++ {
				e.M.DmdV[e.M.Index(ai, j)]++
			}
			e.Segs = append(e.Segs, Seg{Horizontal: false, I0: ai, J0: j0, I1: ai, J1: j1, ASteiner: as, BSteiner: bs})
		default: // L-shape: average demand over the bounding box
			i0, i1 := ai, bi
			if i0 > i1 {
				i0, i1 = i1, i0
			}
			j0, j1 := aj, bj
			if j0 > j1 {
				j0, j1 = j1, j0
			}
			w := float64(i1 - i0 + 1)
			h := float64(j1 - j0 + 1)
			dh := 1 / h // total horizontal wire w spread over w·h Gcells
			dv := 1 / w
			for j := j0; j <= j1; j++ {
				row := j * e.M.W
				for i := i0; i <= i1; i++ {
					e.M.DmdH[row+i] += dh
					e.M.DmdV[row+i] += dv
				}
			}
		}
	}
}

// expand performs the detour-imitating demand expansion (Sec. III-A3):
// congested I-shaped segments transfer part of their demand to a nearby
// parallel row/column with routing slack; Steiner endpoints additionally
// pay perpendicular connection demand, pin endpoints do not (the cell can
// move instead — that is the "clustered cell spreading" the estimator
// imitates).
func (e *Estimator) expand() {
	if e.P.ExpandRadius <= 0 || e.P.TransferRatio <= 0 {
		return
	}
	for _, s := range e.Segs {
		if s.Horizontal {
			e.expandH(s)
		} else {
			e.expandV(s)
		}
	}
}

func (e *Estimator) expandH(s Seg) {
	m := e.M
	j := s.J0
	// Congested if any Gcell on the span overflows.
	congested := false
	for i := s.I0; i <= s.I1; i++ {
		if m.OverflowH(m.Index(i, j)) > e.P.CongestThreshold {
			congested = true
			break
		}
	}
	if !congested {
		return
	}
	// Best alternative row: maximum total slack over the span.
	bestJ, bestSlack := -1, 0.0
	for dj := -e.P.ExpandRadius; dj <= e.P.ExpandRadius; dj++ {
		jj := j + dj
		if dj == 0 || jj < 0 || jj >= m.H {
			continue
		}
		slack := 0.0
		for i := s.I0; i <= s.I1; i++ {
			idx := m.Index(i, jj)
			slack += math.Max(0, m.CapH[idx]-m.DmdH[idx])
		}
		if slack > bestSlack {
			bestSlack = slack
			bestJ = jj
		}
	}
	if bestJ < 0 {
		return
	}
	delta := e.P.TransferRatio
	for i := s.I0; i <= s.I1; i++ {
		m.DmdH[m.Index(i, j)] -= delta
		m.DmdH[m.Index(i, bestJ)] += delta
	}
	// Perpendicular connection demand at Steiner endpoints only.
	lo, hi := j, bestJ
	if lo > hi {
		lo, hi = hi, lo
	}
	if s.ASteiner {
		for jj := lo; jj <= hi; jj++ {
			m.DmdV[m.Index(s.I0, jj)] += delta
		}
	}
	if s.BSteiner {
		for jj := lo; jj <= hi; jj++ {
			m.DmdV[m.Index(s.I1, jj)] += delta
		}
	}
}

func (e *Estimator) expandV(s Seg) {
	m := e.M
	i := s.I0
	congested := false
	for j := s.J0; j <= s.J1; j++ {
		if m.OverflowV(m.Index(i, j)) > e.P.CongestThreshold {
			congested = true
			break
		}
	}
	if !congested {
		return
	}
	bestI, bestSlack := -1, 0.0
	for di := -e.P.ExpandRadius; di <= e.P.ExpandRadius; di++ {
		ii := i + di
		if di == 0 || ii < 0 || ii >= m.W {
			continue
		}
		slack := 0.0
		for j := s.J0; j <= s.J1; j++ {
			idx := m.Index(ii, j)
			slack += math.Max(0, m.CapV[idx]-m.DmdV[idx])
		}
		if slack > bestSlack {
			bestSlack = slack
			bestI = ii
		}
	}
	if bestI < 0 {
		return
	}
	delta := e.P.TransferRatio
	for j := s.J0; j <= s.J1; j++ {
		m.DmdV[m.Index(i, j)] -= delta
		m.DmdV[m.Index(bestI, j)] += delta
	}
	lo, hi := i, bestI
	if lo > hi {
		lo, hi = hi, lo
	}
	if s.ASteiner {
		for ii := lo; ii <= hi; ii++ {
			m.DmdH[m.Index(ii, s.J0)] += delta
		}
	}
	if s.BSteiner {
		for ii := lo; ii <= hi; ii++ {
			m.DmdH[m.Index(ii, s.J1)] += delta
		}
	}
}
