package cong

import (
	"context"
	"sort"
	"time"

	"puffer/internal/flow"
	"puffer/internal/geom"
	"puffer/internal/obs"
	"puffer/internal/par"
	"puffer/internal/rsmt"
)

// This file implements the incremental, parallel core of the estimator:
//
//   - Every net's deposited demand (its segment and L-box stamps) is
//     journaled, so a net whose pins moved across a Gcell boundary can be
//     subtracted from the running base demand and re-stamped without
//     touching clean nets. Dirtiness is keyed on the Gcell-quantized pin
//     positions; sub-Gcell motion leaves a net clean.
//   - Full rebuilds (first call, forced, parameter/design changes, the
//     periodic drift-bounding rebuild, or a dirty-majority escalation)
//     shard pins and nets statically with per-shard demand accumulators,
//     merged per Gcell in fixed shard order. The shard count is a function
//     of the design size alone (never of Params.Workers, which only caps
//     concurrency), so the result is bit-deterministic for any worker
//     count.
//   - The detour expansion stays order-dependent and global, so it is
//     recomputed each Estimate from the journaled base demand rather than
//     journaled itself; its cost is bounded by the overflow bitsets in
//     demand.go.
//
// Incremental updates drift from a from-scratch estimate only by the
// floating-point error of subtract/re-add cycles; the periodic rebuild
// (Params.RebuildEvery) restores bit-exactness.

// stamp is one demand deposit of a net into a Gcell.
type stamp struct {
	idx    int32
	dh, dv float64
}

// netJournal records everything one net deposited into the base demand,
// plus the I-segments the detour expansion consumes.
type netJournal struct {
	stamps []stamp
	segs   []Seg
}

// movedPin records a pin that crossed a Gcell boundary since the last
// refresh.
type movedPin struct {
	pin      int32
	from, to int32 // flat Gcell indices
}

// Stats reports what the incremental engine did, cumulatively and for the
// most recent refresh. The pipeline snapshots it into StageStats.
type Stats struct {
	// Calls counts refreshes (Estimate and SyncTopologies).
	Calls int
	// FullRebuilds counts from-scratch estimations; IncrementalCalls
	// counts refreshes served by the journal.
	FullRebuilds     int
	IncrementalCalls int
	// LastReason explains the most recent refresh: "incremental", or the
	// rebuild cause ("first-build", "forced", "params-changed",
	// "design-resized", "periodic", "dirty-majority").
	LastReason string
	// LastDirtyNets and LastMovedPins are the re-stamped net count and
	// boundary-crossing pin count of the last refresh (all nets/pins on a
	// full rebuild).
	LastDirtyNets, LastMovedPins int
	// TotalNets is the journal size.
	TotalNets int
	// CacheHits counts nets served from the journal across all refreshes;
	// CacheMisses counts nets (re)stamped.
	CacheHits, CacheMisses uint64
	// Per-phase wall time of the last refresh: pin scan/delta, topology +
	// stamping, journal/accumulator application, detour expansion.
	LastPinWall, LastTopoWall, LastApplyWall, LastExpandWall time.Duration
}

// HitRate returns the fraction of net estimations served from the journal.
func (s Stats) HitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// Stats returns a snapshot of the engine statistics.
func (e *Estimator) Stats() Stats {
	s := e.stats
	s.TotalNets = len(e.nets)
	return s
}

// ForceRebuild makes the next refresh estimate from scratch, restoring
// bit-exact agreement with a fresh estimator run at the same worker count.
func (e *Estimator) ForceRebuild() { e.forceRebuild = true }

// EstimateCtx is Estimate with cancellation: the parallel rebuild and
// re-stamp phases stop scheduling work once ctx is done. A canceled call
// returns an error wrapping flow.ErrCanceled and leaves the engine marked
// for a full rebuild, so the next call starts from consistent state.
func (e *Estimator) EstimateCtx(ctx context.Context) (*Map, error) {
	sp, ctx := obs.Start(ctx, e.rec, "cong.estimate")
	defer sp.End()
	if err := e.refresh(ctx); err != nil {
		return nil, err
	}
	copy(e.M.DmdH, e.baseH)
	copy(e.M.DmdV, e.baseV)
	copy(e.M.Pins, e.basePins)
	t0 := now()
	e.expand()
	e.stats.LastExpandWall = since(t0)
	e.recordRefresh(sp)
	return e.M, nil
}

// SyncTopologies refreshes the per-net RSMT topologies (and the journaled
// base demand) against the current pin positions, rebuilding only dirty
// nets, and returns the tree slice. The evaluation router consumes it to
// skip re-decomposing nets whose pins have not crossed a Gcell boundary;
// feature extraction receives the same slice through Estimator.Trees.
func (e *Estimator) SyncTopologies(ctx context.Context) ([]rsmt.Tree, error) {
	sp, ctx := obs.Start(ctx, e.rec, "cong.sync_topologies")
	defer sp.End()
	if err := e.refresh(ctx); err != nil {
		return nil, err
	}
	e.recordRefresh(sp)
	return e.Trees, nil
}

// rebuildEvery resolves the periodic-rebuild interval.
func (e *Estimator) rebuildEvery() int {
	switch {
	case e.P.RebuildEvery > 0:
		return e.P.RebuildEvery
	case e.P.RebuildEvery < 0:
		return 0 // disabled
	default:
		return DefaultRebuildEvery
	}
}

// maxRebuildShards bounds the number of per-shard demand accumulators a
// full rebuild allocates (three float64 grids per shard), so many-core
// hosts do not trade hundreds of megabytes for the parallel merge.
const maxRebuildShards = 16

// rebuildShardGrain is the minimum number of work items (pins or nets) per
// rebuild shard. Together with maxRebuildShards it fixes the shard count as
// a function of the design size alone — never of Params.Workers — so shard
// boundaries, and therefore the order every floating-point sum is merged
// in, are identical no matter how many goroutines execute the shards. This
// is what extends the engine's determinism contract from "reproducible for
// a fixed worker count" to "bit-identical for ANY worker count".
const rebuildShardGrain = 192

// shards picks the deterministic static shard count for n items. Workers
// only bounds how many shards run concurrently (see the par.ForErrN
// calls), not how the work is partitioned.
func shards(n int) int {
	w := n / rebuildShardGrain
	if w > maxRebuildShards {
		w = maxRebuildShards
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// refresh brings the journaled base demand and topologies up to date with
// the design, choosing between the incremental path and a full rebuild.
func (e *Estimator) refresh(ctx context.Context) error {
	e.stats.Calls++
	reason := ""
	switch {
	case !e.built:
		reason = "first-build"
	case e.forceRebuild:
		reason = "forced"
	case e.P != e.lastP:
		reason = "params-changed"
	case len(e.nets) != len(e.d.Nets) || len(e.pinCell) != len(e.d.Pins):
		reason = "design-resized"
	case e.rebuildEvery() > 0 && e.sinceRebuild >= e.rebuildEvery():
		reason = "periodic"
	}
	if reason != "" {
		return e.fullRebuild(ctx, reason)
	}
	return e.incremental(ctx)
}

// ensureState sizes the engine state for the current design and grid.
func (e *Estimator) ensureState() {
	size := e.M.W * e.M.H
	nNets, nPins := len(e.d.Nets), len(e.d.Pins)
	if len(e.baseH) != size {
		e.baseH = make([]float64, size)
		e.baseV = make([]float64, size)
		e.basePins = make([]float64, size)
	}
	if len(e.nets) != nNets {
		e.nets = make([]netJournal, nNets)
		e.dirtyMark = make([]bool, nNets)
		e.dirty = e.dirty[:0]
	}
	if len(e.Trees) != nNets {
		e.Trees = make([]rsmt.Tree, nNets)
	}
	if len(e.pinCell) != nPins {
		e.pinCell = make([]int32, nPins)
	}
}

// fullRebuild estimates every net from scratch: shard pins and nets
// statically, accumulate each shard's pin penalties and net stamps into a
// private demand grid, then merge per Gcell in fixed shard order. The
// journal and pin keys are rebuilt as a side effect.
func (e *Estimator) fullRebuild(ctx context.Context, reason string) error {
	e.ensureState()
	nNets, nPins := len(e.nets), len(e.pinCell)
	size := e.M.W * e.M.H
	work := nNets
	if nPins > work {
		work = nPins
	}
	W := shards(work)
	if len(e.accH) != W || (W > 0 && len(e.accH[0]) != size) {
		e.accH = make([][]float64, W)
		e.accV = make([][]float64, W)
		e.accPins = make([][]float64, W)
		for w := 0; w < W; w++ {
			e.accH[w] = make([]float64, size)
			e.accV[w] = make([]float64, size)
			e.accPins[w] = make([]float64, size)
		}
	}

	// Parallel shards overlap the rebuild span in time; Fork gives each a
	// fresh logical thread so trace viewers render them side by side.
	parent := obs.FromContext(ctx)
	tTopo := now()
	err := par.ForErrN(ctx, e.P.Workers, W, func(w int) error {
		wsp := parent.Fork("cong.rebuild.shard")
		wsp.SetArg("shard", w)
		defer wsp.End()
		accH, accV, accPins := e.accH[w], e.accV[w], e.accPins[w]
		for g := range accH {
			accH[g] = 0
			accV[g] = 0
			accPins[g] = 0
		}
		lo, hi := par.ShardRange(w, W, nPins)
		for p := lo; p < hi; p++ {
			i, j := e.M.GcellOf(e.d.PinPos(p))
			idx := e.M.Index(i, j)
			e.pinCell[p] = int32(idx)
			accPins[idx]++
			accH[idx] += e.P.PinPenalty
			accV[idx] += e.P.PinPenalty
		}
		var pts []geom.Point
		lo, hi = par.ShardRange(w, W, nNets)
		for n := lo; n < hi; n++ {
			if (n-lo)%256 == 0 {
				if err := flow.Check(ctx); err != nil {
					return err
				}
			}
			pts = e.stampNet(n, &e.nets[n], pts)
			for _, s := range e.nets[n].stamps {
				accH[s.idx] += s.dh
				accV[s.idx] += s.dv
			}
		}
		return nil
	})
	if err != nil {
		// Journals and pin keys are partially overwritten; make the next
		// call start clean.
		e.built = false
		e.forceRebuild = true
		return err
	}
	e.stats.LastTopoWall = since(tTopo)

	// Deterministic parallel merge: each worker owns a disjoint Gcell
	// range and sums the shard accumulators in fixed shard order, so the
	// result is independent of scheduling.
	tApply := now()
	par.ForN(e.P.Workers, W, func(w int) {
		lo, hi := par.ShardRange(w, W, size)
		for g := lo; g < hi; g++ {
			var h, v, pn float64
			for k := 0; k < W; k++ {
				h += e.accH[k][g]
				v += e.accV[k][g]
				pn += e.accPins[k][g]
			}
			e.baseH[g], e.baseV[g], e.basePins[g] = h, v, pn
		}
	})
	e.stats.LastApplyWall = since(tApply)

	for _, n := range e.dirty {
		e.dirtyMark[n] = false
	}
	e.dirty = e.dirty[:0]
	e.built = true
	e.forceRebuild = false
	e.lastP = e.P
	e.sinceRebuild = 0
	e.stats.FullRebuilds++
	e.cRebuilds.Inc()
	e.stats.LastReason = reason
	e.stats.LastDirtyNets = nNets
	e.stats.LastMovedPins = nPins
	e.stats.LastPinWall = 0
	e.stats.CacheMisses += uint64(nNets)
	e.rebuildSegs()
	return nil
}

// incremental updates the base demand in O(moved pins + dirty nets): scan
// pins in parallel shards for Gcell crossings, apply their pin-penalty
// deltas, subtract the journaled stamps of dirty nets, rebuild their
// topologies in parallel, and re-add the fresh stamps.
func (e *Estimator) incremental(ctx context.Context) error {
	nPins := len(e.pinCell)
	tPin := now()
	S := shards(nPins)
	if len(e.movedShards) != S {
		e.movedShards = make([][]movedPin, S)
	}
	// The scan mutates nothing, so a cancel here leaves the engine fully
	// consistent.
	err := par.ForErrN(ctx, e.P.Workers, S, func(w int) error {
		lo, hi := par.ShardRange(w, S, nPins)
		mv := e.movedShards[w][:0]
		for p := lo; p < hi; p++ {
			i, j := e.M.GcellOf(e.d.PinPos(p))
			idx := int32(e.M.Index(i, j))
			if idx != e.pinCell[p] {
				mv = append(mv, movedPin{pin: int32(p), from: e.pinCell[p], to: idx})
			}
		}
		e.movedShards[w] = mv
		return nil
	})
	if err != nil {
		return err
	}

	// Apply pin deltas and mark dirty nets, in shard (= pin) order.
	moved := 0
	for _, shard := range e.movedShards {
		for _, mp := range shard {
			e.basePins[mp.from]--
			e.basePins[mp.to]++
			e.baseH[mp.from] -= e.P.PinPenalty
			e.baseH[mp.to] += e.P.PinPenalty
			e.baseV[mp.from] -= e.P.PinPenalty
			e.baseV[mp.to] += e.P.PinPenalty
			e.pinCell[mp.pin] = mp.to
			if n := e.d.Pins[mp.pin].Net; n >= 0 && n < len(e.dirtyMark) && !e.dirtyMark[n] {
				e.dirtyMark[n] = true
				e.dirty = append(e.dirty, n)
			}
			moved++
		}
	}
	sort.Ints(e.dirty)
	e.stats.LastPinWall = since(tPin)

	// A mostly-dirty design gains nothing from subtract/re-add; escalate
	// to the sharded full rebuild. The pin deltas above are discarded by
	// the rebuild, which recomputes base demand from zero.
	if len(e.dirty)*2 > len(e.nets) {
		return e.fullRebuild(ctx, "dirty-majority")
	}

	dirty := e.dirty
	tApply := now()
	for _, n := range dirty {
		e.applyJournal(&e.nets[n], -1)
	}
	applyWall := since(tApply)

	tTopo := now()
	S2 := shards(len(dirty))
	err = par.ForErrN(ctx, e.P.Workers, S2, func(w int) error {
		lo, hi := par.ShardRange(w, S2, len(dirty))
		var pts []geom.Point
		for k := lo; k < hi; k++ {
			if (k-lo)%256 == 0 {
				if err := flow.Check(ctx); err != nil {
					return err
				}
			}
			pts = e.stampNet(dirty[k], &e.nets[dirty[k]], pts)
		}
		return nil
	})
	if err != nil {
		// Dirty journals were subtracted and possibly re-stamped halfway;
		// only a rebuild restores consistency.
		e.built = false
		e.forceRebuild = true
		return err
	}
	e.stats.LastTopoWall = since(tTopo)

	tApply = now()
	for _, n := range dirty {
		e.applyJournal(&e.nets[n], +1)
	}
	e.stats.LastApplyWall = applyWall + since(tApply)

	for _, n := range dirty {
		e.dirtyMark[n] = false
	}
	nDirty := len(dirty)
	e.dirty = e.dirty[:0]
	e.sinceRebuild++
	e.stats.IncrementalCalls++
	e.stats.LastReason = "incremental"
	e.stats.LastDirtyNets = nDirty
	e.stats.LastMovedPins = moved
	e.stats.CacheHits += uint64(len(e.nets) - nDirty)
	e.stats.CacheMisses += uint64(nDirty)
	e.rebuildSegs()
	return nil
}

// applyJournal adds (sign +1) or subtracts (sign -1) a net's journaled
// stamps from the base demand.
func (e *Estimator) applyJournal(j *netJournal, sign float64) {
	for _, s := range j.stamps {
		e.baseH[s.idx] += sign * s.dh
		e.baseV[s.idx] += sign * s.dv
	}
}

// rebuildSegs concatenates the journaled I-segments in net order, so the
// expansion processes segments in the same order a from-scratch pass
// would, regardless of which nets were re-stamped.
func (e *Estimator) rebuildSegs() {
	e.Segs = e.Segs[:0]
	for n := range e.nets {
		e.Segs = append(e.Segs, e.nets[n].segs...)
	}
}

func now() time.Time                  { return time.Now() }
func since(t time.Time) time.Duration { return time.Since(t) }
