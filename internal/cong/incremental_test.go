package cong

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"puffer/internal/netlist"
)

// randomDesign builds a reproducible random design with movable cells and
// small multi-pin nets, the workload shape of the in-loop estimator.
func randomDesign(rng *rand.Rand, nCells, nNets int) *netlist.Design {
	d := testDesign()
	for c := 0; c < nCells; c++ {
		d.AddCell(netlist.Cell{
			W: 0.8, H: 0.8,
			X: rng.Float64() * 31,
			Y: rng.Float64() * 31,
		})
	}
	for n := 0; n < nNets; n++ {
		net := d.AddNet("n", 1)
		deg := 2 + rng.Intn(3)
		for k := 0; k < deg; k++ {
			d.Connect(rng.Intn(nCells), net, 0.4, 0.4)
		}
	}
	return d
}

// moveSomeCells displaces a fraction of the cells by up to two Gcells,
// clamped to the region — the "<10% of nets move per call" workload.
func moveSomeCells(rng *rand.Rand, d *netlist.Design, frac float64) {
	for ci := range d.Cells {
		if rng.Float64() >= frac {
			continue
		}
		c := &d.Cells[ci]
		c.X = math.Min(31, math.Max(0, c.X+(rng.Float64()-0.5)*16))
		c.Y = math.Min(31, math.Max(0, c.Y+(rng.Float64()-0.5)*16))
	}
}

func demandMaxDiff(a, b *Map) float64 {
	worst := 0.0
	for i := range a.DmdH {
		worst = math.Max(worst, math.Abs(a.DmdH[i]-b.DmdH[i]))
		worst = math.Max(worst, math.Abs(a.DmdV[i]-b.DmdV[i]))
		worst = math.Max(worst, math.Abs(a.Pins[i]-b.Pins[i]))
	}
	return worst
}

// TestIncrementalMatchesScratchRandomMoves is the engine's core
// equivalence contract: across a randomized move sequence the incremental
// path stays within floating-point drift of a from-scratch estimate, and a
// forced rebuild restores bit-exact agreement. Expansion is disabled here
// because its congested/slack comparisons can tie-break differently under
// 1-ulp base differences; the exact-after-rebuild case with expansion is
// covered separately.
func TestIncrementalMatchesScratchRandomMoves(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := randomDesign(rng, 80, 120)
	p := Params{PinPenalty: 0.2, Workers: 3, RebuildEvery: -1}
	inc := NewEstimator(d, 8, 8, p)
	scr := NewEstimator(d, 8, 8, p)

	for step := 0; step < 25; step++ {
		moveSomeCells(rng, d, 0.08)
		scr.ForceRebuild()
		ms := scr.Estimate()
		mi := inc.Estimate()
		if diff := demandMaxDiff(mi, ms); diff > 1e-9 {
			t.Fatalf("step %d: incremental drifted %g from scratch", step, diff)
		}
	}

	st := inc.Stats()
	if st.IncrementalCalls == 0 {
		t.Fatal("no incremental calls recorded; the whole test ran on rebuilds")
	}
	if st.HitRate() < 0.5 {
		t.Errorf("cache hit rate = %.2f, want > 0.5 for an 8%%-move workload", st.HitRate())
	}

	// Bit-exactness after a forced rebuild at the same worker count.
	inc.ForceRebuild()
	mi := inc.Estimate()
	scr.ForceRebuild()
	ms := scr.Estimate()
	for i := range mi.DmdH {
		if mi.DmdH[i] != ms.DmdH[i] || mi.DmdV[i] != ms.DmdV[i] || mi.Pins[i] != ms.Pins[i] {
			t.Fatalf("post-rebuild mismatch at %d: H %v vs %v, V %v vs %v",
				i, mi.DmdH[i], ms.DmdH[i], mi.DmdV[i], ms.DmdV[i])
		}
	}
	if got := inc.Stats().LastReason; got != "forced" {
		t.Errorf("LastReason after ForceRebuild = %q, want %q", got, "forced")
	}
}

// TestIncrementalExactWithExpansionAfterRebuild: with the detour expansion
// active, a forced rebuild makes the incremental engine's published map
// bit-identical to a from-scratch estimator — the expansion is a pure
// function of the (identical) base demand and segment order.
func TestIncrementalExactWithExpansionAfterRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := randomDesign(rng, 60, 90)
	p := Params{PinPenalty: 0.2, ExpandRadius: 3, TransferRatio: 0.5, Workers: 2, RebuildEvery: -1}
	inc := NewEstimator(d, 8, 8, p)
	scr := NewEstimator(d, 8, 8, p)
	// Choke the same row on both maps so the expansion actually fires.
	for i := 0; i < 8; i++ {
		inc.M.CapH[inc.M.Index(i, 3)] = 0.2
		scr.M.CapH[scr.M.Index(i, 3)] = 0.2
	}
	for step := 0; step < 6; step++ {
		moveSomeCells(rng, d, 0.1)
		inc.Estimate()
	}
	inc.ForceRebuild()
	mi := inc.Estimate()
	ms := scr.Estimate()
	for i := range mi.DmdH {
		if mi.DmdH[i] != ms.DmdH[i] || mi.DmdV[i] != ms.DmdV[i] {
			t.Fatalf("expansion mismatch at %d: H %v vs %v, V %v vs %v",
				i, mi.DmdH[i], ms.DmdH[i], mi.DmdV[i], ms.DmdV[i])
		}
	}
}

// TestIncrementalDeterministicAcrossRuns: the same design, params, and
// move sequence produce bit-identical maps on every call — the parallel
// phases merge in static shard order.
func TestIncrementalDeterministicAcrossRuns(t *testing.T) {
	run := func() []float64 {
		rng := rand.New(rand.NewSource(3))
		d := randomDesign(rng, 70, 100)
		e := NewEstimator(d, 8, 8, Params{PinPenalty: 0.15, ExpandRadius: 2, TransferRatio: 0.4, Workers: 4})
		var out []float64
		for step := 0; step < 8; step++ {
			moveSomeCells(rng, d, 0.1)
			m := e.Estimate()
			out = append(out, m.DmdH...)
			out = append(out, m.DmdV...)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestJournalSubtractRestore: moving a cell across a Gcell boundary and
// back restores the original demand (the journal subtract/re-add cycle is
// lossless for this round trip, up to FP association error).
func TestJournalSubtractRestore(t *testing.T) {
	d := horizontalPairDesign()
	// Extra stationary nets so one dirty net stays a minority (a lone net
	// would escalate to the dirty-majority rebuild).
	for k := 0; k < 3; k++ {
		a := d.AddCell(netlist.Cell{W: 0.8, H: 0.8, X: 3, Y: 4 * float64(k+3)})
		b := d.AddCell(netlist.Cell{W: 0.8, H: 0.8, X: 21, Y: 4 * float64(k+3)})
		n := d.AddNet("still", 1)
		d.Connect(a, n, 0.4, 0.4)
		d.Connect(b, n, 0.4, 0.4)
	}
	e := NewEstimator(d, 8, 8, Params{PinPenalty: 0.3, RebuildEvery: -1})
	first := e.Estimate()
	origH := append([]float64(nil), first.DmdH...)
	origPins := append([]float64(nil), first.Pins...)

	x0 := d.Cells[0].X
	d.Cells[0].X = x0 + 8 // two Gcells right
	e.Estimate()
	if e.Stats().LastDirtyNets != 1 || e.Stats().LastMovedPins != 1 {
		t.Fatalf("stats after move: %+v, want 1 dirty net / 1 moved pin", e.Stats())
	}

	d.Cells[0].X = x0
	m := e.Estimate()
	for i := range origH {
		if math.Abs(m.DmdH[i]-origH[i]) > 1e-12 || math.Abs(m.Pins[i]-origPins[i]) > 1e-12 {
			t.Fatalf("demand not restored at %d: %v vs %v (pins %v vs %v)",
				i, m.DmdH[i], origH[i], m.Pins[i], origPins[i])
		}
	}
}

// TestSubGcellMoveIsClean: motion that stays inside a Gcell marks nothing
// dirty — dirtiness is keyed on the quantized pin positions.
func TestSubGcellMoveIsClean(t *testing.T) {
	d := horizontalPairDesign()
	e := NewEstimator(d, 8, 8, Params{RebuildEvery: -1})
	e.Estimate()
	d.Cells[0].X += 0.5 // Gcells are 4 units wide; stays in place
	e.Estimate()
	st := e.Stats()
	if st.LastReason != "incremental" || st.LastDirtyNets != 0 || st.LastMovedPins != 0 {
		t.Errorf("sub-Gcell move: reason=%q dirty=%d moved=%d, want clean incremental",
			st.LastReason, st.LastDirtyNets, st.LastMovedPins)
	}
}

// TestPeriodicRebuild: RebuildEvery bounds how many consecutive calls may
// run incrementally.
func TestPeriodicRebuild(t *testing.T) {
	d := horizontalPairDesign()
	e := NewEstimator(d, 8, 8, Params{RebuildEvery: 4})
	for call := 0; call < 6; call++ {
		e.Estimate()
		st := e.Stats()
		want := "incremental"
		switch call {
		case 0:
			want = "first-build"
		case 5: // four incremental calls since the first build
			want = "periodic"
		}
		if st.LastReason != want {
			t.Fatalf("call %d: reason = %q, want %q", call, st.LastReason, want)
		}
	}
	if got := e.Stats().FullRebuilds; got != 2 {
		t.Errorf("FullRebuilds = %d, want 2", got)
	}
}

// TestDirtyMajorityEscalates: when most nets are dirty the engine switches
// to the sharded full rebuild instead of churning through the journal.
func TestDirtyMajorityEscalates(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := randomDesign(rng, 50, 60)
	e := NewEstimator(d, 8, 8, Params{RebuildEvery: -1})
	e.Estimate()
	moveSomeCells(rng, d, 1.0) // everything moves
	e.Estimate()
	if got := e.Stats().LastReason; got != "dirty-majority" {
		t.Errorf("LastReason = %q, want %q", got, "dirty-majority")
	}
}

// TestParamsChangeTriggersRebuild: mutating the estimator's parameters
// invalidates the journal (stamp values depend on them).
func TestParamsChangeTriggersRebuild(t *testing.T) {
	d := horizontalPairDesign()
	e := NewEstimator(d, 8, 8, Params{PinPenalty: 0.1})
	e.Estimate()
	e.P.PinPenalty = 0.4
	m := e.Estimate()
	if got := e.Stats().LastReason; got != "params-changed" {
		t.Errorf("LastReason = %q, want %q", got, "params-changed")
	}
	idx := m.Index(0, 2) // pin Gcell of the pair design
	if m.Pins[idx] == 0 {
		t.Fatal("pin missing from expected Gcell")
	}
	wantH := 1 + 0.4 // segment demand + new pin penalty
	if math.Abs(m.DmdH[idx]-wantH) > 1e-12 {
		t.Errorf("DmdH = %v, want %v after param change", m.DmdH[idx], wantH)
	}
}

// TestDesignResizeTriggersRebuild: adding nets or cells after the first
// estimate is detected and handled by a full rebuild.
func TestDesignResizeTriggersRebuild(t *testing.T) {
	d := horizontalPairDesign()
	e := NewEstimator(d, 8, 8, Params{})
	e.Estimate()
	a := d.AddCell(netlist.Cell{W: 1, H: 1, X: 5, Y: 20})
	b := d.AddCell(netlist.Cell{W: 1, H: 1, X: 25, Y: 20})
	n := d.AddNet("late", 1)
	d.Connect(a, n, 0.5, 0.5)
	d.Connect(b, n, 0.5, 0.5)
	m := e.Estimate()
	if got := e.Stats().LastReason; got != "design-resized" {
		t.Errorf("LastReason = %q, want %q", got, "design-resized")
	}
	if got := m.DmdH[m.Index(3, 5)]; got != 1 {
		t.Errorf("new net not stamped: DmdH = %v, want 1", got)
	}
}

// TestSyncTopologiesSharing: the tree cache refreshes dirty nets only and
// serves clean calls entirely from the journal.
func TestSyncTopologiesSharing(t *testing.T) {
	d := horizontalPairDesign()
	e := NewEstimator(d, 8, 8, Params{RebuildEvery: -1})
	ctx := context.Background()
	trees, err := e.SyncTopologies(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != len(d.Nets) || len(trees[0].Edges) == 0 {
		t.Fatalf("trees = %d nets, first has %d edges", len(trees), len(trees[0].Edges))
	}
	before := e.Stats()

	// Clean second call: no net re-stamped.
	if _, err := e.SyncTopologies(ctx); err != nil {
		t.Fatal(err)
	}
	after := e.Stats()
	if after.CacheMisses != before.CacheMisses {
		t.Errorf("clean SyncTopologies re-stamped nets: misses %d -> %d", before.CacheMisses, after.CacheMisses)
	}
	if after.CacheHits != before.CacheHits+1 {
		t.Errorf("CacheHits %d -> %d, want +1 (one clean net)", before.CacheHits, after.CacheHits)
	}

	// Cross-boundary move: the net's topology is rebuilt in place.
	d.Cells[1].X -= 12
	trees, err = e.SyncTopologies(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := trees[0].Nodes[1].P.X; math.Abs(got-(26.5-12)) > 1e-12 {
		t.Errorf("tree node not refreshed: X = %v, want %v", got, 26.5-12)
	}
}

// TestEstimateCtxCancel: a canceled context aborts the refresh, and the
// next uncanceled call recovers via a full rebuild.
func TestEstimateCtxCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	d := randomDesign(rng, 40, 60)
	e := NewEstimator(d, 8, 8, Params{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.EstimateCtx(ctx); err == nil {
		t.Fatal("EstimateCtx ignored a canceled context")
	}
	m, err := e.EstimateCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	scratch := NewEstimator(d, 8, 8, Params{Workers: 2}).Estimate()
	if diff := demandMaxDiff(m, scratch); diff != 0 {
		t.Errorf("post-cancel recovery differs from scratch by %g", diff)
	}
}

// --- Detour-expansion clipping at the remaining grid borders (the bottom
// edge and left column are covered in stats_test.go). ---

func chokedEstimate(t *testing.T, e *Estimator) {
	t.Helper()
	e.Estimate()
	for idx := range e.M.DmdH {
		if e.M.DmdH[idx] < -1e-9 || e.M.DmdV[idx] < -1e-9 {
			t.Fatalf("negative demand at %d: H=%v V=%v", idx, e.M.DmdH[idx], e.M.DmdV[idx])
		}
	}
}

// TestExpansionTopEdgeClipping: a congested horizontal segment on the top
// row with ExpandRadius far past H-1 must clip its row search at the grid.
func TestExpansionTopEdgeClipping(t *testing.T) {
	d := testDesign()
	a := d.AddCell(netlist.Cell{W: 0.8, H: 0.8, X: 1, Y: 31})
	b := d.AddCell(netlist.Cell{W: 0.8, H: 0.8, X: 29, Y: 31})
	n := d.AddNet("top", 1)
	d.Connect(a, n, 0.4, 0.4)
	d.Connect(b, n, 0.4, 0.4)
	e := NewEstimator(d, 8, 8, Params{ExpandRadius: 100, TransferRatio: 0.5})
	for i := 0; i < e.M.W; i++ {
		e.M.CapH[e.M.Index(i, e.M.H-1)] = 0.01
	}
	chokedEstimate(t, e)
	// The transfer conserves horizontal demand.
	total := 0.0
	for _, v := range e.M.DmdH {
		total += v
	}
	if math.Abs(total-8) > 1e-9 { // pins in Gcells 0 and 7: 8-Gcell span
		t.Errorf("horizontal demand not conserved: %v, want 8", total)
	}
}

// TestExpansionRightEdgeClipping: a congested vertical segment on the last
// column with a huge radius must clip its column search at W-1.
func TestExpansionRightEdgeClipping(t *testing.T) {
	d := testDesign()
	a := d.AddCell(netlist.Cell{W: 0.8, H: 0.8, X: 31, Y: 1})
	b := d.AddCell(netlist.Cell{W: 0.8, H: 0.8, X: 31, Y: 29})
	c := d.AddCell(netlist.Cell{W: 0.8, H: 0.8, X: 15, Y: 15})
	n := d.AddNet("right", 1)
	d.Connect(a, n, 0.4, 0.4)
	d.Connect(b, n, 0.4, 0.4)
	d.Connect(c, n, 0.4, 0.4)
	e := NewEstimator(d, 8, 8, Params{ExpandRadius: 100, TransferRatio: 0.9})
	for j := 0; j < e.M.H; j++ {
		e.M.CapV[e.M.Index(e.M.W-1, j)] = 0.01
	}
	chokedEstimate(t, e)
}

// TestExpansionRadiusLargerThanGrid: every row choked, radius far past the
// grid in both directions; the search must stay in bounds and, with no
// slack anywhere, move nothing.
func TestExpansionRadiusLargerThanGrid(t *testing.T) {
	d := horizontalPairDesign()
	e := NewEstimator(d, 8, 8, Params{ExpandRadius: 1000, TransferRatio: 0.5})
	for idx := range e.M.CapH {
		e.M.CapH[idx] = 0.01
	}
	before := make([]float64, len(e.M.DmdH))
	chokedEstimate(t, e)
	copy(before, e.M.DmdH)
	// Re-estimate: same demand (no slack found, nothing transferred, and
	// the incremental path reproduces it).
	e.Estimate()
	for i := range before {
		if e.M.DmdH[i] != before[i] {
			t.Fatalf("demand changed between identical estimates at %d", i)
		}
	}
}

// TestEstimateDeterministicAcrossWorkers: the estimator's results are
// bit-identical no matter how many workers execute them — the rebuild and
// pin-scan shard counts depend on the design size alone, and Workers only
// caps concurrency. This is the estimator's half of the any-worker-count
// contract that Session.Apply (internal/eco) relies on: an interactive
// delta re-placed at Workers=1 and at Workers=16 must land on the same
// bits. The design is sized so the shard count actually exceeds one.
func TestEstimateDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) []float64 {
		rng := rand.New(rand.NewSource(17))
		d := randomDesign(rng, 400, 700)
		p := Params{PinPenalty: 0.2, ExpandRadius: 3, TransferRatio: 0.5, RebuildEvery: 4, Workers: workers}
		e := NewEstimator(d, 16, 16, p)
		var out []float64
		for step := 0; step < 10; step++ {
			moveSomeCells(rng, d, 0.06)
			if step == 7 {
				e.ForceRebuild()
			}
			m := e.Estimate()
			out = append(out, m.DmdH...)
			out = append(out, m.DmdV...)
			out = append(out, m.Pins...)
		}
		return out
	}
	if shards(700) <= 1 {
		t.Fatal("test design too small: rebuild runs in one shard, proving nothing")
	}
	ref := run(1)
	for _, w := range []int{2, 4, 16} {
		got := run(w)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("Workers=%d diverges from Workers=1 at %d: %v vs %v", w, i, got[i], ref[i])
			}
		}
	}
}
