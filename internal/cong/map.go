// Package cong implements the routing-congestion model of the paper
// (Secs. II-C and III-A): the Gcell grid and blockage-aware routing
// capacity (Eq. 8), probabilistic routing-demand estimation from RSMT
// topologies, the detour-imitating demand expansion, and the signed
// congestion map (Eqs. 10–11) consumed by feature extraction.
//
// The same Map type carries estimated demand during placement and actual
// routed demand when the evaluation router (package router) reports
// overflow, so the two stages share one definition of congestion.
package cong

import (
	"fmt"
	"math"

	"puffer/internal/geom"
	"puffer/internal/netlist"
)

// Map is a Gcell grid with per-Gcell directional routing capacity and
// demand. Gcells are indexed [j*W+i], i being the x (column) index.
type Map struct {
	W, H   int
	Region geom.Rect
	GW, GH float64 // Gcell size

	CapH, CapV []float64 // routing capacity (tracks) per Gcell, Eq. 8
	DmdH, DmdV []float64 // routing demand per Gcell

	Pins  []float64 // pin count per Gcell
	Sites []float64 // available placement sites per Gcell (blockage-aware)
}

// NewMap creates a W×H Gcell map over the design's region and computes the
// blockage-aware routing capacity per Eq. 8: per-layer track counts from
// the technology stack minus capacity blocked by macros, PG stripes, and
// other blockages.
func NewMap(d *netlist.Design, w, h int) *Map {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("cong: invalid grid %dx%d", w, h))
	}
	m := &Map{
		W: w, H: h, Region: d.Region,
		GW: d.Region.W() / float64(w),
		GH: d.Region.H() / float64(h),
	}
	size := w * h
	m.CapH = make([]float64, size)
	m.CapV = make([]float64, size)
	m.DmdH = make([]float64, size)
	m.DmdV = make([]float64, size)
	m.Pins = make([]float64, size)
	m.Sites = make([]float64, size)

	// Basic capacity: horizontal tracks stack vertically (Gcell height /
	// pitch), vertical tracks stack horizontally.
	var baseH, baseV float64
	for _, l := range d.Layers {
		if l.Dir == netlist.Horizontal {
			baseH += m.GH / l.Pitch()
		} else {
			baseV += m.GW / l.Pitch()
		}
	}
	for i := range m.CapH {
		m.CapH[i] = baseH
		m.CapV[i] = baseV
	}

	// Deduct blocked capacity (second term of Eq. 8): each blockage
	// removes the tracks it covers on its layer, prorated by the overlap
	// along the track direction.
	for _, b := range d.Blockages {
		l := d.Layers[b.Layer]
		m.forEachOverlap(b.Rect, func(idx int, ox, oy float64) {
			if l.Dir == netlist.Horizontal {
				m.CapH[idx] -= (oy / l.Pitch()) * (ox / m.GW)
			} else {
				m.CapV[idx] -= (ox / l.Pitch()) * (oy / m.GH)
			}
		})
	}
	// Macros additionally block placement sites; site capacity feeds the
	// pin-density feature.
	siteArea := d.SiteWidth * d.RowHeight
	if siteArea <= 0 {
		siteArea = 1
	}
	gcellSites := m.GW * m.GH / siteArea
	for i := range m.Sites {
		m.Sites[i] = gcellSites
	}
	for i := range d.Cells {
		c := &d.Cells[i]
		if !c.Fixed {
			continue
		}
		m.forEachOverlap(c.Rect(), func(idx int, ox, oy float64) {
			m.Sites[idx] -= ox * oy / siteArea
		})
	}
	for i := range m.CapH {
		m.CapH[i] = math.Max(0, m.CapH[i])
		m.CapV[i] = math.Max(0, m.CapV[i])
		m.Sites[i] = math.Max(0, m.Sites[i])
	}
	return m
}

// Index returns the flat Gcell index for column i, row j.
func (m *Map) Index(i, j int) int { return j*m.W + i }

// GcellOf returns the clamped Gcell coordinates containing p.
func (m *Map) GcellOf(p geom.Point) (int, int) {
	i := int((p.X - m.Region.Lo.X) / m.GW)
	j := int((p.Y - m.Region.Lo.Y) / m.GH)
	return geom.ClampInt(i, 0, m.W-1), geom.ClampInt(j, 0, m.H-1)
}

// GcellRect returns the extent of Gcell (i, j).
func (m *Map) GcellRect(i, j int) geom.Rect {
	return geom.RectWH(
		m.Region.Lo.X+float64(i)*m.GW,
		m.Region.Lo.Y+float64(j)*m.GH,
		m.GW, m.GH)
}

// GcellCenter returns the center of Gcell (i, j).
func (m *Map) GcellCenter(i, j int) geom.Point {
	return geom.Pt(
		m.Region.Lo.X+(float64(i)+0.5)*m.GW,
		m.Region.Lo.Y+(float64(j)+0.5)*m.GH)
}

// forEachOverlap invokes fn for every Gcell overlapping r with the overlap
// extents in x and y.
func (m *Map) forEachOverlap(r geom.Rect, fn func(idx int, ox, oy float64)) {
	r = r.Intersect(m.Region)
	if r.Empty() {
		return
	}
	i0 := geom.ClampInt(int((r.Lo.X-m.Region.Lo.X)/m.GW), 0, m.W-1)
	i1 := geom.ClampInt(int(math.Ceil((r.Hi.X-m.Region.Lo.X)/m.GW)), i0+1, m.W)
	j0 := geom.ClampInt(int((r.Lo.Y-m.Region.Lo.Y)/m.GH), 0, m.H-1)
	j1 := geom.ClampInt(int(math.Ceil((r.Hi.Y-m.Region.Lo.Y)/m.GH)), j0+1, m.H)
	for j := j0; j < j1; j++ {
		y0 := m.Region.Lo.Y + float64(j)*m.GH
		oy := geom.Interval{Lo: y0, Hi: y0 + m.GH}.Overlap(geom.Interval{Lo: r.Lo.Y, Hi: r.Hi.Y})
		if oy <= 0 {
			continue
		}
		for i := i0; i < i1; i++ {
			x0 := m.Region.Lo.X + float64(i)*m.GW
			ox := geom.Interval{Lo: x0, Hi: x0 + m.GW}.Overlap(geom.Interval{Lo: r.Lo.X, Hi: r.Hi.X})
			if ox > 0 {
				fn(j*m.W+i, ox, oy)
			}
		}
	}
}

// CgH returns the signed horizontal congestion of Gcell idx (Eq. 11).
func (m *Map) CgH(idx int) float64 {
	return (m.DmdH[idx] - m.CapH[idx]) / math.Max(m.CapH[idx], 1)
}

// CgV returns the signed vertical congestion of Gcell idx (Eq. 11).
func (m *Map) CgV(idx int) float64 {
	return (m.DmdV[idx] - m.CapV[idx]) / math.Max(m.CapV[idx], 1)
}

// Cg combines the directional congestion of Gcell idx per Eq. 10: when the
// signs differ the worse direction dominates; when they agree the values
// accumulate.
func (m *Map) Cg(idx int) float64 {
	h, v := m.CgH(idx), m.CgV(idx)
	if h*v < 0 {
		return math.Max(h, v)
	}
	return h + v
}

// OverflowH returns the positive overflow of Gcell idx in the horizontal
// direction (Eq. 7 restated as demand minus capacity).
func (m *Map) OverflowH(idx int) float64 {
	return math.Max(0, m.DmdH[idx]-m.CapH[idx])
}

// OverflowV returns the positive vertical overflow of Gcell idx.
func (m *Map) OverflowV(idx int) float64 {
	return math.Max(0, m.DmdV[idx]-m.CapV[idx])
}

// OverflowRatios returns the horizontal and vertical overflow ratios in
// percent: total overflowed demand over total capacity, the "HOF"/"VOF"
// metric of Table II.
func (m *Map) OverflowRatios() (hof, vof float64) {
	var oh, ov, ch, cv float64
	for i := range m.DmdH {
		oh += m.OverflowH(i)
		ov += m.OverflowV(i)
		ch += m.CapH[i]
		cv += m.CapV[i]
	}
	if ch > 0 {
		hof = 100 * oh / ch
	}
	if cv > 0 {
		vof = 100 * ov / cv
	}
	return hof, vof
}

// ResetDemand clears all demand and pin counts.
func (m *Map) ResetDemand() {
	for i := range m.DmdH {
		m.DmdH[i] = 0
		m.DmdV[i] = 0
		m.Pins[i] = 0
	}
}

// PinDensity returns pins per available site in Gcell idx.
func (m *Map) PinDensity(idx int) float64 {
	return m.Pins[idx] / math.Max(m.Sites[idx], 1)
}

// MapStats summarizes a congestion map: peak directional congestion, how
// many Gcells overflow, and the worst single-Gcell overflow in tracks.
// Used by the Fig.-5 reporting to compare maps quantitatively.
type MapStats struct {
	MaxCgH, MaxCgV     float64
	HotH, HotV         int // Gcells with positive overflow
	WorstH, WorstV     float64
	TotalDmdH          float64
	TotalDmdV          float64
	AvgUtilH, AvgUtilV float64
}

// Stats computes summary statistics of the map.
func (m *Map) Stats() MapStats {
	s := MapStats{MaxCgH: math.Inf(-1), MaxCgV: math.Inf(-1)}
	var capH, capV float64
	for i := range m.DmdH {
		if v := m.CgH(i); v > s.MaxCgH {
			s.MaxCgH = v
		}
		if v := m.CgV(i); v > s.MaxCgV {
			s.MaxCgV = v
		}
		if o := m.OverflowH(i); o > 0 {
			s.HotH++
			if o > s.WorstH {
				s.WorstH = o
			}
		}
		if o := m.OverflowV(i); o > 0 {
			s.HotV++
			if o > s.WorstV {
				s.WorstV = o
			}
		}
		s.TotalDmdH += m.DmdH[i]
		s.TotalDmdV += m.DmdV[i]
		capH += m.CapH[i]
		capV += m.CapV[i]
	}
	if capH > 0 {
		s.AvgUtilH = s.TotalDmdH / capH
	}
	if capV > 0 {
		s.AvgUtilV = s.TotalDmdV / capV
	}
	return s
}
