package cong

import "puffer/internal/obs"

// SetObs attaches telemetry to the estimator: refresh spans (with shard
// children during parallel rebuilds) on the recorder's tracer, and the
// engine's cache behaviour on its registry. A nil recorder — the default —
// disables everything at nil-check cost.
func (e *Estimator) SetObs(rec *obs.Recorder) {
	e.rec = rec
	e.cEstimates = rec.Counter("cong.estimates")
	e.cRebuilds = rec.Counter("cong.full_rebuilds")
	e.gHitRate = rec.Gauge("cong.hit_rate")
	e.sDirty = rec.Series("cong.dirty_nets")
}

// recordRefresh publishes the just-finished refresh to the instruments
// and annotates the refresh span.
func (e *Estimator) recordRefresh(sp *obs.Span) {
	e.cEstimates.Inc()
	e.gHitRate.Set(e.stats.HitRate())
	e.sDirty.Observe(e.stats.Calls, float64(e.stats.LastDirtyNets))
	if sp != nil {
		sp.SetArg("reason", e.stats.LastReason)
		sp.SetArg("dirty_nets", e.stats.LastDirtyNets)
		sp.SetArg("moved_pins", e.stats.LastMovedPins)
	}
}
