package cong

import (
	"math"
	"testing"

	"puffer/internal/netlist"
)

func TestMapStats(t *testing.T) {
	d := testDesign()
	m := NewMap(d, 4, 4)
	for i := range m.CapH {
		m.CapH[i] = 10
		m.CapV[i] = 10
	}
	m.DmdH[0] = 14 // overflow 4
	m.DmdH[1] = 12 // overflow 2
	m.DmdV[5] = 11 // overflow 1
	s := m.Stats()
	if s.HotH != 2 || s.HotV != 1 {
		t.Errorf("hot counts = %d/%d, want 2/1", s.HotH, s.HotV)
	}
	if s.WorstH != 4 || s.WorstV != 1 {
		t.Errorf("worst = %v/%v, want 4/1", s.WorstH, s.WorstV)
	}
	if want := (14.0 - 10) / 10; math.Abs(s.MaxCgH-want) > 1e-12 {
		t.Errorf("MaxCgH = %v, want %v", s.MaxCgH, want)
	}
	if want := 26.0 / 160.0; math.Abs(s.AvgUtilH-want) > 1e-12 {
		t.Errorf("AvgUtilH = %v, want %v", s.AvgUtilH, want)
	}
	if s.TotalDmdH != 26 || s.TotalDmdV != 11 {
		t.Errorf("totals = %v/%v", s.TotalDmdH, s.TotalDmdV)
	}
}

func TestMapStatsEmpty(t *testing.T) {
	d := testDesign()
	m := NewMap(d, 4, 4)
	s := m.Stats()
	if s.HotH != 0 || s.HotV != 0 || s.WorstH != 0 || s.WorstV != 0 {
		t.Errorf("empty map stats: %+v", s)
	}
	if s.MaxCgH > 0 || s.MaxCgV > 0 {
		t.Errorf("empty map max congestion positive: %+v", s)
	}
}

// TestExpansionAtGridEdges: congested I-segments on the boundary rows and
// columns must not index outside the grid or leave negative demand.
func TestExpansionAtGridEdges(t *testing.T) {
	d := testDesign()
	// Net hugging the bottom edge.
	a := d.AddCell(netlist.Cell{W: 0.8, H: 0.8, X: 1, Y: 0.2})
	b := d.AddCell(netlist.Cell{W: 0.8, H: 0.8, X: 29, Y: 0.2})
	n := d.AddNet("edge", 1)
	d.Connect(a, n, 0.4, 0.4)
	d.Connect(b, n, 0.4, 0.4)
	e := NewEstimator(d, 8, 8, Params{PinPenalty: 0, ExpandRadius: 5, TransferRatio: 0.5})
	for i := 0; i < e.M.W; i++ {
		e.M.CapH[e.M.Index(i, 0)] = 0.01
	}
	e.Estimate() // must not panic
	total := 0.0
	for _, v := range e.M.DmdH {
		if v < -1e-9 {
			t.Fatalf("negative demand %v", v)
		}
		total += v
	}
	if total <= 0 {
		t.Error("no demand deposited")
	}
}

// TestExpansionCornerVertical exercises a vertical segment on the left
// edge with a Steiner endpoint.
func TestExpansionCornerVertical(t *testing.T) {
	d := testDesign()
	a := d.AddCell(netlist.Cell{W: 0.8, H: 0.8, X: 0.2, Y: 1})
	b := d.AddCell(netlist.Cell{W: 0.8, H: 0.8, X: 0.2, Y: 29})
	c := d.AddCell(netlist.Cell{W: 0.8, H: 0.8, X: 15, Y: 15})
	n := d.AddNet("corner", 1)
	d.Connect(a, n, 0.4, 0.4)
	d.Connect(b, n, 0.4, 0.4)
	d.Connect(c, n, 0.4, 0.4)
	e := NewEstimator(d, 8, 8, Params{PinPenalty: 0, ExpandRadius: 7, TransferRatio: 0.9})
	for j := 0; j < e.M.H; j++ {
		e.M.CapV[e.M.Index(0, j)] = 0.01
	}
	e.Estimate()
	for idx, v := range e.M.DmdV {
		if v < -1e-9 {
			t.Fatalf("negative vertical demand at %d: %v", idx, v)
		}
	}
}
