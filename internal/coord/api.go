package coord

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"puffer/internal/cas"
	"puffer/internal/obs"
	"puffer/internal/serve"
	"puffer/internal/synth"
)

// TenantHeader names the submission header carrying the tenant identity
// for fairness and rate limiting. Absent means tenant "default".
const TenantHeader = "X-Puffer-Tenant"

// maxSpecBytes bounds a submission body, matching the worker's bound.
const maxSpecBytes = 64 << 20

// Handler builds the coordinator's HTTP surface. The job routes mirror the
// single-node daemon's, so pufferctl points at a coordinator unchanged;
// the fleet routes are coordinator-only:
//
//	POST   /api/v1/nodes                  worker registration/heartbeat (puffer/node/v1)
//	GET    /api/v1/nodes                  fleet node table (pufferctl fleet)
//	POST   /api/v1/jobs                   submit (cache check → tenant queue → dispatch)
//	GET    /api/v1/jobs[/{id}...]         reads, proxied to the owning worker while running
//	GET    /healthz /readyz /api/v1/ops   lifecycle (readyz: 503 with "no_workers" when fleet is empty)
//	GET    /metrics /debug/...            coordinator registry
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/nodes", s.handleNodePost)
	mux.HandleFunc("GET /api/v1/nodes", s.handleNodeList)
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /api/v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /api/v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /api/v1/jobs/{id}/artifacts/{name}", s.handleArtifact)
	mux.HandleFunc("POST /api/v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("DELETE /api/v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /api/v1/ops", s.handleOps)
	debug := obs.NewDebugMux(s.reg)
	mux.Handle("/debug/", debug)
	mux.Handle("/metrics", debug)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "pufferd fleet coordinator\n\n/api/v1/jobs\n/api/v1/nodes\n/api/v1/ops\n/healthz\n/readyz\n/metrics\n")
	})
	return s.withTelemetry(mux)
}

// withTelemetry mirrors the worker daemon's wrapper: request latency into
// coord.http_request_seconds plus one structured log line per request.
func (s *Server) withTelemetry(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ctx := r.Context()
		if tc, err := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader)); err == nil {
			ctx = obs.ContextWithLabels(ctx,
				slog.String("trace_id", tc.TraceID.String()),
				slog.String("span_id", tc.SpanID.String()))
			r = r.WithContext(ctx)
		}
		next.ServeHTTP(w, r)
		wall := time.Since(start)
		s.hHTTP.Observe(wall.Seconds())
		level := slog.LevelInfo
		if r.URL.Path == "/healthz" || r.URL.Path == "/readyz" || r.URL.Path == "/metrics" ||
			r.URL.Path == "/api/v1/nodes" || strings.HasPrefix(r.URL.Path, "/debug/") {
			level = slog.LevelDebug
		}
		s.log.LogAttrs(ctx, level, "http request",
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Duration("wall", wall.Round(time.Microsecond)))
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func apiError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleNodePost is registration + heartbeat in one: workers post their
// manifest on an interval and the coordinator upserts.
func (s *Server) handleNodePost(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		apiError(w, http.StatusBadRequest, "read node manifest: %v", err)
		return
	}
	mf, err := ParseNodeManifest(data)
	if err != nil {
		apiError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if mf.Engine != serve.EngineVersion {
		// Registered but never dispatched to; surfaced in the node table
		// so a mixed-version rollout is visible, not silent.
		s.log.Warn("node engine mismatch", "node", mf.ID, "engine", mf.Engine, "want", serve.EngineVersion)
	}
	s.register(mf)
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":                 true,
		"dead_after_seconds": s.cfg.DeadAfter.Seconds(),
	})
}

// nodeRow is one row of the fleet table.
type nodeRow struct {
	ID           string      `json:"id"`
	Addr         string      `json:"addr"`
	Engine       string      `json:"engine"`
	Live         bool        `json:"live"`
	HeartbeatAge float64     `json:"heartbeat_age_seconds"`
	Jobs         int         `json:"jobs"`
	Stats        serve.Stats `json:"stats"`
}

func (s *Server) nodeRows() []nodeRow {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]nodeRow, 0, len(s.nodes))
	for _, n := range s.nodes {
		out = append(out, nodeRow{
			ID:           n.mf.ID,
			Addr:         n.mf.Addr,
			Engine:       n.mf.Engine,
			Live:         now.Sub(n.lastSeen) <= s.cfg.DeadAfter,
			HeartbeatAge: now.Sub(n.lastSeen).Seconds(),
			Jobs:         len(n.jobs),
			Stats:        n.mf.Stats,
		})
	}
	sortNodeRows(out)
	return out
}

func sortNodeRows(rows []nodeRow) {
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && rows[j].ID < rows[j-1].ID; j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
		}
	}
}

func (s *Server) handleNodeList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.nodeRows())
}

// handleSubmit admits a job at the fleet level: spec validation (same
// rules as a worker), content addressing (design + config digests), the
// result-cache check, and tenant-fair queueing for dispatch.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		apiError(w, http.StatusServiceUnavailable, "coordinator is draining; not admitting jobs")
		return
	}
	var spec serve.JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		apiError(w, http.StatusBadRequest, "decode job spec: %v", err)
		return
	}
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		apiError(w, http.StatusBadRequest, "invalid job spec: %v", err)
		return
	}
	if spec.Profile != "" {
		if _, err := synth.ProfileByName(spec.Profile); err != nil {
			apiError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	tenant := sanitizeTenant(r.Header.Get(TenantHeader))

	// Content addresses: the design (blob for uploads, identity for
	// synthetic profiles) and the normalized result-determining config.
	var designDigest cas.Digest
	if len(spec.Bookshelf) > 0 {
		blob, err := cas.EncodeBookshelf(spec.Bookshelf)
		if err != nil {
			apiError(w, http.StatusBadRequest, "%v", err)
			return
		}
		d, existed, err := s.store.Put(blob)
		if err != nil {
			apiError(w, http.StatusInternalServerError, "store design: %v", err)
			return
		}
		if existed {
			s.reg.Counter("coord.design_blob_dedup").Inc()
		}
		designDigest = d
	} else {
		designDigest = cas.ProfileDesignDigest(spec.Profile, spec.Scale, spec.Seed)
	}
	configDigest, err := cas.Config{
		Kind:        spec.Kind,
		MaxIters:    spec.MaxIters,
		Route:       spec.Route,
		Budget:      spec.Budget,
		Seed:        spec.Seed,
		Strategy:    spec.Strategy,
		Distributed: spec.Distributed,
		EarlyStop:   spec.EarlyStop,
		WarmStart:   spec.WarmStart,
	}.Digest()
	if err != nil {
		apiError(w, http.StatusBadRequest, "config digest: %v", err)
		return
	}

	// Cache check: a byte-equivalent prior job's result answers
	// immediately — no queue, no dispatch, no pipeline run. Early-stop and
	// warm-start explorations are timing/history dependent, so they neither
	// consult nor (see runFarm) fill the cache.
	if !spec.NoCache && !spec.EarlyStop && !spec.WarmStart {
		if hit, ok := s.cacheHit(designDigest, configDigest); ok {
			m := s.newManifest(spec, r, tenant, designDigest, configDigest)
			now := time.Now()
			m.State = serve.StateDone
			m.CacheHit = true
			m.Origin = hit.Job
			m.ResultDigest = string(hit.ResultDigest)
			m.FinishedAt = &now
			if origin, err := s.spool.ReadManifest(hit.Job); err == nil {
				m.Result = origin.Result
				m.Stage = origin.Stage
			}
			if err := s.spool.CreateJob(m); err != nil {
				apiError(w, http.StatusInternalServerError, "spool job: %v", err)
				return
			}
			s.reg.Counter("coord.cache_hits").Inc()
			s.publishGauges()
			s.log.InfoContext(r.Context(), "cache hit", "job", m.ID, "origin", hit.Job,
				"design", designDigest.Short(), "config", configDigest.Short())
			writeJSON(w, http.StatusAccepted, m)
			return
		}
	}
	s.reg.Counter("coord.cache_misses").Inc()

	// Distributed explorations run as a farm controller in this process;
	// only their individual trials enter the dispatch queue (where the
	// pending cap applies to each trial admission's enqueue, not here).
	if spec.Distributed {
		m := s.newManifest(spec, r, tenant, designDigest, configDigest)
		if len(spec.Bookshelf) > 0 {
			m.Spec.Bookshelf = nil
			if err := s.store.AddRef(designDigest); err != nil {
				apiError(w, http.StatusInternalServerError, "%v", err)
				return
			}
		}
		if err := s.spool.CreateJob(m); err != nil {
			apiError(w, http.StatusInternalServerError, "spool job: %v", err)
			return
		}
		s.reg.Counter("coord.explorations_submitted").Inc()
		s.log.InfoContext(r.Context(), "exploration farm started", "job", m.ID,
			"tenant", tenant, "budget", spec.Budget, "seed", spec.Seed,
			"early_stop", spec.EarlyStop, "warm_start", spec.WarmStart,
			"design", designDigest.Short(), "config", configDigest.Short())
		s.startFarm(m)
		writeJSON(w, http.StatusAccepted, m)
		return
	}

	// Fleet-level backpressure in front of the workers' own queues.
	s.mu.Lock()
	full := s.pending >= s.cfg.PendingCap
	s.mu.Unlock()
	if full {
		retry := s.retryAfter()
		w.Header().Set("Retry-After", strconv.Itoa(int(retry.Seconds())))
		apiError(w, http.StatusTooManyRequests,
			"fleet queue full (%d pending); retry in %s", s.cfg.PendingCap, retry)
		return
	}

	m := s.newManifest(spec, r, tenant, designDigest, configDigest)
	if len(spec.Bookshelf) > 0 {
		// The blob is the upload's durable home; the manifest carries only
		// its digest. A ref pins it against GC until the job finishes.
		m.Spec.Bookshelf = nil
		if err := s.store.AddRef(designDigest); err != nil {
			apiError(w, http.StatusInternalServerError, "%v", err)
			return
		}
	}
	if err := s.spool.CreateJob(m); err != nil {
		apiError(w, http.StatusInternalServerError, "spool job: %v", err)
		return
	}
	s.reg.Counter("coord.jobs_submitted").Inc()
	s.log.InfoContext(r.Context(), "job queued", "job", m.ID, "tenant", tenant,
		"design", designDigest.Short(), "config", configDigest.Short())
	s.enqueue(m)
	writeJSON(w, http.StatusAccepted, m)
}

// cacheHit looks up a usable cached result: the index entry must still
// have a readable done manifest behind it (a pruned spool drops the entry
// rather than serving a dangling hit).
func (s *Server) cacheHit(design, config cas.Digest) (cas.ResultEntry, bool) {
	e, ok := s.store.Result(design, config, serve.EngineVersion)
	if !ok {
		return e, false
	}
	origin, err := s.spool.ReadManifest(e.Job)
	if err != nil || origin.State != serve.StateDone {
		s.store.DropResult(design, config, serve.EngineVersion)
		return e, false
	}
	return e, true
}

func (s *Server) newManifest(spec serve.JobSpec, r *http.Request, tenant string, design, config cas.Digest) *serve.Manifest {
	m := &serve.Manifest{
		ID:           serve.NewJobID(),
		Spec:         spec,
		State:        serve.StateQueued,
		Tenant:       tenant,
		DesignDigest: string(design),
		ConfigDigest: string(config),
		SubmittedAt:  time.Now().UTC(),
	}
	if tp := r.Header.Get(obs.TraceparentHeader); tp != "" {
		if _, err := obs.ParseTraceparent(tp); err == nil {
			m.TraceParent = tp
		}
	}
	return m
}

// sanitizeTenant bounds the tenant label (it becomes a queue key and log
// field, never a path).
func sanitizeTenant(t string) string {
	t = strings.TrimSpace(t)
	if t == "" {
		return "default"
	}
	if len(t) > 64 {
		t = t[:64]
	}
	var b strings.Builder
	for _, c := range t {
		if c > ' ' && c < 0x7f && c != '/' && c != '\\' {
			b.WriteRune(c)
		}
	}
	if b.Len() == 0 {
		return "default"
	}
	return b.String()
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	status := "serving"
	if s.Draining() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     status,
		"role":       "coordinator",
		"nodes_live": s.LiveNodes(),
	})
}

// handleReady: a coordinator with zero live workers is alive but cannot
// make progress, so it reports not-ready with reason "no_workers" — load
// balancers stop routing submissions at a fleet that would only queue
// them.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	var reasons []string
	if s.Draining() {
		reasons = append(reasons, "draining")
	}
	if s.LiveNodes() == 0 {
		reasons = append(reasons, "no_workers")
	}
	s.mu.Lock()
	if s.pending >= s.cfg.PendingCap {
		reasons = append(reasons, "queue saturated")
	}
	s.mu.Unlock()
	status := http.StatusOK
	if len(reasons) > 0 {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]any{
		"ready":   len(reasons) == 0,
		"reasons": reasons,
	})
}

func (s *Server) handleOps(w http.ResponseWriter, r *http.Request) {
	status := "serving"
	if s.Draining() {
		status = "draining"
	}
	snap := s.reg.Snapshot()
	idx := s.store.Snapshot()
	var blobBytes int64
	for _, b := range idx.Blobs {
		blobBytes += b.Size
	}
	s.mu.Lock()
	pending := s.pending
	dispatched := len(s.jobs)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         status,
		"role":           "coordinator",
		"uptime_seconds": time.Since(s.startedAt).Round(time.Second).Seconds(),
		"nodes":          s.nodeRows(),
		"pending":        pending,
		"dispatched":     dispatched,
		"pending_cap":    s.cfg.PendingCap,
		"cache": map[string]any{
			"blobs":      len(idx.Blobs),
			"blob_bytes": blobBytes,
			"results":    len(idx.Results),
		},
		"counters": snap.Counters,
		"gauges":   snap.Gauges,
	})
}
