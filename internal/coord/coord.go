// Package coord is the fleet tier above the single-node job daemon: a
// coordinator that workers (unmodified serve.Server daemons) register with
// over HTTP, accepting job submissions, deduplicating them through a
// content-addressed result cache (internal/cas), dispatching cache misses
// to the least-loaded live worker with per-tenant fairness and rate
// limits, mirroring checkpoints so a SIGKILLed worker's jobs re-admit on a
// survivor mid-flow, and proxying status/result/artifact/SSE reads so
// pufferctl works against a coordinator unchanged.
//
// The package layers are:
//
//	node.go     — the fleet vocabulary: NodeManifest, ParseNodeManifest, Announcer
//	coord.go    — Server lifecycle: registry, recovery, drain, metrics
//	dispatch.go — tenant queues, rate limits, node selection, watchers, failover
//	api.go      — the HTTP surface (submit + fleet + ops)
//	proxy.go    — read-path proxying (status, result, artifacts, SSE, traces)
package coord

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"time"

	"puffer/internal/cas"
	"puffer/internal/obs"
	"puffer/internal/serve"
)

// Config configures a coordinator.
type Config struct {
	// SpoolDir is the coordinator's own job spool (manifests, mirrored
	// checkpoints, fetched artifacts). Same layout as a worker spool.
	SpoolDir string
	// CASDir is the content-addressed store root (default: SpoolDir/cas).
	CASDir string
	// DeadAfter is the heartbeat age past which a node is considered dead
	// and its jobs fail over (default 10s).
	DeadAfter time.Duration
	// Poll is the per-job watcher's remote poll interval (default 1s).
	Poll time.Duration
	// PendingCap bounds jobs waiting for dispatch across all tenants
	// (default 64). Beyond it submissions get 429 + Retry-After — the
	// fleet-level layer in front of each worker's own admission queue.
	PendingCap int
	// TenantRate is the per-tenant dispatch rate limit in jobs/second
	// (0 = unlimited); TenantBurst is the bucket size (default 4).
	TenantRate  float64
	TenantBurst int
	// EarlyStopMargin is the domination factor for exploration early stop:
	// a trial is canceled once its streamed overflow exceeds this multiple
	// of the best competitor's at the same step (0 = xfarm's default 1.5).
	EarlyStopMargin float64
	// Client is the HTTP client for worker calls (default 15s timeout;
	// SSE and artifact proxying use streaming requests with no timeout).
	Client *http.Client
	// Log receives the coordinator's structured log records (nil = silent).
	Log *slog.Logger
}

// node is the registry entry for one worker.
type node struct {
	mf       NodeManifest
	lastSeen time.Time
	// unavailableUntil holds dispatch off a worker that answered 429, for
	// its own Retry-After estimate.
	unavailableUntil time.Time
	// jobs is the set of coordinator job IDs currently dispatched there.
	jobs map[string]struct{}
}

// Server is the fleet coordinator. Construct with New, start the
// background loops with Start, attach the HTTP surface via Handler, stop
// with Drain/Close.
type Server struct {
	cfg    Config
	spool  *serve.Spool
	store  *cas.Store
	reg    *obs.Registry
	log    *slog.Logger
	client *http.Client

	hHTTP      *obs.Histogram // wall of every coordinator HTTP request
	hDispatch  *obs.Histogram // submit (or requeue) → worker 202
	hHeartbeat *obs.Histogram // observed heartbeat ages at scan time
	startedAt  time.Time

	baseCtx  context.Context
	stopBase context.CancelFunc
	kick     chan struct{} // nudges the dispatcher
	wg       sync.WaitGroup

	mu       sync.Mutex
	nodes    map[string]*node
	tenants  map[string]*tenantQueue
	order    []string // tenant round-robin order
	rr       int
	pending  int
	jobs     map[string]*coordJob // dispatched, watched jobs
	farms    map[string]*farm     // running exploration-farm controllers
	draining bool

	// Recovered counts jobs re-attached or re-queued at boot.
	Recovered int
}

// New opens the coordinator spool and CAS store and recovers outstanding
// jobs: running jobs re-attach their watchers (the worker kept going while
// the coordinator was down), queued jobs re-enter their tenant queues.
func New(cfg Config) (*Server, error) {
	if cfg.DeadAfter <= 0 {
		cfg.DeadAfter = 10 * time.Second
	}
	if cfg.Poll <= 0 {
		cfg.Poll = time.Second
	}
	if cfg.PendingCap <= 0 {
		cfg.PendingCap = 64
	}
	if cfg.TenantBurst <= 0 {
		cfg.TenantBurst = 4
	}
	if cfg.Log == nil {
		cfg.Log = obs.NopLogger()
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 15 * time.Second}
	}
	if cfg.CASDir == "" {
		cfg.CASDir = cfg.SpoolDir + "/cas"
	}
	sp, err := serve.OpenSpool(cfg.SpoolDir)
	if err != nil {
		return nil, err
	}
	store, err := cas.Open(cfg.CASDir)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:       cfg,
		spool:     sp,
		store:     store,
		reg:       obs.NewRegistry(),
		log:       cfg.Log,
		client:    cfg.Client,
		startedAt: time.Now(),
		baseCtx:   ctx,
		stopBase:  cancel,
		kick:      make(chan struct{}, 1),
		nodes:     make(map[string]*node),
		tenants:   make(map[string]*tenantQueue),
		jobs:      make(map[string]*coordJob),
		farms:     make(map[string]*farm),
	}
	s.hHTTP = s.reg.Histogram("coord.http_request_seconds")
	s.hDispatch = s.reg.Histogram("coord.dispatch_seconds")
	s.hHeartbeat = s.reg.Histogram("coord.heartbeat_age_seconds")
	if err := s.recover(); err != nil {
		cancel()
		return nil, err
	}
	s.publishGauges()
	return s, nil
}

// recover scans the spool at boot. A coordinator restart must not rerun
// work that is still running on a worker, so running jobs with a node
// address re-attach watchers instead of re-dispatching; queued jobs (and
// running jobs that never recorded a dispatch) go back in line.
func (s *Server) recover() error {
	all, err := s.spool.List()
	if err != nil {
		return err
	}
	for _, m := range all {
		// Distributed explorations never dispatch to a worker: their
		// controller restarts here and resumes from the spooled
		// explore-state checkpoint (finished trials replay, in-flight trial
		// jobs — recovered below like any dispatched job — re-attach by ID).
		if m.Spec.Distributed && !m.State.Terminal() {
			s.startFarm(m)
			s.Recovered++
			continue
		}
		switch m.State {
		case serve.StateQueued:
			s.enqueueLocked(m)
			s.Recovered++
		case serve.StateRunning, serve.StateParked:
			if m.NodeAddr != "" {
				s.attachWatcher(m)
				s.log.Info("re-attached fleet job", "job", m.ID, "node", m.Node)
			} else {
				if _, err := s.spool.Update(m.ID, func(mm *serve.Manifest) error {
					mm.State = serve.StateQueued
					mm.StartedAt = nil
					return nil
				}); err != nil {
					return err
				}
				m.State = serve.StateQueued
				s.enqueueLocked(m)
			}
			s.Recovered++
		}
	}
	return nil
}

// Spool exposes the coordinator's spool (diagnostics).
func (s *Server) Spool() *serve.Spool { return s.spool }

// Store exposes the coordinator's CAS store (diagnostics).
func (s *Server) Store() *cas.Store { return s.store }

// Registry exposes the coordinator metrics registry.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Start launches the dispatcher and the node liveness monitor.
func (s *Server) Start() {
	s.wg.Add(2)
	go s.dispatchLoop()
	go s.monitorLoop()
}

// Draining reports whether the coordinator has stopped admitting jobs.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// liveNodesLocked returns registered nodes whose heartbeat is fresh.
func (s *Server) liveNodesLocked(now time.Time) []*node {
	var out []*node
	for _, n := range s.nodes {
		if now.Sub(n.lastSeen) <= s.cfg.DeadAfter {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].mf.ID < out[j].mf.ID })
	return out
}

// LiveNodes returns the number of dispatchable workers.
func (s *Server) LiveNodes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.liveNodesLocked(time.Now()))
}

// register upserts a node from a heartbeat and kicks the dispatcher (a
// returning node may unblock pending work).
func (s *Server) register(mf *NodeManifest) {
	s.mu.Lock()
	n, ok := s.nodes[mf.ID]
	if !ok {
		n = &node{jobs: make(map[string]struct{})}
		s.nodes[mf.ID] = n
		s.log.Info("node joined", "node", mf.ID, "addr", mf.Addr, "engine", mf.Engine)
	}
	n.mf = *mf
	n.lastSeen = time.Now()
	s.mu.Unlock()
	s.reg.Counter("coord.heartbeats").Inc()
	s.kickDispatch()
}

// kickDispatch nudges the dispatcher without blocking.
func (s *Server) kickDispatch() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// publishGauges refreshes the fleet gauges (called on mutation).
func (s *Server) publishGauges() {
	s.mu.Lock()
	live := len(s.liveNodesLocked(time.Now()))
	nodes := len(s.nodes)
	pending := s.pending
	active := len(s.jobs)
	s.mu.Unlock()
	s.reg.Gauge("coord.nodes_live").Set(float64(live))
	s.reg.Gauge("coord.nodes_known").Set(float64(nodes))
	s.reg.Gauge("coord.jobs_pending").Set(float64(pending))
	s.reg.Gauge("coord.jobs_dispatched").Set(float64(active))
	hits := float64(s.reg.Counter("coord.cache_hits").Value())
	misses := float64(s.reg.Counter("coord.cache_misses").Value())
	if hits+misses > 0 {
		s.reg.Gauge("coord.cache_hit_rate").Set(hits / (hits + misses))
	}
}

// Drain stops admission and dispatch. Jobs already on workers keep
// running there (their spools are durable and this coordinator may be
// replaced); pending jobs stay queued in the coordinator spool for the
// next boot.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	s.mu.Unlock()
	s.stopBase()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("coord: drain timed out: %w", context.Cause(ctx))
	}
}

// Close force-stops the coordinator.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return s.Drain(ctx)
}
