package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"puffer/internal/bookshelf"
	"puffer/internal/serve"
	"puffer/internal/synth"
)

// fleetWorker is one in-process worker: a real serve.Server behind a real
// HTTP listener — exactly what pufferd runs, minus the process boundary.
type fleetWorker struct {
	srv  *serve.Server
	http *httptest.Server
	id   string
}

func newFleetWorker(t *testing.T, id string) *fleetWorker {
	t.Helper()
	srv, err := serve.New(serve.Config{SpoolDir: t.TempDir(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	hs := httptest.NewServer(srv.Handler())
	w := &fleetWorker{srv: srv, http: hs, id: id}
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
	})
	return w
}

func (w *fleetWorker) manifest() NodeManifest {
	return NodeManifest{
		Format: NodeManifestFormat,
		ID:     w.id,
		Addr:   w.http.URL,
		Engine: serve.EngineVersion,
		Stats:  w.srv.Stats(),
	}
}

// register posts one heartbeat for w to the coordinator (the tests use a
// long DeadAfter instead of a heartbeat loop).
func (w *fleetWorker) register(t *testing.T, coordURL string) {
	t.Helper()
	body, err := json.Marshal(w.manifest())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(coordURL+"/api/v1/nodes", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("heartbeat answered %d", resp.StatusCode)
	}
}

func newCoordinator(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.SpoolDir == "" {
		cfg.SpoolDir = t.TempDir()
	}
	if cfg.Poll == 0 {
		cfg.Poll = 50 * time.Millisecond
	}
	if cfg.DeadAfter == 0 {
		cfg.DeadAfter = time.Minute // liveness not under test unless set
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	return s, hs
}

func submit(t *testing.T, url string, spec serve.JobSpec, headers map[string]string) *serve.Manifest {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/api/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("submit answered %d: %v", resp.StatusCode, e)
	}
	m := &serve.Manifest{}
	if err := json.NewDecoder(resp.Body).Decode(m); err != nil {
		t.Fatal(err)
	}
	return m
}

// waitCoordState polls the coordinator's job status endpoint.
func waitCoordState(t *testing.T, url, id string, want serve.JobState) *serve.Manifest {
	t.Helper()
	deadline := time.Now().Add(90 * time.Second)
	for {
		resp, err := http.Get(url + "/api/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		m := &serve.Manifest{}
		err = json.NewDecoder(resp.Body).Decode(m)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if m.State == want {
			return m
		}
		if m.State.Terminal() {
			t.Fatalf("job %s reached %s (error %q) waiting for %s", id, m.State, m.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s waiting for %s", id, m.State, want)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func quickFleetSpec() serve.JobSpec {
	s := serve.JobSpec{Kind: serve.KindPlace, Profile: "MEDIA_SUBSYS", Scale: 3000, Seed: 5}
	s.Normalize()
	return s
}

// uploadFiles materializes quickFleetSpec's design as a Bookshelf upload,
// so tests cover the blob-backed path (store once, reconstruct at
// dispatch).
func uploadFiles(t *testing.T) map[string]string {
	t.Helper()
	p, err := synth.ProfileByName("MEDIA_SUBSYS")
	if err != nil {
		t.Fatal(err)
	}
	d := synth.Generate(p, 3000, 5)
	dir := t.TempDir()
	if _, err := bookshelf.Write(d, dir, "up"); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	files := make(map[string]string, len(entries))
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		files[e.Name()] = string(data)
	}
	return files
}

// TestFleetDedup is the core cache-correctness test: byte-identical
// submissions from two clients produce one pipeline run, one result
// digest, and a cache-hit second manifest; a one-byte config change
// misses.
func TestFleetDedup(t *testing.T) {
	w := newFleetWorker(t, "w1")
	cs, ch := newCoordinator(t, Config{})
	w.register(t, ch.URL)

	files := uploadFiles(t)
	spec := serve.JobSpec{Kind: serve.KindPlace, Bookshelf: files, Seed: 5}
	spec.Normalize()

	m1 := submit(t, ch.URL, spec, map[string]string{TenantHeader: "alice"})
	if m1.CacheHit {
		t.Fatal("first submission can not be a cache hit")
	}
	if m1.DesignDigest == "" || m1.ConfigDigest == "" {
		t.Fatalf("digests missing from %+v", m1)
	}
	done1 := waitCoordState(t, ch.URL, m1.ID, serve.StateDone)
	if done1.Result == nil || done1.Result.HPWL <= 0 {
		t.Fatalf("result = %+v", done1.Result)
	}
	if done1.ResultDigest == "" {
		t.Fatal("finished job has no result digest")
	}

	// Byte-identical second submission, different tenant ("client").
	m2 := submit(t, ch.URL, spec, map[string]string{TenantHeader: "bob"})
	if !m2.CacheHit || m2.Origin != m1.ID {
		t.Fatalf("second submission not a cache hit: hit=%v origin=%q", m2.CacheHit, m2.Origin)
	}
	if m2.State != serve.StateDone {
		t.Fatalf("cache hit state = %s", m2.State)
	}
	if m2.ResultDigest != done1.ResultDigest {
		t.Fatalf("result digests differ: %s vs %s", m2.ResultDigest, done1.ResultDigest)
	}
	if m2.Result == nil || m2.Result.HPWL != done1.Result.HPWL {
		t.Fatalf("cache hit result %+v vs %+v", m2.Result, done1.Result)
	}
	if m2.DesignDigest != m1.DesignDigest {
		t.Fatalf("design digests differ: %s vs %s", m2.DesignDigest, m1.DesignDigest)
	}
	// One pipeline run: the worker's spool saw exactly one job.
	workerJobs, err := w.srv.Spool().List()
	if err != nil {
		t.Fatal(err)
	}
	if len(workerJobs) != 1 {
		t.Fatalf("worker ran %d jobs, want 1", len(workerJobs))
	}
	// One stored upload blob (byte-identical uploads deduplicate).
	if idx := cs.Store().Snapshot(); len(idx.Blobs) != 1 {
		t.Fatalf("CAS holds %d blobs, want 1", len(idx.Blobs))
	}

	// A one-byte config change (different seed) misses the cache.
	spec3 := spec
	spec3.Seed = 6
	m3 := submit(t, ch.URL, spec3, nil)
	if m3.CacheHit {
		t.Fatal("changed config still hit the cache")
	}
	if m3.DesignDigest != m1.DesignDigest {
		t.Fatal("design digest should be unchanged (same upload bytes)")
	}
	if m3.ConfigDigest == m1.ConfigDigest {
		t.Fatal("config digest did not change with the seed")
	}
	waitCoordState(t, ch.URL, m3.ID, serve.StateDone)

	// NoCache forces a rerun of a cached spec; bit-determinism means the
	// rerun reproduces the original result exactly.
	spec4 := spec
	spec4.NoCache = true
	m4 := submit(t, ch.URL, spec4, nil)
	if m4.CacheHit {
		t.Fatal("nocache submission was served from cache")
	}
	done4 := waitCoordState(t, ch.URL, m4.ID, serve.StateDone)
	if done4.Result.HPWL != done1.Result.HPWL {
		t.Fatalf("rerun HPWL %v != original %v", done4.Result.HPWL, done1.Result.HPWL)
	}
	if done4.ResultDigest != done1.ResultDigest {
		t.Fatalf("rerun result digest %s != original %s", done4.ResultDigest, done1.ResultDigest)
	}
}

// TestProfileCacheAndArtifacts: synthetic-profile jobs content-address
// without a blob, and finished artifacts serve from the coordinator's
// mirror (including for cache hits, via Origin). The merged Chrome trace
// must contain both coordinator and worker spans.
func TestProfileCacheAndArtifacts(t *testing.T) {
	w := newFleetWorker(t, "w1")
	cs, ch := newCoordinator(t, Config{})
	w.register(t, ch.URL)

	m1 := submit(t, ch.URL, quickFleetSpec(), nil)
	done := waitCoordState(t, ch.URL, m1.ID, serve.StateDone)
	if done.DesignDigest == "" || done.ConfigDigest == "" {
		t.Fatalf("digests missing: %+v", done)
	}

	m2 := submit(t, ch.URL, quickFleetSpec(), nil)
	if !m2.CacheHit {
		t.Fatal("identical profile submission missed the cache")
	}
	// Artifacts resolve through Origin for cache hits.
	for _, id := range []string{m1.ID, m2.ID} {
		resp, err := http.Get(ch.URL + "/api/v1/jobs/" + id + "/artifacts/report.json")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("artifact for %s answered %d", id, resp.StatusCode)
		}
	}
	resp, err := http.Get(ch.URL + "/api/v1/jobs/" + m1.ID + "/artifacts/trace.json")
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string `json:"name"`
			PID  int    `json:"pid"`
		} `json:"traceEvents"`
	}
	err = json.NewDecoder(resp.Body).Decode(&trace)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("merged trace is not valid JSON: %v", err)
	}
	var sawCoord, sawWorker bool
	for _, ev := range trace.TraceEvents {
		if ev.Name == "coord.job" || ev.Name == "coord.dispatch" {
			sawCoord = true
		}
		if ev.PID > 1 {
			sawWorker = true
		}
	}
	if !sawCoord || !sawWorker {
		t.Fatalf("merged trace lacks coordinator (%v) or worker (%v) spans", sawCoord, sawWorker)
	}
	// The CAS index recorded exactly one result for this triple.
	if idx := cs.Store().Snapshot(); len(idx.Results) != 1 {
		t.Fatalf("CAS results = %d, want 1", len(idx.Results))
	}
}

// TestReadyzNoWorkers: the coordinator-aware readiness contract — an
// empty fleet is not ready, with the no_workers reason.
func TestReadyzNoWorkers(t *testing.T) {
	_, ch := newCoordinator(t, Config{})
	resp, err := http.Get(ch.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Ready   bool     `json:"ready"`
		Reasons []string `json:"reasons"`
	}
	err = json.NewDecoder(resp.Body).Decode(&body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable || body.Ready {
		t.Fatalf("empty fleet readyz = %d ready=%v", resp.StatusCode, body.Ready)
	}
	found := false
	for _, r := range body.Reasons {
		if r == "no_workers" {
			found = true
		}
	}
	if !found {
		t.Fatalf("reasons = %v, want no_workers", body.Reasons)
	}

	w := newFleetWorker(t, "w1")
	w.register(t, ch.URL)
	resp, err = http.Get(ch.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz with live worker = %d", resp.StatusCode)
	}
}

// TestFailover: a worker that parks its job (drain — the graceful twin of
// a crash) triggers re-admission on the surviving worker, and the final
// HPWL is exactly the uninterrupted run's: the determinism contract that
// makes failover invisible to results.
func TestFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second fleet failover test")
	}
	slow := serve.JobSpec{Kind: serve.KindPlace, Profile: "MEDIA_SUBSYS", Scale: 400, Seed: 5}
	slow.Normalize()

	w1 := newFleetWorker(t, "w1")
	w2 := newFleetWorker(t, "w2")
	cs, ch := newCoordinator(t, Config{})
	w1.register(t, ch.URL)

	// Reference: uninterrupted run on w1.
	ref := submit(t, ch.URL, slow, nil)
	refDone := waitCoordState(t, ch.URL, ref.ID, serve.StateDone)

	// Same spec, forced rerun; w1 will park it mid-flight.
	spec := slow
	spec.NoCache = true
	m := submit(t, ch.URL, spec, nil)
	waitCoordState(t, ch.URL, m.ID, serve.StateRunning)
	time.Sleep(500 * time.Millisecond) // let some stages land

	// Register w2, then drain w1: the running job parks, the watcher sees
	// it and requeues, and dispatch lands on w2.
	w2.register(t, ch.URL)
	drainCtx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := w1.srv.Drain(drainCtx); err != nil {
		t.Fatalf("drain w1: %v", err)
	}
	// Refresh w1's registration so the coordinator sees Draining stats
	// instead of retry-looping against its 503s.
	w1.register(t, ch.URL)

	done := waitCoordState(t, ch.URL, m.ID, serve.StateDone)
	if done.Node != "w2" {
		t.Fatalf("failover landed on %q, want w2", done.Node)
	}
	if done.Attempts < 2 {
		t.Fatalf("attempts = %d, want >= 2", done.Attempts)
	}
	if done.Result.HPWL != refDone.Result.HPWL {
		t.Fatalf("failover HPWL %v != uninterrupted %v", done.Result.HPWL, refDone.Result.HPWL)
	}
	if got := cs.Registry().Counter("coord.jobs_failed_over").Value(); got < 1 {
		t.Fatalf("coord.jobs_failed_over = %d", got)
	}
}

// TestPendingBackpressure: with no workers everything queues, and the
// pending cap turns into 429 + Retry-After at the coordinator's door.
func TestPendingBackpressure(t *testing.T) {
	_, ch := newCoordinator(t, Config{PendingCap: 2})
	spec := quickFleetSpec()
	submit(t, ch.URL, spec, nil)
	s2 := spec
	s2.Seed = 991
	submit(t, ch.URL, s2, nil)
	s3 := spec
	s3.Seed = 992
	body, err := json.Marshal(s3)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ch.URL+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap submission answered %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}
