package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"puffer/internal/cas"
	"puffer/internal/obs"
	"puffer/internal/serve"
)

// tenantQueue is one tenant's pending FIFO plus its dispatch token
// bucket. Fairness is round-robin across tenants with work, so one
// tenant flooding the coordinator delays only itself.
type tenantQueue struct {
	pending []string // coordinator job IDs, oldest first
	tokens  float64
	last    time.Time
}

// take consumes one dispatch token if the bucket (rate r/s, burst b) has
// one, refilling lazily. Unlimited when r <= 0.
func (q *tenantQueue) take(r float64, b int, now time.Time) bool {
	if r <= 0 {
		return true
	}
	if q.last.IsZero() {
		q.tokens = float64(b)
	} else {
		q.tokens += now.Sub(q.last).Seconds() * r
		if q.tokens > float64(b) {
			q.tokens = float64(b)
		}
	}
	q.last = now
	if q.tokens < 1 {
		return false
	}
	q.tokens--
	return true
}

// coordJob is the in-memory runtime of one dispatched job: its watcher's
// cancel and the tracer that stitches the client → coordinator → worker
// spans into a single trace.
type coordJob struct {
	cancel context.CancelFunc
	tracer *obs.Tracer
	span   *obs.Span // the open coord.job root span
}

// enqueueLocked appends m to its tenant queue (creating the tenant lane on
// first use). Callers without s.mu held must use enqueue.
func (s *Server) enqueueLocked(m *serve.Manifest) {
	tenant := m.Tenant
	if tenant == "" {
		tenant = "default"
	}
	q, ok := s.tenants[tenant]
	if !ok {
		q = &tenantQueue{}
		s.tenants[tenant] = q
		s.order = append(s.order, tenant)
	}
	q.pending = append(q.pending, m.ID)
	s.pending++
}

func (s *Server) enqueue(m *serve.Manifest) {
	s.mu.Lock()
	s.enqueueLocked(m)
	s.mu.Unlock()
	s.kickDispatch()
	s.publishGauges()
}

// retryAfter estimates how long a rejected submitter should wait: one
// watcher poll per pending job ahead of it, floored at 2s.
func (s *Server) retryAfter() time.Duration {
	s.mu.Lock()
	pending := s.pending
	s.mu.Unlock()
	d := time.Duration(pending) * s.cfg.Poll
	if d < 2*time.Second {
		d = 2 * time.Second
	}
	if d > 60*time.Second {
		d = 60 * time.Second
	}
	return d
}

// dispatchLoop moves pending jobs to workers: round-robin across tenants
// (fairness), token bucket per tenant (rate limits), least-loaded live
// engine-matched node (placement). It wakes on submissions, heartbeats,
// requeues, and a timer (rate-limit tokens refill with time).
func (s *Server) dispatchLoop() {
	defer s.wg.Done()
	tick := time.NewTicker(500 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-s.kick:
		case <-tick.C:
		}
		for s.dispatchOne() {
		}
	}
}

// dispatchOne dispatches at most one pending job, returning whether it
// made progress (the loop drains until it cannot).
func (s *Server) dispatchOne() bool {
	now := time.Now()
	s.mu.Lock()
	if s.pending == 0 || len(s.order) == 0 {
		s.mu.Unlock()
		return false
	}
	// Round-robin: first tenant with pending work AND an available token.
	var (
		q      *tenantQueue
		tenant string
	)
	for i := 0; i < len(s.order); i++ {
		cand := s.order[(s.rr+i)%len(s.order)]
		cq := s.tenants[cand]
		if len(cq.pending) == 0 {
			continue
		}
		if !cq.take(s.cfg.TenantRate, s.cfg.TenantBurst, now) {
			continue
		}
		q, tenant = cq, cand
		s.rr = (s.rr + i + 1) % len(s.order)
		break
	}
	if q == nil {
		s.mu.Unlock()
		return false
	}
	n := s.pickNodeLocked(now)
	if n == nil {
		// Token spent with no node up — harmless, the bucket refills.
		s.mu.Unlock()
		return false
	}
	id := q.pending[0]
	q.pending = q.pending[1:]
	s.pending--
	nodeID, nodeAddr := n.mf.ID, n.mf.Addr
	s.mu.Unlock()

	if err := s.dispatch(id, nodeID, nodeAddr); err != nil {
		s.log.Warn("dispatch failed", "job", id, "node", nodeID, "tenant", tenant, "error", err)
		// Put the job back at the head of its lane and back the node off
		// briefly (a 429 already set a longer window from Retry-After) so
		// the next attempt prefers a different worker — a draining or
		// unreachable node with stale-fresh heartbeats must not wedge the
		// queue.
		s.mu.Lock()
		if n, ok := s.nodes[nodeID]; ok {
			if until := time.Now().Add(time.Second); n.unavailableUntil.Before(until) {
				n.unavailableUntil = until
			}
		}
		if q2, ok := s.tenants[tenant]; ok {
			q2.pending = append([]string{id}, q2.pending...)
			s.pending++
		}
		s.mu.Unlock()
		return false
	}
	s.publishGauges()
	return true
}

// pickNodeLocked selects the dispatch target: live, not draining, engine
// matched, past any 429 backoff, lowest load (in-flight from this
// coordinator plus the node's own reported queue+active). Caller holds
// s.mu.
func (s *Server) pickNodeLocked(now time.Time) *node {
	var best *node
	bestLoad := 0
	for _, n := range s.liveNodesLocked(now) {
		if n.mf.Stats.Draining || n.mf.Engine != serve.EngineVersion {
			continue
		}
		if now.Before(n.unavailableUntil) {
			continue
		}
		load := len(n.jobs) + n.mf.Stats.QueueDepth + n.mf.Stats.ActiveJobs
		if best == nil || load < bestLoad {
			best, bestLoad = n, load
		}
	}
	return best
}

// dispatch submits the coordinator job to a worker and attaches its
// watcher. The remote spec is the original submission with the design
// reconstructed from the CAS blob (uploads are stored once, not copied
// into every manifest) and any mirrored checkpoint embedded so a failover
// resumes mid-flow.
func (s *Server) dispatch(id, nodeID, nodeAddr string) error {
	t0 := time.Now()
	m, err := s.spool.ReadManifest(id)
	if err != nil {
		return err
	}
	if m.State.Terminal() { // canceled while pending
		return nil
	}
	spec := m.Spec
	if strings.HasPrefix(m.DesignDigest, "sha256-") && spec.Profile == "" && len(spec.Bookshelf) == 0 {
		blob, err := s.store.Blob(cas.Digest(m.DesignDigest))
		if err != nil {
			return fmt.Errorf("design blob %s: %w", m.DesignDigest, err)
		}
		files, err := cas.DecodeBookshelf(blob)
		if err != nil {
			return err
		}
		spec.Bookshelf = files
	}
	// A mirrored checkpoint (from a previous attempt on a dead worker)
	// seeds the new worker's spool so the flow resumes, not restarts.
	if ckpt, err := os.ReadFile(s.spool.CheckpointPath(id)); err == nil && len(ckpt) > 0 {
		spec.Checkpoint = ckpt
	}

	rt := s.jobRuntime(m)
	dspan := rt.span.Child("coord.dispatch")
	dspan.SetArg("node", nodeID)

	body, err := json.Marshal(spec)
	if err != nil {
		dspan.End()
		return err
	}
	req, err := http.NewRequestWithContext(s.baseCtx, http.MethodPost,
		nodeAddr+"/api/v1/jobs", bytes.NewReader(body))
	if err != nil {
		dspan.End()
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	// The worker's tracer parents under the coordinator's dispatch span,
	// which itself carries the client's trace ID — one merged trace.
	if tc := dspan.TraceContext(); tc.Valid() {
		req.Header.Set(obs.TraceparentHeader, tc.Traceparent())
	}
	resp, err := s.client.Do(req)
	if err != nil {
		dspan.End()
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		retry, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
		if retry <= 0 {
			retry = 2
		}
		s.mu.Lock()
		if n, ok := s.nodes[nodeID]; ok {
			n.unavailableUntil = time.Now().Add(time.Duration(retry) * time.Second)
		}
		s.mu.Unlock()
		dspan.End()
		return fmt.Errorf("worker %s backpressured (Retry-After %ds)", nodeID, retry)
	}
	if resp.StatusCode != http.StatusAccepted {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		dspan.End()
		return fmt.Errorf("worker %s answered %d: %s", nodeID, resp.StatusCode, bytes.TrimSpace(msg))
	}
	var remote serve.Manifest
	if err := json.NewDecoder(resp.Body).Decode(&remote); err != nil {
		dspan.End()
		return fmt.Errorf("decode worker response: %w", err)
	}
	dspan.End()
	s.hDispatch.ObserveSince(t0)

	now := time.Now()
	updated, err := s.spool.Update(id, func(mm *serve.Manifest) error {
		mm.State = serve.StateRunning
		mm.Node = nodeID
		mm.NodeAddr = nodeAddr
		mm.RemoteID = remote.ID
		mm.Attempts++
		mm.StartedAt = &now
		return nil
	})
	if err != nil {
		return err
	}
	s.mu.Lock()
	if n, ok := s.nodes[nodeID]; ok {
		n.jobs[id] = struct{}{}
	}
	s.mu.Unlock()
	s.reg.Counter("coord.jobs_dispatched_total").Inc()
	s.log.Info("job dispatched", "job", id, "node", nodeID, "remote", remote.ID, "attempt", updated.Attempts)
	s.attachWatcher(updated)
	return nil
}

// jobRuntime returns (creating if needed) the job's in-memory runtime.
// The tracer adopts the submission's traceparent so coordinator spans join
// the client's trace; the root span opens at submission time.
func (s *Server) jobRuntime(m *serve.Manifest) *coordJob {
	s.mu.Lock()
	defer s.mu.Unlock()
	rt, ok := s.jobs[m.ID]
	if !ok {
		var tc obs.TraceContext
		if m.TraceParent != "" {
			tc, _ = obs.ParseTraceparent(m.TraceParent)
		}
		tracer := obs.NewTracerWith(tc)
		span := tracer.StartSpanAt("coord.job", m.SubmittedAt)
		span.SetArg("job", m.ID)
		rt = &coordJob{tracer: tracer, span: span}
		s.jobs[m.ID] = rt
	}
	return rt
}

// attachWatcher starts (or restarts) the job's remote watcher.
func (s *Server) attachWatcher(m *serve.Manifest) {
	rt := s.jobRuntime(m)
	ctx, cancel := context.WithCancel(s.baseCtx)
	s.mu.Lock()
	if rt.cancel != nil {
		rt.cancel()
	}
	rt.cancel = cancel
	s.mu.Unlock()
	s.wg.Add(1)
	go s.watch(ctx, m.ID)
}

// watchFailLimit is how many consecutive failed polls a watcher tolerates
// before treating the node as gone (backup for the heartbeat monitor —
// a node can heartbeat while its job API wedges).
const watchFailLimit = 5

// watch polls the job's remote manifest until it reaches a terminal
// state, mirroring progress into the coordinator spool:
//
//   - the remote Stage is copied, and on every stage advance the remote
//     checkpoint.json artifact is mirrored locally — the raw material for
//     failover re-admission on a different worker
//   - terminal states finalize the job (fetch result + artifacts, write
//     the merged trace, record the result in the CAS index)
//   - a poll failure streak hands the job to requeue (failover)
func (s *Server) watch(ctx context.Context, id string) {
	defer s.wg.Done()
	tick := time.NewTicker(s.cfg.Poll)
	defer tick.Stop()
	fails := 0
	lastStage := ""
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		m, err := s.spool.ReadManifest(id)
		if err != nil || m.State.Terminal() {
			return
		}
		remote, err := s.fetchRemoteManifest(ctx, m)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			fails++
			if fails >= watchFailLimit {
				s.log.Warn("worker unresponsive; failing job over", "job", id, "node", m.Node, "polls", fails)
				s.requeue(id, "watcher lost worker "+m.Node)
				return
			}
			continue
		}
		fails = 0
		if remote.Stage != "" && remote.Stage != lastStage {
			lastStage = remote.Stage
			s.mirrorCheckpoint(ctx, m)
			s.spool.Update(id, func(mm *serve.Manifest) error {
				mm.Stage = remote.Stage
				return nil
			})
		}
		switch {
		case remote.State == serve.StateDone:
			s.finalize(ctx, m, remote)
			return
		case remote.State == serve.StateFailed || remote.State == serve.StateCanceled:
			s.finish(m, remote.State, remote.Error, remote.Result, "")
			return
		case remote.State == serve.StateParked:
			// The worker is draining; its own next boot would resume the
			// job, but the fleet answer is to move it now.
			s.log.Info("worker parked job; failing over", "job", id, "node", m.Node)
			s.requeue(id, "worker "+m.Node+" draining")
			return
		}
	}
}

// fetchRemoteManifest reads the job's manifest from its worker.
func (s *Server) fetchRemoteManifest(ctx context.Context, m *serve.Manifest) (*serve.Manifest, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		m.NodeAddr+"/api/v1/jobs/"+m.RemoteID, nil)
	if err != nil {
		return nil, err
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("worker answered %d", resp.StatusCode)
	}
	remote := &serve.Manifest{}
	if err := json.NewDecoder(resp.Body).Decode(remote); err != nil {
		return nil, err
	}
	return remote, nil
}

// mirrorCheckpoint best-effort copies the remote checkpoint.json into the
// coordinator's job dir. Failure is tolerable: failover then falls back
// to a cold rerun, which the engine's bit-determinism still lands on the
// exact same result, just slower.
func (s *Server) mirrorCheckpoint(ctx context.Context, m *serve.Manifest) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		m.NodeAddr+"/api/v1/jobs/"+m.RemoteID+"/artifacts/checkpoint.json", nil)
	if err != nil {
		return
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil || len(data) == 0 {
		return
	}
	if err := s.spool.WriteArtifact(m.ID, "checkpoint.json", data); err != nil {
		s.log.Warn("checkpoint mirror failed", "job", m.ID, "error", err)
	}
}

// requeue returns a dispatched job to its tenant queue for another
// worker. The mirrored checkpoint (if any) rides along on the next
// dispatch, so the job resumes from its last stage boundary.
func (s *Server) requeue(id, why string) {
	s.detachNode(id)
	m, err := s.spool.Update(id, func(mm *serve.Manifest) error {
		if mm.State.Terminal() {
			return fmt.Errorf("job %s already %s", id, mm.State)
		}
		mm.State = serve.StateQueued
		mm.Node = ""
		mm.NodeAddr = ""
		mm.RemoteID = ""
		mm.StartedAt = nil
		return nil
	})
	if err != nil {
		return
	}
	s.reg.Counter("coord.jobs_failed_over").Inc()
	s.log.Info("job requeued", "job", id, "reason", why, "stage", m.Stage)
	s.enqueue(m)
}

// detachNode removes the job from its node's in-flight set and cancels
// its watcher registration.
func (s *Server) detachNode(id string) {
	s.mu.Lock()
	for _, n := range s.nodes {
		delete(n.jobs, id)
	}
	s.mu.Unlock()
}

// finalize completes a job whose worker finished it: artifacts and the
// result are pulled into the coordinator spool (the worker may be
// ephemeral), the client→coordinator→worker trace is merged, the result
// is recorded in the CAS index, and the design ref is released.
func (s *Server) finalize(ctx context.Context, m *serve.Manifest, remote *serve.Manifest) {
	if remote.Result != nil {
		for _, name := range remote.Result.Artifacts {
			s.fetchArtifact(ctx, m, name)
		}
	}
	s.mergeTrace(m)

	// The result digest must land in the same manifest write as the
	// terminal state: clients poll for done and read the digest in the
	// same response, so a two-step write would expose a done job with an
	// empty digest.
	var rd cas.Digest
	if remote.Result != nil && m.DesignDigest != "" && m.ConfigDigest != "" {
		if canon, err := json.Marshal(canonicalResult(remote.Result)); err == nil {
			rd = cas.Sum(canon)
		}
	}
	s.finish(m, serve.StateDone, "", remote.Result, string(rd))

	if rd != "" {
		err := s.store.PutResult(cas.ResultEntry{
			Design:       cas.Digest(m.DesignDigest),
			Config:       cas.Digest(m.ConfigDigest),
			Engine:       serve.EngineVersion,
			Job:          m.ID,
			ResultDigest: rd,
			HPWL:         remote.Result.HPWL,
		})
		if err != nil {
			s.log.Warn("result cache record failed", "job", m.ID, "error", err)
		}
	}
}

// canonicalResult strips the wall-clock field from a result copy so the
// result digest covers only the deterministic payload — two runs of the
// same (design, config, engine) triple must hash identically even though
// their runtimes differ.
func canonicalResult(r *serve.JobResult) serve.JobResult {
	c := *r
	c.RuntimeMS = 0
	return c
}

// finish writes the terminal state (and result digest, when the job has
// one) in a single manifest update and tears down the job's runtime.
func (s *Server) finish(m *serve.Manifest, state serve.JobState, errMsg string, result *serve.JobResult, resultDigest string) {
	s.detachNode(m.ID)
	now := time.Now()
	s.spool.Update(m.ID, func(mm *serve.Manifest) error {
		mm.State = state
		mm.Error = errMsg
		mm.FinishedAt = &now
		mm.Result = result
		if resultDigest != "" {
			mm.ResultDigest = resultDigest
		}
		return nil
	})
	if m.DesignDigest != "" && strings.HasPrefix(m.DesignDigest, "sha256-") && len(m.Spec.Bookshelf) == 0 && m.Spec.Profile == "" {
		if err := s.store.Release(cas.Digest(m.DesignDigest)); err != nil {
			s.log.Warn("design blob release failed", "job", m.ID, "error", err)
		}
	}
	s.mu.Lock()
	rt := s.jobs[m.ID]
	if rt != nil && rt.cancel != nil {
		rt.cancel()
		rt.cancel = nil
	}
	s.mu.Unlock()
	switch state {
	case serve.StateDone:
		s.reg.Counter("coord.jobs_done").Inc()
	case serve.StateFailed:
		s.reg.Counter("coord.jobs_failed").Inc()
	case serve.StateCanceled:
		s.reg.Counter("coord.jobs_canceled").Inc()
	}
	s.log.Info("job finished", "job", m.ID, "state", state)
	s.publishGauges()
}

// fetchArtifact mirrors one remote artifact into the coordinator job dir.
func (s *Server) fetchArtifact(ctx context.Context, m *serve.Manifest, name string) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		m.NodeAddr+"/api/v1/jobs/"+m.RemoteID+"/artifacts/"+name, nil)
	if err != nil {
		return
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return
	}
	if err := s.spool.WriteArtifact(m.ID, name, data); err != nil {
		s.log.Warn("artifact mirror failed", "job", m.ID, "artifact", name, "error", err)
	}
}

// mergeTrace ends the job's coordinator span and overwrites the mirrored
// trace.json with the coordinator + worker merge. MergeChromeTraces
// output is itself a valid trace part, so pufferctl's client-side merge
// composes on top — one trace ID from terminal to worker pipeline.
func (s *Server) mergeTrace(m *serve.Manifest) {
	s.mu.Lock()
	rt := s.jobs[m.ID]
	s.mu.Unlock()
	if rt == nil {
		return
	}
	rt.span.End()
	var coordPart bytes.Buffer
	if err := rt.tracer.WriteJSON(&coordPart); err != nil {
		return
	}
	path, err := s.spool.ArtifactPath(m.ID, "trace.json")
	if err != nil {
		return
	}
	parts := []obs.TracePart{{Process: "puffer-coordinator", Data: coordPart.Bytes()}}
	if workerTrace, err := os.ReadFile(path); err == nil && len(workerTrace) > 0 {
		parts = append(parts, obs.TracePart{Process: "pufferd-worker", Data: workerTrace})
	}
	var merged bytes.Buffer
	if err := obs.MergeChromeTraces(&merged, parts...); err != nil {
		return
	}
	if err := s.spool.WriteArtifact(m.ID, "trace.json", merged.Bytes()); err != nil {
		s.log.Warn("trace merge write failed", "job", m.ID, "error", err)
	}
}

// monitorLoop watches heartbeat ages: jobs on a node that stopped
// heartbeating fail over without waiting for their watchers' poll-failure
// streaks (the watcher path still exists for nodes that heartbeat but
// wedge their job API).
func (s *Server) monitorLoop() {
	defer s.wg.Done()
	interval := s.cfg.DeadAfter / 4
	if interval < 250*time.Millisecond {
		interval = 250 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-tick.C:
		}
		now := time.Now()
		var orphans []string
		s.mu.Lock()
		for _, n := range s.nodes {
			age := now.Sub(n.lastSeen)
			s.hHeartbeat.Observe(age.Seconds())
			if age > s.cfg.DeadAfter && len(n.jobs) > 0 {
				s.log.Warn("node heartbeat expired", "node", n.mf.ID,
					"age", age.Round(time.Millisecond), "jobs", len(n.jobs))
				for id := range n.jobs {
					orphans = append(orphans, id)
				}
				n.jobs = make(map[string]struct{})
			}
		}
		s.mu.Unlock()
		for _, id := range orphans {
			s.requeue(id, "node heartbeat expired")
		}
		s.publishGauges()
	}
}
