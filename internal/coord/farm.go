package coord

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	puffer "puffer"
	"puffer/internal/cas"
	"puffer/internal/explore"
	"puffer/internal/obs"
	"puffer/internal/padding"
	"puffer/internal/serve"
	"puffer/internal/xfarm"
)

// The exploration farm: a Distributed explore job does not dispatch to a
// worker — it runs as an xfarm controller inside the coordinator, and every
// TPE trial the controller schedules is submitted back through the normal
// fleet admission path as its own place job. Trials therefore get the full
// fleet treatment for free: content-addressed result caching (identical
// trial configs dedupe, and a resumed exploration re-runs zero finished
// placements), least-loaded engine-matched dispatch, checkpoint-mirrored
// failover, and SSE progress the controller taps for early-stop samples.
//
// Durability: the controller checkpoints a puffer/explore-state/v1 manifest
// into the exploration job's artifact dir after every observation. A
// SIGKILLed coordinator restarts the controller from that artifact at boot
// (recover), finished trials replay or cache-hit, and in-flight trials
// re-attach to their still-running jobs by ID.

// ExploreStateArtifact is the spooled checkpoint name of a distributed
// exploration (downloadable like any other artifact).
const ExploreStateArtifact = "explore-state.json"

// errFarmCanceled marks a client-initiated exploration cancel, so shutdown
// (which parks the farm for resume) and cancel (terminal) are told apart.
var errFarmCanceled = errors.New("exploration canceled by client")

// farm is the in-memory runtime of one distributed exploration.
type farm struct {
	id     string
	hub    *serve.Hub // trial lifecycle + sample + log events for watchers
	cancel context.CancelCauseFunc
}

// farmSink forwards the controller's metric samples (explore.trial.score,
// explore.best_score, xfarm.* counters) to the exploration's event hub.
type farmSink struct{ h *serve.Hub }

func (s farmSink) Observe(series string, sm obs.Sample) {
	s.h.Publish(serve.Event{Type: "sample", Series: series, Step: sm.Step, Value: sm.Value})
}

func (s farmSink) Flush() error { return nil }

// startFarm launches (or at boot, resumes) the controller goroutine for a
// Distributed exploration manifest.
func (s *Server) startFarm(m *serve.Manifest) {
	ctx, cancel := context.WithCancelCause(s.baseCtx)
	f := &farm{id: m.ID, hub: serve.NewHub(), cancel: cancel}
	s.mu.Lock()
	s.farms[m.ID] = f
	n := len(s.farms)
	s.mu.Unlock()
	s.reg.Gauge("coord.farms_active").Set(float64(n))
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.runFarm(ctx, f)
	}()
}

// removeFarm drops the farm runtime (the hub is closed by the caller).
func (s *Server) removeFarm(id string) {
	s.mu.Lock()
	delete(s.farms, id)
	n := len(s.farms)
	s.mu.Unlock()
	s.reg.Gauge("coord.farms_active").Set(float64(n))
}

// lookupFarm returns the live controller runtime for a job, or nil.
func (s *Server) lookupFarm(id string) *farm {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.farms[id]
}

// runFarm drives one exploration to a terminal state (or parks it for the
// next boot when the coordinator itself shuts down mid-run).
func (s *Server) runFarm(ctx context.Context, f *farm) {
	start := time.Now()
	m, err := s.spool.Update(f.id, func(mm *serve.Manifest) error {
		if mm.State.Terminal() { // canceled before the controller started
			return fmt.Errorf("exploration %s already %s", mm.ID, mm.State)
		}
		mm.State = serve.StateRunning
		mm.Attempts++
		now := time.Now()
		mm.StartedAt = &now
		return nil
	})
	if err != nil {
		s.removeFarm(f.id)
		f.hub.Close()
		return
	}
	f.hub.Publish(serve.Event{Type: "state", State: serve.StateRunning})

	// A spooled checkpoint from an interrupted attempt resumes the schedule.
	var prev *xfarm.State
	if path, perr := s.spool.ArtifactPath(f.id, ExploreStateArtifact); perr == nil {
		if data, rerr := os.ReadFile(path); rerr == nil {
			st, serr := xfarm.ParseState(data)
			switch {
			case serr != nil:
				s.log.Warn("explore checkpoint unreadable; starting fresh", "job", f.id, "error", serr)
			case st.Seed != m.Spec.Seed || st.Budget != m.Spec.Budget:
				s.log.Warn("explore checkpoint is for a different run; starting fresh",
					"job", f.id, "seed", st.Seed, "budget", st.Budget)
			default:
				prev = st
				s.log.Info("resuming exploration from checkpoint",
					"job", f.id, "attempt", st.Attempts+1, "trials", len(st.Trials))
			}
		}
	}

	var priors []explore.Observation
	var seedRanges map[string]explore.Range
	if m.Spec.WarmStart {
		priors, seedRanges = s.warmPriors(m)
		if len(priors) > 0 {
			s.log.Info("warm-starting exploration", "job", f.id,
				"priors", len(priors), "seeded_ranges", len(seedRanges))
		}
	}

	rec := obs.NewRecorder(nil, obs.NewRegistry(farmSink{f.hub}))
	res, runErr := xfarm.Run(ctx, xfarm.Config{
		Params:       puffer.StrategyParams(),
		Budget:       m.Spec.Budget,
		Seed:         m.Spec.Seed,
		DesignDigest: m.DesignDigest,
		Job:          m.ID,
		EarlyStop:    m.Spec.EarlyStop,
		Margin:       s.cfg.EarlyStopMargin,
		WarmStart:    m.Spec.WarmStart,
		Priors:       priors,
		SeedRanges:   seedRanges,
		Backend:      &farmBackend{s: s, parent: m},
		Checkpoint: func(st *xfarm.State) error {
			data, err := st.Encode()
			if err != nil {
				return err
			}
			return s.spool.WriteArtifact(m.ID, ExploreStateArtifact, data)
		},
		Logf: func(format string, args ...any) {
			f.hub.Publish(serve.Event{Type: "log", Line: fmt.Sprintf(format, args...)})
		},
		Obs: rec,
	}, prev)

	if runErr != nil {
		s.removeFarm(f.id)
		switch {
		case ctx.Err() != nil && errors.Is(context.Cause(ctx), errFarmCanceled):
			s.finish(m, serve.StateCanceled, errFarmCanceled.Error(), nil, "")
			f.hub.Publish(serve.Event{Type: "state", State: serve.StateCanceled, Error: errFarmCanceled.Error()})
		case ctx.Err() != nil:
			// Coordinator shutdown: leave the manifest running — the next
			// boot restarts the controller from the last checkpoint.
			s.log.Info("exploration parked by shutdown", "job", f.id)
		default:
			s.finish(m, serve.StateFailed, runErr.Error(), nil, "")
			f.hub.Publish(serve.Event{Type: "state", State: serve.StateFailed, Error: runErr.Error()})
		}
		f.hub.Close()
		return
	}

	final := padding.DefaultStrategy()
	puffer.ApplyAssignment(&final, res.Final)
	if data, err := json.MarshalIndent(final, "", "  "); err == nil {
		if werr := s.spool.WriteArtifact(m.ID, "strategy.json", append(data, '\n')); werr != nil {
			s.log.Warn("strategy artifact write failed", "job", f.id, "error", werr)
		}
	}
	result := &serve.JobResult{
		Trials:    res.Trials,
		BestScore: res.BestScore,
		RuntimeMS: float64(time.Since(start)) / float64(time.Millisecond),
		Artifacts: []string{ExploreStateArtifact, "strategy.json"},
	}

	// Only deterministic explorations land in the result cache: early stop
	// and warm start both make the scores depend on fleet timing or spool
	// history, so their results must never answer a future submission.
	var rd cas.Digest
	if !m.Spec.EarlyStop && !m.Spec.WarmStart && m.DesignDigest != "" && m.ConfigDigest != "" {
		if canon, err := json.Marshal(canonicalResult(result)); err == nil {
			rd = cas.Sum(canon)
		}
	}
	s.removeFarm(f.id)
	s.finish(m, serve.StateDone, "", result, string(rd))
	if rd != "" {
		if err := s.store.PutResult(cas.ResultEntry{
			Design:       cas.Digest(m.DesignDigest),
			Config:       cas.Digest(m.ConfigDigest),
			Engine:       serve.EngineVersion,
			Job:          m.ID,
			ResultDigest: rd,
		}); err != nil {
			s.log.Warn("result cache record failed", "job", m.ID, "error", err)
		}
	}
	s.reg.Counter("coord.explorations_done").Inc()
	s.log.Info("exploration finished", "job", f.id, "trials", res.Trials,
		"best_score", res.BestScore, "cache_hits", res.CacheHits,
		"replayed", res.Replayed, "canceled", res.Canceled,
		"attempts", res.State.Attempts)
	f.hub.Publish(serve.Event{Type: "state", State: serve.StateDone})
	f.hub.Close()
}

// warmPriorCap bounds how many prior observations seed a warm start — the
// best few shape TPE's good/bad split; hundreds would drown the new run.
const warmPriorCap = 16

// warmPriors scans the spool for the most recent finished distributed
// exploration of the same design family (same synthetic profile, or the
// byte-identical uploaded design) and returns its best observations as TPE
// priors plus its final merged ranges as the starting search intervals.
func (s *Server) warmPriors(m *serve.Manifest) ([]explore.Observation, map[string]explore.Range) {
	all, err := s.spool.List()
	if err != nil {
		return nil, nil
	}
	var newest *serve.Manifest
	for _, c := range all {
		if c.ID == m.ID || c.State != serve.StateDone ||
			c.Spec.Kind != serve.KindExplore || !c.Spec.Distributed {
			continue
		}
		if !sameDesignFamily(c, m) {
			continue
		}
		if newest == nil || c.SubmittedAt.After(newest.SubmittedAt) {
			newest = c
		}
	}
	if newest == nil {
		return nil, nil
	}
	path, err := s.spool.ArtifactPath(newest.ID, ExploreStateArtifact)
	if err != nil {
		return nil, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil
	}
	st, err := xfarm.ParseState(data)
	if err != nil {
		s.log.Warn("warm-start donor state unreadable", "donor", newest.ID, "error", err)
		return nil, nil
	}
	var priors []explore.Observation
	for _, t := range st.Trials {
		if t.State != xfarm.TrialDone {
			continue
		}
		priors = append(priors, explore.Observation{X: explore.Assignment(t.X), Y: t.Score})
	}
	sort.Slice(priors, func(i, j int) bool { return priors[i].Y < priors[j].Y })
	if len(priors) > warmPriorCap {
		priors = priors[:warmPriorCap]
	}
	var ranges map[string]explore.Range
	if len(st.Ranges) > 0 {
		ranges = make(map[string]explore.Range, len(st.Ranges))
		for name, r := range st.Ranges {
			ranges[name] = explore.Range{Lo: r.Lo, Hi: r.Hi}
		}
	}
	return priors, ranges
}

// sameDesignFamily reports whether two exploration manifests tuned the same
// design family: profile jobs match on the profile name (any scale/seed —
// the paper tunes on a small instance and applies the strategy to larger
// ones), uploads only on the identical design blob.
func sameDesignFamily(a, b *serve.Manifest) bool {
	if b.Spec.Profile != "" {
		return a.Spec.Profile == b.Spec.Profile
	}
	return a.DesignDigest != "" && a.DesignDigest == b.DesignDigest
}

// farmBackend implements xfarm.Backend over the coordinator's own
// admission, spool, and proxy machinery.
type farmBackend struct {
	s      *Server
	parent *serve.Manifest
}

// Submit turns one TPE trial into a place job: the parent exploration's
// design, the candidate strategy as the job's strategy document, and the
// evaluation-routing stage appended so the job's result carries the
// objective (HOF + VOF) the sampler scores.
func (b *farmBackend) Submit(ctx context.Context, t explore.Trial) (string, error) {
	strat := padding.DefaultStrategy()
	puffer.ApplyAssignment(&strat, t.X)
	sj, err := json.Marshal(strat)
	if err != nil {
		return "", err
	}
	spec := serve.JobSpec{
		Kind:       serve.KindPlace,
		Profile:    b.parent.Spec.Profile,
		Scale:      b.parent.Spec.Scale,
		Seed:       b.parent.Spec.Seed,
		MaxIters:   b.parent.Spec.MaxIters,
		Route:      true,
		Strategy:   sj,
		TimeoutSec: b.parent.Spec.TimeoutSec,
		// The parent's NoCache is deliberately NOT inherited: it bypasses
		// the exploration-level result cache (force a fresh controller
		// run), while per-trial dedupe through the result index is the
		// farm's architecture — it is what makes resume replays and
		// re-explorations of a known design family cheap.
	}
	m, err := b.s.admitTrial(b.parent, spec)
	if err != nil {
		return "", err
	}
	return m.ID, nil
}

// Await polls the trial's local manifest (the coordinator's watchers keep
// it current) until it is terminal.
func (b *farmBackend) Await(ctx context.Context, jobID string) (xfarm.TrialOutcome, error) {
	for {
		m, err := b.s.spool.ReadManifest(jobID)
		if err != nil {
			return xfarm.TrialOutcome{}, err
		}
		switch m.State {
		case serve.StateDone:
			res := m.Result
			if res == nil {
				res = b.s.resolveOrigin(m).Result
			}
			if res == nil {
				return xfarm.TrialOutcome{}, fmt.Errorf("trial %s finished without a result", jobID)
			}
			return xfarm.TrialOutcome{Score: res.HOF + res.VOF, CacheHit: m.CacheHit}, nil
		case serve.StateCanceled:
			return xfarm.TrialOutcome{Canceled: true}, nil
		case serve.StateFailed:
			return xfarm.TrialOutcome{}, fmt.Errorf("trial %s failed: %s", jobID, m.Error)
		}
		select {
		case <-ctx.Done():
			return xfarm.TrialOutcome{}, context.Cause(ctx)
		case <-time.After(b.s.cfg.Poll):
		}
	}
}

// Cancel requests mid-flight cancellation of a dominated trial.
func (b *farmBackend) Cancel(jobID, reason string) error {
	return b.s.cancelJob(jobID, reason)
}

// WatchOverflow streams the trial's place.overflow samples from its
// worker's SSE feed. A stream that ends without the job being terminal
// (worker died, failover in progress) re-attaches to wherever the job
// lands next.
func (b *farmBackend) WatchOverflow(ctx context.Context, jobID string, fn func(step int, overflow float64)) {
	for ctx.Err() == nil {
		m, err := b.s.spool.ReadManifest(jobID)
		if err != nil || m.State.Terminal() {
			return
		}
		if m.NodeAddr != "" && m.RemoteID != "" {
			b.streamOverflow(ctx, m.NodeAddr+"/api/v1/jobs/"+m.RemoteID+"/events", fn)
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(b.s.cfg.Poll):
		}
	}
}

// streamOverflow reads one worker SSE stream, forwarding overflow samples.
func (b *farmBackend) streamOverflow(ctx context.Context, url string, fn func(int, float64)) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return
	}
	// Streaming call: bypass the default client timeout.
	client := &http.Client{Transport: b.s.client.Transport}
	resp, err := client.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var e serve.Event
		if json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &e) != nil {
			continue
		}
		if e.Type == "sample" && e.Series == "place.overflow" {
			fn(e.Step, e.Value)
		}
	}
}

// admitTrial is the internal admission path for farm trial jobs: the same
// content addressing and result-cache check as handleSubmit, minus the HTTP
// concerns, the pending cap (the controller self-limits at one in-flight
// trial per relevance group), and spec validation (the spec is built here,
// not received). The trial manifest carries Parent for provenance.
func (s *Server) admitTrial(parent *serve.Manifest, spec serve.JobSpec) (*serve.Manifest, error) {
	spec.Normalize()
	configDigest, err := cas.Config{
		Kind:     spec.Kind,
		MaxIters: spec.MaxIters,
		Route:    spec.Route,
		Budget:   spec.Budget,
		Seed:     spec.Seed,
		Strategy: spec.Strategy,
	}.Digest()
	if err != nil {
		return nil, err
	}
	m := &serve.Manifest{
		ID:           serve.NewJobID(),
		Spec:         spec,
		State:        serve.StateQueued,
		Tenant:       parent.Tenant,
		Parent:       parent.ID,
		DesignDigest: parent.DesignDigest,
		ConfigDigest: string(configDigest),
		SubmittedAt:  time.Now().UTC(),
		TraceParent:  parent.TraceParent,
	}
	if !spec.NoCache {
		if hit, ok := s.cacheHit(cas.Digest(parent.DesignDigest), configDigest); ok {
			now := time.Now()
			m.State = serve.StateDone
			m.CacheHit = true
			m.Origin = hit.Job
			m.ResultDigest = string(hit.ResultDigest)
			m.FinishedAt = &now
			if origin, err := s.spool.ReadManifest(hit.Job); err == nil {
				m.Result = origin.Result
				m.Stage = origin.Stage
			}
			if err := s.spool.CreateJob(m); err != nil {
				return nil, err
			}
			s.reg.Counter("coord.cache_hits").Inc()
			s.reg.Counter("coord.trial_cache_hits").Inc()
			s.publishGauges()
			return m, nil
		}
	}
	s.reg.Counter("coord.cache_misses").Inc()
	if strings.HasPrefix(parent.DesignDigest, "sha256-") && spec.Profile == "" {
		// Uploaded design: the trial references the parent's blob, and its
		// own ref balances the Release in finish.
		if err := s.store.AddRef(cas.Digest(parent.DesignDigest)); err != nil {
			return nil, err
		}
	}
	if err := s.spool.CreateJob(m); err != nil {
		return nil, err
	}
	s.reg.Counter("coord.trials_submitted").Inc()
	s.enqueue(m)
	return m, nil
}

// farmEvents streams a distributed exploration's progress as SSE: the live
// controller's hub (replay + live) while it runs, or a single terminal
// state event once it is gone.
func (s *Server) farmEvents(w http.ResponseWriter, r *http.Request, m *serve.Manifest) {
	fl, ok := w.(http.Flusher)
	if !ok {
		apiError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	writeEvent := func(e serve.Event) bool {
		data, _ := json.Marshal(e)
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.Type, data); err != nil {
			return false
		}
		fl.Flush()
		return true
	}

	f := s.lookupFarm(m.ID)
	if f == nil {
		// No live controller: report the durable state (terminal, or parked
		// between shutdown and the next boot's resume).
		writeEvent(serve.Event{Seq: 1, Type: "state", State: m.State, Error: m.Error})
		return
	}
	replay, ch, cancel := f.hub.Subscribe()
	defer cancel()
	for _, e := range replay {
		if !writeEvent(e) {
			return
		}
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case e, chOk := <-ch:
			if !chOk {
				// Stream closed: surface the terminal state the runFarm
				// goroutine just wrote.
				if mm, err := s.spool.ReadManifest(m.ID); err == nil && mm.State.Terminal() {
					writeEvent(serve.Event{Type: "state", State: mm.State, Error: mm.Error})
				}
				return
			}
			if !writeEvent(e) {
				return
			}
		}
	}
}
