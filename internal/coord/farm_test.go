package coord

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"testing"
	"time"

	"puffer/internal/serve"
	"puffer/internal/xfarm"
)

// exploreSpec is a distributed exploration small enough for a test fleet:
// budget 1 means Algorithm 3 runs exactly 1 + 2 rounds × 5 groups × 1 = 11
// trials, each a capped place+route of the small MEDIA_SUBSYS instance.
func exploreSpec() serve.JobSpec {
	s := serve.JobSpec{
		Kind:        serve.KindExplore,
		Profile:     "MEDIA_SUBSYS",
		Scale:       3000,
		Seed:        7,
		Budget:      1,
		MaxIters:    30,
		Distributed: true,
	}
	s.Normalize()
	return s
}

const exploreTrials = 11 // budget + rounds×groups×budget = 1 + 2×5×1

// countTrials tallies the coordinator-spooled trial jobs of one exploration.
func countTrials(t *testing.T, s *Server, parent string) (placed, cached int) {
	t.Helper()
	all, err := s.spool.List()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range all {
		if m.Parent != parent {
			continue
		}
		if m.CacheHit {
			cached++
		} else {
			placed++
		}
	}
	return placed, cached
}

// TestDistributedExploration runs a full exploration farm over two live
// workers: every trial dispatches as its own place job, the tuned strategy
// and the explore-state checkpoint come back as artifacts, and a repeat
// submission answers from the result cache without re-running anything.
func TestDistributedExploration(t *testing.T) {
	if testing.Short() {
		t.Skip("farm integration test")
	}
	w1 := newFleetWorker(t, "w1")
	w2 := newFleetWorker(t, "w2")
	cs, ch := newCoordinator(t, Config{})
	w1.register(t, ch.URL)
	w2.register(t, ch.URL)

	m := submit(t, ch.URL, exploreSpec(), nil)
	if m.State != serve.StateQueued && m.State != serve.StateRunning {
		t.Fatalf("exploration admitted in state %s", m.State)
	}
	done := waitCoordState(t, ch.URL, m.ID, serve.StateDone)
	if done.Result == nil || done.Result.Trials != exploreTrials {
		t.Fatalf("result = %+v, want %d trials", done.Result, exploreTrials)
	}
	if done.Result.BestScore >= xfarm.Infeasible {
		t.Fatalf("best score %g: every trial failed", done.Result.BestScore)
	}

	placed, cached := countTrials(t, cs, m.ID)
	if placed+cached != exploreTrials {
		t.Fatalf("spool holds %d trial jobs (placed %d, cached %d), want %d",
			placed+cached, placed, cached, exploreTrials)
	}

	// The checkpoint artifact must be a valid explore-state manifest with
	// every trial done.
	resp, err := http.Get(ch.URL + "/api/v1/jobs/" + m.ID + "/artifacts/" + ExploreStateArtifact)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explore-state artifact answered %d", resp.StatusCode)
	}
	st, err := xfarm.ParseState(data)
	if err != nil {
		t.Fatalf("explore-state artifact: %v", err)
	}
	if len(st.Trials) != exploreTrials || st.Attempts != 1 {
		t.Fatalf("state has %d trials, %d attempts; want %d trials, 1 attempt",
			len(st.Trials), st.Attempts, exploreTrials)
	}
	for _, tr := range st.Trials {
		if tr.State != xfarm.TrialDone {
			t.Fatalf("trial (round %d, group %q, index %d) ended %s", tr.Round, tr.Group, tr.Index, tr.State)
		}
	}

	// The tuned strategy artifact must decode as a strategy document.
	resp, err = http.Get(ch.URL + "/api/v1/jobs/" + m.ID + "/artifacts/strategy.json")
	if err != nil {
		t.Fatal(err)
	}
	data, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("strategy artifact answered %d", resp.StatusCode)
	}
	var strat map[string]any
	if err := json.Unmarshal(data, &strat); err != nil {
		t.Fatalf("strategy artifact: %v", err)
	}

	// A deterministic distributed exploration is cacheable: the identical
	// submission answers done immediately, no new trials.
	m2 := submit(t, ch.URL, exploreSpec(), nil)
	if !m2.CacheHit || m2.State != serve.StateDone || m2.Origin != m.ID {
		t.Fatalf("repeat exploration: cache_hit=%v state=%s origin=%s, want hit from %s",
			m2.CacheHit, m2.State, m2.Origin, m.ID)
	}
}

// TestDistributedExplorationResume interrupts a farm mid-run (coordinator
// drain — the graceful twin of SIGKILL, same spool-resume path) and
// restarts it on the same spool: the controller must resume from the
// explore-state checkpoint, replay finished trials through the result
// cache, and run every placement exactly once across both attempts.
func TestDistributedExplorationResume(t *testing.T) {
	if testing.Short() {
		t.Skip("farm integration test")
	}
	w1 := newFleetWorker(t, "w1")
	w2 := newFleetWorker(t, "w2")
	spoolDir := t.TempDir()
	cs1, ch1 := newCoordinator(t, Config{SpoolDir: spoolDir})
	w1.register(t, ch1.URL)
	w2.register(t, ch1.URL)

	spec := exploreSpec()
	spec.Seed = 11 // distinct schedule from the happy-path test
	m := submit(t, ch1.URL, spec, nil)

	// Wait until some trials have finished, then take the coordinator down
	// mid-exploration.
	deadline := time.Now().Add(90 * time.Second)
	for {
		placed, _ := countTrials(t, cs1, m.ID)
		doneTrials := 0
		all, _ := cs1.spool.List()
		for _, tm := range all {
			if tm.Parent == m.ID && tm.State == serve.StateDone {
				doneTrials++
			}
		}
		if doneTrials >= 2 && placed < exploreTrials {
			break
		}
		if placed+doneTrials >= exploreTrials || time.Now().After(deadline) {
			t.Skip("exploration finished before it could be interrupted")
		}
		time.Sleep(10 * time.Millisecond)
	}
	ch1.Close()
	if err := cs1.Close(); err != nil {
		t.Fatal(err)
	}
	mm, err := cs1.spool.ReadManifest(m.ID)
	if err != nil {
		t.Fatal(err)
	}
	if mm.State != serve.StateRunning {
		t.Fatalf("parked exploration is %s, want running (resumable)", mm.State)
	}

	// Restart on the same spool: recovery must restart the controller.
	cs2, ch2 := newCoordinator(t, Config{SpoolDir: spoolDir})
	if cs2.Recovered == 0 {
		t.Fatal("recovery found nothing to resume")
	}
	w1.register(t, ch2.URL)
	w2.register(t, ch2.URL)

	done := waitCoordState(t, ch2.URL, m.ID, serve.StateDone)
	if done.Result == nil || done.Result.Trials != exploreTrials {
		t.Fatalf("resumed result = %+v, want %d trials", done.Result, exploreTrials)
	}

	path, err := cs2.spool.ArtifactPath(m.ID, ExploreStateArtifact)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	st, err := xfarm.ParseState(data)
	if err != nil {
		t.Fatal(err)
	}
	if st.Attempts != 2 {
		t.Fatalf("state records %d attempts, want 2", st.Attempts)
	}

	// Every placement ran exactly once: trials finished before the restart
	// came back as result-cache hits, so non-cache-hit trial jobs across
	// both attempts must equal the schedule size exactly.
	placed, cached := countTrials(t, cs2, m.ID)
	if placed != exploreTrials {
		t.Fatalf("%d placements ran (plus %d cache hits), want exactly %d", placed, cached, exploreTrials)
	}
	if cached == 0 {
		t.Fatal("resume replayed no trials through the result cache")
	}
}
