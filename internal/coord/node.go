package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/url"
	"strings"
	"time"

	"puffer/internal/obs"
	"puffer/internal/serve"
)

// NodeManifestFormat identifies the node manifest JSON document version —
// the registration/heartbeat body a fleet worker posts to its coordinator.
const NodeManifestFormat = "puffer/node/v1"

// NodeManifest is one worker's self-description: identity, where the
// coordinator can reach its job API, which engine revision it runs, and a
// load snapshot. Workers post it on registration and then on every
// heartbeat; the stats ride along so dispatch decisions never need a
// reverse call into the worker.
type NodeManifest struct {
	Format string `json:"format"`
	// ID is the worker's stable node name (unique within the fleet).
	ID string `json:"id"`
	// Addr is the base URL of the worker's job API, e.g. "http://host:port".
	Addr string `json:"addr"`
	// Engine is the worker's serve.EngineVersion. The coordinator only
	// dispatches to engine-matched nodes — mixed-version fleets would break
	// the result cache's correctness contract.
	Engine string `json:"engine"`
	// Stats is the worker's load at heartbeat time.
	Stats serve.Stats `json:"stats"`
}

// ParseNodeManifest decodes and validates a node manifest. It is a pure
// function — rejection mutates no registry state — and rejects empty or
// truncated input, documents with unknown fields or trailing data, foreign
// format strings, missing IDs, IDs with path or control characters,
// unparsable or schemeless addresses, empty engine strings, and negative
// load figures. The fuzz target FuzzParseNodeManifest drives this.
func ParseNodeManifest(data []byte) (*NodeManifest, error) {
	if len(bytes.TrimSpace(data)) == 0 {
		return nil, fmt.Errorf("coord: node manifest is empty")
	}
	mf := &NodeManifest{}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(mf); err != nil {
		return nil, fmt.Errorf("coord: decode node manifest (truncated or not a node manifest?): %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("coord: node manifest has trailing data")
	}
	if mf.Format != NodeManifestFormat {
		return nil, fmt.Errorf("coord: node manifest format %q, want %q", mf.Format, NodeManifestFormat)
	}
	if mf.ID == "" || len(mf.ID) > 128 {
		return nil, fmt.Errorf("coord: node ID must be 1-128 characters")
	}
	for _, c := range mf.ID {
		if c <= ' ' || c == '/' || c == '\\' || c == 0x7f {
			return nil, fmt.Errorf("coord: node ID %q has unsafe characters", mf.ID)
		}
	}
	u, err := url.Parse(mf.Addr)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return nil, fmt.Errorf("coord: node addr %q is not an http(s) base URL", mf.Addr)
	}
	if mf.Engine == "" {
		return nil, fmt.Errorf("coord: node manifest has no engine version")
	}
	st := mf.Stats
	if st.QueueDepth < 0 || st.QueueCap < 0 || st.Workers < 0 || st.ActiveJobs < 0 {
		return nil, fmt.Errorf("coord: node stats have negative figures")
	}
	return mf, nil
}

// Announcer posts a worker's node manifest to a coordinator on an
// interval. It is the entire worker side of fleet membership: the job API
// itself is the unmodified single-node serve.Server.
type Announcer struct {
	// Coordinator is the coordinator's base URL.
	Coordinator string
	// Manifest is called per heartbeat so the load snapshot is fresh.
	Manifest func() NodeManifest
	// Interval is the heartbeat period (default 2s).
	Interval time.Duration
	// Client is the HTTP client (default: 5s-timeout client).
	Client *http.Client
	// Log receives announce failures (nil = silent).
	Log *slog.Logger
}

// Run heartbeats until ctx is canceled. The first announcement is
// immediate (registration); failures log and retry on the next tick —
// a worker outliving a coordinator restart re-registers by just
// continuing to heartbeat.
func (a *Announcer) Run(ctx context.Context) {
	interval := a.Interval
	if interval <= 0 {
		interval = 2 * time.Second
	}
	client := a.Client
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	log := a.Log
	if log == nil {
		log = obs.NopLogger()
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		if err := a.announce(ctx, client); err != nil && ctx.Err() == nil {
			log.Warn("fleet announce failed", "coordinator", a.Coordinator, "error", err)
		}
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
	}
}

func (a *Announcer) announce(ctx context.Context, client *http.Client) error {
	mf := a.Manifest()
	mf.Format = NodeManifestFormat
	body, err := json.Marshal(mf)
	if err != nil {
		return err
	}
	u := strings.TrimSuffix(a.Coordinator, "/") + "/api/v1/nodes"
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var msg bytes.Buffer
		msg.ReadFrom(http.MaxBytesReader(nil, resp.Body, 1024))
		return fmt.Errorf("coordinator answered %d: %s", resp.StatusCode, strings.TrimSpace(msg.String()))
	}
	return nil
}
