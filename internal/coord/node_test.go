package coord

import (
	"encoding/json"
	"strings"
	"testing"

	"puffer/internal/serve"
)

func validNodeManifest() string {
	return `{"format":"puffer/node/v1","id":"w1","addr":"http://127.0.0.1:7070",` +
		`"engine":"` + serve.EngineVersion + `",` +
		`"stats":{"draining":false,"queue_depth":0,"queue_cap":16,"workers":2,"active_jobs":0}}`
}

func TestParseNodeManifest(t *testing.T) {
	mf, err := ParseNodeManifest([]byte(validNodeManifest()))
	if err != nil {
		t.Fatalf("valid manifest rejected: %v", err)
	}
	if mf.ID != "w1" || mf.Addr != "http://127.0.0.1:7070" || mf.Stats.Workers != 2 {
		t.Fatalf("parsed %+v", mf)
	}

	cases := map[string]string{
		"empty":           "",
		"whitespace":      " \n\t",
		"truncated":       validNodeManifest()[:30],
		"trailing data":   validNodeManifest() + "{}",
		"not an object":   `42`,
		"unknown field":   strings.Replace(validNodeManifest(), `"id"`, `"bogus":1,"id"`, 1),
		"foreign format":  strings.Replace(validNodeManifest(), "puffer/node/v1", "puffer/job/v1", 1),
		"missing format":  strings.Replace(validNodeManifest(), `"format":"puffer/node/v1",`, "", 1),
		"empty id":        strings.Replace(validNodeManifest(), `"id":"w1"`, `"id":""`, 1),
		"id with slash":   strings.Replace(validNodeManifest(), `"id":"w1"`, `"id":"a/b"`, 1),
		"id with space":   strings.Replace(validNodeManifest(), `"id":"w1"`, `"id":"a b"`, 1),
		"id with newline": strings.Replace(validNodeManifest(), `"id":"w1"`, `"id":"a\nb"`, 1),
		"bare host addr":  strings.Replace(validNodeManifest(), "http://127.0.0.1:7070", "127.0.0.1:7070", 1),
		"ftp addr":        strings.Replace(validNodeManifest(), "http://127.0.0.1:7070", "ftp://x", 1),
		"empty addr":      strings.Replace(validNodeManifest(), "http://127.0.0.1:7070", "", 1),
		"empty engine":    strings.Replace(validNodeManifest(), serve.EngineVersion, "", 1),
		"negative depth":  strings.Replace(validNodeManifest(), `"queue_depth":0`, `"queue_depth":-1`, 1),
		"negative cap":    strings.Replace(validNodeManifest(), `"queue_cap":16`, `"queue_cap":-16`, 1),
	}
	for name, doc := range cases {
		if _, err := ParseNodeManifest([]byte(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// FuzzParseNodeManifest: never panic; accepted manifests must be
// internally consistent and survive a marshal round trip. Parsing is
// pure — a rejected heartbeat mutates no registry state by construction.
func FuzzParseNodeManifest(f *testing.F) {
	f.Add([]byte(validNodeManifest()))
	f.Add([]byte(""))
	f.Add([]byte(`{"format":"puffer/node/v1"}`))
	f.Add([]byte(`{"format":"other"}`))
	f.Add([]byte(`[]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		mf, err := ParseNodeManifest(data)
		if err != nil {
			return
		}
		if mf.ID == "" || mf.Addr == "" || mf.Engine == "" {
			t.Fatalf("accepted incomplete manifest %+v", mf)
		}
		if strings.ContainsAny(mf.ID, "/\\ \n\t") {
			t.Fatalf("accepted unsafe node ID %q", mf.ID)
		}
		out, err := json.Marshal(mf)
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		if _, err := ParseNodeManifest(out); err != nil {
			t.Fatalf("round trip rejected: %v\n%s", err, out)
		}
	})
}
