package coord

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"puffer/internal/serve"
)

// The coordinator's read path: local manifests are the source of truth
// for job state; running jobs additionally proxy live detail (events,
// artifacts) from the owning worker; finished jobs serve everything
// locally (artifacts were mirrored at finalize); cache-hit jobs resolve
// reads through their Origin job.

// loadManifest fetches the local manifest for the path's {id}.
func (s *Server) loadManifest(w http.ResponseWriter, r *http.Request) *serve.Manifest {
	id := r.PathValue("id")
	m, err := s.spool.ReadManifest(id)
	if err != nil {
		apiError(w, http.StatusNotFound, "job %s: %v", id, err)
		return nil
	}
	return m
}

// resolveOrigin follows a cache hit to the job that computed the result.
func (s *Server) resolveOrigin(m *serve.Manifest) *serve.Manifest {
	if m.CacheHit && m.Origin != "" {
		if origin, err := s.spool.ReadManifest(m.Origin); err == nil {
			return origin
		}
	}
	return m
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if m := s.loadManifest(w, r); m != nil {
		writeJSON(w, http.StatusOK, m)
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	ms, err := s.spool.List()
	if err != nil {
		apiError(w, http.StatusInternalServerError, "list spool: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, ms)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	m := s.loadManifest(w, r)
	if m == nil {
		return
	}
	if m.State != serve.StateDone {
		apiError(w, http.StatusConflict, "job %s is %s, not done", m.ID, m.State)
		return
	}
	if m.Result == nil {
		m = s.resolveOrigin(m)
	}
	writeJSON(w, http.StatusOK, m.Result)
}

// handleArtifact serves an artifact: local mirror first (finished jobs,
// mirrored checkpoints), the Origin job's mirror for cache hits, then a
// live proxy to the owning worker for running jobs.
func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	m := s.loadManifest(w, r)
	if m == nil {
		return
	}
	name := r.PathValue("name")
	for _, cand := range []*serve.Manifest{m, s.resolveOrigin(m)} {
		path, err := s.spool.ArtifactPath(cand.ID, name)
		if err != nil {
			apiError(w, http.StatusBadRequest, "%v", err)
			return
		}
		if st, serr := os.Stat(path); serr == nil && !st.IsDir() {
			http.ServeFile(w, r, path)
			return
		}
	}
	if m.NodeAddr != "" && m.RemoteID != "" && !m.State.Terminal() {
		s.proxyGet(w, r, m.NodeAddr+"/api/v1/jobs/"+m.RemoteID+"/artifacts/"+name)
		return
	}
	apiError(w, http.StatusNotFound, "job %s has no artifact %q", m.ID, name)
}

// proxyGet forwards one GET to a worker and copies the response through.
func (s *Server) proxyGet(w http.ResponseWriter, r *http.Request, url string) {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, url, nil)
	if err != nil {
		apiError(w, http.StatusBadGateway, "%v", err)
		return
	}
	resp, err := s.client.Do(req)
	if err != nil {
		apiError(w, http.StatusBadGateway, "worker unreachable: %v", err)
		return
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	m := s.loadManifest(w, r)
	if m == nil {
		return
	}
	if m.State.Terminal() {
		apiError(w, http.StatusConflict, "job %s already %s", m.ID, m.State)
		return
	}
	if m.Spec.Distributed {
		// A farm exploration: cancel its controller, which finalizes the
		// manifest (in-flight trial jobs are abandoned to finish on their
		// workers; their results stay cached for any future exploration).
		if f := s.lookupFarm(m.ID); f != nil {
			f.cancel(errFarmCanceled)
			writeJSON(w, http.StatusAccepted, map[string]string{"id": m.ID, "state": "canceling"})
			return
		}
		// No live controller (parked by a shutdown): cancel durably so the
		// next boot does not resume it.
		s.finish(m, serve.StateCanceled, "job canceled by client", nil, "")
		m, _ = s.spool.ReadManifest(m.ID)
		writeJSON(w, http.StatusOK, m)
		return
	}
	if m.State == serve.StateQueued {
		// Still pending here: cancel durably; the dispatcher skips
		// terminal manifests it pops.
		s.finish(m, serve.StateCanceled, "job canceled by client", nil, "")
		m, _ = s.spool.ReadManifest(m.ID)
		writeJSON(w, http.StatusOK, m)
		return
	}
	// Dispatched: forward the cancel; the watcher records the terminal
	// state when the worker confirms it.
	if err := s.cancelJob(m.ID, "job canceled by client"); err != nil {
		apiError(w, http.StatusBadGateway, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"id": m.ID, "state": "canceling"})
}

// cancelJob cancels a job server-side: queued jobs finalize durably,
// dispatched jobs forward the cancel to their worker (the watcher records
// the terminal state when the worker confirms). Shared by the HTTP cancel
// handler and the exploration farm's early-stop path.
func (s *Server) cancelJob(id, reason string) error {
	m, err := s.spool.ReadManifest(id)
	if err != nil {
		return err
	}
	if m.State.Terminal() {
		return nil
	}
	if m.State == serve.StateQueued || m.NodeAddr == "" || m.RemoteID == "" {
		s.finish(m, serve.StateCanceled, reason, nil, "")
		return nil
	}
	req, err := http.NewRequestWithContext(s.baseCtx, http.MethodPost,
		m.NodeAddr+"/api/v1/jobs/"+m.RemoteID+"/cancel", nil)
	if err != nil {
		return err
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return fmt.Errorf("worker unreachable: %w", err)
	}
	resp.Body.Close()
	return nil
}

// handleEvents streams job progress as SSE through the coordinator:
// pending phases emit coordinator state events; once dispatched the
// worker's stream proxies through verbatim; failover transparently
// re-attaches to the next worker (the remote Seq restarts — watchers key
// on state, not Seq continuity, across attempts). pufferctl watch works
// against a coordinator unchanged.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	m := s.loadManifest(w, r)
	if m == nil {
		return
	}
	if m.Spec.Distributed {
		// Farm explorations stream from the controller's local hub, not a
		// worker (there is no worker — trials are separate jobs).
		s.farmEvents(w, r, m)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		apiError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	seq := 0
	writeEvent := func(e serve.Event) {
		seq++
		e.Seq = seq
		data, _ := json.Marshal(e)
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.Type, data)
		fl.Flush()
	}

	lastState := serve.JobState("")
	for {
		if r.Context().Err() != nil {
			return
		}
		m, err := s.spool.ReadManifest(m.ID)
		if err != nil {
			return
		}
		if m.State.Terminal() {
			writeEvent(serve.Event{Type: "state", State: m.State, Error: m.Error})
			return
		}
		if m.State == serve.StateQueued {
			if lastState != serve.StateQueued {
				lastState = serve.StateQueued
				writeEvent(serve.Event{Type: "state", State: serve.StateQueued})
			}
			select {
			case <-r.Context().Done():
				return
			case <-time.After(s.cfg.Poll):
			}
			continue
		}
		// Dispatched: proxy the worker's live stream until it ends (job
		// finished there, worker died, or client went away), then loop to
		// re-read local state — which covers failover re-attachment.
		lastState = serve.StateRunning
		if m.NodeAddr != "" && m.RemoteID != "" {
			s.proxySSE(w, r, fl, m.NodeAddr+"/api/v1/jobs/"+m.RemoteID+"/events")
		}
		select {
		case <-r.Context().Done():
			return
		case <-time.After(s.cfg.Poll):
		}
	}
}

// proxySSE copies a worker's SSE stream through until it ends. Events
// pass through byte-for-byte (the worker's Seq included). A stream that
// ends without a terminal event (worker died mid-job) returns to the
// caller's loop, which re-reads the coordinator manifest and re-attaches
// to wherever failover sent the job.
func (s *Server) proxySSE(w http.ResponseWriter, r *http.Request, fl http.Flusher, url string) {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, url, nil)
	if err != nil {
		return
	}
	// Streaming call: bypass the default client timeout.
	client := &http.Client{Transport: s.client.Transport}
	resp, err := client.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			fl.Flush()
		}
		if err != nil {
			return
		}
	}
}
