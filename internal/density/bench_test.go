package density

import (
	"testing"

	"puffer/internal/geom"
)

// The DensitySolveOld/New pairs isolate the spectral solve — the kernel the
// real-input refactor targets — at the two production-relevant grid sizes.
// "Old" is the complex mirror-extension reference (fft.Spectral), "New" the
// fused real-input engine (fft.RealPlan). CI feeds both through
// cmd/benchjson -ratio into BENCH_density.json. AddRect (not DepositRects)
// charges the grid so the solve-skip fingerprint never arms and every
// iteration runs the full pipeline.
func benchSolve(b *testing.B, m int, kind SolverKind) {
	side := float64(m)
	g := NewGridKind(geom.RectWH(0, 0, side, side), m, m, kind)
	g.AddRect(geom.RectWH(side/4, side/4, side/3, side/3), 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Solve()
	}
}

func BenchmarkDensitySolveOld256(b *testing.B) { benchSolve(b, 256, SolverComplex) }
func BenchmarkDensitySolveNew256(b *testing.B) { benchSolve(b, 256, SolverReal) }
func BenchmarkDensitySolveOld512(b *testing.B) { benchSolve(b, 512, SolverComplex) }
func BenchmarkDensitySolveNew512(b *testing.B) { benchSolve(b, 512, SolverReal) }
