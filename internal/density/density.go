// Package density implements the electrostatic density model of the
// placement engine (paper Sec. II-B, Eqs. 3–6).
//
// The placement region is divided into an M×N bin grid. Every cell deposits
// its (padded) area as electric charge into the bins it overlaps (Eq. 6).
// The electric potential ψ and field E = -∇ψ are obtained by solving
// Poisson's equation ∇²ψ = -ρ spectrally in a half-sample cosine basis
// (Neumann boundary: no force pushes cells across the chip edge). The
// density penalty D(x, y) of Eq. 3 is the total potential energy Σ qᵢψ, and
// its gradient with respect to a cell position is -qᵢ·E at the cell.
package density

import (
	"fmt"
	"math"

	"puffer/internal/fft"
	"puffer/internal/geom"
)

// Grid is the electrostatic bin grid. Bins are indexed [j*M+i] with i the
// x (column) index and j the y (row) index.
type Grid struct {
	M, N   int // bin counts in x and y (powers of two)
	Region geom.Rect
	BinW   float64
	BinH   float64

	Rho []float64 // charge density: deposited area / bin area
	Psi []float64 // electric potential
	Ex  []float64 // field x-component (-∂ψ/∂x)
	Ey  []float64 // field y-component (-∂ψ/∂y)

	sx, sy *fft.Spectral

	// scratch buffers reused across Solve calls
	coef           []float64
	bufPsi, bufEx  []float64
	bufEy          []float64
	rowIn, rowOut  []float64
	colIn, colOut  []float64
	invFreqSq      []float64 // 1/(ku²+kv²) table, flat [v*M+u]
	fixedRho       []float64 // baseline charge from fixed cells
	hasFixed       bool
	totalFixedArea float64
}

// NewGrid creates an M×N grid over region. M and N must be powers of two.
func NewGrid(region geom.Rect, m, n int) *Grid {
	if m <= 0 || m&(m-1) != 0 || n <= 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("density: grid %dx%d must be powers of two", m, n))
	}
	g := &Grid{
		M: m, N: n, Region: region,
		BinW: region.W() / float64(m),
		BinH: region.H() / float64(n),
		sx:   fft.NewSpectral(m),
		sy:   fft.NewSpectral(n),
	}
	size := m * n
	g.Rho = make([]float64, size)
	g.Psi = make([]float64, size)
	g.Ex = make([]float64, size)
	g.Ey = make([]float64, size)
	g.coef = make([]float64, size)
	g.bufPsi = make([]float64, size)
	g.bufEx = make([]float64, size)
	g.bufEy = make([]float64, size)
	g.fixedRho = make([]float64, size)
	maxDim := m
	if n > maxDim {
		maxDim = n
	}
	g.rowIn = make([]float64, maxDim)
	g.rowOut = make([]float64, maxDim)
	g.colIn = make([]float64, maxDim)
	g.colOut = make([]float64, maxDim)

	g.invFreqSq = make([]float64, size)
	for v := 0; v < n; v++ {
		kv := g.sy.Freq(v) / g.BinH
		for u := 0; u < m; u++ {
			ku := g.sx.Freq(u) / g.BinW
			k2 := ku*ku + kv*kv
			if k2 > 0 {
				g.invFreqSq[v*m+u] = 1 / k2
			}
		}
	}
	return g
}

// Index returns the flat bin index of column i, row j.
func (g *Grid) Index(i, j int) int { return j*g.M + i }

// BinRect returns the geometric extent of bin (i, j).
func (g *Grid) BinRect(i, j int) geom.Rect {
	return geom.RectWH(
		g.Region.Lo.X+float64(i)*g.BinW,
		g.Region.Lo.Y+float64(j)*g.BinH,
		g.BinW, g.BinH)
}

// BinOf returns the bin coordinates containing point p, clamped to the grid.
func (g *Grid) BinOf(p geom.Point) (int, int) {
	i := int((p.X - g.Region.Lo.X) / g.BinW)
	j := int((p.Y - g.Region.Lo.Y) / g.BinH)
	return geom.ClampInt(i, 0, g.M-1), geom.ClampInt(j, 0, g.N-1)
}

// Reset clears movable charge, keeping the fixed baseline.
func (g *Grid) Reset() {
	copy(g.Rho, g.fixedRho)
}

// binRange returns the clamped half-open bin index ranges covered by r.
func (g *Grid) binRange(r geom.Rect) (i0, i1, j0, j1 int) {
	i0 = geom.ClampInt(int((r.Lo.X-g.Region.Lo.X)/g.BinW), 0, g.M-1)
	i1 = geom.ClampInt(int(math.Ceil((r.Hi.X-g.Region.Lo.X)/g.BinW)), i0+1, g.M)
	j0 = geom.ClampInt(int((r.Lo.Y-g.Region.Lo.Y)/g.BinH), 0, g.N-1)
	j1 = geom.ClampInt(int(math.Ceil((r.Hi.Y-g.Region.Lo.Y)/g.BinH)), j0+1, g.N)
	return
}

// AddRect deposits scale × overlap(rect, bin) area into each bin the
// rectangle overlaps, as charge density (area / bin area).
func (g *Grid) AddRect(r geom.Rect, scale float64) {
	g.addRectTo(g.Rho, r, scale)
}

// AddFixedRect deposits the rectangle into the fixed baseline so it
// survives Reset. Call once per fixed cell during setup.
func (g *Grid) AddFixedRect(r geom.Rect, scale float64) {
	g.addRectTo(g.fixedRho, r, scale)
	g.hasFixed = true
	g.totalFixedArea += r.Intersect(g.Region).Area() * scale
}

func (g *Grid) addRectTo(dst []float64, r geom.Rect, scale float64) {
	r = r.Intersect(g.Region)
	if r.Empty() {
		return
	}
	i0, i1, j0, j1 := g.binRange(r)
	invArea := scale / (g.BinW * g.BinH)
	for j := j0; j < j1; j++ {
		y0 := g.Region.Lo.Y + float64(j)*g.BinH
		oy := geom.Interval{Lo: y0, Hi: y0 + g.BinH}.Overlap(geom.Interval{Lo: r.Lo.Y, Hi: r.Hi.Y})
		if oy <= 0 {
			continue
		}
		row := dst[j*g.M:]
		for i := i0; i < i1; i++ {
			x0 := g.Region.Lo.X + float64(i)*g.BinW
			ox := geom.Interval{Lo: x0, Hi: x0 + g.BinW}.Overlap(geom.Interval{Lo: r.Lo.X, Hi: r.Hi.X})
			if ox > 0 {
				row[i] += ox * oy * invArea
			}
		}
	}
}

// Solve computes the potential and field from the current charge. The DC
// component of the charge is removed first (the u=v=0 mode has no force and
// corresponds to the neutralizing background of the electrostatic analogy).
func (g *Grid) Solve() {
	m, n := g.M, g.N

	// Forward analysis: cosine coefficients along x for each row, then
	// along y for each column, normalized so that EvalCos reconstructs.
	for j := 0; j < n; j++ {
		copy(g.rowIn[:m], g.Rho[j*m:(j+1)*m])
		g.sx.CosCoeffs(g.rowIn[:m], g.rowOut[:m])
		copy(g.coef[j*m:(j+1)*m], g.rowOut[:m])
	}
	for u := 0; u < m; u++ {
		for j := 0; j < n; j++ {
			g.colIn[j] = g.coef[j*m+u]
		}
		g.sy.CosCoeffs(g.colIn[:n], g.colOut[:n])
		for v := 0; v < n; v++ {
			g.coef[v*m+u] = g.colOut[v]
		}
	}
	norm := 4 / (float64(m) * float64(n))
	for v := 0; v < n; v++ {
		for u := 0; u < m; u++ {
			c := g.coef[v*m+u] * norm
			if u == 0 {
				c /= 2
			}
			if v == 0 {
				c /= 2
			}
			g.coef[v*m+u] = c
		}
	}

	// Frequency-domain solve: ψ̂ = ρ̂/k², Êx = ρ̂·ku/k², Êy = ρ̂·kv/k².
	for v := 0; v < n; v++ {
		kv := g.sy.Freq(v) / g.BinH
		for u := 0; u < m; u++ {
			ku := g.sx.Freq(u) / g.BinW
			idx := v*m + u
			a := g.coef[idx] * g.invFreqSq[idx]
			g.bufPsi[idx] = a
			g.bufEx[idx] = a * ku
			g.bufEy[idx] = a * kv
		}
	}

	// Synthesis. ψ uses cos·cos; Ex = -∂ψ/∂x uses sin in x (the derivative
	// of cos(ku·x) is -ku·sin(ku·x), and E = -∇ψ cancels the sign);
	// Ey symmetric.
	g.synthesize(g.bufPsi, g.Psi, false, false)
	g.synthesize(g.bufEx, g.Ex, true, false)
	g.synthesize(g.bufEy, g.Ey, false, true)
}

// synthesize evaluates the 2-D series with sine evaluation in x and/or y.
func (g *Grid) synthesize(coef, out []float64, sinX, sinY bool) {
	m, n := g.M, g.N
	// Evaluate along y (columns) first.
	for u := 0; u < m; u++ {
		for v := 0; v < n; v++ {
			g.colIn[v] = coef[v*m+u]
		}
		if sinY {
			g.sy.EvalSin(g.colIn[:n], g.colOut[:n])
		} else {
			g.sy.EvalCos(g.colIn[:n], g.colOut[:n])
		}
		for j := 0; j < n; j++ {
			out[j*m+u] = g.colOut[j]
		}
	}
	// Then along x (rows), in place row by row.
	for j := 0; j < n; j++ {
		copy(g.rowIn[:m], out[j*m:(j+1)*m])
		if sinX {
			g.sx.EvalSin(g.rowIn[:m], g.rowOut[:m])
		} else {
			g.sx.EvalCos(g.rowIn[:m], g.rowOut[:m])
		}
		copy(out[j*m:(j+1)*m], g.rowOut[:m])
	}
}

// Energy returns the total potential energy Σ ρ·ψ·binArea (Eq. 3 up to the
// constant factor absorbed by λ).
func (g *Grid) Energy() float64 {
	e := 0.0
	binArea := g.BinW * g.BinH
	for i, r := range g.Rho {
		e += r * g.Psi[i]
	}
	return e * binArea
}

// ForceOnRect returns the overlap-weighted electric force on a rectangle of
// charge (the negative gradient of the energy with respect to the
// rectangle's position). The returned vector is Σ overlapArea·E over the
// bins the rectangle covers.
func (g *Grid) ForceOnRect(r geom.Rect) (fx, fy float64) {
	rc := r.Intersect(g.Region)
	if rc.Empty() {
		// Pull cells that escaped the region back toward it.
		c := g.Region.ClampPoint(r.Center())
		i, j := g.BinOf(c)
		idx := g.Index(i, j)
		return g.Ex[idx] * r.Area(), g.Ey[idx] * r.Area()
	}
	i0, i1, j0, j1 := g.binRange(rc)
	for j := j0; j < j1; j++ {
		y0 := g.Region.Lo.Y + float64(j)*g.BinH
		oy := geom.Interval{Lo: y0, Hi: y0 + g.BinH}.Overlap(geom.Interval{Lo: rc.Lo.Y, Hi: rc.Hi.Y})
		if oy <= 0 {
			continue
		}
		for i := i0; i < i1; i++ {
			x0 := g.Region.Lo.X + float64(i)*g.BinW
			ox := geom.Interval{Lo: x0, Hi: x0 + g.BinW}.Overlap(geom.Interval{Lo: rc.Lo.X, Hi: rc.Hi.X})
			if ox <= 0 {
				continue
			}
			idx := j*g.M + i
			a := ox * oy
			fx += a * g.Ex[idx]
			fy += a * g.Ey[idx]
		}
	}
	return fx, fy
}

// Overflow returns the density overflow ratio: the summed movable charge
// area exceeding target density in each bin, divided by the total movable
// area. This is the τ trigger metric of Sec. III-B3 in normalized form.
func (g *Grid) Overflow(target, totalMovableArea float64) float64 {
	if totalMovableArea <= 0 {
		return 0
	}
	binArea := g.BinW * g.BinH
	over := 0.0
	for i, r := range g.Rho {
		free := target - g.fixedRho[i]
		if free < 0 {
			free = 0
		}
		movable := r - g.fixedRho[i]
		if movable > free {
			over += (movable - free) * binArea
		}
	}
	return over / totalMovableArea
}
