// Package density implements the electrostatic density model of the
// placement engine (paper Sec. II-B, Eqs. 3–6).
//
// The placement region is divided into an M×N bin grid. Every cell deposits
// its (padded) area as electric charge into the bins it overlaps (Eq. 6).
// The electric potential ψ and field E = -∇ψ are obtained by solving
// Poisson's equation ∇²ψ = -ρ spectrally in a half-sample cosine basis
// (Neumann boundary: no force pushes cells across the chip edge). The
// density penalty D(x, y) of Eq. 3 is the total potential energy Σ qᵢψ, and
// its gradient with respect to a cell position is -qᵢ·E at the cell.
//
// # Parallelism and determinism
//
// The grid is the placement engine's per-iteration hot path, so the heavy
// operations — rasterization (DepositRects), the spectral solve (Solve),
// and the overflow reduction (Overflow) — run across SetWorkers workers.
// All of them are bit-deterministic regardless of the worker count:
//
//   - DepositRects shards the OUTPUT (bands of bin rows): each band owner
//     scans the rectangle list in order and accumulates only its own rows,
//     so every bin receives its contributions in the same rectangle order a
//     serial sweep would use — identical bits for any band count. This
//     replaces the per-worker-accumulator-plus-merge design: it needs no
//     extra grids, no zeroing, no merge pass, and is worker-count
//     independent rather than merely fixed-worker-count reproducible.
//   - Solve batches independent 1-D row/column transforms (each writes a
//     disjoint output range) over per-worker fft.Spectral scratch cloned
//     from one precomputed plan, so scheduling cannot change any value.
//   - Overflow reduces over a FIXED shard count derived from the grid size
//     (never from the worker count) and sums the per-shard partials in
//     shard order.
//
// Once constructed (and after the first SetWorkers), the steady-state
// DepositRects → Solve → ForceOnRect → Overflow cycle performs no heap
// allocation with one worker, and only the O(workers) goroutine dispatch
// inside internal/par otherwise.
package density

import (
	"fmt"
	"math"
	"time"

	"puffer/internal/fft"
	"puffer/internal/geom"
	"puffer/internal/par"
)

// maxGridWorkers bounds the per-worker transform scratch (two spectral
// clones plus three vectors per worker), so many-core hosts do not trade
// memory for shards the row/column batches cannot use anyway.
const maxGridWorkers = 16

// ovfBinsPerShard sizes the fixed overflow-reduction shards. The shard
// count depends only on the grid size, so the partial-sum structure — and
// therefore the result, bit for bit — is identical for every worker count.
const ovfBinsPerShard = 4096

// SolverKind selects the 1-D transform engine behind the spectral solve.
type SolverKind int

const (
	// SolverReal is the production engine: real-input FFTs of size M/2
	// with the DCT-II twiddles fused into the pack/unpack loops
	// (fft.RealPlan) — no 2M mirror buffer, a quarter of the complex
	// butterflies of the reference path.
	SolverReal SolverKind = iota
	// SolverComplex is the reference engine: every 1-D primitive is a
	// complex FFT of size 2M over the mirror extension (fft.Spectral).
	// It exists for cross-checking and the Old/New benchmark pair.
	SolverComplex
)

// newTransform builds the 1-D engine for dimension size m. RealPlan needs
// m >= 2; a (degenerate) one-bin dimension falls back to the reference.
func newTransform(m int, kind SolverKind) fft.Transform {
	if kind == SolverReal && m >= 2 {
		return fft.NewRealPlan(m)
	}
	return fft.NewSpectral(m)
}

// solveScratch is one worker's private transform state: transform clones
// sharing the grid's precomputed FFT plans, plus gather/scatter vectors.
type solveScratch struct {
	sx, sy fft.Transform
	row    []float64 // length M, x-direction staging
	col    []float64 // length N, y-direction gather
	colOut []float64 // length N, y-direction result
}

// Grid is the electrostatic bin grid. Bins are indexed [j*M+i] with i the
// x (column) index and j the y (row) index.
type Grid struct {
	M, N   int // bin counts in x and y (powers of two)
	Region geom.Rect
	BinW   float64
	BinH   float64

	Rho []float64 // charge density: deposited area / bin area
	Psi []float64 // electric potential
	Ex  []float64 // field x-component (-∂ψ/∂x)
	Ey  []float64 // field y-component (-∂ψ/∂y)

	sx, sy fft.Transform

	// scratch buffers reused across Solve calls
	coef           []float64
	bufPsi, bufEx  []float64
	bufEy          []float64
	fixedRho       []float64 // baseline charge from fixed cells
	hasFixed       bool
	totalFixedArea float64

	// Deposit fingerprint: lastRects retains the operand of the most
	// recent DepositRects (so an identical re-deposit skips the raster)
	// and solvedRects the operand whose deposit the current Psi/Ex/Ey
	// were solved from (so an identical re-deposit lets Solve skip the
	// spectral work entirely). rhoFromRects / solvedFromRects record
	// whether those fingerprints are authoritative — any AddRect /
	// AddFixedRect / Reset in between voids them.
	lastRects       []geom.Rect
	solvedRects     []geom.Rect
	rhoFromRects    bool
	solvedFromRects bool
	fieldCurrent    bool // the latest deposit matched solvedRects
	solves          int  // spectral solves actually executed
	solveSkips      int  // Solve calls satisfied by the fingerprint

	// Per-phase walls of the spectral solve, cumulative across the grid's
	// lifetime (exposed through Solver.PhaseWalls into the place.phase.*
	// density gauges).
	wallAnalysis, wallFreq, wallSynth time.Duration

	// Precomputed frequency-response tables, flat [v*M+u], with the
	// 4/(M·N) analysis normalization and the u=0 / v=0 halving folded in:
	// ψ̂ = coef·psiTab, Êx = coef·exTab, Êy = coef·eyTab.
	psiTab, exTab, eyTab []float64

	// parallel execution state
	workers    int
	scratch    []solveScratch
	ovfShards  int
	ovfPartial []float64
	ovfTarget  float64
	depRects   []geom.Rect // operand of the in-flight DepositRects
	synCoef    []float64   // operands of the in-flight synthesize
	synOut     []float64
	synSinX    bool
	synSinY    bool

	// Stage bodies are bound once here so the dispatcher can hand them to
	// par.ForShards (or run them inline) without constructing a closure —
	// and therefore without allocating — on every Solve/Deposit call.
	stageFwdRows func(w, lo, hi int)
	stageFwdCols func(w, lo, hi int)
	stageFreq    func(w, lo, hi int)
	stageSynCols func(w, lo, hi int)
	stageSynRows func(w, lo, hi int)
	stageDeposit func(w, lo, hi int)
	stageOvf     func(s int)
}

// NewGrid creates an M×N grid over region. M and N must be powers of two.
// The grid starts serial; call SetWorkers to enable data parallelism. The
// spectral solve uses the real-input engine (SolverReal); NewGridKind
// selects the reference complex engine instead.
func NewGrid(region geom.Rect, m, n int) *Grid {
	return NewGridKind(region, m, n, SolverReal)
}

// NewGridKind is NewGrid with an explicit transform engine choice.
func NewGridKind(region geom.Rect, m, n int, kind SolverKind) *Grid {
	if m <= 0 || m&(m-1) != 0 || n <= 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("density: grid %dx%d must be powers of two", m, n))
	}
	g := &Grid{
		M: m, N: n, Region: region,
		BinW: region.W() / float64(m),
		BinH: region.H() / float64(n),
		sx:   newTransform(m, kind),
		sy:   newTransform(n, kind),
	}
	size := m * n
	g.Rho = make([]float64, size)
	g.Psi = make([]float64, size)
	g.Ex = make([]float64, size)
	g.Ey = make([]float64, size)
	g.coef = make([]float64, size)
	g.bufPsi = make([]float64, size)
	g.bufEx = make([]float64, size)
	g.bufEy = make([]float64, size)
	g.fixedRho = make([]float64, size)

	g.psiTab = make([]float64, size)
	g.exTab = make([]float64, size)
	g.eyTab = make([]float64, size)
	norm := 4 / (float64(m) * float64(n))
	for v := 0; v < n; v++ {
		kv := g.sy.Freq(v) / g.BinH
		for u := 0; u < m; u++ {
			ku := g.sx.Freq(u) / g.BinW
			k2 := ku*ku + kv*kv
			if k2 <= 0 {
				continue // DC mode: neutralizing background, no force
			}
			c := norm
			if u == 0 {
				c /= 2
			}
			if v == 0 {
				c /= 2
			}
			idx := v*m + u
			a := c / k2
			g.psiTab[idx] = a
			g.exTab[idx] = a * ku
			g.eyTab[idx] = a * kv
		}
	}

	g.workers = 1
	g.scratch = []solveScratch{{
		sx:  g.sx,
		sy:  g.sy,
		row: make([]float64, m), col: make([]float64, n), colOut: make([]float64, n),
	}}
	g.ovfShards = size / ovfBinsPerShard
	if g.ovfShards < 1 {
		g.ovfShards = 1
	}
	if g.ovfShards > maxGridWorkers {
		g.ovfShards = maxGridWorkers
	}
	g.ovfPartial = make([]float64, g.ovfShards)
	g.bindStages()
	return g
}

// SetWorkers caps the grid's data parallelism (0 or negative selects
// GOMAXPROCS, clamped to an internal bound) and allocates the per-worker
// transform scratch up front so later Solve/DepositRects calls stay
// allocation-free. Results never depend on the worker count.
func (g *Grid) SetWorkers(n int) {
	w := par.Workers(n)
	if w > maxGridWorkers {
		w = maxGridWorkers
	}
	if w < 1 {
		w = 1
	}
	g.workers = w
	for len(g.scratch) < w {
		g.scratch = append(g.scratch, solveScratch{
			sx:  g.sx.CloneTransform(),
			sy:  g.sy.CloneTransform(),
			row: make([]float64, g.M), col: make([]float64, g.N), colOut: make([]float64, g.N),
		})
	}
}

// Workers reports the resolved worker cap.
func (g *Grid) Workers() int { return g.workers }

// dispatch runs a pre-bound stage over [0, n): inline with one worker,
// sharded across the worker pool otherwise. Stage bodies receive the
// executor index w so they can use g.scratch[w].
func (g *Grid) dispatch(n int, stage func(w, lo, hi int)) {
	if g.workers <= 1 || n < 2 {
		stage(0, 0, n)
		return
	}
	par.ForShards(g.workers, n, stage)
}

// bindStages constructs the worker bodies once, capturing g, so the hot
// path never builds a closure per call.
func (g *Grid) bindStages() {
	// Forward analysis along x: one independent DCT per bin row.
	g.stageFwdRows = func(w, lo, hi int) {
		s := &g.scratch[w]
		m := g.M
		for j := lo; j < hi; j++ {
			s.sx.CosCoeffs(g.Rho[j*m:(j+1)*m], g.coef[j*m:(j+1)*m])
		}
	}
	// Forward analysis along y: one independent DCT per coefficient column.
	g.stageFwdCols = func(w, lo, hi int) {
		s := &g.scratch[w]
		m, n := g.M, g.N
		for u := lo; u < hi; u++ {
			for j := 0; j < n; j++ {
				s.col[j] = g.coef[j*m+u]
			}
			s.sy.CosCoeffs(s.col, s.colOut)
			for v := 0; v < n; v++ {
				g.coef[v*m+u] = s.colOut[v]
			}
		}
	}
	// Frequency-domain solve: ψ̂ = ρ̂/k², Êx = ρ̂·ku/k², Êy = ρ̂·kv/k²,
	// via the precomputed response tables; disjoint per coefficient row.
	g.stageFreq = func(w, lo, hi int) {
		m := g.M
		for v := lo; v < hi; v++ {
			for idx := v * m; idx < (v+1)*m; idx++ {
				c := g.coef[idx]
				g.bufPsi[idx] = c * g.psiTab[idx]
				g.bufEx[idx] = c * g.exTab[idx]
				g.bufEy[idx] = c * g.eyTab[idx]
			}
		}
	}
	// Synthesis along y (columns) into the output grid.
	g.stageSynCols = func(w, lo, hi int) {
		s := &g.scratch[w]
		m, n := g.M, g.N
		coef, out := g.synCoef, g.synOut
		for u := lo; u < hi; u++ {
			for v := 0; v < n; v++ {
				s.col[v] = coef[v*m+u]
			}
			if g.synSinY {
				s.sy.EvalSin(s.col, s.colOut)
			} else {
				s.sy.EvalCos(s.col, s.colOut)
			}
			for j := 0; j < n; j++ {
				out[j*m+u] = s.colOut[j]
			}
		}
	}
	// Synthesis along x (rows), in place row by row.
	g.stageSynRows = func(w, lo, hi int) {
		s := &g.scratch[w]
		m := g.M
		out := g.synOut
		for j := lo; j < hi; j++ {
			row := out[j*m : (j+1)*m]
			copy(s.row, row)
			if g.synSinX {
				s.sx.EvalSin(s.row, row)
			} else {
				s.sx.EvalCos(s.row, row)
			}
		}
	}
	// Banded rasterization: the executor owns bin rows [lo, hi), restores
	// the fixed baseline there, then scans the rectangle list in order and
	// deposits only the rows it owns. Per-bin addition order equals the
	// serial rectangle order for any band partition.
	g.stageDeposit = func(w, lo, hi int) {
		m := g.M
		copy(g.Rho[lo*m:hi*m], g.fixedRho[lo*m:hi*m])
		invArea := 1 / (g.BinW * g.BinH)
		for _, r := range g.depRects {
			rc := r.Intersect(g.Region)
			if rc.Empty() {
				continue
			}
			i0, i1, j0, j1 := g.binRange(rc)
			if j0 < lo {
				j0 = lo
			}
			if j1 > hi {
				j1 = hi
			}
			for j := j0; j < j1; j++ {
				y0 := g.Region.Lo.Y + float64(j)*g.BinH
				oy := geom.Interval{Lo: y0, Hi: y0 + g.BinH}.Overlap(geom.Interval{Lo: rc.Lo.Y, Hi: rc.Hi.Y})
				if oy <= 0 {
					continue
				}
				row := g.Rho[j*m:]
				for i := i0; i < i1; i++ {
					x0 := g.Region.Lo.X + float64(i)*g.BinW
					ox := geom.Interval{Lo: x0, Hi: x0 + g.BinW}.Overlap(geom.Interval{Lo: rc.Lo.X, Hi: rc.Hi.X})
					if ox > 0 {
						row[i] += ox * oy * invArea
					}
				}
			}
		}
	}
	// Fixed-shard overflow partial: shard s always owns the same bin range.
	g.stageOvf = func(s int) {
		lo, hi := par.ShardRange(s, g.ovfShards, len(g.Rho))
		target := g.ovfTarget
		over := 0.0
		for i := lo; i < hi; i++ {
			free := target - g.fixedRho[i]
			if free < 0 {
				free = 0
			}
			movable := g.Rho[i] - g.fixedRho[i]
			if movable > free {
				over += movable - free
			}
		}
		g.ovfPartial[s] = over
	}
}

// Index returns the flat bin index of column i, row j.
func (g *Grid) Index(i, j int) int { return j*g.M + i }

// BinRect returns the geometric extent of bin (i, j).
func (g *Grid) BinRect(i, j int) geom.Rect {
	return geom.RectWH(
		g.Region.Lo.X+float64(i)*g.BinW,
		g.Region.Lo.Y+float64(j)*g.BinH,
		g.BinW, g.BinH)
}

// BinOf returns the bin coordinates containing point p, clamped to the grid.
func (g *Grid) BinOf(p geom.Point) (int, int) {
	i := int((p.X - g.Region.Lo.X) / g.BinW)
	j := int((p.Y - g.Region.Lo.Y) / g.BinH)
	return geom.ClampInt(i, 0, g.M-1), geom.ClampInt(j, 0, g.N-1)
}

// Reset clears movable charge, keeping the fixed baseline.
func (g *Grid) Reset() {
	copy(g.Rho, g.fixedRho)
	g.voidFingerprint()
}

// voidFingerprint discards the deposit fingerprints after any charge
// mutation that DepositRects does not describe, so neither the raster nor
// the solve skip can fire against stale state.
func (g *Grid) voidFingerprint() {
	g.rhoFromRects = false
	g.solvedFromRects = false
	g.fieldCurrent = false
}

// rectsEqual reports whether two rectangle lists are bitwise identical
// (exact float comparison — the fingerprint must never conflate rounding
// neighbours, only true re-deposits).
func rectsEqual(a, b []geom.Rect) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// binRange returns the clamped half-open bin index ranges covered by r.
func (g *Grid) binRange(r geom.Rect) (i0, i1, j0, j1 int) {
	i0 = geom.ClampInt(int((r.Lo.X-g.Region.Lo.X)/g.BinW), 0, g.M-1)
	i1 = geom.ClampInt(int(math.Ceil((r.Hi.X-g.Region.Lo.X)/g.BinW)), i0+1, g.M)
	j0 = geom.ClampInt(int((r.Lo.Y-g.Region.Lo.Y)/g.BinH), 0, g.N-1)
	j1 = geom.ClampInt(int(math.Ceil((r.Hi.Y-g.Region.Lo.Y)/g.BinH)), j0+1, g.N)
	return
}

// AddRect deposits scale × overlap(rect, bin) area into each bin the
// rectangle overlaps, as charge density (area / bin area).
func (g *Grid) AddRect(r geom.Rect, scale float64) {
	g.addRectTo(g.Rho, r, scale)
	g.voidFingerprint()
}

// AddFixedRect deposits the rectangle into the fixed baseline so it
// survives Reset. Call once per fixed cell during setup.
func (g *Grid) AddFixedRect(r geom.Rect, scale float64) {
	g.addRectTo(g.fixedRho, r, scale)
	g.hasFixed = true
	g.totalFixedArea += r.Intersect(g.Region).Area() * scale
	// A new baseline changes what any rect list deposits to, so both the
	// raster and the solve fingerprints are stale.
	g.voidFingerprint()
}

func (g *Grid) addRectTo(dst []float64, r geom.Rect, scale float64) {
	r = r.Intersect(g.Region)
	if r.Empty() {
		return
	}
	i0, i1, j0, j1 := g.binRange(r)
	invArea := scale / (g.BinW * g.BinH)
	for j := j0; j < j1; j++ {
		y0 := g.Region.Lo.Y + float64(j)*g.BinH
		oy := geom.Interval{Lo: y0, Hi: y0 + g.BinH}.Overlap(geom.Interval{Lo: r.Lo.Y, Hi: r.Hi.Y})
		if oy <= 0 {
			continue
		}
		row := dst[j*g.M:]
		for i := i0; i < i1; i++ {
			x0 := g.Region.Lo.X + float64(i)*g.BinW
			ox := geom.Interval{Lo: x0, Hi: x0 + g.BinW}.Overlap(geom.Interval{Lo: r.Lo.X, Hi: r.Hi.X})
			if ox > 0 {
				row[i] += ox * oy * invArea
			}
		}
	}
}

// DepositRects replaces the movable charge with the given unit-scale
// rectangles in one pass: Rho = fixedRho + Σ rects. It is the parallel
// equivalent of Reset followed by AddRect per rectangle, sharded by output
// bin rows, and produces bit-identical charge for every worker count. The
// rects slice is only read during the call; callers may reuse it.
//
// The call fingerprints its operand: depositing a list bitwise identical to
// the previous one skips the raster (Rho is already exact, since the deposit
// fully rewrites it), and depositing the list the current field was solved
// from arms the next Solve to return without any spectral work.
func (g *Grid) DepositRects(rects []geom.Rect) {
	if !g.rhoFromRects || !rectsEqual(rects, g.lastRects) {
		g.depRects = rects
		g.dispatch(g.N, g.stageDeposit)
		g.depRects = nil
		g.lastRects = append(g.lastRects[:0], rects...)
		g.rhoFromRects = true
	}
	g.fieldCurrent = g.solvedFromRects && rectsEqual(rects, g.solvedRects)
}

// Solve computes the potential and field from the current charge. The DC
// component of the charge is removed first (the u=v=0 mode has no force and
// corresponds to the neutralizing background of the electrostatic analogy).
// The row/column transform batches run across the SetWorkers pool with
// per-worker spectral scratch; every batch writes a disjoint output range,
// so the solution is bit-identical for any worker count.
// When the most recent DepositRects matched the list the current field was
// solved from, the charge — and therefore the solution — is unchanged, and
// Solve returns immediately (see SolveSkips). Mutating the charge by any
// other means (AddRect, Reset, direct Rho writes) always forces a full
// solve on the next call.
func (g *Grid) Solve() {
	if g.fieldCurrent {
		g.solveSkips++
		return
	}

	// Forward analysis: cosine coefficients along x for each row, then
	// along y for each column, then the per-mode frequency response.
	t := time.Now()
	g.dispatch(g.N, g.stageFwdRows)
	g.dispatch(g.M, g.stageFwdCols)
	t = g.lap(t, &g.wallAnalysis)
	g.dispatch(g.N, g.stageFreq)
	t = g.lap(t, &g.wallFreq)

	// Synthesis. ψ uses cos·cos; Ex = -∂ψ/∂x uses sin in x (the derivative
	// of cos(ku·x) is -ku·sin(ku·x), and E = -∇ψ cancels the sign);
	// Ey symmetric.
	g.synthesize(g.bufPsi, g.Psi, false, false)
	g.synthesize(g.bufEx, g.Ex, true, false)
	g.synthesize(g.bufEy, g.Ey, false, true)
	g.lap(t, &g.wallSynth)

	g.solves++
	g.solvedFromRects = g.rhoFromRects
	if g.solvedFromRects {
		g.solvedRects = append(g.solvedRects[:0], g.lastRects...)
	}
}

// lap accumulates the time since t into *wall and returns the new mark.
func (g *Grid) lap(t time.Time, wall *time.Duration) time.Time {
	now := time.Now()
	*wall += now.Sub(t)
	return now
}

// synthesize evaluates the 2-D series with sine evaluation in x and/or y.
func (g *Grid) synthesize(coef, out []float64, sinX, sinY bool) {
	g.synCoef, g.synOut, g.synSinX, g.synSinY = coef, out, sinX, sinY
	g.dispatch(g.M, g.stageSynCols)
	g.dispatch(g.N, g.stageSynRows)
	g.synCoef, g.synOut = nil, nil
}

// Energy returns the total potential energy Σ ρ·ψ·binArea (Eq. 3 up to the
// constant factor absorbed by λ).
func (g *Grid) Energy() float64 {
	e := 0.0
	binArea := g.BinW * g.BinH
	for i, r := range g.Rho {
		e += r * g.Psi[i]
	}
	return e * binArea
}

// ForceOnRect returns the overlap-weighted electric force on a rectangle of
// charge (the negative gradient of the energy with respect to the
// rectangle's position). The returned vector is Σ overlapArea·E over the
// bins the rectangle covers. It only reads the solved field, so any number
// of goroutines may call it concurrently (the placement engine's force
// sweep does).
func (g *Grid) ForceOnRect(r geom.Rect) (fx, fy float64) {
	rc := r.Intersect(g.Region)
	if rc.Empty() {
		// Pull cells that escaped the region back toward it.
		c := g.Region.ClampPoint(r.Center())
		i, j := g.BinOf(c)
		idx := g.Index(i, j)
		return g.Ex[idx] * r.Area(), g.Ey[idx] * r.Area()
	}
	i0, i1, j0, j1 := g.binRange(rc)
	for j := j0; j < j1; j++ {
		y0 := g.Region.Lo.Y + float64(j)*g.BinH
		oy := geom.Interval{Lo: y0, Hi: y0 + g.BinH}.Overlap(geom.Interval{Lo: rc.Lo.Y, Hi: rc.Hi.Y})
		if oy <= 0 {
			continue
		}
		for i := i0; i < i1; i++ {
			x0 := g.Region.Lo.X + float64(i)*g.BinW
			ox := geom.Interval{Lo: x0, Hi: x0 + g.BinW}.Overlap(geom.Interval{Lo: rc.Lo.X, Hi: rc.Hi.X})
			if ox <= 0 {
				continue
			}
			idx := j*g.M + i
			a := ox * oy
			fx += a * g.Ex[idx]
			fy += a * g.Ey[idx]
		}
	}
	return fx, fy
}

// Overflow returns the density overflow ratio: the summed movable charge
// area exceeding target density in each bin, divided by the total movable
// area. This is the τ trigger metric of Sec. III-B3 in normalized form.
// The reduction runs over a fixed shard count derived from the grid size,
// so the floating-point result is identical for every worker count.
func (g *Grid) Overflow(target, totalMovableArea float64) float64 {
	if totalMovableArea <= 0 {
		return 0
	}
	g.ovfTarget = target
	if g.workers <= 1 || g.ovfShards <= 1 {
		for s := 0; s < g.ovfShards; s++ {
			g.stageOvf(s)
		}
	} else {
		par.ForN(g.workers, g.ovfShards, g.stageOvf)
	}
	over := 0.0
	for _, p := range g.ovfPartial {
		over += p
	}
	return over * g.BinW * g.BinH / totalMovableArea
}

// Solves reports how many Solve calls actually ran the spectral pipeline.
func (g *Grid) Solves() int { return g.solves }

// SolveSkips reports how many Solve calls returned immediately because the
// deposited charge matched the list the current field was solved from.
func (g *Grid) SolveSkips() int { return g.solveSkips }

// PhaseWalls returns the cumulative wall time of the spectral solve split
// by phase: forward analysis (row+column DCTs), the frequency-domain
// response, and the three synthesis passes.
func (g *Grid) PhaseWalls() (analysis, freq, synth time.Duration) {
	return g.wallAnalysis, g.wallFreq, g.wallSynth
}

// The Solver methods below make a bare Grid the single-level degenerate
// case of the multi-resolution pyramid: one level, never refining.

// Active returns the grid itself.
func (g *Grid) Active() *Grid { return g }

// Finest returns the grid itself.
func (g *Grid) Finest() *Grid { return g }

// Level returns 0: a bare grid is always at the finest level.
func (g *Grid) Level() int { return 0 }

// Levels returns 1.
func (g *Grid) Levels() int { return 1 }

// Refine is a no-op on a single grid and reports false.
func (g *Grid) Refine() bool { return false }
