package density

import (
	"math"
	"math/rand"
	"testing"

	"puffer/internal/geom"
)

func TestAddRectConservesArea(t *testing.T) {
	g := NewGrid(geom.RectWH(0, 0, 32, 32), 16, 16)
	r := geom.RectWH(3.3, 5.7, 7.9, 2.45)
	g.AddRect(r, 1)
	binArea := g.BinW * g.BinH
	sum := 0.0
	for _, v := range g.Rho {
		sum += v * binArea
	}
	if math.Abs(sum-r.Area()) > 1e-9 {
		t.Errorf("deposited area = %v, want %v", sum, r.Area())
	}
}

func TestAddRectClipsToRegion(t *testing.T) {
	g := NewGrid(geom.RectWH(0, 0, 16, 16), 8, 8)
	g.AddRect(geom.RectWH(-4, -4, 8, 8), 1) // half in, half out per axis
	binArea := g.BinW * g.BinH
	sum := 0.0
	for _, v := range g.Rho {
		sum += v * binArea
	}
	if math.Abs(sum-16) > 1e-9 { // 4x4 quadrant inside
		t.Errorf("clipped deposit = %v, want 16", sum)
	}
	// Entirely outside contributes nothing.
	g.AddRect(geom.RectWH(100, 100, 5, 5), 1)
	sum2 := 0.0
	for _, v := range g.Rho {
		sum2 += v * binArea
	}
	if math.Abs(sum2-sum) > 1e-12 {
		t.Error("outside rect deposited charge")
	}
}

func TestResetKeepsFixedBaseline(t *testing.T) {
	g := NewGrid(geom.RectWH(0, 0, 16, 16), 8, 8)
	g.AddFixedRect(geom.RectWH(0, 0, 4, 4), 1)
	g.AddRect(geom.RectWH(8, 8, 4, 4), 1)
	g.Reset()
	i, j := g.BinOf(geom.Pt(1, 1))
	if g.Rho[g.Index(i, j)] == 0 {
		t.Error("fixed charge lost after Reset")
	}
	i, j = g.BinOf(geom.Pt(9, 9))
	if g.Rho[g.Index(i, j)] != 0 {
		t.Error("movable charge survived Reset")
	}
}

// A concentrated charge blob must push a nearby test rectangle away from
// the blob: positive x-force to the blob's right, negative to its left.
func TestFieldPushesAwayFromCharge(t *testing.T) {
	g := NewGrid(geom.RectWH(0, 0, 64, 64), 64, 64)
	g.AddRect(geom.RectWH(28, 28, 8, 8), 4) // dense blob at center
	g.Solve()

	fxR, _ := g.ForceOnRect(geom.RectWH(44, 30, 2, 2))
	if fxR <= 0 {
		t.Errorf("force right of blob fx = %v, want > 0", fxR)
	}
	fxL, _ := g.ForceOnRect(geom.RectWH(18, 30, 2, 2))
	if fxL >= 0 {
		t.Errorf("force left of blob fx = %v, want < 0", fxL)
	}
	_, fyU := g.ForceOnRect(geom.RectWH(30, 44, 2, 2))
	if fyU <= 0 {
		t.Errorf("force above blob fy = %v, want > 0", fyU)
	}
	_, fyD := g.ForceOnRect(geom.RectWH(30, 18, 2, 2))
	if fyD >= 0 {
		t.Errorf("force below blob fy = %v, want < 0", fyD)
	}
}

// Symmetric charge: field at the symmetry center vanishes, and mirrored
// probes feel mirrored forces.
func TestFieldSymmetry(t *testing.T) {
	g := NewGrid(geom.RectWH(0, 0, 32, 32), 32, 32)
	g.AddRect(geom.RectWH(14, 14, 4, 4), 1)
	g.Solve()
	fx, fy := g.ForceOnRect(geom.RectWH(15, 15, 2, 2))
	if math.Abs(fx) > 1e-6 || math.Abs(fy) > 1e-6 {
		t.Errorf("center force = (%v, %v), want ~0", fx, fy)
	}
	fxR, _ := g.ForceOnRect(geom.RectWH(20, 15, 2, 2))
	fxL, _ := g.ForceOnRect(geom.RectWH(10, 15, 2, 2))
	if math.Abs(fxR+fxL) > 1e-6*math.Abs(fxR) {
		t.Errorf("mirror forces not antisymmetric: %v vs %v", fxR, fxL)
	}
}

// Poisson residual: for a smooth charge the discrete Laplacian of ψ must
// reproduce -ρ' (ρ minus its mean, since the DC mode is neutralized).
func TestPoissonResidual(t *testing.T) {
	m := 64
	g := NewGrid(geom.RectWH(0, 0, float64(m), float64(m)), m, m)
	// Smooth Gaussian blob.
	for j := 0; j < m; j++ {
		for i := 0; i < m; i++ {
			dx := float64(i) - 31.5
			dy := float64(j) - 31.5
			g.Rho[g.Index(i, j)] = math.Exp(-(dx*dx + dy*dy) / (2 * 64))
		}
	}
	mean := 0.0
	for _, v := range g.Rho {
		mean += v
	}
	mean /= float64(m * m)
	g.Solve()

	h2 := g.BinW * g.BinH
	maxErr, maxRho := 0.0, 0.0
	for j := 8; j < m-8; j++ {
		for i := 8; i < m-8; i++ {
			lap := (g.Psi[g.Index(i+1, j)] + g.Psi[g.Index(i-1, j)] +
				g.Psi[g.Index(i, j+1)] + g.Psi[g.Index(i, j-1)] -
				4*g.Psi[g.Index(i, j)]) / h2
			want := -(g.Rho[g.Index(i, j)] - mean)
			if e := math.Abs(lap - want); e > maxErr {
				maxErr = e
			}
			if v := math.Abs(want); v > maxRho {
				maxRho = v
			}
		}
	}
	if maxErr > 0.02*maxRho {
		t.Errorf("Poisson residual %v exceeds 2%% of max charge %v", maxErr, maxRho)
	}
}

// Energy of concentrated charge must exceed energy of the same charge
// spread uniformly — this is exactly why minimizing Eq. 3 spreads cells.
func TestEnergyFavorsSpreading(t *testing.T) {
	region := geom.RectWH(0, 0, 32, 32)
	conc := NewGrid(region, 32, 32)
	conc.AddRect(geom.RectWH(12, 12, 8, 8), 1)
	conc.Solve()

	spread := NewGrid(region, 32, 32)
	spread.AddRect(geom.RectWH(0, 0, 32, 32), 64.0/1024.0)
	spread.Solve()

	if conc.Energy() <= spread.Energy() {
		t.Errorf("energy concentrated %v <= spread %v", conc.Energy(), spread.Energy())
	}
	if spread.Energy() > 1e-9 {
		t.Errorf("uniform charge energy = %v, want ~0", spread.Energy())
	}
}

func TestOverflowMetric(t *testing.T) {
	g := NewGrid(geom.RectWH(0, 0, 16, 16), 16, 16)
	// 16 area units concentrated in a 4x4 block: density 1 in those bins.
	g.AddRect(geom.RectWH(0, 0, 4, 4), 1)
	ovf := g.Overflow(0.5, 16)
	// Each of the 16 bins holds 1.0 against a target of 0.5 → overflow
	// 0.5 per bin × 16 bins × binArea 1 = 8, normalized by area 16 → 0.5.
	if math.Abs(ovf-0.5) > 1e-9 {
		t.Errorf("Overflow = %v, want 0.5", ovf)
	}
	// Spread uniformly: density 16/256 per bin, below target → 0.
	g2 := NewGrid(geom.RectWH(0, 0, 16, 16), 16, 16)
	g2.AddRect(geom.RectWH(0, 0, 16, 16), 16.0/256.0)
	if ovf := g2.Overflow(0.5, 16); ovf != 0 {
		t.Errorf("uniform Overflow = %v, want 0", ovf)
	}
	if got := g2.Overflow(0.5, 0); got != 0 {
		t.Errorf("zero-area Overflow = %v, want 0", got)
	}
}

func TestOverflowAccountsForFixed(t *testing.T) {
	g := NewGrid(geom.RectWH(0, 0, 16, 16), 16, 16)
	g.AddFixedRect(geom.RectWH(0, 0, 4, 4), 1) // bins fully blocked
	g.Reset()
	g.AddRect(geom.RectWH(0, 0, 4, 4), 0.25) // movable on top of macro
	// Free capacity under the macro is zero, so all 4 units overflow.
	ovf := g.Overflow(1.0, 4)
	if math.Abs(ovf-1.0) > 1e-9 {
		t.Errorf("Overflow over macro = %v, want 1", ovf)
	}
}

func TestForceOnEscapedRectPullsBack(t *testing.T) {
	g := NewGrid(geom.RectWH(0, 0, 32, 32), 32, 32)
	g.AddRect(geom.RectWH(24, 12, 8, 8), 2) // charge near right edge
	g.Solve()
	// A rect fully outside to the right should feel the field of the bin
	// nearest its clamped center — pointing left, away from the charge.
	fx, _ := g.ForceOnRect(geom.RectWH(40, 14, 2, 2))
	if fx >= 0 {
		t.Errorf("escaped rect fx = %v, want < 0 (pull back/left)", fx)
	}
}

func TestBinOfClamps(t *testing.T) {
	g := NewGrid(geom.RectWH(0, 0, 16, 16), 8, 8)
	i, j := g.BinOf(geom.Pt(-5, 100))
	if i != 0 || j != 7 {
		t.Errorf("BinOf clamped = (%d,%d), want (0,7)", i, j)
	}
	i, j = g.BinOf(geom.Pt(3, 3))
	if i != 1 || j != 1 {
		t.Errorf("BinOf = (%d,%d), want (1,1)", i, j)
	}
}

func TestBinRect(t *testing.T) {
	g := NewGrid(geom.RectWH(10, 20, 16, 32), 8, 8)
	r := g.BinRect(1, 2)
	if r.Lo != geom.Pt(12, 28) || r.W() != 2 || r.H() != 4 {
		t.Errorf("BinRect = %v", r)
	}
}

func TestNewGridRejectsBadSizes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewGrid accepted non-power-of-two size")
		}
	}()
	NewGrid(geom.RectWH(0, 0, 1, 1), 7, 8)
}

func BenchmarkSolve128(b *testing.B) {
	g := NewGrid(geom.RectWH(0, 0, 128, 128), 128, 128)
	g.AddRect(geom.RectWH(30, 30, 40, 40), 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Solve()
	}
}

// rectSoup builds a deterministic set of rectangles spread over (and
// slightly past) the region, exercising clipping and multi-bin overlap.
func rectSoup(n int, region geom.Rect) []geom.Rect {
	rects := make([]geom.Rect, n)
	rng := rand.New(rand.NewSource(42))
	for i := range rects {
		w := 0.5 + 6*rng.Float64()
		h := 0.5 + 6*rng.Float64()
		x := region.Lo.X - 2 + (region.W()+4)*rng.Float64()
		y := region.Lo.Y - 2 + (region.H()+4)*rng.Float64()
		rects[i] = geom.RectWH(x, y, w, h)
	}
	return rects
}

// TestDepositRectsMatchesSerialAddRect proves the banded parallel deposit
// is bit-identical to Reset + AddRect-in-order, for several worker counts.
func TestDepositRectsMatchesSerialAddRect(t *testing.T) {
	region := geom.RectWH(0, 0, 64, 64)
	rects := rectSoup(300, region)

	ref := NewGrid(region, 32, 32)
	ref.AddFixedRect(geom.RectWH(10, 10, 8, 8), 1)
	ref.Reset()
	for _, r := range rects {
		ref.AddRect(r, 1)
	}

	for _, workers := range []int{1, 2, 3, 4} {
		g := NewGrid(region, 32, 32)
		g.AddFixedRect(geom.RectWH(10, 10, 8, 8), 1)
		g.SetWorkers(workers)
		g.DepositRects(rects)
		for i := range g.Rho {
			if g.Rho[i] != ref.Rho[i] {
				t.Fatalf("workers=%d: Rho[%d] = %v, want %v (bit-exact)", workers, i, g.Rho[i], ref.Rho[i])
			}
		}
	}
}

// TestSolveParallelMatchesSerial proves the sharded transform batches give
// bit-identical potential and field for any worker count.
func TestSolveParallelMatchesSerial(t *testing.T) {
	region := geom.RectWH(0, 0, 64, 64)
	rects := rectSoup(200, region)

	ref := NewGrid(region, 32, 32)
	ref.DepositRects(rects)
	ref.Solve()

	for _, workers := range []int{2, 3, 4, 16} {
		g := NewGrid(region, 32, 32)
		g.SetWorkers(workers)
		g.DepositRects(rects)
		g.Solve()
		for i := range g.Psi {
			if g.Psi[i] != ref.Psi[i] || g.Ex[i] != ref.Ex[i] || g.Ey[i] != ref.Ey[i] {
				t.Fatalf("workers=%d: bin %d solve mismatch psi %v/%v ex %v/%v ey %v/%v",
					workers, i, g.Psi[i], ref.Psi[i], g.Ex[i], ref.Ex[i], g.Ey[i], ref.Ey[i])
			}
		}
	}
}

// TestOverflowParallelMatchesSerial uses a grid large enough for multiple
// fixed reduction shards and checks the ratio is bit-identical across
// worker counts.
func TestOverflowParallelMatchesSerial(t *testing.T) {
	region := geom.RectWH(0, 0, 256, 256)
	rects := rectSoup(500, region)

	ref := NewGrid(region, 128, 128)
	if ref.ovfShards < 2 {
		t.Fatalf("test wants multiple overflow shards, got %d", ref.ovfShards)
	}
	ref.DepositRects(rects)
	want := ref.Overflow(0.7, 1234.5)

	for _, workers := range []int{2, 4, 16} {
		g := NewGrid(region, 128, 128)
		g.SetWorkers(workers)
		g.DepositRects(rects)
		if got := g.Overflow(0.7, 1234.5); got != want {
			t.Fatalf("workers=%d: overflow = %v, want %v (bit-exact)", workers, got, want)
		}
	}
}

// TestGridSteadyStateZeroAlloc guards the serial hot path: once the grid is
// built, deposit + solve + force + overflow allocate nothing.
func TestGridSteadyStateZeroAlloc(t *testing.T) {
	region := geom.RectWH(0, 0, 64, 64)
	rects := rectSoup(64, region)
	g := NewGrid(region, 32, 32)
	g.DepositRects(rects) // warm up
	g.Solve()

	if n := testing.AllocsPerRun(10, func() {
		g.DepositRects(rects)
		g.Solve()
		g.ForceOnRect(rects[0])
		g.Overflow(0.8, 100)
	}); n != 0 {
		t.Errorf("serial steady-state iteration allocates %v per run, want 0", n)
	}
}
