package density

import (
	"time"

	"puffer/internal/geom"
)

// Solver is the contract the placement engine drives the density model
// through: charge deposit, spectral solve, overflow and force readout, plus
// the multi-resolution protocol (Level/Refine). Two implementations exist:
//
//   - *Grid, the single-level degenerate case — always at level 0, never
//     refining;
//   - *Pyramid, a stack of power-of-two grids over the same region that
//     starts on the coarsest level and refines toward level 0 as the
//     placement's overflow drops.
//
// Every implementation preserves the Grid guarantees the engine relies on:
// results are bit-deterministic for any worker count, and the steady-state
// deposit → solve → force → overflow cycle is allocation-free in serial.
type Solver interface {
	// Active returns the grid currently receiving deposits and solves.
	Active() *Grid
	// Finest returns the level-0 grid (the final placement resolution).
	Finest() *Grid
	// Level returns the active level: 0 is finest, Levels()-1 coarsest.
	Level() int
	// Levels returns the number of resolution levels.
	Levels() int
	// Refine switches to the next finer level, reporting whether a switch
	// happened (false when already at level 0).
	Refine() bool

	// SetWorkers caps data parallelism on every level.
	SetWorkers(n int)
	// AddFixedRect deposits a fixed-cell rectangle into the baseline of
	// every level, so the fixed landscape is consistent across refinement.
	AddFixedRect(r geom.Rect, scale float64)
	// DepositRects replaces the movable charge on the active level.
	DepositRects(rects []geom.Rect)
	// Solve computes potential and field on the active level.
	Solve()
	// Overflow reports the active level's density overflow ratio.
	Overflow(target, totalMovableArea float64) float64
	// ForceOnRect reads the active level's field under a rectangle.
	ForceOnRect(r geom.Rect) (fx, fy float64)
	// Energy returns the active level's total potential energy.
	Energy() float64

	// Solves and SolveSkips report the executed-vs-skipped spectral solve
	// counters, summed across levels.
	Solves() int
	SolveSkips() int
	// PhaseWalls returns cumulative spectral-solve wall time split by
	// phase (analysis, frequency response, synthesis), summed across
	// levels.
	PhaseWalls() (analysis, freq, synth time.Duration)
}

// Compile-time interface checks.
var (
	_ Solver = (*Grid)(nil)
	_ Solver = (*Pyramid)(nil)
)

// minPyramidDim is the smallest dimension a coarse pyramid level may have;
// requested level counts are clamped so no level goes below it.
const minPyramidDim = 8

// Pyramid is a multi-resolution stack of grids over one region.
// levels[0] is the finest (the requested M×N); each coarser level halves
// both dimensions. The active level starts at the coarsest and moves toward
// 0 via Refine. Because DepositRects fully rewrites the movable charge,
// switching levels needs no coefficient migration: the next deposit
// populates the finer grid exactly, and the fixed baseline was deposited
// into every level at setup.
type Pyramid struct {
	levels []*Grid // levels[0] finest … levels[len-1] coarsest
	active int
}

// NewPyramid creates a pyramid whose finest level is an m×n grid over
// region (both powers of two, as for NewGrid) with up to `levels`
// resolution levels; the count is clamped so the coarsest level keeps both
// dimensions ≥ 8. levels <= 1 yields a single-level pyramid equivalent to a
// bare Grid.
func NewPyramid(region geom.Rect, m, n, levels int) *Pyramid {
	if levels < 1 {
		levels = 1
	}
	for levels > 1 && (m>>(levels-1) < minPyramidDim || n>>(levels-1) < minPyramidDim) {
		levels--
	}
	p := &Pyramid{levels: make([]*Grid, levels)}
	for k := 0; k < levels; k++ {
		p.levels[k] = NewGrid(region, m>>k, n>>k)
	}
	p.active = levels - 1
	return p
}

// Active returns the grid currently receiving deposits and solves.
func (p *Pyramid) Active() *Grid { return p.levels[p.active] }

// Finest returns the level-0 grid.
func (p *Pyramid) Finest() *Grid { return p.levels[0] }

// Level returns the active level index (0 = finest).
func (p *Pyramid) Level() int { return p.active }

// Levels returns the number of resolution levels.
func (p *Pyramid) Levels() int { return len(p.levels) }

// Refine switches to the next finer level. The caller must re-deposit and
// re-solve afterwards (the finer grid's charge is whatever its last use
// left there); the placement engine does both through its λ re-anchoring.
func (p *Pyramid) Refine() bool {
	if p.active == 0 {
		return false
	}
	p.active--
	return true
}

// SetLevel jumps directly to level k (clamped), used when resuming a
// checkpointed run that recorded its active level.
func (p *Pyramid) SetLevel(k int) {
	p.active = geom.ClampInt(k, 0, len(p.levels)-1)
}

// SetWorkers caps data parallelism on every level.
func (p *Pyramid) SetWorkers(n int) {
	for _, g := range p.levels {
		g.SetWorkers(n)
	}
}

// AddFixedRect deposits a fixed rectangle into every level's baseline.
func (p *Pyramid) AddFixedRect(r geom.Rect, scale float64) {
	for _, g := range p.levels {
		g.AddFixedRect(r, scale)
	}
}

// DepositRects replaces the movable charge on the active level.
func (p *Pyramid) DepositRects(rects []geom.Rect) { p.Active().DepositRects(rects) }

// Solve computes potential and field on the active level.
func (p *Pyramid) Solve() { p.Active().Solve() }

// Overflow reports the active level's density overflow ratio.
func (p *Pyramid) Overflow(target, totalMovableArea float64) float64 {
	return p.Active().Overflow(target, totalMovableArea)
}

// ForceOnRect reads the active level's field under a rectangle.
func (p *Pyramid) ForceOnRect(r geom.Rect) (fx, fy float64) {
	return p.Active().ForceOnRect(r)
}

// Energy returns the active level's total potential energy.
func (p *Pyramid) Energy() float64 { return p.Active().Energy() }

// Solves sums the executed-solve counters across levels.
func (p *Pyramid) Solves() int {
	n := 0
	for _, g := range p.levels {
		n += g.Solves()
	}
	return n
}

// SolveSkips sums the skipped-solve counters across levels.
func (p *Pyramid) SolveSkips() int {
	n := 0
	for _, g := range p.levels {
		n += g.SolveSkips()
	}
	return n
}

// PhaseWalls sums the per-phase spectral walls across levels.
func (p *Pyramid) PhaseWalls() (analysis, freq, synth time.Duration) {
	for _, g := range p.levels {
		a, f, s := g.PhaseWalls()
		analysis += a
		freq += f
		synth += s
	}
	return
}
