package density

import (
	"math"
	"testing"

	"puffer/internal/geom"
)

// TestGridComplexVsRealSolve cross-checks the two transform engines: the
// fused real-input path must reproduce the mirror-extension reference's
// potential and field to rounding error.
func TestGridComplexVsRealSolve(t *testing.T) {
	region := geom.RectWH(0, 0, 64, 64)
	rects := rectSoup(200, region)

	ref := NewGridKind(region, 64, 32, SolverComplex)
	ref.DepositRects(rects)
	ref.Solve()

	g := NewGridKind(region, 64, 32, SolverReal)
	g.DepositRects(rects)
	g.Solve()

	scale := 0.0
	for _, v := range ref.Psi {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	tol := 1e-11 * scale
	for i := range g.Psi {
		if math.Abs(g.Psi[i]-ref.Psi[i]) > tol ||
			math.Abs(g.Ex[i]-ref.Ex[i]) > tol ||
			math.Abs(g.Ey[i]-ref.Ey[i]) > tol {
			t.Fatalf("bin %d: real/complex mismatch psi %v/%v ex %v/%v ey %v/%v",
				i, g.Psi[i], ref.Psi[i], g.Ex[i], ref.Ex[i], g.Ey[i], ref.Ey[i])
		}
	}
}

// TestSolveSkipOnRedeposit covers the fingerprint skip, including the
// placement engine's actual call pattern: a full deposit + solve, a
// movables-only deposit (overflow probe, no solve) in between, then the
// same full deposit again — the second solve must be skipped and leave the
// field bit-identical.
func TestSolveSkipOnRedeposit(t *testing.T) {
	region := geom.RectWH(0, 0, 32, 32)
	full := rectSoup(50, region)
	probe := full[:30] // a different list, as computeOverflow would deposit

	g := NewGrid(region, 16, 16)
	g.DepositRects(full)
	g.Solve()
	if g.Solves() != 1 || g.SolveSkips() != 0 {
		t.Fatalf("after first solve: solves=%d skips=%d", g.Solves(), g.SolveSkips())
	}
	psi := append([]float64(nil), g.Psi...)

	g.DepositRects(probe) // no solve: overflow-style probe
	g.DepositRects(full)
	g.Solve()
	if g.Solves() != 1 || g.SolveSkips() != 1 {
		t.Fatalf("after redeposit solve: solves=%d skips=%d, want 1/1", g.Solves(), g.SolveSkips())
	}
	for i := range psi {
		if g.Psi[i] != psi[i] {
			t.Fatalf("skipped solve changed Psi[%d]: %v vs %v", i, g.Psi[i], psi[i])
		}
	}

	// A genuinely different list must solve again.
	g.DepositRects(probe)
	g.Solve()
	if g.Solves() != 2 || g.SolveSkips() != 1 {
		t.Fatalf("after new-list solve: solves=%d skips=%d, want 2/1", g.Solves(), g.SolveSkips())
	}
}

// TestSolveSkipInvalidation proves every non-DepositRects charge mutation
// voids the skip: AddRect, Reset, a new fixed baseline, and direct Rho
// writes all force the next Solve to run.
func TestSolveSkipInvalidation(t *testing.T) {
	region := geom.RectWH(0, 0, 32, 32)
	rects := rectSoup(40, region)

	g := NewGrid(region, 16, 16)
	g.DepositRects(rects)
	g.Solve()

	// AddRect on top of the deposit: same list must not skip afterwards.
	g.AddRect(geom.RectWH(1, 1, 3, 3), 1)
	g.DepositRects(rects)
	g.Solve()
	if g.Solves() != 2 {
		t.Fatalf("solve skipped across AddRect: solves=%d", g.Solves())
	}

	// A changed fixed baseline makes the same rect list a different charge.
	g.AddFixedRect(geom.RectWH(20, 20, 6, 6), 1)
	g.DepositRects(rects)
	g.Solve()
	if g.Solves() != 3 {
		t.Fatalf("solve skipped across AddFixedRect: solves=%d", g.Solves())
	}

	// Reset, then direct Rho writes (TestPoissonResidual style): no
	// fingerprint, so Solve always runs.
	g.Reset()
	g.Rho[0] += 1
	g.Solve()
	g.Solve()
	if g.Solves() != 5 || g.SolveSkips() != 0 {
		t.Fatalf("direct-Rho solves skipped: solves=%d skips=%d", g.Solves(), g.SolveSkips())
	}
}

// TestGridSteadyStateZeroAllocAlternating guards the full solve path under
// the zero-alloc contract: alternating between two rect lists defeats the
// fingerprint skip, so every iteration rasterizes and solves for real.
func TestGridSteadyStateZeroAllocAlternating(t *testing.T) {
	region := geom.RectWH(0, 0, 64, 64)
	a := rectSoup(64, region)
	b := append([]geom.Rect(nil), a...)
	for i := range b {
		b[i] = b[i].Translate(geom.Pt(0.25, -0.25))
	}
	g := NewGrid(region, 32, 32)
	g.DepositRects(a) // warm up both fingerprint buffers
	g.Solve()
	g.DepositRects(b)
	g.Solve()

	flip := false
	if n := testing.AllocsPerRun(10, func() {
		r := a
		if flip {
			r = b
		}
		flip = !flip
		g.DepositRects(r)
		g.Solve()
		g.ForceOnRect(r[0])
		g.Overflow(0.8, 100)
	}); n != 0 {
		t.Errorf("alternating steady-state iteration allocates %v per run, want 0", n)
	}
	if g.SolveSkips() != 0 {
		t.Errorf("alternating deposits skipped %d solves, want 0", g.SolveSkips())
	}
}

// TestPyramidConstruction checks level sizing, clamping, and the starting
// level.
func TestPyramidConstruction(t *testing.T) {
	region := geom.RectWH(0, 0, 64, 64)
	p := NewPyramid(region, 64, 32, 3)
	if p.Levels() != 3 {
		t.Fatalf("Levels = %d, want 3", p.Levels())
	}
	if p.Level() != 2 {
		t.Fatalf("starting Level = %d, want coarsest (2)", p.Level())
	}
	if g := p.Finest(); g.M != 64 || g.N != 32 {
		t.Errorf("Finest = %dx%d, want 64x32", g.M, g.N)
	}
	if g := p.Active(); g.M != 16 || g.N != 8 {
		t.Errorf("coarsest Active = %dx%d, want 16x8", g.M, g.N)
	}

	// Requesting more levels than the minimum dimension allows clamps: a
	// 32x32 finest grid supports at most 8x8 coarsest (32>>2), i.e. 3 levels.
	p = NewPyramid(region, 32, 32, 7)
	if p.Levels() != 3 {
		t.Errorf("clamped Levels = %d, want 3", p.Levels())
	}
	if g := p.Active(); g.M != 8 || g.N != 8 {
		t.Errorf("clamped coarsest = %dx%d, want 8x8", g.M, g.N)
	}

	// Degenerate single level behaves like a bare grid.
	p = NewPyramid(region, 16, 16, 0)
	if p.Levels() != 1 || p.Level() != 0 || p.Refine() {
		t.Error("single-level pyramid should start and stay at level 0")
	}
}

// TestPyramidRefineAndDelegation walks the refinement ladder and checks the
// Solver methods always act on the active level, with the fixed baseline
// present on every level.
func TestPyramidRefineAndDelegation(t *testing.T) {
	region := geom.RectWH(0, 0, 64, 64)
	p := NewPyramid(region, 32, 32, 2)
	p.SetWorkers(2)
	p.AddFixedRect(geom.RectWH(4, 4, 8, 8), 1)
	rects := rectSoup(100, region)

	for lvl := p.Level(); ; lvl-- {
		g := p.Active()
		if got := p.Level(); got != lvl {
			t.Fatalf("Level = %d, want %d", got, lvl)
		}
		if g.M != 32>>lvl {
			t.Fatalf("level %d grid is %dx%d", lvl, g.M, g.N)
		}
		if !g.hasFixed || g.totalFixedArea == 0 {
			t.Fatalf("level %d missing the fixed baseline", lvl)
		}
		p.DepositRects(rects)
		p.Solve()
		if g.Solves() != 1 {
			t.Fatalf("level %d: active grid did not solve", lvl)
		}
		if p.Energy() != g.Energy() {
			t.Fatal("Energy not delegated to the active level")
		}
		fx, fy := p.ForceOnRect(rects[0])
		gfx, gfy := g.ForceOnRect(rects[0])
		if fx != gfx || fy != gfy {
			t.Fatal("ForceOnRect not delegated to the active level")
		}
		if p.Overflow(0.8, 100) != g.Overflow(0.8, 100) {
			t.Fatal("Overflow not delegated to the active level")
		}
		if lvl == 0 {
			break
		}
		if !p.Refine() {
			t.Fatal("Refine returned false above level 0")
		}
	}
	if p.Refine() {
		t.Error("Refine at level 0 must report false")
	}
	if p.Solves() != p.Levels() {
		t.Errorf("summed Solves = %d, want %d", p.Solves(), p.Levels())
	}
	a, f, s := p.PhaseWalls()
	if a <= 0 || f < 0 || s <= 0 {
		t.Errorf("PhaseWalls = %v/%v/%v, want positive analysis and synthesis", a, f, s)
	}

	p.SetLevel(99)
	if p.Level() != p.Levels()-1 {
		t.Errorf("SetLevel(99) = %d, want clamp to coarsest", p.Level())
	}
	p.SetLevel(-3)
	if p.Level() != 0 {
		t.Errorf("SetLevel(-3) = %d, want clamp to 0", p.Level())
	}
}
