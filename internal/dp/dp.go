// Package dp implements detailed placement: post-legalization wirelength
// refinement by single-cell moves into row gaps and adjacent-cell swaps.
//
// Commercial flows spend a large fraction of their runtime here, which is
// how the commercial comparator of Table II gets its wirelength edge; the
// PUFFER flow runs a padding-preserving variant so the white space
// injected for routability survives refinement (the consistency argument
// of Sec. III-D).
package dp

import (
	"context"
	"fmt"
	"math"
	"sort"

	"puffer/internal/flow"
	"puffer/internal/geom"
	"puffer/internal/netlist"
)

// Config controls refinement.
type Config struct {
	// Passes is the number of full move+swap sweeps.
	Passes int
	// WindowSites bounds how far (in sites) a cell may move per step.
	WindowSites int
	// PreservePadding keeps the white space around padded cells: a padded
	// cell must retain at least PadW/2 clearance on each side, and padded
	// cells do not participate in swaps.
	PreservePadding bool
}

// DefaultConfig returns a single-pass refinement.
func DefaultConfig() Config {
	return Config{Passes: 1, WindowSites: 40}
}

// Result reports what refinement did.
type Result struct {
	Moves      int
	Swaps      int
	Passes     int // full move+swap sweeps actually executed
	HPWLBefore float64
	HPWLAfter  float64
}

// rowCell is one placed cell within a row.
type rowCell struct {
	id int
	x  float64 // physical lower-left x
	w  float64 // physical width
}

// Refine improves HPWL in place. The design must already be legalized; the
// result stays legal (row-aligned, site-aligned, overlap-free).
func Refine(d *netlist.Design, cfg Config) (Result, error) {
	return RefineCtx(context.Background(), d, cfg)
}

// RefineCtx is Refine with cancellation: the context is checked before
// each full move+swap pass. Every pass leaves the design legal, so a
// canceled refinement returns the partial Result (with HPWLAfter of the
// completed passes) plus an error wrapping flow.ErrCanceled, and the
// design remains a valid legalized placement.
func RefineCtx(ctx context.Context, d *netlist.Design, cfg Config) (Result, error) {
	res := Result{HPWLBefore: d.HPWL(), HPWLAfter: 0}
	if cfg.Passes <= 0 {
		res.HPWLAfter = res.HPWLBefore
		return res, nil
	}
	siteW := d.SiteWidth
	if siteW <= 0 || d.RowHeight <= 0 {
		return res, fmt.Errorf("dp: design lacks site/row geometry")
	}

	// Row occupancy, keyed by quantized y.
	rows := map[int64][]rowCell{}
	rowKey := func(y float64) int64 {
		return int64(math.Round((y - d.Region.Lo.Y) / d.RowHeight))
	}
	for i := range d.Cells {
		c := &d.Cells[i]
		if c.Fixed {
			continue
		}
		k := rowKey(c.Y)
		rows[k] = append(rows[k], rowCell{id: i, x: c.X, w: c.W})
	}
	for k := range rows {
		sort.Slice(rows[k], func(a, b int) bool { return rows[k][a].x < rows[k][b].x })
	}
	// Fixed obstacles per row. Fixed cells need not be row-aligned, so the
	// covered row range uses floor semantics over the outline.
	obstacles := map[int64][]rowCell{}
	for i := range d.Cells {
		c := &d.Cells[i]
		if !c.Fixed {
			continue
		}
		r := c.Rect()
		k0 := int64(math.Floor((r.Lo.Y - d.Region.Lo.Y) / d.RowHeight))
		k1 := int64(math.Ceil((r.Hi.Y-d.Region.Lo.Y)/d.RowHeight)) - 1
		for k := k0; k <= k1; k++ {
			obstacles[k] = append(obstacles[k], rowCell{id: -1, x: c.X, w: c.W})
		}
	}

	margin := func(id int) float64 {
		if !cfg.PreservePadding {
			return 0
		}
		return d.Cells[id].PadW / 2
	}

	window := float64(cfg.WindowSites) * siteW
	for pass := 0; pass < cfg.Passes; pass++ {
		if err := flow.Check(ctx); err != nil {
			res.HPWLAfter = d.HPWL()
			return res, err
		}
		res.Passes++
		moves, swaps := 0, 0
		// Phase 1: slide each cell toward its HPWL-optimal x within its
		// row's free span around it.
		for _, k := range sortedKeys(rows) {
			cells := rows[k]
			for idx := range cells {
				rc := &cells[idx]
				c := &d.Cells[rc.id]
				m := margin(rc.id)
				// Free span: between the neighbouring cells/obstacles,
				// bounded by the cell's fence when constrained.
				fb := d.FenceRect(rc.id)
				lo := fb.Lo.X + m
				hi := fb.Hi.X - m
				if idx > 0 {
					prev := cells[idx-1]
					lo = math.Max(lo, prev.x+prev.w+margin(prev.id)+m)
				}
				if idx+1 < len(cells) {
					next := cells[idx+1]
					hi = math.Min(hi, next.x-margin(next.id)-m)
				}
				for _, ob := range obstacles[k] {
					if ob.x+ob.w <= rc.x {
						lo = math.Max(lo, ob.x+ob.w+m)
					} else if ob.x >= rc.x+rc.w {
						hi = math.Min(hi, ob.x-m)
					}
				}
				lo = math.Max(lo, rc.x-window)
				hi = math.Min(hi, rc.x+rc.w+window)
				if hi-lo < rc.w-1e-9 {
					continue
				}
				target := optimalX(d, rc.id)
				nx, ok := clampSnap(target, lo, hi-rc.w, rc.x, d.Region.Lo.X, siteW)
				if !ok || nx == rc.x {
					continue
				}
				delta := hpwlDeltaMove(d, rc.id, nx, c.Y)
				if delta < -1e-12 {
					c.X = nx
					rc.x = nx
					moves++
				}
			}
		}
		// Phase 1b: cross-row moves — relocate cells whose HPWL-optimal y
		// is a different row into a free gap there.
		for _, k := range sortedKeys(rows) {
			cells := rows[k]
			for idx := 0; idx < len(cells); idx++ {
				rc := cells[idx]
				c := &d.Cells[rc.id]
				targetY := optimalY(d, rc.id)
				kt := rowKey(targetY)
				if kt == k {
					continue
				}
				// Clamp the row jump to the window and the fence.
				fb := d.FenceRect(rc.id)
				kLo := rowKey(fb.Lo.Y + d.RowHeight - 1e-9)
				kHi := rowKey(fb.Hi.Y - d.RowHeight + 1e-9)
				if kt < kLo {
					kt = kLo
				}
				if kt > kHi {
					kt = kHi
				}
				if kt == k {
					continue
				}
				ny := d.Region.Lo.Y + float64(kt)*d.RowHeight
				m := margin(rc.id)
				nx, ok := findGap(d, rows[kt], obstacles[kt], rc, m, optimalX(d, rc.id), fb, siteW, window, cfg.PreservePadding)
				if !ok {
					continue
				}
				delta := hpwlDeltaMove(d, rc.id, nx, ny)
				if delta >= -1e-12 {
					continue
				}
				// Commit: remove from this row, insert into the target.
				c.X, c.Y = nx, ny
				rows[k] = append(cells[:idx], cells[idx+1:]...)
				cells = rows[k]
				idx--
				nr := rows[kt]
				pos := sort.Search(len(nr), func(q int) bool { return nr[q].x > nx })
				nr = append(nr, rowCell{})
				copy(nr[pos+1:], nr[pos:])
				nr[pos] = rowCell{id: rc.id, x: nx, w: rc.w}
				rows[kt] = nr
				moves++
			}
		}
		// Phase 2: adjacent swaps within each row.
		for _, k := range sortedKeys(rows) {
			cells := rows[k]
			for idx := 0; idx+1 < len(cells); idx++ {
				a, b := &cells[idx], &cells[idx+1]
				if cfg.PreservePadding && (d.Cells[a.id].PadW > 0 || d.Cells[b.id].PadW > 0) {
					continue
				}
				if d.Cells[a.id].Fence != d.Cells[b.id].Fence {
					continue // never swap across a fence boundary
				}
				// Consecutive movable cells may straddle a fixed obstacle;
				// never swap across one.
				blocked := false
				for _, ob := range obstacles[k] {
					if ob.x < b.x+b.w && ob.x+ob.w > a.x {
						blocked = true
						break
					}
				}
				if blocked {
					continue
				}
				// Swap order: b takes a's left edge, a abuts after b.
				// Total occupied span is unchanged, so legality holds.
				nbx := a.x
				nax := a.x + b.w
				if nax+a.w > b.x+b.w+1e-9 {
					continue // would spill past the old right edge
				}
				delta := hpwlDeltaSwap(d, a.id, nax, b.id, nbx)
				if delta < -1e-12 {
					d.Cells[a.id].X = nax
					d.Cells[b.id].X = nbx
					a.x, b.x = nax, nbx
					cells[idx], cells[idx+1] = cells[idx+1], cells[idx]
					swaps++
				}
			}
		}
		res.Moves += moves
		res.Swaps += swaps
		if moves+swaps == 0 {
			break
		}
	}
	res.HPWLAfter = d.HPWL()
	return res, nil
}

func sortedKeys(m map[int64][]rowCell) []int64 {
	ks := make([]int64, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(a, b int) bool { return ks[a] < ks[b] })
	return ks
}

// clampSnap clamps v to [lo, hi], snaps it to the site grid, and reports
// whether a legal snapped position exists; fallback keeps the cell where
// it is.
func clampSnap(v, lo, hi, oldX, origin, siteW float64) (float64, bool) {
	if hi < lo {
		return oldX, false
	}
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	s := origin + math.Round((v-origin)/siteW)*siteW
	if s < lo-1e-9 {
		s += siteW
	}
	if s > hi+1e-9 {
		s -= siteW
	}
	if s < lo-1e-9 || s > hi+1e-9 {
		return oldX, false
	}
	return s, true
}

// findGap locates a site-aligned position for rc (with margin m on both
// sides) in the given row near targetX, within the fence bounds fb and the
// move window. Returns the chosen x.
func findGap(d *netlist.Design, cells []rowCell, obs []rowCell, rc rowCell, m, targetX float64, fb geom.Rect, siteW, window float64, preserve bool) (float64, bool) {
	// Blockers: committed cells plus fixed obstacles, sorted by x.
	blockers := make([]rowCell, 0, len(cells)+len(obs))
	blockers = append(blockers, cells...)
	blockers = append(blockers, obs...)
	sort.Slice(blockers, func(a, b int) bool { return blockers[a].x < blockers[b].x })

	lo := math.Max(fb.Lo.X, targetX-window)
	hi := math.Min(fb.Hi.X, targetX+rc.w+window)
	bestX, bestDist := 0.0, math.Inf(1)
	found := false
	try := func(gLo, gHi float64) {
		gLo = math.Max(gLo+m, lo)
		gHi = math.Min(gHi-m, hi)
		if gHi-gLo < rc.w-1e-9 {
			return
		}
		if nx, ok := clampSnap(targetX, gLo, gHi-rc.w, rc.x, d.Region.Lo.X, siteW); ok {
			if dist := math.Abs(nx - targetX); dist < bestDist {
				bestDist = dist
				bestX = nx
				found = true
			}
		}
	}
	cursor := fb.Lo.X
	for _, b := range blockers {
		bm := 0.0
		if preserve && b.id >= 0 {
			bm = d.Cells[b.id].PadW / 2
		}
		if b.x-bm > cursor {
			try(cursor, b.x-bm)
		}
		if b.x+b.w+bm > cursor {
			cursor = b.x + b.w + bm
		}
	}
	try(cursor, fb.Hi.X)
	return bestX, found
}

// optimalY returns the median-based HPWL-optimal y for the cell.
func optimalY(d *netlist.Design, ci int) float64 {
	c := &d.Cells[ci]
	var bounds []float64
	for _, pid := range c.Pins {
		net := &d.Nets[d.Pins[pid].Net]
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, q := range net.Pins {
			if d.Pins[q].Cell == ci {
				continue
			}
			y := d.PinPos(q).Y
			lo = math.Min(lo, y)
			hi = math.Max(hi, y)
		}
		if !math.IsInf(lo, 1) {
			bounds = append(bounds, lo, hi)
		}
	}
	if len(bounds) == 0 {
		return c.Y
	}
	sort.Float64s(bounds)
	mid := (bounds[(len(bounds)-1)/2] + bounds[len(bounds)/2]) / 2
	return mid - c.H/2
}

// optimalX returns the median-based HPWL-optimal x for the cell: the
// median of the bounding intervals of its nets with the cell excluded.
func optimalX(d *netlist.Design, ci int) float64 {
	c := &d.Cells[ci]
	var bounds []float64
	for _, pid := range c.Pins {
		net := &d.Nets[d.Pins[pid].Net]
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, q := range net.Pins {
			if d.Pins[q].Cell == ci {
				continue
			}
			x := d.PinPos(q).X
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		if !math.IsInf(lo, 1) {
			bounds = append(bounds, lo, hi)
		}
	}
	if len(bounds) == 0 {
		return c.X
	}
	sort.Float64s(bounds)
	mid := (bounds[(len(bounds)-1)/2] + bounds[len(bounds)/2]) / 2
	return mid - c.W/2
}

// netsOf collects the unique nets touching a set of cells.
func netsOf(d *netlist.Design, cells ...int) []int {
	seen := map[int]bool{}
	var out []int
	for _, ci := range cells {
		for _, pid := range d.Cells[ci].Pins {
			n := d.Pins[pid].Net
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	return out
}

func netsHPWL(d *netlist.Design, nets []int) float64 {
	total := 0.0
	for _, n := range nets {
		w := d.Nets[n].Weight
		if w == 0 {
			w = 1
		}
		bb := d.NetBBox(n)
		total += w * (bb.W() + bb.H())
	}
	return total
}

// hpwlDeltaMove computes the HPWL change of moving cell ci to (nx, ny).
func hpwlDeltaMove(d *netlist.Design, ci int, nx, ny float64) float64 {
	nets := netsOf(d, ci)
	before := netsHPWL(d, nets)
	c := &d.Cells[ci]
	ox, oy := c.X, c.Y
	c.X, c.Y = nx, ny
	after := netsHPWL(d, nets)
	c.X, c.Y = ox, oy
	return after - before
}

// hpwlDeltaSwap computes the HPWL change of placing cell a at ax and cell
// b at bx.
func hpwlDeltaSwap(d *netlist.Design, a int, ax float64, b int, bx float64) float64 {
	nets := netsOf(d, a, b)
	before := netsHPWL(d, nets)
	ca, cb := &d.Cells[a], &d.Cells[b]
	oax, obx := ca.X, cb.X
	ca.X, cb.X = ax, bx
	after := netsHPWL(d, nets)
	ca.X, cb.X = oax, obx
	return after - before
}
