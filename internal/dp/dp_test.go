package dp

import (
	"math"
	"sort"
	"testing"

	"puffer/internal/geom"
	"puffer/internal/legal"
	"puffer/internal/netlist"
	"puffer/internal/synth"
)

// legalDesign produces a legalized synthetic design ready for refinement.
func legalDesign(t *testing.T, scale int) *netlist.Design {
	t.Helper()
	p, err := synth.ProfileByName("OR1200")
	if err != nil {
		t.Fatal(err)
	}
	d := synth.Generate(p, scale, 3)
	// Scatter cells deterministically (stand-in for global placement).
	n := 0
	for i := range d.Cells {
		c := &d.Cells[i]
		if c.Fixed {
			continue
		}
		c.X = d.Region.Lo.X + math.Mod(float64(n)*1.618*7, d.Region.W()-c.W)
		c.Y = d.Region.Lo.Y + math.Mod(float64(n)*2.414*3, d.Region.H()-c.H)
		n++
	}
	if _, err := legal.Legalize(d, legal.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	return d
}

// checkStillLegal verifies rows, sites, region, and overlaps.
func checkStillLegal(t *testing.T, d *netlist.Design) {
	t.Helper()
	type pc struct{ x0, x1, y float64 }
	var cells []pc
	for i := range d.Cells {
		c := &d.Cells[i]
		if c.Fixed {
			continue
		}
		ry := (c.Y - d.Region.Lo.Y) / d.RowHeight
		if math.Abs(ry-math.Round(ry)) > 1e-6 {
			t.Fatalf("cell %d off row grid", i)
		}
		sx := (c.X - d.Region.Lo.X) / d.SiteWidth
		if math.Abs(sx-math.Round(sx)) > 1e-6 {
			t.Fatalf("cell %d off site grid: x=%v", i, c.X)
		}
		if c.X < d.Region.Lo.X-1e-9 || c.X+c.W > d.Region.Hi.X+1e-9 {
			t.Fatalf("cell %d out of region", i)
		}
		for j := range d.Cells {
			f := &d.Cells[j]
			if f.Fixed && c.Rect().OverlapArea(f.Rect()) > 1e-9 {
				t.Fatalf("cell %d overlaps fixed %d", i, j)
			}
		}
		cells = append(cells, pc{c.X, c.X + c.W, c.Y})
	}
	sort.Slice(cells, func(a, b int) bool {
		if cells[a].y != cells[b].y {
			return cells[a].y < cells[b].y
		}
		return cells[a].x0 < cells[b].x0
	})
	for k := 1; k < len(cells); k++ {
		if cells[k].y == cells[k-1].y && cells[k].x0 < cells[k-1].x1-1e-6 {
			t.Fatalf("overlap in row %v: [%v,%v) vs [%v,%v)",
				cells[k].y, cells[k-1].x0, cells[k-1].x1, cells[k].x0, cells[k].x1)
		}
	}
}

func TestRefineImprovesHPWL(t *testing.T) {
	d := legalDesign(t, 1500)
	res, err := Refine(d, Config{Passes: 2, WindowSites: 60})
	if err != nil {
		t.Fatal(err)
	}
	if res.HPWLAfter > res.HPWLBefore {
		t.Errorf("HPWL worsened: %v -> %v", res.HPWLBefore, res.HPWLAfter)
	}
	if res.Moves+res.Swaps == 0 {
		t.Error("no refinement actions on a scattered design")
	}
	if got := d.HPWL(); math.Abs(got-res.HPWLAfter) > 1e-6 {
		t.Errorf("reported HPWLAfter %v != actual %v", res.HPWLAfter, got)
	}
	checkStillLegal(t, d)
	// A scattered placement should improve substantially.
	if res.HPWLAfter > 0.95*res.HPWLBefore {
		t.Errorf("improvement only %.2f%%", 100*(1-res.HPWLAfter/res.HPWLBefore))
	}
}

func TestRefineIsIdempotentAtFixpoint(t *testing.T) {
	d := legalDesign(t, 1500)
	if _, err := Refine(d, Config{Passes: 6, WindowSites: 60}); err != nil {
		t.Fatal(err)
	}
	res, err := Refine(d, Config{Passes: 1, WindowSites: 60})
	if err != nil {
		t.Fatal(err)
	}
	if res.HPWLAfter > res.HPWLBefore+1e-9 {
		t.Error("second refinement worsened HPWL")
	}
}

func TestPreservePaddingKeepsClearance(t *testing.T) {
	d := legalDesign(t, 1500)
	// Give every 4th cell padding and re-legalize to create white space.
	// Lift the utilization cap so the white space is really there and the
	// test isolates what refinement does to it.
	for i := range d.Cells {
		if !d.Cells[i].Fixed && i%8 == 0 {
			d.Cells[i].PadW = 0.5
		}
	}
	lcfg := legal.DefaultConfig()
	lcfg.MaxUtil = 1
	if _, err := legal.Legalize(d, lcfg); err != nil {
		t.Fatal(err)
	}
	if _, err := Refine(d, Config{Passes: 2, WindowSites: 60, PreservePadding: true}); err != nil {
		t.Fatal(err)
	}
	checkStillLegal(t, d)
	// Padded cells keep at least PadW/2-ish clearance on each side
	// (bounded by what legalization could give them).
	type pc struct {
		x0, x1, y float64
		id        int
	}
	var cells []pc
	for i := range d.Cells {
		c := &d.Cells[i]
		if c.Fixed {
			continue
		}
		cells = append(cells, pc{c.X, c.X + c.W, c.Y, i})
	}
	sort.Slice(cells, func(a, b int) bool {
		if cells[a].y != cells[b].y {
			return cells[a].y < cells[b].y
		}
		return cells[a].x0 < cells[b].x0
	})
	violations := 0
	for k := 1; k < len(cells); k++ {
		if cells[k].y != cells[k-1].y {
			continue
		}
		gap := cells[k].x0 - cells[k-1].x1
		needed := d.Cells[cells[k].id].PadW/2 + d.Cells[cells[k-1].id].PadW/2
		if needed > 0 && gap < needed*0.4 { // legalization may have relegated some
			violations++
		}
	}
	if violations > len(cells)/5 {
		t.Errorf("%d/%d padded gaps collapsed by refinement", violations, len(cells))
	}
}

func TestRefineRejectsBadGeometry(t *testing.T) {
	d := &netlist.Design{Region: geom.RectWH(0, 0, 10, 10)}
	if _, err := Refine(d, DefaultConfig()); err == nil {
		t.Error("no error for missing geometry")
	}
}

func TestZeroPassesNoop(t *testing.T) {
	d := legalDesign(t, 3000)
	before := d.HPWL()
	res, err := Refine(d, Config{Passes: 0})
	if err != nil {
		t.Fatal(err)
	}
	if d.HPWL() != before || res.Moves != 0 {
		t.Error("zero passes changed the design")
	}
}

func BenchmarkRefine(b *testing.B) {
	p, _ := synth.ProfileByName("OR1200")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d := synth.Generate(p, 1500, int64(i))
		if _, err := legal.Legalize(d, legal.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := Refine(d, DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}
