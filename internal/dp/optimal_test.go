package dp

import (
	"math"
	"testing"

	"puffer/internal/geom"
	"puffer/internal/netlist"
)

// TestOptimalXMedian verifies the median-interval computation on a
// hand-built case: cell connected to three nets whose other pins sit at
// known positions.
func TestOptimalXMedian(t *testing.T) {
	d := &netlist.Design{Region: geom.RectWH(0, 0, 100, 10), RowHeight: 1, SiteWidth: 0.5}
	c := d.AddCell(netlist.Cell{W: 2, H: 1, X: 50, Y: 0})
	// Three 2-pin nets with far pins at x = 10, 20, 80.
	for _, x := range []float64{10, 20, 80} {
		o := d.AddCell(netlist.Cell{W: 0, H: 0, X: x, Y: 5})
		n := d.AddNet("", 1)
		d.Connect(c, n, 1, 0.5) // pin at cell center x+1
		d.Connect(o, n, 0, 0)
	}
	// Bounds collected: {10,10},{20,20},{80,80} → sorted 10,10,20,20,80,80;
	// median pair = (20+20)/2 = 20; cell lower-left target = 20 - w/2 = 19.
	got := optimalX(d, c)
	if math.Abs(got-19) > 1e-9 {
		t.Errorf("optimalX = %v, want 19", got)
	}
}

// TestOptimalXNoNets returns the current position for unconnected cells.
func TestOptimalXNoNets(t *testing.T) {
	d := &netlist.Design{Region: geom.RectWH(0, 0, 10, 10), RowHeight: 1, SiteWidth: 0.5}
	c := d.AddCell(netlist.Cell{W: 1, H: 1, X: 4, Y: 0})
	if got := optimalX(d, c); got != 4 {
		t.Errorf("optimalX = %v, want unchanged 4", got)
	}
}

// TestHPWLDeltaMoveMatchesFull verifies the incremental delta against a
// full HPWL recomputation.
func TestHPWLDeltaMoveMatchesFull(t *testing.T) {
	d := &netlist.Design{Region: geom.RectWH(0, 0, 100, 10), RowHeight: 1, SiteWidth: 0.5}
	a := d.AddCell(netlist.Cell{W: 1, H: 1, X: 10, Y: 0})
	b := d.AddCell(netlist.Cell{W: 1, H: 1, X: 30, Y: 2})
	cc := d.AddCell(netlist.Cell{W: 1, H: 1, X: 70, Y: 4})
	n1 := d.AddNet("", 2)
	d.Connect(a, n1, 0.5, 0.5)
	d.Connect(b, n1, 0.5, 0.5)
	n2 := d.AddNet("", 1)
	d.Connect(a, n2, 0, 0)
	d.Connect(cc, n2, 0, 0)

	before := d.HPWL()
	delta := hpwlDeltaMove(d, a, 42, 3)
	d.Cells[a].X, d.Cells[a].Y = 42, 3
	after := d.HPWL()
	if math.Abs((after-before)-delta) > 1e-9 {
		t.Errorf("delta = %v, full recompute = %v", delta, after-before)
	}
}

// TestHPWLDeltaSwapMatchesFull does the same for swaps.
func TestHPWLDeltaSwapMatchesFull(t *testing.T) {
	d := &netlist.Design{Region: geom.RectWH(0, 0, 100, 10), RowHeight: 1, SiteWidth: 0.5}
	a := d.AddCell(netlist.Cell{W: 1, H: 1, X: 10, Y: 0})
	b := d.AddCell(netlist.Cell{W: 2, H: 1, X: 12, Y: 0})
	far := d.AddCell(netlist.Cell{W: 1, H: 1, X: 90, Y: 4})
	n1 := d.AddNet("", 1)
	d.Connect(a, n1, 0.5, 0.5)
	d.Connect(far, n1, 0.5, 0.5)
	n2 := d.AddNet("", 1)
	d.Connect(b, n2, 1, 0.5)
	d.Connect(far, n2, 0.5, 0.5)

	before := d.HPWL()
	delta := hpwlDeltaSwap(d, a, 12, b, 10)
	d.Cells[a].X = 12
	d.Cells[b].X = 10
	after := d.HPWL()
	if math.Abs((after-before)-delta) > 1e-9 {
		t.Errorf("swap delta = %v, full recompute = %v", delta, after-before)
	}
}

// TestCrossRowMove verifies phase 1b: a cell whose nets live two rows
// away is relocated there when a gap exists.
func TestCrossRowMove(t *testing.T) {
	d := &netlist.Design{Region: geom.RectWH(0, 0, 40, 10), RowHeight: 1, SiteWidth: 0.25}
	// Lone cell in row 0, all its neighbours in row 5.
	c := d.AddCell(netlist.Cell{W: 1, H: 1, X: 10, Y: 0})
	var anchors []int
	for k := 0; k < 3; k++ {
		anchors = append(anchors, d.AddCell(netlist.Cell{W: 1, H: 1, X: 8 + 2*float64(k), Y: 5}))
	}
	for _, a := range anchors {
		n := d.AddNet("", 1)
		d.Connect(c, n, 0.5, 0.5)
		d.Connect(a, n, 0.5, 0.5)
	}
	res, err := Refine(d, Config{Passes: 3, WindowSites: 80})
	if err != nil {
		t.Fatal(err)
	}
	if d.Cells[c].Y != 5 {
		t.Errorf("cell not moved to row 5: y=%v", d.Cells[c].Y)
	}
	if res.HPWLAfter >= res.HPWLBefore {
		t.Errorf("no HPWL gain from the vertical move: %v -> %v", res.HPWLBefore, res.HPWLAfter)
	}
	checkStillLegal(t, d)
}

// TestCrossRowMoveRespectsFences: a fenced cell may not jump to a row
// outside its fence even if its nets pull it there.
func TestCrossRowMoveRespectsFences(t *testing.T) {
	d := &netlist.Design{Region: geom.RectWH(0, 0, 40, 10), RowHeight: 1, SiteWidth: 0.25}
	d.Fences = append(d.Fences, netlist.Fence{Name: "f", Rect: geom.RectWH(0, 0, 40, 2)})
	c := d.AddCell(netlist.Cell{W: 1, H: 1, X: 10, Y: 0, Fence: 1})
	a := d.AddCell(netlist.Cell{W: 1, H: 1, X: 10, Y: 8})
	n := d.AddNet("", 1)
	d.Connect(c, n, 0.5, 0.5)
	d.Connect(a, n, 0.5, 0.5)
	if _, err := Refine(d, Config{Passes: 2, WindowSites: 80}); err != nil {
		t.Fatal(err)
	}
	if y := d.Cells[c].Y; y > 1 {
		t.Errorf("fenced cell escaped to y=%v", y)
	}
}

// TestClampSnap covers the snapping corner cases.
func TestClampSnap(t *testing.T) {
	// span [1.0, 3.0], origin 0, site 0.25
	if v, ok := clampSnap(2.13, 1, 3, 9, 0, 0.25); !ok || v != 2.25 {
		t.Errorf("snap = %v ok=%v, want 2.25", v, ok)
	}
	if v, ok := clampSnap(-5, 1, 3, 9, 0, 0.25); !ok || v != 1 {
		t.Errorf("clamp lo = %v ok=%v, want 1", v, ok)
	}
	if v, ok := clampSnap(99, 1, 3, 9, 0, 0.25); !ok || v != 3 {
		t.Errorf("clamp hi = %v ok=%v, want 3", v, ok)
	}
	// Inverted span: fail, keep old.
	if v, ok := clampSnap(2, 3, 1, 9, 0, 0.25); ok || v != 9 {
		t.Errorf("inverted span = %v ok=%v, want old 9", v, ok)
	}
	// Span narrower than a site with no site point inside.
	if _, ok := clampSnap(1.6, 1.55, 1.7, 9, 0, 0.25); ok {
		t.Error("snap succeeded in a site-free span")
	}
}
