// Package eco implements incremental ECO (engineering change order)
// sessions over the PUFFER flow: a Session owns the warm state one
// placement run leaves behind — the parsed design, the congestion
// estimator's per-net demand journal and cached RSMT topologies, the
// density solver with its fixed baseline and deposit fingerprints, the
// wirelength model, the padding history, and the last placement — and
// re-enters the staged pipeline from that state for each submitted Delta
// instead of starting from scratch. A small delta re-places in a fraction
// of cold wall (BenchmarkECOCold vs BenchmarkECOWarm) while preserving the
// engine contracts: results are bit-deterministic for any worker count,
// and an N-delta chain lands in the same quality band as a cold run on the
// final design. See DESIGN.md §3g.
package eco

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"puffer/internal/netlist"
)

// DeltaFormat identifies the Delta JSON document version. ParseDelta
// accepts documents carrying this format string or none (the bare-object
// convenience form); anything else is rejected.
const DeltaFormat = "puffer/delta/v1"

// CellMove relocates a cell (standard cell or macro) to a new center.
type CellMove struct {
	Cell int     `json:"cell"`
	X    float64 `json:"x"`
	Y    float64 `json:"y"`
}

// CellResize changes a cell's physical outline. Zero W or H keeps the
// current value, so a width-only resize need not repeat the height.
type CellResize struct {
	Cell int     `json:"cell"`
	W    float64 `json:"w,omitempty"`
	H    float64 `json:"h,omitempty"`
}

// NetReweight overrides a net's weight.
type NetReweight struct {
	Net    int     `json:"net"`
	Weight float64 `json:"weight"`
}

// PadOverride pins a cell's routability padding to an explicit width,
// overriding whatever the optimizer computed. Negative values are invalid;
// zero clears the padding.
type PadOverride struct {
	Cell int     `json:"cell"`
	PadW float64 `json:"pad_w"`
}

// Delta is one ECO change set applied atomically by Session.Apply: cell
// and macro moves/resizes, net-weight changes, and padding overrides. The
// zero Delta is valid and empty (Apply rejects it — there is nothing to
// re-place).
type Delta struct {
	// Format is DeltaFormat; optional in the JSON form.
	Format string `json:"format,omitempty"`

	Moves   []CellMove    `json:"moves,omitempty"`
	Resizes []CellResize  `json:"resizes,omitempty"`
	Weights []NetReweight `json:"weights,omitempty"`
	Padding []PadOverride `json:"padding,omitempty"`
}

// Empty reports whether the delta contains no changes.
func (dl *Delta) Empty() bool {
	return len(dl.Moves) == 0 && len(dl.Resizes) == 0 &&
		len(dl.Weights) == 0 && len(dl.Padding) == 0
}

// ParseDelta strictly decodes a Delta document: unknown fields, trailing
// data, and foreign format strings are all errors. It performs only
// structural validation — Validate checks the ids and values against a
// concrete design.
func ParseDelta(data []byte) (*Delta, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	dl := &Delta{}
	if err := dec.Decode(dl); err != nil {
		return nil, fmt.Errorf("eco: decode delta: %w", err)
	}
	// Reject trailing content after the document — a second JSON document
	// or plain garbage alike: a concatenation is more likely a client bug
	// than an intentional encoding.
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err != io.EOF {
		return nil, fmt.Errorf("eco: delta has trailing data after the JSON document")
	}
	if dl.Format != "" && dl.Format != DeltaFormat {
		return nil, fmt.Errorf("eco: delta format %q, want %q", dl.Format, DeltaFormat)
	}
	return dl, nil
}

// finite reports whether v is a usable coordinate/size value.
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Validate checks every id and value in the delta against design d:
// cell/net ids must be in range, coordinates finite, sizes positive,
// weights finite and non-negative, padding non-negative. Moved cells must
// land with their outline inside the placement region (fixed macros
// included — a macro shoved off-core is a client error, not a placement
// problem).
func (dl *Delta) Validate(d *netlist.Design) error {
	for i, m := range dl.Moves {
		if m.Cell < 0 || m.Cell >= len(d.Cells) {
			return fmt.Errorf("eco: moves[%d]: cell %d out of range [0,%d)", i, m.Cell, len(d.Cells))
		}
		if !finite(m.X) || !finite(m.Y) {
			return fmt.Errorf("eco: moves[%d]: non-finite target (%v, %v)", i, m.X, m.Y)
		}
		c := &d.Cells[m.Cell]
		if m.X-c.W/2 < d.Region.Lo.X || m.X+c.W/2 > d.Region.Hi.X ||
			m.Y-c.H/2 < d.Region.Lo.Y || m.Y+c.H/2 > d.Region.Hi.Y {
			return fmt.Errorf("eco: moves[%d]: cell %d at (%v, %v) leaves the region", i, m.Cell, m.X, m.Y)
		}
	}
	for i, r := range dl.Resizes {
		if r.Cell < 0 || r.Cell >= len(d.Cells) {
			return fmt.Errorf("eco: resizes[%d]: cell %d out of range [0,%d)", i, r.Cell, len(d.Cells))
		}
		if !finite(r.W) || !finite(r.H) || r.W < 0 || r.H < 0 {
			return fmt.Errorf("eco: resizes[%d]: invalid size (%v x %v)", i, r.W, r.H)
		}
		if r.W == 0 && r.H == 0 {
			return fmt.Errorf("eco: resizes[%d]: no dimension given", i)
		}
	}
	for i, w := range dl.Weights {
		if w.Net < 0 || w.Net >= len(d.Nets) {
			return fmt.Errorf("eco: weights[%d]: net %d out of range [0,%d)", i, w.Net, len(d.Nets))
		}
		if !finite(w.Weight) || w.Weight < 0 {
			return fmt.Errorf("eco: weights[%d]: invalid weight %v", i, w.Weight)
		}
	}
	for i, p := range dl.Padding {
		if p.Cell < 0 || p.Cell >= len(d.Cells) {
			return fmt.Errorf("eco: padding[%d]: cell %d out of range [0,%d)", i, p.Cell, len(d.Cells))
		}
		if !finite(p.PadW) || p.PadW < 0 {
			return fmt.Errorf("eco: padding[%d]: invalid pad_w %v", i, p.PadW)
		}
	}
	return nil
}

// apply mutates d with the delta's changes and reports whether any fixed
// cell moved or resized — the caller must then invalidate warm state that
// bakes the fixed landscape in (the density solver's baseline). Validate
// must have passed.
func (dl *Delta) apply(d *netlist.Design) (touchedFixed bool) {
	for _, m := range dl.Moves {
		c := &d.Cells[m.Cell]
		c.X = m.X - c.W/2
		c.Y = m.Y - c.H/2
		if c.Fixed {
			touchedFixed = true
		}
	}
	for _, r := range dl.Resizes {
		c := &d.Cells[r.Cell]
		// Resize about the center so the cell does not drift.
		cx, cy := c.X+c.W/2, c.Y+c.H/2
		if r.W > 0 {
			c.W = r.W
		}
		if r.H > 0 {
			c.H = r.H
		}
		c.X, c.Y = cx-c.W/2, cy-c.H/2
		if c.Fixed {
			touchedFixed = true
		}
	}
	for _, w := range dl.Weights {
		d.Nets[w.Net].Weight = w.Weight
	}
	for _, p := range dl.Padding {
		d.Cells[p.Cell].PadW = p.PadW
	}
	return touchedFixed
}

// Size returns the number of individual changes in the delta, the measure
// session telemetry and the service report.
func (dl *Delta) Size() int {
	return len(dl.Moves) + len(dl.Resizes) + len(dl.Weights) + len(dl.Padding)
}
