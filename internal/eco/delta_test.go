package eco

import (
	"math"
	"strings"
	"testing"
)

func TestParseDeltaStrict(t *testing.T) {
	cases := []struct {
		name    string
		in      string
		wantErr string // substring; empty = must parse
	}{
		{"bare object", `{"moves":[{"cell":0,"x":1,"y":2}]}`, ""},
		{"with format", `{"format":"puffer/delta/v1","weights":[{"net":1,"weight":2}]}`, ""},
		{"empty object", `{}`, ""},
		{"foreign format", `{"format":"puffer/job/v1"}`, "format"},
		{"unknown field", `{"movez":[]}`, "unknown field"},
		{"trailing data", `{} {"moves":[]}`, "trailing"},
		{"not an object", `[1,2,3]`, "decode"},
		{"truncated", `{"moves":[{"cell":`, "decode"},
		{"empty input", ``, "decode"},
	}
	for _, tc := range cases {
		_, err := ParseDelta([]byte(tc.in))
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error: %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestDeltaValidateHostileValues(t *testing.T) {
	d := testDesign(2000, 1)
	bad := []*Delta{
		{Moves: []CellMove{{Cell: -1, X: 1, Y: 1}}},
		{Moves: []CellMove{{Cell: len(d.Cells), X: 1, Y: 1}}},
		{Moves: []CellMove{{Cell: 0, X: math.Inf(1), Y: 1}}},
		{Moves: []CellMove{{Cell: 0, X: d.Region.Hi.X * 100, Y: 1}}},
		{Resizes: []CellResize{{Cell: 0, W: -3}}},
		{Resizes: []CellResize{{Cell: 0}}},
		{Weights: []NetReweight{{Net: -2, Weight: 1}}},
		{Weights: []NetReweight{{Net: 0, Weight: -1}}},
		{Padding: []PadOverride{{Cell: 1 << 40, PadW: 0}}},
		{Padding: []PadOverride{{Cell: 0, PadW: -0.5}}},
	}
	for i, dl := range bad {
		if err := dl.Validate(d); err == nil {
			t.Errorf("case %d: hostile delta validated", i)
		}
	}
}

// FuzzParseDelta hammers the strict decoder with hostile documents: it
// must never panic, and any delta it accepts must survive Validate against
// a real design without panicking (Validate may reject it, of course).
func FuzzParseDelta(f *testing.F) {
	f.Add([]byte(`{"moves":[{"cell":0,"x":1,"y":2}]}`))
	f.Add([]byte(`{"format":"puffer/delta/v1","resizes":[{"cell":3,"w":2.5}]}`))
	f.Add([]byte(`{"weights":[{"net":0,"weight":1e308}],"padding":[{"cell":0,"pad_w":0}]}`))
	f.Add([]byte(`{"moves":[{"cell":-1,"x":1e999,"y":-1e999}]}`))
	f.Add([]byte(`{"moves":[{"cell":9007199254740993,"x":0,"y":0}]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"moves":`))
	d := testDesign(2000, 1)
	f.Fuzz(func(t *testing.T, data []byte) {
		dl, err := ParseDelta(data)
		if err != nil {
			return
		}
		_ = dl.Validate(d)
		_ = dl.Empty()
		_ = dl.Size()
	})
}
