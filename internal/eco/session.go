package eco

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"puffer/internal/cong"
	"puffer/internal/netlist"
	"puffer/internal/obs"
	"puffer/internal/padding"
	"puffer/internal/place"
	"puffer/pipeline"
)

// ErrNotPlaced is returned by Apply before the session has a base
// placement (Place has not run, or the session was not restored from a
// snapshot).
var ErrNotPlaced = errors.New("eco: session has no base placement")

// ErrBadDelta wraps every Apply rejection that happens before the delta
// touches the design — empty deltas and Validate failures. Callers can
// rely on the session's warm state being untouched when errors.Is reports
// this; any other Apply error may leave a partially re-placed design.
var ErrBadDelta = errors.New("eco: invalid delta")

// Options tunes the warm re-placement a Session runs per delta. The zero
// value selects defaults derived from the cold configuration.
type Options struct {
	// WarmMaxIters caps GP iterations of a warm re-place; 0 derives
	// max(40, cold MaxIters / 5).
	WarmMaxIters int
	// WarmMinIters is the warm run's MinIters; 0 selects 8. Warm runs
	// start from a near-solution, so the cold engine's long mandatory
	// burn-in would dominate the delta latency for nothing.
	WarmMinIters int
}

func (o Options) warmMax(coldMax int) int {
	if o.WarmMaxIters > 0 {
		return o.WarmMaxIters
	}
	m := coldMax / 5
	if m < 40 {
		m = 40
	}
	return m
}

func (o Options) warmMin() int {
	if o.WarmMinIters > 0 {
		return o.WarmMinIters
	}
	return 8
}

// Session owns the warm state of one design across an ECO conversation:
// the design itself (mutated in place by deltas and re-placements), the
// shared routability optimizer — whose congestion estimator carries the
// per-net demand journal and cached RSMT topologies — and the placement
// engine state harvested after every run (density solver with its fixed
// baseline and deposit fingerprints, wirelength model with its per-worker
// scratch). Place runs the cold pipeline once; Apply then re-enters the
// staged pipeline per delta from warm state.
//
// Ownership and invalidation rules (DESIGN.md §3g): the Session is the
// sole owner of its design and engine state — callers must not mutate the
// design between calls. Warm state is dropped selectively: a delta that
// moves or resizes a FIXED cell invalidates the density solver (its
// baseline bakes the fixed landscape in) but keeps the wirelength model
// and the estimator journal (the estimator detects the dirtied nets
// itself from Gcell-quantized pin positions).
//
// All methods are safe for concurrent use; they serialize on one mutex
// (the warm state is inherently single-writer).
type Session struct {
	mu   sync.Mutex
	d    *netlist.Design
	cfg  pipeline.Config
	opts Options

	opt          *padding.Optimizer
	gridW, gridH int // congestion Gcell grid
	gridM, gridN int // finest density grid of the base placement
	reuse        *place.Reuse

	placed       bool
	deltas       int
	lastHPWL     float64
	lastOverflow float64
	gridLevel    int
	estStats     *cong.Stats
}

// New opens a session over d with the given cold-run configuration. The
// session takes ownership of d.
func New(d *netlist.Design, cfg pipeline.Config, opts Options) (*Session, error) {
	rc, err := pipeline.NewRunContext(d, cfg)
	if err != nil {
		return nil, err
	}
	return &Session{
		d:     d,
		cfg:   cfg,
		opts:  opts,
		gridW: rc.GridW,
		gridH: rc.GridH,
		opt:   rc.PadOptimizer(),
	}, nil
}

// Design returns the session's design. The session owns it — read-only
// for callers, and racy while a Place/Apply is in flight.
func (s *Session) Design() *netlist.Design { return s.d }

// Deltas reports how many deltas the session has applied.
func (s *Session) Deltas() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.deltas
}

// LastHPWL reports the HPWL of the most recent placement (0 before Place).
func (s *Session) LastHPWL() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastHPWL
}

// Placed reports whether the session has a base placement.
func (s *Session) Placed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.placed
}

// Place runs the cold pipeline once to establish the base placement. It
// must be called (or the session restored from a snapshot) before Apply.
func (s *Session) Place(ctx context.Context) (*pipeline.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.placed {
		return nil, errors.New("eco: session already has a base placement")
	}
	rc, err := pipeline.NewRunContext(s.d, s.cfg)
	if err != nil {
		return nil, err
	}
	rc.UsePadOptimizer(s.opt)
	if err := pipeline.New().Run(ctx, rc); err != nil {
		return rc.Result, err
	}
	s.placed = true
	s.harvest(rc)
	return rc.Result, nil
}

// Apply atomically applies dl to the design and re-places it from warm
// state: the previous placement seeds GP (WarmStart), the congestion
// estimator re-stamps only the nets the delta dirtied, and the density
// solver and wirelength model are adopted from the previous run when still
// valid. The pipeline stages (place, legalize, dp) run as in a cold run,
// so the result honors the same legality contract. On error the design may
// hold partially re-placed positions; the session stays usable — the next
// Apply re-enters from whatever state the design is in.
func (s *Session) Apply(ctx context.Context, dl *Delta) (*pipeline.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.placed {
		return nil, ErrNotPlaced
	}
	if dl == nil || dl.Empty() {
		return nil, fmt.Errorf("%w: empty delta", ErrBadDelta)
	}
	if err := dl.Validate(s.d); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadDelta, err)
	}
	// The delta span roots this warm re-place in the session's trace: the
	// padding refresh and the pipeline's "run" tree nest under it, so a
	// spooled session trace reads as base placement followed by one
	// eco.apply subtree per delta.
	span, ctx := obs.Start(ctx, s.cfg.Obs, "eco.apply")
	defer span.End()
	span.SetArg("moves", len(dl.Moves))
	span.SetArg("resizes", len(dl.Resizes))
	span.SetArg("weights", len(dl.Weights))
	span.SetArg("padding", len(dl.Padding))
	if dl.apply(s.d) && s.reuse != nil {
		// The fixed landscape changed: the density baseline is stale.
		// The wirelength model only reads positions — keep it.
		s.reuse.Den = nil
	}
	s.opt.ReArm()

	rc, err := pipeline.NewRunContext(s.d, s.warmConfig())
	if err != nil {
		return nil, err
	}
	rc.UsePadOptimizer(s.opt)
	// One padding refresh against the delta before GP re-entry: the
	// incremental estimator re-stamps only the delta-dirtied nets, the
	// optimizer recycles stale padding and folds in any overrides the
	// delta seeded. In-loop triggering during the warm run then follows
	// the usual τ/η/ξ/cooldown rules.
	info, err := s.opt.RunCtx(ctx)
	if err != nil {
		return rc.Result, fmt.Errorf("eco: delta padding refresh: %w", err)
	}
	rc.Result.PaddingRuns = append(rc.Result.PaddingRuns, info)

	if err := pipeline.New().Run(ctx, rc); err != nil {
		return rc.Result, err
	}
	s.deltas++
	s.harvest(rc)
	return rc.Result, nil
}

// warmConfig derives the per-delta pipeline configuration from the cold
// one: warm-started single-grid GP at the base placement's finest
// resolution, with the engine-state reuse handles attached and the
// iteration budget cut to the warm caps.
func (s *Session) warmConfig() pipeline.Config {
	cfg := s.cfg
	p := &cfg.Place
	p.WarmStart = true
	p.QuadraticInit = false
	p.PyramidLevels = 0
	p.RefineOverflow = nil
	if s.gridM > 0 {
		p.GridM, p.GridN = s.gridM, s.gridN
	}
	p.MaxIters = s.opts.warmMax(p.MaxIters)
	p.MinIters = s.opts.warmMin()
	// A warm run starts on a plateau by construction — the previous
	// placement was converged — so the cold plateau window would let it
	// idle for dozens of iterations. A short window stops it as soon as
	// the delta is absorbed and overflow stops improving.
	if p.PlateauIters > 12 {
		p.PlateauIters = 12
	}
	p.Reuse = s.reuse
	return cfg
}

// harvest records the finished run's warm state and summary. A pyramid
// solver is reduced to its finest grid: warm re-places run single-grid at
// the final resolution, and the finest level carries the fixed baseline
// and fingerprints the next run wants.
func (s *Session) harvest(rc *pipeline.RunContext) {
	if r := rc.EngineReuse(); r != nil && r.Den != nil {
		fine := r.Den.Finest()
		s.reuse = &place.Reuse{Den: fine, WL: r.WL}
		s.gridM, s.gridN = fine.M, fine.N
	}
	s.lastHPWL = rc.Result.HPWL
	s.lastOverflow = rc.Result.GP.Overflow
	s.gridLevel = rc.GridLevel()
	if s.opt.Iter() > 0 {
		st := s.opt.Estimator().Stats()
		s.estStats = &st
	}
}
