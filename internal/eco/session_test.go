package eco

import (
	"context"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"puffer/internal/netlist"
	"puffer/internal/synth"
	"puffer/pipeline"
)

// testDesign generates a small synthetic design; same (scale, seed) means
// a bit-identical design.
func testDesign(scale int, seed int64) *netlist.Design {
	p, err := synth.ProfileByName("OR1200")
	if err != nil {
		panic(err)
	}
	return synth.Generate(p, scale, seed)
}

// testConfig is a fast cold configuration for session tests.
func testConfig(workers int) pipeline.Config {
	cfg := pipeline.DefaultConfig()
	cfg.Place.MaxIters = 150
	cfg.Place.MinIters = 20
	cfg.Place.Seed = 1
	cfg.Workers = workers
	return cfg
}

// moveDelta builds a delta displacing frac of the movable cells by (dx, dy)
// from their current centers, clamped to keep the outline in-region.
func moveDelta(d *netlist.Design, frac, dx, dy float64) *Delta {
	dl := &Delta{}
	ids := d.MovableIDs()
	step := int(1 / frac)
	if step < 1 {
		step = 1
	}
	for k := 0; k < len(ids); k += step {
		c := &d.Cells[ids[k]]
		ctr := c.Rect().Center()
		x := ctr.X + dx
		y := ctr.Y + dy
		if x-c.W/2 < d.Region.Lo.X {
			x = d.Region.Lo.X + c.W/2
		}
		if x+c.W/2 > d.Region.Hi.X {
			x = d.Region.Hi.X - c.W/2
		}
		if y-c.H/2 < d.Region.Lo.Y {
			y = d.Region.Lo.Y + c.H/2
		}
		if y+c.H/2 > d.Region.Hi.Y {
			y = d.Region.Hi.Y - c.H/2
		}
		dl.Moves = append(dl.Moves, CellMove{Cell: ids[k], X: x, Y: y})
	}
	return dl
}

func TestApplyRequiresBasePlacement(t *testing.T) {
	s, err := New(testDesign(2000, 1), testConfig(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply(context.Background(), &Delta{Weights: []NetReweight{{Net: 0, Weight: 2}}}); err != ErrNotPlaced {
		t.Fatalf("Apply before Place: got %v, want ErrNotPlaced", err)
	}
}

func TestApplyRejectsEmptyAndInvalidDeltas(t *testing.T) {
	s, err := New(testDesign(2000, 1), testConfig(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Place(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply(context.Background(), &Delta{}); err == nil {
		t.Fatal("empty delta accepted")
	}
	bad := &Delta{Moves: []CellMove{{Cell: 1 << 30, X: 0, Y: 0}}}
	if _, err := s.Apply(context.Background(), bad); err == nil {
		t.Fatal("out-of-range cell accepted")
	}
	nan := &Delta{Moves: []CellMove{{Cell: 0, X: math.NaN(), Y: 0}}}
	if _, err := s.Apply(context.Background(), nan); err == nil {
		t.Fatal("NaN coordinate accepted")
	}
}

// TestApplyDeterministicAcrossWorkers is the Session-level counterpart of
// TestGPDeterminismAcrossWorkers: the whole ECO path — cold place, then a
// delta chain through the incremental estimator, padding, warm GP, legal,
// and detailed placement — must produce bit-identical placements at any
// worker count.
func TestApplyDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) (*netlist.Design, []float64) {
		d := testDesign(1200, 7)
		s, err := New(d, testConfig(workers), Options{})
		if err != nil {
			t.Fatal(err)
		}
		var hpwls []float64
		res, err := s.Place(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		hpwls = append(hpwls, res.HPWL)
		for i, dl := range []*Delta{
			moveDelta(d, 0.04, 3.0, -2.0),
			{Weights: []NetReweight{{Net: 0, Weight: 3}, {Net: 5, Weight: 2}}},
		} {
			res, err := s.Apply(context.Background(), dl)
			if err != nil {
				t.Fatalf("delta %d (workers=%d): %v", i, workers, err)
			}
			hpwls = append(hpwls, res.HPWL)
		}
		return d, hpwls
	}
	d1, h1 := run(1)
	d4, h4 := run(4)
	for i := range h1 {
		if h1[i] != h4[i] {
			t.Fatalf("HPWL[%d] diverges: workers=1 %v, workers=4 %v", i, h1[i], h4[i])
		}
	}
	for i := range d1.Cells {
		if d1.Cells[i].X != d4.Cells[i].X || d1.Cells[i].Y != d4.Cells[i].Y {
			t.Fatalf("cell %d position diverges: (%v,%v) vs (%v,%v)",
				i, d1.Cells[i].X, d1.Cells[i].Y, d4.Cells[i].X, d4.Cells[i].Y)
		}
	}
}

// TestChainConvergesToColdQuality: after an N-delta chain, the session's
// placement must land in the same quality band as a cold run on the final
// design (same netlist mutations, fresh placement). Movable-cell moves do
// not change what a cold run sees — net weights and resizes do — so the
// cold reference applies only those.
func TestChainConvergesToColdQuality(t *testing.T) {
	d := testDesign(800, 3)
	cfg := testConfig(2)
	s, err := New(d, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Place(context.Background()); err != nil {
		t.Fatal(err)
	}
	deltas := []*Delta{
		moveDelta(d, 0.05, 4.0, 1.0),
		{Weights: []NetReweight{{Net: 2, Weight: 2.5}, {Net: 9, Weight: 1.8}}},
		{Resizes: []CellResize{{Cell: d.MovableIDs()[0], W: d.Cells[d.MovableIDs()[0]].W * 1.5}}},
		moveDelta(d, 0.05, -2.0, -3.0),
	}
	var warm *pipeline.Result
	for i, dl := range deltas {
		warm, err = s.Apply(context.Background(), dl)
		if err != nil {
			t.Fatalf("delta %d: %v", i, err)
		}
	}

	// Cold reference: fresh design, replay the netlist-level mutations.
	ref := testDesign(800, 3)
	for _, dl := range deltas {
		for _, w := range dl.Weights {
			ref.Nets[w.Net].Weight = w.Weight
		}
		for _, r := range dl.Resizes {
			c := &ref.Cells[r.Cell]
			if r.W > 0 {
				c.W = r.W
			}
			if r.H > 0 {
				c.H = r.H
			}
		}
	}
	cold, err := pipeline.Execute(context.Background(), ref, cfg)
	if err != nil {
		t.Fatal(err)
	}

	ratio := warm.HPWL / cold.HPWL
	t.Logf("warm chain HPWL=%.0f cold HPWL=%.0f ratio=%.3f (overflow warm=%.3f cold=%.3f)",
		warm.HPWL, cold.HPWL, ratio, warm.GP.Overflow, cold.GP.Overflow)
	if ratio < 0.7 || ratio > 1.3 {
		t.Fatalf("warm chain HPWL %.0f outside the cold quality band (cold %.0f, ratio %.3f)",
			warm.HPWL, cold.HPWL, ratio)
	}
	if warm.GP.Overflow > cold.GP.Overflow+0.15 {
		t.Fatalf("warm chain overflow %.3f much worse than cold %.3f",
			warm.GP.Overflow, cold.GP.Overflow)
	}
}

// TestParkRestoreNextDeltaExact: a parked-and-restored session's next
// delta must land on the same HPWL as the uninterrupted session's. With
// RebuildEvery=1 every estimate is a full rebuild — the incremental
// journal never carries state across calls — so the restored session
// (whose caches start cold) is bit-equal to the uninterrupted one.
func TestParkRestoreNextDeltaExact(t *testing.T) {
	cfg := testConfig(2)
	cfg.Strategy.Cong.RebuildEvery = 1

	d1 := testDesign(1200, 11)
	s1, err := New(d1, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Place(context.Background()); err != nil {
		t.Fatal(err)
	}
	delta1 := moveDelta(d1, 0.05, 2.5, -1.5)
	if _, err := s1.Apply(context.Background(), delta1); err != nil {
		t.Fatal(err)
	}

	// Park: snapshot, round-trip through disk like the service does.
	sn, err := s1.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "snapshot.json")
	if err := sn.Save(path); err != nil {
		t.Fatal(err)
	}
	sn2, err := LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}

	// Both sessions apply the same second delta. The delta is built
	// against s1's current placement; the restored design holds identical
	// positions (checkpoint), so it validates there too.
	delta2 := moveDelta(d1, 0.06, -3.0, 2.0)

	resU, err := s1.Apply(context.Background(), delta2)
	if err != nil {
		t.Fatal(err)
	}

	d2 := testDesign(1200, 11)
	s2, err := Restore(d2, cfg, Options{}, sn2)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Deltas() != 1 {
		t.Fatalf("restored session reports %d deltas, want 1", s2.Deltas())
	}
	resR, err := s2.Apply(context.Background(), delta2)
	if err != nil {
		t.Fatal(err)
	}

	if resU.HPWL != resR.HPWL {
		t.Fatalf("restored session HPWL %v != uninterrupted %v (diff %g)",
			resR.HPWL, resU.HPWL, resR.HPWL-resU.HPWL)
	}
	for i := range d1.Cells {
		if d1.Cells[i].X != d2.Cells[i].X || d1.Cells[i].Y != d2.Cells[i].Y {
			t.Fatalf("cell %d diverges after restore: (%v,%v) vs (%v,%v)",
				i, d1.Cells[i].X, d1.Cells[i].Y, d2.Cells[i].X, d2.Cells[i].Y)
		}
	}
}

// TestParkRestoreDefaultConfigBand is the same scenario under the default
// incremental estimator settings: the journal MAY carry sub-1e-9 drift the
// restored session does not reproduce, so the contract here is the quality
// band, not bit equality.
func TestParkRestoreDefaultConfigBand(t *testing.T) {
	cfg := testConfig(2)

	d1 := testDesign(1200, 13)
	s1, err := New(d1, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Place(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Apply(context.Background(), moveDelta(d1, 0.05, 2.0, 2.0)); err != nil {
		t.Fatal(err)
	}
	sn, err := s1.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	delta2 := moveDelta(d1, 0.05, -1.0, 3.0)
	resU, err := s1.Apply(context.Background(), delta2)
	if err != nil {
		t.Fatal(err)
	}

	d2 := testDesign(1200, 13)
	s2, err := Restore(d2, cfg, Options{}, sn)
	if err != nil {
		t.Fatal(err)
	}
	resR, err := s2.Apply(context.Background(), delta2)
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(resR.HPWL-resU.HPWL) / resU.HPWL
	t.Logf("uninterrupted HPWL=%.2f restored HPWL=%.2f rel=%.2e", resU.HPWL, resR.HPWL, rel)
	if rel > 0.05 {
		t.Fatalf("restored session HPWL %v drifted %.2f%% from uninterrupted %v",
			resR.HPWL, 100*rel, resU.HPWL)
	}
}

func TestRestoreRejectsWrongDesign(t *testing.T) {
	d := testDesign(1200, 11)
	s, err := New(d, testConfig(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Place(context.Background()); err != nil {
		t.Fatal(err)
	}
	sn, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	other := testDesign(1000, 11) // different scale → different netlist
	if _, err := Restore(other, testConfig(1), Options{}, sn); err == nil {
		t.Fatal("Restore accepted a snapshot for a different design")
	}
}

func TestDeltaTouchingFixedCellInvalidatesDensityReuse(t *testing.T) {
	d := testDesign(1200, 5)
	fixed := -1
	for i := range d.Cells {
		if d.Cells[i].Fixed {
			fixed = i
			break
		}
	}
	if fixed < 0 {
		t.Skip("profile generated no fixed cells")
	}
	s, err := New(d, testConfig(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Place(context.Background()); err != nil {
		t.Fatal(err)
	}
	if s.reuse == nil || s.reuse.Den == nil {
		t.Fatal("no density reuse harvested after cold place")
	}
	ctr := d.Cells[fixed].Rect().Center()
	dl := &Delta{Moves: []CellMove{{Cell: fixed, X: ctr.X + 1, Y: ctr.Y}}}
	if _, err := s.Apply(context.Background(), dl); err != nil {
		t.Fatal(err)
	}
	// The stale solver must have been dropped before the warm run; the
	// run then harvested a fresh one built with the new fixed baseline.
	if s.reuse == nil || s.reuse.Den == nil {
		t.Fatal("no density reuse harvested after delta")
	}
}

func seededRandomDelta(rng *rand.Rand, d *netlist.Design) *Delta {
	dl := &Delta{}
	ids := d.MovableIDs()
	for k := 0; k < len(ids)/20; k++ {
		ci := ids[rng.Intn(len(ids))]
		c := &d.Cells[ci]
		x := d.Region.Lo.X + c.W/2 + rng.Float64()*(d.Region.W()-c.W)
		y := d.Region.Lo.Y + c.H/2 + rng.Float64()*(d.Region.H()-c.H)
		dl.Moves = append(dl.Moves, CellMove{Cell: ci, X: x, Y: y})
	}
	return dl
}

// benchConfig is the production default flow (not the test-shortened
// one): the ECO SLO compares a warm small-delta re-place against the real
// cold wall a batch submission pays.
func benchConfig() pipeline.Config {
	cfg := pipeline.DefaultConfig()
	cfg.Place.Seed = 1
	return cfg
}

// BenchmarkECOCold measures a full cold placement of the benchmark design;
// BenchmarkECOWarm measures a small-delta warm re-place on an open
// session. CI tracks their ratio in BENCH_eco.json — the ECO SLO is
// warm ≤ 1/10 of cold.
func BenchmarkECOCold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d := testDesign(800, 1)
		s, err := New(d, benchConfig(), Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := s.Place(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkECOWarm(b *testing.B) {
	d := testDesign(800, 1)
	s, err := New(d, benchConfig(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.Place(context.Background()); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dl := seededRandomDelta(rng, d)
		b.StartTimer()
		if _, err := s.Apply(context.Background(), dl); err != nil {
			b.Fatal(err)
		}
	}
}
