package eco

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"os"

	"puffer/internal/fsx"
	"puffer/internal/netlist"
	"puffer/internal/padding"
	"puffer/pipeline"
)

// SnapshotFormat identifies the session snapshot JSON document version.
const SnapshotFormat = "puffer/eco-session/v1"

// Snapshot is the durable state of a parked session: enough to rebuild a
// Session that continues the delta chain with the same results. Pure
// caches — the estimator journal, density fingerprints, wirelength
// scratch — are deliberately NOT captured: they are rebuilt on the first
// warm run after restore, and rebuilding them never changes results (the
// estimator full-rebuild is the incremental path's own ground truth).
// What IS captured is everything that would change results if lost: the
// placement (cell positions, padding, net weights via the embedded
// pipeline checkpoint), delta-applied cell sizes, the padding history
// (Eq. 15 recycling depends on it), and the warm-grid resolution.
type Snapshot struct {
	Format     string `json:"format"`
	DesignHash string `json:"design_hash"`
	Deltas     int    `json:"deltas"`

	LastHPWL     float64 `json:"last_hpwl"`
	LastOverflow float64 `json:"last_overflow"`
	GridLevel    int     `json:"grid_level"`
	GridM        int     `json:"grid_m,omitempty"`
	GridN        int     `json:"grid_n,omitempty"`

	// Congestion-engine statistics of the last run, for inspection
	// (cmd/diag -session); not needed for restore.
	EstCalls     int     `json:"est_calls,omitempty"`
	EstRebuilds  int     `json:"est_rebuilds,omitempty"`
	EstDirtyNets int     `json:"est_dirty_nets,omitempty"`
	EstHitRate   float64 `json:"est_hit_rate,omitempty"`

	// CellW/CellH are the current cell sizes, indexed by cell ID: deltas
	// resize cells, and the checkpoint alone (positions, padding, net
	// weights) cannot reproduce that against a pristine design source.
	CellW []float64 `json:"cell_w"`
	CellH []float64 `json:"cell_h"`

	Checkpoint *pipeline.Checkpoint `json:"checkpoint"`
	Padding    padding.State        `json:"padding"`
}

// DesignHash fingerprints the netlist identity a snapshot is bound to:
// name, region, cell/net/pin counts, fixed flags, and the pin wiring.
// Geometry that deltas legitimately change (positions, sizes, padding,
// weights) is excluded, so the hash is stable across a session's life but
// catches restoring against the wrong design source.
func DesignHash(d *netlist.Design) string {
	h := fnv.New64a()
	var buf [8]byte
	wu := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	wf := func(v float64) { wu(math.Float64bits(v)) }
	h.Write([]byte(d.Name))
	wf(d.Region.Lo.X)
	wf(d.Region.Lo.Y)
	wf(d.Region.Hi.X)
	wf(d.Region.Hi.Y)
	wu(uint64(len(d.Cells)))
	wu(uint64(len(d.Nets)))
	wu(uint64(len(d.Pins)))
	for i := range d.Cells {
		if d.Cells[i].Fixed {
			wu(uint64(i))
		}
	}
	for i := range d.Pins {
		p := &d.Pins[i]
		wu(uint64(p.Cell)<<32 | uint64(uint32(p.Net)))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Snapshot captures the session's durable state. The session must have a
// base placement.
func (s *Session) Snapshot() (*Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.placed {
		return nil, ErrNotPlaced
	}
	sn := &Snapshot{
		Format:       SnapshotFormat,
		DesignHash:   DesignHash(s.d),
		Deltas:       s.deltas,
		LastHPWL:     s.lastHPWL,
		LastOverflow: s.lastOverflow,
		GridLevel:    s.gridLevel,
		GridM:        s.gridM,
		GridN:        s.gridN,
		CellW:        make([]float64, len(s.d.Cells)),
		CellH:        make([]float64, len(s.d.Cells)),
		Checkpoint:   pipeline.Capture(pipeline.StageDP, s.d),
		Padding:      s.opt.State(),
	}
	sn.Checkpoint.GridLevel = s.gridLevel
	for i := range s.d.Cells {
		sn.CellW[i] = s.d.Cells[i].W
		sn.CellH[i] = s.d.Cells[i].H
	}
	if s.estStats != nil {
		sn.EstCalls = s.estStats.Calls
		sn.EstRebuilds = s.estStats.FullRebuilds
		sn.EstDirtyNets = s.estStats.LastDirtyNets
		sn.EstHitRate = s.estStats.HitRate()
	}
	return sn, nil
}

// Validate checks the snapshot's internal consistency.
func (sn *Snapshot) Validate() error {
	if sn.Format != SnapshotFormat {
		return fmt.Errorf("eco: snapshot format %q, want %q", sn.Format, SnapshotFormat)
	}
	if sn.DesignHash == "" {
		return fmt.Errorf("eco: snapshot has no design hash")
	}
	if sn.Checkpoint == nil {
		return fmt.Errorf("eco: snapshot has no checkpoint")
	}
	if err := sn.Checkpoint.Validate(); err != nil {
		return fmt.Errorf("eco: snapshot checkpoint: %w", err)
	}
	if len(sn.CellW) != len(sn.Checkpoint.X) || len(sn.CellH) != len(sn.Checkpoint.X) {
		return fmt.Errorf("eco: snapshot cell sizes (%d/%d) disagree with checkpoint (%d cells)",
			len(sn.CellW), len(sn.CellH), len(sn.Checkpoint.X))
	}
	if sn.Deltas < 0 {
		return fmt.Errorf("eco: snapshot delta count %d is negative", sn.Deltas)
	}
	return nil
}

// Save writes the snapshot as JSON atomically (temp file + rename), so a
// crash mid-write leaves the previous complete snapshot in place.
func (sn *Snapshot) Save(path string) error {
	if err := sn.Validate(); err != nil {
		return fmt.Errorf("eco: save snapshot: %w", err)
	}
	data, err := json.Marshal(sn)
	if err != nil {
		return fmt.Errorf("eco: encode snapshot: %w", err)
	}
	return fsx.AtomicWriteFile(path, append(data, '\n'))
}

// LoadSnapshot reads and validates a snapshot written by Save.
func LoadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("eco: snapshot %s: file is empty", path)
	}
	sn := &Snapshot{}
	if err := json.Unmarshal(data, sn); err != nil {
		return nil, fmt.Errorf("eco: decode snapshot %s: %w", path, err)
	}
	if err := sn.Validate(); err != nil {
		return nil, fmt.Errorf("eco: snapshot %s: %w", path, err)
	}
	return sn, nil
}

// Restore rebuilds a parked session: d must be a fresh instance of the
// design the snapshot was captured from (same source the session was
// opened with — verified by DesignHash). The snapshot's cell sizes,
// placement checkpoint, and padding history are re-installed; engine
// caches rebuild on the first Apply. The restored session continues the
// delta chain where the parked one stopped.
func Restore(d *netlist.Design, cfg pipeline.Config, opts Options, sn *Snapshot) (*Session, error) {
	if err := sn.Validate(); err != nil {
		return nil, err
	}
	if got := DesignHash(d); got != sn.DesignHash {
		return nil, fmt.Errorf("eco: snapshot design hash %s does not match design %s", sn.DesignHash, got)
	}
	if len(sn.CellW) != len(d.Cells) {
		return nil, fmt.Errorf("eco: snapshot has %d cells, design has %d", len(sn.CellW), len(d.Cells))
	}
	for i := range d.Cells {
		d.Cells[i].W = sn.CellW[i]
		d.Cells[i].H = sn.CellH[i]
	}
	if err := sn.Checkpoint.Apply(d); err != nil {
		return nil, fmt.Errorf("eco: restore: %w", err)
	}
	s, err := New(d, cfg, opts)
	if err != nil {
		return nil, err
	}
	if err := s.opt.RestoreState(sn.Padding); err != nil {
		return nil, err
	}
	s.placed = true
	s.deltas = sn.Deltas
	s.lastHPWL = sn.LastHPWL
	s.lastOverflow = sn.LastOverflow
	s.gridLevel = sn.GridLevel
	s.gridM, s.gridN = sn.GridM, sn.GridN
	return s, nil
}
