package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"puffer"
	"puffer/internal/explore"
	"puffer/internal/feature"
	"puffer/internal/legal"
	"puffer/internal/router"
	"puffer/internal/synth"
)

// AblationResult compares a PUFFER mechanism switched on vs off on the
// stressed MEDIA_SUBSYS profile; the metric is HOF+VOF (%), smaller is
// better, which is also the strategy-exploration objective the paper uses.
type AblationResult struct {
	Name      string
	MetricOn  float64
	MetricOff float64
	WLOn      float64
	WLOff     float64
}

// ablationSeeds is how many seeds each ablation averages over; single-seed
// differences at these scales are dominated by placement noise.
const ablationSeeds = 3

// runConfigured places MEDIA_SUBSYS with a mutated config over several
// seeds and returns the mean HOF+VOF and WL.
func runConfigured(o Options, mutate func(*puffer.Config)) (float64, float64, error) {
	o = mergeDefaults(o)
	p, _ := synth.ProfileByName("MEDIA_SUBSYS")
	var ovf, wl float64
	for k := int64(0); k < ablationSeeds; k++ {
		seed := o.Seed + k
		d := synth.Generate(p, o.Scale, seed)
		cfg := puffer.DefaultConfig()
		cfg.Place.Seed = seed
		if o.PlaceIters > 0 {
			cfg.Place.MaxIters = o.PlaceIters
		}
		if mutate != nil {
			mutate(&cfg)
		}
		if _, err := puffer.Run(d, cfg); err != nil {
			return 0, 0, err
		}
		rr := puffer.Evaluate(d, router.DefaultConfig())
		ovf += (rr.HOF + rr.VOF) / ablationSeeds
		wl += rr.WL / ablationSeeds
	}
	return ovf, wl, nil
}

// AblationFeatures compares full multi-feature padding against padding
// from local features only (Sec. III-B's claim that local information
// cannot separate cells within a cluster).
func AblationFeatures(o Options) (AblationResult, error) {
	res := AblationResult{Name: "multi-feature vs local-only padding"}
	var err error
	if res.MetricOn, res.WLOn, err = runConfigured(o, nil); err != nil {
		return res, err
	}
	res.MetricOff, res.WLOff, err = runConfigured(o, func(cfg *puffer.Config) {
		cfg.Strategy.Weights[feature.SurroundCg] = 0
		cfg.Strategy.Weights[feature.SurroundPinDensity] = 0
		cfg.Strategy.Weights[feature.PinCg] = 0
		// Rebalance so total padding pressure stays comparable.
		cfg.Strategy.Weights[feature.LocalCg] *= 2
		cfg.Strategy.Weights[feature.LocalPinDensity] *= 2
	})
	return res, err
}

// AblationExpansion toggles the detour-imitating demand expansion
// (Sec. III-A3).
func AblationExpansion(o Options) (AblationResult, error) {
	res := AblationResult{Name: "detour-imitating expansion"}
	var err error
	if res.MetricOn, res.WLOn, err = runConfigured(o, nil); err != nil {
		return res, err
	}
	res.MetricOff, res.WLOff, err = runConfigured(o, func(cfg *puffer.Config) {
		cfg.Strategy.Cong.ExpandRadius = 0
	})
	return res, err
}

// AblationRecycling disables the padding recycle mechanism (Eq. 15): a
// huge ζ drives the recycle rate to zero.
func AblationRecycling(o Options) (AblationResult, error) {
	res := AblationResult{Name: "padding recycling"}
	var err error
	if res.MetricOn, res.WLOn, err = runConfigured(o, nil); err != nil {
		return res, err
	}
	res.MetricOff, res.WLOff, err = runConfigured(o, func(cfg *puffer.Config) {
		cfg.Strategy.Zeta = 1e12
	})
	return res, err
}

// AblationLegalPadding toggles white-space-assisted legalization
// (Sec. III-D): same global placement, legalization with vs without the
// inherited padding.
func AblationLegalPadding(o Options) (AblationResult, error) {
	res := AblationResult{Name: "white-space-assisted legalization"}
	var err error
	if res.MetricOn, res.WLOn, err = runConfigured(o, nil); err != nil {
		return res, err
	}
	res.MetricOff, res.WLOff, err = runConfigured(o, func(cfg *puffer.Config) {
		cfg.Legal = legal.Config{Theta: cfg.Strategy.Theta, MaxUtil: 0.05, InheritPadding: false}
	})
	return res, err
}

// AblationTPE compares the TPE strategy exploration against pure random
// search on a synthetic padding-strategy landscape with the same
// evaluation budget (the Sec. III-C claim), averaged over a few seeds so
// single-run luck does not decide the verdict.
func AblationTPE(seed int64) AblationResult {
	agg := AblationResult{Name: "TPE vs random search (strategy landscape)"}
	const trials = 3
	for k := int64(0); k < trials; k++ {
		r := ablationTPEOnce(seed + k)
		agg.MetricOn += r.MetricOn / trials
		agg.MetricOff += r.MetricOff / trials
	}
	return agg
}

func ablationTPEOnce(seed int64) AblationResult {
	res := AblationResult{}
	// A deterministic surrogate landscape standing in for "place + route
	// and report total overflow": smooth, multi-parameter, one basin.
	objective := func(a explore.Assignment) float64 {
		mu := a["mu"]
		beta := a["beta"]
		zeta := a["zeta"]
		pu := a["pu_high"]
		v := math.Pow(math.Log(mu)-math.Log(0.8), 2)*3 +
			math.Pow(beta-1.2, 2)*0.5 +
			math.Pow(math.Log(zeta)-math.Log(3), 2) +
			math.Pow(pu-0.08, 2)*40
		return v
	}
	params := []explore.Param{
		{Name: "mu", Kind: explore.LogUniform, Lo: 0.05, Hi: 10, Group: "pad"},
		{Name: "beta", Kind: explore.Uniform, Lo: -2, Hi: 4, Group: "pad"},
		{Name: "zeta", Kind: explore.LogUniform, Lo: 0.3, Hi: 50, Group: "recycle"},
		{Name: "pu_high", Kind: explore.Uniform, Lo: 0.01, Hi: 0.3, Group: "recycle"},
	}
	e := &explore.Explorer{
		Params: params, Eval: objective,
		TimeLimit: 40, EarlyStop: 40, Rounds: 2, Seed: seed,
	}
	_, best := e.Run()
	res.MetricOn = objective(best)
	budget := len(e.History())

	rng := rand.New(rand.NewSource(seed))
	bestRand := math.Inf(1)
	for k := 0; k < budget; k++ {
		a := explore.Assignment{}
		for _, p := range params {
			switch p.Kind {
			case explore.LogUniform:
				a[p.Name] = math.Exp(math.Log(p.Lo) + rng.Float64()*(math.Log(p.Hi)-math.Log(p.Lo)))
			default:
				a[p.Name] = p.Lo + rng.Float64()*(p.Hi-p.Lo)
			}
		}
		if y := objective(a); y < bestRand {
			bestRand = y
		}
	}
	res.MetricOff = bestRand
	return res
}

// FormatAblations renders ablation rows.
func FormatAblations(rows []AblationResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "ABLATIONS (metric: HOF+VOF %% — smaller is better)\n")
	fmt.Fprintf(&b, "%-44s %12s %12s %12s %12s\n", "mechanism", "on", "off", "WL on", "WL off")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-44s %12.3f %12.3f %12.0f %12.0f\n",
			r.Name, r.MetricOn, r.MetricOff, r.WLOn, r.WLOff)
	}
	return b.String()
}
