package experiments

import (
	"strings"
	"testing"
	"time"
)

// tinyOptions keeps experiment tests fast: ~100-cell designs.
func tinyOptions() Options {
	return Options{Scale: 12000, Seed: 1, PlaceIters: 150}
}

func TestTable1AllDesigns(t *testing.T) {
	rows := Table1(tinyOptions())
	if len(rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(rows))
	}
	for _, r := range rows {
		if r.Cells == 0 || r.Nets == 0 || r.Pins == 0 || r.Macros == 0 {
			t.Errorf("%s: degenerate row %+v", r.Name, r)
		}
		if r.PaperCells == 0 {
			t.Errorf("%s: paper reference missing", r.Name)
		}
	}
	text := FormatTable1(rows)
	for _, name := range []string{"OR1200", "OPENC910", "MEDIA_SUBSYS"} {
		if !strings.Contains(text, name) {
			t.Errorf("formatted table missing %s", name)
		}
	}
}

func TestTable2SingleDesign(t *testing.T) {
	o := tinyOptions()
	o.Designs = []string{"OR1200"}
	rows, sums, err := Table2(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 (one per placer)", len(rows))
	}
	for _, r := range rows {
		if r.WL <= 0 {
			t.Errorf("%s: zero WL", r.Placer)
		}
		if r.RT <= 0 {
			t.Errorf("%s: zero RT", r.Placer)
		}
		if r.HOF < 0 || r.VOF < 0 {
			t.Errorf("%s: negative overflow", r.Placer)
		}
	}
	if len(sums) != 3 {
		t.Fatalf("summaries = %d, want 3", len(sums))
	}
	for _, s := range sums {
		if s.Placer == PUFFER {
			if s.WLNorm != 1.0 || s.RTNorm != 1.0 {
				t.Errorf("PUFFER normalization = %v/%v, want 1/1", s.WLNorm, s.RTNorm)
			}
		}
	}
	text := FormatTable2(rows, sums)
	for _, want := range []string{"Commercial_Inn", "RePlAce", "PUFFER", "Average", "Pass Count"} {
		if !strings.Contains(text, want) {
			t.Errorf("formatted table missing %q", want)
		}
	}
}

func TestSummarizePassCounts(t *testing.T) {
	rows := []Table2Row{
		{Design: "a", Placer: PUFFER, HOF: 0.5, VOF: 2.0, WL: 100, RT: time.Second},
		{Design: "b", Placer: PUFFER, HOF: 1.0, VOF: 0.9, WL: 100, RT: time.Second},
		{Design: "a", Placer: RePlAce, HOF: 1.5, VOF: 0.5, WL: 110, RT: 2 * time.Second},
		{Design: "b", Placer: RePlAce, HOF: 0.2, VOF: 0.2, WL: 120, RT: 2 * time.Second},
	}
	sums := Summarize(rows)
	for _, s := range sums {
		switch s.Placer {
		case PUFFER:
			if s.PassCountHOF != 2 || s.PassCountVOF != 1 {
				t.Errorf("PUFFER pass counts = %d/%d, want 2/1", s.PassCountHOF, s.PassCountVOF)
			}
		case RePlAce:
			if s.PassCountHOF != 1 || s.PassCountVOF != 2 {
				t.Errorf("RePlAce pass counts = %d/%d, want 1/2", s.PassCountHOF, s.PassCountVOF)
			}
			if s.WLNorm != 1.15 {
				t.Errorf("RePlAce WLNorm = %v, want 1.15", s.WLNorm)
			}
			if s.RTNorm != 2 {
				t.Errorf("RePlAce RTNorm = %v, want 2", s.RTNorm)
			}
		}
	}
}

func TestSortRows(t *testing.T) {
	rows := []Table2Row{
		{Design: "b", Placer: PUFFER},
		{Design: "a", Placer: PUFFER},
		{Design: "a", Placer: Commercial},
	}
	SortRows(rows)
	if rows[0].Design != "a" || rows[0].Placer != Commercial {
		t.Errorf("sort order wrong: %+v", rows)
	}
	if rows[1].Design != "a" || rows[1].Placer != PUFFER {
		t.Errorf("sort order wrong: %+v", rows)
	}
}

func TestFig1(t *testing.T) {
	out := Fig1()
	if !strings.Contains(out, "grid graph") || !strings.Contains(out, "[H") {
		t.Errorf("Fig1 output malformed:\n%s", out)
	}
}

func TestFig2(t *testing.T) {
	out := Fig2(tinyOptions())
	for _, stage := range []string{"global placement", "legalization"} {
		if !strings.Contains(out, stage) {
			t.Errorf("Fig2 missing stage %q:\n%s", stage, out)
		}
	}
}

func TestFig3(t *testing.T) {
	out := Fig3()
	for _, part := range []string{"(a)", "(b)", "(c)"} {
		if !strings.Contains(out, part) {
			t.Errorf("Fig3 missing panel %s", part)
		}
	}
	// The expansion panel must differ from the base horizontal panel.
	segs := strings.Split(out, "(c)")
	if len(segs) != 2 {
		t.Fatal("cannot split Fig3 output")
	}
}

func TestFig4(t *testing.T) {
	out := Fig4()
	for _, f := range []string{"local_congestion", "surround_congestion", "pin_congestion", "CNN-inspired", "GNN-inspired"} {
		if !strings.Contains(out, f) {
			t.Errorf("Fig4 missing %q", f)
		}
	}
}

func TestFig5AndPGM(t *testing.T) {
	o := tinyOptions()
	maps, err := Fig5(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(maps) != 3 {
		t.Fatalf("maps = %d, want 3", len(maps))
	}
	for _, m := range maps {
		if len(m.H) != m.W*m.Ht || len(m.V) != m.W*m.Ht {
			t.Errorf("%s: map size mismatch", m.Placer)
		}
	}
	text := FormatFig5(maps)
	if !strings.Contains(text, "PUFFER") || !strings.Contains(text, "horizontal overflow") {
		t.Error("FormatFig5 output malformed")
	}
	path := t.TempDir() + "/h.pgm"
	if err := WritePGM(path, maps[0].H, maps[0].W, maps[0].Ht); err != nil {
		t.Fatal(err)
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations in -short mode")
	}
	o := tinyOptions()
	for _, fn := range []func(Options) (AblationResult, error){
		AblationFeatures, AblationExpansion, AblationRecycling, AblationLegalPadding,
	} {
		r, err := fn(o)
		if err != nil {
			t.Fatalf("%s: %v", r.Name, err)
		}
		if r.MetricOn < 0 || r.MetricOff < 0 {
			t.Errorf("%s: negative metric", r.Name)
		}
		if r.WLOn <= 0 || r.WLOff <= 0 {
			t.Errorf("%s: zero WL", r.Name)
		}
	}
}

func TestTable2ParallelMatchesSequential(t *testing.T) {
	o := tinyOptions()
	o.Designs = []string{"OR1200"}
	seqRows, _, err := Table2(o)
	if err != nil {
		t.Fatal(err)
	}
	o.Parallel = true
	parRows, _, err := Table2(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(parRows) != len(seqRows) {
		t.Fatalf("row counts differ: %d vs %d", len(parRows), len(seqRows))
	}
	for i := range seqRows {
		a, b := seqRows[i], parRows[i]
		if a.Design != b.Design || a.Placer != b.Placer ||
			a.HOF != b.HOF || a.VOF != b.VOF || a.WL != b.WL {
			t.Errorf("row %d differs: %+v vs %+v", i, a, b)
		}
	}
}

func TestRTSweepTiny(t *testing.T) {
	o := tinyOptions()
	rows, err := RTSweep("OR1200", []int{15000, 12000}, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Cells <= 0 {
			t.Error("zero cells")
		}
		for _, p := range []PlacerName{Commercial, RePlAce, PUFFER} {
			if r.RT[p] <= 0 {
				t.Errorf("scale %d: zero RT for %s", r.Scale, p)
			}
		}
	}
	out := FormatRTSweep("OR1200", rows)
	if !strings.Contains(out, "RUNTIME SCALING") || !strings.Contains(out, "C/P") {
		t.Error("FormatRTSweep output malformed")
	}
}

func TestRTSweepUnknownDesign(t *testing.T) {
	if _, err := RTSweep("NOPE", []int{1000}, tinyOptions()); err == nil {
		t.Error("unknown design accepted")
	}
}

func TestAblationTPEBeatsRandom(t *testing.T) {
	r := AblationTPE(3)
	if r.MetricOn >= r.MetricOff {
		t.Errorf("TPE %v not better than random %v", r.MetricOn, r.MetricOff)
	}
	out := FormatAblations([]AblationResult{r})
	if !strings.Contains(out, "TPE") {
		t.Error("FormatAblations output malformed")
	}
}
