package experiments

import (
	"fmt"
	"math"
	"os"
	"strings"

	"puffer"
	"puffer/internal/baseline"
	"puffer/internal/cong"
	"puffer/internal/feature"
	"puffer/internal/geom"
	"puffer/internal/netlist"
	"puffer/internal/router"
	"puffer/internal/synth"
)

// Fig1 renders the Gcell grid-graph model of the global routing problem
// (paper Fig. 1): nodes are Gcells, edges connect abutting Gcells, and
// each carries a routing capacity.
func Fig1() string {
	d := &netlist.Design{
		Name: "fig1", Region: geom.RectWH(0, 0, 16, 16),
		RowHeight: 1, SiteWidth: 0.25, Layers: netlist.DefaultLayers(),
	}
	m := cong.NewMap(d, 4, 4)
	var b strings.Builder
	fmt.Fprintf(&b, "FIG 1: grid graph of the global routing problem (4x4 Gcells)\n")
	fmt.Fprintf(&b, "each node is a Gcell; H/V are its directional track capacities\n\n")
	for j := m.H - 1; j >= 0; j-- {
		for i := 0; i < m.W; i++ {
			idx := m.Index(i, j)
			fmt.Fprintf(&b, "[H%3.0f V%3.0f]", m.CapH[idx], m.CapV[idx])
			if i < m.W-1 {
				fmt.Fprintf(&b, "--")
			}
		}
		fmt.Fprintf(&b, "\n")
		if j > 0 {
			for i := 0; i < m.W; i++ {
				fmt.Fprintf(&b, "     |      ")
			}
			fmt.Fprintf(&b, "\n")
		}
	}
	return b.String()
}

// Fig2 runs the full PUFFER flow on a small design and returns the staged
// flow trace corresponding to the algorithm-flow figure.
func Fig2(o Options) string {
	o = mergeDefaults(o)
	p, _ := synth.ProfileByName("OR1200")
	d := synth.Generate(p, o.Scale, o.Seed)
	cfg := puffer.DefaultConfig()
	cfg.Place.Seed = o.Seed
	if o.PlaceIters > 0 {
		cfg.Place.MaxIters = o.PlaceIters
	}
	res, err := puffer.Run(d, cfg)
	if err != nil {
		return "FIG 2: flow failed: " + err.Error()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "FIG 2: PUFFER algorithm flow trace (%s at 1:%d scale)\n", p.Name, o.Scale)
	for _, line := range res.StageLog {
		fmt.Fprintf(&b, "  %s\n", line)
	}
	return b.String()
}

// Fig3 demonstrates the congestion estimation of Sec. III-A on a single
// multi-pin net: (a) horizontal demand, (b) vertical demand, and (c) the
// detour-imitating expansion once the straight span is congested.
func Fig3() string {
	d := &netlist.Design{
		Name: "fig3", Region: geom.RectWH(0, 0, 32, 32),
		RowHeight: 1, SiteWidth: 0.25,
		Layers: []netlist.Layer{
			{Name: "M1", Dir: netlist.Horizontal, Width: 1, Spacing: 1},
			{Name: "M2", Dir: netlist.Vertical, Width: 1, Spacing: 1},
		},
	}
	// A 4-pin net forming a T with a Steiner point.
	pins := []geom.Point{{X: 3, Y: 13}, {X: 27, Y: 13}, {X: 15, Y: 27}, {X: 9, Y: 5}}
	var ids []int
	n := d.AddNet("net", 1)
	for _, p := range pins {
		id := d.AddCell(netlist.Cell{W: 1, H: 1, X: p.X - 0.5, Y: p.Y - 0.5})
		ids = append(ids, id)
		d.Connect(id, n, 0.5, 0.5)
	}
	_ = ids

	render := func(m *cong.Map, grid []float64, title string) string {
		var b strings.Builder
		fmt.Fprintf(&b, "%s\n", title)
		maxV := 0.0
		for _, v := range grid {
			if v > maxV {
				maxV = v
			}
		}
		shades := " .:-=+*#%@"
		for j := m.H - 1; j >= 0; j-- {
			for i := 0; i < m.W; i++ {
				v := grid[m.Index(i, j)]
				k := 0
				if maxV > 0 {
					k = int(v / maxV * float64(len(shades)-1))
				}
				b.WriteByte(shades[k])
			}
			b.WriteByte('\n')
		}
		return b.String()
	}

	var b strings.Builder
	fmt.Fprintf(&b, "FIG 3: congestion estimation for one 4-pin net (16x16 Gcells)\n\n")

	e := cong.NewEstimator(d, 16, 16, cong.Params{PinPenalty: 0})
	m := e.Estimate()
	fmt.Fprintf(&b, "%s\n", render(m, m.DmdH, "(a) horizontal routing demand"))
	fmt.Fprintf(&b, "%s\n", render(m, m.DmdV, "(b) vertical routing demand"))

	// Congest the trunk row and re-estimate with expansion enabled.
	e2 := cong.NewEstimator(d, 16, 16, cong.Params{PinPenalty: 0, ExpandRadius: 3, TransferRatio: 0.5})
	for i := 0; i < 16; i++ {
		idx := e2.M.Index(i, 6)
		e2.M.CapH[idx] = 0.1
	}
	m2 := e2.Estimate()
	fmt.Fprintf(&b, "%s", render(m2, m2.DmdH, "(c) horizontal demand after detour-imitating expansion (row 6 congested)"))
	return b.String()
}

// Fig4 extracts and prints all feature values for one cell in a congested
// neighbourhood, mirroring the paper's feature-extraction illustration.
func Fig4() string {
	d := &netlist.Design{
		Name: "fig4", Region: geom.RectWH(0, 0, 32, 32),
		RowHeight: 1, SiteWidth: 0.25,
		Layers: []netlist.Layer{
			{Name: "M1", Dir: netlist.Horizontal, Width: 1, Spacing: 1},
			{Name: "M2", Dir: netlist.Vertical, Width: 1, Spacing: 1},
		},
	}
	// Dense cluster with crossing nets around the probe cell.
	probe := d.AddCell(netlist.Cell{Name: "probe", W: 1, H: 1, X: 14, Y: 14})
	var others []int
	for k := 0; k < 24; k++ {
		x := 12 + float64(k%6)
		y := 12 + float64(k/6)*1.5
		others = append(others, d.AddCell(netlist.Cell{W: 1, H: 1, X: x, Y: y}))
	}
	for k := 0; k+1 < len(others); k++ {
		n := d.AddNet("", 1)
		d.Connect(others[k], n, 0.5, 0.5)
		d.Connect(others[k+1], n, 0.5, 0.5)
		if k%3 == 0 {
			d.Connect(probe, n, 0.5, 0.5)
		}
	}
	far := d.AddCell(netlist.Cell{W: 1, H: 1, X: 29, Y: 29})
	n := d.AddNet("", 1)
	d.Connect(probe, n, 0.5, 0.5)
	d.Connect(far, n, 0.5, 0.5)

	e := cong.NewEstimator(d, 16, 16, cong.DefaultParams())
	m := e.Estimate()
	feats := feature.Extract(d, m, e.Trees, feature.DefaultParams())

	var b strings.Builder
	fmt.Fprintf(&b, "FIG 4: multi-feature extraction for cell %q\n", "probe")
	fmt.Fprintf(&b, "  %-22s %10s\n", "feature", "value")
	for f := 0; f < feature.Count; f++ {
		kind := "local"
		if f == feature.SurroundCg || f == feature.SurroundPinDensity {
			kind = "CNN-inspired"
		}
		if f == feature.PinCg {
			kind = "GNN-inspired"
		}
		fmt.Fprintf(&b, "  %-22s %10.4f   (%s)\n", feature.Names[f], feats.Vec[probe][f], kind)
	}
	return b.String()
}

// Fig5Maps holds the six congestion maps of Fig. 5: horizontal and
// vertical, for each of the three placers, on the MEDIA_SUBSYS profile.
type Fig5Maps struct {
	Design string
	Placer PlacerName
	H, V   []float64 // per-Gcell overflow
	W, Ht  int
	Stats  cong.MapStats
	HOF    float64
	VOF    float64
}

// Fig5 places MEDIA_SUBSYS with all three placers and collects routed
// congestion maps.
func Fig5(o Options) ([]Fig5Maps, error) {
	o = mergeDefaults(o)
	p, _ := synth.ProfileByName("MEDIA_SUBSYS")
	var out []Fig5Maps
	for _, placer := range []PlacerName{Commercial, RePlAce, PUFFER} {
		d := synth.Generate(p, o.Scale, o.Seed)
		gw, gh := puffer.CongGridFor(d)
		switch placer {
		case Commercial:
			opts := baseline.DefaultCommercialOpts()
			opts.Place.Seed = o.Seed
			if o.PlaceIters > 0 {
				opts.Place.MaxIters = o.PlaceIters
			}
			if _, err := baseline.RunCommercial(d, opts, gw, gh); err != nil {
				return nil, err
			}
		case RePlAce:
			opts := baseline.DefaultRePlAceOpts()
			opts.Place.Seed = o.Seed
			if o.PlaceIters > 0 {
				opts.Place.MaxIters = o.PlaceIters
			}
			if _, err := baseline.RunRePlAce(d, opts, gw, gh); err != nil {
				return nil, err
			}
		case PUFFER:
			cfg := puffer.DefaultConfig()
			cfg.Place.Seed = o.Seed
			if o.PlaceIters > 0 {
				cfg.Place.MaxIters = o.PlaceIters
			}
			if _, err := puffer.Run(d, cfg); err != nil {
				return nil, err
			}
		}
		rr := puffer.Evaluate(d, router.DefaultConfig())
		m := rr.Map
		fm := Fig5Maps{
			Design: p.Name, Placer: placer, W: m.W, Ht: m.H,
			Stats: m.Stats(), HOF: rr.HOF, VOF: rr.VOF,
		}
		fm.H = make([]float64, m.W*m.H)
		fm.V = make([]float64, m.W*m.H)
		for i := range fm.H {
			fm.H[i] = m.OverflowH(i)
			fm.V[i] = m.OverflowV(i)
		}
		out = append(out, fm)
		o.log("fig5: %s routed, HOF=%.2f%% VOF=%.2f%%", placer, rr.HOF, rr.VOF)
	}
	return out, nil
}

// FormatFig5 renders the six maps as ASCII heat maps.
func FormatFig5(maps []Fig5Maps) string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIG 5: congestion maps for MEDIA_SUBSYS (overflow heat, darker = worse)\n\n")
	shades := " .:-=+*#%@"
	render := func(grid []float64, w, h int) {
		maxV := 0.0
		for _, v := range grid {
			maxV = math.Max(maxV, v)
		}
		// Downsample tall maps to keep the output readable.
		step := 1
		for h/step > 32 || w/step > 64 {
			step++
		}
		for j := h - 1; j >= 0; j -= step {
			for i := 0; i < w; i += step {
				v := grid[j*w+i]
				k := 0
				if maxV > 0 {
					k = int(v / maxV * float64(len(shades)-1))
				}
				b.WriteByte(shades[k])
			}
			b.WriteByte('\n')
		}
	}
	for _, fm := range maps {
		fmt.Fprintf(&b, "-- %s: HOF=%.2f%% VOF=%.2f%% hot Gcells H/V=%d/%d worst overflow H/V=%.1f/%.1f tracks --\n",
			fm.Placer, fm.HOF, fm.VOF, fm.Stats.HotH, fm.Stats.HotV, fm.Stats.WorstH, fm.Stats.WorstV)
		fmt.Fprintf(&b, "-- %s: horizontal overflow --\n", fm.Placer)
		render(fm.H, fm.W, fm.Ht)
		fmt.Fprintf(&b, "-- %s: vertical overflow --\n", fm.Placer)
		render(fm.V, fm.W, fm.Ht)
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}

// WritePGM writes a congestion map as a portable graymap image so the maps
// can be viewed with standard tools.
func WritePGM(path string, grid []float64, w, h int) error {
	maxV := 0.0
	for _, v := range grid {
		maxV = math.Max(maxV, v)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "P2\n%d %d\n255\n", w, h)
	for j := h - 1; j >= 0; j-- {
		for i := 0; i < w; i++ {
			v := 0
			if maxV > 0 {
				v = int(grid[j*w+i] / maxV * 255)
			}
			fmt.Fprintf(&b, "%d ", 255-v)
		}
		fmt.Fprintf(&b, "\n")
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}
