package experiments

import (
	"fmt"
	"strings"
	"time"

	"puffer/internal/synth"
)

// RTSweepRow reports per-placer runtime at one design scale.
type RTSweepRow struct {
	Scale int
	Cells int
	RT    map[PlacerName]time.Duration
}

// RTSweep measures the runtime of the three placers on one design profile
// across scales, substantiating the Table-II claim that the runtime ratios
// grow with design size: the commercial profile's router-in-the-loop and
// deep refinement scale super-linearly with the netlist, while PUFFER's
// estimator-based optimizer stays cheap.
func RTSweep(design string, scales []int, o Options) ([]RTSweepRow, error) {
	o = mergeDefaults(o)
	p, err := synth.ProfileByName(design)
	if err != nil {
		return nil, err
	}
	var rows []RTSweepRow
	for _, scale := range scales {
		row := RTSweepRow{Scale: scale, RT: map[PlacerName]time.Duration{}}
		for _, placer := range []PlacerName{Commercial, RePlAce, PUFFER} {
			d := synth.Generate(p, scale, o.Seed)
			row.Cells = d.Stats().Cells
			oo := o
			oo.Scale = scale
			t2, err := runOne(d, placer, oo)
			if err != nil {
				return nil, fmt.Errorf("scale %d / %s: %w", scale, placer, err)
			}
			row.RT[placer] = t2.RT // placement-only time, like Table II
			o.log("rtsweep: scale=%d cells=%d %s RT=%s", scale, row.Cells, placer,
				row.RT[placer].Round(time.Millisecond))
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatRTSweep renders the sweep with ratios normalized to PUFFER.
func FormatRTSweep(design string, rows []RTSweepRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "RUNTIME SCALING on %s (ratios vs PUFFER)\n", design)
	fmt.Fprintf(&b, "%8s %8s %12s %12s %12s %8s %8s\n",
		"scale", "cells", "Commercial", "RePlAce", "PUFFER", "C/P", "R/P")
	for _, r := range rows {
		pt := r.RT[PUFFER].Seconds()
		cp, rp := 0.0, 0.0
		if pt > 0 {
			cp = r.RT[Commercial].Seconds() / pt
			rp = r.RT[RePlAce].Seconds() / pt
		}
		fmt.Fprintf(&b, "%8d %8d %12s %12s %12s %8.2f %8.2f\n",
			r.Scale, r.Cells,
			r.RT[Commercial].Round(time.Millisecond),
			r.RT[RePlAce].Round(time.Millisecond),
			r.RT[PUFFER].Round(time.Millisecond),
			cp, rp)
	}
	return b.String()
}
