// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. IV) on the synthetic benchmark suite: Table I
// (benchmark statistics), Table II (HOF/VOF/WL/RT comparison of the
// commercial profile, RePlAce, and PUFFER), and Figures 1–5 (grid graph,
// flow trace, congestion estimation, feature extraction, congestion
// maps). It also hosts the ablation studies that exercise the paper's
// individual design claims.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"puffer"
	"puffer/internal/baseline"
	"puffer/internal/flow"
	"puffer/internal/netlist"
	"puffer/internal/par"
	"puffer/internal/place"
	"puffer/internal/router"
	"puffer/internal/synth"
)

// Options configure an experiment run.
type Options struct {
	// Scale divides the paper's Table-I design sizes (default 3000 keeps
	// the whole suite under a minute; 800 gives multi-thousand-cell runs).
	Scale int
	// Seed drives all generation and placement randomness.
	Seed int64
	// Designs filters the benchmark list by name (empty = all ten).
	Designs []string
	// PlaceIters caps global placement iterations (0 = engine default).
	PlaceIters int
	// Parallel runs the (design, placer) grid of Table II concurrently.
	// Results are identical (each run is independently seeded); the RT
	// column becomes noisy under contention, so runtime claims should use
	// sequential runs.
	Parallel bool
	// Ctx, when non-nil, bounds the whole experiment run: PUFFER flows
	// observe it within one iteration and the Table-II grid stops
	// scheduling new cells once it is canceled. Nil means background.
	Ctx context.Context
	// Logf receives progress lines.
	Logf func(format string, args ...any)
}

// DefaultOptions returns the quick-run settings.
func DefaultOptions() Options {
	return Options{Scale: 3000, Seed: 1}
}

func (o Options) log(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

func (o Options) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

func (o Options) profiles() []synth.Profile {
	if len(o.Designs) == 0 {
		return synth.Profiles
	}
	var out []synth.Profile
	for _, name := range o.Designs {
		if p, err := synth.ProfileByName(name); err == nil {
			out = append(out, p)
		}
	}
	return out
}

// Table1Row is one line of Table I, carrying both the generated statistics
// and the paper's published values for reference.
type Table1Row struct {
	Name                                          string
	Macros, Cells, Nets, Pins                     int
	PaperMacros, PaperCells, PaperNets, PaperPins int
}

// Table1 generates the benchmark suite and collects its statistics.
func Table1(o Options) []Table1Row {
	if o.Scale == 0 {
		o = mergeDefaults(o)
	}
	var rows []Table1Row
	for _, p := range o.profiles() {
		d := synth.Generate(p, o.Scale, o.Seed)
		s := d.Stats()
		rows = append(rows, Table1Row{
			Name: p.Name, Macros: s.Macros, Cells: s.Cells, Nets: s.Nets, Pins: s.Pins,
			PaperMacros: p.Macros, PaperCells: p.Cells, PaperNets: p.Nets, PaperPins: p.Pins,
		})
	}
	return rows
}

// FormatTable1 renders Table I with generated and paper values side by
// side per column.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE I: STATISTICS OF THE BENCHMARKS (generated / paper)\n")
	fmt.Fprintf(&b, "%-16s %13s %16s %16s %16s\n", "Benchmark", "#Macros", "#Cells", "#Nets", "#Pins")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %6d/%-6d %8d/%-5dK %8d/%-5dK %8d/%-5dK\n",
			r.Name,
			r.Macros, r.PaperMacros,
			r.Cells, r.PaperCells/1000,
			r.Nets, r.PaperNets/1000,
			r.Pins, r.PaperPins/1000)
	}
	return b.String()
}

// PlacerName identifies the three compared flows.
type PlacerName string

// The three placers of Table II.
const (
	Commercial PlacerName = "Commercial_Inn"
	RePlAce    PlacerName = "RePlAce"
	PUFFER     PlacerName = "PUFFER"
)

// Table2Row is one (design, placer) cell group of Table II.
type Table2Row struct {
	Design string
	Placer PlacerName
	HOF    float64 // %
	VOF    float64 // %
	WL     float64 // routed wirelength
	RT     time.Duration
}

// Table2Summary aggregates the per-placer averages the paper reports.
type Table2Summary struct {
	Placer       PlacerName
	AvgHOF       float64
	AvgVOF       float64
	WLNorm       float64 // vs PUFFER = 1.000
	RTNorm       float64 // vs PUFFER = 1.000
	PassCountHOF int     // designs with HOF <= 1%
	PassCountVOF int
}

// runOne places design d with the named placer and evaluates it with the
// shared router, returning the Table-II metrics.
func runOne(d *netlist.Design, placer PlacerName, o Options) (Table2Row, error) {
	row := Table2Row{Design: d.Name, Placer: placer}
	gw, gh := puffer.CongGridFor(d)
	pcfg := place.DefaultConfig()
	pcfg.Seed = o.Seed
	if o.PlaceIters > 0 {
		pcfg.MaxIters = o.PlaceIters
	}

	start := time.Now()
	switch placer {
	case Commercial:
		opts := baseline.DefaultCommercialOpts()
		opts.Place.Seed = o.Seed
		if o.PlaceIters > 0 {
			opts.Place.MaxIters = o.PlaceIters * 2 // deeper convergence profile
		}
		if _, err := baseline.RunCommercial(d, opts, gw, gh); err != nil {
			return row, err
		}
	case RePlAce:
		opts := baseline.DefaultRePlAceOpts()
		opts.Place.Seed = o.Seed
		if o.PlaceIters > 0 {
			opts.Place.MaxIters = o.PlaceIters * 3 / 2
		}
		if _, err := baseline.RunRePlAce(d, opts, gw, gh); err != nil {
			return row, err
		}
	case PUFFER:
		cfg := puffer.DefaultConfig()
		cfg.Place = pcfg
		if _, err := puffer.RunCtx(o.ctx(), d, cfg); err != nil {
			return row, err
		}
	default:
		return row, fmt.Errorf("unknown placer %q", placer)
	}
	row.RT = time.Since(start)

	rr := puffer.Evaluate(d, router.DefaultConfig())
	row.HOF, row.VOF, row.WL = rr.HOF, rr.VOF, rr.WL
	return row, nil
}

// Table2 runs all three placers over the benchmark suite.
func Table2(o Options) ([]Table2Row, []Table2Summary, error) {
	o = mergeDefaults(o)
	type task struct {
		profile synth.Profile
		placer  PlacerName
	}
	var tasks []task
	for _, p := range o.profiles() {
		for _, placer := range []PlacerName{Commercial, RePlAce, PUFFER} {
			tasks = append(tasks, task{p, placer})
		}
	}
	rows := make([]Table2Row, len(tasks))
	run := func(i int) error {
		t := tasks[i]
		d := synth.Generate(t.profile, o.Scale, o.Seed)
		o.log("table2: %s / %s ...", t.profile.Name, t.placer)
		row, err := runOne(d, t.placer, o)
		if err != nil {
			return fmt.Errorf("%s/%s: %w", t.profile.Name, t.placer, err)
		}
		o.log("table2: %s / %s -> HOF=%.2f%% VOF=%.2f%% WL=%.0f RT=%s",
			t.profile.Name, t.placer, row.HOF, row.VOF, row.WL, row.RT.Round(time.Millisecond))
		rows[i] = row
		return nil
	}
	if o.Parallel {
		if err := par.ForErr(o.ctx(), len(tasks), run); err != nil {
			return nil, nil, err
		}
	} else {
		for i := range tasks {
			if err := flow.Check(o.ctx()); err != nil {
				return nil, nil, err
			}
			if err := run(i); err != nil {
				return nil, nil, err
			}
		}
	}
	return rows, Summarize(rows), nil
}

// Summarize computes the per-placer aggregate rows of Table II.
func Summarize(rows []Table2Row) []Table2Summary {
	byPlacer := map[PlacerName][]Table2Row{}
	for _, r := range rows {
		byPlacer[r.Placer] = append(byPlacer[r.Placer], r)
	}
	// Geometric-mean normalization against PUFFER per design.
	pufferWL := map[string]float64{}
	pufferRT := map[string]float64{}
	for _, r := range byPlacer[PUFFER] {
		pufferWL[r.Design] = r.WL
		pufferRT[r.Design] = r.RT.Seconds()
	}
	var out []Table2Summary
	for _, placer := range []PlacerName{Commercial, RePlAce, PUFFER} {
		rs := byPlacer[placer]
		if len(rs) == 0 {
			continue
		}
		s := Table2Summary{Placer: placer}
		wlSum, rtSum, n := 0.0, 0.0, 0
		for _, r := range rs {
			s.AvgHOF += r.HOF
			s.AvgVOF += r.VOF
			if r.HOF <= 1.0 {
				s.PassCountHOF++
			}
			if r.VOF <= 1.0 {
				s.PassCountVOF++
			}
			if pw := pufferWL[r.Design]; pw > 0 {
				wlSum += r.WL / pw
				rtSum += r.RT.Seconds() / pufferRT[r.Design]
				n++
			}
		}
		s.AvgHOF /= float64(len(rs))
		s.AvgVOF /= float64(len(rs))
		if n > 0 {
			s.WLNorm = wlSum / float64(n)
			s.RTNorm = rtSum / float64(n)
		}
		out = append(out, s)
	}
	return out
}

// FormatTable2 renders the comparison table.
func FormatTable2(rows []Table2Row, sums []Table2Summary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE II: COMPARISON OF HOF, VOF, WL, AND RT\n")
	designs := []string{}
	seen := map[string]bool{}
	for _, r := range rows {
		if !seen[r.Design] {
			seen[r.Design] = true
			designs = append(designs, r.Design)
		}
	}
	byKey := map[string]Table2Row{}
	for _, r := range rows {
		byKey[r.Design+"/"+string(r.Placer)] = r
	}
	fmt.Fprintf(&b, "%-16s", "Benchmark")
	for _, p := range []PlacerName{Commercial, RePlAce, PUFFER} {
		fmt.Fprintf(&b, " | %-37s", p)
	}
	fmt.Fprintf(&b, "\n%-16s", "")
	for range 3 {
		fmt.Fprintf(&b, " | %7s %7s %10s %8s", "HOF(%)", "VOF(%)", "WL", "RT(s)")
	}
	fmt.Fprintf(&b, "\n")
	for _, dn := range designs {
		fmt.Fprintf(&b, "%-16s", dn)
		for _, p := range []PlacerName{Commercial, RePlAce, PUFFER} {
			r := byKey[dn+"/"+string(p)]
			fmt.Fprintf(&b, " | %7.2f %7.2f %10.0f %8.2f", r.HOF, r.VOF, r.WL, r.RT.Seconds())
		}
		fmt.Fprintf(&b, "\n")
	}
	fmt.Fprintf(&b, "%-16s", "Average")
	for _, p := range []PlacerName{Commercial, RePlAce, PUFFER} {
		for _, s := range sums {
			if s.Placer == p {
				fmt.Fprintf(&b, " | %7.3f %7.3f %10.3f %8.3f", s.AvgHOF, s.AvgVOF, s.WLNorm, s.RTNorm)
			}
		}
	}
	fmt.Fprintf(&b, "\n%-16s", "Pass Count")
	for _, p := range []PlacerName{Commercial, RePlAce, PUFFER} {
		for _, s := range sums {
			if s.Placer == p {
				fmt.Fprintf(&b, " | %7d %7d %10s %8s", s.PassCountHOF, s.PassCountVOF, "-", "-")
			}
		}
	}
	fmt.Fprintf(&b, "\n")
	return b.String()
}

func mergeDefaults(o Options) Options {
	def := DefaultOptions()
	if o.Scale == 0 {
		o.Scale = def.Scale
	}
	if o.Seed == 0 {
		o.Seed = def.Seed
	}
	return o
}

// SortRows orders rows by design then placer, for stable output.
func SortRows(rows []Table2Row) {
	order := map[PlacerName]int{Commercial: 0, RePlAce: 1, PUFFER: 2}
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].Design != rows[j].Design {
			return rows[i].Design < rows[j].Design
		}
		return order[rows[i].Placer] < order[rows[j].Placer]
	})
}
