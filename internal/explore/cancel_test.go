package explore

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"puffer/internal/flow"
)

func twoGroupParams() []Param {
	return []Param{
		{Name: "a", Kind: Uniform, Lo: -2, Hi: 2, Group: "g1"},
		{Name: "b", Kind: Uniform, Lo: -2, Hi: 2, Group: "g1"},
		{Name: "c", Kind: Uniform, Lo: -2, Hi: 2, Group: "g2"},
	}
}

func sumsq(a Assignment) float64 {
	s := 0.0
	for _, v := range a {
		s += v * v
	}
	return s
}

// TestRunCtxCancelStopsWithinOneTrial cancels from inside the objective
// and checks the exploration stops before scheduling a full extra trial,
// while still returning usable assignments.
func TestRunCtxCancelStopsWithinOneTrial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	const cancelAt = 7
	var evals atomic.Int64
	e := &Explorer{
		Params: twoGroupParams(),
		Eval: func(a Assignment) float64 {
			if evals.Add(1) == cancelAt {
				cancel()
			}
			return sumsq(a)
		},
		TimeLimit: 50, EarlyStop: 50, Rounds: 3, Seed: 11,
	}
	final, best, err := e.RunCtx(ctx)
	if !errors.Is(err, flow.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCanceled wrapping context.Canceled", err)
	}
	// Sequential groups: after the canceling eval returns, the next
	// per-trial check fires and no further trial starts.
	if n := evals.Load(); n > cancelAt {
		t.Errorf("%d evaluations ran, cancel at %d scheduled extra trials", n, cancelAt)
	}
	if len(final) == 0 || len(best) == 0 {
		t.Error("canceled exploration returned empty assignments")
	}
	if len(e.History()) == 0 {
		t.Error("canceled exploration lost its history")
	}
}

func TestRunCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var evals atomic.Int64
	e := &Explorer{
		Params:    twoGroupParams(),
		Eval:      func(a Assignment) float64 { evals.Add(1); return sumsq(a) },
		TimeLimit: 20, EarlyStop: 20, Rounds: 2, Seed: 3,
	}
	_, _, err := e.RunCtx(ctx)
	if !errors.Is(err, flow.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if n := evals.Load(); n != 0 {
		t.Errorf("%d evaluations ran under a pre-canceled context", n)
	}
}
