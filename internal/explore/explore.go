// Package explore implements the Bayesian strategy exploration scheme of
// the paper (Sec. III-C): sequential model-based optimization (SMBO) with
// a tree-structured Parzen estimator (TPE) [19], the parameter-exploration
// loop of Algorithm 2 (early stop + range update), and the grouped
// strategy exploration of Algorithm 3 (global pass, then relevance groups
// explored in parallel, final values from the median of the converged
// ranges).
//
// The scheme is deliberately generic: any black-box objective with
// continuous, log-scaled, integer, or categorical strategy parameters can
// be searched, exactly as the paper advertises.
package explore

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"sync"

	"puffer/internal/flow"
	"puffer/internal/obs"
)

// Kind describes a parameter's domain.
type Kind int

// Parameter kinds.
const (
	Uniform     Kind = iota // continuous in [Lo, Hi]
	LogUniform              // continuous, sampled in log space; Lo > 0
	IntUniform              // integer in [Lo, Hi]
	Categorical             // one of Choices; values are choice indices
)

// Param declares one strategy parameter.
type Param struct {
	Name    string
	Kind    Kind
	Lo, Hi  float64
	Choices []string
	// Group names the relevance group for Algorithm 3; parameters with
	// strong ties share a group and are explored together.
	Group string
}

// Range is the current search interval of a parameter (indices for
// categorical parameters).
type Range struct {
	Lo, Hi float64
}

// Mid returns the middle of the range, respecting the parameter kind.
func (p Param) Mid(r Range) float64 {
	switch p.Kind {
	case LogUniform:
		return math.Exp((math.Log(r.Lo) + math.Log(r.Hi)) / 2)
	case IntUniform, Categorical:
		return math.Round((r.Lo + r.Hi) / 2)
	default:
		return (r.Lo + r.Hi) / 2
	}
}

// Assignment maps parameter names to values (categorical values are choice
// indices).
type Assignment map[string]float64

// Observation is one evaluated configuration.
type Observation struct {
	X Assignment
	Y float64
}

// Objective evaluates an assignment; smaller is better. The paper's
// objective is the total overflow ratio of both routing directions.
type Objective func(Assignment) float64

// Trial identifies one objective evaluation inside Algorithm 3's schedule.
// The identity (Round, Group, Index) is deterministic for a fixed seed and
// budget: each group chain draws from its own seeded RNG and appends to its
// own observation list, so the Index-th trial of a chain proposes the same
// assignment no matter how many evaluations run concurrently elsewhere or
// in what order they complete. Distributed controllers key resume and
// dedupe on this identity.
type Trial struct {
	// Round is 0 for the global pass, 1..Rounds for group rounds.
	Round int
	// Group is the relevance-group name ("" for the global pass).
	Group string
	// Index is the 0-based trial position within its (Round, Group) chain.
	Index int
	// X is the full assignment to evaluate (subset proposal + pins).
	X Assignment
}

// TPE is the tree-structured Parzen estimator sampler.
type TPE struct {
	// Gamma is the good/bad observation split quantile.
	Gamma float64
	// Candidates is how many samples are drawn from l(x) per parameter.
	Candidates int
	// Startup is how many initial observations are pure random search.
	Startup int
}

// DefaultTPE returns the sampler defaults from [19].
func DefaultTPE() TPE {
	return TPE{Gamma: 0.25, Candidates: 24, Startup: 8}
}

// Suggest proposes the next assignment for the given parameters and
// current ranges, based on past observations. Parameters not listed keep
// no entry (the caller fixes them).
func (t TPE) Suggest(rng *rand.Rand, params []Param, ranges map[string]Range, obs []Observation) Assignment {
	out := make(Assignment, len(params))
	if len(obs) < t.Startup {
		for _, p := range params {
			out[p.Name] = sampleUniform(rng, p, ranges[p.Name])
		}
		return out
	}
	// Split observations by quantile of Y.
	sorted := append([]Observation(nil), obs...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Y < sorted[j].Y })
	nBelow := int(math.Ceil(t.Gamma * float64(len(sorted))))
	if nBelow < 1 {
		nBelow = 1
	}
	below, above := sorted[:nBelow], sorted[nBelow:]

	for _, p := range params {
		r := ranges[p.Name]
		if p.Kind == Categorical {
			out[p.Name] = t.suggestCategorical(rng, p, below, above)
			continue
		}
		out[p.Name] = t.suggestNumeric(rng, p, r, below, above)
	}
	return out
}

// suggestNumeric draws candidates from the Parzen mixture over the good
// observations and keeps the one maximizing l(x)/g(x).
func (t TPE) suggestNumeric(rng *rand.Rand, p Param, r Range, below, above []Observation) float64 {
	lo, hi := r.Lo, r.Hi
	warp := func(v float64) float64 { return v }
	unwarp := warp
	if p.Kind == LogUniform {
		warp = math.Log
		unwarp = math.Exp
		lo, hi = math.Log(lo), math.Log(hi)
	}
	span := hi - lo
	if span <= 0 {
		return unwarp(lo)
	}
	centersOf := func(set []Observation) []float64 {
		cs := make([]float64, 0, len(set))
		for _, o := range set {
			if v, ok := o.X[p.Name]; ok {
				cs = append(cs, warp(v))
			}
		}
		return cs
	}
	cb := centersOf(below)
	ca := centersOf(above)
	if len(cb) == 0 {
		return sampleUniform(rng, p, r)
	}
	bw := span / math.Max(4, math.Sqrt(float64(len(cb)))+2)

	density := func(x float64, centers []float64) float64 {
		// Parzen mixture of Gaussians plus a uniform floor so g never
		// vanishes inside the range.
		d := 0.1 / span
		if len(centers) == 0 {
			return d
		}
		for _, c := range centers {
			z := (x - c) / bw
			d += math.Exp(-0.5*z*z) / (bw * math.Sqrt(2*math.Pi) * float64(len(centers)))
		}
		return d
	}

	bestX, bestScore := 0.0, math.Inf(-1)
	for k := 0; k < t.Candidates; k++ {
		c := cb[rng.Intn(len(cb))]
		x := c + rng.NormFloat64()*bw
		if x < lo {
			x = lo
		} else if x > hi {
			x = hi
		}
		score := math.Log(density(x, cb)) - math.Log(density(x, ca))
		if score > bestScore {
			bestScore = score
			bestX = x
		}
	}
	v := unwarp(bestX)
	if p.Kind == IntUniform {
		v = math.Round(v)
	}
	// Guard against floating-point drift from the log-space round trip.
	if v < r.Lo {
		v = r.Lo
	} else if v > r.Hi {
		v = r.Hi
	}
	return v
}

// suggestCategorical reweights choice counts with add-one smoothing and
// picks the choice with the best good/bad probability ratio among sampled
// candidates.
func (t TPE) suggestCategorical(rng *rand.Rand, p Param, below, above []Observation) float64 {
	n := len(p.Choices)
	countIn := func(set []Observation) []float64 {
		w := make([]float64, n)
		for i := range w {
			w[i] = 1 // smoothing
		}
		for _, o := range set {
			if v, ok := o.X[p.Name]; ok {
				idx := int(v)
				if idx >= 0 && idx < n {
					w[idx]++
				}
			}
		}
		return w
	}
	wb := countIn(below)
	wa := countIn(above)
	sumB := 0.0
	for _, w := range wb {
		sumB += w
	}
	// Sample candidates from l, keep best l/g.
	bestIdx, bestScore := 0, math.Inf(-1)
	for k := 0; k < t.Candidates; k++ {
		r := rng.Float64() * sumB
		idx := 0
		for acc := 0.0; idx < n-1; idx++ {
			acc += wb[idx]
			if r < acc {
				break
			}
		}
		if score := wb[idx] / wa[idx]; score > bestScore {
			bestScore = score
			bestIdx = idx
		}
	}
	return float64(bestIdx)
}

func sampleUniform(rng *rand.Rand, p Param, r Range) float64 {
	switch p.Kind {
	case LogUniform:
		lo, hi := math.Log(r.Lo), math.Log(r.Hi)
		return math.Exp(lo + rng.Float64()*(hi-lo))
	case IntUniform:
		return math.Round(r.Lo + rng.Float64()*(r.Hi-r.Lo))
	case Categorical:
		n := int(r.Hi-r.Lo) + 1
		return r.Lo + float64(rng.Intn(n))
	default:
		return r.Lo + rng.Float64()*(r.Hi-r.Lo)
	}
}

// Explorer runs the strategy exploration scheme (Algorithms 2 and 3).
type Explorer struct {
	Params []Param
	Eval   Objective
	TPE    TPE

	// Evaluate, when non-nil, replaces Eval: every trial is handed over
	// with its schedule identity so a remote controller can dispatch the
	// evaluation as a job, await it, or replay a cached score. It must be
	// goroutine-safe when Parallel is set. An error aborts the exploration
	// the same way a context cancel does (the first error in group
	// declaration order wins).
	Evaluate func(ctx context.Context, t Trial) (float64, error) `json:"-"`

	// Priors seed the global pass's TPE observation list with outcomes
	// from earlier explorations of the same design family. They steer
	// Suggest past the random-startup phase and weigh into the global
	// range update, but are not recorded in History and do not consume
	// TimeLimit budget.
	Priors []Observation `json:"-"`

	// SeedRanges narrows the declared starting ranges per parameter
	// (e.g. converged ranges from a prior exploration). Entries are
	// clamped to the declared bounds; invalid or categorical overrides
	// are ignored.
	SeedRanges map[string]Range `json:"-"`

	// TimeLimit is TC of Algorithm 2 (evaluations per exploration call);
	// EarlyStop is EC (evaluations without improvement before stopping).
	TimeLimit int
	EarlyStop int
	// Rounds is the outer TC of Algorithm 3.
	Rounds int
	// Parallel explores parameter groups concurrently (Sec. III-C notes
	// group exploration can run in parallel). Eval must then be
	// goroutine-safe.
	Parallel bool
	// Workers caps how many groups run concurrently when Parallel is set
	// (0 = all at once). Each group's trials run full placement flows, so
	// deployments bound peak memory with this knob.
	Workers int
	Seed    int64
	Logf    func(format string, args ...any) `json:"-"`
	// Obs attaches telemetry: per-trial scores land on the
	// "explore.trial.score" series (step = trial index), the running best
	// on the "explore.best_score" gauge, and RunCtx traces the global pass
	// and each group exploration as spans. Nil disables everything.
	Obs *obs.Recorder `json:"-"`

	// Snapshot, when non-nil, receives a copy of the current merged ranges
	// at every single-threaded point of Algorithm 3 (after the global pass
	// and after each round's deterministic merge). Distributed controllers
	// checkpoint these so an interrupted exploration's state is
	// inspectable.
	Snapshot func(ranges map[string]Range) `json:"-"`

	mu      sync.Mutex
	history []Observation
	best    float64 // best (lowest) Y seen; valid when len(history) > 0
}

// History returns all observations made so far.
func (e *Explorer) History() []Observation {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]Observation(nil), e.history...)
}

func (e *Explorer) record(o Observation) {
	e.mu.Lock()
	e.history = append(e.history, o)
	trial := len(e.history)
	improved := trial == 1 || o.Y < e.best
	if improved {
		e.best = o.Y
	}
	best := e.best
	e.mu.Unlock()

	e.Obs.Counter("explore.trials").Inc()
	e.Obs.Series("explore.trial.score").Observe(trial, o.Y)
	if improved {
		e.Obs.Gauge("explore.best_score").Set(best)
	}
}

// initialRanges returns the declared full ranges, narrowed by any valid
// SeedRanges overrides (warm-started explorations resume the converged
// intervals of a prior run; the clamp keeps a stale or foreign seed from
// escaping the declared bounds).
func (e *Explorer) initialRanges() map[string]Range {
	r := make(map[string]Range, len(e.Params))
	for _, p := range e.Params {
		base := Range{p.Lo, p.Hi}
		if p.Kind == Categorical {
			base = Range{0, float64(len(p.Choices) - 1)}
		} else if sr, ok := e.SeedRanges[p.Name]; ok {
			lo := math.Max(base.Lo, sr.Lo)
			hi := math.Min(base.Hi, sr.Hi)
			if lo < hi && !(p.Kind == LogUniform && lo <= 0) {
				base = Range{lo, hi}
			}
		}
		r[p.Name] = base
	}
	return r
}

// paramExploration is Algorithm 2: explore the given parameter subset with
// the rest pinned, update their ranges from the observations, and report
// whether the loop stopped early (converged). The context is checked
// before every SMBO trial, so a cancel costs at most one objective
// evaluation of extra work.
func (e *Explorer) paramExploration(ctx context.Context, rng *rand.Rand, round int, group string, subset []Param, ranges map[string]Range, pinned Assignment, priors []Observation) (bool, map[string]Range, error) {
	// Priors feed Suggest and the range update but do not count toward
	// TimeLimit, EarlyStop, or History — they are someone else's trials.
	obs := append([]Observation(nil), priors...)
	best := math.Inf(1)
	npc := 0
	for tc := 0; tc < e.TimeLimit && npc < e.EarlyStop; tc++ {
		if err := flow.Check(ctx); err != nil {
			return false, updateRanges(subset, ranges, obs, e.TPE.Gamma), err
		}
		x := e.TPE.Suggest(rng, subset, ranges, obs)
		full := make(Assignment, len(e.Params))
		for k, v := range pinned {
			full[k] = v
		}
		for k, v := range x {
			full[k] = v
		}
		var y float64
		if e.Evaluate != nil {
			var err error
			y, err = e.Evaluate(ctx, Trial{Round: round, Group: group, Index: tc, X: full})
			if err != nil {
				return false, updateRanges(subset, ranges, obs, e.TPE.Gamma), err
			}
		} else {
			y = e.Eval(full)
		}
		o := Observation{X: full, Y: y}
		obs = append(obs, o)
		e.record(o)
		npc++
		if y < best {
			best = y
			npc = 0
		}
	}
	return npc >= e.EarlyStop, updateRanges(subset, ranges, obs, e.TPE.Gamma), nil
}

// splitmix64 is the SplitMix64 finalizer: a cheap bijective mixer whose
// outputs pass statistical tests even on sequential inputs.
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// groupSeed derives the RNG seed of group gi in round r from the base
// seed by splitmix-style mixing. The previous additive scheme
// (seed + round*1000 + gi) collided whenever round*1000+gi coincided
// across (round, group) pairs — e.g. (0, 1000) and (1, 0) — feeding
// identical random streams to different groups; mixing each coordinate
// through a bijective finalizer makes collisions astronomically unlikely
// while keeping the derivation deterministic for a fixed base seed.
func groupSeed(seed int64, round, gi int) int64 {
	// Chained (order-dependent) mixing: each input is folded into the
	// running hash before the next splitmix64 pass, so no symmetry between
	// seed, round, and group index can produce colliding streams.
	h := splitmix64(uint64(seed))
	h = splitmix64(h ^ (uint64(round) + 1))
	h = splitmix64(h ^ (uint64(gi) + 1))
	return int64(h)
}

// updateRanges shrinks each parameter's range to the span of the top-γ
// observations, expanded by a 10% margin, clamped to the previous range
// (the "adjust the parameter ranges according to the observed trends" step
// of Algorithm 2).
func updateRanges(subset []Param, ranges map[string]Range, obs []Observation, gamma float64) map[string]Range {
	out := make(map[string]Range, len(ranges))
	for k, v := range ranges {
		out[k] = v
	}
	if len(obs) == 0 {
		return out
	}
	sorted := append([]Observation(nil), obs...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Y < sorted[j].Y })
	nTop := int(math.Ceil(gamma * float64(len(sorted))))
	if nTop < 2 {
		nTop = min(2, len(sorted))
	}
	top := sorted[:nTop]
	for _, p := range subset {
		if p.Kind == Categorical {
			continue // categorical ranges stay full
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, o := range top {
			if v, ok := o.X[p.Name]; ok {
				lo = math.Min(lo, v)
				hi = math.Max(hi, v)
			}
		}
		if math.IsInf(lo, 1) {
			continue
		}
		margin := 0.1 * (ranges[p.Name].Hi - ranges[p.Name].Lo)
		nr := Range{
			Lo: math.Max(ranges[p.Name].Lo, lo-margin),
			Hi: math.Min(ranges[p.Name].Hi, hi+margin),
		}
		if p.Kind == LogUniform && nr.Lo <= 0 {
			nr.Lo = ranges[p.Name].Lo
		}
		if nr.Hi <= nr.Lo {
			nr = ranges[p.Name]
		}
		out[p.Name] = nr
	}
	return out
}

// Run executes Algorithm 3 and returns the final configuration (median of
// the converged ranges) along with the best observed assignment.
func (e *Explorer) Run() (final, bestSeen Assignment) {
	final, bestSeen, _ = e.RunCtx(context.Background())
	return final, bestSeen
}

// RunCtx is Run with cancellation: every SMBO trial boundary — in the
// global pass and inside each (possibly parallel) group exploration —
// checks the context. On cancellation the error wraps flow.ErrCanceled
// and the returned assignments are still usable: final is the range
// median and bestSeen the best observation at the moment of the cancel.
func (e *Explorer) RunCtx(ctx context.Context) (final, bestSeen Assignment, err error) {
	if e.TimeLimit <= 0 {
		e.TimeLimit = 30
	}
	if e.EarlyStop <= 0 {
		e.EarlyStop = 10
	}
	if e.Rounds <= 0 {
		e.Rounds = 3
	}
	if e.TPE.Candidates == 0 {
		e.TPE = DefaultTPE()
	}
	sp, ctx := obs.Start(ctx, e.Obs, "explore")
	defer sp.End()
	rng := rand.New(rand.NewSource(e.Seed))
	ranges := e.initialRanges()

	mids := func() Assignment {
		a := make(Assignment, len(e.Params))
		for _, p := range e.Params {
			a[p.Name] = p.Mid(ranges[p.Name])
		}
		return a
	}

	// Global exploration over all parameters (Algorithm 3 lines 1–2).
	if e.Logf != nil {
		e.Logf("explore: global pass over %d params", len(e.Params))
	}
	var gerr error
	spGlobal := sp.Child("explore.global")
	_, ranges, gerr = e.paramExploration(ctx, rng, 0, "", e.Params, ranges, Assignment{}, e.Priors)
	spGlobal.End()
	e.snapshot(ranges)

	// Group parameters by declared relevance (line 3).
	groupNames := []string{}
	groups := map[string][]Param{}
	for _, p := range e.Params {
		g := p.Group
		if g == "" {
			g = p.Name
		}
		if _, ok := groups[g]; !ok {
			groupNames = append(groupNames, g)
		}
		groups[g] = append(groups[g], p)
	}

	for round := 0; gerr == nil && round < e.Rounds; round++ {
		pin := mids()
		earlyStop := true
		type groupResult struct {
			name   string
			flag   bool
			ranges map[string]Range
			err    error
		}
		results := make([]groupResult, len(groupNames))
		runGroup := func(gi int) {
			name := groupNames[gi]
			sub := groups[name]
			// Groups may run concurrently, so each gets its own logical
			// trace thread.
			gsp := sp.Fork("explore.group")
			gsp.SetArg("group", name)
			gsp.SetArg("round", round+1)
			defer gsp.End()
			grng := rand.New(rand.NewSource(groupSeed(e.Seed, round, gi)))
			pinned := make(Assignment, len(pin))
			for k, v := range pin {
				pinned[k] = v
			}
			for _, p := range sub {
				delete(pinned, p.Name)
			}
			flag, nr, err := e.paramExploration(ctx, grng, round+1, name, sub, ranges, pinned, nil)
			results[gi] = groupResult{name: name, flag: flag, ranges: nr, err: err}
		}
		if e.Parallel {
			var wg sync.WaitGroup
			var sem chan struct{}
			if e.Workers > 0 {
				sem = make(chan struct{}, e.Workers)
			}
			for gi := range groupNames {
				wg.Add(1)
				go func(gi int) {
					defer wg.Done()
					if sem != nil {
						sem <- struct{}{}
						defer func() { <-sem }()
					}
					runGroup(gi)
				}(gi)
			}
			wg.Wait()
		} else {
			for gi := range groupNames {
				runGroup(gi)
				if results[gi].err != nil {
					break
				}
			}
		}
		// Deterministic merge in group declaration order: each group owns
		// its own parameters' ranges. A canceled group contributes the
		// ranges it had converged so far; the first error (deterministic
		// in group order) aborts the remaining rounds.
		for gi, name := range groupNames {
			if results[gi].ranges == nil {
				continue // never ran (sequential early break)
			}
			for _, p := range groups[name] {
				ranges[p.Name] = results[gi].ranges[p.Name]
			}
			earlyStop = earlyStop && results[gi].flag
			if gerr == nil && results[gi].err != nil {
				gerr = results[gi].err
			}
		}
		e.snapshot(ranges)
		if e.Logf != nil {
			e.Logf("explore: round %d done, converged=%v", round+1, earlyStop)
		}
		if earlyStop {
			break
		}
	}

	final = mids()
	best := math.Inf(1)
	for _, o := range e.History() {
		if o.Y < best {
			best = o.Y
			bestSeen = o.X
		}
	}
	return final, bestSeen, gerr
}

// snapshot hands a defensive copy of the ranges to the Snapshot hook.
func (e *Explorer) snapshot(ranges map[string]Range) {
	if e.Snapshot == nil {
		return
	}
	cp := make(map[string]Range, len(ranges))
	for k, v := range ranges {
		cp[k] = v
	}
	e.Snapshot(cp)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
