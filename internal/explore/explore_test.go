package explore

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

func sphereParams() []Param {
	return []Param{
		{Name: "a", Kind: Uniform, Lo: -10, Hi: 10, Group: "g1"},
		{Name: "b", Kind: Uniform, Lo: -10, Hi: 10, Group: "g1"},
		{Name: "c", Kind: Uniform, Lo: -10, Hi: 10, Group: "g2"},
	}
}

// sphere has its optimum at (3, -2, 5).
func sphere(x Assignment) float64 {
	return math.Pow(x["a"]-3, 2) + math.Pow(x["b"]+2, 2) + math.Pow(x["c"]-5, 2)
}

func TestExplorerImprovesSphere(t *testing.T) {
	e := &Explorer{
		Params:    sphereParams(),
		Eval:      sphere,
		TimeLimit: 40,
		EarlyStop: 40,
		Rounds:    2,
		Seed:      1,
	}
	final, best := e.Run()
	if sphere(best) > 3 {
		t.Errorf("best observed objective %v, want < 3", sphere(best))
	}
	if sphere(final) > 15 {
		t.Errorf("final (range-median) objective %v, want < 15", sphere(final))
	}
	if len(e.History()) == 0 {
		t.Fatal("no history recorded")
	}
}

func TestTPEBeatsRandomSearch(t *testing.T) {
	budget := 60
	params := sphereParams()

	tpeBest := 0.0
	{
		e := &Explorer{Params: params, Eval: sphere, TimeLimit: budget, EarlyStop: budget, Rounds: 1, Seed: 7}
		_, best := e.Run()
		tpeBest = sphere(best)
	}

	// Random search with the same total evaluation count, averaged over a
	// few seeds to be fair.
	worse := 0
	const trials = 5
	for s := int64(0); s < trials; s++ {
		rng := rand.New(rand.NewSource(s))
		best := math.Inf(1)
		// The explorer used at least `budget` evals (global + groups);
		// give random search 3x that.
		for k := 0; k < 3*budget; k++ {
			x := Assignment{
				"a": -10 + 20*rng.Float64(),
				"b": -10 + 20*rng.Float64(),
				"c": -10 + 20*rng.Float64(),
			}
			if y := sphere(x); y < best {
				best = y
			}
		}
		if tpeBest <= best {
			worse++
		}
	}
	if worse < trials/2 {
		t.Errorf("TPE (%v) beat random search only %d/%d times", tpeBest, worse, trials)
	}
}

func TestIntAndLogParams(t *testing.T) {
	params := []Param{
		{Name: "n", Kind: IntUniform, Lo: 1, Hi: 20},
		{Name: "s", Kind: LogUniform, Lo: 0.001, Hi: 100},
	}
	obj := func(x Assignment) float64 {
		return math.Abs(x["n"]-7) + math.Abs(math.Log10(x["s"])-0) // optimum n=7, s=1
	}
	e := &Explorer{Params: params, Eval: obj, TimeLimit: 50, EarlyStop: 50, Rounds: 2, Seed: 3}
	_, best := e.Run()
	if best["n"] != math.Round(best["n"]) {
		t.Errorf("int param not integral: %v", best["n"])
	}
	if best["s"] < 0.001 || best["s"] > 100 {
		t.Errorf("log param out of range: %v", best["s"])
	}
	if obj(best) > 4 {
		t.Errorf("best objective %v, want < 4", obj(best))
	}
}

func TestCategoricalSelection(t *testing.T) {
	params := []Param{
		{Name: "mode", Kind: Categorical, Choices: []string{"bad", "worse", "good", "awful"}},
		{Name: "x", Kind: Uniform, Lo: 0, Hi: 1},
	}
	obj := func(a Assignment) float64 {
		base := []float64{5, 8, 0, 12}[int(a["mode"])]
		return base + a["x"]
	}
	e := &Explorer{Params: params, Eval: obj, TimeLimit: 60, EarlyStop: 60, Rounds: 1, Seed: 5}
	_, best := e.Run()
	if int(best["mode"]) != 2 {
		t.Errorf("best mode = %v (%s), want 2 (good)",
			best["mode"], params[0].Choices[int(best["mode"])])
	}
}

func TestEarlyStopTerminates(t *testing.T) {
	evals := 0
	e := &Explorer{
		Params:    []Param{{Name: "a", Kind: Uniform, Lo: 0, Hi: 1}},
		Eval:      func(Assignment) float64 { evals++; return 1.0 }, // flat: never improves
		TimeLimit: 1000,
		EarlyStop: 5,
		Rounds:    1,
		Seed:      1,
	}
	e.Run()
	// Global pass: first eval improves (from +inf), then 5 non-improving.
	// One group pass behaves the same. Far fewer than TimeLimit each.
	if evals > 40 {
		t.Errorf("early stop did not engage: %d evals", evals)
	}
}

func TestParallelGroupsAreSafeAndDeterministicMerge(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	obj := func(x Assignment) float64 {
		mu.Lock()
		calls++
		mu.Unlock()
		return sphere(x)
	}
	e := &Explorer{
		Params:    sphereParams(),
		Eval:      obj,
		TimeLimit: 20,
		EarlyStop: 20,
		Rounds:    2,
		Parallel:  true,
		Seed:      11,
	}
	final, _ := e.Run()
	if calls == 0 {
		t.Fatal("no evaluations")
	}
	for _, p := range sphereParams() {
		if _, ok := final[p.Name]; !ok {
			t.Errorf("final missing %s", p.Name)
		}
	}
}

func TestUpdateRangesShrinksTowardOptimum(t *testing.T) {
	params := []Param{{Name: "a", Kind: Uniform, Lo: 0, Hi: 100}}
	ranges := map[string]Range{"a": {0, 100}}
	var obs []Observation
	// Good observations clustered near 30.
	for i := 0; i < 20; i++ {
		v := float64(i * 5)
		y := math.Abs(v - 30)
		obs = append(obs, Observation{X: Assignment{"a": v}, Y: y})
	}
	nr := updateRanges(params, ranges, obs, 0.25)
	r := nr["a"]
	if r.Lo < 5 || r.Hi > 60 {
		t.Errorf("range did not shrink toward 30: [%v, %v]", r.Lo, r.Hi)
	}
	if !(r.Lo <= 30 && 30 <= r.Hi) {
		t.Errorf("range excludes the optimum: [%v, %v]", r.Lo, r.Hi)
	}
}

func TestSuggestStaysInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	params := []Param{
		{Name: "u", Kind: Uniform, Lo: -5, Hi: 5},
		{Name: "l", Kind: LogUniform, Lo: 0.01, Hi: 10},
		{Name: "i", Kind: IntUniform, Lo: 2, Hi: 9},
		{Name: "c", Kind: Categorical, Choices: []string{"x", "y", "z"}},
	}
	ranges := map[string]Range{
		"u": {-5, 5}, "l": {0.01, 10}, "i": {2, 9}, "c": {0, 2},
	}
	tpe := DefaultTPE()
	var obs []Observation
	for k := 0; k < 60; k++ {
		x := tpe.Suggest(rng, params, ranges, obs)
		if x["u"] < -5 || x["u"] > 5 {
			t.Fatalf("u out of range: %v", x["u"])
		}
		if x["l"] < 0.01 || x["l"] > 10 {
			t.Fatalf("l out of range: %v", x["l"])
		}
		if x["i"] < 2 || x["i"] > 9 || x["i"] != math.Round(x["i"]) {
			t.Fatalf("i invalid: %v", x["i"])
		}
		if ci := int(x["c"]); ci < 0 || ci > 2 {
			t.Fatalf("c invalid: %v", x["c"])
		}
		obs = append(obs, Observation{X: x, Y: rng.Float64()})
	}
}

func TestRunIsDeterministicSequential(t *testing.T) {
	run := func() Assignment {
		e := &Explorer{
			Params:    sphereParams(),
			Eval:      sphere,
			TimeLimit: 25,
			EarlyStop: 25,
			Rounds:    2,
			Seed:      99,
		}
		final, _ := e.Run()
		return final
	}
	a, b := run(), run()
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("nondeterministic result for %s: %v vs %v", k, v, b[k])
		}
	}
}
