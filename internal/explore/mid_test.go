package explore

import (
	"math"
	"math/rand"
	"testing"
)

func TestMidPerKind(t *testing.T) {
	cases := []struct {
		p    Param
		r    Range
		want float64
	}{
		{Param{Kind: Uniform}, Range{0, 10}, 5},
		{Param{Kind: IntUniform}, Range{2, 9}, 6}, // round(5.5) away from zero
		{Param{Kind: Categorical, Choices: []string{"a", "b", "c"}}, Range{0, 2}, 1},
	}
	for _, c := range cases {
		if got := c.p.Mid(c.r); got != c.want {
			t.Errorf("Mid(%v, %v) = %v, want %v", c.p.Kind, c.r, got, c.want)
		}
	}
	// Log-uniform midpoint is the geometric mean.
	p := Param{Kind: LogUniform}
	if got := p.Mid(Range{0.01, 100}); math.Abs(got-1) > 1e-12 {
		t.Errorf("log Mid = %v, want 1", got)
	}
}

func TestSuggestFirstObservationsAreRandom(t *testing.T) {
	// Before Startup observations, Suggest must sample uniformly and not
	// crash on empty history.
	tpe := DefaultTPE()
	params := []Param{{Name: "a", Kind: Uniform, Lo: 0, Hi: 1}}
	ranges := map[string]Range{"a": {0, 1}}
	rngs := rand.New(rand.NewSource(1))
	for k := 0; k < tpe.Startup; k++ {
		x := tpe.Suggest(rngs, params, ranges, nil)
		if x["a"] < 0 || x["a"] > 1 {
			t.Fatalf("startup sample out of range: %v", x["a"])
		}
	}
}

func TestUpdateRangesEmptyObservations(t *testing.T) {
	params := []Param{{Name: "a", Kind: Uniform, Lo: 0, Hi: 1}}
	ranges := map[string]Range{"a": {0, 1}}
	out := updateRanges(params, ranges, nil, 0.25)
	if out["a"] != ranges["a"] {
		t.Errorf("empty-observation update changed range: %v", out["a"])
	}
}
