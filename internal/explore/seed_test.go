package explore

import (
	"testing"
)

// TestGroupSeedNoCollisions pins the fix for the old additive scheme
// (seed + round*1000 + gi), where e.g. (seed=1, round=0, gi=1) and
// (seed=2, round=0, gi=0) collided and nearby seeds shared whole group
// RNG streams. The mixed seeds must be pairwise distinct across seeds,
// rounds, and group indices.
func TestGroupSeedNoCollisions(t *testing.T) {
	seen := map[int64][3]int64{}
	for _, seed := range []int64{0, 1, 2, 42, 1000, -7} {
		for round := 0; round < 20; round++ {
			for gi := 0; gi < 10; gi++ {
				s := groupSeed(seed, round, gi)
				if prev, dup := seen[s]; dup {
					t.Fatalf("groupSeed collision: (%d,%d,%d) and %v -> %d",
						seed, round, gi, prev, s)
				}
				seen[s] = [3]int64{seed, int64(round), int64(gi)}
			}
		}
	}
}

// TestGroupSeedOldSchemeCollided documents why the additive derivation
// was replaced: under it these tuples produced identical RNG streams.
func TestGroupSeedOldSchemeCollided(t *testing.T) {
	old := func(seed int64, round, gi int) int64 { return seed + int64(round)*1000 + int64(gi) }
	if old(1, 0, 1) != old(2, 0, 0) {
		t.Skip("old scheme changed; nothing to document")
	}
	if groupSeed(1, 0, 1) == groupSeed(2, 0, 0) {
		t.Error("mixed groupSeed still collides on (1,0,1) vs (2,0,0)")
	}
}

// TestRunIsDeterministicParallel pins parallel-mode determinism: the
// group seeds derive only from (Seed, round, group index), so concurrent
// execution order cannot change the result.
func TestRunIsDeterministicParallel(t *testing.T) {
	run := func() (Assignment, int) {
		e := &Explorer{
			Params:    twoGroupParams(),
			Eval:      sumsq,
			TimeLimit: 30, EarlyStop: 30, Rounds: 2, Seed: 9,
			Parallel: true,
		}
		final, _ := e.Run()
		return final, len(e.History())
	}
	f1, n1 := run()
	f2, n2 := run()
	if n1 != n2 {
		t.Fatalf("history lengths differ: %d vs %d", n1, n2)
	}
	for k, v := range f1 {
		if f2[k] != v {
			t.Errorf("final[%q] differs: %v vs %v", k, v, f2[k])
		}
	}
}
