// Package feature extracts the multi-feature view used for cell padding
// (paper Sec. III-B1). Three categories of features are computed per cell:
//
//   - Local features: the signed local congestion LCg(c) of Eq. 9 (maximum
//     Cg over the Gcells the cell overlaps) and the local pin density.
//   - CNN-inspired features: surrounding congestion and surrounding pin
//     density — a mean-filter convolution over the cell's bounding box
//     expanded by a kernel margin, computed with summed-area tables.
//   - GNN-inspired feature: pin congestion PCg(c) of Eqs. 12–13, which
//     aggregates over the net topology: for each pin, the minimum over all
//     candidate L- and Z-shaped routing paths of its incident two-point
//     nets of the maximum Gcell congestion along the path.
package feature

import (
	"context"
	"math"

	"puffer/internal/cong"
	"puffer/internal/geom"
	"puffer/internal/netlist"
	"puffer/internal/obs"
	"puffer/internal/par"
	"puffer/internal/rsmt"
)

// Count is the number of features per cell, |F| in Eq. 14.
const Count = 5

// Feature indices within a cell's feature vector.
const (
	LocalCg = iota
	LocalPinDensity
	SurroundCg
	SurroundPinDensity
	PinCg
)

// Names lists the feature names in vector order.
var Names = [Count]string{
	"local_congestion",
	"local_pin_density",
	"surround_congestion",
	"surround_pin_density",
	"pin_congestion",
}

// Params control the extraction.
type Params struct {
	// KernelMargin is the expansion of the cell bounding box, in Gcells,
	// for the CNN-inspired surrounding features (the convolution kernel
	// half-size).
	KernelMargin int
	// ZSamples caps how many interior Z-path bend positions are tried per
	// two-point net when computing pin congestion.
	ZSamples int
	// Workers caps the extraction parallelism (0 = GOMAXPROCS).
	Workers int
}

// DefaultParams returns the hand-tuned defaults; the strategy exploration
// replaces KernelMargin when searching.
func DefaultParams() Params {
	return Params{KernelMargin: 2, ZSamples: 4}
}

// Set holds the extracted per-cell features, indexed [cell][feature].
type Set struct {
	Vec [][Count]float64
}

// Extract computes all features for every movable cell of d against the
// congestion map m and the per-net topologies trees (as produced by
// cong.Estimator). Fixed cells get zero vectors.
func Extract(d *netlist.Design, m *cong.Map, trees []rsmt.Tree, p Params) *Set {
	s, _ := ExtractCtx(context.Background(), d, m, trees, p)
	return s
}

// ExtractCtx is Extract with cancellation: each parallel extraction loop
// stops scheduling new cell/net chunks once ctx is done and returns an
// error wrapping flow.ErrCanceled. The partially filled Set is returned
// so callers can discard it without a nil check.
func ExtractCtx(ctx context.Context, d *netlist.Design, m *cong.Map, trees []rsmt.Tree, p Params) (*Set, error) {
	// Extraction carries no recorder of its own: when the caller's context
	// holds a span (the padding optimizer's "padding.run"), the three
	// parallel phases report as its children; otherwise these are all nil
	// no-ops.
	parent := obs.FromContext(ctx)
	sp := parent.Child("feature.extract")
	defer sp.End()

	s := &Set{Vec: make([][Count]float64, len(d.Cells))}

	// Per-Gcell congestion and pin density grids plus their summed-area
	// tables for the mean-filter features.
	size := m.W * m.H
	cg := make([]float64, size)
	pd := make([]float64, size)
	for i := 0; i < size; i++ {
		cg[i] = m.Cg(i)
		pd[i] = m.PinDensity(i)
	}
	satCg := newSAT(cg, m.W, m.H)
	satPd := newSAT(pd, m.W, m.H)

	// Local and CNN-inspired features per cell.
	spCells := sp.Child("feature.local_cnn")
	if err := par.ForErrN(ctx, p.Workers, len(d.Cells), func(ci int) error {
		c := &d.Cells[ci]
		if c.Fixed {
			return nil
		}
		r := c.Rect().Intersect(m.Region)
		ci0, cj0 := m.GcellOf(r.Lo)
		hi := r.Hi
		// Nudge the exclusive corner inside so a cell ending exactly on a
		// Gcell boundary does not claim the next Gcell.
		hi.X -= 1e-9
		hi.Y -= 1e-9
		ci1, cj1 := m.GcellOf(hi)
		if ci1 < ci0 {
			ci1 = ci0
		}
		if cj1 < cj0 {
			cj1 = cj0
		}

		lc := math.Inf(-1)
		lp := 0.0
		for j := cj0; j <= cj1; j++ {
			for i := ci0; i <= ci1; i++ {
				idx := m.Index(i, j)
				if cg[idx] > lc {
					lc = cg[idx]
				}
				if pd[idx] > lp {
					lp = pd[idx]
				}
			}
		}
		s.Vec[ci][LocalCg] = lc
		s.Vec[ci][LocalPinDensity] = lp

		k := p.KernelMargin
		s.Vec[ci][SurroundCg] = satCg.mean(ci0-k, cj0-k, ci1+k, cj1+k)
		s.Vec[ci][SurroundPinDensity] = satPd.mean(ci0-k, cj0-k, ci1+k, cj1+k)
		return nil
	}); err != nil {
		spCells.End()
		return s, err
	}
	spCells.End()

	// GNN-inspired pin congestion. First per pin, then summed per cell
	// (Eq. 12). Nets are independent, so parallelize over nets with a
	// per-pin result slice (each pin belongs to exactly one net).
	pinCg := make([]float64, len(d.Pins))
	for i := range pinCg {
		pinCg[i] = math.Inf(1)
	}
	spPins := sp.Child("feature.pin_cg")
	if err := par.ForErrN(ctx, p.Workers, len(d.Nets), func(n int) error {
		if n >= len(trees) {
			return nil
		}
		tree := &trees[n]
		net := &d.Nets[n]
		for _, e := range tree.Edges {
			a, b := tree.Nodes[e.A], tree.Nodes[e.B]
			pc := pathCongestion(m, cg, a.P, b.P, p.ZSamples)
			if a.Pin >= 0 {
				pid := net.Pins[a.Pin]
				if pc < pinCg[pid] {
					pinCg[pid] = pc
				}
			}
			if b.Pin >= 0 {
				pid := net.Pins[b.Pin]
				if pc < pinCg[pid] {
					pinCg[pid] = pc
				}
			}
		}
		return nil
	}); err != nil {
		spPins.End()
		return s, err
	}
	spPins.End()
	if err := par.ForErrN(ctx, p.Workers, len(d.Cells), func(ci int) error {
		c := &d.Cells[ci]
		if c.Fixed {
			return nil
		}
		sum := 0.0
		for _, pid := range c.Pins {
			if v := pinCg[pid]; !math.IsInf(v, 1) {
				sum += v
			}
		}
		s.Vec[ci][PinCg] = sum
		return nil
	}); err != nil {
		return s, err
	}
	return s, nil
}

// pathCongestion returns the minimum over candidate L- and Z-shaped paths
// between the Gcells of points a and b of the maximum congestion along the
// path (Eq. 13).
func pathCongestion(m *cong.Map, cg []float64, a, b geom.Point, zsamples int) float64 {
	ai, aj := m.GcellOf(a)
	bi, bj := m.GcellOf(b)
	if ai == bi && aj == bj {
		return cg[m.Index(ai, aj)]
	}
	if ai == bi {
		return maxAlongV(m, cg, ai, aj, bj)
	}
	if aj == bj {
		return maxAlongH(m, cg, aj, ai, bi)
	}

	// L-shaped candidates: horizontal-then-vertical and vertical-then-
	// horizontal.
	best := math.Min(
		math.Max(maxAlongH(m, cg, aj, ai, bi), maxAlongV(m, cg, bi, aj, bj)),
		math.Max(maxAlongV(m, cg, ai, aj, bj), maxAlongH(m, cg, bj, ai, bi)),
	)

	// Z-shaped candidates: HVH with an interior bend column, VHV with an
	// interior bend row, sampled evenly up to zsamples positions each.
	lo, hi := minInt(ai, bi), maxInt(ai, bi)
	for _, c := range sampleInterior(lo, hi, zsamples) {
		v := math.Max(maxAlongH(m, cg, aj, ai, c),
			math.Max(maxAlongV(m, cg, c, aj, bj), maxAlongH(m, cg, bj, c, bi)))
		if v < best {
			best = v
		}
	}
	lo, hi = minInt(aj, bj), maxInt(aj, bj)
	for _, r := range sampleInterior(lo, hi, zsamples) {
		v := math.Max(maxAlongV(m, cg, ai, aj, r),
			math.Max(maxAlongH(m, cg, r, ai, bi), maxAlongV(m, cg, bi, r, bj)))
		if v < best {
			best = v
		}
	}
	return best
}

// maxAlongH returns the maximum congestion over Gcells (i0..i1, j).
func maxAlongH(m *cong.Map, cg []float64, j, i0, i1 int) float64 {
	if i0 > i1 {
		i0, i1 = i1, i0
	}
	best := math.Inf(-1)
	row := j * m.W
	for i := i0; i <= i1; i++ {
		if v := cg[row+i]; v > best {
			best = v
		}
	}
	return best
}

// maxAlongV returns the maximum congestion over Gcells (i, j0..j1).
func maxAlongV(m *cong.Map, cg []float64, i, j0, j1 int) float64 {
	if j0 > j1 {
		j0, j1 = j1, j0
	}
	best := math.Inf(-1)
	for j := j0; j <= j1; j++ {
		if v := cg[j*m.W+i]; v > best {
			best = v
		}
	}
	return best
}

// sampleInterior returns up to k evenly spaced integers strictly between lo
// and hi.
func sampleInterior(lo, hi, k int) []int {
	n := hi - lo - 1
	if n <= 0 || k <= 0 {
		return nil
	}
	if n <= k {
		out := make([]int, 0, n)
		for v := lo + 1; v < hi; v++ {
			out = append(out, v)
		}
		return out
	}
	out := make([]int, 0, k)
	for s := 1; s <= k; s++ {
		out = append(out, lo+s*(n+1)/(k+1))
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// sat is a summed-area table over a W×H grid for O(1) window means.
type sat struct {
	w, h int
	s    []float64 // (w+1)×(h+1), s[(j)*(w+1)+i] = sum of rect [0,i)×[0,j)
}

func newSAT(grid []float64, w, h int) *sat {
	t := &sat{w: w, h: h, s: make([]float64, (w+1)*(h+1))}
	for j := 0; j < h; j++ {
		rowSum := 0.0
		for i := 0; i < w; i++ {
			rowSum += grid[j*w+i]
			t.s[(j+1)*(w+1)+(i+1)] = t.s[j*(w+1)+(i+1)] + rowSum
		}
	}
	return t
}

// mean returns the average over the inclusive Gcell window [i0..i1]×[j0..j1]
// clamped to the grid.
func (t *sat) mean(i0, j0, i1, j1 int) float64 {
	i0 = geom.ClampInt(i0, 0, t.w-1)
	i1 = geom.ClampInt(i1, 0, t.w-1)
	j0 = geom.ClampInt(j0, 0, t.h-1)
	j1 = geom.ClampInt(j1, 0, t.h-1)
	if i1 < i0 || j1 < j0 {
		return 0
	}
	w1 := t.w + 1
	sum := t.s[(j1+1)*w1+(i1+1)] - t.s[j0*w1+(i1+1)] - t.s[(j1+1)*w1+i0] + t.s[j0*w1+i0]
	return sum / float64((i1-i0+1)*(j1-j0+1))
}
