package feature

import (
	"math"
	"testing"

	"puffer/internal/cong"
	"puffer/internal/geom"
	"puffer/internal/netlist"
)

func testDesign() *netlist.Design {
	return &netlist.Design{
		Name:      "t",
		Region:    geom.RectWH(0, 0, 32, 32),
		RowHeight: 1,
		SiteWidth: 0.2,
		Layers:    netlist.DefaultLayers(),
	}
}

func TestSATMeanMatchesNaive(t *testing.T) {
	w, h := 5, 4
	grid := make([]float64, w*h)
	for i := range grid {
		grid[i] = float64(i * i % 7)
	}
	s := newSAT(grid, w, h)
	for j0 := 0; j0 < h; j0++ {
		for i0 := 0; i0 < w; i0++ {
			for j1 := j0; j1 < h; j1++ {
				for i1 := i0; i1 < w; i1++ {
					sum, n := 0.0, 0
					for j := j0; j <= j1; j++ {
						for i := i0; i <= i1; i++ {
							sum += grid[j*w+i]
							n++
						}
					}
					want := sum / float64(n)
					if got := s.mean(i0, j0, i1, j1); math.Abs(got-want) > 1e-12 {
						t.Fatalf("mean(%d,%d,%d,%d) = %v, want %v", i0, j0, i1, j1, got, want)
					}
				}
			}
		}
	}
}

func TestSATMeanClamps(t *testing.T) {
	grid := []float64{1, 2, 3, 4}
	s := newSAT(grid, 2, 2)
	if got := s.mean(-5, -5, 10, 10); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("clamped full mean = %v, want 2.5", got)
	}
}

func TestSampleInterior(t *testing.T) {
	if got := sampleInterior(3, 4, 4); got != nil {
		t.Errorf("adjacent sampleInterior = %v, want nil", got)
	}
	got := sampleInterior(0, 5, 10) // interior 1..4 all fit
	if len(got) != 4 || got[0] != 1 || got[3] != 4 {
		t.Errorf("small interior = %v", got)
	}
	got = sampleInterior(0, 100, 4)
	if len(got) != 4 {
		t.Fatalf("sampled = %v, want 4 values", got)
	}
	for _, v := range got {
		if v <= 0 || v >= 100 {
			t.Errorf("sample %d outside interior", v)
		}
	}
}

// congestedCorner builds a design plus map where the lower-left Gcell
// region is overloaded and the rest has slack.
func congestedCorner() (*netlist.Design, *cong.Map) {
	d := testDesign()
	// One cell in the congested corner, one in the calm area.
	d.AddCell(netlist.Cell{Name: "hot", W: 1, H: 1, X: 1, Y: 1})
	d.AddCell(netlist.Cell{Name: "cold", W: 1, H: 1, X: 25, Y: 25})
	m := cong.NewMap(d, 8, 8)
	for j := 0; j < 2; j++ {
		for i := 0; i < 2; i++ {
			idx := m.Index(i, j)
			m.DmdH[idx] = m.CapH[idx] * 2
			m.DmdV[idx] = m.CapV[idx] * 1.5
		}
	}
	return d, m
}

func TestLocalCongestionSeparatesCells(t *testing.T) {
	d, m := congestedCorner()
	s := Extract(d, m, nil, DefaultParams())
	hot := s.Vec[0][LocalCg]
	cold := s.Vec[1][LocalCg]
	if hot <= 0 {
		t.Errorf("hot cell LocalCg = %v, want > 0", hot)
	}
	if cold >= 0 {
		t.Errorf("cold cell LocalCg = %v, want < 0 (signed slack preserved)", cold)
	}
	if hot <= cold {
		t.Errorf("hot %v <= cold %v", hot, cold)
	}
}

func TestSurroundingIsSmoother(t *testing.T) {
	d, m := congestedCorner()
	s := Extract(d, m, nil, Params{KernelMargin: 3, ZSamples: 2})
	// The surrounding mean over a window spanning hot and calm Gcells must
	// lie strictly between the extremes.
	hotLocal := s.Vec[0][LocalCg]
	hotSurr := s.Vec[0][SurroundCg]
	if !(hotSurr < hotLocal) {
		t.Errorf("surround %v not below local max %v", hotSurr, hotLocal)
	}
	// Kernel margin 0 degenerates to the cell's own Gcell mean.
	s0 := Extract(d, m, nil, Params{KernelMargin: 0, ZSamples: 2})
	if s0.Vec[0][SurroundCg] < s.Vec[0][SurroundCg] {
		t.Errorf("zero-margin surround %v below wide-margin %v", s0.Vec[0][SurroundCg], s.Vec[0][SurroundCg])
	}
}

func TestPinDensityFeatures(t *testing.T) {
	d := testDesign()
	a := d.AddCell(netlist.Cell{Name: "a", W: 1, H: 1, X: 1, Y: 1})
	b := d.AddCell(netlist.Cell{Name: "b", W: 1, H: 1, X: 25, Y: 25})
	n := d.AddNet("n", 1)
	// Many pins on cell a's Gcell.
	for k := 0; k < 8; k++ {
		d.Connect(a, n, 0.1*float64(k), 0.5)
	}
	d.Connect(b, n, 0, 0)
	e := cong.NewEstimator(d, 8, 8, cong.DefaultParams())
	m := e.Estimate()
	s := Extract(d, m, e.Trees, DefaultParams())
	if s.Vec[0][LocalPinDensity] <= s.Vec[1][LocalPinDensity] {
		t.Errorf("pin-heavy cell density %v <= light cell %v",
			s.Vec[0][LocalPinDensity], s.Vec[1][LocalPinDensity])
	}
	if s.Vec[0][SurroundPinDensity] <= 0 {
		t.Error("surround pin density not positive")
	}
}

func TestPinCongestionUsesTopology(t *testing.T) {
	d := testDesign()
	a := d.AddCell(netlist.Cell{Name: "a", W: 1, H: 1, X: 2, Y: 10})
	b := d.AddCell(netlist.Cell{Name: "b", W: 1, H: 1, X: 26, Y: 10})
	n := d.AddNet("n", 1)
	d.Connect(a, n, 0.5, 0.5)
	d.Connect(b, n, 0.5, 0.5)
	e := cong.NewEstimator(d, 8, 8, cong.Params{PinPenalty: 0})
	m := e.Estimate()

	s := Extract(d, m, e.Trees, DefaultParams())
	// Both pins see the same single path, so their cells' PinCg match.
	if math.Abs(s.Vec[0][PinCg]-s.Vec[1][PinCg]) > 1e-12 {
		t.Errorf("PinCg differs: %v vs %v", s.Vec[0][PinCg], s.Vec[1][PinCg])
	}
	base := s.Vec[0][PinCg]

	// Choke the straight row: the only I-path gets congested, and since
	// the segment is straight (no L/Z alternatives), PinCg must rise.
	for i := 0; i < m.W; i++ {
		idx := m.Index(i, 2)
		m.DmdH[idx] = m.CapH[idx] * 3
	}
	s2 := Extract(d, m, e.Trees, DefaultParams())
	if s2.Vec[0][PinCg] <= base {
		t.Errorf("PinCg %v did not rise above %v after choking the path", s2.Vec[0][PinCg], base)
	}
}

func TestPinCongestionPrefersCleanDetour(t *testing.T) {
	// Diagonal two-pin net: one L corner is congested, the other clean.
	// Eq. 13 takes the min over candidate paths, so PCg must stay low.
	d := testDesign()
	a := d.AddCell(netlist.Cell{Name: "a", W: 1, H: 1, X: 2, Y: 2})
	b := d.AddCell(netlist.Cell{Name: "b", W: 1, H: 1, X: 26, Y: 26})
	n := d.AddNet("n", 1)
	d.Connect(a, n, 0.5, 0.5)
	d.Connect(b, n, 0.5, 0.5)
	e := cong.NewEstimator(d, 8, 8, cong.Params{PinPenalty: 0})
	m := e.Estimate()
	// Congest the upper-left corner Gcell (0,6) region — on the VH path
	// but not the HV path.
	for j := 3; j < 8; j++ {
		idx := m.Index(0, j)
		m.DmdV[idx] = m.CapV[idx] * 5
	}
	s := Extract(d, m, e.Trees, DefaultParams())
	if s.Vec[0][PinCg] > 0 {
		t.Errorf("PinCg = %v, want <= 0 (clean HV detour exists)", s.Vec[0][PinCg])
	}
}

func TestFixedCellsGetZeroVectors(t *testing.T) {
	d, m := congestedCorner()
	d.Cells[0].Fixed = true
	s := Extract(d, m, nil, DefaultParams())
	for f := 0; f < Count; f++ {
		if s.Vec[0][f] != 0 {
			t.Errorf("fixed cell feature %s = %v, want 0", Names[f], s.Vec[0][f])
		}
	}
}

func TestCellSpanningMultipleGcellsTakesMax(t *testing.T) {
	d := testDesign()
	// Wide cell spanning Gcells (0..2, 0).
	d.AddCell(netlist.Cell{Name: "wide", W: 11, H: 1, X: 0.5, Y: 0.5})
	m := cong.NewMap(d, 8, 8)
	idx := m.Index(2, 0)
	m.DmdH[idx] = m.CapH[idx] * 2 // only the third Gcell is hot
	s := Extract(d, m, nil, DefaultParams())
	if s.Vec[0][LocalCg] <= 0 {
		t.Errorf("wide cell LocalCg = %v, want > 0 (max over overlapped Gcells)", s.Vec[0][LocalCg])
	}
}

func BenchmarkExtract(b *testing.B) {
	d := testDesign()
	for k := 0; k < 500; k++ {
		x := float64(k%25) + 0.5
		y := float64(k/25) + 0.5
		d.AddCell(netlist.Cell{W: 0.8, H: 1, X: x, Y: y})
	}
	for k := 0; k+3 < 500; k += 2 {
		n := d.AddNet("", 1)
		d.Connect(k, n, 0.2, 0.5)
		d.Connect(k+1, n, 0.2, 0.5)
		d.Connect(k+3, n, 0.2, 0.5)
	}
	e := cong.NewEstimator(d, 16, 16, cong.DefaultParams())
	m := e.Estimate()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Extract(d, m, e.Trees, DefaultParams())
	}
}
