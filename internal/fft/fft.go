// Package fft implements the spectral transforms behind the electrostatic
// density model of the placement engine (paper Eqs. 4–6).
//
// The density grid is expanded in a half-sample cosine basis
//
//	ρ[m] ≈ Σ_u a[u]·cos(k_u·(m+1/2)),  k_u = πu/M,
//
// which corresponds to Neumann (zero-flux) boundary conditions at the chip
// edges: charge does not push across the placement boundary. The package
// provides the three one-dimensional primitives the 2-D Poisson solver
// needs — the forward cosine analysis (a DCT-II), cosine evaluation for the
// potential, and sine evaluation for the electric field — all computed via
// a radix-2 complex FFT on the 2M mirror extension, O(M log M).
package fft

import (
	"fmt"
	"math"
	"math/bits"
)

// Plan holds precomputed twiddle factors and the bit-reversal permutation
// for complex FFTs of a fixed power-of-two size. After construction a Plan
// is immutable — Forward/Inverse only read it and work in place on the
// caller's buffer — so one Plan may be shared by any number of concurrent
// transforms as long as each goroutine owns its data buffer. Spectral
// wraps a Plan together with per-instance scratch; use Spectral.Clone to
// fan one precomputed Plan out across workers.
type Plan struct {
	n       int
	logn    int
	rev     []int
	twiddle []complex128 // twiddle[k] = exp(-2πi k / n), k < n/2
}

// NewPlan creates a plan for complex FFTs of size n, which must be a power
// of two and at least 1.
func NewPlan(n int) *Plan {
	if n <= 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("fft: size %d is not a positive power of two", n))
	}
	p := &Plan{n: n, logn: bits.TrailingZeros(uint(n))}
	p.rev = make([]int, n)
	for i := 0; i < n; i++ {
		p.rev[i] = int(bits.Reverse(uint(i)) >> (bits.UintSize - p.logn))
	}
	p.twiddle = make([]complex128, n/2)
	for k := range p.twiddle {
		ang := -2 * math.Pi * float64(k) / float64(n)
		p.twiddle[k] = complex(math.Cos(ang), math.Sin(ang))
	}
	return p
}

// Size returns the transform size of the plan.
func (p *Plan) Size() int { return p.n }

// Forward computes the in-place forward DFT:
//
//	X[u] = Σ_m x[m]·exp(-2πi·u·m/n).
func (p *Plan) Forward(x []complex128) {
	if len(x) != p.n {
		panic(fmt.Sprintf("fft: data length %d != plan size %d", len(x), p.n))
	}
	for i, j := range p.rev {
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	for size := 2; size <= p.n; size <<= 1 {
		half := size >> 1
		step := p.n / size
		for start := 0; start < p.n; start += size {
			tw := 0
			for k := start; k < start+half; k++ {
				w := p.twiddle[tw]
				tw += step
				t := w * x[k+half]
				x[k+half] = x[k] - t
				x[k] = x[k] + t
			}
		}
	}
}

// Inverse computes the in-place inverse DFT with 1/n normalization:
//
//	x[m] = (1/n)·Σ_u X[u]·exp(+2πi·u·m/n).
func (p *Plan) Inverse(x []complex128) {
	for i := range x {
		x[i] = complex(real(x[i]), -imag(x[i]))
	}
	p.Forward(x)
	inv := 1 / float64(p.n)
	for i := range x {
		x[i] = complex(real(x[i])*inv, -imag(x[i])*inv)
	}
}

// Spectral bundles the three real transforms used by the Poisson solver for
// one dimension of size M (a power of two). Internally every transform is a
// complex FFT of size 2M over the mirror extension of the input.
//
// A Spectral carries private scratch (buf), so a single instance is not
// safe for concurrent use; Clone returns additional instances that share
// the immutable plan and phase tables but own fresh scratch, which is how
// the density solver batches row/column transforms across workers without
// recomputing twiddle factors per worker.
type Spectral struct {
	m    int
	plan *Plan
	buf  []complex128
	// phase[u] = exp(-iπu/(2M)) used to extract half-sample cosine series.
	phase []complex128
}

// NewSpectral creates the transform set for dimension size m (power of two).
func NewSpectral(m int) *Spectral {
	s := &Spectral{m: m, plan: NewPlan(2 * m)}
	s.buf = make([]complex128, 2*m)
	s.phase = make([]complex128, m)
	for u := 0; u < m; u++ {
		ang := -math.Pi * float64(u) / float64(2*m)
		s.phase[u] = complex(math.Cos(ang), math.Sin(ang))
	}
	return s
}

// Size returns M.
func (s *Spectral) Size() int { return s.m }

// Clone returns a new Spectral sharing s's precomputed plan and phase
// table (both immutable after construction) with its own scratch buffer,
// so the clone and the original can run transforms concurrently. Cloning
// costs one 2M-complex allocation and no trigonometry.
func (s *Spectral) Clone() *Spectral {
	return &Spectral{
		m:     s.m,
		plan:  s.plan,
		buf:   make([]complex128, 2*s.m),
		phase: s.phase,
	}
}

// CosCoeffs computes the unnormalized DCT-II analysis
//
//	a[u] = Σ_{m=0}^{M-1} x[m]·cos(πu(m+1/2)/M),  u = 0..M-1.
//
// out must have length M and may not alias x.
func (s *Spectral) CosCoeffs(x, out []float64) {
	s.check(x, out)
	for m := 0; m < s.m; m++ {
		v := complex(x[m], 0)
		s.buf[m] = v
		s.buf[2*s.m-1-m] = v
	}
	s.plan.Forward(s.buf)
	for u := 0; u < s.m; u++ {
		// Xe[u] = exp(iπu/(2M)) · 2·Σ x cos(πu(m+1/2)/M)
		// Xe[u] = exp(iπu/(2M))·2·Σ x cos(πu(m+1/2)/M), so multiplying by
		// phase[u] = exp(-iπu/(2M)) leaves twice the cosine sum.
		out[u] = 0.5 * real(s.phase[u]*s.buf[u])
	}
}

// EvalCos evaluates the cosine series
//
//	y[m] = Σ_{u=0}^{M-1} a[u]·cos(πu(m+1/2)/M).
//
// out must have length M and may not alias a.
func (s *Spectral) EvalCos(a, out []float64) {
	s.check(a, out)
	// y[m] = Re( Σ_u a[u]·exp(iπu(m+1/2)/M) )
	//      = Re( Σ_u (a[u]·exp(iπu/(2M)))·exp(2πi·u·m/(2M)) )
	// Compute the positive-exponent sum as conj(FFT(conj(B))).
	for u := 0; u < s.m; u++ {
		// conj(B[u]) where B[u] = a[u]·exp(iπu/(2M)) = a[u]·conj(phase[u]).
		s.buf[u] = complex(a[u], 0) * s.phase[u]
	}
	for u := s.m; u < 2*s.m; u++ {
		s.buf[u] = 0
	}
	s.plan.Forward(s.buf)
	for m := 0; m < s.m; m++ {
		out[m] = real(s.buf[m]) // Re(conj(z)) == Re(z)
	}
}

// EvalSin evaluates the sine series
//
//	y[m] = Σ_{u=0}^{M-1} c[u]·sin(πu(m+1/2)/M).
//
// The u = 0 term contributes nothing. out must have length M and may not
// alias c.
func (s *Spectral) EvalSin(c, out []float64) {
	s.check(c, out)
	// y[m] = Im( Σ_u c[u]·exp(iπu(m+1/2)/M) ), same sum as EvalCos:
	// the positive-exponent sum equals conj(FFT(conj(B))), whose imaginary
	// part is the negation of the computed FFT's imaginary part.
	for u := 0; u < s.m; u++ {
		s.buf[u] = complex(c[u], 0) * s.phase[u]
	}
	for u := s.m; u < 2*s.m; u++ {
		s.buf[u] = 0
	}
	s.plan.Forward(s.buf)
	for m := 0; m < s.m; m++ {
		out[m] = -imag(s.buf[m])
	}
}

func (s *Spectral) check(in, out []float64) {
	if len(in) != s.m || len(out) != s.m {
		panic(fmt.Sprintf("fft: spectral buffers %d/%d != size %d", len(in), len(out), s.m))
	}
}

// Freq returns the spatial frequency k_u = πu/M of basis index u.
func (s *Spectral) Freq(u int) float64 {
	return math.Pi * float64(u) / float64(s.m)
}
