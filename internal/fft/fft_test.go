package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// naiveDFT is the O(n²) reference implementation.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for u := 0; u < n; u++ {
		var sum complex128
		for m := 0; m < n; m++ {
			ang := -2 * math.Pi * float64(u) * float64(m) / float64(n)
			sum += x[m] * cmplx.Exp(complex(0, ang))
		}
		out[u] = sum
	}
	return out
}

func TestForwardMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 16, 64} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		want := naiveDFT(x)
		got := append([]complex128(nil), x...)
		NewPlan(n).Forward(got)
		for i := range got {
			if cmplx.Abs(got[i]-want[i]) > 1e-9*float64(n) {
				t.Fatalf("n=%d: FFT[%d] = %v, want %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{2, 8, 128} {
		p := NewPlan(n)
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		y := append([]complex128(nil), x...)
		p.Forward(y)
		p.Inverse(y)
		for i := range y {
			if cmplx.Abs(y[i]-x[i]) > 1e-9 {
				t.Fatalf("n=%d: roundtrip[%d] = %v, want %v", n, i, y[i], x[i])
			}
		}
	}
}

func TestForwardKnownValues(t *testing.T) {
	// FFT of a constant is an impulse at DC.
	n := 8
	x := make([]complex128, n)
	for i := range x {
		x[i] = 3
	}
	NewPlan(n).Forward(x)
	if cmplx.Abs(x[0]-complex(24, 0)) > 1e-12 {
		t.Errorf("DC bin = %v, want 24", x[0])
	}
	for i := 1; i < n; i++ {
		if cmplx.Abs(x[i]) > 1e-12 {
			t.Errorf("bin %d = %v, want 0", i, x[i])
		}
	}
}

func TestNewPlanRejectsBadSizes(t *testing.T) {
	for _, n := range []int{0, -4, 3, 6, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPlan(%d) did not panic", n)
				}
			}()
			NewPlan(n)
		}()
	}
}

func TestForwardRejectsWrongLength(t *testing.T) {
	p := NewPlan(8)
	defer func() {
		if recover() == nil {
			t.Error("Forward accepted wrong-length input")
		}
	}()
	p.Forward(make([]complex128, 4))
}

// naiveCosCoeffs is the O(M²) reference DCT-II.
func naiveCosCoeffs(x []float64) []float64 {
	m := len(x)
	out := make([]float64, m)
	for u := 0; u < m; u++ {
		sum := 0.0
		for i := 0; i < m; i++ {
			sum += x[i] * math.Cos(math.Pi*float64(u)*(float64(i)+0.5)/float64(m))
		}
		out[u] = sum
	}
	return out
}

func naiveEvalCos(a []float64) []float64 {
	m := len(a)
	out := make([]float64, m)
	for i := 0; i < m; i++ {
		sum := 0.0
		for u := 0; u < m; u++ {
			sum += a[u] * math.Cos(math.Pi*float64(u)*(float64(i)+0.5)/float64(m))
		}
		out[i] = sum
	}
	return out
}

func naiveEvalSin(c []float64) []float64 {
	m := len(c)
	out := make([]float64, m)
	for i := 0; i < m; i++ {
		sum := 0.0
		for u := 0; u < m; u++ {
			sum += c[u] * math.Sin(math.Pi*float64(u)*(float64(i)+0.5)/float64(m))
		}
		out[i] = sum
	}
	return out
}

func TestSpectralMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, m := range []int{2, 4, 16, 32} {
		s := NewSpectral(m)
		x := make([]float64, m)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got := make([]float64, m)

		s.CosCoeffs(x, got)
		want := naiveCosCoeffs(x)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-9*float64(m) {
				t.Fatalf("m=%d: CosCoeffs[%d] = %v, want %v", m, i, got[i], want[i])
			}
		}

		s.EvalCos(x, got)
		want = naiveEvalCos(x)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-9*float64(m) {
				t.Fatalf("m=%d: EvalCos[%d] = %v, want %v", m, i, got[i], want[i])
			}
		}

		s.EvalSin(x, got)
		want = naiveEvalSin(x)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-9*float64(m) {
				t.Fatalf("m=%d: EvalSin[%d] = %v, want %v", m, i, got[i], want[i])
			}
		}
	}
}

// Property: analysis followed by normalized synthesis reconstructs the
// signal (the DCT-II / DCT-III inversion identity).
func TestSpectralReconstruction(t *testing.T) {
	m := 64
	s := NewSpectral(m)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, m)
		for i := range x {
			x[i] = rng.NormFloat64() * 10
		}
		a := make([]float64, m)
		s.CosCoeffs(x, a)
		for u := range a {
			a[u] *= 2 / float64(m)
		}
		a[0] /= 2
		y := make([]float64, m)
		s.EvalCos(a, y)
		for i := range y {
			if math.Abs(y[i]-x[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestFreq(t *testing.T) {
	s := NewSpectral(8)
	if s.Freq(0) != 0 {
		t.Error("Freq(0) != 0")
	}
	if got, want := s.Freq(4), math.Pi/2; math.Abs(got-want) > 1e-15 {
		t.Errorf("Freq(4) = %v, want %v", got, want)
	}
	if s.Size() != 8 {
		t.Errorf("Size = %d", s.Size())
	}
}

func BenchmarkFFT256(b *testing.B) {
	p := NewPlan(256)
	x := make([]complex128, 256)
	for i := range x {
		x[i] = complex(float64(i%7), 0)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Forward(x)
	}
}

func BenchmarkSpectral256(b *testing.B) {
	s := NewSpectral(256)
	x := make([]float64, 256)
	out := make([]float64, 256)
	for i := range x {
		x[i] = float64(i % 13)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.CosCoeffs(x, out)
	}
}

// TestCloneSharesPlanMatchesOriginal checks a clone produces bit-identical
// transforms while running concurrently with the original on the shared
// plan (go test -race guards the immutability claim).
func TestCloneSharesPlanMatchesOriginal(t *testing.T) {
	const m = 64
	s := NewSpectral(m)
	c := s.Clone()
	if c.plan != s.plan {
		t.Fatal("clone did not share the plan")
	}
	if &c.buf[0] == &s.buf[0] {
		t.Fatal("clone shares scratch with the original")
	}

	in := make([]float64, m)
	for i := range in {
		in[i] = math.Sin(0.1*float64(i)) + 0.3*float64(i%5)
	}
	want := make([]float64, m)
	s.CosCoeffs(in, want)

	var wg sync.WaitGroup
	outs := make([][]float64, 8)
	for k := range outs {
		outs[k] = make([]float64, m)
		sp := s
		if k%2 == 1 {
			sp = s.Clone()
		}
		wg.Add(1)
		go func(k int, sp *Spectral) {
			defer wg.Done()
			if k%2 == 0 {
				return // originals share one scratch: only clones run concurrently
			}
			sp.CosCoeffs(in, outs[k])
		}(k, sp)
	}
	wg.Wait()
	got := make([]float64, m)
	c.CosCoeffs(in, got)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("clone CosCoeffs[%d] = %v, original %v", i, got[i], want[i])
		}
	}
	for k := 1; k < len(outs); k += 2 {
		for i := range want {
			if outs[k][i] != want[i] {
				t.Fatalf("concurrent clone %d diverged at %d", k, i)
			}
		}
	}
}

// TestSpectralZeroAllocSteadyState proves the three solver primitives do
// not allocate per call once constructed.
func TestSpectralZeroAllocSteadyState(t *testing.T) {
	const m = 32
	s := NewSpectral(m)
	in := make([]float64, m)
	out := make([]float64, m)
	for i := range in {
		in[i] = float64(i%7) - 3
	}
	allocs := testing.AllocsPerRun(50, func() {
		s.CosCoeffs(in, out)
		s.EvalCos(in, out)
		s.EvalSin(in, out)
	})
	if allocs != 0 {
		t.Fatalf("spectral primitives allocate %v per call set, want 0", allocs)
	}
}
