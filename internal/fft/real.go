package fft

import (
	"fmt"
	"math"
)

// Transform is the 1-D spectral engine contract the density solver builds
// on: unnormalized DCT-II analysis, cosine synthesis for the potential and
// sine synthesis for the field, all over the half-sample cosine basis
// cos(πu(m+1/2)/M). Two implementations exist:
//
//   - Spectral, the reference path: every primitive is a complex FFT of
//     size 2M over the mirror extension of the input.
//   - RealPlan, the production path: real-input symmetry and fused DCT
//     twiddles reduce each primitive to one complex FFT of size M/2.
//
// Both are deterministic and allocation-free per call after construction;
// CloneTransform fans an instance out across workers, sharing the
// immutable plan while owning fresh scratch.
type Transform interface {
	// Size returns the transform length M.
	Size() int
	// Freq returns the spatial frequency k_u = πu/M of basis index u.
	Freq(u int) float64
	// CosCoeffs computes a[u] = Σ_m x[m]·cos(πu(m+1/2)/M), u = 0..M-1.
	CosCoeffs(x, out []float64)
	// EvalCos evaluates y[m] = Σ_u a[u]·cos(πu(m+1/2)/M).
	EvalCos(a, out []float64)
	// EvalSin evaluates y[m] = Σ_u c[u]·sin(πu(m+1/2)/M); the u = 0 term
	// contributes nothing.
	EvalSin(c, out []float64)
	// CloneTransform returns an instance sharing the immutable plan with
	// its own scratch, safe to run concurrently with the original.
	CloneTransform() Transform
}

// Compile-time interface checks.
var (
	_ Transform = (*Spectral)(nil)
	_ Transform = (*RealPlan)(nil)
)

// CloneTransform implements Transform for the reference Spectral engine.
func (s *Spectral) CloneTransform() Transform { return s.Clone() }

// RealPlan computes the density solver's three real transforms of size M
// (a power of two ≥ 2) through a single complex FFT of size M/2, instead
// of Spectral's complex FFT of size 2M over the mirror extension. Two
// standard identities make that possible, with every pre/post twiddle
// fused into the pack/unpack loops so no intermediate pass over a length-2M
// buffer ever happens:
//
//   - Makhoul's permutation: reordering the input as v = [x0, x2, …, x3,
//     x1] turns the DCT-II into the real part of a phase-twisted DFT of
//     size M: a[u] = Re(e^{-iπu/(2M)}·DFT_M(v)[u]).
//   - Real-input packing: the size-M DFT of the real sequence v is
//     recovered from the size-M/2 complex FFT of z[k] = v[2k] + i·v[2k+1]
//     by the conjugate-symmetric unpack butterfly.
//
// The synthesis directions invert both steps (a Hermitian spectrum is
// rebuilt from the coefficients, collapsed to a half-size complex inverse
// FFT, and de-permuted), and the sine evaluation reuses the cosine path
// through the reversal identity sin(uθ_m) = (-1)^m·cos((M-u)θ_m).
//
// Like Spectral, a RealPlan carries private scratch, so one instance is
// not safe for concurrent use; Clone shares the plan and twiddle tables
// (immutable after construction) with fresh scratch.
type RealPlan struct {
	m    int
	half *Plan        // complex plan of size M/2
	buf  []complex128 // scratch, length M/2

	// Fused twiddle tables, length M/2+1:
	//	pa[u] = exp(-iπu/(2M))            (DCT-II output twiddle)
	//	pb[u] = pa[u]·exp(-2πiu/M)        (DCT twiddle × unpack twiddle)
	//	tw[u] = exp(-2πiu/M)              (real-FFT unpack twiddle)
	pa, pb, tw []complex128
}

// NewRealPlan creates the fused real-transform set for size m, which must
// be a power of two and at least 2.
func NewRealPlan(m int) *RealPlan {
	if m < 2 || m&(m-1) != 0 {
		panic(fmt.Sprintf("fft: real plan size %d is not a power of two >= 2", m))
	}
	h := m / 2
	p := &RealPlan{
		m:    m,
		half: NewPlan(h),
		buf:  make([]complex128, h),
		pa:   make([]complex128, h+1),
		pb:   make([]complex128, h+1),
		tw:   make([]complex128, h+1),
	}
	for u := 0; u <= h; u++ {
		aAng := -math.Pi * float64(u) / float64(2*m)
		tAng := -2 * math.Pi * float64(u) / float64(m)
		p.pa[u] = complex(math.Cos(aAng), math.Sin(aAng))
		p.tw[u] = complex(math.Cos(tAng), math.Sin(tAng))
		p.pb[u] = p.pa[u] * p.tw[u]
	}
	return p
}

// Size returns M.
func (p *RealPlan) Size() int { return p.m }

// Freq returns the spatial frequency k_u = πu/M of basis index u.
func (p *RealPlan) Freq(u int) float64 {
	return math.Pi * float64(u) / float64(p.m)
}

// Clone returns a new RealPlan sharing p's precomputed half-size plan and
// twiddle tables (immutable after construction) with its own scratch, so
// the clone and the original can run transforms concurrently. Cloning
// costs one M/2-complex allocation and no trigonometry.
func (p *RealPlan) Clone() *RealPlan {
	return &RealPlan{
		m:    p.m,
		half: p.half,
		buf:  make([]complex128, p.m/2),
		pa:   p.pa,
		pb:   p.pb,
		tw:   p.tw,
	}
}

// CloneTransform implements Transform.
func (p *RealPlan) CloneTransform() Transform { return p.Clone() }

func (p *RealPlan) check(in, out []float64) {
	if len(in) != p.m || len(out) != p.m {
		panic(fmt.Sprintf("fft: real plan buffers %d/%d != size %d", len(in), len(out), p.m))
	}
}

// vIndex maps Makhoul-permutation index j to the source index in x:
// v[j] = x[2j] for j < M/2, v[j] = x[2M-2j-1] otherwise.
func (p *RealPlan) vIndex(j int) int {
	if j < p.m/2 {
		return 2 * j
	}
	return 2*p.m - 2*j - 1
}

// CosCoeffs computes the unnormalized DCT-II analysis
//
//	a[u] = Σ_{m=0}^{M-1} x[m]·cos(πu(m+1/2)/M),  u = 0..M-1,
//
// via one complex FFT of size M/2. out must have length M and may not
// alias x.
func (p *RealPlan) CosCoeffs(x, out []float64) {
	p.check(x, out)
	h := p.m / 2

	// Fused permutation + real-input pack: z[k] = v[2k] + i·v[2k+1].
	for k := 0; k < h; k++ {
		p.buf[k] = complex(x[p.vIndex(2*k)], x[p.vIndex(2*k+1)])
	}
	p.half.Forward(p.buf)

	// Unpack V[u] of the real DFT from Z and apply the fused DCT twiddle:
	// with Fe/Fo the even/odd half-spectra, V[u] = Fe[u] + tw[u]·Fo[u] and
	// W = pa[u]·V[u] yields a[u] = Re(W) and, by Hermitian symmetry of V,
	// a[M-u] = Re(pa[M-u]·conj(V[u])) = -Im(W).
	for u := 0; u <= h; u++ {
		zu := p.buf[u%h]
		zr := p.buf[(h-u)%h]
		sum := zu + complex(real(zr), -imag(zr)) // Z[u] + conj(Z[M/2-u])
		dif := zu - complex(real(zr), -imag(zr))
		fe := complex(real(sum)/2, imag(sum)/2)
		fo := complex(imag(dif)/2, -real(dif)/2) // -i·(Z[u]-conj(Z[M/2-u]))/2
		w := p.pa[u]*fe + p.pb[u]*fo
		out[u] = real(w)
		if u > 0 {
			out[p.m-u] = -imag(w)
		}
	}
}

// synth is the shared half-size inverse path behind EvalCos and EvalSin.
// It evaluates y[m] = Σ_u a'[u]·cos(πu(m+1/2)/M) + dc, where a' is the
// coefficient vector read forward (cosine) or index-reversed (sine, per
// the identity sin(uθ_m) = (-1)^m·cos((M-u)θ_m)), and writes the result
// through the inverse Makhoul permutation with the sine sign alternation
// folded into the odd output slots.
func (p *RealPlan) synth(a, out []float64, sine bool) {
	h, m := p.m/2, p.m

	// Rebuild the Hermitian spectrum V[u] = e^{iπu/(2M)}·(a'[u] - i·a'[M-u])
	// (V[0] = a'[0]) and collapse it to the half-size spectrum
	// Z[u] = Fe[u] + i·Fo[u]; buf holds conj(Z) so one forward FFT computes
	// the un-normalized inverse transform.
	vAt := func(u int) complex128 {
		// conj(pa[u]) = e^{iπu/(2M)}; a'[u] = a[u] or reversed for sine.
		var re, im float64
		if sine {
			if u == 0 {
				return 0
			}
			re, im = a[m-u], -a[u]
		} else {
			if u == 0 {
				return complex(a[0], 0)
			}
			re, im = a[u], -a[m-u]
		}
		q := p.pa[u]
		// conj(q) · (re + i·im)
		return complex(real(q)*re+imag(q)*im, real(q)*im-imag(q)*re)
	}
	for u := 0; u < h; u++ {
		vu := vAt(u)
		vr := vAt(h - u)
		cvr := complex(real(vr), -imag(vr)) // conj(V[M/2-u])
		fe := (vu + cvr) / 2
		d := (vu - cvr) / 2
		// Fo[u] = e^{2πiu/M}·d = conj(tw[u])·d
		t := p.tw[u]
		fo := complex(real(t)*real(d)+imag(t)*imag(d), real(t)*imag(d)-imag(t)*real(d))
		// store conj(Z[u]) = conj(Fe[u] + i·Fo[u])
		z := fe + complex(-imag(fo), real(fo))
		p.buf[u] = complex(real(z), -imag(z))
	}
	p.half.Forward(p.buf)

	// De-permute: conj(buf[k]) carries w[2k] (real) and w[2k+1] (imag) of
	// the inverse real FFT; output index j maps w[n] to y[2n] for n < M/2
	// and to y[2M-2n-1] otherwise. The scaling works out to exactly 1 (the
	// M/2 synthesis factor cancels the FFT's missing 1/(M/2)), leaving
	// only the a'[0]/2 DC half-term of the plain (un-halved) cosine sum.
	dc := 0.0
	if !sine {
		dc = a[0] / 2
	}
	for k := 0; k < h; k++ {
		re := real(p.buf[k])
		im := -imag(p.buf[k])
		n := 2 * k
		if n < h {
			out[2*n] = re + dc
		} else if sine {
			out[2*m-2*n-1] = -re
		} else {
			out[2*m-2*n-1] = re + dc
		}
		n = 2*k + 1
		if n < h {
			out[2*n] = im + dc
		} else if sine {
			out[2*m-2*n-1] = -im
		} else {
			out[2*m-2*n-1] = im + dc
		}
	}
}

// EvalCos evaluates the cosine series
//
//	y[m] = Σ_{u=0}^{M-1} a[u]·cos(πu(m+1/2)/M)
//
// via one complex FFT of size M/2. out must have length M and may not
// alias a.
func (p *RealPlan) EvalCos(a, out []float64) {
	p.check(a, out)
	p.synth(a, out, false)
}

// EvalSin evaluates the sine series
//
//	y[m] = Σ_{u=0}^{M-1} c[u]·sin(πu(m+1/2)/M)
//
// via one complex FFT of size M/2. The u = 0 term contributes nothing.
// out must have length M and may not alias c.
func (p *RealPlan) EvalSin(c, out []float64) {
	p.check(c, out)
	p.synth(c, out, true)
}
