package fft

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// realTestSizes spans the production grid range (place.MinGridDim = 16 up
// to the auto-selection cap 512) plus the small edge sizes the plan
// supports.
var realTestSizes = []int{2, 4, 8, 16, 32, 64, 128, 256, 512}

// TestRealPlanMatchesNaive is the property test against the O(M²)
// references: for every supported size and several random signals, the
// fused real-input path must agree with the direct cosine/sine sums.
func TestRealPlanMatchesNaive(t *testing.T) {
	for _, m := range realTestSizes {
		p := NewRealPlan(m)
		got := make([]float64, m)
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			x := make([]float64, m)
			for i := range x {
				x[i] = rng.NormFloat64() * 5
			}
			tol := 1e-9 * float64(m)

			p.CosCoeffs(x, got)
			want := naiveCosCoeffs(x)
			for i := range got {
				if math.Abs(got[i]-want[i]) > tol {
					t.Logf("m=%d seed=%d: CosCoeffs[%d] = %v, want %v", m, seed, i, got[i], want[i])
					return false
				}
			}

			p.EvalCos(x, got)
			want = naiveEvalCos(x)
			for i := range got {
				if math.Abs(got[i]-want[i]) > tol {
					t.Logf("m=%d seed=%d: EvalCos[%d] = %v, want %v", m, seed, i, got[i], want[i])
					return false
				}
			}

			p.EvalSin(x, got)
			want = naiveEvalSin(x)
			for i := range got {
				if math.Abs(got[i]-want[i]) > tol {
					t.Logf("m=%d seed=%d: EvalSin[%d] = %v, want %v", m, seed, i, got[i], want[i])
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
			t.Errorf("m=%d: %v", m, err)
		}
	}
}

// TestRealPlanMatchesComplexPath cross-checks the two Transform
// implementations: the fused half-size path and the 2M mirror-extension
// reference must agree to rounding error on every primitive.
func TestRealPlanMatchesComplexPath(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, m := range realTestSizes {
		rp := NewRealPlan(m)
		sp := NewSpectral(m)
		x := make([]float64, m)
		for i := range x {
			x[i] = rng.NormFloat64() * 3
		}
		a, b := make([]float64, m), make([]float64, m)
		tol := 1e-10 * float64(m)
		for name, run := range map[string]func(tr Transform, out []float64){
			"CosCoeffs": func(tr Transform, out []float64) { tr.CosCoeffs(x, out) },
			"EvalCos":   func(tr Transform, out []float64) { tr.EvalCos(x, out) },
			"EvalSin":   func(tr Transform, out []float64) { tr.EvalSin(x, out) },
		} {
			run(rp, a)
			run(sp, b)
			for i := range a {
				if math.Abs(a[i]-b[i]) > tol {
					t.Errorf("m=%d %s[%d]: real %v vs complex %v", m, name, i, a[i], b[i])
					break
				}
			}
		}
	}
}

// TestRealPlanReconstruction checks the DCT-II / DCT-III inversion
// identity through the fused path: analysis followed by normalized
// synthesis reproduces the signal.
func TestRealPlanReconstruction(t *testing.T) {
	for _, m := range []int{16, 64, 512} {
		p := NewRealPlan(m)
		rng := rand.New(rand.NewSource(int64(m)))
		x := make([]float64, m)
		for i := range x {
			x[i] = rng.NormFloat64() * 10
		}
		a := make([]float64, m)
		p.CosCoeffs(x, a)
		for u := range a {
			a[u] *= 2 / float64(m)
		}
		a[0] /= 2
		y := make([]float64, m)
		p.EvalCos(a, y)
		for i := range y {
			if math.Abs(y[i]-x[i]) > 1e-8 {
				t.Fatalf("m=%d: reconstruction[%d] = %v, want %v", m, i, y[i], x[i])
			}
		}
	}
}

func TestRealPlanFreqAndSize(t *testing.T) {
	p := NewRealPlan(8)
	if p.Size() != 8 {
		t.Errorf("Size = %d, want 8", p.Size())
	}
	if p.Freq(0) != 0 {
		t.Error("Freq(0) != 0")
	}
	if got, want := p.Freq(4), math.Pi/2; math.Abs(got-want) > 1e-15 {
		t.Errorf("Freq(4) = %v, want %v", got, want)
	}
}

func TestNewRealPlanRejectsBadSizes(t *testing.T) {
	for _, m := range []int{0, -8, 1, 3, 6, 48} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewRealPlan(%d) did not panic", m)
				}
			}()
			NewRealPlan(m)
		}()
	}
}

func TestRealPlanRejectsWrongLength(t *testing.T) {
	p := NewRealPlan(8)
	defer func() {
		if recover() == nil {
			t.Error("CosCoeffs accepted wrong-length input")
		}
	}()
	p.CosCoeffs(make([]float64, 4), make([]float64, 8))
}

// TestRealPlanCloneConcurrent checks clones share the immutable plan and
// produce bit-identical results while running concurrently (go test -race
// guards the immutability claim).
func TestRealPlanCloneConcurrent(t *testing.T) {
	const m = 128
	p := NewRealPlan(m)
	in := make([]float64, m)
	for i := range in {
		in[i] = math.Sin(0.2*float64(i)) + 0.1*float64(i%7)
	}
	want := make([]float64, m)
	p.CosCoeffs(in, want)

	c := p.Clone()
	if c.half != p.half || &c.pa[0] != &p.pa[0] {
		t.Fatal("clone did not share the plan and twiddle tables")
	}
	if &c.buf[0] == &p.buf[0] {
		t.Fatal("clone shares scratch with the original")
	}

	var wg sync.WaitGroup
	outs := make([][]float64, 8)
	for k := range outs {
		outs[k] = make([]float64, m)
		cl := p.Clone()
		wg.Add(1)
		go func(out []float64, cl *RealPlan) {
			defer wg.Done()
			cl.CosCoeffs(in, out)
		}(outs[k], cl)
	}
	wg.Wait()
	for k := range outs {
		for i := range want {
			if outs[k][i] != want[i] {
				t.Fatalf("concurrent clone %d diverged at %d: %v vs %v", k, i, outs[k][i], want[i])
			}
		}
	}
}

// TestRealPlanZeroAllocSteadyState proves the three fused primitives do
// not allocate per call once constructed.
func TestRealPlanZeroAllocSteadyState(t *testing.T) {
	const m = 64
	p := NewRealPlan(m)
	in := make([]float64, m)
	out := make([]float64, m)
	for i := range in {
		in[i] = float64(i%11) - 5
	}
	allocs := testing.AllocsPerRun(50, func() {
		p.CosCoeffs(in, out)
		p.EvalCos(in, out)
		p.EvalSin(in, out)
	})
	if allocs != 0 {
		t.Fatalf("real-plan primitives allocate %v per call set, want 0", allocs)
	}
}

func BenchmarkRealPlanCos256(b *testing.B) {
	p := NewRealPlan(256)
	x := make([]float64, 256)
	out := make([]float64, 256)
	for i := range x {
		x[i] = float64(i % 13)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.CosCoeffs(x, out)
	}
}
