// Package flow holds the cancellation and stage-error vocabulary shared
// by every long-running layer of the PUFFER flow (place, padding, legal,
// dp, router, explore) and by the public pipeline runner. It lives in its
// own leaf package so the engine packages and the pipeline can agree on
// error identity without an import cycle.
package flow

import (
	"context"
	"errors"
	"fmt"
)

// ErrCanceled is returned (wrapped) by every engine that stops early
// because its context was canceled or its deadline expired. It wraps
// context.Canceled so errors.Is works against either sentinel.
var ErrCanceled = fmt.Errorf("puffer: run canceled: %w", context.Canceled)

// Check returns nil while ctx is live, and an ErrCanceled-wrapping error
// once it is done. Engines call it at every iteration / batch / pass /
// trial boundary, so cancellation costs at most one unit of extra work.
func Check(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return fmt.Errorf("%w (%v)", ErrCanceled, context.Cause(ctx))
	default:
		return nil
	}
}

// StageError wraps an engine failure with the pipeline stage it occurred
// in, so callers can tell a canceled legalization from a canceled route.
type StageError struct {
	Stage string
	Err   error
}

// Error implements error.
func (e *StageError) Error() string {
	return fmt.Sprintf("stage %s: %v", e.Stage, e.Err)
}

// Unwrap exposes the underlying engine error to errors.Is / errors.As.
func (e *StageError) Unwrap() error { return e.Err }

// StageOf returns the stage name carried by err's StageError, if any.
func StageOf(err error) (string, bool) {
	var se *StageError
	if errors.As(err, &se) {
		return se.Stage, true
	}
	return "", false
}
