package flow

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestCheckLiveContext(t *testing.T) {
	if err := Check(context.Background()); err != nil {
		t.Fatalf("live context: %v", err)
	}
}

func TestCheckCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Check(ctx)
	if err == nil {
		t.Fatal("canceled context not detected")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("not ErrCanceled: %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("does not wrap context.Canceled: %v", err)
	}
}

func TestStageError(t *testing.T) {
	inner := fmt.Errorf("outer: %w", ErrCanceled)
	err := error(&StageError{Stage: "legalize", Err: inner})
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("StageError does not unwrap to ErrCanceled: %v", err)
	}
	stage, ok := StageOf(err)
	if !ok || stage != "legalize" {
		t.Errorf("StageOf = %q, %v", stage, ok)
	}
	if _, ok := StageOf(errors.New("plain")); ok {
		t.Error("StageOf matched a plain error")
	}
}
