// Package fsx holds the one filesystem idiom every durable store in this
// repo shares: crash-safe file replacement. The job spool, the pipeline
// checkpoints, the ECO session snapshots, and the content-addressed store
// all persist state as "temp file in the destination directory + fsync +
// rename", so a process killed mid-write leaves either the previous or the
// next complete document on disk — never a truncated one.
package fsx

import (
	"os"
	"path/filepath"
)

// AtomicWriteFile writes data to path via a temporary file in path's
// directory, fsyncs it, and renames it over path (rename is atomic within
// a filesystem). On any failure the temporary file is removed and the
// previous contents of path are untouched.
func AtomicWriteFile(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(data)
	if serr := tmp.Sync(); werr == nil {
		werr = serr
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmpName)
		return werr
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}
