// Package geom provides the small set of planar geometry primitives shared
// by every placement, congestion, and routing module: points, rectangles,
// and closed intervals on the real line, all in double precision.
//
// Coordinates follow the EDA convention: x grows to the right, y grows
// upward, and rectangles are axis-aligned with inclusive lower-left and
// exclusive upper-right semantics for area/overlap purposes.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the placement plane.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// ManhattanDist returns the L1 distance between p and q.
func (p Point) ManhattanDist(q Point) float64 {
	return math.Abs(p.X-q.X) + math.Abs(p.Y-q.Y)
}

// EuclideanDist returns the L2 distance between p and q.
func (p Point) EuclideanDist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

func (p Point) String() string { return fmt.Sprintf("(%.3f, %.3f)", p.X, p.Y) }

// Rect is an axis-aligned rectangle. Lo is the lower-left corner and Hi the
// upper-right corner. A Rect with Hi.X <= Lo.X or Hi.Y <= Lo.Y is empty.
type Rect struct {
	Lo, Hi Point
}

// NewRect builds a rectangle from any two opposite corners, normalizing the
// corner order.
func NewRect(x1, y1, x2, y2 float64) Rect {
	if x1 > x2 {
		x1, x2 = x2, x1
	}
	if y1 > y2 {
		y1, y2 = y2, y1
	}
	return Rect{Lo: Point{x1, y1}, Hi: Point{x2, y2}}
}

// RectWH builds a rectangle from its lower-left corner and size.
func RectWH(x, y, w, h float64) Rect {
	return Rect{Lo: Point{x, y}, Hi: Point{x + w, y + h}}
}

// W returns the width of r (never negative).
func (r Rect) W() float64 { return math.Max(0, r.Hi.X-r.Lo.X) }

// H returns the height of r (never negative).
func (r Rect) H() float64 { return math.Max(0, r.Hi.Y-r.Lo.Y) }

// Area returns the area of r (zero for empty rectangles).
func (r Rect) Area() float64 { return r.W() * r.H() }

// Empty reports whether r encloses no area.
func (r Rect) Empty() bool { return r.Hi.X <= r.Lo.X || r.Hi.Y <= r.Lo.Y }

// Center returns the centroid of r.
func (r Rect) Center() Point {
	return Point{(r.Lo.X + r.Hi.X) / 2, (r.Lo.Y + r.Hi.Y) / 2}
}

// Contains reports whether p lies inside r (lower/left edges inclusive,
// upper/right edges exclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Lo.X && p.X < r.Hi.X && p.Y >= r.Lo.Y && p.Y < r.Hi.Y
}

// ContainsClosed reports whether p lies inside r with all edges inclusive.
func (r Rect) ContainsClosed(p Point) bool {
	return p.X >= r.Lo.X && p.X <= r.Hi.X && p.Y >= r.Lo.Y && p.Y <= r.Hi.Y
}

// Intersect returns the overlap region of r and s; the result may be empty.
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{
		Lo: Point{math.Max(r.Lo.X, s.Lo.X), math.Max(r.Lo.Y, s.Lo.Y)},
		Hi: Point{math.Min(r.Hi.X, s.Hi.X), math.Min(r.Hi.Y, s.Hi.Y)},
	}
	return out
}

// OverlapArea returns the area shared by r and s.
func (r Rect) OverlapArea(s Rect) float64 { return r.Intersect(s).Area() }

// Overlaps reports whether r and s share positive area.
func (r Rect) Overlaps(s Rect) bool { return !r.Intersect(s).Empty() }

// Union returns the smallest rectangle containing both r and s. Empty inputs
// are ignored.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	return Rect{
		Lo: Point{math.Min(r.Lo.X, s.Lo.X), math.Min(r.Lo.Y, s.Lo.Y)},
		Hi: Point{math.Max(r.Hi.X, s.Hi.X), math.Max(r.Hi.Y, s.Hi.Y)},
	}
}

// Expand returns r grown by margin on every side (shrunk if margin < 0).
func (r Rect) Expand(margin float64) Rect {
	return Rect{
		Lo: Point{r.Lo.X - margin, r.Lo.Y - margin},
		Hi: Point{r.Hi.X + margin, r.Hi.Y + margin},
	}
}

// Translate returns r shifted by d.
func (r Rect) Translate(d Point) Rect {
	return Rect{Lo: r.Lo.Add(d), Hi: r.Hi.Add(d)}
}

// ClampPoint returns the point of r closest to p.
func (r Rect) ClampPoint(p Point) Point {
	return Point{Clamp(p.X, r.Lo.X, r.Hi.X), Clamp(p.Y, r.Lo.Y, r.Hi.Y)}
}

func (r Rect) String() string {
	return fmt.Sprintf("[%s - %s]", r.Lo, r.Hi)
}

// Interval is a closed interval [Lo, Hi] on the real line.
type Interval struct {
	Lo, Hi float64
}

// Len returns the length of the interval (never negative).
func (iv Interval) Len() float64 { return math.Max(0, iv.Hi-iv.Lo) }

// Overlap returns the length of the intersection of two intervals.
func (iv Interval) Overlap(other Interval) float64 {
	lo := math.Max(iv.Lo, other.Lo)
	hi := math.Min(iv.Hi, other.Hi)
	return math.Max(0, hi-lo)
}

// Contains reports whether v is inside the closed interval.
func (iv Interval) Contains(v float64) bool { return v >= iv.Lo && v <= iv.Hi }

// Mid returns the interval midpoint.
func (iv Interval) Mid() float64 { return (iv.Lo + iv.Hi) / 2 }

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ClampInt limits v to [lo, hi].
func ClampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// NextPow2 returns the smallest power of two >= n (and at least 1).
func NextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
