package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p := Pt(1, 2)
	q := Pt(3, -4)
	if got := p.Add(q); got != Pt(4, -2) {
		t.Errorf("Add = %v, want (4,-2)", got)
	}
	if got := p.Sub(q); got != Pt(-2, 6) {
		t.Errorf("Sub = %v, want (-2,6)", got)
	}
	if got := p.Scale(2); got != Pt(2, 4) {
		t.Errorf("Scale = %v, want (2,4)", got)
	}
}

func TestDistances(t *testing.T) {
	p, q := Pt(0, 0), Pt(3, 4)
	if got := p.ManhattanDist(q); got != 7 {
		t.Errorf("ManhattanDist = %v, want 7", got)
	}
	if got := p.EuclideanDist(q); got != 5 {
		t.Errorf("EuclideanDist = %v, want 5", got)
	}
}

func TestNewRectNormalizes(t *testing.T) {
	r := NewRect(5, 6, 1, 2)
	if r.Lo != Pt(1, 2) || r.Hi != Pt(5, 6) {
		t.Errorf("NewRect did not normalize corners: %v", r)
	}
}

func TestRectBasics(t *testing.T) {
	r := RectWH(1, 2, 3, 4)
	if r.W() != 3 || r.H() != 4 || r.Area() != 12 {
		t.Errorf("W/H/Area = %v/%v/%v", r.W(), r.H(), r.Area())
	}
	if r.Center() != Pt(2.5, 4) {
		t.Errorf("Center = %v", r.Center())
	}
	if r.Empty() {
		t.Error("non-degenerate rect reported empty")
	}
	if !RectWH(0, 0, 0, 5).Empty() {
		t.Error("zero-width rect not reported empty")
	}
}

func TestRectContains(t *testing.T) {
	r := RectWH(0, 0, 10, 10)
	cases := []struct {
		p    Point
		half bool // Contains (half-open)
		full bool // ContainsClosed
	}{
		{Pt(5, 5), true, true},
		{Pt(0, 0), true, true},
		{Pt(10, 10), false, true},
		{Pt(10, 5), false, true},
		{Pt(-1, 5), false, false},
		{Pt(5, 11), false, false},
	}
	for _, c := range cases {
		if got := r.Contains(c.p); got != c.half {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.half)
		}
		if got := r.ContainsClosed(c.p); got != c.full {
			t.Errorf("ContainsClosed(%v) = %v, want %v", c.p, got, c.full)
		}
	}
}

func TestRectIntersectUnion(t *testing.T) {
	a := RectWH(0, 0, 4, 4)
	b := RectWH(2, 2, 4, 4)
	if got := a.OverlapArea(b); got != 4 {
		t.Errorf("OverlapArea = %v, want 4", got)
	}
	if !a.Overlaps(b) {
		t.Error("Overlaps = false, want true")
	}
	c := RectWH(10, 10, 1, 1)
	if a.Overlaps(c) {
		t.Error("disjoint rects reported overlapping")
	}
	if got := a.OverlapArea(c); got != 0 {
		t.Errorf("disjoint OverlapArea = %v, want 0", got)
	}
	u := a.Union(b)
	if u.Lo != Pt(0, 0) || u.Hi != Pt(6, 6) {
		t.Errorf("Union = %v", u)
	}
	if got := a.Union(Rect{}); got != a {
		t.Errorf("Union with empty = %v, want %v", got, a)
	}
	if got := (Rect{}).Union(a); got != a {
		t.Errorf("empty Union a = %v, want %v", got, a)
	}
}

func TestRectExpandTranslateClamp(t *testing.T) {
	r := RectWH(2, 2, 2, 2)
	e := r.Expand(1)
	if e.Lo != Pt(1, 1) || e.Hi != Pt(5, 5) {
		t.Errorf("Expand = %v", e)
	}
	tr := r.Translate(Pt(1, -1))
	if tr.Lo != Pt(3, 1) || tr.Hi != Pt(5, 3) {
		t.Errorf("Translate = %v", tr)
	}
	if got := r.ClampPoint(Pt(10, 0)); got != Pt(4, 2) {
		t.Errorf("ClampPoint = %v, want (4,2)", got)
	}
	if got := r.ClampPoint(Pt(3, 3)); got != Pt(3, 3) {
		t.Errorf("ClampPoint interior = %v, want unchanged", got)
	}
}

func TestInterval(t *testing.T) {
	iv := Interval{1, 5}
	if iv.Len() != 4 {
		t.Errorf("Len = %v", iv.Len())
	}
	if got := iv.Overlap(Interval{3, 10}); got != 2 {
		t.Errorf("Overlap = %v, want 2", got)
	}
	if got := iv.Overlap(Interval{6, 10}); got != 0 {
		t.Errorf("disjoint Overlap = %v, want 0", got)
	}
	if !iv.Contains(1) || !iv.Contains(5) || iv.Contains(5.01) {
		t.Error("Contains endpoints wrong")
	}
	if iv.Mid() != 3 {
		t.Errorf("Mid = %v", iv.Mid())
	}
	if got := (Interval{5, 1}).Len(); got != 0 {
		t.Errorf("inverted interval Len = %v, want 0", got)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Error("Clamp wrong")
	}
	if ClampInt(5, 0, 3) != 3 || ClampInt(-1, 0, 3) != 0 || ClampInt(2, 0, 3) != 2 {
		t.Error("ClampInt wrong")
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1000: 1024}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

// Property: intersection area is symmetric and never exceeds either operand.
func TestOverlapAreaProperties(t *testing.T) {
	f := func(x1, y1, w1, h1, x2, y2, w2, h2 float64) bool {
		norm := func(v float64) float64 { return math.Mod(math.Abs(v), 100) }
		a := RectWH(norm(x1), norm(y1), norm(w1), norm(h1))
		b := RectWH(norm(x2), norm(y2), norm(w2), norm(h2))
		ov := a.OverlapArea(b)
		return ov == b.OverlapArea(a) && ov <= a.Area()+1e-9 && ov <= b.Area()+1e-9 && ov >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: union contains both operands.
func TestUnionContainsProperty(t *testing.T) {
	f := func(x1, y1, w1, h1, x2, y2, w2, h2 float64) bool {
		norm := func(v float64) float64 { return math.Mod(math.Abs(v), 100) }
		a := RectWH(norm(x1), norm(y1), norm(w1)+0.1, norm(h1)+0.1)
		b := RectWH(norm(x2), norm(y2), norm(w2)+0.1, norm(h2)+0.1)
		u := a.Union(b)
		return u.OverlapArea(a) >= a.Area()-1e-9 && u.OverlapArea(b) >= b.Area()-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
