package legal

import (
	"fmt"
	"math"
	"sort"

	"puffer/internal/netlist"
)

// Violation describes one legality violation found by Check.
type Violation struct {
	Kind  string // "row", "site", "region", "overlap", "fixed-overlap"
	Cell  int    // primary cell
	Other int    // second cell for overlap kinds, else -1
	Desc  string
}

func (v Violation) String() string { return v.Desc }

// Check verifies that every movable cell of d sits on the row and site
// grids, inside the region, and overlaps neither other movable cells nor
// fixed cells. It returns all violations found (up to max, 0 = unlimited).
// It is the programmatic form of the invariants the legalizer guarantees,
// usable by CLIs and downstream tools.
func Check(d *netlist.Design, max int) []Violation {
	var out []Violation
	add := func(v Violation) bool {
		out = append(out, v)
		return max > 0 && len(out) >= max
	}
	const eps = 1e-6

	type placed struct {
		x0, x1, y float64
		id        int
	}
	var cells []placed
	var fixed []int
	for i := range d.Cells {
		c := &d.Cells[i]
		if c.Fixed {
			fixed = append(fixed, i)
			continue
		}
		if d.RowHeight > 0 {
			ry := (c.Y - d.Region.Lo.Y) / d.RowHeight
			if math.Abs(ry-math.Round(ry)) > eps {
				if add(Violation{Kind: "row", Cell: i, Other: -1,
					Desc: fmt.Sprintf("cell %d (%s) off row grid: y=%g", i, c.Name, c.Y)}) {
					return out
				}
			}
		}
		if d.SiteWidth > 0 {
			sx := (c.X - d.Region.Lo.X) / d.SiteWidth
			if math.Abs(sx-math.Round(sx)) > eps {
				if add(Violation{Kind: "site", Cell: i, Other: -1,
					Desc: fmt.Sprintf("cell %d (%s) off site grid: x=%g", i, c.Name, c.X)}) {
					return out
				}
			}
		}
		if c.X < d.Region.Lo.X-eps || c.X+c.W > d.Region.Hi.X+eps ||
			c.Y < d.Region.Lo.Y-eps || c.Y+c.H > d.Region.Hi.Y+eps {
			if add(Violation{Kind: "region", Cell: i, Other: -1,
				Desc: fmt.Sprintf("cell %d (%s) outside region: (%g,%g)", i, c.Name, c.X, c.Y)}) {
				return out
			}
		}
		if c.Fence > 0 && c.Fence <= len(d.Fences) {
			f := d.Fences[c.Fence-1].Rect
			if c.X < f.Lo.X-eps || c.X+c.W > f.Hi.X+eps ||
				c.Y < f.Lo.Y-eps || c.Y+c.H > f.Hi.Y+eps {
				if add(Violation{Kind: "fence", Cell: i, Other: -1,
					Desc: fmt.Sprintf("cell %d (%s) outside fence %q", i, c.Name, d.Fences[c.Fence-1].Name)}) {
					return out
				}
			}
		}
		cells = append(cells, placed{c.X, c.X + c.W, c.Y, i})
	}

	// Movable-vs-movable overlaps within rows (sort sweep).
	sort.Slice(cells, func(a, b int) bool {
		if cells[a].y != cells[b].y {
			return cells[a].y < cells[b].y
		}
		return cells[a].x0 < cells[b].x0
	})
	for k := 1; k < len(cells); k++ {
		a, b := cells[k-1], cells[k]
		if a.y == b.y && b.x0 < a.x1-eps {
			if add(Violation{Kind: "overlap", Cell: a.id, Other: b.id,
				Desc: fmt.Sprintf("cells %d and %d overlap in row y=%g", a.id, b.id, a.y)}) {
				return out
			}
		}
	}

	// Movable-vs-fixed overlaps.
	for _, pc := range cells {
		c := &d.Cells[pc.id]
		for _, fi := range fixed {
			f := &d.Cells[fi]
			if c.Rect().OverlapArea(f.Rect()) > eps {
				if add(Violation{Kind: "fixed-overlap", Cell: pc.id, Other: fi,
					Desc: fmt.Sprintf("cell %d (%s) overlaps fixed cell %d (%s)", pc.id, c.Name, fi, f.Name)}) {
					return out
				}
			}
		}
	}
	return out
}
