package legal

import (
	"strings"
	"testing"

	"puffer/internal/geom"
	"puffer/internal/netlist"
)

func checkDesign() *netlist.Design {
	d := &netlist.Design{
		Region:    geom.RectWH(0, 0, 20, 10),
		RowHeight: 1,
		SiteWidth: 0.25,
		Layers:    netlist.DefaultLayers(),
	}
	d.AddCell(netlist.Cell{Name: "a", W: 1, H: 1, X: 0, Y: 0})
	d.AddCell(netlist.Cell{Name: "b", W: 1, H: 1, X: 2, Y: 0})
	d.AddCell(netlist.Cell{Name: "m", W: 4, H: 4, X: 10, Y: 4, Fixed: true, Macro: true})
	return d
}

func kinds(vs []Violation) map[string]int {
	m := map[string]int{}
	for _, v := range vs {
		m[v.Kind]++
	}
	return m
}

func TestCheckCleanDesign(t *testing.T) {
	d := checkDesign()
	if vs := Check(d, 0); len(vs) != 0 {
		t.Errorf("clean design reported %v", vs)
	}
}

func TestCheckRowViolation(t *testing.T) {
	d := checkDesign()
	d.Cells[0].Y = 0.5
	vs := Check(d, 0)
	if kinds(vs)["row"] != 1 {
		t.Errorf("violations = %v, want one row violation", vs)
	}
	if !strings.Contains(vs[0].String(), "off row grid") {
		t.Errorf("bad description: %s", vs[0])
	}
}

func TestCheckSiteViolation(t *testing.T) {
	d := checkDesign()
	d.Cells[0].X = 0.1
	if kinds(Check(d, 0))["site"] != 1 {
		t.Error("site violation not detected")
	}
}

func TestCheckRegionViolation(t *testing.T) {
	d := checkDesign()
	d.Cells[0].X = 19.5 // 1-wide cell sticks out
	vs := Check(d, 0)
	if kinds(vs)["region"] != 1 {
		t.Errorf("violations = %v, want region violation", vs)
	}
}

func TestCheckOverlapViolation(t *testing.T) {
	d := checkDesign()
	d.Cells[1].X = 0.5 // overlaps cell a
	vs := Check(d, 0)
	if kinds(vs)["overlap"] != 1 {
		t.Errorf("violations = %v, want overlap", vs)
	}
	v := vs[len(vs)-1]
	if v.Other == -1 {
		t.Error("overlap violation lacks second cell")
	}
}

func TestCheckFixedOverlap(t *testing.T) {
	d := checkDesign()
	d.Cells[0].X = 10
	d.Cells[0].Y = 5
	if kinds(Check(d, 0))["fixed-overlap"] != 1 {
		t.Error("fixed overlap not detected")
	}
}

func TestCheckMaxLimits(t *testing.T) {
	d := checkDesign()
	d.Cells[0].X = 0.1
	d.Cells[0].Y = 0.5
	d.Cells[1].X = 0.1
	d.Cells[1].Y = 0.5
	vs := Check(d, 1)
	if len(vs) != 1 {
		t.Errorf("max=1 returned %d violations", len(vs))
	}
}

func TestCheckAfterLegalize(t *testing.T) {
	d := scatteredDesign(42, 500, true)
	if _, err := Legalize(d, DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	if vs := Check(d, 0); len(vs) != 0 {
		t.Errorf("legalized design has %d violations: %v", len(vs), vs[0])
	}
}
