package legal

import (
	"testing"

	"puffer/internal/geom"
	"puffer/internal/netlist"
)

// fencedDesign puts a fence in the right half and assigns some cells to it.
func fencedDesign(nc int) *netlist.Design {
	d := &netlist.Design{
		Region:    geom.RectWH(0, 0, 32, 16),
		RowHeight: 1,
		SiteWidth: 0.25,
		Layers:    netlist.DefaultLayers(),
	}
	d.Fences = append(d.Fences, netlist.Fence{
		Name: "core2", Rect: geom.RectWH(20, 4, 10, 8),
	})
	for i := 0; i < nc; i++ {
		c := netlist.Cell{W: 1, H: 1, X: float64(i%20) + 0.5, Y: float64(i % 15)}
		if i%3 == 0 {
			c.Fence = 1
		}
		d.AddCell(c)
	}
	return d
}

func TestLegalizeHonorsFences(t *testing.T) {
	d := fencedDesign(120)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := Legalize(d, DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	if vs := Check(d, 0); len(vs) != 0 {
		t.Fatalf("violations after fenced legalization: %v", vs[0])
	}
	fence := d.Fences[0].Rect
	for i := range d.Cells {
		c := &d.Cells[i]
		in := c.X >= fence.Lo.X-1e-6 && c.X+c.W <= fence.Hi.X+1e-6 &&
			c.Y >= fence.Lo.Y-1e-6 && c.Y+c.H <= fence.Hi.Y+1e-6
		if c.Fence == 1 && !in {
			t.Fatalf("fenced cell %d at (%v,%v) escaped the fence", i, c.X, c.Y)
		}
		if c.Fence == 0 && in {
			t.Fatalf("open cell %d placed inside the exclusive fence", i)
		}
	}
}

func TestCheckFenceViolation(t *testing.T) {
	d := fencedDesign(6)
	// Put a fenced cell outside its fence, on-grid.
	d.Cells[0].X = 0
	d.Cells[0].Y = 0
	found := false
	for _, v := range Check(d, 0) {
		if v.Kind == "fence" && v.Cell == 0 {
			found = true
		}
	}
	if !found {
		t.Error("fence violation not detected")
	}
}

func TestValidateFenceBounds(t *testing.T) {
	d := fencedDesign(3)
	d.Cells[0].Fence = 7
	if err := d.Validate(); err == nil {
		t.Error("bad fence index accepted")
	}
	d = fencedDesign(3)
	d.Fences[0].Rect = geom.RectWH(0, 0, 0.5, 0.5) // smaller than the cell
	if err := d.Validate(); err == nil {
		t.Error("cell larger than its fence accepted")
	}
}

func TestFenceRect(t *testing.T) {
	d := fencedDesign(3)
	if got := d.FenceRect(0); got != d.Fences[0].Rect {
		t.Errorf("FenceRect(fenced) = %v", got)
	}
	if got := d.FenceRect(1); got != d.Region {
		t.Errorf("FenceRect(open) = %v", got)
	}
}
