// Package legal implements the white-space-assisted legalization stage of
// the paper (Sec. III-D): the padding inherited from global placement is
// discretized to whole placement sites by the staircase function of
// Eq. 17, the total discrete padding is capped at a fraction of the
// movable area by level-wise relegation, and the cells are then legalized
// with an Abacus-based row algorithm [20] that minimizes quadratic
// displacement. The padded width occupies the row, so the white space ends
// up exactly where global placement wanted it.
package legal

import (
	"context"
	"fmt"
	"math"
	"sort"

	"puffer/internal/flow"
	"puffer/internal/geom"
	"puffer/internal/netlist"
)

// Config controls legalization.
type Config struct {
	// Theta is the θ of Eq. 17 (staircase resolution).
	Theta float64
	// MaxUtil caps total discrete padding area as a fraction of total
	// movable cell area (the paper uses 5%).
	MaxUtil float64
	// InheritPadding applies the global-placement padding; baselines that
	// legalize without white-space assistance set it false.
	InheritPadding bool
}

// DefaultConfig matches the paper's settings.
func DefaultConfig() Config {
	return Config{Theta: 4, MaxUtil: 0.05, InheritPadding: true}
}

// Result reports legalization quality.
type Result struct {
	TotalDisplacement float64
	MaxDisplacement   float64
	AvgDisplacement   float64
	Cells             int
	PaddingSites      int // total discrete padding applied, in sites
}

// segment is a contiguous span of free sites within a row.
type segment struct {
	rowY  float64
	x0    float64 // aligned to sites
	x1    float64
	fence int          // 1-based fence owning this span; 0 = open region
	cells []*legalCell // committed cells in x order
	used  float64      // total committed width
}

type legalCell struct {
	id      int
	w       float64 // legal width including discrete padding
	physW   float64 // physical width
	fence   int     // 1-based fence constraint; 0 = unconstrained
	targetX float64 // desired lower-left x of the legal slot
	targetY float64
	x       float64 // placed lower-left x of the legal slot
}

// cluster is the Abacus cluster record.
type cluster struct {
	first, last int // cell index range within segment.cells
	e, q, w     float64
	x           float64
}

// Legalize places all movable cells of d into legal, overlap-free,
// site-aligned positions. It mutates cell X/Y in place and returns
// displacement statistics measured against the incoming (global placement)
// positions.
func Legalize(d *netlist.Design, cfg Config) (Result, error) {
	return LegalizeCtx(context.Background(), d, cfg)
}

// legalizeCheckEvery is how many Abacus cell insertions run between
// context checks during LegalizeCtx.
const legalizeCheckEvery = 256

// LegalizeCtx is Legalize with cancellation: the context is checked every
// few hundred Abacus insertions and once more before positions are
// written back. Because cell X/Y are only mutated in that final
// write-back, a canceled legalization returns an error wrapping
// flow.ErrCanceled with the design's incoming positions fully intact.
func LegalizeCtx(ctx context.Context, d *netlist.Design, cfg Config) (Result, error) {
	var res Result
	movable := d.MovableIDs()
	if len(movable) == 0 {
		return res, nil
	}
	siteW := d.SiteWidth
	rowH := d.RowHeight
	if siteW <= 0 || rowH <= 0 {
		return res, fmt.Errorf("legal: design lacks site/row geometry")
	}

	disPad := discretizePadding(d, movable, cfg)
	for _, s := range disPad {
		res.PaddingSites += s
	}

	segs := buildSegments(d, siteW, rowH)
	if len(segs) == 0 {
		return res, fmt.Errorf("legal: no free row segments")
	}

	// Cells sorted by target x (Abacus order).
	cells := make([]*legalCell, 0, len(movable))
	for k, ci := range movable {
		c := &d.Cells[ci]
		padW := float64(disPad[k]) * siteW
		w := snapUp(c.W, siteW) + padW
		cells = append(cells, &legalCell{
			id:      ci,
			w:       w,
			physW:   c.W,
			fence:   c.Fence,
			targetX: c.X - padW/2,
			targetY: c.Y,
		})
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].targetX != cells[j].targetX {
			return cells[i].targetX < cells[j].targetX
		}
		return cells[i].id < cells[j].id
	})

	// Rows sorted by y for the candidate search.
	segsByY := append([]*segment(nil), segs...)
	sort.Slice(segsByY, func(i, j int) bool {
		if segsByY[i].rowY != segsByY[j].rowY {
			return segsByY[i].rowY < segsByY[j].rowY
		}
		return segsByY[i].x0 < segsByY[j].x0
	})

	for k, lc := range cells {
		if k%legalizeCheckEvery == 0 {
			if err := flow.Check(ctx); err != nil {
				return res, err
			}
		}
		if err := placeCell(lc, segsByY, rowH); err != nil {
			return res, err
		}
	}
	if err := flow.Check(ctx); err != nil {
		return res, err
	}

	// Final per-segment site alignment and overlap removal, then write
	// back physical positions (cell centered within its padded slot).
	for _, s := range segsByY {
		finalizeSegment(s, siteW)
		for _, lc := range s.cells {
			c := &d.Cells[lc.id]
			// Center the physical cell in its padded slot, keeping it on
			// the site grid (odd discrete padding rounds down).
			off := math.Floor((lc.w-lc.physW)/2/siteW) * siteW
			newX := lc.x + off
			newY := s.rowY
			disp := math.Abs(newX-c.X) + math.Abs(newY-c.Y)
			res.TotalDisplacement += disp
			if disp > res.MaxDisplacement {
				res.MaxDisplacement = disp
			}
			res.Cells++
			c.X = newX
			c.Y = newY
		}
	}
	if res.Cells != len(movable) {
		return res, fmt.Errorf("legal: placed %d of %d cells", res.Cells, len(movable))
	}
	res.AvgDisplacement = res.TotalDisplacement / float64(res.Cells)
	return res, nil
}

// discretizePadding applies Eq. 17 and the level-wise relegation cap,
// returning the discrete padding (in sites) per movable cell.
func discretizePadding(d *netlist.Design, movable []int, cfg Config) []int {
	out := make([]int, len(movable))
	if !cfg.InheritPadding || cfg.Theta <= 0 {
		return out
	}
	mp := 0.0
	for _, ci := range movable {
		if p := d.Cells[ci].PadW; p > mp {
			mp = p
		}
	}
	if mp <= 0 {
		return out
	}
	for k, ci := range movable {
		p := d.Cells[ci].PadW
		if p <= 0 {
			continue
		}
		out[k] = int(math.Floor(cfg.Theta * (p/mp + 0.5)))
	}

	// Cap: total padding area <= MaxUtil × movable area. Relegate the
	// cells with the smallest analog padding within each discrete level
	// until the constraint holds.
	siteW := d.SiteWidth
	cap := cfg.MaxUtil * d.TotalMovableArea()
	area := func() float64 {
		a := 0.0
		for k, ci := range movable {
			a += float64(out[k]) * siteW * d.Cells[ci].H
		}
		return a
	}
	if area() <= cap {
		return out
	}
	// Order cells within each level by ascending PadW.
	byLevel := map[int][]int{}
	for k := range out {
		if out[k] > 0 {
			byLevel[out[k]] = append(byLevel[out[k]], k)
		}
	}
	for lvl := range byLevel {
		ks := byLevel[lvl]
		sort.Slice(ks, func(a, b int) bool {
			pa := d.Cells[movable[ks[a]]].PadW
			pb := d.Cells[movable[ks[b]]].PadW
			if pa != pb {
				return pa < pb
			}
			return ks[a] < ks[b]
		})
	}
	cur := area()
	for cur > cap {
		demoted := false
		levels := make([]int, 0, len(byLevel))
		for lvl := range byLevel {
			levels = append(levels, lvl)
		}
		sort.Ints(levels)
		for _, lvl := range levels {
			ks := byLevel[lvl]
			if len(ks) == 0 || lvl == 0 {
				continue
			}
			k := ks[0]
			byLevel[lvl] = ks[1:]
			out[k]--
			cur -= siteW * d.Cells[movable[k]].H
			if out[k] > 0 {
				byLevel[out[k]] = append(byLevel[out[k]], k)
			}
			demoted = true
			if cur <= cap {
				break
			}
		}
		if !demoted {
			break
		}
	}
	return out
}

// buildSegments derives free row segments from the design rows minus fixed
// cell overlaps. If the design has no explicit rows, uniform rows covering
// the region are synthesized.
func buildSegments(d *netlist.Design, siteW, rowH float64) []*segment {
	rows := d.Rows
	if len(rows) == 0 {
		nRows := int(d.Region.H() / rowH)
		for r := 0; r < nRows; r++ {
			rows = append(rows, netlist.Row{
				X: d.Region.Lo.X, Y: d.Region.Lo.Y + float64(r)*rowH,
				W: d.Region.W(), SiteW: siteW,
			})
		}
	}
	var segs []*segment
	for _, row := range rows {
		// Collect blocked x-intervals from fixed cells overlapping the row.
		type iv struct{ lo, hi float64 }
		var blocked []iv
		rowRect := geom.RectWH(row.X, row.Y, row.W, rowH)
		for i := range d.Cells {
			c := &d.Cells[i]
			if !c.Fixed {
				continue
			}
			if c.Rect().Overlaps(rowRect) {
				blocked = append(blocked, iv{c.X, c.X + c.W})
			}
		}
		sort.Slice(blocked, func(a, b int) bool { return blocked[a].lo < blocked[b].lo })
		x := row.X
		end := row.X + row.W
		emit := func(lo, hi float64) {
			lo = snapUpTo(lo, row.X, siteW)
			hi = snapDownTo(hi, row.X, siteW)
			if hi-lo >= siteW {
				segs = append(segs, &segment{rowY: row.Y, x0: lo, x1: hi})
			}
		}
		for _, b := range blocked {
			if b.lo > x {
				emit(x, math.Min(b.lo, end))
			}
			if b.hi > x {
				x = b.hi
			}
			if x >= end {
				break
			}
		}
		if x < end {
			emit(x, end)
		}
	}
	return splitByFences(d, segs, siteW, rowH)
}

// splitByFences carves row segments at fence boundaries. A sub-span whose
// row lies fully inside a fence vertically is owned by that fence
// (exclusive); a sub-span only partially covered vertically is unusable
// and dropped; everything else stays open.
func splitByFences(d *netlist.Design, segs []*segment, siteW, rowH float64) []*segment {
	if len(d.Fences) == 0 {
		return segs
	}
	var out []*segment
	for _, s := range segs {
		type span struct {
			x0, x1 float64
			fence  int // -1 = unusable
		}
		spans := []span{{s.x0, s.x1, 0}}
		for fi, f := range d.Fences {
			fr := f.Rect
			rowRect := geom.RectWH(s.x0, s.rowY, s.x1-s.x0, rowH)
			if !fr.Overlaps(rowRect) {
				continue
			}
			fullV := fr.Lo.Y <= s.rowY+1e-9 && fr.Hi.Y >= s.rowY+rowH-1e-9
			owner := fi + 1
			if !fullV {
				owner = -1 // partial vertical coverage: unusable strip
			}
			var next []span
			for _, sp := range spans {
				if sp.fence != 0 { // already claimed or dropped
					next = append(next, sp)
					continue
				}
				lo := math.Max(sp.x0, fr.Lo.X)
				hi := math.Min(sp.x1, fr.Hi.X)
				if hi <= lo { // no horizontal overlap
					next = append(next, sp)
					continue
				}
				if sp.x0 < lo {
					next = append(next, span{sp.x0, lo, 0})
				}
				next = append(next, span{lo, hi, owner})
				if hi < sp.x1 {
					next = append(next, span{hi, sp.x1, 0})
				}
			}
			spans = next
		}
		for _, sp := range spans {
			if sp.fence < 0 {
				continue
			}
			x0 := snapUpTo(sp.x0, s.x0, siteW)
			x1 := snapDownTo(sp.x1, s.x0, siteW)
			if x1-x0 < siteW {
				continue
			}
			out = append(out, &segment{rowY: s.rowY, x0: x0, x1: x1, fence: sp.fence})
		}
	}
	return out
}

func snapUp(v, unit float64) float64 {
	return math.Ceil(v/unit-1e-9) * unit
}

func snapUpTo(v, origin, unit float64) float64 {
	return origin + math.Ceil((v-origin)/unit-1e-9)*unit
}

func snapDownTo(v, origin, unit float64) float64 {
	return origin + math.Floor((v-origin)/unit+1e-9)*unit
}

// placeCell finds the segment minimizing Abacus cost for lc and commits it.
func placeCell(lc *legalCell, segs []*segment, rowH float64) error {
	bestCost := math.Inf(1)
	bestSeg := -1
	bestX := 0.0
	for si, s := range segs {
		if s.fence != lc.fence {
			continue // fenced cells only in their fence, open cells outside
		}
		dy := s.rowY - lc.targetY
		if dy*dy >= bestCost {
			// Rows are not sorted strictly by |dy| here, so keep scanning;
			// the quadratic test still prunes the hopeless ones.
			continue
		}
		if s.used+lc.w > s.x1-s.x0 {
			continue
		}
		x, ok := trialPlace(s, lc)
		if !ok {
			continue
		}
		dx := x - lc.targetX
		cost := dx*dx + dy*dy
		if cost < bestCost {
			bestCost = cost
			bestSeg = si
			bestX = x
		}
	}
	if bestSeg < 0 {
		return fmt.Errorf("legal: no segment fits cell %d (w=%.3f)", lc.id, lc.w)
	}
	s := segs[bestSeg]
	lc.x = bestX
	s.cells = append(s.cells, lc)
	s.used += lc.w
	commitPlace(s)
	return nil
}

// trialPlace computes the Abacus position of lc if appended to s, without
// mutating s. Returns the resulting x of lc.
func trialPlace(s *segment, lc *legalCell) (float64, bool) {
	// Simulate cluster collapse over the committed cells plus lc. The
	// committed cells already honour Abacus order (sorted by targetX), so
	// we only need the cluster chain; rebuild it from stored positions.
	// For simplicity and robustness we recompute the cluster chain from
	// scratch: committed cells keep their target order.
	cellsAll := append(append([]*legalCell(nil), s.cells...), lc)
	xs, ok := abacusRow(cellsAll, s.x0, s.x1)
	if !ok {
		return 0, false
	}
	return xs[len(xs)-1], true
}

// commitPlace recomputes final positions of every cell in the segment.
func commitPlace(s *segment) {
	xs, ok := abacusRow(s.cells, s.x0, s.x1)
	if !ok {
		return
	}
	for i, lc := range s.cells {
		lc.x = xs[i]
	}
}

// abacusRow runs the Abacus cluster algorithm over cells (in order),
// returning their x positions within [x0, x1], or false if they do not fit.
func abacusRow(cells []*legalCell, x0, x1 float64) ([]float64, bool) {
	total := 0.0
	for _, c := range cells {
		total += c.w
	}
	if total > x1-x0+1e-9 {
		return nil, false
	}
	clusters := make([]cluster, 0, len(cells))
	for i, c := range cells {
		nc := cluster{first: i, last: i, e: 1, q: c.targetX, w: c.w}
		nc.x = clampCluster(nc, x0, x1)
		clusters = append(clusters, nc)
		// Collapse while overlapping the previous cluster.
		for len(clusters) >= 2 {
			b := &clusters[len(clusters)-1]
			a := &clusters[len(clusters)-2]
			if a.x+a.w <= b.x+1e-12 {
				break
			}
			// Merge b into a: q accumulates desired positions relative to
			// each cell's offset within the cluster.
			a.q += b.q - b.e*a.w
			a.e += b.e
			a.w += b.w
			a.last = b.last
			clusters = clusters[:len(clusters)-1]
			a.x = clampCluster(*a, x0, x1)
		}
	}
	xs := make([]float64, len(cells))
	for _, cl := range clusters {
		x := cl.x
		for i := cl.first; i <= cl.last; i++ {
			xs[i] = x
			x += cells[i].w
		}
	}
	return xs, true
}

func clampCluster(c cluster, x0, x1 float64) float64 {
	x := c.q / c.e
	if x < x0 {
		x = x0
	}
	if x+c.w > x1 {
		x = x1 - c.w
	}
	return x
}

// finalizeSegment snaps every cell to the site grid and removes any
// residual overlaps introduced by snapping.
func finalizeSegment(s *segment, siteW float64) {
	sort.Slice(s.cells, func(i, j int) bool { return s.cells[i].x < s.cells[j].x })
	// Left-to-right: snap and push right.
	cursor := s.x0
	for _, lc := range s.cells {
		x := snapUpTo(math.Max(lc.x, cursor), s.x0, siteW)
		lc.x = x
		cursor = x + lc.w
	}
	// If we ran past the segment end, push back left.
	if cursor > s.x1+1e-9 {
		limit := s.x1
		for i := len(s.cells) - 1; i >= 0; i-- {
			lc := s.cells[i]
			if lc.x+lc.w > limit {
				lc.x = snapDownTo(limit-lc.w, s.x0, siteW)
			}
			limit = lc.x
		}
	}
}
