package legal

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"puffer/internal/geom"
	"puffer/internal/netlist"
)

// scatteredDesign builds nc cells with global-placement-like positions
// (random, overlapping) in a 64x64 region.
func scatteredDesign(seed int64, nc int, withMacro bool) *netlist.Design {
	rng := rand.New(rand.NewSource(seed))
	d := &netlist.Design{
		Name:      "lg",
		Region:    geom.RectWH(0, 0, 64, 64),
		RowHeight: 1,
		SiteWidth: 0.25,
		Layers:    netlist.DefaultLayers(),
	}
	if withMacro {
		d.AddCell(netlist.Cell{Name: "m", W: 16, H: 16, X: 24, Y: 24, Fixed: true, Macro: true})
	}
	for i := 0; i < nc; i++ {
		w := 0.5 + 0.25*float64(rng.Intn(4))
		d.AddCell(netlist.Cell{
			W: w, H: 1,
			X: rng.Float64() * (64 - w),
			Y: rng.Float64() * 63,
		})
	}
	return d
}

// checkLegal verifies row/site alignment, region containment, and absence
// of overlaps (including with fixed cells).
func checkLegal(t *testing.T, d *netlist.Design) {
	t.Helper()
	type placed struct {
		x0, x1, y float64
		id        int
	}
	var cells []placed
	for i := range d.Cells {
		c := &d.Cells[i]
		if c.Fixed {
			continue
		}
		// Row alignment.
		ry := (c.Y - d.Region.Lo.Y) / d.RowHeight
		if math.Abs(ry-math.Round(ry)) > 1e-6 {
			t.Fatalf("cell %d not row aligned: y=%v", i, c.Y)
		}
		if c.X < d.Region.Lo.X-1e-6 || c.X+c.W > d.Region.Hi.X+1e-6 ||
			c.Y < d.Region.Lo.Y-1e-6 || c.Y+c.H > d.Region.Hi.Y+1e-6 {
			t.Fatalf("cell %d outside region: (%v,%v)", i, c.X, c.Y)
		}
		cells = append(cells, placed{c.X, c.X + c.W, c.Y, i})
		// No overlap with fixed cells.
		for j := range d.Cells {
			f := &d.Cells[j]
			if f.Fixed && c.Rect().OverlapArea(f.Rect()) > 1e-9 {
				t.Fatalf("cell %d overlaps fixed cell %d", i, j)
			}
		}
	}
	sort.Slice(cells, func(a, b int) bool {
		if cells[a].y != cells[b].y {
			return cells[a].y < cells[b].y
		}
		return cells[a].x0 < cells[b].x0
	})
	for k := 1; k < len(cells); k++ {
		a, b := cells[k-1], cells[k]
		if a.y == b.y && b.x0 < a.x1-1e-6 {
			t.Fatalf("cells %d and %d overlap in row y=%v: [%v,%v) vs [%v,%v)",
				a.id, b.id, a.y, a.x0, a.x1, b.x0, b.x1)
		}
	}
}

func TestLegalizeBasic(t *testing.T) {
	d := scatteredDesign(1, 400, false)
	res, err := Legalize(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	checkLegal(t, d)
	if res.Cells != 400 {
		t.Errorf("legalized %d cells, want 400", res.Cells)
	}
	if res.AvgDisplacement > 3 {
		t.Errorf("average displacement %v too large", res.AvgDisplacement)
	}
	if res.MaxDisplacement < res.AvgDisplacement {
		t.Error("max displacement below average")
	}
}

func TestLegalizeAvoidsMacro(t *testing.T) {
	d := scatteredDesign(2, 400, true)
	if _, err := Legalize(d, DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	checkLegal(t, d)
}

func TestLegalizeDense(t *testing.T) {
	// ~70% utilization: still must succeed without overlap.
	d := scatteredDesign(3, 2800, false)
	if _, err := Legalize(d, DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	checkLegal(t, d)
}

func TestPaddingCreatesWhiteSpace(t *testing.T) {
	run := func(pad bool) float64 {
		d := scatteredDesign(4, 200, false)
		for i := range d.Cells {
			d.Cells[i].PadW = 1.0
		}
		cfg := DefaultConfig()
		cfg.InheritPadding = pad
		cfg.MaxUtil = 1 // no cap, isolate the padding effect
		if _, err := Legalize(d, cfg); err != nil {
			t.Fatal(err)
		}
		checkLegal(t, d)
		// Mean nearest same-row gap.
		type pc struct{ x0, x1, y float64 }
		var cells []pc
		for i := range d.Cells {
			c := &d.Cells[i]
			cells = append(cells, pc{c.X, c.X + c.W, c.Y})
		}
		sort.Slice(cells, func(a, b int) bool {
			if cells[a].y != cells[b].y {
				return cells[a].y < cells[b].y
			}
			return cells[a].x0 < cells[b].x0
		})
		gaps, n := 0.0, 0
		for k := 1; k < len(cells); k++ {
			if cells[k].y == cells[k-1].y {
				gaps += cells[k].x0 - cells[k-1].x1
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return gaps / float64(n)
	}
	gapPadded := run(true)
	gapPlain := run(false)
	if gapPadded <= gapPlain {
		t.Errorf("padding did not widen gaps: %v vs %v", gapPadded, gapPlain)
	}
}

func TestDiscretizePaddingStaircase(t *testing.T) {
	d := scatteredDesign(5, 4, false)
	movable := d.MovableIDs()
	d.Cells[movable[0]].PadW = 0
	d.Cells[movable[1]].PadW = 0.5
	d.Cells[movable[2]].PadW = 1.0
	d.Cells[movable[3]].PadW = 2.0 // mp
	cfg := Config{Theta: 4, MaxUtil: 1, InheritPadding: true}
	got := discretizePadding(d, movable, cfg)
	// Eq. 17 with θ=4, mp=2: floor(4·(p/2 + 0.5)).
	want := []int{0, 3, 4, 6}
	for k := range want {
		if got[k] != want[k] {
			t.Errorf("DisPad[%d] = %d, want %d", k, got[k], want[k])
		}
	}
}

func TestDiscretizePaddingCap(t *testing.T) {
	d := scatteredDesign(6, 100, false)
	movable := d.MovableIDs()
	for _, ci := range movable {
		d.Cells[ci].PadW = 2.0
	}
	cfg := DefaultConfig() // 5% cap
	got := discretizePadding(d, movable, cfg)
	area := 0.0
	for k, ci := range movable {
		area += float64(got[k]) * d.SiteWidth * d.Cells[ci].H
	}
	if cap := cfg.MaxUtil * d.TotalMovableArea(); area > cap+1e-9 {
		t.Errorf("discrete padding area %v exceeds cap %v", area, cap)
	}
}

func TestDiscretizePaddingDisabled(t *testing.T) {
	d := scatteredDesign(7, 10, false)
	movable := d.MovableIDs()
	for _, ci := range movable {
		d.Cells[ci].PadW = 1
	}
	got := discretizePadding(d, movable, Config{Theta: 4, MaxUtil: 0.05, InheritPadding: false})
	for k, v := range got {
		if v != 0 {
			t.Errorf("DisPad[%d] = %d with padding disabled", k, v)
		}
	}
}

func TestLegalizeErrorsOnMissingGeometry(t *testing.T) {
	d := scatteredDesign(8, 10, false)
	d.SiteWidth = 0
	if _, err := Legalize(d, DefaultConfig()); err == nil {
		t.Error("no error for missing site width")
	}
}

func TestLegalizeEmptyDesign(t *testing.T) {
	d := &netlist.Design{Region: geom.RectWH(0, 0, 10, 10), RowHeight: 1, SiteWidth: 0.25}
	res, err := Legalize(d, DefaultConfig())
	if err != nil || res.Cells != 0 {
		t.Errorf("empty design: res=%+v err=%v", res, err)
	}
}

func TestAbacusRowMinimalDisplacement(t *testing.T) {
	// Two cells wanting the same spot: Abacus should split them around it.
	cells := []*legalCell{
		{w: 2, targetX: 10},
		{w: 2, targetX: 10},
	}
	xs, ok := abacusRow(cells, 0, 100)
	if !ok {
		t.Fatal("abacusRow failed")
	}
	if xs[1]-xs[0] != 2 {
		t.Errorf("cells not abutted: %v", xs)
	}
	center := (xs[0] + xs[1] + 2) / 2
	if math.Abs(center-11) > 1e-9 {
		t.Errorf("cluster center = %v, want 11", center)
	}
}

func TestAbacusRowRespectsBounds(t *testing.T) {
	cells := []*legalCell{{w: 4, targetX: -50}}
	xs, ok := abacusRow(cells, 0, 10)
	if !ok || xs[0] != 0 {
		t.Errorf("left clamp: %v ok=%v", xs, ok)
	}
	cells = []*legalCell{{w: 4, targetX: 50}}
	xs, ok = abacusRow(cells, 0, 10)
	if !ok || xs[0] != 6 {
		t.Errorf("right clamp: %v ok=%v", xs, ok)
	}
	cells = []*legalCell{{w: 6, targetX: 0}, {w: 6, targetX: 1}}
	if _, ok := abacusRow(cells, 0, 10); ok {
		t.Error("overfull row accepted")
	}
}

func BenchmarkLegalize2000(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d := scatteredDesign(int64(i), 2000, true)
		b.StartTimer()
		if _, err := Legalize(d, DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}
