// Package nesterov implements Nesterov's accelerated gradient method with
// the inverse-Lipschitz step-size prediction and backtracking used by the
// ePlace family of placers (paper Sec. II-B, [14]). The optimizer is
// generic over a gradient oracle so the placement engine can swap
// objectives (wirelength-only warmup, wirelength + λ·density, baselines).
//
// The per-iteration vector work (candidate updates, norm reductions) runs
// across SetWorkers workers. Candidate updates write disjoint index ranges
// and the norm reductions use a fixed shard count derived from the vector
// length, so every result is bit-identical for any worker count. After
// construction the step performs no heap allocation (beyond whatever the
// eval oracle and goroutine dispatch do).
package nesterov

import (
	"math"

	"puffer/internal/par"
)

// EvalFunc computes the gradient of the objective at x, writing it into
// grad (same length as x). It is called at reference points, so
// implementations must tolerate arbitrary x within the feasible box.
type EvalFunc func(x, grad []float64)

// maxOptWorkers bounds the optimizer's worker fan-out; vector updates are
// memory-bound, so more shards only add dispatch overhead.
const maxOptWorkers = 16

// ndElemsPerShard sizes the fixed norm-reduction shards; the count depends
// only on the vector length, never the worker count.
const ndElemsPerShard = 8192

// Optimizer carries the state of the accelerated method: the major
// solution u, the reference solution v, and the momentum parameter a.
type Optimizer struct {
	eval EvalFunc

	u, uPrev []float64 // major solutions
	v, vPrev []float64 // reference solutions
	g, gPrev []float64 // gradients at v, vPrev
	a        float64   // momentum parameter a_k

	// MaxBacktrack bounds the step-size backtracking iterations (ePlace
	// uses a small constant; 2 extra evaluations at most).
	MaxBacktrack int
	// AlphaMax caps the predicted step to keep the first iterations from
	// exploding when the initial gradient is tiny.
	AlphaMax float64

	alpha float64 // last used step
	iter  int

	// step scratch buffers
	uNext, vNext, gNext []float64

	// parallel execution state; stages are bound once in New so the hot
	// path never constructs a closure.
	workers   int
	ndA, ndB  []float64 // operands of the in-flight norm reduction
	ndPartial []float64
	stepAlpha float64
	stepCoef  float64
	stageND   func(s int)
	stageU    func(w, lo, hi int)
	stageV    func(w, lo, hi int)
}

// New creates an optimizer starting at x0 with initial step alpha0. The
// optimizer starts serial; call SetWorkers to parallelize the vector work.
func New(x0 []float64, eval EvalFunc, alpha0 float64) *Optimizer {
	n := len(x0)
	o := &Optimizer{
		eval:         eval,
		u:            append([]float64(nil), x0...),
		uPrev:        make([]float64, n),
		v:            append([]float64(nil), x0...),
		vPrev:        make([]float64, n),
		g:            make([]float64, n),
		gPrev:        make([]float64, n),
		a:            1,
		MaxBacktrack: 2,
		AlphaMax:     alpha0 * 1e4,
		alpha:        alpha0,
		uNext:        make([]float64, n),
		vNext:        make([]float64, n),
		gNext:        make([]float64, n),
		workers:      1,
	}
	shards := n / ndElemsPerShard
	if shards < 1 {
		shards = 1
	}
	if shards > maxOptWorkers {
		shards = maxOptWorkers
	}
	o.ndPartial = make([]float64, shards)
	o.stageND = func(s int) {
		lo, hi := par.ShardRange(s, len(o.ndPartial), len(o.u))
		a, b := o.ndA, o.ndB
		t := 0.0
		for i := lo; i < hi; i++ {
			d := a[i] - b[i]
			t += d * d
		}
		o.ndPartial[s] = t
	}
	o.stageU = func(w, lo, hi int) {
		alpha := o.stepAlpha
		for i := lo; i < hi; i++ {
			o.uNext[i] = o.v[i] - alpha*o.g[i]
		}
	}
	o.stageV = func(w, lo, hi int) {
		coef := o.stepCoef
		for i := lo; i < hi; i++ {
			o.vNext[i] = o.uNext[i] + coef*(o.uNext[i]-o.u[i])
		}
	}
	copy(o.uPrev, x0)
	copy(o.vPrev, x0)
	o.eval(o.v, o.gPrev)
	return o
}

// SetWorkers caps the optimizer's data parallelism (0 or negative selects
// GOMAXPROCS, clamped to an internal bound). Results never depend on the
// worker count.
func (o *Optimizer) SetWorkers(n int) {
	w := par.Workers(n)
	if w > maxOptWorkers {
		w = maxOptWorkers
	}
	if w < 1 {
		w = 1
	}
	o.workers = w
}

// Restart clears the momentum (a_k back to 1), keeping the current
// solution. Call it when the objective changes shape mid-run — e.g. after
// cell padding re-weights the density system — so stale momentum does not
// overshoot against the new landscape.
func (o *Optimizer) Restart() {
	o.a = 1
	copy(o.uPrev, o.u)
	copy(o.vPrev, o.v)
	o.eval(o.v, o.gPrev)
	o.iter = 0
}

// RestartScaled is Restart with a step-length rescale applied first:
// alpha is multiplied by scale (clamped to (0, AlphaMax]). Call it when the
// objective's length scale changes — e.g. the density grid refines and the
// bin size halves — so the first post-restart step is sized for the new
// landscape instead of re-learning the Lipschitz constant from a stale
// scale.
func (o *Optimizer) RestartScaled(scale float64) {
	if scale > 0 {
		o.alpha *= scale
		if o.alpha > o.AlphaMax {
			o.alpha = o.AlphaMax
		}
	}
	o.Restart()
}

// Current returns the major solution u_k (do not modify).
func (o *Optimizer) Current() []float64 { return o.u }

// Reference returns the reference solution v_k (do not modify).
func (o *Optimizer) Reference() []float64 { return o.v }

// Alpha returns the most recent step length.
func (o *Optimizer) Alpha() float64 { return o.alpha }

// dispatch runs a pre-bound disjoint-write stage over the vector length.
func (o *Optimizer) dispatch(stage func(w, lo, hi int)) {
	n := len(o.u)
	if o.workers <= 1 || n < 2 {
		stage(0, 0, n)
		return
	}
	par.ForShards(o.workers, n, stage)
}

// normDiff returns the Euclidean norm of a-b, reduced over a fixed shard
// structure so the result is identical for every worker count.
func (o *Optimizer) normDiff(a, b []float64) float64 {
	o.ndA, o.ndB = a, b
	shards := len(o.ndPartial)
	if o.workers <= 1 || shards <= 1 {
		for s := 0; s < shards; s++ {
			o.stageND(s)
		}
	} else {
		par.ForN(o.workers, shards, o.stageND)
	}
	o.ndA, o.ndB = nil, nil
	t := 0.0
	for _, p := range o.ndPartial {
		t += p
	}
	return math.Sqrt(t)
}

// Step performs one accelerated iteration and returns the step length used.
// project, if non-nil, is applied to candidate solutions to keep them in
// the feasible box (e.g., inside the placement region).
func (o *Optimizer) Step(project func(x []float64)) float64 {
	o.iter++

	// Gradient at the current reference point.
	o.eval(o.v, o.g)

	// Inverse-Lipschitz step prediction from the previous reference pair.
	alpha := o.alpha
	if o.iter > 1 {
		dv := o.normDiff(o.v, o.vPrev)
		dg := o.normDiff(o.g, o.gPrev)
		if dg > 1e-30 && dv > 0 {
			alpha = dv / dg
		}
	}
	if alpha > o.AlphaMax {
		alpha = o.AlphaMax
	}

	aNext := (1 + math.Sqrt(4*o.a*o.a+1)) / 2
	o.stepCoef = (o.a - 1) / aNext

	for bt := 0; ; bt++ {
		o.stepAlpha = alpha
		o.dispatch(o.stageU)
		if project != nil {
			project(o.uNext)
		}
		o.dispatch(o.stageV)
		if project != nil {
			project(o.vNext)
		}
		if bt >= o.MaxBacktrack {
			break
		}
		// Backtracking: re-estimate the Lipschitz step at the candidate
		// reference point; accept if the prediction was not optimistic.
		o.eval(o.vNext, o.gNext)
		dv := o.normDiff(o.vNext, o.v)
		dg := o.normDiff(o.gNext, o.g)
		if dg <= 1e-30 || dv <= 0 {
			break
		}
		alphaHat := dv / dg
		if alphaHat >= 0.95*alpha {
			break
		}
		alpha = alphaHat
	}

	copy(o.uPrev, o.u)
	copy(o.u, o.uNext)
	copy(o.vPrev, o.v)
	copy(o.v, o.vNext)
	copy(o.gPrev, o.g)
	o.a = aNext
	o.alpha = alpha
	return alpha
}
