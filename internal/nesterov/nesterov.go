// Package nesterov implements Nesterov's accelerated gradient method with
// the inverse-Lipschitz step-size prediction and backtracking used by the
// ePlace family of placers (paper Sec. II-B, [14]). The optimizer is
// generic over a gradient oracle so the placement engine can swap
// objectives (wirelength-only warmup, wirelength + λ·density, baselines).
package nesterov

import "math"

// EvalFunc computes the gradient of the objective at x, writing it into
// grad (same length as x). It is called at reference points, so
// implementations must tolerate arbitrary x within the feasible box.
type EvalFunc func(x, grad []float64)

// Optimizer carries the state of the accelerated method: the major
// solution u, the reference solution v, and the momentum parameter a.
type Optimizer struct {
	eval EvalFunc

	u, uPrev []float64 // major solutions
	v, vPrev []float64 // reference solutions
	g, gPrev []float64 // gradients at v, vPrev
	a        float64   // momentum parameter a_k

	// MaxBacktrack bounds the step-size backtracking iterations (ePlace
	// uses a small constant; 2 extra evaluations at most).
	MaxBacktrack int
	// AlphaMax caps the predicted step to keep the first iterations from
	// exploding when the initial gradient is tiny.
	AlphaMax float64

	alpha float64 // last used step
	iter  int

	// step scratch buffers
	uNext, vNext, gNext []float64
}

// New creates an optimizer starting at x0 with initial step alpha0.
func New(x0 []float64, eval EvalFunc, alpha0 float64) *Optimizer {
	n := len(x0)
	o := &Optimizer{
		eval:         eval,
		u:            append([]float64(nil), x0...),
		uPrev:        make([]float64, n),
		v:            append([]float64(nil), x0...),
		vPrev:        make([]float64, n),
		g:            make([]float64, n),
		gPrev:        make([]float64, n),
		a:            1,
		MaxBacktrack: 2,
		AlphaMax:     alpha0 * 1e4,
		alpha:        alpha0,
		uNext:        make([]float64, n),
		vNext:        make([]float64, n),
		gNext:        make([]float64, n),
	}
	copy(o.uPrev, x0)
	copy(o.vPrev, x0)
	o.eval(o.v, o.gPrev)
	return o
}

// Restart clears the momentum (a_k back to 1), keeping the current
// solution. Call it when the objective changes shape mid-run — e.g. after
// cell padding re-weights the density system — so stale momentum does not
// overshoot against the new landscape.
func (o *Optimizer) Restart() {
	o.a = 1
	copy(o.uPrev, o.u)
	copy(o.vPrev, o.v)
	o.eval(o.v, o.gPrev)
	o.iter = 0
}

// Current returns the major solution u_k (do not modify).
func (o *Optimizer) Current() []float64 { return o.u }

// Reference returns the reference solution v_k (do not modify).
func (o *Optimizer) Reference() []float64 { return o.v }

// Alpha returns the most recent step length.
func (o *Optimizer) Alpha() float64 { return o.alpha }

// norm2 returns the Euclidean norm of the difference a-b.
func normDiff(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Step performs one accelerated iteration and returns the step length used.
// project, if non-nil, is applied to candidate solutions to keep them in
// the feasible box (e.g., inside the placement region).
func (o *Optimizer) Step(project func(x []float64)) float64 {
	n := len(o.u)
	o.iter++

	// Gradient at the current reference point.
	o.eval(o.v, o.g)

	// Inverse-Lipschitz step prediction from the previous reference pair.
	alpha := o.alpha
	if o.iter > 1 {
		dv := normDiff(o.v, o.vPrev)
		dg := normDiff(o.g, o.gPrev)
		if dg > 1e-30 && dv > 0 {
			alpha = dv / dg
		}
	}
	if alpha > o.AlphaMax {
		alpha = o.AlphaMax
	}

	aNext := (1 + math.Sqrt(4*o.a*o.a+1)) / 2
	coef := (o.a - 1) / aNext

	uNext, vNext, gNext := o.uNext, o.vNext, o.gNext

	for bt := 0; ; bt++ {
		for i := 0; i < n; i++ {
			uNext[i] = o.v[i] - alpha*o.g[i]
		}
		if project != nil {
			project(uNext)
		}
		for i := 0; i < n; i++ {
			vNext[i] = uNext[i] + coef*(uNext[i]-o.u[i])
		}
		if project != nil {
			project(vNext)
		}
		if bt >= o.MaxBacktrack {
			break
		}
		// Backtracking: re-estimate the Lipschitz step at the candidate
		// reference point; accept if the prediction was not optimistic.
		o.eval(vNext, gNext)
		dv := normDiff(vNext, o.v)
		dg := normDiff(gNext, o.g)
		if dg <= 1e-30 || dv <= 0 {
			break
		}
		alphaHat := dv / dg
		if alphaHat >= 0.95*alpha {
			break
		}
		alpha = alphaHat
	}

	copy(o.uPrev, o.u)
	copy(o.u, uNext)
	copy(o.vPrev, o.v)
	copy(o.v, vNext)
	copy(o.gPrev, o.g)
	o.a = aNext
	o.alpha = alpha
	return alpha
}
