package nesterov

import (
	"math"
	"testing"
)

// quadratic f(x) = 1/2 Σ c_i x_i², gradient c_i x_i.
func quadratic(coeffs []float64) EvalFunc {
	return func(x, grad []float64) {
		for i := range x {
			grad[i] = coeffs[i] * x[i]
		}
	}
}

func TestConvergesOnWellConditionedQuadratic(t *testing.T) {
	coeffs := []float64{1, 1, 1, 1}
	x0 := []float64{10, -7, 3, 5}
	o := New(x0, quadratic(coeffs), 0.1)
	for i := 0; i < 200; i++ {
		o.Step(nil)
	}
	for i, v := range o.Current() {
		if math.Abs(v) > 1e-3 {
			t.Errorf("x[%d] = %v after 200 iters, want ~0", i, v)
		}
	}
}

func TestConvergesOnIllConditionedQuadratic(t *testing.T) {
	// Condition number 1e4: plain gradient descent with a safe fixed step
	// needs ~10⁴ iterations; the accelerated method should get close in a
	// few hundred.
	coeffs := []float64{1e-2, 1e2}
	x0 := []float64{50, 50}
	o := New(x0, quadratic(coeffs), 1e-3)
	for i := 0; i < 600; i++ {
		o.Step(nil)
	}
	f := 0.0
	for i, v := range o.Current() {
		f += 0.5 * coeffs[i] * v * v
	}
	f0 := 0.5*1e-2*2500 + 0.5*1e2*2500
	if f > 1e-4*f0 {
		t.Errorf("objective reduced only to %v of %v", f, f0)
	}
}

func TestStepAdaptsToCurvature(t *testing.T) {
	coeffs := []float64{100, 100}
	o := New([]float64{1, 1}, quadratic(coeffs), 1.0) // step way too large
	for i := 0; i < 30; i++ {
		o.Step(nil)
	}
	// Inverse-Lipschitz prediction should have pulled alpha near 1/L = 0.01.
	if a := o.Alpha(); a > 0.05 {
		t.Errorf("alpha = %v, want near 1/L = 0.01", a)
	}
	for _, v := range o.Current() {
		if math.IsNaN(v) || math.Abs(v) > 10 {
			t.Fatalf("diverged: %v", o.Current())
		}
	}
}

func TestProjectionKeepsBox(t *testing.T) {
	// Minimize (x-10)² constrained to [0, 2]: solution sticks to x = 2.
	eval := func(x, grad []float64) {
		grad[0] = 2 * (x[0] - 10)
	}
	project := func(x []float64) {
		if x[0] < 0 {
			x[0] = 0
		}
		if x[0] > 2 {
			x[0] = 2
		}
	}
	o := New([]float64{1}, eval, 0.1)
	for i := 0; i < 100; i++ {
		o.Step(project)
	}
	if got := o.Current()[0]; math.Abs(got-2) > 1e-9 {
		t.Errorf("projected solution = %v, want 2", got)
	}
}

func TestZeroGradientIsStable(t *testing.T) {
	eval := func(x, grad []float64) {
		for i := range grad {
			grad[i] = 0
		}
	}
	o := New([]float64{3, 4}, eval, 0.5)
	for i := 0; i < 10; i++ {
		o.Step(nil)
	}
	if o.Current()[0] != 3 || o.Current()[1] != 4 {
		t.Errorf("moved under zero gradient: %v", o.Current())
	}
	if math.IsNaN(o.Alpha()) {
		t.Error("alpha became NaN")
	}
}

func TestAcceleratedBeatsPlainGradientDescent(t *testing.T) {
	coeffs := []float64{1e-1, 1e2}
	x0 := []float64{30, 30}
	iters := 150

	o := New(x0, quadratic(coeffs), 1e-3)
	for i := 0; i < iters; i++ {
		o.Step(nil)
	}
	fN := 0.0
	for i, v := range o.Current() {
		fN += 0.5 * coeffs[i] * v * v
	}

	// Plain GD with the safe step 1/L.
	x := append([]float64(nil), x0...)
	step := 1 / 1e2
	for i := 0; i < iters; i++ {
		for j := range x {
			x[j] -= step * coeffs[j] * x[j]
		}
	}
	fGD := 0.0
	for i, v := range x {
		fGD += 0.5 * coeffs[i] * v * v
	}
	if fN >= fGD {
		t.Errorf("Nesterov %v not better than GD %v after %d iters", fN, fGD, iters)
	}
}

func TestReferenceAndCurrentExposed(t *testing.T) {
	o := New([]float64{1}, quadratic([]float64{1}), 0.1)
	if len(o.Reference()) != 1 || len(o.Current()) != 1 {
		t.Fatal("state vectors wrong length")
	}
	o.Step(nil)
	if o.Alpha() <= 0 {
		t.Error("alpha not positive")
	}
}

// TestStepParallelMatchesSerial proves the sharded vector updates and
// fixed-shard norm reductions give bit-identical trajectories for any
// worker count, on a vector long enough for multiple reduction shards.
func TestStepParallelMatchesSerial(t *testing.T) {
	const n = 20000 // > ndElemsPerShard so the reduction really shards
	quad := func(x, grad []float64) {
		for i := range x {
			grad[i] = x[i] - float64(i%7)
		}
	}
	x0 := make([]float64, n)
	for i := range x0 {
		x0[i] = float64((i*37)%11) * 0.5
	}

	ref := New(x0, quad, 0.1)
	if len(ref.ndPartial) < 2 {
		t.Fatalf("test wants multiple norm shards, got %d", len(ref.ndPartial))
	}
	for k := 0; k < 5; k++ {
		ref.Step(nil)
	}

	for _, workers := range []int{2, 4, 16} {
		o := New(x0, quad, 0.1)
		o.SetWorkers(workers)
		for k := 0; k < 5; k++ {
			o.Step(nil)
		}
		for i := range ref.u {
			if o.u[i] != ref.u[i] || o.v[i] != ref.v[i] {
				t.Fatalf("workers=%d: index %d diverged u %v/%v v %v/%v",
					workers, i, o.u[i], ref.u[i], o.v[i], ref.v[i])
			}
		}
		if o.Alpha() != ref.Alpha() {
			t.Fatalf("workers=%d: alpha %v, want %v", workers, o.Alpha(), ref.Alpha())
		}
	}
}

// TestStepZeroAllocSteadyState guards the serial step: no allocations once
// the optimizer is constructed.
func TestStepZeroAllocSteadyState(t *testing.T) {
	quad := func(x, grad []float64) {
		for i := range x {
			grad[i] = x[i]
		}
	}
	x0 := make([]float64, 512)
	for i := range x0 {
		x0[i] = float64(i) * 0.01
	}
	o := New(x0, quad, 0.1)
	o.Step(nil) // warm up
	if n := testing.AllocsPerRun(10, func() { o.Step(nil) }); n != 0 {
		t.Errorf("steady-state Step allocates %v per run, want 0", n)
	}
}

// TestRestartScaled checks the grid-switch restart: momentum clears, the
// solution is preserved, the step length is rescaled by the given factor
// (clamped to AlphaMax), and optimization still converges afterwards.
func TestRestartScaled(t *testing.T) {
	eval := quadratic([]float64{1, 4, 9, 16})
	o := New([]float64{5, -3, 2, -1}, eval, 0.1)
	for i := 0; i < 5; i++ {
		o.Step(nil)
	}
	before := append([]float64(nil), o.Current()...)
	alpha := o.Alpha()

	o.RestartScaled(0.5)
	if got := o.Alpha(); math.Abs(got-alpha*0.5) > 1e-15 {
		t.Errorf("Alpha after RestartScaled(0.5) = %v, want %v", got, alpha*0.5)
	}
	for i, v := range o.Current() {
		if v != before[i] {
			t.Fatalf("RestartScaled moved the solution at %d: %v vs %v", i, v, before[i])
		}
	}
	for i := 0; i < 200; i++ {
		o.Step(nil)
	}
	for i, v := range o.Current() {
		if math.Abs(v) > 1e-4 {
			t.Errorf("post-restart convergence failed: x[%d] = %v", i, v)
		}
	}

	// Non-positive scales leave alpha alone; huge scales clamp to AlphaMax.
	o2 := New([]float64{1, 1, 1, 1}, eval, 0.1)
	a0 := o2.Alpha()
	o2.RestartScaled(0)
	if o2.Alpha() != a0 {
		t.Errorf("RestartScaled(0) changed alpha: %v vs %v", o2.Alpha(), a0)
	}
	o2.RestartScaled(1e12)
	if o2.Alpha() != o2.AlphaMax {
		t.Errorf("RestartScaled(1e12) alpha = %v, want AlphaMax %v", o2.Alpha(), o2.AlphaMax)
	}
}
