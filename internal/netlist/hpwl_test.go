package netlist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"puffer/internal/geom"
)

// randomNetDesign builds a random connected design for property tests.
func randomNetDesign(seed int64) *Design {
	rng := rand.New(rand.NewSource(seed))
	d := &Design{Region: geom.RectWH(0, 0, 100, 100)}
	n := 5 + rng.Intn(20)
	for i := 0; i < n; i++ {
		d.AddCell(Cell{W: 1, H: 1, X: rng.Float64() * 99, Y: rng.Float64() * 99})
	}
	for k := 0; k < n; k++ {
		net := d.AddNet("", 1+rng.Float64())
		deg := 2 + rng.Intn(4)
		for p := 0; p < deg; p++ {
			d.Connect(rng.Intn(n), net, rng.Float64(), rng.Float64())
		}
	}
	return d
}

// Property: HPWL is translation invariant.
func TestHPWLTranslationInvariance(t *testing.T) {
	f := func(seed int64, dxRaw, dyRaw float64) bool {
		d := randomNetDesign(seed)
		before := d.HPWL()
		dx := math.Mod(dxRaw, 1e6)
		dy := math.Mod(dyRaw, 1e6)
		if math.IsNaN(dx) || math.IsNaN(dy) {
			return true
		}
		for i := range d.Cells {
			d.Cells[i].X += dx
			d.Cells[i].Y += dy
		}
		after := d.HPWL()
		return math.Abs(after-before) <= 1e-6*math.Max(1, before)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: HPWL never increases when a cell moves to the exact center of
// one of its nets' bounding boxes computed without it... too strong; use
// the weaker invariant: HPWL is non-negative and zero only for coincident
// pins.
func TestHPWLNonNegative(t *testing.T) {
	f := func(seed int64) bool {
		d := randomNetDesign(seed)
		return d.HPWL() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: scaling all coordinates by s > 0 scales HPWL by s.
func TestHPWLScaling(t *testing.T) {
	d := randomNetDesign(7)
	before := d.HPWL()
	const s = 3.5
	for i := range d.Cells {
		d.Cells[i].X *= s
		d.Cells[i].Y *= s
	}
	for p := range d.Pins {
		d.Pins[p].Dx *= s
		d.Pins[p].Dy *= s
	}
	after := d.HPWL()
	if math.Abs(after-s*before) > 1e-9*after {
		t.Errorf("HPWL scaling: %v != %v * %v", after, s, before)
	}
}
