// Package netlist defines the placement database shared by every stage of
// the PUFFER flow: the circuit hypergraph H = (V, E) of cells and nets, pin
// geometry, placement rows and sites, the metal-layer technology stack, and
// routing blockages.
//
// The database uses index-based references throughout (cell, net, and pin
// IDs are indices into the Design slices) so that hot loops in the placer
// and router never chase pointers or hash names.
package netlist

import (
	"fmt"
	"math"

	"puffer/internal/geom"
)

// Dir is a preferred routing direction of a metal layer.
type Dir uint8

// Routing directions.
const (
	Horizontal Dir = iota
	Vertical
)

func (d Dir) String() string {
	if d == Horizontal {
		return "H"
	}
	return "V"
}

// Layer describes one metal layer of the technology stack. Width and
// Spacing are in the same database units as cell coordinates; together they
// determine how many routing tracks fit across a Gcell (paper Eq. 8).
type Layer struct {
	Name    string
	Dir     Dir
	Width   float64 // minimum wire width
	Spacing float64 // minimum wire-to-wire spacing
}

// Pitch returns the track pitch (wire width + spacing) of the layer.
func (l Layer) Pitch() float64 { return l.Width + l.Spacing }

// Blockage is a rectangular routing obstruction on a specific layer: macro
// over-cell obstructions, power/ground stripes, or pin-access keep-outs.
type Blockage struct {
	Rect  geom.Rect
	Layer int // index into Design.Layers
}

// Fence is a rectangular placement region constraint: cells assigned to a
// fence must be placed entirely inside its rectangle (the "region
// constraints" of detailed-routing-driven placement flows).
type Fence struct {
	Name string
	Rect geom.Rect
}

// Cell is a placeable instance. Fixed cells (macros, pre-placed blocks,
// IO pads) contribute density and blockage but are never moved.
type Cell struct {
	Name  string
	W, H  float64 // physical size
	X, Y  float64 // lower-left corner of the physical outline
	Fixed bool
	Macro bool // fixed macro block (counts in the "#Macros" statistic)

	// Fence is a 1-based index into Design.Fences constraining where the
	// cell may be placed; 0 means unconstrained.
	Fence int

	// PadW is the total extra width added by the routability optimizer
	// (paper Sec. III-B). The padding is split evenly between the left and
	// right side of the cell, so the padded outline is
	// [X-PadW/2, X+W+PadW/2] x [Y, Y+H].
	PadW float64

	Pins []int // pin IDs owned by this cell
}

// Rect returns the physical outline of the cell.
func (c *Cell) Rect() geom.Rect { return geom.RectWH(c.X, c.Y, c.W, c.H) }

// PaddedRect returns the outline including routability padding, which is
// what density and legalization see.
func (c *Cell) PaddedRect() geom.Rect {
	return geom.RectWH(c.X-c.PadW/2, c.Y, c.W+c.PadW, c.H)
}

// PaddedW returns the effective width including padding.
func (c *Cell) PaddedW() float64 { return c.W + c.PadW }

// Area returns the physical area of the cell.
func (c *Cell) Area() float64 { return c.W * c.H }

// Center returns the center of the physical outline.
func (c *Cell) Center() geom.Point {
	return geom.Pt(c.X+c.W/2, c.Y+c.H/2)
}

// SetCenter moves the cell so its physical center is at p.
func (c *Cell) SetCenter(p geom.Point) {
	c.X = p.X - c.W/2
	c.Y = p.Y - c.H/2
}

// Pin connects a cell to a net at a fixed offset from the cell's lower-left
// corner.
type Pin struct {
	Cell   int // owning cell ID
	Net    int // net ID
	Dx, Dy float64
}

// Net is a hyperedge over two or more pins.
type Net struct {
	Name   string
	Pins   []int // pin IDs
	Weight float64
}

// Row is one placement row: a horizontal strip of sites of uniform height.
type Row struct {
	X, Y  float64 // lower-left corner
	W     float64 // total row width
	SiteW float64 // site (placement grid) width
}

// NumSites returns the number of whole sites in the row.
func (r Row) NumSites() int { return int(r.W / r.SiteW) }

// Design is the full placement database.
type Design struct {
	Name   string
	Region geom.Rect // placement (core) region

	Cells []Cell
	Nets  []Net
	Pins  []Pin

	Rows      []Row
	Layers    []Layer
	Blockages []Blockage
	Fences    []Fence

	RowHeight float64
	SiteWidth float64
}

// Stats summarizes a design the way the paper's Table I does.
type Stats struct {
	Macros   int // fixed macros
	Cells    int // movable standard cells
	Nets     int
	Pins     int // pins of movable cells
	CellArea float64
	FreeArea float64 // region area minus fixed-cell overlap
}

// Stats computes the Table-I statistics of the design.
func (d *Design) Stats() Stats {
	var s Stats
	fixedArea := 0.0
	for i := range d.Cells {
		c := &d.Cells[i]
		if c.Macro {
			s.Macros++
		}
		if c.Fixed {
			fixedArea += c.Rect().OverlapArea(d.Region)
			continue
		}
		s.Cells++
		s.Pins += len(c.Pins)
		s.CellArea += c.Area()
	}
	s.Nets = len(d.Nets)
	s.FreeArea = d.Region.Area() - fixedArea
	return s
}

// PinPos returns the absolute position of pin p given current cell
// locations.
func (d *Design) PinPos(p int) geom.Point {
	pin := &d.Pins[p]
	c := &d.Cells[pin.Cell]
	return geom.Pt(c.X+pin.Dx, c.Y+pin.Dy)
}

// NetBBox returns the bounding box of all pins of net n.
func (d *Design) NetBBox(n int) geom.Rect {
	net := &d.Nets[n]
	if len(net.Pins) == 0 {
		return geom.Rect{}
	}
	p0 := d.PinPos(net.Pins[0])
	lo, hi := p0, p0
	for _, pid := range net.Pins[1:] {
		p := d.PinPos(pid)
		lo.X = math.Min(lo.X, p.X)
		lo.Y = math.Min(lo.Y, p.Y)
		hi.X = math.Max(hi.X, p.X)
		hi.Y = math.Max(hi.Y, p.Y)
	}
	return geom.Rect{Lo: lo, Hi: hi}
}

// HPWL returns the total weighted half-perimeter wirelength of the design.
func (d *Design) HPWL() float64 {
	total := 0.0
	for n := range d.Nets {
		w := d.Nets[n].Weight
		if w == 0 {
			w = 1
		}
		bb := d.NetBBox(n)
		total += w * (bb.W() + bb.H())
	}
	return total
}

// MovableIDs returns the IDs of all movable cells.
func (d *Design) MovableIDs() []int {
	ids := make([]int, 0, len(d.Cells))
	for i := range d.Cells {
		if !d.Cells[i].Fixed {
			ids = append(ids, i)
		}
	}
	return ids
}

// TotalMovableArea returns the summed physical area of movable cells.
func (d *Design) TotalMovableArea() float64 {
	area := 0.0
	for i := range d.Cells {
		if !d.Cells[i].Fixed {
			area += d.Cells[i].Area()
		}
	}
	return area
}

// TotalPaddingArea returns the summed padding area of movable cells.
func (d *Design) TotalPaddingArea() float64 {
	area := 0.0
	for i := range d.Cells {
		if !d.Cells[i].Fixed {
			area += d.Cells[i].PadW * d.Cells[i].H
		}
	}
	return area
}

// ClearPadding resets the padding of all cells to zero.
func (d *Design) ClearPadding() {
	for i := range d.Cells {
		d.Cells[i].PadW = 0
	}
}

// AddCell appends a cell and returns its ID.
func (d *Design) AddCell(c Cell) int {
	d.Cells = append(d.Cells, c)
	return len(d.Cells) - 1
}

// AddNet appends an empty net and returns its ID.
func (d *Design) AddNet(name string, weight float64) int {
	d.Nets = append(d.Nets, Net{Name: name, Weight: weight})
	return len(d.Nets) - 1
}

// Connect creates a pin attaching cell to net at offset (dx, dy) from the
// cell's lower-left corner and returns the pin ID.
func (d *Design) Connect(cell, net int, dx, dy float64) int {
	id := len(d.Pins)
	d.Pins = append(d.Pins, Pin{Cell: cell, Net: net, Dx: dx, Dy: dy})
	d.Cells[cell].Pins = append(d.Cells[cell].Pins, id)
	d.Nets[net].Pins = append(d.Nets[net].Pins, id)
	return id
}

// Validate checks referential integrity of the database. It is used by
// parsers, the synthetic generator, and tests.
func (d *Design) Validate() error {
	if d.Region.Empty() {
		return fmt.Errorf("design %q: empty placement region", d.Name)
	}
	for i, p := range d.Pins {
		if p.Cell < 0 || p.Cell >= len(d.Cells) {
			return fmt.Errorf("pin %d: bad cell %d", i, p.Cell)
		}
		if p.Net < 0 || p.Net >= len(d.Nets) {
			return fmt.Errorf("pin %d: bad net %d", i, p.Net)
		}
	}
	for i := range d.Cells {
		c := &d.Cells[i]
		if c.W < 0 || c.H < 0 {
			return fmt.Errorf("cell %q: negative size %gx%g", c.Name, c.W, c.H)
		}
		for _, pid := range c.Pins {
			if pid < 0 || pid >= len(d.Pins) {
				return fmt.Errorf("cell %q: bad pin %d", c.Name, pid)
			}
			if d.Pins[pid].Cell != i {
				return fmt.Errorf("cell %q: pin %d owned by cell %d", c.Name, pid, d.Pins[pid].Cell)
			}
		}
	}
	for i := range d.Nets {
		for _, pid := range d.Nets[i].Pins {
			if pid < 0 || pid >= len(d.Pins) {
				return fmt.Errorf("net %q: bad pin %d", d.Nets[i].Name, pid)
			}
			if d.Pins[pid].Net != i {
				return fmt.Errorf("net %q: pin %d belongs to net %d", d.Nets[i].Name, pid, d.Pins[pid].Net)
			}
		}
	}
	for _, b := range d.Blockages {
		if b.Layer < 0 || b.Layer >= len(d.Layers) {
			return fmt.Errorf("blockage references bad layer %d", b.Layer)
		}
	}
	for i := range d.Cells {
		c := &d.Cells[i]
		if c.Fence < 0 || c.Fence > len(d.Fences) {
			return fmt.Errorf("cell %q: bad fence index %d", c.Name, c.Fence)
		}
		if c.Fence > 0 {
			f := d.Fences[c.Fence-1]
			if f.Rect.W() < c.W || f.Rect.H() < c.H {
				return fmt.Errorf("cell %q does not fit fence %q", c.Name, f.Name)
			}
		}
	}
	return nil
}

// FenceRect returns the placement bounds for cell i: its fence rectangle
// if constrained, else the core region.
func (d *Design) FenceRect(i int) geom.Rect {
	if f := d.Cells[i].Fence; f > 0 && f <= len(d.Fences) {
		return d.Fences[f-1].Rect
	}
	return d.Region
}

// Clone returns a deep copy of the design, so placers can mutate positions
// without sharing state.
func (d *Design) Clone() *Design {
	nd := &Design{
		Name:      d.Name,
		Region:    d.Region,
		RowHeight: d.RowHeight,
		SiteWidth: d.SiteWidth,
		Cells:     append([]Cell(nil), d.Cells...),
		Nets:      append([]Net(nil), d.Nets...),
		Pins:      append([]Pin(nil), d.Pins...),
		Rows:      append([]Row(nil), d.Rows...),
		Layers:    append([]Layer(nil), d.Layers...),
		Blockages: append([]Blockage(nil), d.Blockages...),
		Fences:    append([]Fence(nil), d.Fences...),
	}
	for i := range nd.Cells {
		nd.Cells[i].Pins = append([]int(nil), d.Cells[i].Pins...)
	}
	for i := range nd.Nets {
		nd.Nets[i].Pins = append([]int(nil), d.Nets[i].Pins...)
	}
	return nd
}

// DefaultLayers returns a representative 6-metal technology stack with
// alternating preferred directions, modeled on a generic sub-28nm node.
// Units are arbitrary database units with the site width around 0.2.
func DefaultLayers() []Layer {
	return []Layer{
		{Name: "M1", Dir: Horizontal, Width: 0.05, Spacing: 0.05},
		{Name: "M2", Dir: Vertical, Width: 0.05, Spacing: 0.05},
		{Name: "M3", Dir: Horizontal, Width: 0.05, Spacing: 0.05},
		{Name: "M4", Dir: Vertical, Width: 0.07, Spacing: 0.07},
		{Name: "M5", Dir: Horizontal, Width: 0.07, Spacing: 0.07},
		{Name: "M6", Dir: Vertical, Width: 0.10, Spacing: 0.10},
	}
}
