package netlist

import (
	"math"
	"testing"

	"puffer/internal/geom"
)

// buildTiny returns a 3-cell, 2-net design used by several tests:
//
//	a at (0,0) 2x1, b at (10,0) 2x1, m fixed macro at (4,4) 4x4
//	n1 = {a.p0, b.p0}, n2 = {a.p1, b.p1, m.p0}
func buildTiny() *Design {
	d := &Design{
		Name:      "tiny",
		Region:    geom.RectWH(0, 0, 20, 20),
		RowHeight: 1,
		SiteWidth: 0.2,
		Layers:    DefaultLayers(),
	}
	a := d.AddCell(Cell{Name: "a", W: 2, H: 1, X: 0, Y: 0})
	b := d.AddCell(Cell{Name: "b", W: 2, H: 1, X: 10, Y: 0})
	m := d.AddCell(Cell{Name: "m", W: 4, H: 4, X: 4, Y: 4, Fixed: true, Macro: true})
	n1 := d.AddNet("n1", 1)
	n2 := d.AddNet("n2", 2)
	d.Connect(a, n1, 1, 0.5)
	d.Connect(b, n1, 1, 0.5)
	d.Connect(a, n2, 0, 0)
	d.Connect(b, n2, 2, 1)
	d.Connect(m, n2, 2, 2)
	return d
}

func TestValidateOK(t *testing.T) {
	d := buildTiny()
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate() = %v, want nil", err)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	d := buildTiny()
	d.Pins[0].Net = 99
	if err := d.Validate(); err == nil {
		t.Error("Validate accepted pin with bad net index")
	}

	d = buildTiny()
	d.Pins[0].Cell = -1
	if err := d.Validate(); err == nil {
		t.Error("Validate accepted pin with bad cell index")
	}

	d = buildTiny()
	d.Cells[0].W = -1
	if err := d.Validate(); err == nil {
		t.Error("Validate accepted negative cell width")
	}

	d = buildTiny()
	d.Region = geom.Rect{}
	if err := d.Validate(); err == nil {
		t.Error("Validate accepted empty region")
	}

	d = buildTiny()
	d.Blockages = append(d.Blockages, Blockage{Layer: 42})
	if err := d.Validate(); err == nil {
		t.Error("Validate accepted blockage with bad layer")
	}

	d = buildTiny()
	// Steal a pin: net n1's first pin claims to belong to n2.
	d.Nets[1].Pins = append(d.Nets[1].Pins, d.Nets[0].Pins[0])
	if err := d.Validate(); err == nil {
		t.Error("Validate accepted net referencing a foreign pin")
	}
}

func TestPinPos(t *testing.T) {
	d := buildTiny()
	// pin 0 is on cell a at offset (1, 0.5); a at (0,0).
	if got := d.PinPos(0); got != geom.Pt(1, 0.5) {
		t.Errorf("PinPos(0) = %v, want (1, 0.5)", got)
	}
	d.Cells[0].X, d.Cells[0].Y = 5, 7
	if got := d.PinPos(0); got != geom.Pt(6, 7.5) {
		t.Errorf("PinPos after move = %v, want (6, 7.5)", got)
	}
}

func TestHPWL(t *testing.T) {
	d := buildTiny()
	// n1: pins at (1,0.5) and (11,0.5) -> HPWL 10, weight 1.
	// n2: pins at (0,0), (12,1), (6,6) -> HPWL 12+6=18, weight 2.
	want := 10.0 + 2*18.0
	if got := d.HPWL(); math.Abs(got-want) > 1e-9 {
		t.Errorf("HPWL = %v, want %v", got, want)
	}
}

func TestNetBBoxEmptyNet(t *testing.T) {
	d := buildTiny()
	d.AddNet("empty", 1)
	bb := d.NetBBox(2)
	if !bb.Empty() {
		t.Errorf("empty net bbox = %v, want empty", bb)
	}
}

func TestStats(t *testing.T) {
	d := buildTiny()
	s := d.Stats()
	if s.Macros != 1 || s.Cells != 2 || s.Nets != 2 || s.Pins != 4 {
		t.Errorf("Stats = %+v", s)
	}
	if s.CellArea != 4 {
		t.Errorf("CellArea = %v, want 4", s.CellArea)
	}
	if want := 20.0*20.0 - 16.0; s.FreeArea != want {
		t.Errorf("FreeArea = %v, want %v", s.FreeArea, want)
	}
}

func TestPaddingGeometry(t *testing.T) {
	d := buildTiny()
	c := &d.Cells[0]
	c.PadW = 2
	r := c.PaddedRect()
	if r.Lo.X != -1 || r.Hi.X != 3 {
		t.Errorf("PaddedRect = %v, want x in [-1, 3]", r)
	}
	if c.PaddedW() != 4 {
		t.Errorf("PaddedW = %v, want 4", c.PaddedW())
	}
	if got := d.TotalPaddingArea(); got != 2 {
		t.Errorf("TotalPaddingArea = %v, want 2", got)
	}
	d.ClearPadding()
	if got := d.TotalPaddingArea(); got != 0 {
		t.Errorf("after ClearPadding TotalPaddingArea = %v, want 0", got)
	}
}

func TestCellCenterRoundTrip(t *testing.T) {
	c := Cell{W: 3, H: 1}
	c.SetCenter(geom.Pt(10, 5))
	if c.X != 8.5 || c.Y != 4.5 {
		t.Errorf("SetCenter -> X,Y = %v,%v", c.X, c.Y)
	}
	if c.Center() != geom.Pt(10, 5) {
		t.Errorf("Center = %v, want (10,5)", c.Center())
	}
}

func TestMovableIDsAndAreas(t *testing.T) {
	d := buildTiny()
	ids := d.MovableIDs()
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 1 {
		t.Errorf("MovableIDs = %v", ids)
	}
	if got := d.TotalMovableArea(); got != 4 {
		t.Errorf("TotalMovableArea = %v, want 4", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	d := buildTiny()
	nd := d.Clone()
	nd.Cells[0].X = 99
	nd.Cells[0].Pins[0] = 3
	nd.Nets[0].Pins[0] = 3
	if d.Cells[0].X == 99 {
		t.Error("Clone shares cell slice")
	}
	if d.Cells[0].Pins[0] == 3 {
		t.Error("Clone shares cell pin slice")
	}
	if d.Nets[0].Pins[0] == 3 {
		t.Error("Clone shares net pin slice")
	}
	if err := d.Validate(); err != nil {
		t.Errorf("original corrupted by clone mutation: %v", err)
	}
}

func TestRowSites(t *testing.T) {
	r := Row{X: 0, Y: 0, W: 10, SiteW: 0.2}
	if got := r.NumSites(); got != 50 {
		t.Errorf("NumSites = %d, want 50", got)
	}
}

func TestLayerPitchAndDir(t *testing.T) {
	ls := DefaultLayers()
	if len(ls) != 6 {
		t.Fatalf("DefaultLayers len = %d, want 6", len(ls))
	}
	for i, l := range ls {
		if l.Pitch() != l.Width+l.Spacing {
			t.Errorf("layer %d pitch mismatch", i)
		}
		wantDir := Horizontal
		if i%2 == 1 {
			wantDir = Vertical
		}
		if l.Dir != wantDir {
			t.Errorf("layer %d dir = %v, want %v", i, l.Dir, wantDir)
		}
	}
	if Horizontal.String() != "H" || Vertical.String() != "V" {
		t.Error("Dir.String wrong")
	}
}

func TestZeroWeightNetCountsAsOne(t *testing.T) {
	d := &Design{Region: geom.RectWH(0, 0, 10, 10)}
	a := d.AddCell(Cell{Name: "a", W: 1, H: 1, X: 0, Y: 0})
	b := d.AddCell(Cell{Name: "b", W: 1, H: 1, X: 4, Y: 0})
	n := d.AddNet("n", 0) // weight 0 should default to 1 in HPWL
	d.Connect(a, n, 0, 0)
	d.Connect(b, n, 0, 0)
	if got := d.HPWL(); got != 4 {
		t.Errorf("HPWL with zero-weight net = %v, want 4", got)
	}
}
