package obs

import (
	"context"
	"testing"
)

// BenchmarkDisabledTelemetryPerIteration measures the exact instrument
// sequence the placement engine runs once per Nesterov iteration, against
// a nil recorder — the telemetry-off configuration. The acceptance bar is
// 0 allocs/op and a per-iteration cost that is noise (a few ns) next to
// the engine's per-iteration milliseconds, i.e. far below the 2% budget.
func BenchmarkDisabledTelemetryPerIteration(b *testing.B) {
	var rec *Recorder
	// Instruments resolve to nil once at setup, exactly as the engine
	// caches them.
	sHPWL := rec.Series("place.hpwl")
	sOvf := rec.Series("place.overflow")
	sLambda := rec.Series("place.lambda")
	sGamma := rec.Series("place.gamma")
	sStep := rec.Series("place.step_len")
	cIters := rec.Counter("place.iters")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sHPWL.Observe(i, 1234.5)
		sOvf.Observe(i, 0.2)
		sLambda.Observe(i, 1e-3)
		sGamma.Observe(i, 80)
		sStep.Observe(i, 0.7)
		cIters.Inc()
	}
}

// BenchmarkDisabledSpanStart measures span creation through a nil
// recorder and the context fast path (no wrapping, no allocation).
func BenchmarkDisabledSpanStart(b *testing.B) {
	var rec *Recorder
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp, _ := Start(ctx, rec, "stage")
		sp.End()
	}
}

// BenchmarkEnabledSeriesObserve is the reference cost of a live series
// observation (lock + append + no sinks).
func BenchmarkEnabledSeriesObserve(b *testing.B) {
	reg := NewRegistry()
	s := reg.Series("place.hpwl")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Observe(i, float64(i))
	}
}
