package obs

import (
	"context"
	"io"
	"log/slog"
	"testing"
)

// BenchmarkDisabledTelemetryPerIteration measures the exact instrument
// sequence the placement engine runs once per Nesterov iteration, against
// a nil recorder — the telemetry-off configuration. The acceptance bar is
// 0 allocs/op and a per-iteration cost that is noise (a few ns) next to
// the engine's per-iteration milliseconds, i.e. far below the 2% budget.
func BenchmarkDisabledTelemetryPerIteration(b *testing.B) {
	var rec *Recorder
	// Instruments resolve to nil once at setup, exactly as the engine
	// caches them.
	sHPWL := rec.Series("place.hpwl")
	sOvf := rec.Series("place.overflow")
	sLambda := rec.Series("place.lambda")
	sGamma := rec.Series("place.gamma")
	sStep := rec.Series("place.step_len")
	cIters := rec.Counter("place.iters")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sHPWL.Observe(i, 1234.5)
		sOvf.Observe(i, 0.2)
		sLambda.Observe(i, 1e-3)
		sGamma.Observe(i, 80)
		sStep.Observe(i, 0.7)
		cIters.Inc()
	}
}

// BenchmarkDisabledSpanStart measures span creation through a nil
// recorder and the context fast path (no wrapping, no allocation).
func BenchmarkDisabledSpanStart(b *testing.B) {
	var rec *Recorder
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp, _ := Start(ctx, rec, "stage")
		sp.End()
	}
}

// BenchmarkEnabledSeriesObserve is the reference cost of a live series
// observation (lock + append + no sinks).
func BenchmarkEnabledSeriesObserve(b *testing.B) {
	reg := NewRegistry()
	s := reg.Series("place.hpwl")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Observe(i, float64(i))
	}
}

// BenchmarkHistogramObserveDisabled measures Histogram.Observe through a
// nil recorder — the telemetry-off configuration must stay 0 allocs/op,
// same bar as the series/counter path.
func BenchmarkHistogramObserveDisabled(b *testing.B) {
	var rec *Recorder
	h := rec.Histogram("serve.queue_wait_seconds")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(0.0123)
	}
}

// BenchmarkHistogramObserveEnabled is the live cost of one histogram
// observation (bucket scan + three atomics); CI tracks the ratio against
// the disabled path in BENCH_obs.json.
func BenchmarkHistogramObserveEnabled(b *testing.B) {
	reg := NewRegistry()
	h := reg.Histogram("serve.queue_wait_seconds")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(0.0123)
	}
}

// BenchmarkDisabledSlogLogAttrs measures a structured log call against
// NopLogger — the logging-off configuration on a hot path. The Enabled
// gate must reject the record before anything is built: 0 allocs/op.
func BenchmarkDisabledSlogLogAttrs(b *testing.B) {
	l := NopLogger()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.LogAttrs(ctx, slog.LevelInfo, "iteration", slog.Int("iter", i), slog.String("stage", "gp"))
	}
}

// BenchmarkEnabledSlogHandler is the reference cost of a live correlated
// log record (text handler to io.Discard, span + labels in context).
func BenchmarkEnabledSlogHandler(b *testing.B) {
	l := NewLogger(io.Discard, slog.LevelInfo)
	tr := NewTracer()
	sp, ctx := Start(context.Background(), NewRecorder(tr, nil), "bench")
	defer sp.End()
	ctx = ContextWithLabels(ctx, slog.String("job", "job-1"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.LogAttrs(ctx, slog.LevelInfo, "iteration", slog.Int("iter", i))
	}
}

// TestZeroAllocDisabledObsPaths enforces the 0 allocs/op invariant on the
// new disabled paths (histogram observe, slog through NopLogger) the same
// way CI's ZeroAlloc gate does for the engine hot loops.
func TestZeroAllocDisabledObsPaths(t *testing.T) {
	var rec *Recorder
	h := rec.Histogram("x")
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.5) }); n != 0 {
		t.Fatalf("nil histogram Observe allocates %v/op", n)
	}
	l := NopLogger()
	ctx := context.Background()
	if n := testing.AllocsPerRun(1000, func() {
		l.LogAttrs(ctx, slog.LevelInfo, "iteration", slog.Int("iter", 1), slog.String("stage", "gp"))
	}); n != 0 {
		t.Fatalf("NopLogger LogAttrs allocates %v/op", n)
	}
}
