package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// expvar publication is process-global (expvar.Publish panics on
// duplicate names), so the "puffer" var is published once and renders the
// current registry set: the primary registry (the one most recently handed
// to NewDebugMux/StartDebug) plus any named registries registered with
// PublishExpvar. A process hosting many concurrent runs — the pufferd
// worker pool gives every job its own isolated Registry — can therefore
// expose each run's metrics side by side instead of the last one winning.
var (
	expvarOnce  sync.Once
	expvarReg   atomic.Pointer[Registry]
	expvarMu    sync.Mutex
	expvarNamed map[string]*Registry
)

func initExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("puffer", expvar.Func(func() any {
			expvarMu.Lock()
			named := make(map[string]*Registry, len(expvarNamed))
			for k, v := range expvarNamed {
				named[k] = v
			}
			expvarMu.Unlock()
			main := expvarReg.Load()
			if len(named) == 0 {
				// Single-run shape (cmd/puffer -debug-addr): the snapshot
				// itself, as published since the first telemetry release.
				// Snapshot is nil-safe, so a PublishExpvar-only process that
				// has already unpublished everything renders an empty object.
				return main.Snapshot()
			}
			out := map[string]any{}
			if main != nil {
				// A primary registry only exists once NewDebugMux/StartDebug
				// has run; a PublishExpvar-only embedder has just jobs.
				out["run"] = main.Snapshot()
			}
			jobs := make(map[string]Snapshot, len(named))
			for name, reg := range named {
				jobs[name] = reg.Snapshot()
			}
			out["jobs"] = jobs
			return out
		}))
	})
}

func publishExpvar(reg *Registry) {
	expvarReg.Store(reg)
	initExpvar()
}

// PublishExpvar registers reg under name in the process-wide "puffer"
// expvar tree (as puffer.jobs.<name> in /debug/vars), alongside — not
// replacing — the primary debug registry. It is how a multi-job process
// exposes per-job registries live; pair with UnpublishExpvar when the job
// leaves the machine. A nil reg or empty name is ignored.
func PublishExpvar(name string, reg *Registry) {
	if name == "" || reg == nil {
		return
	}
	expvarMu.Lock()
	if expvarNamed == nil {
		expvarNamed = make(map[string]*Registry)
	}
	expvarNamed[name] = reg
	expvarMu.Unlock()
	initExpvar()
}

// UnpublishExpvar removes a registry registered with PublishExpvar.
func UnpublishExpvar(name string) {
	expvarMu.Lock()
	delete(expvarNamed, name)
	expvarMu.Unlock()
}

// ExpvarPublished reports whether a named registry is currently registered
// in the "puffer" expvar tree. Diagnostic helper for embedders verifying
// their publish/unpublish pairing (leaked registrations pin registries in
// process-global state for the life of the process).
func ExpvarPublished(name string) bool {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	_, ok := expvarNamed[name]
	return ok
}

// DebugServer is the live debug endpoint of a run: net/http/pprof under
// /debug/pprof/, expvar under /debug/vars (including the metrics registry
// snapshot as the "puffer" var), and the registry in Prometheus text
// format under /metrics.
type DebugServer struct {
	srv *http.Server
	ln  net.Listener
}

// NewDebugMux builds the handler tree without binding a socket, for
// embedding into an existing server.
func NewDebugMux(reg *Registry) *http.ServeMux {
	publishExpvar(reg)
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "puffer debug endpoint\n\n/debug/pprof/\n/debug/vars\n/metrics\n")
	})
	return mux
}

// StartDebug binds addr (e.g. ":6060", or ":0" for an ephemeral port) and
// serves the debug endpoint in a background goroutine until Close.
func StartDebug(addr string, reg *Registry) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug endpoint: %w", err)
	}
	ds := &DebugServer{
		srv: &http.Server{Handler: NewDebugMux(reg), ReadHeaderTimeout: 5 * time.Second},
		ln:  ln,
	}
	go ds.srv.Serve(ln)
	return ds, nil
}

// Addr returns the bound address (useful with ":0").
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close shuts the server down.
func (d *DebugServer) Close() error { return d.srv.Close() }
