package obs

import (
	"encoding/json"
	"expvar"
	"testing"
)

// TestPublishExpvarWithoutPrimaryRegistry renders the process-wide
// "puffer" expvar in the shape an embedder using only PublishExpvar sees:
// named job registries with no primary registry ever handed to
// NewDebugMux/StartDebug. Rendering must not panic, and the "run" key is
// only present once a primary registry exists.
func TestPublishExpvarWithoutPrimaryRegistry(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("job.events").Inc()
	PublishExpvar("standalone", reg)
	defer UnpublishExpvar("standalone")

	v := expvar.Get("puffer")
	if v == nil {
		t.Fatal("puffer expvar not published")
	}
	var out map[string]any
	if err := json.Unmarshal([]byte(v.String()), &out); err != nil {
		t.Fatalf("puffer expvar is not JSON: %v", err)
	}
	jobs, ok := out["jobs"].(map[string]any)
	if !ok {
		t.Fatalf("puffer expvar missing jobs map: %v", out)
	}
	if _, ok := jobs["standalone"]; !ok {
		t.Fatalf("published registry absent from jobs map: %v", jobs)
	}
	// The primary registry is process-global state other tests may have
	// set; only assert the no-primary shape when none exists.
	if expvarReg.Load() == nil {
		if _, ok := out["run"]; ok {
			t.Fatalf("run key present without a primary registry: %v", out)
		}
	}
}
