package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// histBounds are the fixed bucket upper bounds (seconds) every Histogram
// uses: log-spaced, doubling from 100µs to ~105s (21 bounds), plus an
// implicit +Inf bucket. One shared ladder keeps Observe branch-free of
// configuration, makes histograms from different processes mergeable
// bucket-for-bucket, and spans everything the service measures — a
// sub-millisecond SSE fanout write to a multi-minute placement job.
var histBounds = func() []float64 {
	b := make([]float64, 21)
	v := 1e-4
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}()

// HistogramBounds returns the shared bucket upper bounds (seconds),
// excluding the +Inf bucket. The returned slice must not be modified.
func HistogramBounds() []float64 { return histBounds }

// Histogram is a fixed-bucket latency distribution. Observe is lock-free
// (one atomic add into a bucket, one into the count, a CAS loop on the
// sum) and, like every obs instrument, nil-safe: a nil *Histogram accepts
// the full method set as a no-op.
type Histogram struct {
	name    string
	counts  []atomic.Uint64 // len(histBounds)+1; last is +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(name string) *Histogram {
	return &Histogram{name: name, counts: make([]atomic.Uint64, len(histBounds)+1)}
}

// Observe records one measurement in seconds. Negative and NaN values are
// clamped into the first bucket (they indicate a measurement bug, not a
// latency, but dropping them would skew _count against _sum).
func (h *Histogram) Observe(seconds float64) {
	if h == nil {
		return
	}
	if math.IsNaN(seconds) || seconds < 0 {
		seconds = 0
	}
	i := 0
	for i < len(histBounds) && seconds > histBounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + seconds)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveSince records the elapsed time since t.
func (h *Histogram) ObserveSince(t time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(t).Seconds())
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Snapshot copies the histogram's current state. Safe to call
// concurrently with Observe; the per-bucket counts are read individually,
// so Count is recomputed from them to stay internally consistent.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	snap := HistogramSnapshot{Counts: make([]uint64, len(h.counts))}
	for i := range h.counts {
		c := h.counts[i].Load()
		snap.Counts[i] = c
		snap.Count += c
	}
	snap.Sum = math.Float64frombits(h.sumBits.Load())
	return snap
}

// HistogramSnapshot is a point-in-time copy of a histogram: per-bucket
// counts (aligned with HistogramBounds, last entry +Inf), their total and
// the running sum of observed seconds.
type HistogramSnapshot struct {
	Counts []uint64 `json:"counts,omitempty"`
	Count  uint64   `json:"count"`
	Sum    float64  `json:"sum"`
}

// Delta returns the observations recorded after prev was taken — the
// windowed view SLO evaluation runs on. A prev from a different (or
// reset) histogram yields counts clamped at zero.
func (s HistogramSnapshot) Delta(prev HistogramSnapshot) HistogramSnapshot {
	out := HistogramSnapshot{Counts: make([]uint64, len(s.Counts))}
	for i, c := range s.Counts {
		var p uint64
		if i < len(prev.Counts) {
			p = prev.Counts[i]
		}
		if c > p {
			out.Counts[i] = c - p
		}
		out.Count += out.Counts[i]
	}
	if s.Sum > prev.Sum {
		out.Sum = s.Sum - prev.Sum
	}
	return out
}

// Mean returns Sum/Count, or 0 with no observations.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) in seconds by linear
// interpolation inside the bucket holding the target rank — the same
// estimate Prometheus's histogram_quantile computes. Observations in the
// +Inf bucket are attributed to the largest finite bound.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Counts) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= len(histBounds) { // +Inf bucket
			return histBounds[len(histBounds)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = histBounds[i-1]
		}
		upper := histBounds[i]
		frac := (rank - (cum - float64(c))) / float64(c)
		return lower + (upper-lower)*frac
	}
	return histBounds[len(histBounds)-1]
}
