package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(0.5)
	h.ObserveSince(time.Now())
	if h.Count() != 0 {
		t.Fatal("nil histogram counted")
	}
	snap := h.Snapshot()
	if snap.Count != 0 || snap.Sum != 0 || snap.Quantile(0.5) != 0 {
		t.Fatalf("nil snapshot %+v", snap)
	}
	var rec *Recorder
	if rec.Histogram("x") != nil {
		t.Fatal("nil recorder handed out a histogram")
	}
	var reg *Registry
	if reg.Histogram("x") != nil {
		t.Fatal("nil registry handed out a histogram")
	}
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("serve.queue_wait_seconds")
	if reg.Histogram("serve.queue_wait_seconds") != h {
		t.Fatal("histogram not memoized")
	}
	// 100 observations at ~1ms, 10 at ~1s: p50 lands in the ms bucket,
	// p99 in the 1s region.
	for i := 0; i < 100; i++ {
		h.Observe(0.001)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1.0)
	}
	snap := h.Snapshot()
	if snap.Count != 110 || h.Count() != 110 {
		t.Fatalf("count %d / %d", snap.Count, h.Count())
	}
	if got := snap.Sum; math.Abs(got-10.1) > 1e-9 {
		t.Fatalf("sum %v", got)
	}
	if p50 := snap.Quantile(0.50); p50 <= 0 || p50 > 0.005 {
		t.Fatalf("p50 %v, want ~1ms", p50)
	}
	if p99 := snap.Quantile(0.99); p99 < 0.5 || p99 > 2.1 {
		t.Fatalf("p99 %v, want ~1s", p99)
	}
	if mean := snap.Mean(); math.Abs(mean-10.1/110) > 1e-9 {
		t.Fatalf("mean %v", mean)
	}

	// Quantiles never exceed the largest finite bound, even for +Inf
	// observations.
	h2 := reg.Histogram("huge")
	h2.Observe(1e6)
	bounds := HistogramBounds()
	if q := h2.Snapshot().Quantile(1); q != bounds[len(bounds)-1] {
		t.Fatalf("+Inf quantile %v", q)
	}

	// Negative and NaN clamp to the first bucket rather than vanishing.
	h3 := reg.Histogram("weird")
	h3.Observe(-5)
	h3.Observe(math.NaN())
	s3 := h3.Snapshot()
	if s3.Count != 2 || s3.Counts[0] != 2 {
		t.Fatalf("clamped observations %+v", s3)
	}
}

func TestHistogramDeltaWindow(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("w")
	h.Observe(0.01)
	h.Observe(0.01)
	before := h.Snapshot()
	h.Observe(3.0)
	win := h.Snapshot().Delta(before)
	if win.Count != 1 {
		t.Fatalf("window count %d", win.Count)
	}
	if q := win.Quantile(0.5); q < 2 || q > 7 {
		t.Fatalf("window quantile %v, want ~3s bucket", q)
	}
	if math.Abs(win.Sum-3.0) > 1e-9 {
		t.Fatalf("window sum %v", win.Sum)
	}
	// A stale/foreign prev clamps to zero instead of underflowing.
	var other HistogramSnapshot
	other.Counts = make([]uint64, len(before.Counts))
	other.Counts[0] = 1 << 40
	other.Sum = 1e12
	clamped := before.Delta(other)
	if clamped.Counts[0] != 0 || clamped.Sum != 0 {
		t.Fatalf("delta underflow %+v", clamped)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("c")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.002)
			}
		}()
	}
	wg.Wait()
	snap := h.Snapshot()
	if snap.Count != 8000 {
		t.Fatalf("count %d", snap.Count)
	}
	if math.Abs(snap.Sum-16.0) > 1e-6 {
		t.Fatalf("sum %v", snap.Sum)
	}
}

// TestWritePrometheusGolden locks the full exposition format — HELP/TYPE
// lines, name sanitization, histogram buckets — against a byte-exact
// golden string, so accidental format drift fails loudly.
func TestWritePrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("route.segments").Add(7)
	reg.Gauge("cong.hit_rate").Set(0.25)
	reg.Series("place.hpwl").Observe(1, 50)
	h := reg.Histogram("serve.job_wall_seconds")
	h.Observe(0.00005) // first bucket
	h.Observe(0.0003)  // 0.0004 bucket
	h.Observe(200)     // +Inf bucket

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# HELP route_segments puffer counter route.segments",
		"# TYPE route_segments counter",
		"route_segments 7",
		"# HELP cong_hit_rate puffer gauge cong.hit_rate",
		"# TYPE cong_hit_rate gauge",
		"cong_hit_rate 0.25",
		"# HELP place_hpwl_last puffer series place.hpwl (latest value)",
		"# TYPE place_hpwl_last gauge",
		"place_hpwl_last 50",
		"# HELP place_hpwl_count puffer series place.hpwl (sample count)",
		"# TYPE place_hpwl_count gauge",
		"place_hpwl_count 1",
		"# HELP serve_job_wall_seconds puffer histogram serve.job_wall_seconds (seconds)",
		"# TYPE serve_job_wall_seconds histogram",
		`serve_job_wall_seconds_bucket{le="0.0001"} 1`,
		`serve_job_wall_seconds_bucket{le="0.0002"} 1`,
		`serve_job_wall_seconds_bucket{le="0.0004"} 2`,
		`serve_job_wall_seconds_bucket{le="0.0008"} 2`,
		`serve_job_wall_seconds_bucket{le="0.0016"} 2`,
		`serve_job_wall_seconds_bucket{le="0.0032"} 2`,
		`serve_job_wall_seconds_bucket{le="0.0064"} 2`,
		`serve_job_wall_seconds_bucket{le="0.0128"} 2`,
		`serve_job_wall_seconds_bucket{le="0.0256"} 2`,
		`serve_job_wall_seconds_bucket{le="0.0512"} 2`,
		`serve_job_wall_seconds_bucket{le="0.1024"} 2`,
		`serve_job_wall_seconds_bucket{le="0.2048"} 2`,
		`serve_job_wall_seconds_bucket{le="0.4096"} 2`,
		`serve_job_wall_seconds_bucket{le="0.8192"} 2`,
		`serve_job_wall_seconds_bucket{le="1.6384"} 2`,
		`serve_job_wall_seconds_bucket{le="3.2768"} 2`,
		`serve_job_wall_seconds_bucket{le="6.5536"} 2`,
		`serve_job_wall_seconds_bucket{le="13.1072"} 2`,
		`serve_job_wall_seconds_bucket{le="26.2144"} 2`,
		`serve_job_wall_seconds_bucket{le="52.4288"} 2`,
		`serve_job_wall_seconds_bucket{le="104.8576"} 2`,
		`serve_job_wall_seconds_bucket{le="+Inf"} 3`,
		"serve_job_wall_seconds_sum 200.00035",
		"serve_job_wall_seconds_count 3",
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Fatalf("exposition format drifted:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
