package obs

import (
	"context"
	"io"
	"log/slog"
)

// LogHandler is a slog.Handler middleware that correlates log records
// with the rest of the telemetry: every record handled with a context
// carrying an obs span gains trace_id/span_id attrs, and attrs attached
// via ContextWithLabels (job ID, session ID, ...) are stamped on as well.
// One grep for a trace_id then yields the log lines, the spans and —
// through the job ID — the metrics of a single request.
type LogHandler struct {
	inner slog.Handler
}

// NewLogHandler wraps inner with trace/label correlation.
func NewLogHandler(inner slog.Handler) *LogHandler {
	return &LogHandler{inner: inner}
}

// Enabled defers to the wrapped handler.
func (h *LogHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

// Handle stamps correlation attrs from ctx onto the record and forwards
// it.
func (h *LogHandler) Handle(ctx context.Context, r slog.Record) error {
	if sp := FromContext(ctx); sp != nil {
		tc := sp.TraceContext()
		r.AddAttrs(
			slog.String("trace_id", tc.TraceID.String()),
			slog.String("span_id", tc.SpanID.String()),
		)
	}
	if labels, _ := ctx.Value(labelsKey{}).([]slog.Attr); len(labels) > 0 {
		r.AddAttrs(labels...)
	}
	return h.inner.Handle(ctx, r)
}

// WithAttrs forwards to the wrapped handler, keeping the middleware on
// top so context attrs still land on derived loggers.
func (h *LogHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &LogHandler{inner: h.inner.WithAttrs(attrs)}
}

// WithGroup forwards to the wrapped handler.
func (h *LogHandler) WithGroup(name string) slog.Handler {
	return &LogHandler{inner: h.inner.WithGroup(name)}
}

// labelsKey keys the []slog.Attr correlation labels in a context.
type labelsKey struct{}

// ContextWithLabels returns ctx carrying additional correlation attrs
// (appended to any already present) that LogHandler stamps onto every
// record logged under the returned context.
func ContextWithLabels(ctx context.Context, attrs ...slog.Attr) context.Context {
	if len(attrs) == 0 {
		return ctx
	}
	prev, _ := ctx.Value(labelsKey{}).([]slog.Attr)
	merged := make([]slog.Attr, 0, len(prev)+len(attrs))
	merged = append(merged, prev...)
	merged = append(merged, attrs...)
	return context.WithValue(ctx, labelsKey{}, merged)
}

// NewLogger builds the service's standard logger: a text handler on w at
// the given level, wrapped in a LogHandler for trace/label correlation.
func NewLogger(w io.Writer, level slog.Leveler) *slog.Logger {
	return slog.New(NewLogHandler(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level})))
}

// discardHandler is a slog.Handler that drops everything at the Enabled
// gate (slog.DiscardHandler arrived after this module's Go baseline).
// Logging through it is allocation-free: Enabled returns false before
// any record is built.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

var nopLogger = slog.New(discardHandler{})

// NopLogger returns a logger that discards every record without
// allocating — the "logging off" value components default to when no
// logger is configured, mirroring the nil-Recorder convention.
func NopLogger() *slog.Logger { return nopLogger }
