package obs

import (
	"bytes"
	"context"
	"log/slog"
	"strings"
	"testing"
)

func TestLogHandlerStampsTraceAndLabels(t *testing.T) {
	var buf bytes.Buffer
	logger := NewLogger(&buf, slog.LevelInfo)

	tr := NewTracer()
	rec := NewRecorder(tr, nil)
	sp, ctx := Start(context.Background(), rec, "serve.job")
	ctx = ContextWithLabels(ctx, slog.String("job", "job-123"), slog.String("session", "s-1"))

	logger.InfoContext(ctx, "job started", "attempt", 2)
	sp.End()

	line := buf.String()
	tc := sp.TraceContext()
	for _, want := range []string{
		"msg=\"job started\"",
		"attempt=2",
		"trace_id=" + tc.TraceID.String(),
		"span_id=" + tc.SpanID.String(),
		"job=job-123",
		"session=s-1",
	} {
		if !strings.Contains(line, want) {
			t.Fatalf("log line missing %q:\n%s", want, line)
		}
	}

	// Without a span or labels in context, no correlation attrs appear.
	buf.Reset()
	logger.Info("bare")
	if out := buf.String(); strings.Contains(out, "trace_id") || strings.Contains(out, "job=") {
		t.Fatalf("bare record gained correlation attrs:\n%s", out)
	}

	// Labels accumulate across ContextWithLabels calls.
	ctx2 := ContextWithLabels(context.Background(), slog.String("a", "1"))
	ctx2 = ContextWithLabels(ctx2, slog.String("b", "2"))
	buf.Reset()
	logger.InfoContext(ctx2, "two labels")
	if out := buf.String(); !strings.Contains(out, "a=1") || !strings.Contains(out, "b=2") {
		t.Fatalf("labels did not accumulate:\n%s", out)
	}
}

func TestLogHandlerWithAttrsAndGroup(t *testing.T) {
	var buf bytes.Buffer
	logger := NewLogger(&buf, slog.LevelDebug).With("component", "worker")

	ctx := ContextWithLabels(context.Background(), slog.String("job", "j"))
	logger.InfoContext(ctx, "derived logger keeps correlation")
	out := buf.String()
	if !strings.Contains(out, "component=worker") || !strings.Contains(out, "job=j") {
		t.Fatalf("With() lost middleware:\n%s", out)
	}

	buf.Reset()
	logger.WithGroup("g").InfoContext(ctx, "grouped", "k", "v")
	out = buf.String()
	if !strings.Contains(out, "g.k=v") {
		t.Fatalf("group lost:\n%s", out)
	}

	// Level gating is preserved through the middleware.
	var quiet bytes.Buffer
	warn := NewLogger(&quiet, slog.LevelWarn)
	warn.Info("dropped")
	if quiet.Len() != 0 {
		t.Fatalf("info passed a warn-level handler:\n%s", quiet.String())
	}
}

func TestNopLogger(t *testing.T) {
	l := NopLogger()
	if l == nil {
		t.Fatal("nil NopLogger")
	}
	// Full surface is callable and silent.
	ctx := ContextWithLabels(context.Background(), slog.String("job", "j"))
	l.InfoContext(ctx, "x", "k", "v")
	l.With("a", 1).WithGroup("g").Error("y")
	if l.Enabled(ctx, slog.LevelError) {
		t.Fatal("NopLogger enabled")
	}
}
