package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is the metrics namespace of one run: counters (monotonic
// int64), gauges (last-value float64) and series (step-indexed float64
// samples). Instruments are created on first use and live for the
// registry's lifetime, so engines resolve them once and record locklessly
// (counters and gauges are atomics; series take a short per-series lock).
//
// A nil *Registry is valid and hands out nil instruments.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	series     map[string]*Series
	histograms map[string]*Histogram
	sinks      []Sink
}

// NewRegistry builds an empty registry; every series sample is fanned out
// to the given sinks as it is observed.
func NewRegistry(sinks ...Sink) *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		series:     make(map[string]*Series),
		histograms: make(map[string]*Histogram),
		sinks:      sinks,
	}
}

// Counter is a monotonic event count. Nil-safe.
type Counter struct {
	name string
	v    atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value float64. Nil-safe.
type Gauge struct {
	name string
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the stored value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Sample is one series observation: a step index (iteration, optimizer
// call, trial — whatever the series' unit of progress is) and a value.
type Sample struct {
	Step  int     `json:"step"`
	Value float64 `json:"value"`
}

// Series is a step-indexed time series. Observations are retained
// in-memory (for the run report) and fanned out to the registry's sinks.
// Nil-safe.
type Series struct {
	name  string
	sinks []Sink

	mu      sync.Mutex
	samples []Sample
}

// Observe appends one sample.
func (s *Series) Observe(step int, v float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.samples = append(s.samples, Sample{Step: step, Value: v})
	s.mu.Unlock()
	for _, sink := range s.sinks {
		sink.Observe(s.name, Sample{Step: step, Value: v})
	}
}

// Len returns the number of samples observed so far.
func (s *Series) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.samples)
}

// Samples returns a copy of all observations.
func (s *Series) Samples() []Sample {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Sample(nil), s.samples...)
}

// Last returns the most recent sample, if any.
func (s *Series) Last() (Sample, bool) {
	if s == nil {
		return Sample{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.samples) == 0 {
		return Sample{}, false
	}
	return s.samples[len(s.samples)-1], true
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Series returns the named series, creating it on first use.
func (r *Registry) Series(name string) *Series {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.series[name]
	if !ok {
		s = &Series{name: name, sinks: r.sinks}
		r.series[name] = s
	}
	return s
}

// Histogram returns the named latency histogram, creating it on first
// use. All histograms share the fixed log-spaced bucket ladder (see
// HistogramBounds).
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram(name)
		r.histograms[name] = h
	}
	return h
}

// Flush flushes every sink.
func (r *Registry) Flush() error {
	if r == nil {
		return nil
	}
	var first error
	for _, s := range r.sinks {
		if err := s.Flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Snapshot is a point-in-time copy of a registry's contents, embedded in
// run reports and served over expvar.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Series     map[string][]Sample          `json:"series,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the registry. Safe to call concurrently with recording.
func (r *Registry) Snapshot() Snapshot {
	var snap Snapshot
	if r == nil {
		return snap
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	series := make(map[string]*Series, len(r.series))
	for k, v := range r.series {
		series[k] = v
	}
	histograms := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		histograms[k] = v
	}
	r.mu.Unlock()

	if len(counters) > 0 {
		snap.Counters = make(map[string]int64, len(counters))
		for k, c := range counters {
			snap.Counters[k] = c.Value()
		}
	}
	if len(gauges) > 0 {
		snap.Gauges = make(map[string]float64, len(gauges))
		for k, g := range gauges {
			snap.Gauges[k] = g.Value()
		}
	}
	if len(series) > 0 {
		snap.Series = make(map[string][]Sample, len(series))
		for k, s := range series {
			snap.Series[k] = s.Samples()
		}
	}
	if len(histograms) > 0 {
		snap.Histograms = make(map[string]HistogramSnapshot, len(histograms))
		for k, h := range histograms {
			snap.Histograms[k] = h.Snapshot()
		}
	}
	return snap
}

// promName maps a dotted metric name to the Prometheus charset:
// characters outside [a-zA-Z0-9_:] become underscores.
func promName(name string) string {
	out := []byte(name)
	for i, c := range out {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				out[i] = '_'
			}
		default:
			out[i] = '_'
		}
	}
	return string(out)
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (0.0.4): counters as counters, gauges as gauges, each series'
// latest value as a gauge suffixed _last (with a _count companion), and
// histograms as native Prometheus histograms (cumulative _bucket{le=...}
// plus _sum and _count). Every family gets # HELP and # TYPE lines and a
// sanitized name (promName), so real scrapers parse the endpoint; output
// is sorted by name, so scrapes are diff-stable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	var names []string
	for k := range snap.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		n := promName(k)
		if _, err := fmt.Fprintf(w, "# HELP %s puffer counter %s\n# TYPE %s counter\n%s %d\n",
			n, k, n, n, snap.Counters[k]); err != nil {
			return err
		}
	}
	names = names[:0]
	for k := range snap.Gauges {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		n := promName(k)
		if _, err := fmt.Fprintf(w, "# HELP %s puffer gauge %s\n# TYPE %s gauge\n%s %g\n",
			n, k, n, n, snap.Gauges[k]); err != nil {
			return err
		}
	}
	names = names[:0]
	for k := range snap.Series {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		ss := snap.Series[k]
		n := promName(k)
		last := 0.0
		if len(ss) > 0 {
			last = ss[len(ss)-1].Value
		}
		if _, err := fmt.Fprintf(w, "# HELP %s_last puffer series %s (latest value)\n# TYPE %s_last gauge\n%s_last %g\n# HELP %s_count puffer series %s (sample count)\n# TYPE %s_count gauge\n%s_count %d\n",
			n, k, n, n, last, n, k, n, n, len(ss)); err != nil {
			return err
		}
	}
	names = names[:0]
	for k := range snap.Histograms {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		hs := snap.Histograms[k]
		n := promName(k)
		if _, err := fmt.Fprintf(w, "# HELP %s puffer histogram %s (seconds)\n# TYPE %s histogram\n", n, k, n); err != nil {
			return err
		}
		var cum uint64
		for i, c := range hs.Counts {
			cum += c
			le := "+Inf"
			if i < len(histBounds) {
				le = fmt.Sprintf("%g", histBounds[i])
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", n, le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", n, hs.Sum, n, hs.Count); err != nil {
			return err
		}
	}
	return nil
}
