// Package obs is the unified telemetry layer of the PUFFER flow:
// hierarchical trace spans (run → stage → optimizer call → shard) with
// Chrome trace-event export, a metrics registry of counters, gauges and
// per-iteration time series with pluggable sinks, a structured run-report
// artifact, and an optional live debug HTTP endpoint (pprof, expvar,
// Prometheus text).
//
// The package is built around one invariant: a disabled recorder costs
// nothing on the hot path. Every type is nil-safe — a nil *Recorder,
// *Tracer, *Span, *Registry, *Counter, *Gauge or *Series accepts its full
// method set as a no-op, without allocating. Engines therefore resolve
// their instruments once at setup time
//
//	sHPWL := cfg.Obs.Series("place.hpwl")   // nil recorder → nil series
//
// and call them unconditionally per iteration
//
//	sHPWL.Observe(iter, hpwl)               // nil series → a nil check
//
// so the per-iteration overhead of disabled telemetry is a handful of
// predictable branches: zero allocations, sub-nanosecond per call (see
// BenchmarkDisabledTelemetryPerIteration).
package obs

// Recorder bundles a Tracer and a metrics Registry. A nil *Recorder is the
// canonical "telemetry off" value: every method returns the matching nil
// instrument, whose methods are themselves no-ops.
type Recorder struct {
	trace   *Tracer
	metrics *Registry
}

// NewRecorder builds a recorder over the given tracer and registry; either
// may be nil to enable only half of the telemetry.
func NewRecorder(t *Tracer, m *Registry) *Recorder {
	return &Recorder{trace: t, metrics: m}
}

// Tracer returns the recorder's tracer (nil when tracing is off).
func (r *Recorder) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.trace
}

// Registry returns the recorder's metrics registry (nil when metrics are
// off).
func (r *Recorder) Registry() *Registry {
	if r == nil {
		return nil
	}
	return r.metrics
}

// StartSpan opens a root span on the recorder's tracer.
func (r *Recorder) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	return r.trace.StartSpan(name)
}

// Counter resolves (creating on first use) the named counter.
func (r *Recorder) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	return r.metrics.Counter(name)
}

// Gauge resolves (creating on first use) the named gauge.
func (r *Recorder) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	return r.metrics.Gauge(name)
}

// Series resolves (creating on first use) the named time series.
func (r *Recorder) Series(name string) *Series {
	if r == nil {
		return nil
	}
	return r.metrics.Series(name)
}

// Histogram resolves (creating on first use) the named latency histogram.
func (r *Recorder) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	return r.metrics.Histogram(name)
}
