package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// TestNilRecorderIsSafe drives the full API surface through nil receivers:
// every call must be a no-op, not a panic.
func TestNilRecorderIsSafe(t *testing.T) {
	var rec *Recorder
	sp := rec.StartSpan("x")
	sp.SetArg("k", 1)
	child := sp.Child("y")
	child.End()
	sp.Fork("z").End()
	sp.End()
	rec.Counter("c").Inc()
	rec.Counter("c").Add(5)
	if got := rec.Counter("c").Value(); got != 0 {
		t.Fatalf("nil counter value = %d", got)
	}
	rec.Gauge("g").Set(3)
	if got := rec.Gauge("g").Value(); got != 0 {
		t.Fatalf("nil gauge value = %v", got)
	}
	s := rec.Series("s")
	s.Observe(1, 2)
	if s.Len() != 0 || s.Samples() != nil {
		t.Fatal("nil series retained samples")
	}
	if _, ok := s.Last(); ok {
		t.Fatal("nil series has a last sample")
	}
	if rec.Tracer().Len() != 0 {
		t.Fatal("nil tracer has events")
	}
	var reg *Registry
	if err := reg.Flush(); err != nil {
		t.Fatal(err)
	}
	if snap := reg.Snapshot(); snap.Counters != nil || snap.Series != nil {
		t.Fatal("nil registry snapshot not empty")
	}

	// Context plumbing with everything disabled must not allocate or wrap.
	ctx := context.Background()
	sp2, ctx2 := Start(ctx, nil, "run")
	if sp2 != nil || ctx2 != ctx {
		t.Fatal("disabled Start changed the context")
	}
	if FromContext(ctx) != nil {
		t.Fatal("FromContext on bare context")
	}
}

func TestSpanHierarchyAndChromeExport(t *testing.T) {
	tr := NewTracer()
	rec := NewRecorder(tr, nil)

	run, ctx := Start(context.Background(), rec, "run")
	stage, ctx := Start(ctx, rec, "stage:place")
	if FromContext(ctx) != stage {
		t.Fatal("context does not carry the stage span")
	}
	opt := stage.Child("padding.optimize")
	opt.SetArg("call", 1)
	sh0 := opt.Fork("cong.shard")
	sh1 := opt.Fork("cong.shard")
	if sh0.tid == sh1.tid || sh0.tid == opt.tid {
		t.Fatalf("forked spans share a tid: %d %d %d", sh0.tid, sh1.tid, opt.tid)
	}
	if opt.tid != stage.tid || stage.tid != run.tid {
		t.Fatal("child spans should stay on the parent's tid")
	}
	sh0.End()
	sh1.End()
	opt.End()
	stage.End()
	run.End()
	if tr.Len() != 5 {
		t.Fatalf("committed %d spans, want 5", tr.Len())
	}

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	// The export must be valid JSON in the Chrome trace-event container
	// shape Perfetto loads: traceEvents[] of ph="X" events with pid/tid/
	// ts/dur.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 5 || doc.Unit != "ms" {
		t.Fatalf("bad container: %d events, unit %q", len(doc.TraceEvents), doc.Unit)
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev["ph"] != "X" || ev["cat"] != "puffer" {
			t.Fatalf("bad event %v", ev)
		}
		if _, ok := ev["ts"].(float64); !ok {
			t.Fatalf("event missing numeric ts: %v", ev)
		}
		if _, ok := ev["dur"].(float64); !ok {
			t.Fatalf("event missing numeric dur: %v", ev)
		}
		names[ev["name"].(string)] = true
	}
	for _, want := range []string{"run", "stage:place", "padding.optimize", "cong.shard"} {
		if !names[want] {
			t.Fatalf("export missing span %q", want)
		}
	}
	// The file form round-trips too.
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryInstrumentsAndSnapshot(t *testing.T) {
	mem := NewMemSink()
	reg := NewRegistry(mem)
	rec := NewRecorder(nil, reg)

	c := rec.Counter("route.segments")
	c.Add(41)
	c.Inc()
	if c.Value() != 42 {
		t.Fatalf("counter = %d", c.Value())
	}
	if rec.Counter("route.segments") != c {
		t.Fatal("counter not memoized")
	}
	g := rec.Gauge("cong.hit_rate")
	g.Set(0.93)
	s := rec.Series("place.hpwl")
	for i := 1; i <= 3; i++ {
		s.Observe(i, float64(100*i))
	}
	if s.Len() != 3 {
		t.Fatalf("series len = %d", s.Len())
	}
	if last, ok := s.Last(); !ok || last.Step != 3 || last.Value != 300 {
		t.Fatalf("last = %+v %v", last, ok)
	}

	snap := reg.Snapshot()
	if snap.Counters["route.segments"] != 42 || snap.Gauges["cong.hit_rate"] != 0.93 {
		t.Fatalf("snapshot %+v", snap)
	}
	if got := snap.Series["place.hpwl"]; !reflect.DeepEqual(got, []Sample{{1, 100}, {2, 200}, {3, 300}}) {
		t.Fatalf("snapshot series %+v", got)
	}
	// The sink saw every observation in order.
	if got := mem.Samples("place.hpwl"); !reflect.DeepEqual(got, []Sample{{1, 100}, {2, 200}, {3, 300}}) {
		t.Fatalf("mem sink %+v", got)
	}
}

func TestSeriesConcurrentObserve(t *testing.T) {
	reg := NewRegistry(NewMemSink())
	s := reg.Series("x")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.Observe(i, float64(w))
				reg.Counter("n").Inc()
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 800 || reg.Counter("n").Value() != 800 {
		t.Fatalf("len=%d n=%d", s.Len(), reg.Counter("n").Value())
	}
}

func TestJSONLAndCSVSinks(t *testing.T) {
	var jbuf, cbuf bytes.Buffer
	reg := NewRegistry(NewJSONLSink(&jbuf), NewCSVSink(&cbuf))
	reg.Series("a.b").Observe(7, 1.5)
	reg.Series("a.b").Observe(8, -2)
	if err := reg.Flush(); err != nil {
		t.Fatal(err)
	}
	wantJSON := `{"series":"a.b","step":7,"value":1.5}` + "\n" + `{"series":"a.b","step":8,"value":-2}` + "\n"
	if jbuf.String() != wantJSON {
		t.Fatalf("jsonl:\n%s", jbuf.String())
	}
	// Each JSONL line parses back.
	for _, line := range strings.Split(strings.TrimSpace(jbuf.String()), "\n") {
		var v struct {
			Series string  `json:"series"`
			Step   int     `json:"step"`
			Value  float64 `json:"value"`
		}
		if err := json.Unmarshal([]byte(line), &v); err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
	}
	wantCSV := "series,step,value\na.b,7,1.5\na.b,8,-2\n"
	if cbuf.String() != wantCSV {
		t.Fatalf("csv:\n%s", cbuf.String())
	}
}

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("padding.calls").Add(3)
	reg.Gauge("cong.hit_rate").Set(0.5)
	reg.Series("place.hpwl").Observe(9, 1234)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE padding_calls counter\npadding_calls 3\n",
		"# TYPE cong_hit_rate gauge\ncong_hit_rate 0.5\n",
		"place_hpwl_last 1234\n",
		"place_hpwl_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestRunReportRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Series("place.hpwl").Observe(1, 10)
	reg.Series("place.hpwl").Observe(2, 9)
	reg.Counter("padding.calls").Add(2)
	rep := &RunReport{
		Design: "OR1200",
		Cells:  100,
		Nets:   120,
		Seed:   7,
		Config: json.RawMessage(`{"Workers":4}`),
		Stages: []StageReport{
			{Name: "place", WallNs: 12345, Iters: 250},
			{Name: "legalize", WallNs: 42, Iters: 100, AllocsDelta: 9},
		},
		StageLog: []string{"stage: global placement done (iters=250 overflow=0.070 hpwl=1)"},
		Metrics:  reg.Snapshot(),
		Final:    map[string]float64{"hpwl": 9, "hof": 0.5},
	}
	path := filepath.Join(t.TempDir(), "run.json")
	if err := rep.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != ReportSchema {
		t.Fatalf("schema %q", got.Schema)
	}
	if got.Design != rep.Design || got.Seed != rep.Seed || len(got.Stages) != 2 {
		t.Fatalf("round trip lost fields: %+v", got)
	}
	if !reflect.DeepEqual(got.Metrics.Series["place.hpwl"], []Sample{{1, 10}, {2, 9}}) {
		t.Fatalf("series lost: %+v", got.Metrics)
	}
	if got.Final["hpwl"] != 9 {
		t.Fatalf("final lost: %+v", got.Final)
	}
	// Saving the loaded report reproduces the identical document (the
	// round-trip property cmd/diag relies on).
	path2 := filepath.Join(t.TempDir(), "run2.json")
	if err := got.Save(path2); err != nil {
		t.Fatal(err)
	}
	b1, _ := readFile(t, path)
	b2, _ := readFile(t, path2)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("re-saved report differs:\n%s\n----\n%s", b1, b2)
	}

	// Schema mismatch is rejected.
	bad := filepath.Join(t.TempDir(), "bad.json")
	writeFile(t, bad, `{"schema":"puffer/run-report/v0"}`)
	if _, err := LoadReport(bad); err == nil {
		t.Fatal("loaded report with wrong schema")
	}
}

func TestDebugServer(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("route.segments").Add(5)
	reg.Gauge("explore.best_score").Set(1.25)
	ds, err := StartDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + ds.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	metrics := get("/metrics")
	if !strings.Contains(metrics, "route_segments 5") {
		t.Fatalf("/metrics missing counter:\n%s", metrics)
	}
	vars := get("/debug/vars")
	if !strings.Contains(vars, `"puffer"`) || !strings.Contains(vars, "route.segments") {
		t.Fatalf("/debug/vars missing registry snapshot:\n%s", vars)
	}
	if idx := get("/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Fatal("/debug/pprof/ index incomplete")
	}
	if root := get("/"); !strings.Contains(root, "puffer debug endpoint") {
		t.Fatalf("root page: %q", root)
	}
}

func readFile(t *testing.T, path string) ([]byte, error) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b, nil
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
