package obs

import (
	"encoding/json"
	"fmt"
	"os"
)

// ReportSchema identifies the run-report JSON document version. Loaders
// reject documents with a different schema string instead of guessing.
const ReportSchema = "puffer/run-report/v1"

// RunReport is the structured artifact of one flow run: enough to replay
// the analysis offline (configuration, seeds, per-stage statistics, every
// per-iteration metric series, final quality numbers) without rerunning
// placement. cmd/puffer -report writes it; cmd/diag -report consumes it.
type RunReport struct {
	Schema string `json:"schema"`
	Design string `json:"design"`
	Cells  int    `json:"cells"`
	Nets   int    `json:"nets"`
	Seed   int64  `json:"seed"`
	// Config is the flow configuration as JSON (function-valued and
	// telemetry fields excluded via their json tags).
	Config json.RawMessage `json:"config,omitempty"`
	// Stages mirrors the pipeline's per-stage statistics.
	Stages []StageReport `json:"stages"`
	// StageLog is the verbatim Fig. 2 flow trace.
	StageLog []string `json:"stage_log,omitempty"`
	// Metrics is the full registry snapshot: counters, gauges, and every
	// per-iteration series recorded during the run.
	Metrics Snapshot `json:"metrics"`
	// Final holds the end-of-run quality numbers (hpwl, overflow,
	// padding_area, runtime_ms, and hof/vof/wl when routing ran).
	Final map[string]float64 `json:"final,omitempty"`
}

// StageReport is the serialized form of one stage's statistics.
type StageReport struct {
	Name        string `json:"name"`
	WallNs      int64  `json:"wall_ns"`
	Iters       int    `json:"iters"`
	AllocsDelta uint64 `json:"allocs_delta"`
	// Estimator carries the congestion engine's stats snapshot when the
	// stage ran the estimator; generic so this package stays leaf.
	Estimator any `json:"estimator,omitempty"`
}

// Save writes the report as indented JSON.
func (r *RunReport) Save(path string) error {
	r.Schema = ReportSchema
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: encode run report: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadReport reads a report written by Save, validating its schema.
func LoadReport(path string) (*RunReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	r := &RunReport{}
	if err := json.Unmarshal(data, r); err != nil {
		return nil, fmt.Errorf("obs: decode run report %s: %w", path, err)
	}
	if r.Schema != ReportSchema {
		return nil, fmt.Errorf("obs: %s: schema %q, want %q", path, r.Schema, ReportSchema)
	}
	return r, nil
}
