package obs

import (
	"bufio"
	"fmt"
	"io"
	"sync"
)

// Sink receives every series sample as it is observed. Implementations
// must be safe for concurrent Observe calls (series record from parallel
// exploration groups and router shards).
type Sink interface {
	Observe(series string, s Sample)
	Flush() error
}

// JSONLSink streams samples as one JSON object per line:
//
//	{"series":"place.hpwl","step":12,"value":123456}
//
// The stream is buffered; call Flush (or Registry.Flush) before reading
// the underlying writer.
type JSONLSink struct {
	mu sync.Mutex
	w  *bufio.Writer
}

// NewJSONLSink wraps w in a buffered JSON-lines sink.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: bufio.NewWriter(w)}
}

// Observe implements Sink.
func (j *JSONLSink) Observe(series string, s Sample) {
	j.mu.Lock()
	fmt.Fprintf(j.w, `{"series":%q,"step":%d,"value":%g}`+"\n", series, s.Step, s.Value)
	j.mu.Unlock()
}

// Flush implements Sink.
func (j *JSONLSink) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.w.Flush()
}

// CSVSink streams samples as CSV rows (header written once):
//
//	series,step,value
//	place.hpwl,12,123456
type CSVSink struct {
	mu     sync.Mutex
	w      *bufio.Writer
	header bool
}

// NewCSVSink wraps w in a buffered CSV sink.
func NewCSVSink(w io.Writer) *CSVSink {
	return &CSVSink{w: bufio.NewWriter(w)}
}

// Observe implements Sink.
func (c *CSVSink) Observe(series string, s Sample) {
	c.mu.Lock()
	if !c.header {
		c.w.WriteString("series,step,value\n")
		c.header = true
	}
	fmt.Fprintf(c.w, "%s,%d,%g\n", series, s.Step, s.Value)
	c.mu.Unlock()
}

// Flush implements Sink.
func (c *CSVSink) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.w.Flush()
}

// MemSink retains every sample in memory, keyed by series name — the
// test-friendly sink.
type MemSink struct {
	mu      sync.Mutex
	samples map[string][]Sample
}

// NewMemSink builds an empty in-memory sink.
func NewMemSink() *MemSink {
	return &MemSink{samples: make(map[string][]Sample)}
}

// Observe implements Sink.
func (m *MemSink) Observe(series string, s Sample) {
	m.mu.Lock()
	m.samples[series] = append(m.samples[series], s)
	m.mu.Unlock()
}

// Flush implements Sink.
func (m *MemSink) Flush() error { return nil }

// Samples returns a copy of the retained samples for one series.
func (m *MemSink) Samples(series string) []Sample {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Sample(nil), m.samples[series]...)
}

// SeriesNames returns the names of all series observed so far.
func (m *MemSink) SeriesNames() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.samples))
	for k := range m.samples {
		names = append(names, k)
	}
	return names
}
