package obs

import (
	"sync"
	"time"
)

// Objective is one service-level objective: a quantile of a latency
// histogram that must stay under a bound. The bound is a function so it
// can be derived from live data — e.g. "warm delta p95 ≤ 1/10 of the mean
// session cold-open wall" re-reads the cold-open histogram at every
// evaluation.
type Objective struct {
	// Name identifies the objective in /api/v1/ops output.
	Name string
	// Histogram is the latency distribution being judged.
	Histogram *Histogram
	// Quantile in (0,1], e.g. 0.95 for p95.
	Quantile float64
	// Bound returns the current bound in seconds. A nil func or a
	// non-positive bound marks the objective unevaluable (reported OK:
	// typically the baseline it derives from has no data yet).
	Bound func() float64
	// MinCount is the minimum number of observations a window needs to be
	// judged. Smaller windows are folded into the next evaluation instead
	// of producing noise verdicts.
	MinCount uint64
}

// ObjectiveStatus is one objective's verdict at the last evaluation.
type ObjectiveStatus struct {
	Name        string    `json:"name"`
	Quantile    float64   `json:"quantile"`
	Value       float64   `json:"value_seconds"`
	Bound       float64   `json:"bound_seconds"`
	Window      uint64    `json:"window_count"`
	Evaluable   bool      `json:"evaluable"`
	OK          bool      `json:"ok"`
	Burning     bool      `json:"burning"`
	EvaluatedAt time.Time `json:"evaluated_at"`
}

// SLO evaluates a set of objectives over histogram windows: each Eval
// call judges the observations recorded since the last window that met
// MinCount. An objective that fails two consecutive evaluations is
// "burning" — the signal /readyz and ops dashboards key off, so one
// outlier window doesn't flap the service's health.
//
// A nil *SLO is valid: Eval returns nil and Healthy reports true.
type SLO struct {
	mu   sync.Mutex
	objs []*sloState
}

type sloState struct {
	obj    Objective
	prev   HistogramSnapshot // snapshot at the last judged window boundary
	fails  int               // consecutive failing evaluations
	status ObjectiveStatus
}

// NewSLO builds a tracker over the given objectives.
func NewSLO(objs ...Objective) *SLO {
	s := &SLO{objs: make([]*sloState, len(objs))}
	for i, o := range objs {
		s.objs[i] = &sloState{obj: o, status: ObjectiveStatus{
			Name: o.Name, Quantile: o.Quantile, OK: true,
		}}
	}
	return s
}

// Eval evaluates every objective against the observations since its last
// judged window and returns the fresh statuses, in objective order.
func (s *SLO) Eval() []ObjectiveStatus {
	if s == nil {
		return nil
	}
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ObjectiveStatus, len(s.objs))
	for i, st := range s.objs {
		out[i] = st.eval(now)
	}
	return out
}

func (st *sloState) eval(now time.Time) ObjectiveStatus {
	o := st.obj
	status := ObjectiveStatus{Name: o.Name, Quantile: o.Quantile, EvaluatedAt: now}

	var bound float64
	if o.Bound != nil {
		bound = o.Bound()
	}
	snap := o.Histogram.Snapshot()
	window := snap.Delta(st.prev)
	status.Window = window.Count
	status.Bound = bound

	if bound <= 0 || o.Histogram == nil {
		// No baseline to judge against (or no instrument): unevaluable,
		// reported OK, window carried forward.
		status.OK = true
		st.fails = 0
		st.status = status
		return status
	}
	if window.Count < o.MinCount {
		// Too little traffic to judge: fold the window forward and keep
		// the previous verdict's burn state.
		status.OK = st.fails == 0
		status.Burning = st.fails >= 2
		st.status = status
		return status
	}

	status.Evaluable = true
	status.Value = window.Quantile(o.Quantile)
	status.OK = status.Value <= bound
	if status.OK {
		st.fails = 0
	} else {
		st.fails++
	}
	status.Burning = st.fails >= 2
	st.prev = snap
	st.status = status
	return status
}

// Healthy reports whether no objective is currently burning.
func (s *SLO) Healthy() bool {
	if s == nil {
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, st := range s.objs {
		if st.status.Burning {
			return false
		}
	}
	return true
}
