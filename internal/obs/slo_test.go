package obs

import "testing"

func TestSLONilSafe(t *testing.T) {
	var s *SLO
	if got := s.Eval(); got != nil {
		t.Fatalf("nil SLO eval %+v", got)
	}
	if !s.Healthy() {
		t.Fatal("nil SLO unhealthy")
	}
}

func TestSLOWindowedEvaluationAndBurn(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("serve.queue_wait_seconds")
	bound := 0.1
	slo := NewSLO(Objective{
		Name:      "queue-wait-p99",
		Histogram: h,
		Quantile:  0.99,
		Bound:     func() float64 { return bound },
		MinCount:  5,
	})

	// Too little traffic: not judged, reported OK.
	h.Observe(10)
	st := slo.Eval()[0]
	if st.Evaluable || !st.OK || st.Burning {
		t.Fatalf("under-MinCount window judged: %+v", st)
	}
	if !slo.Healthy() {
		t.Fatal("unhealthy before any judged window")
	}

	// The unfinished window folds forward: these 9 fast observations join
	// the earlier 10s outlier, so the first judged window fails.
	for i := 0; i < 9; i++ {
		h.Observe(0.001)
	}
	st = slo.Eval()[0]
	if !st.Evaluable || st.OK || st.Burning {
		t.Fatalf("first failing eval: %+v", st)
	}
	if !slo.Healthy() {
		t.Fatal("one failing eval must not burn yet")
	}

	// Second consecutive failing window: burning.
	for i := 0; i < 6; i++ {
		h.Observe(5)
	}
	st = slo.Eval()[0]
	if st.OK || !st.Burning {
		t.Fatalf("second failing eval: %+v", st)
	}
	if slo.Healthy() {
		t.Fatal("two consecutive failures must burn")
	}

	// A healthy window clears the burn immediately.
	for i := 0; i < 20; i++ {
		h.Observe(0.001)
	}
	st = slo.Eval()[0]
	if !st.OK || st.Burning {
		t.Fatalf("recovery eval: %+v", st)
	}
	if !slo.Healthy() {
		t.Fatal("burn not cleared by passing window")
	}

	// Bound collapsing to non-positive makes the objective unevaluable
	// (baseline lost), reported OK.
	bound = 0
	h.Observe(100)
	for i := 0; i < 10; i++ {
		h.Observe(100)
	}
	st = slo.Eval()[0]
	if st.Evaluable || !st.OK {
		t.Fatalf("unevaluable objective: %+v", st)
	}
}

func TestSLODynamicBound(t *testing.T) {
	reg := NewRegistry()
	cold := reg.Histogram("serve.session_cold_open_seconds")
	warm := reg.Histogram("serve.session_warm_delta_seconds")
	// The ECO SLO shape: warm p95 bounded by a tenth of the cold mean.
	slo := NewSLO(Objective{
		Name:      "warm-delta-p95",
		Histogram: warm,
		Quantile:  0.95,
		Bound: func() float64 {
			return cold.Snapshot().Mean() / 10
		},
		MinCount: 3,
	})

	// No cold opens yet: bound is 0 → unevaluable, OK.
	warm.Observe(0.5)
	warm.Observe(0.5)
	warm.Observe(0.5)
	if st := slo.Eval()[0]; st.Evaluable || !st.OK {
		t.Fatalf("no-baseline eval: %+v", st)
	}

	// Cold mean 10s → bound 1s; warm deltas ~0.5s pass.
	cold.Observe(10)
	for i := 0; i < 3; i++ {
		warm.Observe(0.5)
	}
	st := slo.Eval()[0]
	if !st.Evaluable || !st.OK {
		t.Fatalf("passing eval: %+v", st)
	}
	if st.Bound < 0.99 || st.Bound > 1.01 {
		t.Fatalf("derived bound %v, want ~1", st.Bound)
	}
}
