package obs

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer records hierarchical spans and exports them as Chrome
// trace-event JSON (the format chrome://tracing and Perfetto load
// directly). Span creation is cheap but not free, so spans mark
// coarse-grained work — a run, a stage, an optimizer call, a rebuild
// shard — while per-iteration scalars go to the metrics Registry.
//
// Every tracer belongs to one trace (a random 16-byte TraceID, or one
// adopted from an incoming traceparent header via NewTracerWith) and
// every span gets a stable 8-byte SpanID, so traces recorded in
// different processes merge into a single tree when they share a trace
// ID (see MergeChromeTraces).
//
// A nil *Tracer is valid: StartSpan returns a nil *Span whose whole
// method set is a no-op.
type Tracer struct {
	t0       time.Time
	traceID  TraceID
	parent   SpanID // remote parent adopted from traceparent; zero for local roots
	idBase   uint64
	nextSpan atomic.Uint64
	nextTID  atomic.Int64

	mu     sync.Mutex
	events []traceEvent
}

// traceEvent is one completed span, held until export.
type traceEvent struct {
	name   string
	tid    int64
	id     SpanID
	parent SpanID
	ts     time.Duration // start, relative to t0
	dur    time.Duration
	args   map[string]any
}

// rootTID is the logical thread root spans (and their non-forked
// children) render on.
const rootTID = 1

// NewTracer starts an empty tracer with a fresh random trace ID; its
// clock zero is the call time.
func NewTracer() *Tracer {
	return NewTracerWith(TraceContext{TraceID: newTraceID()})
}

// NewTracerWith starts an empty tracer that joins the trace described by
// tc: spans adopt tc.TraceID, and root spans parent under tc.SpanID (the
// caller's span in another process). A zero tc.TraceID is replaced with a
// fresh random one, so NewTracerWith(TraceContext{}) == NewTracer().
func NewTracerWith(tc TraceContext) *Tracer {
	if tc.TraceID.IsZero() {
		tc.TraceID = newTraceID()
	}
	t := &Tracer{
		t0:      time.Now(),
		traceID: tc.TraceID,
		parent:  tc.SpanID,
		idBase:  binary.BigEndian.Uint64(tc.TraceID[:8]) ^ uint64(time.Now().UnixNano()),
	}
	t.nextTID.Store(rootTID)
	return t
}

// TraceID returns the trace this tracer's spans belong to (zero for nil).
func (t *Tracer) TraceID() TraceID {
	if t == nil {
		return TraceID{}
	}
	return t.traceID
}

// newSpanID mints the next span ID for this tracer.
func (t *Tracer) newSpanID() SpanID {
	return spanIDFrom(t.idBase, t.nextSpan.Add(1))
}

// Span is one open interval of work. Spans nest by call structure: Child
// stays on the parent's logical thread, Fork opens a new one (for work
// that runs concurrently with the parent, e.g. rebuild shards). End
// commits the span to the tracer; a span must be ended exactly once, by
// the goroutine that owns it.
type Span struct {
	t      *Tracer
	name   string
	tid    int64
	id     SpanID
	parent SpanID
	start  time.Time
	args   map[string]any
}

// StartSpan opens a root span on the tracer's root thread.
func (t *Tracer) StartSpan(name string) *Span {
	return t.StartSpanAt(name, time.Now())
}

// StartSpanAt opens a root span whose start time is set explicitly. This
// lets a server record work that began before the tracer existed — e.g. a
// job span starting at submission time even though the worker's tracer is
// built at claim time.
func (t *Tracer) StartSpanAt(name string, start time.Time) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, name: name, tid: rootTID, id: t.newSpanID(), parent: t.parent, start: start}
}

// Child opens a sub-span on the same logical thread; Chrome trace viewers
// nest it under s by time containment.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{t: s.t, name: name, tid: s.tid, id: s.t.newSpanID(), parent: s.id, start: time.Now()}
}

// Fork opens a sub-span on a fresh logical thread, for work running
// concurrently with s (parallel shards would otherwise overlap on one
// thread and render garbled).
func (s *Span) Fork(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{t: s.t, name: name, tid: s.t.nextTID.Add(1), id: s.t.newSpanID(), parent: s.id, start: time.Now()}
}

// TraceContext returns the position of this span in its trace — the tuple
// to encode as a traceparent header when crossing a process boundary.
// A nil span returns the zero (invalid) context.
func (s *Span) TraceContext() TraceContext {
	if s == nil {
		return TraceContext{}
	}
	return TraceContext{TraceID: s.t.traceID, SpanID: s.id, Flags: 0x01}
}

// SetArg attaches a key/value to the span, shown in the trace viewer's
// detail pane. Call only from the goroutine that owns the span.
func (s *Span) SetArg(key string, v any) {
	if s == nil {
		return
	}
	if s.args == nil {
		s.args = make(map[string]any, 4)
	}
	s.args[key] = v
}

// End commits the span to its tracer.
func (s *Span) End() {
	if s == nil {
		return
	}
	ev := traceEvent{
		name:   s.name,
		tid:    s.tid,
		id:     s.id,
		parent: s.parent,
		ts:     s.start.Sub(s.t.t0),
		dur:    time.Since(s.start),
		args:   s.args,
	}
	s.t.mu.Lock()
	s.t.events = append(s.t.events, ev)
	s.t.mu.Unlock()
}

// RecordChild commits an already-finished child of s with an explicit
// start time and duration — for intervals measured outside the tracer's
// lifetime, like the queue wait between a job's submission and its claim
// by a worker.
func (s *Span) RecordChild(name string, start time.Time, dur time.Duration) {
	if s == nil {
		return
	}
	ev := traceEvent{
		name:   name,
		tid:    s.tid,
		id:     s.t.newSpanID(),
		parent: s.id,
		ts:     start.Sub(s.t.t0),
		dur:    dur,
		args:   nil,
	}
	s.t.mu.Lock()
	s.t.events = append(s.t.events, ev)
	s.t.mu.Unlock()
}

// Len returns the number of committed spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// chromeEvent is the exported trace-event shape ("X" = complete event,
// "M" = metadata; timestamps and durations in microseconds).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int64          `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object container variant of the format, which
// both chrome://tracing and Perfetto accept.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteJSON exports all committed spans as Chrome trace-event JSON.
// Timestamps are absolute wall-clock microseconds (Unix epoch), so traces
// recorded by different processes of the same trace align on a shared
// axis when merged. Each event carries trace_id/span_id/parent_span_id
// args identifying its position in the distributed trace.
func (t *Tracer) WriteJSON(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[],"displayTimeUnit":"ms"}`+"\n")
		return err
	}
	base := float64(t.t0.UnixMicro())
	t.mu.Lock()
	events := make([]chromeEvent, len(t.events))
	for i, ev := range t.events {
		args := make(map[string]any, len(ev.args)+3)
		for k, v := range ev.args {
			args[k] = v
		}
		args["trace_id"] = t.traceID.String()
		args["span_id"] = ev.id.String()
		if !ev.parent.IsZero() {
			args["parent_span_id"] = ev.parent.String()
		}
		events[i] = chromeEvent{
			Name: ev.name,
			Cat:  "puffer",
			Ph:   "X",
			PID:  1,
			TID:  ev.tid,
			Ts:   base + float64(ev.ts)/float64(time.Microsecond),
			Dur:  float64(ev.dur) / float64(time.Microsecond),
			Args: args,
		}
	}
	t.mu.Unlock()
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// WriteFile exports the trace to path (see WriteJSON).
func (t *Tracer) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: trace: %w", err)
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: trace: %w", err)
	}
	return f.Close()
}

// TracePart is one process's contribution to a merged trace: a label for
// the viewer's process lane and the Chrome trace JSON it exported.
type TracePart struct {
	Process string
	Data    []byte
}

// MergeChromeTraces combines per-process Chrome traces into one file: part
// i's events render under pid i+1 with a process_name metadata row, and
// because WriteJSON stamps absolute timestamps, spans from all parts share
// one time axis. Events keep their trace_id args, so a viewer (or the
// serve e2e test) can confirm the parts belong to a single trace.
func MergeChromeTraces(w io.Writer, parts ...TracePart) error {
	var out chromeTrace
	out.DisplayTimeUnit = "ms"
	for i, part := range parts {
		pid := i + 1
		var tr chromeTrace
		if err := json.Unmarshal(part.Data, &tr); err != nil {
			return fmt.Errorf("obs: merge trace %q: %w", part.Process, err)
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name",
			Ph:   "M",
			PID:  pid,
			Args: map[string]any{"name": part.Process},
		})
		for _, ev := range tr.TraceEvents {
			ev.PID = pid
			out.TraceEvents = append(out.TraceEvents, ev)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// ctxKey keys the current span in a context.
type ctxKey struct{}

// ContextWith returns ctx carrying sp as the current span. A nil span
// returns ctx unchanged (no allocation on the disabled path).
func ContextWith(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sp)
}

// FromContext returns the current span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// Start opens a span named name as a child of the context's current span
// when one is present, else as a root span on rec's tracer, and returns
// the span together with a context carrying it. With no context span and a
// nil recorder it returns (nil, ctx) without allocating.
func Start(ctx context.Context, rec *Recorder, name string) (*Span, context.Context) {
	var sp *Span
	if parent := FromContext(ctx); parent != nil {
		sp = parent.Child(name)
	} else {
		sp = rec.StartSpan(name)
	}
	return sp, ContextWith(ctx, sp)
}
