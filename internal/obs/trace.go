package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer records hierarchical spans and exports them as Chrome
// trace-event JSON (the format chrome://tracing and Perfetto load
// directly). Span creation is cheap but not free, so spans mark
// coarse-grained work — a run, a stage, an optimizer call, a rebuild
// shard — while per-iteration scalars go to the metrics Registry.
//
// A nil *Tracer is valid: StartSpan returns a nil *Span whose whole
// method set is a no-op.
type Tracer struct {
	t0      time.Time
	nextTID atomic.Int64

	mu     sync.Mutex
	events []traceEvent
}

// traceEvent is one completed span, held until export.
type traceEvent struct {
	name string
	tid  int64
	ts   time.Duration // start, relative to t0
	dur  time.Duration
	args map[string]any
}

// rootTID is the logical thread root spans (and their non-forked
// children) render on.
const rootTID = 1

// NewTracer starts an empty tracer; its clock zero is the call time.
func NewTracer() *Tracer {
	t := &Tracer{t0: time.Now()}
	t.nextTID.Store(rootTID)
	return t
}

// Span is one open interval of work. Spans nest by call structure: Child
// stays on the parent's logical thread, Fork opens a new one (for work
// that runs concurrently with the parent, e.g. rebuild shards). End
// commits the span to the tracer; a span must be ended exactly once, by
// the goroutine that owns it.
type Span struct {
	t     *Tracer
	name  string
	tid   int64
	start time.Time
	args  map[string]any
}

// StartSpan opens a root span on the tracer's root thread.
func (t *Tracer) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, name: name, tid: rootTID, start: time.Now()}
}

// Child opens a sub-span on the same logical thread; Chrome trace viewers
// nest it under s by time containment.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{t: s.t, name: name, tid: s.tid, start: time.Now()}
}

// Fork opens a sub-span on a fresh logical thread, for work running
// concurrently with s (parallel shards would otherwise overlap on one
// thread and render garbled).
func (s *Span) Fork(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{t: s.t, name: name, tid: s.t.nextTID.Add(1), start: time.Now()}
}

// SetArg attaches a key/value to the span, shown in the trace viewer's
// detail pane. Call only from the goroutine that owns the span.
func (s *Span) SetArg(key string, v any) {
	if s == nil {
		return
	}
	if s.args == nil {
		s.args = make(map[string]any, 4)
	}
	s.args[key] = v
}

// End commits the span to its tracer.
func (s *Span) End() {
	if s == nil {
		return
	}
	ev := traceEvent{
		name: s.name,
		tid:  s.tid,
		ts:   s.start.Sub(s.t.t0),
		dur:  time.Since(s.start),
		args: s.args,
	}
	s.t.mu.Lock()
	s.t.events = append(s.t.events, ev)
	s.t.mu.Unlock()
}

// Len returns the number of committed spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// chromeEvent is the exported trace-event shape ("X" = complete event;
// timestamps and durations in microseconds).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int64          `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object container variant of the format, which
// both chrome://tracing and Perfetto accept.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteJSON exports all committed spans as Chrome trace-event JSON.
func (t *Tracer) WriteJSON(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[],"displayTimeUnit":"ms"}`+"\n")
		return err
	}
	t.mu.Lock()
	events := make([]chromeEvent, len(t.events))
	for i, ev := range t.events {
		events[i] = chromeEvent{
			Name: ev.name,
			Cat:  "puffer",
			Ph:   "X",
			PID:  1,
			TID:  ev.tid,
			Ts:   float64(ev.ts) / float64(time.Microsecond),
			Dur:  float64(ev.dur) / float64(time.Microsecond),
			Args: ev.args,
		}
	}
	t.mu.Unlock()
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// WriteFile exports the trace to path (see WriteJSON).
func (t *Tracer) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: trace: %w", err)
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: trace: %w", err)
	}
	return f.Close()
}

// ctxKey keys the current span in a context.
type ctxKey struct{}

// ContextWith returns ctx carrying sp as the current span. A nil span
// returns ctx unchanged (no allocation on the disabled path).
func ContextWith(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sp)
}

// FromContext returns the current span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// Start opens a span named name as a child of the context's current span
// when one is present, else as a root span on rec's tracer, and returns
// the span together with a context carrying it. With no context span and a
// nil recorder it returns (nil, ctx) without allocating.
func Start(ctx context.Context, rec *Recorder, name string) (*Span, context.Context) {
	var sp *Span
	if parent := FromContext(ctx); parent != nil {
		sp = parent.Child(name)
	} else {
		sp = rec.StartSpan(name)
	}
	return sp, ContextWith(ctx, sp)
}
