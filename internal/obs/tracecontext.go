package obs

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"strings"
)

// TraceID is the 16-byte identity one distributed trace shares across
// processes: pufferctl mints it, the traceparent header carries it to
// pufferd, and every span the daemon and its workers record under the job
// joins the same tree.
type TraceID [16]byte

// IsZero reports whether the ID is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the ID as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// SpanID is the 8-byte identity of one span within a trace.
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the ID as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// TraceContext is the W3C trace-context tuple a request carries across a
// process boundary: which trace it belongs to, which span is the caller,
// and the sampling flags.
type TraceContext struct {
	TraceID TraceID
	SpanID  SpanID
	Flags   byte
}

// Valid reports whether the context identifies a real trace position
// (both IDs nonzero, as the W3C spec requires).
func (tc TraceContext) Valid() bool { return !tc.TraceID.IsZero() && !tc.SpanID.IsZero() }

// Traceparent encodes the context as a W3C traceparent header value:
//
//	00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01
func (tc TraceContext) Traceparent() string {
	return fmt.Sprintf("00-%s-%s-%02x", tc.TraceID, tc.SpanID, tc.Flags)
}

// TraceparentHeader is the canonical header name ("traceparent").
const TraceparentHeader = "traceparent"

// ParseTraceparent decodes a W3C traceparent header value, rejecting
// malformed input: wrong field count or width, non-hex digits, the
// reserved version ff, uppercase hex, or an all-zero trace or span ID.
func ParseTraceparent(s string) (TraceContext, error) {
	var tc TraceContext
	parts := strings.Split(s, "-")
	if len(parts) != 4 {
		return tc, fmt.Errorf("obs: traceparent %q: want 4 dash-separated fields, got %d", s, len(parts))
	}
	if len(parts[0]) != 2 || len(parts[1]) != 32 || len(parts[2]) != 16 || len(parts[3]) != 2 {
		return tc, fmt.Errorf("obs: traceparent %q: bad field widths", s)
	}
	if strings.ToLower(s) != s {
		return tc, fmt.Errorf("obs: traceparent %q: must be lowercase hex", s)
	}
	version, err := hex.DecodeString(parts[0])
	if err != nil {
		return tc, fmt.Errorf("obs: traceparent %q: bad version: %v", s, err)
	}
	if version[0] == 0xff {
		return tc, fmt.Errorf("obs: traceparent %q: version ff is reserved", s)
	}
	if _, err := hex.Decode(tc.TraceID[:], []byte(parts[1])); err != nil {
		return tc, fmt.Errorf("obs: traceparent %q: bad trace id: %v", s, err)
	}
	if _, err := hex.Decode(tc.SpanID[:], []byte(parts[2])); err != nil {
		return tc, fmt.Errorf("obs: traceparent %q: bad span id: %v", s, err)
	}
	flags, err := hex.DecodeString(parts[3])
	if err != nil {
		return tc, fmt.Errorf("obs: traceparent %q: bad flags: %v", s, err)
	}
	tc.Flags = flags[0]
	if !tc.Valid() {
		return tc, fmt.Errorf("obs: traceparent %q: zero trace or span id", s)
	}
	return tc, nil
}

// newTraceID mints a random trace ID (crypto/rand; span uniqueness across
// unrelated processes is the whole point of the ID).
func newTraceID() TraceID {
	var t TraceID
	if _, err := rand.Read(t[:]); err != nil {
		panic(fmt.Sprintf("obs: crypto/rand unavailable: %v", err))
	}
	return t
}

// splitmix64 is the finalizer of the SplitMix64 generator: a cheap,
// high-quality 64-bit mix used to derive span IDs from a per-tracer
// random base and a counter without touching crypto/rand per span.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// spanIDFrom derives the n-th span ID of a tracer from its random base.
// The result is never zero (zero is the invalid ID).
func spanIDFrom(base, n uint64) SpanID {
	v := splitmix64(base + n)
	if v == 0 {
		v = 1
	}
	var s SpanID
	binary.BigEndian.PutUint64(s[:], v)
	return s
}
