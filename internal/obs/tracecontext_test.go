package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tr := NewTracer()
	sp := tr.StartSpan("client.submit")
	tc := sp.TraceContext()
	if !tc.Valid() {
		t.Fatalf("span context invalid: %+v", tc)
	}
	header := tc.Traceparent()
	// Shape: 00-<32 hex>-<16 hex>-01.
	parts := strings.Split(header, "-")
	if len(parts) != 4 || len(parts[1]) != 32 || len(parts[2]) != 16 {
		t.Fatalf("bad traceparent %q", header)
	}
	got, err := ParseTraceparent(header)
	if err != nil {
		t.Fatalf("ParseTraceparent(%q): %v", header, err)
	}
	if got != tc {
		t.Fatalf("round trip: got %+v want %+v", got, tc)
	}
	sp.End()
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",       // 3 fields
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-00", // 5 fields
		"00-4bf92f3577b34da6a3ce929d0e0e47-00f067aa0ba902b7-01",      // short trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902-01",      // short span id
		"00-4bf92f3577b34da6a3ce929d0e0e473g-00f067aa0ba902b7-01",    // non-hex trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902bg-01",    // non-hex span id
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",    // uppercase
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",    // reserved version
		"zz-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",    // non-hex version
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",    // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",    // zero span id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-xx",    // non-hex flags
	}
	for _, s := range bad {
		if _, err := ParseTraceparent(s); err == nil {
			t.Errorf("ParseTraceparent(%q) accepted malformed header", s)
		}
	}
	good := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	tc, err := ParseTraceparent(good)
	if err != nil {
		t.Fatalf("ParseTraceparent(%q): %v", good, err)
	}
	if tc.TraceID.String() != "4bf92f3577b34da6a3ce929d0e0e4736" ||
		tc.SpanID.String() != "00f067aa0ba902b7" || tc.Flags != 0x01 {
		t.Fatalf("parsed %+v", tc)
	}
}

// TestTracerAdoptsRemoteContext covers the propagation contract: a tracer
// built from an incoming traceparent keeps the caller's trace ID and
// parents its root spans under the caller's span.
func TestTracerAdoptsRemoteContext(t *testing.T) {
	client := NewTracer()
	clientSpan := client.StartSpan("client.submit")
	tc := clientSpan.TraceContext()

	server := NewTracerWith(tc)
	if server.TraceID() != client.TraceID() {
		t.Fatalf("server trace id %s != client %s", server.TraceID(), client.TraceID())
	}
	job := server.StartSpanAt("serve.job", time.Now().Add(-time.Second))
	if got := job.TraceContext().TraceID; got != tc.TraceID {
		t.Fatalf("job span trace id %s", got)
	}
	if job.parent != tc.SpanID {
		t.Fatalf("root span parent %s, want remote %s", job.parent, tc.SpanID)
	}
	child := job.Child("place.gp")
	if child.parent != job.id {
		t.Fatal("child does not parent under job span")
	}
	child.End()
	// Retroactive child: the queue wait measured before the tracer existed.
	job.RecordChild("serve.queue_wait", time.Now().Add(-900*time.Millisecond), 800*time.Millisecond)
	job.End()
	clientSpan.End()

	var buf bytes.Buffer
	if err := server.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("%d events, want 3", len(doc.TraceEvents))
	}
	byName := map[string]map[string]any{}
	for _, ev := range doc.TraceEvents {
		byName[ev.Name] = ev.Args
		if ev.Args["trace_id"] != tc.TraceID.String() {
			t.Fatalf("event %s trace_id %v, want %s", ev.Name, ev.Args["trace_id"], tc.TraceID)
		}
		// Absolute timestamps: within a day of now (in µs since epoch).
		if now := float64(time.Now().UnixMicro()); ev.Ts < now-8.64e10 || ev.Ts > now+8.64e10 {
			t.Fatalf("event %s ts %v not absolute wall clock", ev.Name, ev.Ts)
		}
	}
	if byName["serve.job"]["parent_span_id"] != tc.SpanID.String() {
		t.Fatalf("serve.job parent %v, want %s", byName["serve.job"]["parent_span_id"], tc.SpanID)
	}
	jobID := byName["serve.job"]["span_id"]
	if byName["place.gp"]["parent_span_id"] != jobID || byName["serve.queue_wait"]["parent_span_id"] != jobID {
		t.Fatalf("children do not parent under serve.job: %v", byName)
	}
}

func TestSpanIDsUniqueAndNonzero(t *testing.T) {
	tr := NewTracer()
	seen := map[SpanID]bool{}
	root := tr.StartSpan("root")
	for i := 0; i < 1000; i++ {
		sp := root.Child("c")
		if sp.id.IsZero() {
			t.Fatal("zero span id")
		}
		if seen[sp.id] {
			t.Fatalf("duplicate span id %s", sp.id)
		}
		seen[sp.id] = true
	}
}

func TestMergeChromeTraces(t *testing.T) {
	client := NewTracer()
	csp := client.StartSpan("client.submit")
	server := NewTracerWith(csp.TraceContext())
	ssp := server.StartSpan("serve.job")
	ssp.End()
	csp.End()

	var cbuf, sbuf bytes.Buffer
	if err := client.WriteJSON(&cbuf); err != nil {
		t.Fatal(err)
	}
	if err := server.WriteJSON(&sbuf); err != nil {
		t.Fatal(err)
	}
	var merged bytes.Buffer
	err := MergeChromeTraces(&merged,
		TracePart{Process: "pufferctl", Data: cbuf.Bytes()},
		TracePart{Process: "pufferd", Data: sbuf.Bytes()},
	)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			PID  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(merged.Bytes(), &doc); err != nil {
		t.Fatalf("merged trace invalid: %v\n%s", err, merged.String())
	}
	// 2 metadata + 2 spans; every span shares one trace id but sits in its
	// own process lane.
	traceIDs := map[any]bool{}
	pids := map[int]bool{}
	var metas int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			metas++
			if ev.Name != "process_name" {
				t.Fatalf("bad metadata event %+v", ev)
			}
		case "X":
			traceIDs[ev.Args["trace_id"]] = true
			pids[ev.PID] = true
		}
	}
	if metas != 2 || len(traceIDs) != 1 || len(pids) != 2 {
		t.Fatalf("metas=%d traceIDs=%v pids=%v", metas, traceIDs, pids)
	}

	// Malformed input is rejected, not silently dropped.
	if err := MergeChromeTraces(&bytes.Buffer{}, TracePart{Process: "x", Data: []byte("{")}); err == nil {
		t.Fatal("merged malformed trace")
	}
}
