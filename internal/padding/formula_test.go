package padding

import (
	"math"
	"testing"
	"testing/quick"

	"puffer/internal/feature"
)

// TestEq14PaddingFormula pins the padding formula against hand-computed
// values by injecting synthetic features through a bare optimizer.
func TestEq14PaddingFormula(t *testing.T) {
	// Pad(c) = log(max(Σ α·f + β, 1))·μ
	cases := []struct {
		raw  float64 // Σ α·f + β
		mu   float64
		want float64
	}{
		{0.5, 1, 0},                 // below 1: log(1) = 0
		{1.0, 1, 0},                 // exactly 1
		{math.E, 1, 1},              // log(e) = 1
		{math.E * math.E, 0.5, 1.0}, // 2·0.5
		{-3, 2, 0},                  // negative clamps at 1
	}
	for _, c := range cases {
		got := math.Log(math.Max(c.raw, 1)) * c.mu
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Pad(raw=%v, mu=%v) = %v, want %v", c.raw, c.mu, got, c.want)
		}
	}
}

// Property: the recycle rate of Eq. 15 is within [0, 1] after clamping and
// decreases with pad history.
func TestEq15RecycleRateProperties(t *testing.T) {
	f := func(iterRaw, ptRaw uint8, zetaRaw float64) bool {
		i := int(iterRaw%50) + 1
		pt := int(ptRaw) % (i + 1)
		zeta := math.Abs(zetaRaw)
		if math.IsNaN(zeta) || math.IsInf(zeta, 0) {
			zeta = 1
		}
		zeta = math.Mod(zeta, 100) + 0.01
		r := (float64(i) - float64(pt)) / (float64(i) + zeta)
		if r < 0 {
			r = 0
		} else if r > 1 {
			r = 1
		}
		if r < 0 || r > 1 {
			return false
		}
		// More history → lower recycle rate.
		if pt+1 <= i {
			r2 := (float64(i) - float64(pt+1)) / (float64(i) + zeta)
			if r2 > r {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestEq16UtilizationEndpoints pins the schedule at the first and last
// optimizer calls.
func TestEq16UtilizationEndpoints(t *testing.T) {
	d := hotColdDesign()
	s := strategyForTest()
	s.PuLow, s.PuHigh = 0.03, 0.21
	s.MaxIters = 7
	s.Eta = 10 // never block
	s.Tau = 10
	s.CooldownIters = 0
	o := NewOptimizer(d, 8, 8, s)
	var infos []RunInfo
	for i := 0; i < 7; i++ {
		infos = append(infos, o.Run())
	}
	if got := infos[0].TargetUtil; math.Abs(got-0.03) > 1e-12 {
		t.Errorf("first TargetUtil = %v, want PuLow", got)
	}
	if got := infos[6].TargetUtil; math.Abs(got-0.21) > 1e-12 {
		t.Errorf("last TargetUtil = %v, want PuHigh", got)
	}
	// Evenly spaced.
	for k := 1; k < 7; k++ {
		step := infos[k].TargetUtil - infos[k-1].TargetUtil
		if math.Abs(step-0.03) > 1e-12 {
			t.Errorf("schedule step %d = %v, want 0.03", k, step)
		}
	}
}

// TestSingleIterScheduleDegenerate: MaxIters == 1 must not divide by zero.
func TestSingleIterScheduleDegenerate(t *testing.T) {
	d := hotColdDesign()
	s := strategyForTest()
	s.MaxIters = 1
	o := NewOptimizer(d, 8, 8, s)
	info := o.Run()
	if math.IsNaN(info.TargetUtil) || math.IsInf(info.TargetUtil, 0) {
		t.Fatalf("TargetUtil = %v", info.TargetUtil)
	}
	if info.TargetUtil != s.PuLow {
		t.Errorf("TargetUtil = %v, want PuLow", info.TargetUtil)
	}
}

// TestFeatureWeightVectorLength guards against the Strategy/feature.Count
// drifting apart.
func TestFeatureWeightVectorLength(t *testing.T) {
	s := DefaultStrategy()
	if len(s.Weights) != feature.Count {
		t.Fatalf("weights = %d, features = %d", len(s.Weights), feature.Count)
	}
}
