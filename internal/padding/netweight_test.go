package padding

import (
	"testing"

	"puffer/internal/netlist"
)

func TestNetWeightingDisabledByDefault(t *testing.T) {
	d := hotColdDesign()
	s := strategyForTest()
	if s.NetWeightGain != 0 {
		t.Fatal("test assumes gain defaults to 0")
	}
	o := NewOptimizer(d, 8, 8, s)
	o.Run()
	for n := range d.Nets {
		if d.Nets[n].Weight != 1 {
			t.Fatalf("net %d weight changed to %v with gain 0", n, d.Nets[n].Weight)
		}
	}
}

func TestNetWeightingRaisesCongestedNets(t *testing.T) {
	d := hotColdDesign()
	// Add a calm two-pin net in the far corner, away from the cluster.
	c1 := d.AddCell(netlist.Cell{W: 0.4, H: 1, X: 26, Y: 26})
	c2 := d.AddCell(netlist.Cell{W: 0.4, H: 1, X: 27, Y: 26})
	calm := d.AddNet("calm", 1)
	d.Connect(c1, calm, 0.2, 0.5)
	d.Connect(c2, calm, 0.2, 0.5)

	s := strategyForTest()
	s.NetWeightGain = 0.5
	o := NewOptimizer(d, 8, 8, s)
	o.Run()

	raised, baseline := 0, 0
	for n := range d.Nets {
		w := d.Nets[n].Weight
		if w < 1-1e-12 {
			t.Fatalf("net %d weight %v below 1", n, w)
		}
		if w > 1+1e-12 {
			raised++
		} else {
			baseline++
		}
		if w > 1+0.5*2+1e-12 {
			t.Fatalf("net %d weight %v above cap", n, w)
		}
	}
	if raised == 0 {
		t.Error("no nets re-weighted in a congested design")
	}
	if baseline == 0 {
		t.Error("every net re-weighted; expected slack nets to stay at 1")
	}
}

func TestNetWeightingRecomputedNotAccumulated(t *testing.T) {
	d := hotColdDesign()
	s := strategyForTest()
	s.NetWeightGain = 0.5
	s.Eta = 10
	o := NewOptimizer(d, 8, 8, s)
	o.Run()
	first := make([]float64, len(d.Nets))
	for n := range d.Nets {
		first[n] = d.Nets[n].Weight
	}
	// Second run with unchanged placement: weights recomputed from the
	// same map, so they must not grow multiplicatively.
	o.Run()
	for n := range d.Nets {
		if d.Nets[n].Weight > first[n]*1.5+1e-9 {
			t.Fatalf("net %d weight accumulated: %v -> %v", n, first[n], d.Nets[n].Weight)
		}
	}
}
