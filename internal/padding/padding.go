// Package padding implements the multi-feature cell padding system of the
// paper (Sec. III-B): the padding formula of Eq. 14 over the extracted
// features, the padding-history-aware recycling of Eq. 15, the utilization
// schedule of Eq. 16, the trigger conditions (τ, η, ξ) that decide when the
// routability optimizer runs, and the Algorithm-1 driver that ties them
// together. Padding mutates netlist.Cell.PadW, which the density model and
// the legalizer both consume — the "consistent cell padding" contribution.
package padding

import (
	"context"
	"fmt"
	"math"

	"puffer/internal/cong"
	"puffer/internal/feature"
	"puffer/internal/flow"
	"puffer/internal/netlist"
	"puffer/internal/obs"
)

// Smoothing selects the transfer function applied to the weighted feature
// sum in Eq. 14. The paper uses the logarithm "to smooth the distribution
// of padding values"; the alternatives implement the "more optional
// strategies" extension of Sec. V and are selectable as a categorical
// strategy parameter in the exploration.
type Smoothing int

// Padding smoothing functions.
const (
	// SmoothLog is the paper's log(max(x, 1)) (Eq. 14).
	SmoothLog Smoothing = iota
	// SmoothLinear is max(x-1, 0): proportional padding above threshold.
	SmoothLinear
	// SmoothSqrt is sqrt(max(x-1, 0)): between the two.
	SmoothSqrt
)

// SmoothingNames lists the choices for categorical exploration.
var SmoothingNames = []string{"log", "linear", "sqrt"}

// Apply evaluates the smoothing transfer function.
func (s Smoothing) Apply(x float64) float64 {
	switch s {
	case SmoothLinear:
		return math.Max(x-1, 0)
	case SmoothSqrt:
		return math.Sqrt(math.Max(x-1, 0))
	default:
		return math.Log(math.Max(x, 1))
	}
}

// Strategy bundles every strategy parameter of the routability optimizer.
// All of them are searchable by the Bayesian strategy exploration
// (Sec. III-C); the defaults are the hand-tuned starting point.
type Strategy struct {
	// Weights are the α_i of Eq. 14, one per feature in feature order.
	Weights [feature.Count]float64
	// Beta is the β offset and Mu the μ scale of Eq. 14. Mu converts the
	// dimensionless log term into design units of width.
	Beta, Mu float64
	// Smooth selects the Eq.-14 transfer function (log in the paper).
	Smooth Smoothing
	// Zeta is the ζ of the recycle-rate formula (Eq. 15).
	Zeta float64
	// PuLow and PuHigh bound the padding utilization schedule (Eq. 16).
	PuLow, PuHigh float64
	// Tau is the density-overflow trigger threshold τ (Sec. III-B3).
	Tau float64
	// Eta is the utilization convergence threshold η: the optimizer is
	// re-armed only while total padding utilization stays below it.
	Eta float64
	// MaxIters is ξ, the maximum number of routability-optimizer calls.
	MaxIters int
	// CooldownIters is the minimum number of global-placement iterations
	// between optimizer calls, so the engine can absorb each padding round
	// before the next congestion estimate (otherwise all ξ calls fire on
	// consecutive iterations against the same, still-clustered placement).
	CooldownIters int

	// Cong and Feat forward the estimator and extractor strategy knobs.
	Cong cong.Params
	Feat feature.Params

	// Theta is the θ of the legalization discretization staircase
	// (Eq. 17); it lives here so one Strategy describes the whole flow.
	Theta float64

	// NetWeightGain enables the optional congestion-aware net-weighting
	// strategy (in the spirit of the net-penalty model of Lin et al.,
	// cited as [13] by the paper): nets whose pins sit in congested
	// Gcells get their wirelength weight raised to 1 + gain·Cg so the
	// engine pulls them out of the hotspot. Zero disables it; the
	// strategy exploration may turn it on.
	NetWeightGain float64
}

// DefaultStrategy returns the hand-tuned defaults used before (or without)
// strategy exploration.
func DefaultStrategy() Strategy {
	// These values come from the Bayesian strategy exploration
	// (Sec. III-C / cmd/explore) run on a small routability-challenged
	// design, exactly as the paper prescribes; they are applied unchanged
	// to every benchmark.
	c := cong.DefaultParams()
	c.PinPenalty = 0.12
	c.ExpandRadius = 4
	c.TransferRatio = 0.75
	f := feature.DefaultParams()
	f.KernelMargin = 1
	return Strategy{
		Weights: [feature.Count]float64{
			1.9,  // local congestion
			0.75, // local pin density
			0.7,  // surrounding congestion
			1.1,  // surrounding pin density
			0.3,  // pin congestion
		},
		// A near-zero offset keeps the padding selective: only cells whose
		// weighted congestion view is genuinely hot clear the log
		// threshold of Eq. 14.
		Beta:          0.0,
		Mu:            1.2,
		Zeta:          0.8,
		PuLow:         0.02,
		PuHigh:        0.14,
		Tau:           0.18,
		Eta:           0.10,
		MaxIters:      10,
		CooldownIters: 35,
		Cong:          c,
		Feat:          f,
		Theta:         6,
	}
}

// RunInfo reports what one optimizer invocation did.
type RunInfo struct {
	Iter        int     // 1-based call index
	PaddedCells int     // cells that received new padding
	Recycled    int     // cells whose padding was recycled
	AddedArea   float64 // padding area added this round (before capping)
	TotalArea   float64 // total padding area after capping
	Utilization float64 // TotalArea / free placement area
	TargetUtil  float64 // pu_i of Eq. 16
	Scaled      bool    // whether the utilization cap forced scaling
	EstHOF      float64 // estimated horizontal overflow ratio (%)
	EstVOF      float64 // estimated vertical overflow ratio (%)
}

// Optimizer is the routability optimizer invoked from global placement
// (Algorithm 1). It owns the congestion estimator and the padding history.
type Optimizer struct {
	d *netlist.Design
	S Strategy

	iter        int   // completed calls
	padTimes    []int // pt(c): how many rounds padded each cell
	lastUtil    float64
	freeArea    float64
	lastTrigger int // GP iteration of the previous Run

	est *cong.Estimator

	// LastMap and LastFeatures expose the most recent estimation for
	// logging and the legalization stage's padding-history-aware guidance.
	LastMap      *cong.Map
	LastFeatures *feature.Set

	// Telemetry instruments (SetObs); nil — and inert — by default.
	rec     *obs.Recorder
	sUtil   *obs.Series
	sTarget *obs.Series
	sPadded *obs.Series
	sHOF    *obs.Series
	sVOF    *obs.Series
	cRuns   *obs.Counter
}

// NewOptimizer creates an optimizer over a gridW×gridH Gcell congestion
// grid for d.
func NewOptimizer(d *netlist.Design, gridW, gridH int, s Strategy) *Optimizer {
	return &Optimizer{
		d:        d,
		S:        s,
		padTimes: make([]int, len(d.Cells)),
		freeArea: d.Stats().FreeArea,
		est:      cong.NewEstimator(d, gridW, gridH, s.Cong),
	}
}

// Iter returns the number of completed optimizer calls.
func (o *Optimizer) Iter() int { return o.iter }

// SetObs attaches telemetry to the optimizer and its congestion estimator:
// each RunCtx call opens a "padding.run" span (child of the context's
// current span, so it nests under the placement stage), with estimator and
// feature-extraction spans as children, and publishes the RunInfo scalars
// as per-call series. A nil recorder keeps everything disabled.
func (o *Optimizer) SetObs(rec *obs.Recorder) {
	o.rec = rec
	o.sUtil = rec.Series("padding.utilization")
	o.sTarget = rec.Series("padding.target_util")
	o.sPadded = rec.Series("padding.padded_cells")
	o.sHOF = rec.Series("padding.est_hof")
	o.sVOF = rec.Series("padding.est_vof")
	o.cRuns = rec.Counter("padding.runs")
	o.est.SetObs(rec)
}

// ShouldTrigger evaluates the trigger conditions of Sec. III-B3 at global
// placement iteration gpIter: the cells have spread enough (overflow < τ),
// the accumulated padding utilization is still converging (below η), the
// call budget ξ is not exhausted, and the previous round has had
// CooldownIters of placement to be absorbed.
func (o *Optimizer) ShouldTrigger(gpIter int, densityOverflow float64) bool {
	if densityOverflow >= o.S.Tau {
		return false
	}
	if o.iter > 0 && o.lastUtil >= o.S.Eta {
		return false
	}
	if o.iter > 0 && gpIter-o.lastTrigger < o.S.CooldownIters {
		return false
	}
	if o.iter >= o.S.MaxIters {
		return false
	}
	o.lastTrigger = gpIter
	return true
}

// Run executes Algorithm 1: estimate congestion, extract features, compute
// incremental padding (Eq. 14), recycle stale padding (Eq. 15), and cap
// total padding to the scheduled utilization (Eq. 16). Cell PadW fields
// are updated in place.
func (o *Optimizer) Run() RunInfo {
	info, _ := o.RunCtx(context.Background())
	return info
}

// RunCtx is Run with cancellation: the context is checked on entry and
// after the (parallel, itself cancelable) feature extraction, before any
// cell padding is mutated. A canceled call therefore leaves every PadW
// untouched and returns an error wrapping flow.ErrCanceled; the call does
// not count against the ξ budget.
func (o *Optimizer) RunCtx(ctx context.Context) (RunInfo, error) {
	if err := flow.Check(ctx); err != nil {
		return RunInfo{}, err
	}
	sp, ctx := obs.Start(ctx, o.rec, "padding.run")
	defer sp.End()
	o.iter++
	i := o.iter
	info := RunInfo{Iter: i}
	sp.SetArg("call", i)

	cm, err := o.est.EstimateCtx(ctx)
	if err != nil {
		// Roll the call back: the estimator rebuilds itself on the next
		// call and no padding was touched.
		o.iter--
		return RunInfo{}, err
	}
	o.LastMap = cm
	info.EstHOF, info.EstVOF = cm.OverflowRatios()
	feats, err := feature.ExtractCtx(ctx, o.d, cm, o.est.Trees, o.S.Feat)
	if err != nil {
		// Roll the call back: no padding was touched yet.
		o.iter--
		return RunInfo{}, err
	}
	o.LastFeatures = feats

	// Eq. 14 per movable cell, applied incrementally on top of the
	// preceding rounds (Sec. III-B3).
	for ci := range o.d.Cells {
		c := &o.d.Cells[ci]
		if c.Fixed {
			continue
		}
		raw := o.S.Beta
		for f := 0; f < feature.Count; f++ {
			raw += o.S.Weights[f] * feats.Vec[ci][f]
		}
		pad := o.S.Smooth.Apply(raw) * o.S.Mu
		if pad > 0 {
			c.PadW += pad
			o.padTimes[ci]++
			info.PaddedCells++
			info.AddedArea += pad * c.H
			continue
		}
		// Recycle: withdraw part of the historical padding for cells that
		// have moved away from congestion (Eq. 15).
		if c.PadW > 0 {
			r := (float64(i) - float64(o.padTimes[ci])) / (float64(i) + o.S.Zeta)
			if r < 0 {
				r = 0
			} else if r > 1 {
				r = 1
			}
			c.PadW *= 1 - r
			info.Recycled++
		}
	}

	// Utilization control (Eq. 16): linear ramp from PuLow to PuHigh over
	// the ξ optimizer calls, clamped at PuHigh — an ECO session drives
	// RunCtx past MaxIters calls across deltas, and the ramp must saturate
	// rather than extrapolate the budget open-endedly.
	target := o.S.PuLow
	if o.S.MaxIters > 1 {
		target += float64(i-1) / float64(o.S.MaxIters-1) * (o.S.PuHigh - o.S.PuLow)
	}
	if target > o.S.PuHigh {
		target = o.S.PuHigh
	}
	info.TargetUtil = target

	total := o.d.TotalPaddingArea()
	if cap := target * o.freeArea; total > cap && total > 0 {
		sr := cap / total
		for ci := range o.d.Cells {
			if !o.d.Cells[ci].Fixed {
				o.d.Cells[ci].PadW *= sr
			}
		}
		total = cap
		info.Scaled = true
	}
	info.TotalArea = total
	info.Utilization = total / o.freeArea
	o.lastUtil = info.Utilization

	if o.S.NetWeightGain > 0 {
		o.reweightNets(cm)
	}
	o.cRuns.Inc()
	o.sUtil.Observe(i, info.Utilization)
	o.sTarget.Observe(i, info.TargetUtil)
	o.sPadded.Observe(i, float64(info.PaddedCells))
	o.sHOF.Observe(i, info.EstHOF)
	o.sVOF.Observe(i, info.EstVOF)
	if sp != nil {
		sp.SetArg("padded_cells", info.PaddedCells)
		sp.SetArg("utilization", info.Utilization)
	}
	return info, nil
}

// reweightNets applies the optional congestion-aware net weighting: each
// net's weight is recomputed (not accumulated) from the worst congestion
// its pins currently sit in.
func (o *Optimizer) reweightNets(cm *cong.Map) {
	for n := range o.d.Nets {
		net := &o.d.Nets[n]
		if len(net.Pins) < 2 {
			continue
		}
		worst := math.Inf(-1)
		for _, pid := range net.Pins {
			i, j := cm.GcellOf(o.d.PinPos(pid))
			if v := cm.Cg(cm.Index(i, j)); v > worst {
				worst = v
			}
		}
		w := 1.0
		if worst > 0 {
			w += o.S.NetWeightGain * math.Min(worst, 2)
		}
		net.Weight = w
	}
}

// Estimator exposes the optimizer's congestion estimator, which the
// legalization stage reuses for padding-history-aware guidance.
func (o *Optimizer) Estimator() *cong.Estimator { return o.est }

// PadTimes returns pt(c) for cell c.
func (o *Optimizer) PadTimes(c int) int { return o.padTimes[c] }

// ReArm readies a long-lived optimizer for the next ECO delta: the
// GP-iteration cooldown anchor is cleared (warm re-placements restart
// their iteration count at 1, so a stale absolute lastTrigger would block
// in-loop triggering forever) and the free area is remeasured (a delta may
// have resized fixed cells). Padding history — iter, pt(c), lastUtil — is
// deliberately kept: Eq. 15 recycling depends on it.
func (o *Optimizer) ReArm() {
	o.lastTrigger = 0
	o.freeArea = o.d.Stats().FreeArea
}

// State is the optimizer's serializable padding history, captured for
// session snapshots. Everything else an Optimizer owns (the congestion
// estimator's journal, cached features) is a pure cache rebuilt on the
// next estimate; these three fields are the only state that changes
// results if lost.
type State struct {
	Iter     int     `json:"iter"`
	PadTimes []int   `json:"pad_times"`
	LastUtil float64 `json:"last_util"`
}

// State captures the padding history for a snapshot.
func (o *Optimizer) State() State {
	return State{
		Iter:     o.iter,
		PadTimes: append([]int(nil), o.padTimes...),
		LastUtil: o.lastUtil,
	}
}

// RestoreState re-installs a captured padding history, as when rehydrating
// a parked ECO session. The PadTimes length must match the design's cell
// count.
func (o *Optimizer) RestoreState(s State) error {
	if len(s.PadTimes) != len(o.d.Cells) {
		return fmt.Errorf("padding: state has %d pad_times for %d cells",
			len(s.PadTimes), len(o.d.Cells))
	}
	o.iter = s.Iter
	o.lastUtil = s.LastUtil
	copy(o.padTimes, s.PadTimes)
	return nil
}
