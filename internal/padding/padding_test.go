package padding

import (
	"math"
	"testing"

	"puffer/internal/feature"
	"puffer/internal/geom"
	"puffer/internal/netlist"
)

// hotColdDesign has a dense cluster of connected cells in one corner (which
// will be congested) and one isolated cell far away.
func hotColdDesign() *netlist.Design {
	d := &netlist.Design{
		Name:      "hc",
		Region:    geom.RectWH(0, 0, 32, 32),
		RowHeight: 1,
		SiteWidth: 0.2,
		// Sparse stack: ~2 tracks per direction per 4x4 Gcell, so the
		// clustered corner genuinely overflows.
		Layers: []netlist.Layer{
			{Name: "M1", Dir: netlist.Horizontal, Width: 1, Spacing: 1},
			{Name: "M2", Dir: netlist.Vertical, Width: 1, Spacing: 1},
		},
	}
	// 30 cells crammed into a 4x4 corner with dense interconnect.
	for k := 0; k < 30; k++ {
		x := 0.5 + float64(k%6)*0.5
		y := 0.5 + float64(k/6)*0.7
		d.AddCell(netlist.Cell{W: 0.4, H: 1, X: x, Y: y})
	}
	for k := 0; k+2 < 30; k++ {
		n := d.AddNet("", 1)
		d.Connect(k, n, 0.1, 0.5)
		d.Connect(k+1, n, 0.1, 0.5)
		d.Connect(k+2, n, 0.1, 0.5)
	}
	// Long nets crossing the hot rows amplify horizontal demand.
	far := d.AddCell(netlist.Cell{Name: "far", W: 0.4, H: 1, X: 28, Y: 1})
	for k := 0; k < 10; k++ {
		n := d.AddNet("", 1)
		d.Connect(k, n, 0.1, 0.5)
		d.Connect(far, n, 0.1, 0.5)
	}
	// Isolated, unconnected cell in the calm corner.
	d.AddCell(netlist.Cell{Name: "cold", W: 0.4, H: 1, X: 28, Y: 28})
	return d
}

func strategyForTest() Strategy {
	s := DefaultStrategy()
	s.Mu = 0.5
	return s
}

func TestRunPadsCongestedCells(t *testing.T) {
	d := hotColdDesign()
	o := NewOptimizer(d, 8, 8, strategyForTest())
	info := o.Run()
	if info.Iter != 1 {
		t.Errorf("Iter = %d, want 1", info.Iter)
	}
	if info.PaddedCells == 0 {
		t.Fatal("no cells padded in a congested design")
	}
	hot := d.Cells[0].PadW
	cold := d.Cells[len(d.Cells)-1].PadW
	if hot <= cold {
		t.Errorf("hot cell pad %v <= cold cell pad %v", hot, cold)
	}
	for i := range d.Cells {
		if d.Cells[i].PadW < 0 {
			t.Fatalf("cell %d negative padding %v", i, d.Cells[i].PadW)
		}
		if d.Cells[i].Fixed && d.Cells[i].PadW != 0 {
			t.Fatalf("fixed cell %d padded", i)
		}
	}
}

func TestUtilizationCapScalesPadding(t *testing.T) {
	d := hotColdDesign()
	s := strategyForTest()
	s.Mu = 50 // absurd padding to force the cap
	s.PuLow, s.PuHigh = 0.01, 0.01
	o := NewOptimizer(d, 8, 8, s)
	info := o.Run()
	if !info.Scaled {
		t.Fatal("cap did not engage despite huge Mu")
	}
	if info.Utilization > 0.0100001 {
		t.Errorf("utilization %v exceeds cap 0.01", info.Utilization)
	}
	if math.Abs(info.TotalArea-d.TotalPaddingArea()) > 1e-9 {
		t.Errorf("reported TotalArea %v != actual %v", info.TotalArea, d.TotalPaddingArea())
	}
}

func TestUtilizationScheduleRamps(t *testing.T) {
	d := hotColdDesign()
	s := strategyForTest()
	s.MaxIters = 5
	s.PuLow, s.PuHigh = 0.02, 0.10
	o := NewOptimizer(d, 8, 8, s)
	prev := -1.0
	for i := 1; i <= 5; i++ {
		info := o.Run()
		want := 0.02 + float64(i-1)/4.0*0.08
		if math.Abs(info.TargetUtil-want) > 1e-12 {
			t.Errorf("iter %d TargetUtil = %v, want %v", i, info.TargetUtil, want)
		}
		if info.TargetUtil <= prev {
			t.Errorf("schedule not increasing at iter %d", i)
		}
		prev = info.TargetUtil
	}
}

func TestRecyclingShrinksStalePadding(t *testing.T) {
	d := hotColdDesign()
	s := strategyForTest()
	o := NewOptimizer(d, 8, 8, s)
	o.Run()
	cold := len(d.Cells) - 1
	// Force stale padding on the cold cell and pretend it was padded once
	// long ago.
	d.Cells[cold].PadW = 2.0
	before := d.Cells[cold].PadW
	o.Run()
	after := d.Cells[cold].PadW
	if after >= before {
		t.Errorf("stale padding not recycled: %v -> %v", before, after)
	}
	if after < 0 {
		t.Errorf("recycling went negative: %v", after)
	}
}

func TestRecycleRateFollowsHistory(t *testing.T) {
	// Two cells with identical stale padding, different pad history: the
	// cell padded more often keeps more (Eq. 15).
	d := hotColdDesign()
	s := strategyForTest()
	s.Mu = 0.0001 // effectively no new padding
	s.Beta = -100 // force every cell onto the recycle path
	o := NewOptimizer(d, 8, 8, s)
	a, b := 0, 1
	d.Cells[a].PadW = 1
	d.Cells[b].PadW = 1
	o.padTimes[a] = 0
	o.padTimes[b] = 3
	o.iter = 4 // pretend we are at iteration 5
	o.Run()
	if !(d.Cells[b].PadW > d.Cells[a].PadW) {
		t.Errorf("history-heavy cell kept %v, light cell kept %v; want heavy > light",
			d.Cells[b].PadW, d.Cells[a].PadW)
	}
}

func TestShouldTriggerConditions(t *testing.T) {
	d := hotColdDesign()
	s := strategyForTest()
	s.Tau = 0.15
	s.Eta = 0.08
	s.MaxIters = 2
	s.CooldownIters = 10
	o := NewOptimizer(d, 8, 8, s)

	if o.ShouldTrigger(100, 0.20) {
		t.Error("triggered with overflow above tau")
	}
	if !o.ShouldTrigger(100, 0.10) {
		t.Error("did not trigger with overflow below tau on first call")
	}
	o.Run()
	// Cooldown: a call right after the previous trigger is blocked.
	o.lastUtil = 0.01
	if o.ShouldTrigger(105, 0.10) {
		t.Error("triggered during cooldown")
	}
	// Simulate heavy accumulated padding: utilization >= eta blocks.
	o.lastUtil = 0.10
	if o.ShouldTrigger(150, 0.10) {
		t.Error("triggered despite utilization above eta")
	}
	o.lastUtil = 0.01
	if !o.ShouldTrigger(150, 0.10) {
		t.Error("did not trigger with low utilization")
	}
	o.Run()
	if o.ShouldTrigger(300, 0.0) {
		t.Error("triggered beyond MaxIters")
	}
	if o.Iter() != 2 {
		t.Errorf("Iter = %d, want 2", o.Iter())
	}
}

func TestIncrementalPaddingAccumulates(t *testing.T) {
	d := hotColdDesign()
	s := strategyForTest()
	s.PuHigh = 1.0 // no cap interference
	s.PuLow = 1.0
	s.Eta = 10
	o := NewOptimizer(d, 8, 8, s)
	o.Run()
	first := d.Cells[0].PadW
	o.Run()
	second := d.Cells[0].PadW
	if first <= 0 {
		t.Skip("cell 0 not padded in this configuration")
	}
	if second <= first {
		t.Errorf("padding did not accumulate: %v -> %v", first, second)
	}
	if o.PadTimes(0) != 2 {
		t.Errorf("PadTimes = %d, want 2", o.PadTimes(0))
	}
}

func TestRunReportsEstimates(t *testing.T) {
	d := hotColdDesign()
	o := NewOptimizer(d, 8, 8, strategyForTest())
	info := o.Run()
	if o.LastMap == nil || o.LastFeatures == nil {
		t.Fatal("LastMap/LastFeatures not populated")
	}
	if info.EstHOF < 0 || info.EstVOF < 0 {
		t.Errorf("negative estimated overflow: %v/%v", info.EstHOF, info.EstVOF)
	}
	if len(o.LastFeatures.Vec) != len(d.Cells) {
		t.Errorf("feature vectors = %d, want %d", len(o.LastFeatures.Vec), len(d.Cells))
	}
}

func TestDefaultStrategySane(t *testing.T) {
	s := DefaultStrategy()
	if s.PuLow >= s.PuHigh {
		t.Error("PuLow >= PuHigh")
	}
	if s.MaxIters < 1 {
		t.Error("MaxIters < 1")
	}
	if s.Zeta <= 0 || s.Mu <= 0 || s.Theta <= 0 {
		t.Error("non-positive strategy scales")
	}
	for f := 0; f < feature.Count; f++ {
		if s.Weights[f] < 0 {
			t.Errorf("negative default weight for %s", feature.Names[f])
		}
	}
}
