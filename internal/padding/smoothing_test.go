package padding

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSmoothingFunctions(t *testing.T) {
	cases := []struct {
		s    Smoothing
		x    float64
		want float64
	}{
		{SmoothLog, 0.5, 0},
		{SmoothLog, 1, 0},
		{SmoothLog, math.E, 1},
		{SmoothLinear, 0.5, 0},
		{SmoothLinear, 1, 0},
		{SmoothLinear, 3, 2},
		{SmoothSqrt, 0.5, 0},
		{SmoothSqrt, 1, 0},
		{SmoothSqrt, 5, 2},
	}
	for _, c := range cases {
		if got := c.s.Apply(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%v.Apply(%v) = %v, want %v", c.s, c.x, got, c.want)
		}
	}
}

// Properties shared by all smoothing variants: non-negative, zero at and
// below 1, monotone.
func TestSmoothingProperties(t *testing.T) {
	for _, s := range []Smoothing{SmoothLog, SmoothLinear, SmoothSqrt} {
		s := s
		f := func(a, b float64) bool {
			a = math.Mod(math.Abs(a), 100)
			b = math.Mod(math.Abs(b), 100)
			if a > b {
				a, b = b, a
			}
			va, vb := s.Apply(a), s.Apply(b)
			if va < 0 || vb < 0 {
				return false
			}
			if a <= 1 && va != 0 {
				return false
			}
			return vb >= va-1e-12
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("smoothing %v: %v", s, err)
		}
	}
}

func TestSmoothingNamesMatchConstants(t *testing.T) {
	if len(SmoothingNames) != 3 {
		t.Fatalf("SmoothingNames = %v", SmoothingNames)
	}
	if SmoothingNames[SmoothLog] != "log" || SmoothingNames[SmoothLinear] != "linear" || SmoothingNames[SmoothSqrt] != "sqrt" {
		t.Errorf("names misordered: %v", SmoothingNames)
	}
}

// TestSmoothingAffectsPadding: with identical inputs, linear smoothing
// pads hot cells more aggressively than log.
func TestSmoothingAffectsPadding(t *testing.T) {
	run := func(sm Smoothing) float64 {
		d := hotColdDesign()
		s := strategyForTest()
		s.Smooth = sm
		s.PuLow, s.PuHigh = 1, 1 // no cap
		o := NewOptimizer(d, 8, 8, s)
		o.Run()
		return d.TotalPaddingArea()
	}
	logArea := run(SmoothLog)
	linArea := run(SmoothLinear)
	if logArea <= 0 {
		t.Skip("no padding in this configuration")
	}
	if linArea <= logArea {
		t.Errorf("linear smoothing area %v <= log %v (expected more aggressive)", linArea, logArea)
	}
}
