package par

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"puffer/internal/flow"
)

func TestForErrVisitsAll(t *testing.T) {
	const n = 1000
	var hits [n]atomic.Int32
	err := ForErr(context.Background(), n, func(i int) error {
		hits[i].Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Fatalf("index %d visited %d times", i, got)
		}
	}
}

func TestForErrZeroAndNegative(t *testing.T) {
	for _, n := range []int{0, -5} {
		if err := ForErr(context.Background(), n, func(int) error {
			t.Fatal("fn called")
			return nil
		}); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestForErrFirstErrorStopsScheduling(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int64
	err := ForErr(context.Background(), 100000, func(i int) error {
		calls.Add(1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// Chunks already started finish, but the vast majority of the range
	// must never have been scheduled.
	if c := calls.Load(); c > 50000 {
		t.Errorf("scheduling did not stop: %d calls after error", c)
	}
}

func TestForErrCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var calls atomic.Int64
	err := ForErr(ctx, 100000, func(int) error {
		calls.Add(1)
		return nil
	})
	if !errors.Is(err, flow.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	// Pre-canceled context: at most the first chunk per worker runs.
	if c := calls.Load(); c > 10000 {
		t.Errorf("canceled run still made %d calls", c)
	}
}

func TestForErrCancelMidway(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	err := ForErr(ctx, 1_000_000, func(i int) error {
		if calls.Add(1) == 100 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, flow.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if c := calls.Load(); c > 500_000 {
		t.Errorf("cancellation not observed promptly: %d calls", c)
	}
}
