// Package par provides the tiny data-parallel helpers used by feature
// extraction, routing, and the experiment harness. The paper's experiments
// run with eight threads; these helpers spread index ranges across
// GOMAXPROCS workers. ForErr is the context-aware variant: it stops
// scheduling new work on cancellation or first error, which is what lets
// the pipeline observe a cancel within one net batch / feature chunk.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"puffer/internal/flow"
)

// For runs fn(i) for every i in [0, n) across min(GOMAXPROCS, n) workers.
// fn must be safe to call concurrently for distinct indices. For blocks
// until all calls complete.
func For(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// forErrChunk is how many consecutive indices one worker claims per grab.
// Small enough that a cancel is observed quickly, large enough that the
// atomic counter is not the bottleneck on fine-grained bodies.
const forErrChunk = 16

// ForErr runs fn(i) for every i in [0, n) across min(GOMAXPROCS, n)
// workers, stopping the schedule of new chunks as soon as ctx is canceled
// or any call returns an error. Already-started chunks run to completion
// (fn is never interrupted mid-call). ForErr returns the first error
// observed: a fn error verbatim, or an error wrapping flow.ErrCanceled
// when the context ended first. Indices beyond the first failure may or
// may not have been visited.
func ForErr(ctx context.Context, n int, fn func(i int) error) error {
	if n <= 0 {
		return flow.Check(ctx)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > (n+forErrChunk-1)/forErrChunk {
		workers = (n + forErrChunk - 1) / forErrChunk
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if i%forErrChunk == 0 {
				if err := flow.Check(ctx); err != nil {
					return err
				}
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next     atomic.Int64 // next unclaimed index
		mu       sync.Mutex
		firstErr error
		stopped  atomic.Bool
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			stopped.Store(true)
		}
		mu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stopped.Load() {
				if err := flow.Check(ctx); err != nil {
					fail(err)
					return
				}
				lo := int(next.Add(forErrChunk)) - forErrChunk
				if lo >= n {
					return
				}
				hi := lo + forErrChunk
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					if err := fn(i); err != nil {
						fail(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
