// Package par provides the tiny data-parallel helpers used by congestion
// estimation, feature extraction, routing, and the experiment harness. The
// paper's experiments run with eight threads; these helpers spread index
// ranges across a configurable number of workers (GOMAXPROCS by default —
// heavy-traffic deployments cap it via the Workers knobs threaded through
// pipeline.Config). ForErr is the context-aware variant: it stops
// scheduling new work on cancellation or first error, which is what lets
// the pipeline observe a cancel within one net batch / feature chunk.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"puffer/internal/flow"
)

// Workers resolves a requested worker count: n itself when positive,
// GOMAXPROCS when n is zero or negative.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ShardRange returns the half-open index range [lo, hi) of shard w when n
// items are split across k shards as evenly as possible (the first n%k
// shards get one extra item). Shards are contiguous and ordered, so a
// merge that visits shards 0..k-1 in order is deterministic.
func ShardRange(w, k, n int) (lo, hi int) {
	if k <= 0 || n <= 0 || w < 0 || w >= k {
		return 0, 0
	}
	base := n / k
	rem := n % k
	lo = w*base + min(w, rem)
	hi = lo + base
	if w < rem {
		hi++
	}
	return lo, hi
}

// For runs fn(i) for every i in [0, n) across min(GOMAXPROCS, n) workers.
// fn must be safe to call concurrently for distinct indices. For blocks
// until all calls complete.
func For(n int, fn func(i int)) { ForN(0, n, fn) }

// ForN is For with an explicit worker cap (0 = GOMAXPROCS).
func ForN(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + w - 1) / w
	for k := 0; k < w; k++ {
		lo := k * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// ForShards splits [0, n) into min(Workers(workers), n) contiguous shards
// and runs fn(w, lo, hi) for each shard w on its own goroutine, blocking
// until all return. Unlike For/ForN, fn receives the shard index, so
// callers can hand each executor private scratch (per-worker FFT buffers,
// per-worker accumulators) without synchronization.
//
// The shard STRUCTURE depends on the worker count, so ForShards is only
// safe for worker-count-independent results when every shard writes a
// disjoint output range (or the outputs are order-independent, like
// per-pin gradient slots). For floating-point reductions that must stay
// bit-identical across worker counts, shard the reduction with a count
// derived from the problem size (see internal/density's overflow partials)
// and use ForN to execute the fixed shards.
//
// With one effective worker fn(0, 0, n) runs on the calling goroutine
// without spawning. Note the fn closure itself still escapes (it is handed
// to goroutines on the parallel branch), so zero-allocation hot paths must
// branch to a plain loop before constructing the closure — see the
// workers==1 fast paths in internal/density and internal/wirelength.
func ForShards(workers, n int, fn func(w, lo, hi int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func(k int) {
			defer wg.Done()
			lo, hi := ShardRange(k, w, n)
			fn(k, lo, hi)
		}(k)
	}
	wg.Wait()
}

// forErrChunk is how many consecutive indices one worker claims per grab.
// Small enough that a cancel is observed quickly, large enough that the
// atomic counter is not the bottleneck on fine-grained bodies.
const forErrChunk = 16

// ForErr runs fn(i) for every i in [0, n) across min(GOMAXPROCS, n)
// workers, stopping the schedule of new chunks as soon as ctx is canceled
// or any call returns an error. Already-started chunks run to completion
// (fn is never interrupted mid-call). ForErr returns the first error
// observed: a fn error verbatim, or an error wrapping flow.ErrCanceled
// when the context ended first. Indices beyond the first failure may or
// may not have been visited.
func ForErr(ctx context.Context, n int, fn func(i int) error) error {
	return ForErrN(ctx, 0, n, fn)
}

// ForErrN is ForErr with an explicit worker cap (0 = GOMAXPROCS). When n
// is small relative to the worker count — the sharded-accumulator callers
// pass one index per shard — chunks shrink to a single index so every
// worker gets a share.
func ForErrN(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return flow.Check(ctx)
	}
	maxWorkers := Workers(workers)
	chunk := forErrChunk
	if n <= maxWorkers*forErrChunk {
		chunk = 1
	}
	w := maxWorkers
	if nc := (n + chunk - 1) / chunk; w > nc {
		w = nc
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if i%forErrChunk == 0 {
				if err := flow.Check(ctx); err != nil {
					return err
				}
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next     atomic.Int64 // next unclaimed index
		mu       sync.Mutex
		firstErr error
		stopped  atomic.Bool
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			stopped.Store(true)
		}
		mu.Unlock()
	}
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stopped.Load() {
				if err := flow.Check(ctx); err != nil {
					fail(err)
					return
				}
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					if err := fn(i); err != nil {
						fail(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
