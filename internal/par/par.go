// Package par provides the tiny data-parallel helper used by feature
// extraction, routing, and the experiment harness. The paper's experiments
// run with eight threads; this helper spreads index ranges across
// GOMAXPROCS workers.
package par

import (
	"runtime"
	"sync"
)

// For runs fn(i) for every i in [0, n) across min(GOMAXPROCS, n) workers.
// fn must be safe to call concurrently for distinct indices. For blocks
// until all calls complete.
func For(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}
