package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// TestForParallelBranch forces multiple workers even on single-core hosts
// so the goroutine fan-out path is exercised.
func TestForParallelBranch(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	const n = 997 // not divisible by the worker count
	var hits [n]int32
	var total int32
	For(n, func(i int) {
		atomic.AddInt32(&hits[i], 1)
		atomic.AddInt32(&total, 1)
	})
	if total != n {
		t.Fatalf("total = %d, want %d", total, n)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d hit %d times", i, h)
		}
	}
	// More workers than items: each item still visited once.
	var small int32
	For(2, func(i int) { atomic.AddInt32(&small, 1) })
	if small != 2 {
		t.Fatalf("small run total = %d", small)
	}
}

func TestForCoversAllIndices(t *testing.T) {
	const n = 1000
	var hits [n]int32
	For(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d hit %d times", i, h)
		}
	}
}

func TestForSmallAndEmpty(t *testing.T) {
	var count int32
	For(0, func(i int) { atomic.AddInt32(&count, 1) })
	if count != 0 {
		t.Error("For(0) invoked fn")
	}
	For(1, func(i int) { atomic.AddInt32(&count, 1) })
	if count != 1 {
		t.Errorf("For(1) invoked fn %d times", count)
	}
	For(3, func(i int) { atomic.AddInt32(&count, 1) })
	if count != 4 {
		t.Errorf("For(3) total = %d, want 4", count)
	}
}

// TestForShardsCoversDisjointRanges checks every index is visited exactly
// once, shards are contiguous and ordered, and each shard index appears
// exactly once.
func TestForShardsCoversDisjointRanges(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 64} {
		const n = 101
		var hits [n]int32
		var shardCalls atomic.Int32
		ForShards(workers, n, func(w, lo, hi int) {
			shardCalls.Add(1)
			if lo > hi || lo < 0 || hi > n {
				t.Errorf("workers=%d shard %d: bad range [%d,%d)", workers, w, lo, hi)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
		want := workers
		if want > n {
			want = n
		}
		if int(shardCalls.Load()) != want {
			t.Fatalf("workers=%d: %d shard calls, want %d", workers, shardCalls.Load(), want)
		}
	}
}

// TestForShardsSerialRunsInline proves the one-worker path calls fn once
// on the calling goroutine with the full range.
func TestForShardsSerialRunsInline(t *testing.T) {
	got := -1
	ForShards(1, 50, func(w, lo, hi int) {
		if w != 0 || lo != 0 || hi != 50 {
			t.Errorf("serial shard = (%d, %d, %d)", w, lo, hi)
		}
		got = hi
	})
	if got != 50 {
		t.Fatal("fn never ran")
	}
	ForShards(4, 0, func(w, lo, hi int) { t.Error("fn called for n=0") })
}
