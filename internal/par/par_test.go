package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// TestForParallelBranch forces multiple workers even on single-core hosts
// so the goroutine fan-out path is exercised.
func TestForParallelBranch(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	const n = 997 // not divisible by the worker count
	var hits [n]int32
	var total int32
	For(n, func(i int) {
		atomic.AddInt32(&hits[i], 1)
		atomic.AddInt32(&total, 1)
	})
	if total != n {
		t.Fatalf("total = %d, want %d", total, n)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d hit %d times", i, h)
		}
	}
	// More workers than items: each item still visited once.
	var small int32
	For(2, func(i int) { atomic.AddInt32(&small, 1) })
	if small != 2 {
		t.Fatalf("small run total = %d", small)
	}
}

func TestForCoversAllIndices(t *testing.T) {
	const n = 1000
	var hits [n]int32
	For(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d hit %d times", i, h)
		}
	}
}

func TestForSmallAndEmpty(t *testing.T) {
	var count int32
	For(0, func(i int) { atomic.AddInt32(&count, 1) })
	if count != 0 {
		t.Error("For(0) invoked fn")
	}
	For(1, func(i int) { atomic.AddInt32(&count, 1) })
	if count != 1 {
		t.Errorf("For(1) invoked fn %d times", count)
	}
	For(3, func(i int) { atomic.AddInt32(&count, 1) })
	if count != 4 {
		t.Errorf("For(3) total = %d, want 4", count)
	}
}
