package place

import (
	"context"
	"errors"
	"testing"

	"puffer/internal/flow"
)

// TestRunCtxCancelStopsWithinOneIteration cancels from inside the
// per-iteration hook and checks the engine stops on the very next
// loop-top context check, leaving a valid in-region placement.
func TestRunCtxCancelStopsWithinOneIteration(t *testing.T) {
	d := smallDesign(1, 60, false)
	cfg := quickConfig()
	cfg.MaxIters = 400
	cfg.StopOverflow = 1e-9 // never converge on its own
	p := New(d, cfg)

	ctx, cancel := context.WithCancel(context.Background())
	const cancelAt = 5
	lastHooked := 0
	hook := HookFunc(func(iter int, overflow float64) bool {
		lastHooked = iter
		if iter == cancelAt {
			cancel()
		}
		return false
	})
	res, err := p.RunCtx(ctx, hook)
	if err == nil {
		t.Fatal("canceled placement returned nil error")
	}
	if !errors.Is(err, flow.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCanceled wrapping context.Canceled", err)
	}
	if lastHooked > cancelAt {
		t.Errorf("hook ran at iter %d, more than one iteration past the cancel at %d", lastHooked, cancelAt)
	}
	if res == nil {
		t.Fatal("canceled placement returned nil result")
	}
	if res.HPWL <= 0 {
		t.Error("canceled placement did not report HPWL of the partial state")
	}
	for i := range d.Cells {
		c := &d.Cells[i]
		if c.Fixed {
			continue
		}
		if c.X < d.Region.Lo.X-1e-6 || c.X+c.W > d.Region.Hi.X+1e-6 ||
			c.Y < d.Region.Lo.Y-1e-6 || c.Y+c.H > d.Region.Hi.Y+1e-6 {
			t.Fatalf("cell %d outside region after cancel", i)
		}
	}
}

func TestRunCtxPreCanceled(t *testing.T) {
	d := smallDesign(2, 30, false)
	p := New(d, quickConfig())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.RunCtx(ctx, nil); !errors.Is(err, flow.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}
