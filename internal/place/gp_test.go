package place

import (
	"math/rand"
	"testing"

	"puffer/internal/geom"
	"puffer/internal/netlist"
)

// gpBenchDesign builds a mid-size synthetic design (~25% utilization so
// fillers engage) for the GP iteration benchmarks and determinism tests.
func gpBenchDesign(seed int64, nc int) *netlist.Design {
	rng := rand.New(rand.NewSource(seed))
	d := &netlist.Design{
		Name:      "gpbench",
		Region:    geom.RectWH(0, 0, 128, 128),
		RowHeight: 1,
		SiteWidth: 0.25,
		Layers:    netlist.DefaultLayers(),
	}
	for i := 0; i < nc; i++ {
		d.AddCell(netlist.Cell{W: 1, H: 1, X: 64, Y: 64})
	}
	for i := 0; i+3 < nc; i += 2 {
		n := d.AddNet("", 1)
		d.Connect(i, n, 0.5, 0.5)
		d.Connect(i+1, n, 0.5, 0.5)
		if rng.Intn(2) == 0 {
			d.Connect(i+rng.Intn(3), n, 0.5, 0.5)
		}
	}
	return d
}

func gpBenchConfig(iters, workers int) Config {
	cfg := DefaultConfig()
	cfg.GridM, cfg.GridN = 64, 64
	cfg.MaxIters = iters
	cfg.MinIters = iters
	cfg.StopOverflow = 0
	cfg.PlateauIters = 0
	cfg.Workers = workers
	return cfg
}

// BenchmarkGPIterSerial measures one GP iteration with the parallel code
// paths pinned to a single worker. CI compares it against
// BenchmarkGPIterParallel via cmd/benchjson -ratio (BENCH_gp.json).
func BenchmarkGPIterSerial(b *testing.B) {
	b.ReportAllocs()
	p := New(gpBenchDesign(1, 4000), gpBenchConfig(b.N, 1))
	b.ResetTimer()
	p.Run(nil)
}

// BenchmarkGPIterParallel is the same workload at GOMAXPROCS workers; the
// placement it produces is bit-identical to the serial run.
func BenchmarkGPIterParallel(b *testing.B) {
	b.ReportAllocs()
	p := New(gpBenchDesign(1, 4000), gpBenchConfig(b.N, 0))
	b.ResetTimer()
	p.Run(nil)
}

// runGP places a synthetic design with the given worker count and returns
// the final cell centers and HPWL.
func runGP(t *testing.T, workers int) ([]geom.Point, float64) {
	t.Helper()
	d := smallDesign(3, 300, true)
	cfg := quickConfig()
	cfg.MaxIters = 80
	cfg.MinIters = 80
	cfg.StopOverflow = 0
	cfg.PlateauIters = 0
	cfg.Workers = workers
	p := New(d, cfg)
	res := p.Run(nil)
	pos := make([]geom.Point, len(d.Cells))
	for i := range d.Cells {
		pos[i] = d.Cells[i].Rect().Center()
	}
	return pos, res.HPWL
}

// TestGPDeterminismAcrossWorkers is the acceptance gate for the parallel
// GP core: Workers=1 and Workers=4 (and an oversubscribed pool) must
// produce bit-identical final positions and HPWL.
func TestGPDeterminismAcrossWorkers(t *testing.T) {
	refPos, refHPWL := runGP(t, 1)
	for _, workers := range []int{2, 4, 16} {
		pos, hpwl := runGP(t, workers)
		if hpwl != refHPWL {
			t.Fatalf("workers=%d: HPWL %v, want %v (bit-exact)", workers, hpwl, refHPWL)
		}
		for i := range pos {
			if pos[i] != refPos[i] {
				t.Fatalf("workers=%d: cell %d at %v, want %v (bit-exact)", workers, i, pos[i], refPos[i])
			}
		}
	}
}

// TestGPStepZeroAllocSerial guards the steady-state Nesterov iteration:
// with one worker, a full eval (wirelength gradient, rasterization,
// spectral solve, force sweep) plus the optimizer update allocates nothing.
func TestGPStepZeroAllocSerial(t *testing.T) {
	d := smallDesign(5, 200, false)
	cfg := quickConfig()
	cfg.Workers = 1
	p := New(d, cfg)
	p.overflow = 1
	p.updateGamma()
	p.initLambda()
	p.opt.Step(p.projectFn) // warm up
	if n := testing.AllocsPerRun(5, func() { p.opt.Step(p.projectFn) }); n != 0 {
		t.Errorf("steady-state GP step allocates %v per run, want 0", n)
	}
}
