package place

import (
	"puffer/internal/geom"
)

// quadraticInit refines the initial positions in x0 (vector layout as in
// New) with Jacobi sweeps on a star-model quadratic wirelength system:
// every cell is pulled toward the centroids of its nets, with a weak
// anchor to the region center (and to fixed-cell pins, which act as the
// real anchors when present). This is the classic quadratic-placement
// bootstrap (Kraftwerk/BonnPlace lineage): clusters pre-form before the
// nonlinear engine starts, cutting the spreading phase short.
func (p *Placer) quadraticInit(x0 []float64, sweeps int) {
	d := p.D
	nm := len(p.movable)
	off := nm + p.nFill

	// movableIdx maps cell ID to vector slot; -1 for fixed cells.
	movableIdx := make([]int, len(d.Cells))
	for i := range movableIdx {
		movableIdx[i] = -1
	}
	for k, ci := range p.movable {
		movableIdx[ci] = k
	}

	center := d.Region.Center()
	const anchorW = 0.2 // weak pull to the region center

	sumX := make([]float64, nm)
	sumY := make([]float64, nm)
	cnt := make([]float64, nm)

	sweep := func() {
		for k := range sumX {
			sumX[k], sumY[k], cnt[k] = 0, 0, 0
		}
		for n := range d.Nets {
			pins := d.Nets[n].Pins
			if len(pins) < 2 {
				continue
			}
			// Net centroid over current positions (fixed pins included at
			// their true locations — these anchor the system).
			cx, cy := 0.0, 0.0
			for _, pid := range pins {
				pin := &d.Pins[pid]
				if mi := movableIdx[pin.Cell]; mi >= 0 {
					cx += x0[mi] + pin.Dx - d.Cells[pin.Cell].W/2
					cy += x0[off+mi] + pin.Dy - d.Cells[pin.Cell].H/2
				} else {
					pt := d.PinPos(pid)
					cx += pt.X
					cy += pt.Y
				}
			}
			cx /= float64(len(pins))
			cy /= float64(len(pins))
			w := d.Nets[n].Weight
			if w == 0 {
				w = 1
			}
			for _, pid := range pins {
				pin := &d.Pins[pid]
				if mi := movableIdx[pin.Cell]; mi >= 0 {
					c := &d.Cells[pin.Cell]
					sumX[mi] += w * (cx - pin.Dx + c.W/2)
					sumY[mi] += w * (cy - pin.Dy + c.H/2)
					cnt[mi] += w
				}
			}
		}
		for k, ci := range p.movable {
			c := &d.Cells[ci]
			den := cnt[k] + anchorW
			nx := (sumX[k] + anchorW*center.X) / den
			ny := (sumY[k] + anchorW*center.Y) / den
			b := d.FenceRect(ci)
			x0[k] = geom.Clamp(nx, b.Lo.X+c.W/2, b.Hi.X-c.W/2)
			x0[off+k] = geom.Clamp(ny, b.Lo.Y+c.H/2, b.Hi.Y-c.H/2)
		}
	}
	for s := 0; s < sweeps; s++ {
		sweep()
	}

	// The quadratic solution collapses toward the anchors; rescale the
	// cloud so it pre-covers most of the die (the cluster structure is the
	// value, not the collapsed coordinates), then re-clamp fences.
	loX, hiX := x0[0], x0[0]
	loY, hiY := x0[off], x0[off]
	for k := range p.movable {
		loX = minF(loX, x0[k])
		hiX = maxF(hiX, x0[k])
		loY = minF(loY, x0[off+k])
		hiY = maxF(hiY, x0[off+k])
	}
	spanX, spanY := hiX-loX, hiY-loY
	if spanX > 1e-9 && spanY > 1e-9 {
		target := d.Region.Expand(-0.15 * minF(d.Region.W(), d.Region.H()))
		for k, ci := range p.movable {
			c := &d.Cells[ci]
			nx := target.Lo.X + (x0[k]-loX)/spanX*target.W()
			ny := target.Lo.Y + (x0[off+k]-loY)/spanY*target.H()
			b := d.FenceRect(ci)
			x0[k] = geom.Clamp(nx, b.Lo.X+c.W/2, b.Hi.X-c.W/2)
			x0[off+k] = geom.Clamp(ny, b.Lo.Y+c.H/2, b.Hi.Y-c.H/2)
		}
	}
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
