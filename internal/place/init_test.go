package place

import (
	"testing"

	"puffer/internal/geom"
	"puffer/internal/netlist"
)

// TestQuadraticInitPullsTowardAnchors: a movable cell connected to a fixed
// pin should start near that pin rather than at the region center.
func TestQuadraticInitPullsTowardAnchors(t *testing.T) {
	d := &netlist.Design{
		Region:    geom.RectWH(0, 0, 64, 64),
		RowHeight: 1, SiteWidth: 0.25,
		Layers: netlist.DefaultLayers(),
	}
	anchor := d.AddCell(netlist.Cell{Name: "pad", W: 1, H: 1, X: 2, Y: 2, Fixed: true})
	c := d.AddCell(netlist.Cell{W: 1, H: 1})
	n := d.AddNet("n", 1)
	d.Connect(anchor, n, 0.5, 0.5)
	d.Connect(c, n, 0.5, 0.5)

	cfg := quickConfig()
	cfg.QuadraticInit = true
	cfg.UseFillers = false
	p := New(d, cfg)
	x0 := p.opt.Current()
	// Cell center starts much closer to the anchor (2.5, 2.5) than to the
	// region center (32, 32).
	start := geom.Pt(x0[0], x0[1])
	if start.ManhattanDist(geom.Pt(2.5, 2.5)) > start.ManhattanDist(geom.Pt(32, 32)) {
		t.Errorf("quadratic init left the cell at %v, not pulled toward the anchor", start)
	}
}

// TestQuadraticInitClustersConnectedCells: connected cells start closer
// together than unconnected ones.
func TestQuadraticInitClustersConnectedCells(t *testing.T) {
	d := smallDesign(31, 200, false)
	cfg := quickConfig()
	cfg.QuadraticInit = true
	p := New(d, cfg)
	x0 := p.opt.Current()
	nm := len(p.movable)
	off := nm + p.nFill

	pos := func(k int) geom.Point { return geom.Pt(x0[k], x0[off+k]) }
	conn, unconn, n := 0.0, 0.0, 0
	for i := range d.Nets {
		pins := d.Nets[i].Pins
		if len(pins) < 2 {
			continue
		}
		a := d.Pins[pins[0]].Cell
		b := d.Pins[pins[1]].Cell
		conn += pos(a).ManhattanDist(pos(b))
		// Compare against a far-away index pair (deterministic).
		c2 := (a + nm/2) % nm
		unconn += pos(a).ManhattanDist(pos(c2))
		n++
	}
	if n == 0 {
		t.Fatal("no nets")
	}
	if conn >= unconn {
		t.Errorf("connected pairs avg %v >= unconnected %v", conn/float64(n), unconn/float64(n))
	}
}

// TestQuadraticInitFlowStillConverges: the full engine works from the
// quadratic start and reaches the usual overflow.
func TestQuadraticInitFlowStillConverges(t *testing.T) {
	d := smallDesign(32, 250, false)
	cfg := quickConfig()
	cfg.QuadraticInit = true
	res := New(d, cfg).Run(nil)
	if res.Overflow > 0.12 {
		t.Errorf("overflow = %v with quadratic init", res.Overflow)
	}
}

// TestQuadraticInitRespectsFences: fenced cells stay in their fence.
func TestQuadraticInitRespectsFences(t *testing.T) {
	d := smallDesign(33, 100, false)
	d.Fences = append(d.Fences, netlist.Fence{Name: "f", Rect: geom.RectWH(2, 2, 10, 8)})
	for _, ci := range d.MovableIDs()[:10] {
		d.Cells[ci].Fence = 1
	}
	cfg := quickConfig()
	cfg.QuadraticInit = true
	p := New(d, cfg)
	x0 := p.opt.Current()
	nm := len(p.movable)
	off := nm + p.nFill
	for k, ci := range p.movable {
		if d.Cells[ci].Fence != 1 {
			continue
		}
		if x0[k] < 2 || x0[k] > 12 || x0[off+k] < 2 || x0[off+k] > 10 {
			t.Fatalf("fenced cell %d initialized at (%v,%v) outside fence", ci, x0[k], x0[off+k])
		}
	}
}
