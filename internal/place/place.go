// Package place implements the electrostatic global placement engine
// (paper Sec. II-B): the unconstrained objective f = W + λ·D of Eq. 1,
// with WA wirelength (Eq. 2), spectral electrostatic density (Eqs. 3–6),
// Nesterov iterations, filler cells occupying target whitespace, λ and γ
// scheduling, and a pluggable routability-optimizer hook that is invoked
// every iteration so cell padding can steer the spreading (paper Fig. 2).
package place

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"puffer/internal/density"
	"puffer/internal/flow"
	"puffer/internal/geom"
	"puffer/internal/nesterov"
	"puffer/internal/netlist"
	"puffer/internal/obs"
	"puffer/internal/par"
	"puffer/internal/wirelength"
)

// MinGridDim is the smallest density-grid dimension the engine accepts
// (and the floor of the automatic selection). Below it the spectral model
// has too few modes to produce a useful spreading force.
const MinGridDim = 16

// ConfigError reports a Config field that failed validation. It is a typed
// error so callers can distinguish a bad configuration from a runtime
// failure (errors.As(&place.ConfigError{})) instead of catching a panic
// from deep inside the spectral setup.
type ConfigError struct {
	Field  string // the offending Config field
	Reason string // human-readable constraint violation
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("place: invalid Config.%s: %s", e.Field, e.Reason)
}

// Config controls the global placement engine.
type Config struct {
	// GridM/GridN are the density grid dimensions (powers of two,
	// ≥ MinGridDim). Zero selects them automatically from the movable cell
	// count.
	GridM, GridN int
	// PyramidLevels enables the multi-resolution density pyramid when > 1:
	// the engine starts on a grid coarsened by 2^(PyramidLevels-1) per axis
	// (clamped so no level drops below 8 bins) and refines toward the full
	// GridM×GridN resolution as overflow falls below the RefineOverflow
	// thresholds. 0 or 1 keeps the single fixed grid.
	PyramidLevels int
	// RefineOverflow customizes the refinement schedule: the engine leaves
	// level k (1 = one below finest … PyramidLevels-1 = coarsest) when
	// overflow drops below RefineOverflow[k-1]. Empty selects the default
	// schedule τ_k = 0.2 + 0.6·k/L. When set, it must hold PyramidLevels-1
	// ascending values in (0, 1).
	RefineOverflow []float64
	// TargetDensity is the placement target density in (0, 1].
	TargetDensity float64
	// MaxIters bounds the Nesterov iterations.
	MaxIters int
	// StopOverflow is the density overflow below which placement stops.
	StopOverflow float64
	// MinIters prevents premature convergence checks.
	MinIters int
	// PlateauIters stops placement when the density overflow has not
	// improved for this many iterations (the target StopOverflow may be
	// unreachable once padding has grown the effective cell area).
	PlateauIters int
	// LambdaMu is the maximum per-iteration density-penalty multiplier.
	// The actual multiplier adapts to the HPWL trajectory (ePlace-style):
	// λ grows at LambdaMu while wirelength is stable and backs off when
	// the density force starts tearing nets apart.
	LambdaMu float64
	// UseFillers enables ePlace-style filler cells.
	UseFillers bool
	// WLModel selects the smooth wirelength approximation (WA per the
	// paper; LSE is the log-sum-exp alternative of earlier placers).
	WLModel wirelength.Kind
	// QuadraticInit bootstraps the initial placement with star-model
	// Jacobi sweeps (quadratic-placement style) instead of pure
	// center-plus-jitter, pre-forming clusters before the nonlinear
	// engine runs. Ignored when WarmStart is set.
	QuadraticInit bool
	// WarmStart seeds the initial placement from the design's current
	// movable-cell centers instead of center-plus-jitter — the ECO path:
	// a previous placement is already a near-solution for a small delta,
	// so the engine only has to absorb the change. Fillers are still
	// seeded uniformly from Seed (they carry no state worth keeping), and
	// QuadraticInit is skipped.
	WarmStart bool
	// Reuse, when non-nil, offers warm engine state harvested from a
	// previous Placer via ReuseState. NewChecked adopts each piece only
	// when it still matches this design and configuration (see Reuse);
	// a mismatched piece is silently rebuilt, so offering stale state is
	// safe but wasteful, never wrong.
	Reuse *Reuse `json:"-"`
	// Seed drives the deterministic initial placement jitter.
	Seed int64
	// Workers caps the engine's data parallelism across the per-iteration
	// hot path (wirelength gradient, density rasterization, spectral
	// solve, force sweep, optimizer vector work). Zero or negative selects
	// GOMAXPROCS. Every phase is bit-deterministic regardless of the
	// worker count — see DESIGN.md §3e — so changing Workers never changes
	// the placement.
	Workers int
	// TraceCap bounds Result.Trace retention: the engine keeps the most
	// recent TraceCap iterations in a ring buffer, so unbounded runs
	// cannot grow the IterStats history without limit. Zero selects
	// DefaultTraceCap; a negative value disables the bound (full
	// retention). Result.TraceDropped reports how many oldest iterations
	// were evicted.
	TraceCap int
	// Obs, when non-nil, receives the engine's telemetry: per-iteration
	// HPWL / overflow / λ / γ / step-length series. Nil disables
	// recording at near-zero cost (see internal/obs).
	Obs *obs.Recorder `json:"-"`
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any) `json:"-"`
}

// DefaultTraceCap is the Result.Trace retention bound when
// Config.TraceCap is zero. It exceeds DefaultConfig().MaxIters, so
// default-configured runs always retain their full trajectory.
const DefaultTraceCap = 4096

// DefaultConfig returns the engine defaults.
func DefaultConfig() Config {
	return Config{
		TargetDensity: 0.9,
		MaxIters:      600,
		StopOverflow:  0.07,
		MinIters:      40,
		PlateauIters:  120,
		LambdaMu:      1.05,
		UseFillers:    true,
	}
}

// validGridDim reports whether m is an acceptable density-grid dimension:
// a power of two no smaller than MinGridDim.
func validGridDim(m int) bool {
	return m >= MinGridDim && m&(m-1) == 0
}

// Validate checks the configuration's structural constraints and returns a
// *ConfigError naming the first violated field, or nil. Zero GridM/GridN
// are valid (automatic selection); New / NewChecked validate again after
// resolving the automatic values.
func (cfg *Config) Validate() error {
	if cfg.TargetDensity <= 0 || cfg.TargetDensity > 1 {
		return &ConfigError{Field: "TargetDensity",
			Reason: fmt.Sprintf("%v out of (0, 1]", cfg.TargetDensity)}
	}
	if cfg.GridM != 0 && !validGridDim(cfg.GridM) {
		return &ConfigError{Field: "GridM",
			Reason: fmt.Sprintf("%d is not a power of two >= %d", cfg.GridM, MinGridDim)}
	}
	if cfg.GridN != 0 && !validGridDim(cfg.GridN) {
		return &ConfigError{Field: "GridN",
			Reason: fmt.Sprintf("%d is not a power of two >= %d", cfg.GridN, MinGridDim)}
	}
	if cfg.PyramidLevels < 0 {
		return &ConfigError{Field: "PyramidLevels",
			Reason: fmt.Sprintf("%d is negative", cfg.PyramidLevels)}
	}
	if len(cfg.RefineOverflow) > 0 {
		if cfg.PyramidLevels <= 1 {
			return &ConfigError{Field: "RefineOverflow",
				Reason: "set without PyramidLevels > 1"}
		}
		if len(cfg.RefineOverflow) != cfg.PyramidLevels-1 {
			return &ConfigError{Field: "RefineOverflow",
				Reason: fmt.Sprintf("%d thresholds for %d refinements",
					len(cfg.RefineOverflow), cfg.PyramidLevels-1)}
		}
		prev := 0.0
		for i, v := range cfg.RefineOverflow {
			if v <= 0 || v >= 1 || v <= prev {
				return &ConfigError{Field: "RefineOverflow",
					Reason: fmt.Sprintf("threshold [%d]=%v must be in (0,1) and ascending", i, v)}
			}
			prev = v
		}
	}
	return nil
}

// Reuse carries warm engine state harvested from a finished Placer via
// ReuseState, for adoption by a later NewChecked on the SAME design
// instance (the ECO session path). Each piece is adopted independently and
// only when it still matches:
//
//   - Den is adopted when its finest grid has the resolved GridM×GridN
//     dimensions over the design region and its level count matches the
//     requested PyramidLevels. Adoption skips the fixed-cell baseline
//     rebuild — the solver already carries it — so the caller must drop
//     Den whenever a fixed cell moved or resized. Deposit fingerprints
//     survive adoption: re-depositing an identical rect list still skips
//     the rasterize and solve, which is exactness-safe because skips only
//     fire on bit-identical input.
//   - WL is adopted when it was built for this design instance (pointer
//     equality); γ and the model Kind are (re)set per run, so a model
//     outlives any particular schedule.
//
// A mismatched piece is rebuilt from scratch — offering stale state never
// changes results, it only wastes the rebuild.
type Reuse struct {
	Den density.Solver
	WL  *wirelength.Model
}

// Hook is the routability-optimizer callback invoked once per iteration
// with the current density overflow. It returns true when it changed cell
// padding, so the engine refreshes charge areas and retires fillers to
// compensate for the added padding area.
type Hook interface {
	OnIteration(iter int, overflow float64) bool
}

// HookFunc adapts a function to the Hook interface.
type HookFunc func(iter int, overflow float64) bool

// OnIteration implements Hook.
func (f HookFunc) OnIteration(iter int, overflow float64) bool { return f(iter, overflow) }

// IterStats records one engine iteration for tracing and experiments.
type IterStats struct {
	Iter     int
	HPWL     float64
	Overflow float64
	Lambda   float64
	Gamma    float64
	Padded   bool
}

// Result summarizes a finished global placement.
type Result struct {
	HPWL     float64
	Overflow float64
	Iters    int
	// Trace holds the retained per-iteration statistics in chronological
	// order; when the run outlived Config.TraceCap, only the most recent
	// iterations survive and TraceDropped counts the evicted ones.
	Trace        []IterStats
	TraceDropped int
}

// traceRing retains the most recent IterStats up to a fixed capacity,
// overwriting the oldest entries once full.
type traceRing struct {
	buf     []IterStats
	max     int // 0 = unbounded
	next    int // overwrite cursor, valid once len(buf) == max
	dropped int
}

func newTraceRing(cap int) *traceRing {
	switch {
	case cap == 0:
		cap = DefaultTraceCap
	case cap < 0:
		cap = 0
	}
	return &traceRing{max: cap}
}

func (r *traceRing) add(it IterStats) {
	if r.max == 0 || len(r.buf) < r.max {
		r.buf = append(r.buf, it)
		return
	}
	r.buf[r.next] = it
	r.next = (r.next + 1) % r.max
	r.dropped++
}

// items returns the retained entries oldest-first.
func (r *traceRing) items() []IterStats {
	if r.next == 0 {
		return r.buf
	}
	out := make([]IterStats, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Placer is the global placement engine for one design.
type Placer struct {
	D   *netlist.Design
	Cfg Config

	movable []int          // movable cell IDs
	den     density.Solver // pyramid (PyramidLevels > 1) or single grid
	g       *density.Grid  // cached den.Active(), refreshed on refinement
	wl      *wirelength.Model

	// fillers
	nFill      int
	activeFill int
	fillerW    float64
	fillerH    float64

	// optimization state: vector layout is
	// [x of movables | x of fillers | y of movables | y of fillers].
	nVar           int
	gradWx, gradWy []float64 // per-cell wirelength gradients (all cells)
	lambda         float64
	gamma          float64
	overflow       float64
	binBase        float64

	opt       *nesterov.Optimizer
	projectFn func(x []float64) // bound once; Step(p.project) would allocate per call

	// parallel execution state; force-sweep stages are bound once in New
	// so the steady-state iteration constructs no closures.
	workers        int
	rects          []geom.Rect // reusable deposit list (movables + fillers)
	evalX          []float64   // operands of the in-flight force sweep
	evalGrad       []float64
	stageForceMov  func(w, lo, hi int)
	stageForceFill func(w, lo, hi int)

	// cumulative per-phase walls across the run (exposed as obs span args
	// and place.phase.* gauges)
	wallWL, wallRaster, wallSolve, wallForce time.Duration
}

// New builds a placer for d, panicking on an invalid configuration. The
// initial placement gathers movable cells near the region center with
// deterministic jitter.
func New(d *netlist.Design, cfg Config) *Placer {
	p, err := NewChecked(d, cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// NewChecked is New returning configuration problems as a *ConfigError
// instead of panicking — the form pipeline stages and services use, so a
// bad grid size is rejected at normalization rather than detonating inside
// the spectral setup.
func NewChecked(d *netlist.Design, cfg Config) (*Placer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Placer{D: d, Cfg: cfg, movable: d.MovableIDs()}
	n := len(p.movable)
	if n == 0 {
		return p, nil
	}

	if cfg.GridM == 0 {
		g := geom.NextPow2(int(math.Sqrt(float64(n))))
		cfg.GridM = geom.ClampInt(g, MinGridDim, 512)
	}
	if cfg.GridN == 0 {
		cfg.GridN = cfg.GridM
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p.Cfg = cfg

	wantLevels := 1
	if cfg.PyramidLevels > 1 {
		wantLevels = cfg.PyramidLevels
	}
	if r := cfg.Reuse; r != nil && r.Den != nil {
		fine := r.Den.Finest()
		if fine.M == cfg.GridM && fine.N == cfg.GridN &&
			fine.Region == d.Region && r.Den.Levels() == wantLevels {
			p.den = r.Den
		}
	}
	if p.den == nil {
		if cfg.PyramidLevels > 1 {
			p.den = density.NewPyramid(d.Region, cfg.GridM, cfg.GridN, cfg.PyramidLevels)
		} else {
			p.den = density.NewGrid(d.Region, cfg.GridM, cfg.GridN)
		}
		for i := range d.Cells {
			if d.Cells[i].Fixed {
				p.den.AddFixedRect(d.Cells[i].Rect(), 1)
			}
		}
	}
	p.g = p.den.Active()
	fine := p.den.Finest()
	p.binBase = (fine.BinW + fine.BinH) / 2
	if r := cfg.Reuse; r != nil && r.WL != nil && r.WL.Design() == d {
		p.wl = r.WL
	} else {
		p.wl = wirelength.New(d, 8*p.binBase)
	}
	p.wl.Kind = cfg.WLModel
	p.gradWx = make([]float64, len(d.Cells))
	p.gradWy = make([]float64, len(d.Cells))
	p.workers = par.Workers(cfg.Workers)
	p.den.SetWorkers(cfg.Workers)
	p.wl.SetWorkers(cfg.Workers)

	// Fillers: fill target whitespace with average-size dummy cells.
	if cfg.UseFillers {
		stats := d.Stats()
		fillArea := stats.FreeArea*cfg.TargetDensity - stats.CellArea
		if fillArea > 0 {
			avgW := 0.0
			for _, ci := range p.movable {
				avgW += d.Cells[ci].W
			}
			avgW /= float64(n)
			p.fillerW = math.Max(avgW, d.SiteWidth)
			p.fillerH = d.RowHeight
			if p.fillerH <= 0 {
				p.fillerH = 1
			}
			p.nFill = int(fillArea / (p.fillerW * p.fillerH))
		}
	}
	p.activeFill = p.nFill

	// Initial placement: region center plus jitter (or, warm-started, the
	// design's current centers), fillers uniform.
	rng := rand.New(rand.NewSource(cfg.Seed))
	c := d.Region.Center()
	jx := d.Region.W() / 40
	jy := d.Region.H() / 40
	nm := len(p.movable)
	p.nVar = 2 * (nm + p.nFill)
	x0 := make([]float64, p.nVar)
	for k, ci := range p.movable {
		if cfg.WarmStart {
			ctr := d.Cells[ci].Rect().Center()
			x0[k] = ctr.X
			x0[nm+p.nFill+k] = ctr.Y
			continue
		}
		start := c
		if d.Cells[ci].Fence > 0 {
			start = d.FenceRect(ci).Center()
		}
		x0[k] = start.X + (rng.Float64()*2-1)*jx
		x0[nm+p.nFill+k] = start.Y + (rng.Float64()*2-1)*jy
	}
	for f := 0; f < p.nFill; f++ {
		x0[nm+f] = d.Region.Lo.X + rng.Float64()*d.Region.W()
		x0[nm+p.nFill+nm+f] = d.Region.Lo.Y + rng.Float64()*d.Region.H()
	}
	if cfg.QuadraticInit && !cfg.WarmStart {
		p.quadraticInit(x0, 20)
	}
	p.rects = make([]geom.Rect, 0, nm+p.nFill)
	p.bindStages()
	p.opt = nesterov.New(x0, p.eval, p.binBase/4)
	p.opt.MaxBacktrack = 1
	p.opt.SetWorkers(cfg.Workers)
	p.projectFn = p.project
	return p, nil
}

// Workers reports the engine's resolved worker cap.
func (p *Placer) Workers() int { return p.workers }

// ReuseState harvests the engine state worth carrying into a later run on
// the same design: the density solver (fixed baseline, fingerprints, FFT
// plans) and the wirelength model (per-worker scratch). See Reuse for the
// adoption rules. The Placer must not be used concurrently with a new
// engine that adopted its state.
func (p *Placer) ReuseState() *Reuse {
	if p.den == nil {
		return nil
	}
	return &Reuse{Den: p.den, WL: p.wl}
}

// dispatch runs a pre-bound disjoint-write stage over [0, n).
func (p *Placer) dispatch(n int, stage func(w, lo, hi int)) {
	if p.workers <= 1 || n < 2 {
		stage(0, 0, n)
		return
	}
	par.ForShards(p.workers, n, stage)
}

// bindStages constructs the force-sweep bodies once. Both stages only read
// the solved field (Grid.ForceOnRect is read-only) and write disjoint
// gradient slots, so any shard partition produces identical bits.
func (p *Placer) bindStages() {
	p.stageForceMov = func(w, lo, hi int) {
		d := p.D
		nm := len(p.movable)
		off := nm + p.nFill
		grad := p.evalGrad
		lambda := p.lambda
		for k := lo; k < hi; k++ {
			ci := p.movable[k]
			c := &d.Cells[ci]
			fx, fy := p.g.ForceOnRect(c.PaddedRect())
			gx := p.gradWx[ci] - lambda*fx
			gy := p.gradWy[ci] - lambda*fy
			// Preconditioner: pin count + λ·charge, per ePlace.
			h := math.Max(1, float64(len(c.Pins))+lambda*c.PaddedW()*c.H)
			grad[k] = gx / h
			grad[off+k] = gy / h
		}
	}
	p.stageForceFill = func(w, lo, hi int) {
		nm := len(p.movable)
		off := nm + p.nFill
		x, grad := p.evalX, p.evalGrad
		lambda := p.lambda
		fillerQ := p.fillerW * p.fillerH
		for f := lo; f < hi; f++ {
			if f >= p.activeFill {
				grad[nm+f] = 0
				grad[off+nm+f] = 0
				continue
			}
			fx, fy := p.g.ForceOnRect(p.fillerRect(x[nm+f], x[off+nm+f]))
			h := math.Max(1, lambda*fillerQ)
			grad[nm+f] = -lambda * fx / h
			grad[off+nm+f] = -lambda * fy / h
		}
	}
}

// Grid exposes the ACTIVE density grid (used by tests and experiments);
// with a pyramid it changes identity as the engine refines.
func (p *Placer) Grid() *density.Grid { return p.g }

// Solver exposes the density solver driving the engine (a *density.Grid or
// *density.Pyramid).
func (p *Placer) Solver() density.Solver { return p.den }

// Level reports the active density-grid level: 0 is the finest (the only
// level without a pyramid), Levels-1 the coarsest.
func (p *Placer) Level() int {
	if p.den == nil {
		return 0
	}
	return p.den.Level()
}

// writePositions scatters the movable-cell portion of vector x into the
// design as cell centers.
func (p *Placer) writePositions(x []float64) {
	nm := len(p.movable)
	off := nm + p.nFill
	for k, ci := range p.movable {
		p.D.Cells[ci].SetCenter(geom.Pt(x[k], x[off+k]))
	}
}

// fillerRect is the outline of a filler cell centered at (cx, cy).
func (p *Placer) fillerRect(cx, cy float64) geom.Rect {
	return geom.RectWH(cx-p.fillerW/2, cy-p.fillerH/2, p.fillerW, p.fillerH)
}

// buildRects refreshes the reusable deposit list: the padded outlines of
// all movable cells in movable order, then the first nFillActive filler
// outlines read from x. The backing array is retained across calls.
func (p *Placer) buildRects(x []float64, nFillActive int) {
	nm := len(p.movable)
	off := nm + p.nFill
	p.rects = p.rects[:0]
	for _, ci := range p.movable {
		p.rects = append(p.rects, p.D.Cells[ci].PaddedRect())
	}
	for f := 0; f < nFillActive; f++ {
		p.rects = append(p.rects, p.fillerRect(x[nm+f], x[off+nm+f]))
	}
}

// eval is the gradient oracle for the Nesterov optimizer: it computes
// ∇(W + λD) at positions x, preconditioned per variable. Its four phases —
// wirelength gradient, density rasterization, spectral solve, force sweep —
// run across the configured workers, and their cumulative walls feed the
// place.phase.* telemetry.
func (p *Placer) eval(x, grad []float64) {
	nm := len(p.movable)

	t := time.Now()
	p.writePositions(x)
	p.wl.Gamma = p.gamma
	p.wl.WirelengthAndGrad(p.gradWx, p.gradWy)
	p.wallWL += time.Since(t)

	t = time.Now()
	p.buildRects(x, p.activeFill)
	p.g.DepositRects(p.rects)
	p.wallRaster += time.Since(t)

	t = time.Now()
	p.g.Solve()
	p.wallSolve += time.Since(t)

	t = time.Now()
	p.evalX, p.evalGrad = x, grad
	p.dispatch(nm, p.stageForceMov)
	p.dispatch(p.nFill, p.stageForceFill)
	p.evalX, p.evalGrad = nil, nil
	p.wallForce += time.Since(t)
}

// project clamps every coordinate so cell centers stay inside the region
// (or the cell's fence, when constrained).
func (p *Placer) project(x []float64) {
	d := p.D
	nm := len(p.movable)
	off := nm + p.nFill
	lo, hi := d.Region.Lo, d.Region.Hi
	for k, ci := range p.movable {
		c := &d.Cells[ci]
		b := d.FenceRect(ci)
		x[k] = geom.Clamp(x[k], b.Lo.X+c.W/2, b.Hi.X-c.W/2)
		x[off+k] = geom.Clamp(x[off+k], b.Lo.Y+c.H/2, b.Hi.Y-c.H/2)
	}
	for f := 0; f < p.nFill; f++ {
		x[nm+f] = geom.Clamp(x[nm+f], lo.X+p.fillerW/2, hi.X-p.fillerW/2)
		x[off+nm+f] = geom.Clamp(x[off+nm+f], lo.Y+p.fillerH/2, hi.Y-p.fillerH/2)
	}
}

// computeOverflow measures density overflow of movable cells only (the τ
// trigger metric), at the current major solution.
func (p *Placer) computeOverflow() float64 {
	x := p.opt.Current()
	p.writePositions(x)
	p.buildRects(x, 0) // movables only: fillers are not congestion
	p.g.DepositRects(p.rects)
	return p.g.Overflow(p.Cfg.TargetDensity, p.D.TotalMovableArea()+p.D.TotalPaddingArea())
}

// updateGamma applies the ePlace γ schedule: smooth when overflow is high,
// sharp as the placement converges.
func (p *Placer) updateGamma() {
	ovf := geom.Clamp(p.overflow, 0, 1)
	k := 20.0 / 9.0
	b := -11.0 / 9.0
	p.gamma = 8 * p.binBase * math.Pow(10, k*ovf+b)
}

// initLambda balances the initial wirelength and density gradient norms.
func (p *Placer) initLambda() {
	x := p.opt.Current()

	p.writePositions(x)
	p.wl.Gamma = p.gamma
	p.wl.WirelengthAndGrad(p.gradWx, p.gradWy)
	p.buildRects(x, p.activeFill)
	p.g.DepositRects(p.rects)
	p.g.Solve()

	sumW, sumD := 0.0, 0.0
	for _, ci := range p.movable {
		c := &p.D.Cells[ci]
		fx, fy := p.g.ForceOnRect(c.PaddedRect())
		sumW += math.Abs(p.gradWx[ci]) + math.Abs(p.gradWy[ci])
		sumD += math.Abs(fx) + math.Abs(fy)
	}
	if sumD > 0 {
		p.lambda = sumW / sumD
	} else {
		p.lambda = 1
	}
}

// refineThreshold returns the overflow below which the engine leaves level
// lvl (≥ 1) for the next finer grid: the caller-specified schedule when
// set, otherwise the default τ_k = 0.2 + 0.6·k/L. The clamped pyramid may
// hold fewer levels than Config.PyramidLevels requested; indexing is by
// actual level.
func (p *Placer) refineThreshold(lvl int) float64 {
	if i := lvl - 1; i < len(p.Cfg.RefineOverflow) {
		return p.Cfg.RefineOverflow[i]
	}
	return 0.2 + 0.6*float64(lvl)/float64(p.den.Levels())
}

// refine switches the density solver to the next finer level and re-anchors
// the optimization on the new landscape: λ is re-balanced against the new
// grid's forces, and the Nesterov state restarts with the step length
// rescaled by the bin-size ratio so the first fine-level step is neither
// a coarse-scale overshoot nor a from-scratch crawl.
func (p *Placer) refine() bool {
	old := p.g
	if !p.den.Refine() {
		return false
	}
	p.g = p.den.Active()
	scale := (p.g.BinW + p.g.BinH) / (old.BinW + old.BinH)
	p.initLambda()
	p.opt.RestartScaled(scale)
	return true
}

// retireFillers deactivates fillers to offset padArea of newly added cell
// padding, keeping total charge roughly constant.
func (p *Placer) retireFillers(padArea float64) {
	if p.nFill == 0 || padArea <= 0 {
		return
	}
	drop := int(padArea / (p.fillerW * p.fillerH))
	p.activeFill -= drop
	if p.activeFill < 0 {
		p.activeFill = 0
	}
}

// Run executes global placement until convergence, calling hook (if any)
// every iteration. Final positions are written back to the design.
func (p *Placer) Run(hook Hook) *Result {
	res, _ := p.RunCtx(context.Background(), hook)
	return res
}

// RunCtx is Run with cancellation: the context is checked once per
// Nesterov iteration, so a cancel or deadline is observed within one
// iteration of work. On cancellation the current major solution is still
// written back to the design (every intermediate placement is a valid,
// in-region placement) and the partial Result is returned alongside an
// error wrapping flow.ErrCanceled.
func (p *Placer) RunCtx(ctx context.Context, hook Hook) (*Result, error) {
	res := &Result{}
	if len(p.movable) == 0 {
		return res, flow.Check(ctx)
	}
	p.overflow = 1
	p.updateGamma()
	p.initLambda()

	// Telemetry instruments resolve once; with a nil recorder every
	// Observe below is a nil-check no-op (0 allocs on this hot path —
	// see obs.BenchmarkDisabledTelemetryPerIteration).
	rec := p.Cfg.Obs
	sHPWL := rec.Series("place.hpwl")
	sOvf := rec.Series("place.overflow")
	sLambda := rec.Series("place.lambda")
	sGamma := rec.Series("place.gamma")
	sStep := rec.Series("place.step_len")
	cIters := rec.Counter("place.iters")
	gPhaseWL := rec.Gauge("place.phase.wl_grad_ms")
	gPhaseRaster := rec.Gauge("place.phase.raster_ms")
	gPhaseSolve := rec.Gauge("place.phase.solve_ms")
	gPhaseForce := rec.Gauge("place.phase.force_ms")
	gDenAnalysis := rec.Gauge("place.phase.density_analysis_ms")
	gDenSolve := rec.Gauge("place.phase.density_solve_ms")
	gDenSynth := rec.Gauge("place.phase.density_synthesis_ms")
	gGridLevel := rec.Gauge("place.grid_level")
	span, ctx := obs.Start(ctx, rec, "place.gp")
	defer func() {
		span.SetArg("workers", p.workers)
		span.SetArg("iters", res.Iters)
		span.SetArg("wl_grad_ms", p.wallWL.Seconds()*1e3)
		span.SetArg("raster_ms", p.wallRaster.Seconds()*1e3)
		span.SetArg("solve_ms", p.wallSolve.Seconds()*1e3)
		span.SetArg("force_ms", p.wallForce.Seconds()*1e3)
		span.SetArg("density_solves", p.den.Solves())
		span.SetArg("density_solve_skips", p.den.SolveSkips())
		span.End()
	}()
	flushPhases := func() {
		gPhaseWL.Set(p.wallWL.Seconds() * 1e3)
		gPhaseRaster.Set(p.wallRaster.Seconds() * 1e3)
		gPhaseSolve.Set(p.wallSolve.Seconds() * 1e3)
		gPhaseForce.Set(p.wallForce.Seconds() * 1e3)
		// The spectral solve split by phase, from the solver's own clocks
		// (sums every pyramid level), plus the active level.
		da, df, ds := p.den.PhaseWalls()
		gDenAnalysis.Set(da.Seconds() * 1e3)
		gDenSolve.Set(df.Seconds() * 1e3)
		gDenSynth.Set(ds.Seconds() * 1e3)
		gGridLevel.Set(float64(p.den.Level()))
	}

	ring := newTraceRing(p.Cfg.TraceCap)
	flushTrace := func() {
		res.Trace = ring.items()
		res.TraceDropped = ring.dropped
	}

	prevPadArea := p.D.TotalPaddingArea()
	prevHPWL := p.D.HPWL()
	bestOverflow := math.Inf(1)
	bestIter := 0
	for iter := 1; iter <= p.Cfg.MaxIters; iter++ {
		if err := flow.Check(ctx); err != nil {
			p.writePositions(p.opt.Current())
			res.HPWL = p.D.HPWL()
			res.Overflow = p.overflow
			flushTrace()
			return res, err
		}
		p.overflow = p.computeOverflow()
		// Pyramid refinement: once the coarse landscape has spread the
		// cells below the level's threshold, move one level finer and
		// re-measure there (overflow on a finer grid is sharper, so the
		// check re-runs next iteration rather than cascading levels on a
		// stale value).
		if lvl := p.den.Level(); lvl > 0 && p.overflow <= p.refineThreshold(lvl) {
			p.refine()
			p.overflow = p.computeOverflow()
			bestOverflow = math.Inf(1)
			bestIter = iter
		}
		p.updateGamma()

		padded := false
		if hook != nil {
			padded = hook.OnIteration(iter, p.overflow)
			if padded {
				newPad := p.D.TotalPaddingArea()
				p.retireFillers(newPad - prevPadArea)
				prevPadArea = newPad
				// The objective changed shape: re-balance the density
				// penalty against the wirelength gradient and drop the
				// stale Nesterov momentum, otherwise λ keeps compounding
				// through the absorption phase and shreds the wirelength.
				p.initLambda()
				p.opt.Restart()
			}
		}

		hpwl := p.D.HPWL()
		if p.Cfg.Logf != nil && iter%50 == 0 {
			p.Cfg.Logf("place: iter=%d overflow=%.4f hpwl=%.0f lambda=%.3g gamma=%.3g",
				iter, p.overflow, hpwl, p.lambda, p.gamma)
		}
		ring.add(IterStats{
			Iter: iter, HPWL: hpwl, Overflow: p.overflow,
			Lambda: p.lambda, Gamma: p.gamma, Padded: padded,
		})
		sHPWL.Observe(iter, hpwl)
		sOvf.Observe(iter, p.overflow)
		sLambda.Observe(iter, p.lambda)
		sGamma.Observe(iter, p.gamma)
		sStep.Observe(iter, p.opt.Alpha())
		cIters.Inc()
		flushPhases()
		res.Iters = iter

		// Convergence checks only apply at the finest level: a coarse
		// level's overflow is not the final metric.
		if iter >= p.Cfg.MinIters && p.overflow <= p.Cfg.StopOverflow && p.den.Level() == 0 {
			break
		}
		// Plateau detection: padding can make StopOverflow unreachable;
		// once overflow stops improving, more iterations only let λ
		// compound and shred the wirelength. On a coarse level a plateau
		// means the threshold is unreachable there — refine instead of
		// giving up.
		if p.overflow < bestOverflow*0.999 {
			bestOverflow = p.overflow
			bestIter = iter
		}
		if p.Cfg.PlateauIters > 0 && iter >= p.Cfg.MinIters && iter-bestIter >= p.Cfg.PlateauIters {
			if p.den.Level() == 0 {
				break
			}
			p.refine()
			p.overflow = p.computeOverflow()
			bestOverflow = math.Inf(1)
			bestIter = iter
		}
		p.opt.Step(p.projectFn)

		// Adaptive penalty schedule: full LambdaMu growth while HPWL is
		// steady, down to 1/LambdaMu when wirelength degrades faster than
		// 3% per iteration (density force dominating). The 3% reference
		// still lets the necessary spreading-phase HPWL growth happen.
		ref := 0.03 * math.Max(hpwl, 1e-9)
		arg := geom.Clamp(1-(hpwl-prevHPWL)/ref, -1, 1)
		p.lambda *= math.Pow(p.Cfg.LambdaMu, arg)
		prevHPWL = hpwl
	}

	p.writePositions(p.opt.Current())
	res.HPWL = p.D.HPWL()
	res.Overflow = p.overflow
	flushTrace()
	return res, nil
}
