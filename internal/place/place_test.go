package place

import (
	"math"
	"math/rand"
	"testing"

	"puffer/internal/geom"
	"puffer/internal/netlist"
)

// smallDesign builds nc unit cells in a 64x64 region with chained 2-3 pin
// nets and an optional central macro.
func smallDesign(seed int64, nc int, withMacro bool) *netlist.Design {
	rng := rand.New(rand.NewSource(seed))
	d := &netlist.Design{
		Name:      "small",
		Region:    geom.RectWH(0, 0, 64, 64),
		RowHeight: 1,
		SiteWidth: 0.25,
		Layers:    netlist.DefaultLayers(),
	}
	if withMacro {
		d.AddCell(netlist.Cell{Name: "macro", W: 16, H: 16, X: 24, Y: 24, Fixed: true, Macro: true})
	}
	for i := 0; i < nc; i++ {
		d.AddCell(netlist.Cell{W: 1, H: 1, X: 32, Y: 32})
	}
	base := 0
	if withMacro {
		base = 1
	}
	for i := 0; i+2 < nc; i += 2 {
		n := d.AddNet("", 1)
		d.Connect(base+i, n, 0.5, 0.5)
		d.Connect(base+i+1, n, 0.5, 0.5)
		if rng.Intn(2) == 0 {
			d.Connect(base+i+2, n, 0.5, 0.5)
		}
	}
	return d
}

func quickConfig() Config {
	cfg := DefaultConfig()
	cfg.MaxIters = 300
	cfg.GridM, cfg.GridN = 32, 32
	return cfg
}

func TestPlacementSpreadsCells(t *testing.T) {
	d := smallDesign(1, 300, false)
	p := New(d, quickConfig())
	res := p.Run(nil)
	if res.Overflow > 0.12 {
		t.Errorf("final overflow = %v, want <= 0.12", res.Overflow)
	}
	if res.Iters == 0 || len(res.Trace) != res.Iters {
		t.Errorf("trace length %d != iters %d", len(res.Trace), res.Iters)
	}
	// Cells spread: bounding box of placements covers a good part of the
	// region rather than the initial center cluster.
	var lo, hi geom.Point
	lo = geom.Pt(math.Inf(1), math.Inf(1))
	hi = geom.Pt(math.Inf(-1), math.Inf(-1))
	for i := range d.Cells {
		c := d.Cells[i].Center()
		lo.X = math.Min(lo.X, c.X)
		lo.Y = math.Min(lo.Y, c.Y)
		hi.X = math.Max(hi.X, c.X)
		hi.Y = math.Max(hi.Y, c.Y)
	}
	if (hi.X-lo.X) < 16 || (hi.Y-lo.Y) < 16 {
		t.Errorf("cells did not spread: bbox %vx%v", hi.X-lo.X, hi.Y-lo.Y)
	}
}

func TestCellsStayInsideRegion(t *testing.T) {
	d := smallDesign(2, 200, false)
	p := New(d, quickConfig())
	p.Run(nil)
	for i := range d.Cells {
		c := &d.Cells[i]
		if c.X < -1e-9 || c.Y < -1e-9 || c.X+c.W > 64+1e-9 || c.Y+c.H > 64+1e-9 {
			t.Fatalf("cell %d escaped region: (%v,%v)", i, c.X, c.Y)
		}
	}
}

func TestMacroRepelsCells(t *testing.T) {
	d := smallDesign(3, 300, true)
	p := New(d, quickConfig())
	p.Run(nil)
	macro := geom.RectWH(24, 24, 16, 16)
	overlap := 0.0
	for i := range d.Cells {
		if d.Cells[i].Fixed {
			continue
		}
		overlap += d.Cells[i].Rect().OverlapArea(macro)
	}
	total := d.TotalMovableArea()
	if overlap > 0.10*total {
		t.Errorf("%.1f%% of movable area sits on the macro", 100*overlap/total)
	}
}

func TestConnectedCellsEndUpCloser(t *testing.T) {
	d := smallDesign(4, 300, false)
	p := New(d, quickConfig())
	p.Run(nil)

	// Average distance between connected pairs vs random pairs.
	rng := rand.New(rand.NewSource(9))
	connected, random := 0.0, 0.0
	pairs := 0
	for n := range d.Nets {
		pins := d.Nets[n].Pins
		if len(pins) < 2 {
			continue
		}
		a := d.Cells[d.Pins[pins[0]].Cell].Center()
		b := d.Cells[d.Pins[pins[1]].Cell].Center()
		connected += a.ManhattanDist(b)
		ra := d.Cells[d.MovableIDs()[rng.Intn(300)]].Center()
		rb := d.Cells[d.MovableIDs()[rng.Intn(300)]].Center()
		random += ra.ManhattanDist(rb)
		pairs++
	}
	if pairs == 0 {
		t.Fatal("no pairs")
	}
	if connected >= random {
		t.Errorf("connected pairs avg dist %v >= random pairs %v", connected/float64(pairs), random/float64(pairs))
	}
}

func TestOverflowDecreasesOverall(t *testing.T) {
	d := smallDesign(5, 250, false)
	p := New(d, quickConfig())
	res := p.Run(nil)
	first := res.Trace[0].Overflow
	last := res.Trace[len(res.Trace)-1].Overflow
	if last >= first {
		t.Errorf("overflow did not decrease: %v -> %v", first, last)
	}
}

func TestHookInvokedAndPaddingRetiresFillers(t *testing.T) {
	d := smallDesign(6, 200, false)
	p := New(d, quickConfig())
	if p.nFill == 0 {
		t.Fatal("expected fillers in a sparse design")
	}
	before := p.activeFill
	calls := 0
	hook := HookFunc(func(iter int, overflow float64) bool {
		calls++
		if iter == 50 {
			for i := range d.Cells {
				if !d.Cells[i].Fixed {
					d.Cells[i].PadW = 0.5
				}
			}
			return true
		}
		return false
	})
	p.Run(hook)
	if calls == 0 {
		t.Fatal("hook never invoked")
	}
	if p.activeFill >= before {
		t.Errorf("fillers not retired after padding: %d -> %d", before, p.activeFill)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	run := func() []float64 {
		d := smallDesign(7, 150, false)
		cfg := quickConfig()
		cfg.MaxIters = 80
		cfg.Seed = 42
		New(d, cfg).Run(nil)
		out := make([]float64, 0, 2*len(d.Cells))
		for i := range d.Cells {
			out = append(out, d.Cells[i].X, d.Cells[i].Y)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestEmptyDesign(t *testing.T) {
	d := &netlist.Design{Region: geom.RectWH(0, 0, 10, 10), RowHeight: 1, SiteWidth: 0.2}
	p := New(d, DefaultConfig())
	res := p.Run(nil)
	if res.Iters != 0 {
		t.Errorf("empty design ran %d iters", res.Iters)
	}
}

func TestBadTargetDensityPanics(t *testing.T) {
	d := smallDesign(8, 10, false)
	cfg := DefaultConfig()
	cfg.TargetDensity = 0
	defer func() {
		if recover() == nil {
			t.Error("no panic for zero target density")
		}
	}()
	New(d, cfg)
}
