package place

import (
	"errors"
	"math"
	"testing"
)

// TestConfigValidateRejects covers the typed rejection path: bad grid and
// schedule parameters surface as *ConfigError from NewChecked instead of a
// panic from the spectral setup.
func TestConfigValidateRejects(t *testing.T) {
	cases := []struct {
		name  string
		mod   func(*Config)
		field string
	}{
		{"density", func(c *Config) { c.TargetDensity = 1.5 }, "TargetDensity"},
		{"gridM-not-pow2", func(c *Config) { c.GridM = 48 }, "GridM"},
		{"gridM-too-small", func(c *Config) { c.GridM = 8 }, "GridM"},
		{"gridN", func(c *Config) { c.GridM = 32; c.GridN = 7 }, "GridN"},
		{"levels-negative", func(c *Config) { c.PyramidLevels = -1 }, "PyramidLevels"},
		{"refine-no-pyramid", func(c *Config) { c.RefineOverflow = []float64{0.5} }, "RefineOverflow"},
		{"refine-len", func(c *Config) {
			c.PyramidLevels = 3
			c.RefineOverflow = []float64{0.5}
		}, "RefineOverflow"},
		{"refine-descending", func(c *Config) {
			c.PyramidLevels = 3
			c.RefineOverflow = []float64{0.6, 0.4}
		}, "RefineOverflow"},
		{"refine-range", func(c *Config) {
			c.PyramidLevels = 2
			c.RefineOverflow = []float64{1.2}
		}, "RefineOverflow"},
	}
	d := smallDesign(1, 50, false)
	for _, tc := range cases {
		cfg := DefaultConfig()
		tc.mod(&cfg)
		_, err := NewChecked(d, cfg)
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Errorf("%s: NewChecked err = %v, want *ConfigError", tc.name, err)
			continue
		}
		if ce.Field != tc.field {
			t.Errorf("%s: rejected field %q, want %q", tc.name, ce.Field, tc.field)
		}
	}

	// New must panic with the same typed error.
	func() {
		defer func() {
			r := recover()
			if _, ok := r.(*ConfigError); !ok {
				t.Errorf("New panic = %v, want *ConfigError", r)
			}
		}()
		cfg := DefaultConfig()
		cfg.GridM = 10
		New(smallDesign(1, 10, false), cfg)
	}()

	// A valid config — including a pyramid with a custom schedule — passes.
	cfg := DefaultConfig()
	cfg.GridM, cfg.GridN = 64, 32
	cfg.PyramidLevels = 3
	cfg.RefineOverflow = []float64{0.4, 0.6}
	if _, err := NewChecked(d, cfg); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// TestPyramidRefinesToFinest checks the refinement schedule actually walks
// to level 0 and that the final grid is the full requested resolution.
func TestPyramidRefinesToFinest(t *testing.T) {
	d := smallDesign(3, 300, false)
	cfg := quickConfig()
	cfg.PyramidLevels = 2
	p := New(d, cfg)
	if p.Level() != 1 {
		t.Fatalf("starting level = %d, want coarsest (1)", p.Level())
	}
	res := p.Run(nil)
	if p.Level() != 0 {
		t.Errorf("final level = %d, want 0", p.Level())
	}
	if g := p.Grid(); g.M != 32 || g.N != 32 {
		t.Errorf("final grid %dx%d, want 32x32", g.M, g.N)
	}
	if res.Overflow > 0.12 {
		t.Errorf("final overflow = %v, want <= 0.12", res.Overflow)
	}
}

// TestPyramidMatchesFixedGridBand is the cross-level equivalence test: a
// pyramid run and a fixed-fine-grid run of the same design must land in
// the same HPWL/overflow band (they are different trajectories to the same
// objective, not bit-identical).
func TestPyramidMatchesFixedGridBand(t *testing.T) {
	mk := func(levels int) (hpwl, ovf float64) {
		d := smallDesign(7, 400, true)
		cfg := quickConfig()
		cfg.PyramidLevels = levels
		res := New(d, cfg).Run(nil)
		return res.HPWL, res.Overflow
	}
	fixHPWL, fixOvf := mk(0)
	pyrHPWL, pyrOvf := mk(3)

	if ratio := pyrHPWL / fixHPWL; ratio < 0.85 || ratio > 1.15 {
		t.Errorf("pyramid HPWL %v vs fixed %v: ratio %.3f outside ±15%%", pyrHPWL, fixHPWL, ratio)
	}
	if math.Abs(pyrOvf-fixOvf) > 0.05 {
		t.Errorf("pyramid overflow %v vs fixed %v: outside 0.05 band", pyrOvf, fixOvf)
	}
}

// TestGPDeterminismPyramidAcrossWorkers extends the PR 5 contract to the
// pyramid path: the full multi-level run is bit-identical for any worker
// count.
func TestGPDeterminismPyramidAcrossWorkers(t *testing.T) {
	run := func(workers int) ([]float64, float64) {
		d := smallDesign(11, 250, false)
		cfg := quickConfig()
		cfg.MaxIters = 60
		cfg.PyramidLevels = 2
		cfg.Workers = workers
		p := New(d, cfg)
		res := p.Run(nil)
		xs := make([]float64, 0, 2*len(d.Cells))
		for i := range d.Cells {
			c := d.Cells[i].Center()
			xs = append(xs, c.X, c.Y)
		}
		return xs, res.HPWL
	}
	refX, refHPWL := run(1)
	for _, w := range []int{2, 4} {
		xs, hpwl := run(w)
		if hpwl != refHPWL {
			t.Fatalf("workers=%d: HPWL %v != serial %v (bit-exact)", w, hpwl, refHPWL)
		}
		for i := range xs {
			if xs[i] != refX[i] {
				t.Fatalf("workers=%d: coord %d = %v != serial %v", w, i, xs[i], refX[i])
			}
		}
	}
}

// TestSolveSkipDuringRun is the integration check for the redundant-solve
// audit: initLambda solves the full deposit, and the first eval at the
// same position re-deposits the identical list — the engine must satisfy
// at least one of those solves from the fingerprint.
func TestSolveSkipDuringRun(t *testing.T) {
	d := smallDesign(5, 200, false)
	cfg := quickConfig()
	cfg.MaxIters = 10
	p := New(d, cfg)
	p.Run(nil)
	if skips := p.Solver().SolveSkips(); skips < 1 {
		t.Errorf("run performed %d fingerprint solve skips, want >= 1", skips)
	}
	if solves := p.Solver().Solves(); solves < 10 {
		t.Errorf("run performed only %d real solves over 10 iters", solves)
	}
}
