package place

import (
	"math"
	"testing"

	"puffer/internal/wirelength"
)

// TestGammaSchedule verifies the ePlace γ schedule: smooth (large γ) at
// high overflow, sharp (small γ) near convergence, monotone in between.
func TestGammaSchedule(t *testing.T) {
	d := smallDesign(11, 50, false)
	p := New(d, quickConfig())
	prev := math.Inf(1)
	for _, ovf := range []float64{1.0, 0.5, 0.25, 0.1, 0.0} {
		p.overflow = ovf
		p.updateGamma()
		if p.gamma <= 0 {
			t.Fatalf("gamma = %v at overflow %v", p.gamma, ovf)
		}
		if p.gamma >= prev {
			t.Errorf("gamma not decreasing: %v at overflow %v (prev %v)", p.gamma, ovf, prev)
		}
		prev = p.gamma
	}
	// Range: roughly 0.8..80 bin sizes per the 10^(k·ovf+b) schedule.
	p.overflow = 1
	p.updateGamma()
	if p.gamma > 100*p.binBase {
		t.Errorf("gamma at full overflow = %v, bin %v", p.gamma, p.binBase)
	}
	p.overflow = 0
	p.updateGamma()
	if p.gamma < 0.01*p.binBase {
		t.Errorf("gamma at zero overflow = %v, bin %v", p.gamma, p.binBase)
	}
}

// TestInitLambdaBalances checks that the initial λ equalizes wirelength
// and density gradient magnitudes.
func TestInitLambdaBalances(t *testing.T) {
	d := smallDesign(12, 200, false)
	p := New(d, quickConfig())
	p.overflow = 1
	p.updateGamma()
	p.initLambda()
	if p.lambda <= 0 || math.IsInf(p.lambda, 0) || math.IsNaN(p.lambda) {
		t.Fatalf("lambda = %v", p.lambda)
	}
	// Recomputing is deterministic.
	l1 := p.lambda
	p.initLambda()
	if p.lambda != l1 {
		t.Errorf("initLambda not deterministic: %v vs %v", l1, p.lambda)
	}
}

// TestPlateauStops verifies the engine halts on an overflow plateau
// instead of burning MaxIters.
func TestPlateauStops(t *testing.T) {
	d := smallDesign(13, 150, false)
	cfg := quickConfig()
	cfg.MaxIters = 5000
	cfg.StopOverflow = 0.000001 // unreachable
	cfg.PlateauIters = 60
	p := New(d, cfg)
	res := p.Run(nil)
	if res.Iters >= 5000 {
		t.Errorf("plateau detection never engaged: %d iters", res.Iters)
	}
}

// TestLambdaBacksOffWhenWirelengthDegrades: with an enormous λ the HPWL
// would explode; the adaptive multiplier must pull it back rather than
// compound it.
func TestLambdaAdaptiveBounded(t *testing.T) {
	d := smallDesign(14, 150, false)
	cfg := quickConfig()
	cfg.MaxIters = 150
	p := New(d, cfg)
	res := p.Run(nil)
	last := res.Trace[len(res.Trace)-1]
	if math.IsInf(last.Lambda, 0) || math.IsNaN(last.Lambda) {
		t.Fatalf("lambda diverged: %v", last.Lambda)
	}
	// HPWL growth across the run stays within sane spreading bounds.
	first := res.Trace[0]
	if last.HPWL > 100*first.HPWL+1 {
		t.Errorf("wirelength shredded: %v -> %v", first.HPWL, last.HPWL)
	}
}

// TestLSEModelAlsoConverges runs the engine with the log-sum-exp
// wirelength alternative and checks it spreads comparably.
func TestLSEModelAlsoConverges(t *testing.T) {
	d := smallDesign(16, 250, false)
	cfg := quickConfig()
	cfg.WLModel = wirelength.LSE
	p := New(d, cfg)
	res := p.Run(nil)
	if res.Overflow > 0.12 {
		t.Errorf("LSE flow overflow = %v", res.Overflow)
	}
	if res.HPWL <= 0 {
		t.Error("LSE flow zero HPWL")
	}
}

// TestFillerRetirement checks the padding/filler area exchange.
func TestFillerRetirement(t *testing.T) {
	d := smallDesign(15, 200, false)
	p := New(d, quickConfig())
	if p.nFill == 0 {
		t.Skip("no fillers")
	}
	before := p.activeFill
	p.retireFillers(5 * p.fillerW * p.fillerH)
	if p.activeFill != before-5 {
		t.Errorf("retired %d fillers, want 5", before-p.activeFill)
	}
	p.retireFillers(1e12)
	if p.activeFill != 0 {
		t.Errorf("activeFill = %d, want 0 after huge retirement", p.activeFill)
	}
	p.retireFillers(-5)
	if p.activeFill != 0 {
		t.Error("negative retirement changed state")
	}
}
