package place

import (
	"testing"

	"puffer/internal/obs"
)

func TestTraceRingUnbounded(t *testing.T) {
	r := newTraceRing(-1)
	for i := 1; i <= 10_000; i++ {
		r.add(IterStats{Iter: i})
	}
	items := r.items()
	if len(items) != 10_000 || r.dropped != 0 {
		t.Fatalf("unbounded ring: len=%d dropped=%d", len(items), r.dropped)
	}
	if items[0].Iter != 1 || items[len(items)-1].Iter != 10_000 {
		t.Fatalf("order broken: first=%d last=%d", items[0].Iter, items[len(items)-1].Iter)
	}
}

func TestTraceRingEvictsOldestKeepsOrder(t *testing.T) {
	r := newTraceRing(8)
	for i := 1; i <= 20; i++ {
		r.add(IterStats{Iter: i})
	}
	items := r.items()
	if len(items) != 8 || r.dropped != 12 {
		t.Fatalf("len=%d dropped=%d", len(items), r.dropped)
	}
	for k, it := range items {
		if want := 13 + k; it.Iter != want {
			t.Fatalf("items[%d].Iter = %d, want %d (chronological, newest-retained)", k, it.Iter, want)
		}
	}
}

func TestTraceRingExactWrapBoundary(t *testing.T) {
	r := newTraceRing(5)
	for i := 1; i <= 10; i++ { // exactly two full cycles: next wraps to 0
		r.add(IterStats{Iter: i})
	}
	items := r.items()
	if len(items) != 5 {
		t.Fatalf("len=%d", len(items))
	}
	for k, it := range items {
		if want := 6 + k; it.Iter != want {
			t.Fatalf("items[%d].Iter = %d, want %d", k, it.Iter, want)
		}
	}
}

func TestTraceRingZeroSelectsDefaultCap(t *testing.T) {
	r := newTraceRing(0)
	if r.max != DefaultTraceCap {
		t.Fatalf("cap = %d, want DefaultTraceCap %d", r.max, DefaultTraceCap)
	}
}

// TestRunTraceBounded runs the engine with a tiny cap and checks the
// Result keeps only the newest iterations, in order, with the eviction
// count reported.
func TestRunTraceBounded(t *testing.T) {
	d := smallDesign(1, 60, false)
	cfg := quickConfig()
	cfg.MaxIters = 50
	cfg.MinIters = 50
	cfg.StopOverflow = 0 // never converge early
	cfg.PlateauIters = 0
	cfg.TraceCap = 10
	res := New(d, cfg).Run(nil)
	if res.Iters != 50 {
		t.Fatalf("iters = %d", res.Iters)
	}
	if len(res.Trace) != 10 || res.TraceDropped != 40 {
		t.Fatalf("trace len=%d dropped=%d", len(res.Trace), res.TraceDropped)
	}
	for k, it := range res.Trace {
		if want := 41 + k; it.Iter != want {
			t.Fatalf("trace[%d].Iter = %d, want %d", k, it.Iter, want)
		}
	}
}

// TestRunRecordsSeries checks the per-iteration telemetry: one sample per
// engine iteration on every series, step-aligned with the trace.
func TestRunRecordsSeries(t *testing.T) {
	d := smallDesign(1, 60, false)
	reg := obs.NewRegistry()
	cfg := quickConfig()
	cfg.MaxIters = 30
	cfg.MinIters = 30
	cfg.StopOverflow = 0
	cfg.PlateauIters = 0
	cfg.Obs = obs.NewRecorder(nil, reg)
	res := New(d, cfg).Run(nil)

	for _, name := range []string{"place.hpwl", "place.overflow", "place.lambda", "place.gamma", "place.step_len"} {
		s := reg.Series(name).Samples()
		if len(s) != res.Iters {
			t.Fatalf("series %s has %d samples, want %d", name, len(s), res.Iters)
		}
		if s[0].Step != 1 || s[len(s)-1].Step != res.Iters {
			t.Fatalf("series %s steps [%d..%d], want [1..%d]", name, s[0].Step, s[len(s)-1].Step, res.Iters)
		}
	}
	if got := reg.Counter("place.iters").Value(); got != int64(res.Iters) {
		t.Fatalf("place.iters counter = %d, want %d", got, res.Iters)
	}
	// Series values mirror the IterStats trace.
	hpwl := reg.Series("place.hpwl").Samples()
	for k, it := range res.Trace {
		if hpwl[k].Value != it.HPWL {
			t.Fatalf("hpwl sample %d = %v, trace says %v", k, hpwl[k].Value, it.HPWL)
		}
	}
}

// benchPlacer builds a fresh mid-size placer whose RunCtx executes
// exactly iters iterations (no early stop), for per-iteration costing.
func benchPlacer(iters int, rec *obs.Recorder) *Placer {
	d := smallDesign(1, 400, false)
	cfg := DefaultConfig()
	cfg.GridM, cfg.GridN = 32, 32
	cfg.MaxIters = iters
	cfg.MinIters = iters
	cfg.StopOverflow = 0
	cfg.PlateauIters = 0
	cfg.Obs = rec
	return New(d, cfg)
}

// BenchmarkPlaceIterObsDisabled is the place-iteration hot path with
// telemetry compiled in but disabled (nil recorder) — the default
// production configuration. Compared against BenchmarkPlaceIterObsEnabled
// by CI (BENCH_obs.json); the disabled run must stay within the 2%
// overhead budget of the acceptance criteria, which it does because each
// disabled instrument call is a nil check (see the 0-alloc proof in
// internal/obs BenchmarkDisabledTelemetryPerIteration).
func BenchmarkPlaceIterObsDisabled(b *testing.B) {
	b.ReportAllocs()
	p := benchPlacer(b.N, nil)
	b.ResetTimer()
	p.Run(nil)
}

// BenchmarkPlaceIterObsEnabled is the same workload with a live recorder
// capturing all five per-iteration series.
func BenchmarkPlaceIterObsEnabled(b *testing.B) {
	b.ReportAllocs()
	rec := obs.NewRecorder(obs.NewTracer(), obs.NewRegistry())
	p := benchPlacer(b.N, rec)
	b.ResetTimer()
	p.Run(nil)
}
