// Package report renders placement results as a self-contained HTML file:
// an SVG plot of the die (macros, fences, movable cells colored by
// padding), congestion heat maps, and the headline metrics. It gives the
// framework the "open the result in a browser" workflow that placement
// developers rely on.
package report

import (
	"fmt"
	"html"
	"math"
	"os"
	"strings"

	"puffer/internal/cong"
	"puffer/internal/netlist"
	"puffer/internal/router"
)

// Options control the rendering.
type Options struct {
	// Title heads the report.
	Title string
	// PlotSize is the SVG width in pixels (height follows the aspect).
	PlotSize int
	// MaxCells caps how many movable cells are drawn (huge designs would
	// produce unwieldy SVGs); cells are subsampled evenly beyond it.
	MaxCells int
}

// DefaultOptions returns the standard rendering settings.
func DefaultOptions() Options {
	return Options{Title: "PUFFER placement report", PlotSize: 820, MaxCells: 20000}
}

// Write renders the design (and, if non-nil, the routing result) into an
// HTML file at path.
func Write(path string, d *netlist.Design, rr *router.Result, o Options) error {
	if o.PlotSize <= 0 {
		o = DefaultOptions()
	}
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n")
	fmt.Fprintf(&b, "<title>%s</title>\n", html.EscapeString(o.Title))
	b.WriteString(`<style>
body { font-family: -apple-system, system-ui, sans-serif; margin: 2em; color: #222; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.6em; }
table { border-collapse: collapse; margin: 0.6em 0; }
td, th { border: 1px solid #ccc; padding: 0.25em 0.7em; text-align: right; }
th { background: #f2f2f2; }
.legend span { display: inline-block; margin-right: 1.2em; font-size: 0.9em; }
.swatch { display: inline-block; width: 0.9em; height: 0.9em; margin-right: 0.3em; vertical-align: -0.1em; }
</style></head><body>
`)
	fmt.Fprintf(&b, "<h1>%s</h1>\n", html.EscapeString(o.Title))

	writeSummary(&b, d, rr)
	writePlacementSVG(&b, d, o)
	if rr != nil {
		writeCongestion(&b, rr.Map)
	}
	b.WriteString("</body></html>\n")
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

func writeSummary(b *strings.Builder, d *netlist.Design, rr *router.Result) {
	s := d.Stats()
	b.WriteString("<h2>Design</h2>\n<table><tr><th>design</th><th>#macros</th><th>#cells</th><th>#nets</th><th>#pins</th><th>HPWL</th><th>padding area</th></tr>\n")
	fmt.Fprintf(b, "<tr><td>%s</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%.0f</td><td>%.1f</td></tr></table>\n",
		html.EscapeString(d.Name), s.Macros, s.Cells, s.Nets, s.Pins, d.HPWL(), d.TotalPaddingArea())
	if rr == nil {
		return
	}
	peak, ace := rr.Map.StandardACE()
	b.WriteString("<h2>Routing</h2>\n<table><tr><th>HOF%</th><th>VOF%</th><th>routed WL</th><th>segments</th><th>ACE peak</th><th>ACE 0.5%</th><th>ACE 2%</th></tr>\n")
	fmt.Fprintf(b, "<tr><td>%.2f</td><td>%.2f</td><td>%.0f</td><td>%d</td><td>%.3f</td><td>%.3f</td><td>%.3f</td></tr></table>\n",
		rr.HOF, rr.VOF, rr.WL, rr.Segments, peak, ace[0], ace[2])
}

// padColor maps a padding amount (relative to the max) to a fill color.
func padColor(frac float64) string {
	// Light blue (unpadded) to deep orange (max padding).
	r := int(70 + 185*frac)
	g := int(130 - 60*frac)
	bl := int(180 - 150*frac)
	return fmt.Sprintf("rgb(%d,%d,%d)", r, g, bl)
}

func writePlacementSVG(b *strings.Builder, d *netlist.Design, o Options) {
	w := float64(o.PlotSize)
	scale := w / d.Region.W()
	h := d.Region.H() * scale

	maxPad := 0.0
	movable := 0
	for i := range d.Cells {
		if !d.Cells[i].Fixed {
			movable++
			if d.Cells[i].PadW > maxPad {
				maxPad = d.Cells[i].PadW
			}
		}
	}
	step := 1
	if o.MaxCells > 0 && movable > o.MaxCells {
		step = (movable + o.MaxCells - 1) / o.MaxCells
	}

	b.WriteString("<h2>Placement</h2>\n")
	b.WriteString(`<div class="legend"><span><span class="swatch" style="background:#bbb"></span>macro</span>` +
		`<span><span class="swatch" style="background:rgb(70,130,180)"></span>cell (no padding)</span>` +
		`<span><span class="swatch" style="background:rgb(255,70,30)"></span>cell (max padding)</span>` +
		`<span><span class="swatch" style="background:none;border:1px dashed #c33"></span>fence</span></div>` + "\n")
	fmt.Fprintf(b, `<svg width="%.0f" height="%.0f" viewBox="0 0 %.2f %.2f" style="border:1px solid #999; background:#fdfdfd">`+"\n", w, h, w, h)

	// y flips: SVG y grows downward.
	tx := func(x float64) float64 { return (x - d.Region.Lo.X) * scale }
	ty := func(y float64) float64 { return h - (y-d.Region.Lo.Y)*scale }

	for i := range d.Cells {
		c := &d.Cells[i]
		if !c.Fixed {
			continue
		}
		fmt.Fprintf(b, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="#bbb" stroke="#888" stroke-width="0.5"/>`+"\n",
			tx(c.X), ty(c.Y+c.H), c.W*scale, c.H*scale)
	}
	k := 0
	for i := range d.Cells {
		c := &d.Cells[i]
		if c.Fixed {
			continue
		}
		k++
		if step > 1 && k%step != 0 {
			continue
		}
		frac := 0.0
		if maxPad > 0 {
			frac = c.PadW / maxPad
		}
		fmt.Fprintf(b, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s" fill-opacity="0.85"/>`+"\n",
			tx(c.X), ty(c.Y+c.H), math.Max(c.W*scale, 0.6), math.Max(c.H*scale, 0.6), padColor(frac))
	}
	for _, f := range d.Fences {
		fmt.Fprintf(b, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="none" stroke="#c33" stroke-width="1.2" stroke-dasharray="4,3"/>`+"\n",
			tx(f.Rect.Lo.X), ty(f.Rect.Hi.Y), f.Rect.W()*scale, f.Rect.H()*scale)
	}
	b.WriteString("</svg>\n")
	if step > 1 {
		fmt.Fprintf(b, "<p>(showing every %d-th of %d movable cells)</p>\n", step, movable)
	}
}

// writeCongestion renders the H/V overflow maps as colored HTML grids (an
// SVG per direction would be heavy for large grids; table cells compress
// well and remain inspectable).
func writeCongestion(b *strings.Builder, m *cong.Map) {
	render := func(title string, overflow func(int) float64) {
		maxV := 0.0
		for i := 0; i < m.W*m.H; i++ {
			maxV = math.Max(maxV, overflow(i))
		}
		fmt.Fprintf(b, "<h2>%s (max %.1f tracks)</h2>\n", html.EscapeString(title), maxV)
		// Downsample to at most 64 columns for readability.
		step := 1
		for m.W/step > 64 || m.H/step > 64 {
			step++
		}
		cell := 10
		fmt.Fprintf(b, `<svg width="%d" height="%d">`+"\n", m.W/step*cell+cell, m.H/step*cell+cell)
		for j := m.H - 1; j >= 0; j -= step {
			for i := 0; i < m.W; i += step {
				v := overflow(m.Index(i, j))
				frac := 0.0
				if maxV > 0 {
					frac = v / maxV
				}
				red := int(255 * frac)
				fmt.Fprintf(b, `<rect x="%d" y="%d" width="%d" height="%d" fill="rgb(%d,%d,%d)"/>`,
					i/step*cell, (m.H-1-j)/step*cell, cell, cell, 255, 255-red, 255-red)
			}
			b.WriteString("\n")
		}
		b.WriteString("</svg>\n")
	}
	render("Horizontal overflow", m.OverflowH)
	render("Vertical overflow", m.OverflowV)
}
