package report

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"puffer"
	"puffer/internal/geom"
	"puffer/internal/netlist"
	"puffer/internal/router"
	"puffer/internal/synth"
)

func placedDesign(t *testing.T) (*netlist.Design, *router.Result) {
	t.Helper()
	p, err := synth.ProfileByName("OR1200")
	if err != nil {
		t.Fatal(err)
	}
	d := synth.Generate(p, 3000, 1)
	d.Fences = append(d.Fences, netlist.Fence{
		Name: "f", Rect: geom.RectWH(d.Region.Lo.X+2, d.Region.Lo.Y+2, 4, 3),
	})
	cfg := puffer.DefaultConfig()
	cfg.Place.MaxIters = 150
	if _, err := puffer.Run(d, cfg); err != nil {
		t.Fatal(err)
	}
	rr := puffer.Evaluate(d, router.DefaultConfig())
	return d, rr
}

func TestWriteFullReport(t *testing.T) {
	d, rr := placedDesign(t)
	path := filepath.Join(t.TempDir(), "report.html")
	if err := Write(path, d, rr, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	for _, want := range []string{
		"<!DOCTYPE html>", "<svg", "Placement", "Horizontal overflow",
		"Vertical overflow", "HOF%", "ACE peak", "OR1200", "stroke-dasharray",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if len(out) < 2000 {
		t.Errorf("report suspiciously small: %d bytes", len(out))
	}
}

func TestWriteWithoutRouting(t *testing.T) {
	d, _ := placedDesign(t)
	path := filepath.Join(t.TempDir(), "report.html")
	if err := Write(path, d, nil, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	out := string(data)
	if strings.Contains(out, "Horizontal overflow") {
		t.Error("routing section present without routing result")
	}
	if !strings.Contains(out, "Placement") {
		t.Error("placement section missing")
	}
}

func TestSubsampling(t *testing.T) {
	d, _ := placedDesign(t)
	o := DefaultOptions()
	o.MaxCells = 5
	path := filepath.Join(t.TempDir(), "small.html")
	if err := Write(path, d, nil, o); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	if !strings.Contains(string(data), "movable cells)") {
		t.Error("subsampling note missing")
	}
}

func TestPadColorRange(t *testing.T) {
	for _, f := range []float64{0, 0.5, 1} {
		c := padColor(f)
		if !strings.HasPrefix(c, "rgb(") {
			t.Errorf("padColor(%v) = %q", f, c)
		}
	}
}
