package router

import (
	"context"
	"errors"
	"testing"

	"puffer/internal/flow"
	"puffer/internal/netlist"
)

func cancelTestDesign() *netlist.Design {
	d := testDesign()
	for k := 0; k < 20; k++ {
		a := d.AddCell(netlist.Cell{W: 1, H: 1, X: 4, Y: 2 + 3*float64(k)})
		b := d.AddCell(netlist.Cell{W: 1, H: 1, X: 58, Y: 2 + 3*float64(k)})
		n := d.AddNet("", 1)
		d.Connect(a, n, 0.5, 0.5)
		d.Connect(b, n, 0.5, 0.5)
	}
	return d
}

// TestRouteCtxPreCanceled checks a canceled route returns promptly with
// ErrCanceled and leaves the design untouched (the router never mutates
// cell positions).
func TestRouteCtxPreCanceled(t *testing.T) {
	d := cancelTestDesign()
	before := make([]float64, len(d.Cells))
	for i := range d.Cells {
		before[i] = d.Cells[i].X
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rr, err := RouteCtx(ctx, d, DefaultConfig())
	if !errors.Is(err, flow.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCanceled wrapping context.Canceled", err)
	}
	if rr != nil {
		t.Errorf("canceled route returned a result: %+v", rr)
	}
	for i := range d.Cells {
		if d.Cells[i].X != before[i] {
			t.Fatalf("cell %d moved during canceled route", i)
		}
	}
}

// TestRouteCtxCancelMidRoute cancels concurrently while routing and
// accepts either outcome — a complete result (routing won the race) or a
// prompt ErrCanceled — but never a partial result with a nil error.
func TestRouteCtxCancelMidRoute(t *testing.T) {
	d := cancelTestDesign()
	ctx, cancel := context.WithCancel(context.Background())
	go cancel()
	rr, err := RouteCtx(ctx, d, DefaultConfig())
	switch {
	case err == nil:
		if rr == nil || rr.Segments == 0 {
			t.Error("nil error but empty result")
		}
	case errors.Is(err, flow.ErrCanceled):
		if rr != nil {
			t.Error("canceled route returned a result alongside the error")
		}
	default:
		t.Fatalf("unexpected error: %v", err)
	}
}
