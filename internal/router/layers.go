package router

import (
	"math"

	"puffer/internal/geom"
	"puffer/internal/netlist"
)

// LayerAssignment is the 3-D view of a routed result: every Gcell boundary
// crossing of every path assigned to a specific metal layer of the correct
// preferred direction, with via counts for the inter-layer transitions.
// This extends the paper's 2-D evaluation the way production global
// routers report congestion (per-layer maps and via totals).
type LayerAssignment struct {
	Layers []netlist.Layer
	W, H   int

	// Dmd[l] is the per-Gcell demand (tracks) assigned to layer l.
	Dmd [][]float64
	// Cap[l] is the per-Gcell capacity of layer l (blockage-aware).
	Cap [][]float64

	// Vias is the per-Gcell via count; TotalVias sums it.
	Vias      []float64
	TotalVias float64

	// OverflowByLayer is the total overflowed demand per layer.
	OverflowByLayer []float64
}

// AssignLayers distributes the routed paths of res over the design's metal
// stack. Each crossing is placed greedily on the lowest same-direction
// layer with free capacity at that Gcell (falling back to the least
// overloaded); vias are charged for every layer change along a path and
// for the pin escape to the first segment layer.
func AssignLayers(d *netlist.Design, res *Result) *LayerAssignment {
	m := res.Map
	la := &LayerAssignment{
		Layers: d.Layers,
		W:      m.W, H: m.H,
		Vias:            make([]float64, m.W*m.H),
		OverflowByLayer: make([]float64, len(d.Layers)),
	}
	size := m.W * m.H
	la.Dmd = make([][]float64, len(d.Layers))
	la.Cap = make([][]float64, len(d.Layers))
	for l := range d.Layers {
		la.Dmd[l] = make([]float64, size)
		la.Cap[l] = make([]float64, size)
	}

	// Per-layer, per-Gcell capacity: tracks from the pitch minus blocked
	// tracks (same model as cong.NewMap, split by layer).
	for l, layer := range d.Layers {
		var base float64
		if layer.Dir == netlist.Horizontal {
			base = m.GH / layer.Pitch()
		} else {
			base = m.GW / layer.Pitch()
		}
		for i := range la.Cap[l] {
			la.Cap[l][i] = base
		}
	}
	for _, b := range d.Blockages {
		layer := d.Layers[b.Layer]
		r := b.Rect.Intersect(d.Region)
		if r.Empty() {
			continue
		}
		i0 := geom.ClampInt(int((r.Lo.X-m.Region.Lo.X)/m.GW), 0, m.W-1)
		i1 := geom.ClampInt(int(math.Ceil((r.Hi.X-m.Region.Lo.X)/m.GW)), i0+1, m.W)
		j0 := geom.ClampInt(int((r.Lo.Y-m.Region.Lo.Y)/m.GH), 0, m.H-1)
		j1 := geom.ClampInt(int(math.Ceil((r.Hi.Y-m.Region.Lo.Y)/m.GH)), j0+1, m.H)
		for j := j0; j < j1; j++ {
			y0 := m.Region.Lo.Y + float64(j)*m.GH
			oy := geom.Interval{Lo: y0, Hi: y0 + m.GH}.Overlap(geom.Interval{Lo: r.Lo.Y, Hi: r.Hi.Y})
			for i := i0; i < i1; i++ {
				x0 := m.Region.Lo.X + float64(i)*m.GW
				ox := geom.Interval{Lo: x0, Hi: x0 + m.GW}.Overlap(geom.Interval{Lo: r.Lo.X, Hi: r.Hi.X})
				if ox <= 0 || oy <= 0 {
					continue
				}
				idx := j*m.W + i
				var blocked float64
				if layer.Dir == netlist.Horizontal {
					blocked = (oy / layer.Pitch()) * (ox / m.GW)
				} else {
					blocked = (ox / layer.Pitch()) * (oy / m.GH)
				}
				la.Cap[b.Layer][idx] = math.Max(0, la.Cap[b.Layer][idx]-blocked)
			}
		}
	}

	// Candidate layers per direction, bottom-up (lower layers preferred:
	// shorter via stacks from the pins).
	var hLayers, vLayers []int
	for l, layer := range d.Layers {
		if layer.Dir == netlist.Horizontal {
			hLayers = append(hLayers, l)
		} else {
			vLayers = append(vLayers, l)
		}
	}

	pick := func(cands []int, idx int) int {
		if len(cands) == 0 {
			return -1
		}
		best := cands[0]
		bestScore := math.Inf(1)
		for _, l := range cands {
			free := la.Cap[l][idx] - la.Dmd[l][idx]
			if free > 0.5 {
				return l // lowest layer with room
			}
			// Otherwise remember the least overloaded.
			if score := -free; score < bestScore {
				bestScore = score
				best = l
			}
		}
		return best
	}

	for _, path := range res.Paths {
		prevLayer := -1
		for k := 1; k < len(path); k++ {
			a, b := int(path[k-1]), int(path[k])
			horiz := abs(a-b) == 1
			cands := vLayers
			if horiz {
				cands = hLayers
			}
			l := pick(cands, b)
			if l < 0 {
				continue
			}
			la.Dmd[l][a] += 0.5
			la.Dmd[l][b] += 0.5
			if prevLayer >= 0 && prevLayer != l {
				hops := float64(abs(prevLayer - l))
				la.Vias[a] += hops
				la.TotalVias += hops
			} else if prevLayer < 0 {
				// Pin escape from M1 up to the first routing layer.
				la.Vias[a] += float64(l)
				la.TotalVias += float64(l)
			}
			prevLayer = l
		}
		if prevLayer > 0 {
			// Sink pin escape back down to M1.
			idx := int(path[len(path)-1])
			la.Vias[idx] += float64(prevLayer)
			la.TotalVias += float64(prevLayer)
		}
	}

	for l := range la.Dmd {
		for i := range la.Dmd[l] {
			if over := la.Dmd[l][i] - la.Cap[l][i]; over > 0 {
				la.OverflowByLayer[l] += over
			}
		}
	}
	return la
}

// Utilization returns the average demand/capacity ratio of layer l.
func (la *LayerAssignment) Utilization(l int) float64 {
	var dmd, cp float64
	for i := range la.Dmd[l] {
		dmd += la.Dmd[l][i]
		cp += la.Cap[l][i]
	}
	if cp <= 0 {
		return 0
	}
	return dmd / cp
}
