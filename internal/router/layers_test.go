package router

import (
	"math"
	"math/rand"
	"testing"

	"puffer/internal/geom"
	"puffer/internal/netlist"
)

func routedResult(t *testing.T, d *netlist.Design) *Result {
	t.Helper()
	cfg := DefaultConfig()
	cfg.GridW, cfg.GridH = 32, 32
	return Route(d, cfg)
}

func TestAssignLayersConservesDemand(t *testing.T) {
	d := testDesign()
	rng := rand.New(rand.NewSource(5))
	var ids []int
	for k := 0; k < 30; k++ {
		ids = append(ids, d.AddCell(netlist.Cell{
			W: 1, H: 1, X: rng.Float64() * 63, Y: rng.Float64() * 63,
		}))
	}
	for k := 0; k+1 < len(ids); k += 2 {
		n := d.AddNet("", 1)
		d.Connect(ids[k], n, 0.5, 0.5)
		d.Connect(ids[k+1], n, 0.5, 0.5)
	}
	res := routedResult(t, d)
	la := AssignLayers(d, res)

	// Per-layer demand sums to the 2-D wire demand (excluding pin cost).
	var layered, flatH, flatV float64
	for l, layer := range d.Layers {
		for _, v := range la.Dmd[l] {
			layered += v
		}
		_ = layer
	}
	for i := range res.Map.DmdH {
		flatH += res.Map.DmdH[i]
		flatV += res.Map.DmdV[i]
	}
	pinDemand := float64(len(d.Pins)) * DefaultConfig().PinCost * 2
	if math.Abs(layered-(flatH+flatV-pinDemand)) > 1e-6 {
		t.Errorf("layered demand %v != flat wire demand %v", layered, flatH+flatV-pinDemand)
	}
}

func TestAssignLayersDirections(t *testing.T) {
	d := testDesign()
	a := d.AddCell(netlist.Cell{W: 1, H: 1, X: 4, Y: 4})
	b := d.AddCell(netlist.Cell{W: 1, H: 1, X: 50, Y: 4})
	n := d.AddNet("n", 1)
	d.Connect(a, n, 0.5, 0.5)
	d.Connect(b, n, 0.5, 0.5)
	res := routedResult(t, d)
	la := AssignLayers(d, res)
	// A straight horizontal route must land only on horizontal layers.
	for l, layer := range d.Layers {
		total := 0.0
		for _, v := range la.Dmd[l] {
			total += v
		}
		if layer.Dir == netlist.Vertical && total > 0 {
			t.Errorf("vertical layer %d got %v demand from a horizontal route", l, total)
		}
	}
	// A straight route fits entirely on M1: pin escapes are free and no
	// layer changes happen.
	if la.TotalVias != 0 {
		t.Errorf("TotalVias = %v, want 0 for an M1-only route", la.TotalVias)
	}
}

func TestAssignLayersSpillsToUpperLayers(t *testing.T) {
	// Many parallel horizontal routes through one row: the first layer
	// fills up and demand must spill upward.
	d := testDesign()
	for k := 0; k < 40; k++ {
		a := d.AddCell(netlist.Cell{W: 1, H: 1, X: 4, Y: 30})
		b := d.AddCell(netlist.Cell{W: 1, H: 1, X: 50, Y: 30})
		n := d.AddNet("", 1)
		d.Connect(a, n, 0.5, 0.5)
		d.Connect(b, n, 0.5, 0.5)
	}
	res := routedResult(t, d)
	la := AssignLayers(d, res)
	used := 0
	for l, layer := range d.Layers {
		if layer.Dir != netlist.Horizontal {
			continue
		}
		total := 0.0
		for _, v := range la.Dmd[l] {
			total += v
		}
		if total > 0 {
			used++
		}
	}
	if used < 2 {
		t.Errorf("only %d horizontal layers used despite saturation", used)
	}
}

func TestAssignLayersViasCountBends(t *testing.T) {
	d := testDesign()
	a := d.AddCell(netlist.Cell{W: 1, H: 1, X: 4, Y: 4})
	b := d.AddCell(netlist.Cell{W: 1, H: 1, X: 50, Y: 50})
	n := d.AddNet("n", 1)
	d.Connect(a, n, 0.5, 0.5)
	d.Connect(b, n, 0.5, 0.5)
	res := routedResult(t, d)
	la := AssignLayers(d, res)
	// An L-path changes direction at least once: M1→M2 at the bend plus
	// the sink escape down from M2.
	if la.TotalVias < 2 {
		t.Errorf("TotalVias = %v, want >= 2 for an L route", la.TotalVias)
	}
}

func TestAssignLayersBlockageReducesCapacity(t *testing.T) {
	d := testDesign()
	d.Blockages = append(d.Blockages, netlist.Blockage{
		Rect: geom.RectWH(0, 0, 64, 64), Layer: 0,
	})
	a := d.AddCell(netlist.Cell{W: 1, H: 1, X: 4, Y: 4})
	b := d.AddCell(netlist.Cell{W: 1, H: 1, X: 50, Y: 4})
	n := d.AddNet("n", 1)
	d.Connect(a, n, 0.5, 0.5)
	d.Connect(b, n, 0.5, 0.5)
	res := routedResult(t, d)
	la := AssignLayers(d, res)
	for i, v := range la.Cap[0] {
		if v != 0 {
			t.Fatalf("blocked layer 0 capacity at %d = %v", i, v)
		}
	}
	// The route went to an unblocked horizontal layer.
	total0 := 0.0
	for _, v := range la.Dmd[0] {
		total0 += v
	}
	if total0 > 0 {
		t.Error("demand assigned to fully blocked layer")
	}
	if u := la.Utilization(2); u <= 0 {
		t.Errorf("expected M3 utilization > 0, got %v", u)
	}
}
