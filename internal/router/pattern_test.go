package router

import (
	"math"
	"testing"

	"puffer/internal/netlist"
)

func twoPin(d *netlist.Design, x1, y1, x2, y2 float64) {
	a := d.AddCell(netlist.Cell{W: 1, H: 1, X: x1, Y: y1})
	b := d.AddCell(netlist.Cell{W: 1, H: 1, X: x2, Y: y2})
	n := d.AddNet("", 1)
	d.Connect(a, n, 0.5, 0.5)
	d.Connect(b, n, 0.5, 0.5)
}

func TestPatternRouteTakesLShape(t *testing.T) {
	d := testDesign()
	twoPin(d, 4, 4, 40, 40)
	cfg := DefaultConfig()
	cfg.GridW, cfg.GridH = 32, 32
	cfg.PatternFirst = true
	res := Route(d, cfg)
	// An L route on an empty chip: exactly Manhattan length, no overflow.
	ai, aj := res.Map.GcellOf(d.PinPos(0))
	bi, bj := res.Map.GcellOf(d.PinPos(1))
	want := (math.Abs(float64(ai-bi)))*res.Map.GW + math.Abs(float64(aj-bj))*res.Map.GH
	if math.Abs(res.WL-want) > 1e-9 {
		t.Errorf("pattern WL = %v, want Manhattan %v", res.WL, want)
	}
	if res.HOF != 0 || res.VOF != 0 {
		t.Errorf("pattern route overflowed an empty chip: %v/%v", res.HOF, res.VOF)
	}
}

func TestPatternMatchesMazeOnEmptyChip(t *testing.T) {
	build := func() *netlist.Design {
		d := testDesign()
		twoPin(d, 4, 10, 50, 30)
		twoPin(d, 10, 50, 55, 8)
		twoPin(d, 30, 4, 30, 58)
		return d
	}
	cfg := DefaultConfig()
	cfg.GridW, cfg.GridH = 32, 32

	cfg.PatternFirst = true
	pat := Route(build(), cfg)
	cfg.PatternFirst = false
	maze := Route(build(), cfg)
	if math.Abs(pat.WL-maze.WL) > 1e-9 {
		t.Errorf("pattern WL %v != maze WL %v on an empty chip", pat.WL, maze.WL)
	}
	if pat.HOF != maze.HOF || pat.VOF != maze.VOF {
		t.Errorf("overflow mismatch: %v/%v vs %v/%v", pat.HOF, pat.VOF, maze.HOF, maze.VOF)
	}
}

func TestPatternFallsBackUnderCongestion(t *testing.T) {
	d := testDesign()
	d.Layers = sparseLayers()
	// Saturate the two L corners' rows/columns so both Ls overflow and
	// the maze router must find the detour.
	for k := 0; k < 30; k++ {
		twoPin(d, 4, 30, 58, 30)
	}
	cfg := DefaultConfig()
	cfg.GridW, cfg.GridH = 32, 32
	cfg.PatternFirst = true
	res := Route(d, cfg)
	// With 30 identical nets on ~4 tracks the chip overflows either way;
	// the point is that fallback routing still happens and spreads demand
	// across rows (more than one row carries horizontal demand).
	rows := map[int]bool{}
	for j := 0; j < res.Map.H; j++ {
		for i := 0; i < res.Map.W; i++ {
			if res.Map.DmdH[res.Map.Index(i, j)] > 1 {
				rows[j] = true
			}
		}
	}
	if len(rows) < 2 {
		t.Errorf("congested demand not spread: %d rows used", len(rows))
	}
}
