package router

import (
	"math"
	"math/rand"
	"testing"

	"puffer/internal/geom"
	"puffer/internal/netlist"
)

// TestPinCostDeposited verifies each pin adds PinCost demand in both
// directions in its Gcell.
func TestPinCostDeposited(t *testing.T) {
	d := testDesign()
	a := d.AddCell(netlist.Cell{W: 1, H: 1, X: 4, Y: 4})
	b := d.AddCell(netlist.Cell{W: 1, H: 1, X: 4.5, Y: 4}) // same Gcell
	n := d.AddNet("n", 1)
	d.Connect(a, n, 0.5, 0.5)
	d.Connect(b, n, 0.4, 0.5)
	cfg := DefaultConfig()
	cfg.GridW, cfg.GridH = 32, 32
	cfg.PinCost = 0.7
	res := Route(d, cfg)
	i, j := res.Map.GcellOf(geom.Pt(4.5, 4.5))
	idx := res.Map.Index(i, j)
	// Two pins, local net (no wire demand since same Gcell).
	if math.Abs(res.Map.DmdH[idx]-1.4) > 1e-9 {
		t.Errorf("DmdH = %v, want 1.4", res.Map.DmdH[idx])
	}
	if math.Abs(res.Map.DmdV[idx]-1.4) > 1e-9 {
		t.Errorf("DmdV = %v, want 1.4", res.Map.DmdV[idx])
	}
}

// TestPackedPinsOverflow: cramming pin-dense cells into one Gcell must
// overflow even though all nets are local — the mechanism cell padding
// relieves.
func TestPackedPinsOverflow(t *testing.T) {
	d := testDesign()
	d.Layers = sparseLayers()
	var ids []int
	for k := 0; k < 12; k++ {
		ids = append(ids, d.AddCell(netlist.Cell{
			W: 0.3, H: 1, X: 4 + 0.3*float64(k%4), Y: 4 + float64(k/4)*0.1,
		}))
	}
	for k := 0; k+1 < len(ids); k++ {
		n := d.AddNet("", 1)
		for p := 0; p < 4; p++ {
			d.Connect(ids[(k+p)%len(ids)], n, 0.1, 0.5)
		}
	}
	cfg := DefaultConfig()
	cfg.GridW, cfg.GridH = 32, 32
	res := Route(d, cfg)
	if res.HOF <= 0 && res.VOF <= 0 {
		t.Error("packed pin cluster did not overflow")
	}

	// Spreading the same cells across many Gcells fixes it.
	d2 := testDesign()
	d2.Layers = sparseLayers()
	var ids2 []int
	for k := 0; k < 12; k++ {
		ids2 = append(ids2, d2.AddCell(netlist.Cell{
			W: 0.3, H: 1, X: 4 + 4*float64(k%4), Y: 4 + 4*float64(k/4),
		}))
	}
	for k := 0; k+1 < len(ids2); k++ {
		n := d2.AddNet("", 1)
		for p := 0; p < 4; p++ {
			d2.Connect(ids2[(k+p)%len(ids2)], n, 0.1, 0.5)
		}
	}
	res2 := Route(d2, cfg)
	if res2.HOF+res2.VOF >= res.HOF+res.VOF {
		t.Errorf("spreading did not reduce overflow: %v vs %v",
			res2.HOF+res2.VOF, res.HOF+res.VOF)
	}
}

// Property: routed wirelength is at least the sum of Manhattan distances
// between segment endpoints (in Gcell units).
func TestRoutedWLLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := testDesign()
	var ids []int
	for k := 0; k < 40; k++ {
		ids = append(ids, d.AddCell(netlist.Cell{
			W: 1, H: 1, X: rng.Float64() * 63, Y: rng.Float64() * 63,
		}))
	}
	for k := 0; k+1 < len(ids); k += 2 {
		n := d.AddNet("", 1)
		d.Connect(ids[k], n, 0.5, 0.5)
		d.Connect(ids[k+1], n, 0.5, 0.5)
	}
	cfg := DefaultConfig()
	cfg.GridW, cfg.GridH = 32, 32
	res := Route(d, cfg)

	lower := 0.0
	for k := 0; k+1 < len(ids); k += 2 {
		a := d.Cells[ids[k]].Center()
		b := d.Cells[ids[k+1]].Center()
		ai, aj := res.Map.GcellOf(a)
		bi, bj := res.Map.GcellOf(b)
		lower += math.Abs(float64(ai-bi))*res.Map.GW + math.Abs(float64(aj-bj))*res.Map.GH
	}
	if res.WL < lower-1e-6 {
		t.Errorf("routed WL %v below Manhattan lower bound %v", res.WL, lower)
	}
}
