// Package router implements the evaluation global router that stands in
// for the commercial global router the paper uses to judge placements
// (Sec. IV). Each net is decomposed into two-point segments by the RSMT
// topology, every segment is routed with congestion-aware A* (bend
// penalty, admissible Manhattan heuristic), and a PathFinder-style
// negotiation loop rips up and reroutes segments that cross overflowed
// Gcells with growing history costs. The router reports the same metrics
// as Table II: directional overflow ratios (HOF/VOF) and routed
// wirelength.
package router

import (
	"container/heap"
	"context"
	"math"

	"puffer/internal/cong"
	"puffer/internal/flow"
	"puffer/internal/geom"
	"puffer/internal/netlist"
	"puffer/internal/obs"
	"puffer/internal/par"
	"puffer/internal/rsmt"
)

// Config controls the router.
type Config struct {
	// GridW/GridH are the Gcell grid dimensions; zero selects ~2 rows of
	// cells per Gcell automatically.
	GridW, GridH int
	// MaxRipup is the number of negotiation iterations after the initial
	// routing pass.
	MaxRipup int
	// HistoryGain is the history-cost increment per overflowed Gcell per
	// negotiation round.
	HistoryGain float64
	// CongestWeight scales the present-congestion penalty.
	CongestWeight float64
	// BendPenalty is the extra cost per direction change, in Gcell units.
	BendPenalty float64
	// WindowMargin expands each segment's search window beyond its
	// bounding box, in Gcells.
	WindowMargin int
	// PinCost is the local routing demand (tracks, per direction) each
	// pin consumes in its Gcell for access/escape routing and local nets.
	// This is what makes over-packed cell clusters unroutable even when
	// the global wirelength is short.
	PinCost float64
	// PatternFirst tries the two L-shaped routes before invoking A*: if
	// either introduces no overflow it is taken directly. This is the
	// classic pattern-routing fast path; quality is unchanged where the
	// chip has slack and A* still handles everything congested.
	PatternFirst bool
	// Workers caps the parallel net decomposition (0 = GOMAXPROCS).
	Workers int
	// Obs attaches telemetry: RouteCtx opens phase spans (decompose,
	// initial pass, each negotiation round) and publishes segment/reroute
	// counters. Nil disables everything; excluded from JSON so Config can
	// appear in the run report.
	Obs *obs.Recorder `json:"-"`
	// Topo, when set, is the placement flow's congestion estimator: the
	// router reuses its incrementally maintained RSMT topologies instead
	// of rebuilding every net from scratch, provided the estimator's Gcell
	// grid matches the router's (the pipeline configures both from the
	// same GridFor heuristic). A grid mismatch silently falls back to
	// per-net rsmt.Build.
	Topo *cong.Estimator
}

// DefaultConfig returns the evaluation settings.
func DefaultConfig() Config {
	return Config{
		MaxRipup:      3,
		HistoryGain:   1.5,
		CongestWeight: 4,
		BendPenalty:   0.5,
		WindowMargin:  8,
		PinCost:       0.4,
		PatternFirst:  true,
	}
}

// Result is the routing report.
type Result struct {
	Map      *cong.Map
	HOF, VOF float64 // overflow ratios in percent
	WL       float64 // routed wirelength in design units
	Segments int     // two-point segments routed
	Rerouted int     // segments rerouted during negotiation

	// Paths holds the final routed Gcell sequence of every segment, in
	// segment order; AssignLayers consumes them for 3-D layer assignment.
	Paths [][]int32
}

// segment is one two-point routing task.
type segment struct {
	ai, aj, bi, bj int
	path           []int32 // flat Gcell indices, in order
}

// Route routes every net of d and returns the congestion report.
func Route(d *netlist.Design, cfg Config) *Result {
	res, _ := RouteCtx(context.Background(), d, cfg)
	return res
}

// routeCheckEvery is the net-batch granularity at which RouteCtx checks
// its context inside the serial routing loops: a cancel is observed
// within this many two-point segments of extra work.
const routeCheckEvery = 32

// RouteCtx is Route with cancellation. The RSMT net decomposition runs in
// parallel and stops scheduling new net batches once ctx is done; the
// serial routing and negotiation loops check the context every
// routeCheckEvery segments. The router never mutates the design, so on
// cancellation it simply returns a nil Result and an error wrapping
// flow.ErrCanceled.
func RouteCtx(ctx context.Context, d *netlist.Design, cfg Config) (*Result, error) {
	sp, ctx := obs.Start(ctx, cfg.Obs, "route")
	defer sp.End()
	if cfg.GridW == 0 {
		cfg.GridW = geom.ClampInt(int(d.Region.W()/(2*math.Max(d.RowHeight, 1e-9))), 16, 512)
	}
	if cfg.GridH == 0 {
		cfg.GridH = geom.ClampInt(int(d.Region.H()/(2*math.Max(d.RowHeight, 1e-9))), 16, 512)
	}
	r := &router{
		cfg: cfg,
		m:   cong.NewMap(d, cfg.GridW, cfg.GridH),
	}
	r.histH = make([]float64, cfg.GridW*cfg.GridH)
	r.histV = make([]float64, cfg.GridW*cfg.GridH)

	// Pin-access demand: routing a pin consumes local resources in its
	// Gcell regardless of where the net goes.
	if cfg.PinCost > 0 {
		for p := range d.Pins {
			i, j := r.m.GcellOf(d.PinPos(p))
			idx := r.m.Index(i, j)
			r.m.DmdH[idx] += cfg.PinCost
			r.m.DmdV[idx] += cfg.PinCost
		}
	}

	// When the placement flow's estimator shares our Gcell grid, reuse its
	// incrementally maintained RSMT topologies instead of rebuilding every
	// net (the refresh re-stamps only nets whose pins crossed a Gcell
	// boundary since the last estimate).
	var cached []rsmt.Tree
	if cfg.Topo != nil {
		if tw, th := cfg.Topo.Grid(); tw == cfg.GridW && th == cfg.GridH {
			var err error
			cached, err = cfg.Topo.SyncTopologies(ctx)
			if err != nil {
				return nil, err
			}
		}
	}

	// Decompose all nets into segments via RSMT. Nets are independent, so
	// the topology construction runs as a cancelable parallel net batch;
	// the per-net results are flattened in net order, keeping the segment
	// sequence (and therefore the negotiation) deterministic.
	segsByNet := make([][]segment, len(d.Nets))
	spDecomp := sp.Child("route.decompose")
	if err := par.ForErrN(ctx, cfg.Workers, len(d.Nets), func(n int) error {
		net := &d.Nets[n]
		if len(net.Pins) < 2 {
			return nil
		}
		var tree rsmt.Tree
		if n < len(cached) {
			tree = cached[n]
		} else {
			pts := make([]geom.Point, 0, len(net.Pins))
			for _, pid := range net.Pins {
				pts = append(pts, d.PinPos(pid))
			}
			tree = rsmt.Build(pts)
		}
		for _, e := range tree.Edges {
			ai, aj := r.m.GcellOf(tree.Nodes[e.A].P)
			bi, bj := r.m.GcellOf(tree.Nodes[e.B].P)
			if ai == bi && aj == bj {
				continue
			}
			segsByNet[n] = append(segsByNet[n], segment{ai: ai, aj: aj, bi: bi, bj: bj})
		}
		return nil
	}); err != nil {
		spDecomp.End()
		return nil, err
	}
	spDecomp.End()
	for n := range segsByNet {
		r.segs = append(r.segs, segsByNet[n]...)
	}

	res := &Result{Map: r.m, Segments: len(r.segs)}
	cfg.Obs.Counter("route.segments").Add(int64(len(r.segs)))

	// Initial pass.
	spInit := sp.Child("route.initial")
	for i := range r.segs {
		if i%routeCheckEvery == 0 {
			if err := flow.Check(ctx); err != nil {
				spInit.End()
				return nil, err
			}
		}
		r.routeSegment(&r.segs[i])
	}
	spInit.End()
	// Negotiation rounds.
	sRerouted := cfg.Obs.Series("route.rerouted")
	for round := 0; round < cfg.MaxRipup; round++ {
		spRound := sp.Child("route.negotiate")
		spRound.SetArg("round", round+1)
		r.bumpHistory()
		rerouted := 0
		for i := range r.segs {
			if i%routeCheckEvery == 0 {
				if err := flow.Check(ctx); err != nil {
					spRound.End()
					return nil, err
				}
			}
			s := &r.segs[i]
			if !r.crossesOverflow(s) {
				continue
			}
			r.unroute(s)
			r.routeSegment(s)
			rerouted++
		}
		res.Rerouted += rerouted
		sRerouted.Observe(round+1, float64(rerouted))
		if spRound != nil {
			spRound.SetArg("rerouted", rerouted)
		}
		spRound.End()
		if rerouted == 0 {
			break
		}
	}
	cfg.Obs.Counter("route.total_rerouted").Add(int64(res.Rerouted))

	res.HOF, res.VOF = r.m.OverflowRatios()
	res.Paths = make([][]int32, len(r.segs))
	for i := range r.segs {
		res.WL += r.pathLength(&r.segs[i])
		res.Paths[i] = r.segs[i].path
	}
	return res, nil
}

type router struct {
	cfg  Config
	m    *cong.Map
	segs []segment

	histH, histV []float64

	// A* scratch, allocated per search window
	open  pq
	gCost []float64
	came  []int32
	gen   []uint32
	genID uint32
}

// pathLength returns the routed length of s in design units.
func (r *router) pathLength(s *segment) float64 {
	if len(s.path) < 2 {
		return 0
	}
	total := 0.0
	for k := 1; k < len(s.path); k++ {
		a, b := int(s.path[k-1]), int(s.path[k])
		if abs(a-b) == 1 {
			total += r.m.GW
		} else {
			total += r.m.GH
		}
	}
	return total
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// addDemand applies (or removes, with sign -1) the demand of a path:
// each Gcell boundary crossing adds half a track to both sides in the
// crossing direction.
func (r *router) addDemand(path []int32, sign float64) {
	for k := 1; k < len(path); k++ {
		a, b := int(path[k-1]), int(path[k])
		if abs(a-b) == 1 {
			r.m.DmdH[a] += 0.5 * sign
			r.m.DmdH[b] += 0.5 * sign
		} else {
			r.m.DmdV[a] += 0.5 * sign
			r.m.DmdV[b] += 0.5 * sign
		}
	}
}

func (r *router) unroute(s *segment) {
	r.addDemand(s.path, -1)
	s.path = s.path[:0]
}

func (r *router) crossesOverflow(s *segment) bool {
	for k := 1; k < len(s.path); k++ {
		a, b := int(s.path[k-1]), int(s.path[k])
		if abs(a-b) == 1 {
			if r.m.OverflowH(a) > 0 || r.m.OverflowH(b) > 0 {
				return true
			}
		} else {
			if r.m.OverflowV(a) > 0 || r.m.OverflowV(b) > 0 {
				return true
			}
		}
	}
	return false
}

func (r *router) bumpHistory() {
	for i := range r.histH {
		if r.m.OverflowH(i) > 0 {
			r.histH[i] += r.cfg.HistoryGain
		}
		if r.m.OverflowV(i) > 0 {
			r.histV[i] += r.cfg.HistoryGain
		}
	}
}

// moveCost is the negotiated cost of crossing from Gcell a to adjacent
// Gcell b in direction dir (true = horizontal).
func (r *router) moveCost(a, b int, horiz bool) float64 {
	var dmd, capA, capB, hist float64
	if horiz {
		dmd = (r.m.DmdH[a]+r.m.DmdH[b])/2 + 1
		capA, capB = r.m.CapH[a], r.m.CapH[b]
		hist = (r.histH[a] + r.histH[b]) / 2
	} else {
		dmd = (r.m.DmdV[a]+r.m.DmdV[b])/2 + 1
		capA, capB = r.m.CapV[a], r.m.CapV[b]
		hist = (r.histV[a] + r.histV[b]) / 2
	}
	capMin := math.Max(math.Min(capA, capB), 1e-6)
	over := (dmd - capMin) / capMin
	cost := 1.0 + hist
	if over > 0 {
		cost += r.cfg.CongestWeight * over
	}
	return cost
}

// dir encoding for A* states: 0 = none, 1 = horizontal, 2 = vertical.
const numDirs = 3

// tryPattern attempts the two L-shaped routes for s and commits the first
// one that adds no overflow. Straight segments have a single candidate.
func (r *router) tryPattern(s *segment) bool {
	build := func(horizFirst bool) []int32 {
		path := make([]int32, 0, abs(s.ai-s.bi)+abs(s.aj-s.bj)+1)
		appendRun := func(i0, j0, i1, j1 int) {
			di, dj := sign(i1-i0), sign(j1-j0)
			i, j := i0, j0
			for {
				idx := int32(r.m.Index(i, j))
				if len(path) == 0 || path[len(path)-1] != idx {
					path = append(path, idx)
				}
				if i == i1 && j == j1 {
					break
				}
				i += di
				j += dj
			}
		}
		if horizFirst {
			appendRun(s.ai, s.aj, s.bi, s.aj)
			appendRun(s.bi, s.aj, s.bi, s.bj)
		} else {
			appendRun(s.ai, s.aj, s.ai, s.bj)
			appendRun(s.ai, s.bj, s.bi, s.bj)
		}
		return path
	}
	fits := func(path []int32) bool {
		for k := 1; k < len(path); k++ {
			a, b := int(path[k-1]), int(path[k])
			if abs(a-b) == 1 {
				if r.m.DmdH[a]+0.5 > r.m.CapH[a] || r.m.DmdH[b]+0.5 > r.m.CapH[b] {
					return false
				}
			} else {
				if r.m.DmdV[a]+0.5 > r.m.CapV[a] || r.m.DmdV[b]+0.5 > r.m.CapV[b] {
					return false
				}
			}
		}
		return true
	}
	for _, horizFirst := range []bool{true, false} {
		p := build(horizFirst)
		if fits(p) {
			s.path = p
			r.addDemand(p, 1)
			return true
		}
		if s.ai == s.bi || s.aj == s.bj {
			break // straight segment: both orders identical
		}
	}
	return false
}

func sign(v int) int {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	}
	return 0
}

// routeSegment runs A* within the segment's expanded bounding-box window.
func (r *router) routeSegment(s *segment) {
	if r.cfg.PatternFirst && r.tryPattern(s) {
		return
	}
	m := r.cfg.WindowMargin
	i0 := geom.ClampInt(min(s.ai, s.bi)-m, 0, r.m.W-1)
	i1 := geom.ClampInt(max(s.ai, s.bi)+m, 0, r.m.W-1)
	j0 := geom.ClampInt(min(s.aj, s.bj)-m, 0, r.m.H-1)
	j1 := geom.ClampInt(max(s.aj, s.bj)+m, 0, r.m.H-1)
	ww := i1 - i0 + 1
	wh := j1 - j0 + 1
	nStates := ww * wh * numDirs
	if cap(r.gCost) < nStates {
		r.gCost = make([]float64, nStates)
		r.came = make([]int32, nStates)
		r.gen = make([]uint32, nStates)
	}
	r.genID++
	genID := r.genID

	state := func(i, j, dir int) int32 {
		return int32(((j-j0)*ww+(i-i0))*numDirs + dir)
	}
	unpack := func(st int32) (int, int, int) {
		dir := int(st) % numDirs
		rest := int(st) / numDirs
		return rest%ww + i0, rest/ww + j0, dir
	}
	heurist := func(i, j int) float64 {
		return float64(abs(i-s.bi) + abs(j-s.bj))
	}

	r.open = r.open[:0]
	start := state(s.ai, s.aj, 0)
	r.gCost[start] = 0
	r.came[start] = -1
	r.gen[start] = genID
	heap.Push(&r.open, pqItem{prio: heurist(s.ai, s.aj), state: start})

	var goal int32 = -1
	for len(r.open) > 0 {
		it := heap.Pop(&r.open).(pqItem)
		i, j, dir := unpack(it.state)
		if r.gen[it.state] != genID || it.prio-heurist(i, j) > r.gCost[it.state]+1e-12 {
			continue // stale entry
		}
		if i == s.bi && j == s.bj {
			goal = it.state
			break
		}
		g := r.gCost[it.state]
		try := func(ni, nj, ndir int, horiz bool) {
			if ni < i0 || ni > i1 || nj < j0 || nj > j1 {
				return
			}
			a := r.m.Index(i, j)
			b := r.m.Index(ni, nj)
			c := r.moveCost(a, b, horiz)
			if dir != 0 && dir != ndir {
				c += r.cfg.BendPenalty
			}
			ns := state(ni, nj, ndir)
			ng := g + c
			if r.gen[ns] == genID && ng >= r.gCost[ns]-1e-12 {
				return
			}
			r.gCost[ns] = ng
			r.came[ns] = it.state
			r.gen[ns] = genID
			heap.Push(&r.open, pqItem{prio: ng + heurist(ni, nj), state: ns})
		}
		try(i+1, j, 1, true)
		try(i-1, j, 1, true)
		try(i, j+1, 2, false)
		try(i, j-1, 2, false)
	}
	if goal < 0 {
		// Window exhausted without reaching the sink (should not happen
		// with an all-four-neighbour grid); fall back to an L path.
		s.path = s.path[:0]
		for i := min(s.ai, s.bi); i <= max(s.ai, s.bi); i++ {
			s.path = append(s.path, int32(r.m.Index(i, s.aj)))
		}
		if s.aj != s.bj {
			step := 1
			if s.bj < s.aj {
				step = -1
			}
			for j := s.aj + step; ; j += step {
				s.path = append(s.path, int32(r.m.Index(s.bi, j)))
				if j == s.bj {
					break
				}
			}
		}
		r.addDemand(s.path, 1)
		return
	}

	// Reconstruct path (Gcell sequence, dropping duplicate cells from
	// direction-state transitions).
	s.path = s.path[:0]
	for st := goal; st >= 0; st = r.came[st] {
		i, j, _ := unpack(st)
		idx := int32(r.m.Index(i, j))
		if len(s.path) == 0 || s.path[len(s.path)-1] != idx {
			s.path = append(s.path, idx)
		}
	}
	// Reverse to source → sink order.
	for a, b := 0, len(s.path)-1; a < b; a, b = a+1, b-1 {
		s.path[a], s.path[b] = s.path[b], s.path[a]
	}
	r.addDemand(s.path, 1)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// pqItem is an A* open-list entry.
type pqItem struct {
	prio  float64
	state int32
}

type pq []pqItem

func (p pq) Len() int           { return len(p) }
func (p pq) Less(i, j int) bool { return p[i].prio < p[j].prio }
func (p pq) Swap(i, j int)      { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x any)        { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() any          { old := *p; n := len(old); it := old[n-1]; *p = old[:n-1]; return it }
