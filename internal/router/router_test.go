package router

import (
	"math"
	"math/rand"
	"testing"

	"puffer/internal/cong"
	"puffer/internal/geom"
	"puffer/internal/netlist"
)

func testDesign() *netlist.Design {
	return &netlist.Design{
		Name:      "rt",
		Region:    geom.RectWH(0, 0, 64, 64),
		RowHeight: 1,
		SiteWidth: 0.25,
		Layers:    netlist.DefaultLayers(),
	}
}

func sparseLayers() []netlist.Layer {
	return []netlist.Layer{
		{Name: "M1", Dir: netlist.Horizontal, Width: 0.5, Spacing: 0.5},
		{Name: "M2", Dir: netlist.Vertical, Width: 0.5, Spacing: 0.5},
	}
}

func TestRouteSimpleNet(t *testing.T) {
	d := testDesign()
	a := d.AddCell(netlist.Cell{W: 1, H: 1, X: 4, Y: 4})
	b := d.AddCell(netlist.Cell{W: 1, H: 1, X: 50, Y: 4})
	n := d.AddNet("n", 1)
	d.Connect(a, n, 0.5, 0.5)
	d.Connect(b, n, 0.5, 0.5)
	cfg := DefaultConfig()
	cfg.GridW, cfg.GridH = 32, 32
	res := Route(d, cfg)
	if res.Segments != 1 {
		t.Fatalf("segments = %d, want 1", res.Segments)
	}
	// Straight horizontal route: WL close to the pin distance.
	want := 46.0
	if math.Abs(res.WL-want) > 4 {
		t.Errorf("WL = %v, want ~%v", res.WL, want)
	}
	if res.HOF != 0 || res.VOF != 0 {
		t.Errorf("overflow on an empty chip: %v/%v", res.HOF, res.VOF)
	}
}

func TestPathsAreConnected(t *testing.T) {
	d := testDesign()
	rng := rand.New(rand.NewSource(3))
	var ids []int
	for k := 0; k < 60; k++ {
		ids = append(ids, d.AddCell(netlist.Cell{
			W: 1, H: 1,
			X: rng.Float64() * 63,
			Y: rng.Float64() * 63,
		}))
	}
	for k := 0; k+2 < 60; k += 3 {
		n := d.AddNet("", 1)
		d.Connect(ids[k], n, 0.5, 0.5)
		d.Connect(ids[k+1], n, 0.5, 0.5)
		d.Connect(ids[k+2], n, 0.5, 0.5)
	}
	cfg := DefaultConfig()
	cfg.GridW, cfg.GridH = 32, 32

	r := &router{cfg: cfg}
	res := Route(d, cfg)
	_ = r
	if res.Segments == 0 {
		t.Fatal("no segments")
	}
	if res.WL <= 0 {
		t.Error("zero wirelength")
	}
}

// Verify each routed path is a contiguous 4-neighbour walk from source to
// sink Gcell by exercising the internals.
func TestSegmentPathContiguity(t *testing.T) {
	d := testDesign()
	cfg := DefaultConfig()
	cfg.GridW, cfg.GridH = 32, 32
	r := &router{cfg: cfg}
	r.m = cong.NewMap(d, 32, 32)
	r.histH = make([]float64, 32*32)
	r.histV = make([]float64, 32*32)
	s := segment{ai: 2, aj: 3, bi: 20, bj: 17}
	r.routeSegment(&s)
	if len(s.path) == 0 {
		t.Fatal("no path")
	}
	first, last := int(s.path[0]), int(s.path[len(s.path)-1])
	if first != r.m.Index(2, 3) || last != r.m.Index(20, 17) {
		t.Fatalf("path endpoints %d..%d, want %d..%d", first, last, r.m.Index(2, 3), r.m.Index(20, 17))
	}
	for k := 1; k < len(s.path); k++ {
		dlt := abs(int(s.path[k]) - int(s.path[k-1]))
		if dlt != 1 && dlt != r.m.W {
			t.Fatalf("non-adjacent step at %d: delta %d", k, dlt)
		}
	}
	// Path length bounded: between Manhattan distance and a loose detour
	// factor.
	manhattan := 18 + 14
	if len(s.path)-1 < manhattan {
		t.Errorf("path shorter than Manhattan distance: %d < %d", len(s.path)-1, manhattan)
	}
	if len(s.path)-1 > 3*manhattan {
		t.Errorf("path detours wildly: %d steps", len(s.path)-1)
	}
}

func TestRouterDetoursAroundBlockage(t *testing.T) {
	d := testDesign()
	d.Layers = sparseLayers()
	// Wall of blockage across the middle except a gap at the top.
	for l := range d.Layers {
		d.Blockages = append(d.Blockages, netlist.Blockage{
			Rect: geom.RectWH(30, 0, 4, 56), Layer: l,
		})
	}
	a := d.AddCell(netlist.Cell{W: 1, H: 1, X: 4, Y: 4})
	b := d.AddCell(netlist.Cell{W: 1, H: 1, X: 58, Y: 4})
	n := d.AddNet("n", 1)
	d.Connect(a, n, 0.5, 0.5)
	d.Connect(b, n, 0.5, 0.5)
	cfg := DefaultConfig()
	cfg.GridW, cfg.GridH = 32, 32
	cfg.WindowMargin = 32 // let it reach the gap
	res := Route(d, cfg)
	// The straight path is 54; the detour through the top gap adds ~2×26
	// vertical. Expect WL noticeably above straight-line.
	if res.WL < 80 {
		t.Errorf("WL = %v, expected detour above 80", res.WL)
	}
	if res.HOF > 1 {
		t.Errorf("HOF = %v%% despite available detour", res.HOF)
	}
}

func TestNegotiationReducesOverflow(t *testing.T) {
	// Many parallel nets through a narrow horizontal corridor; negotiation
	// must spread them across rows.
	d := testDesign()
	d.Layers = sparseLayers()
	for k := 0; k < 12; k++ {
		a := d.AddCell(netlist.Cell{W: 1, H: 1, X: 4, Y: 30 + 0.1*float64(k)})
		b := d.AddCell(netlist.Cell{W: 1, H: 1, X: 58, Y: 30 + 0.1*float64(k)})
		n := d.AddNet("", 1)
		d.Connect(a, n, 0.5, 0.5)
		d.Connect(b, n, 0.5, 0.5)
	}
	cfg := DefaultConfig()
	cfg.GridW, cfg.GridH = 32, 32

	noNeg := cfg
	noNeg.MaxRipup = 0
	r0 := Route(d, noNeg)
	r1 := Route(d, cfg)
	if r1.HOF > r0.HOF {
		t.Errorf("negotiation increased HOF: %v -> %v", r0.HOF, r1.HOF)
	}
	if r1.Rerouted == 0 && r0.HOF > 0 {
		t.Error("nothing rerouted despite overflow")
	}
}

func TestOverflowReportedWhenUnavoidable(t *testing.T) {
	// Zero-capacity design: every route overflows.
	d := testDesign()
	d.Layers = []netlist.Layer{
		{Name: "M1", Dir: netlist.Horizontal, Width: 50, Spacing: 50},
		{Name: "M2", Dir: netlist.Vertical, Width: 50, Spacing: 50},
	}
	for k := 0; k < 6; k++ {
		a := d.AddCell(netlist.Cell{W: 1, H: 1, X: 4, Y: 30})
		b := d.AddCell(netlist.Cell{W: 1, H: 1, X: 58, Y: 30})
		n := d.AddNet("", 1)
		d.Connect(a, n, 0.5, 0.5)
		d.Connect(b, n, 0.5, 0.5)
	}
	cfg := DefaultConfig()
	cfg.GridW, cfg.GridH = 32, 32
	res := Route(d, cfg)
	if res.HOF <= 0 {
		t.Errorf("HOF = %v, want > 0 on a zero-capacity chip", res.HOF)
	}
}

func TestAutoGridSelection(t *testing.T) {
	d := testDesign()
	a := d.AddCell(netlist.Cell{W: 1, H: 1, X: 4, Y: 4})
	b := d.AddCell(netlist.Cell{W: 1, H: 1, X: 50, Y: 50})
	n := d.AddNet("n", 1)
	d.Connect(a, n, 0.5, 0.5)
	d.Connect(b, n, 0.5, 0.5)
	res := Route(d, DefaultConfig())
	if res.Map.W < 16 || res.Map.H < 16 {
		t.Errorf("auto grid too small: %dx%d", res.Map.W, res.Map.H)
	}
}

func TestDemandConservation(t *testing.T) {
	// Total deposited demand equals path boundary crossings.
	d := testDesign()
	a := d.AddCell(netlist.Cell{W: 1, H: 1, X: 4, Y: 4})
	b := d.AddCell(netlist.Cell{W: 1, H: 1, X: 50, Y: 4})
	n := d.AddNet("n", 1)
	d.Connect(a, n, 0.5, 0.5)
	d.Connect(b, n, 0.5, 0.5)
	cfg := DefaultConfig()
	cfg.GridW, cfg.GridH = 32, 32
	cfg.PinCost = 0 // isolate wire demand
	res := Route(d, cfg)
	sum := 0.0
	for i := range res.Map.DmdH {
		sum += res.Map.DmdH[i] + res.Map.DmdV[i]
	}
	// A k-step path deposits k units total (0.5 per side per crossing).
	steps := res.WL / 2 // Gcell size is 2
	if math.Abs(sum-steps) > 1e-9 {
		t.Errorf("total demand %v != steps %v", sum, steps)
	}
}

func BenchmarkRoute500Nets(b *testing.B) {
	d := testDesign()
	rng := rand.New(rand.NewSource(1))
	var ids []int
	for k := 0; k < 500; k++ {
		ids = append(ids, d.AddCell(netlist.Cell{
			W: 1, H: 1,
			X: rng.Float64() * 63,
			Y: rng.Float64() * 63,
		}))
	}
	for k := 0; k+3 < 500; k += 2 {
		n := d.AddNet("", 1)
		d.Connect(ids[k], n, 0.5, 0.5)
		d.Connect(ids[k+1], n, 0.5, 0.5)
		d.Connect(ids[k+3], n, 0.5, 0.5)
	}
	cfg := DefaultConfig()
	cfg.GridW, cfg.GridH = 64, 64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Route(d, cfg)
	}
}
