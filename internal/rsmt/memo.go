package rsmt

import (
	"math"
	"sync"
	"sync/atomic"

	"puffer/internal/geom"
)

func floatBits(v float64) uint64 { return math.Float64bits(v) }

// Memo is a bounded, concurrency-safe cache over Build keyed by the exact
// pin-position sequence. Build is a pure function of its input, so a hit
// is result-transparent: it returns the identical topology the miss path
// would have constructed, and cached Tree values are never mutated in
// place by any consumer (estimators replace whole entries).
//
// The intended use is cross-trial sharing inside an exploration farm:
// every trial of one design starts from the same initial placement and
// walks an identical global-placement trajectory until its first
// strategy-dependent padding trigger, so the topologies of that shared
// prefix — the expensive full-netlist stamps — are built once per
// (design, worker) and replayed by every sibling trial.
//
// A nil *Memo is valid and degrades to plain Build.
type Memo struct {
	mu  sync.Mutex
	m   map[uint64][]memoEntry
	n   int // live entries
	cap int

	hits   atomic.Uint64
	misses atomic.Uint64
}

type memoEntry struct {
	pts  []geom.Point
	tree Tree
}

// DefaultMemoCap bounds a shared memo to roughly one large design's nets.
// Insertion simply stops at capacity: the shared-prefix topologies — the
// valuable ones — are inserted first, and later strategy-divergent
// topologies would rarely be re-hit anyway.
const DefaultMemoCap = 1 << 18

// NewMemo returns a memo bounded to cap entries (cap <= 0 uses
// DefaultMemoCap).
func NewMemo(cap int) *Memo {
	if cap <= 0 {
		cap = DefaultMemoCap
	}
	return &Memo{m: make(map[uint64][]memoEntry), cap: cap}
}

// Build returns the RSMT topology for pts, serving from the cache when the
// exact point sequence has been built before.
func (m *Memo) Build(pts []geom.Point) Tree {
	if m == nil {
		return Build(pts)
	}
	key := hashPts(pts)
	m.mu.Lock()
	for _, e := range m.m[key] {
		if samePts(e.pts, pts) {
			m.mu.Unlock()
			m.hits.Add(1)
			return e.tree
		}
	}
	m.mu.Unlock()
	m.misses.Add(1)
	tree := Build(pts)
	m.mu.Lock()
	if m.n < m.cap {
		// Re-check under the lock: a racing builder may have inserted the
		// same key while we built. Duplicates are harmless but wasteful.
		dup := false
		for _, e := range m.m[key] {
			if samePts(e.pts, pts) {
				dup = true
				break
			}
		}
		if !dup {
			cp := make([]geom.Point, len(pts))
			copy(cp, pts)
			m.m[key] = append(m.m[key], memoEntry{pts: cp, tree: tree})
			m.n++
		}
	}
	m.mu.Unlock()
	return tree
}

// Stats reports cache hits, misses, and live entries.
func (m *Memo) Stats() (hits, misses uint64, size int) {
	if m == nil {
		return 0, 0, 0
	}
	m.mu.Lock()
	size = m.n
	m.mu.Unlock()
	return m.hits.Load(), m.misses.Load(), size
}

// hashPts is FNV-1a over the raw coordinate bits. Collisions are resolved
// by exact comparison in Build, so the hash only partitions buckets.
func hashPts(pts []geom.Point) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	mix(uint64(len(pts)))
	for _, p := range pts {
		mix(floatBits(p.X))
		mix(floatBits(p.Y))
	}
	return h
}

func samePts(a, b []geom.Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		// Bit comparison: the memo key is the exact input, and distinct
		// NaN/zero encodings must not alias.
		if floatBits(a[i].X) != floatBits(b[i].X) || floatBits(a[i].Y) != floatBits(b[i].Y) {
			return false
		}
	}
	return true
}
