// Package rsmt constructs rectilinear Steiner minimal tree topologies for
// nets. It substitutes for the FLUTE lookup-table approach the paper uses
// (Sec. III-A2): the congestion estimator only consumes the resulting
// topology — a set of two-point nets whose endpoints are tagged as cell
// pins or Steiner points — so any good RSMT heuristic provides the same
// interface.
//
// The construction is exact for 2- and 3-pin nets, uses the iterated
// 1-Steiner heuristic over the Hanan grid for small nets, and falls back to
// the rectilinear minimum spanning tree (Prim) for large nets, where the
// MST is within a few percent of optimal and the cost of Steinerization is
// not justified.
package rsmt

import (
	"math"
	"sort"

	"puffer/internal/geom"
)

// Node is a topology vertex: either one of the input pins (Pin >= 0, its
// index in the input slice) or a Steiner point (Steiner true, Pin -1).
type Node struct {
	P       geom.Point
	Steiner bool
	Pin     int
}

// Edge is a two-point net between topology nodes A and B (indices into
// Tree.Nodes). An edge with equal x or y coordinates at its endpoints is
// "I"-shaped; otherwise it is "L"-shaped (paper Sec. III-A2).
type Edge struct {
	A, B int
}

// Tree is the routing topology of one net.
type Tree struct {
	Nodes []Node
	Edges []Edge
}

// Length returns the total rectilinear length of the tree.
func (t *Tree) Length() float64 {
	total := 0.0
	for _, e := range t.Edges {
		total += t.Nodes[e.A].P.ManhattanDist(t.Nodes[e.B].P)
	}
	return total
}

// Degrees returns the degree of every node.
func (t *Tree) Degrees() []int {
	deg := make([]int, len(t.Nodes))
	for _, e := range t.Edges {
		deg[e.A]++
		deg[e.B]++
	}
	return deg
}

// maxSteinerPins bounds the net size for which 1-Steiner refinement runs;
// beyond it the plain RMST is used.
const maxSteinerPins = 10

// Build constructs the RSMT topology for the given pin locations.
// Duplicate locations are handled (zero-length edges connect them).
func Build(pts []geom.Point) Tree {
	switch len(pts) {
	case 0:
		return Tree{}
	case 1:
		return Tree{Nodes: []Node{{P: pts[0], Pin: 0}}}
	case 2:
		return Tree{
			Nodes: []Node{{P: pts[0], Pin: 0}, {P: pts[1], Pin: 1}},
			Edges: []Edge{{0, 1}},
		}
	case 3:
		return buildThree(pts)
	}
	if len(pts) <= maxSteinerPins {
		return buildOneSteiner(pts)
	}
	return buildMST(pts)
}

// buildThree produces the optimal 3-pin RSMT: a Steiner point at the
// coordinate-wise median.
func buildThree(pts []geom.Point) Tree {
	xs := []float64{pts[0].X, pts[1].X, pts[2].X}
	ys := []float64{pts[0].Y, pts[1].Y, pts[2].Y}
	sort.Float64s(xs)
	sort.Float64s(ys)
	med := geom.Pt(xs[1], ys[1])

	t := Tree{Nodes: []Node{
		{P: pts[0], Pin: 0}, {P: pts[1], Pin: 1}, {P: pts[2], Pin: 2},
	}}
	// If the median coincides with a pin, connect through that pin.
	for i, p := range pts {
		if p == med {
			for j := range pts {
				if j != i {
					t.Edges = append(t.Edges, Edge{i, j})
				}
			}
			return t
		}
	}
	s := len(t.Nodes)
	t.Nodes = append(t.Nodes, Node{P: med, Steiner: true, Pin: -1})
	for i := range pts {
		t.Edges = append(t.Edges, Edge{i, s})
	}
	return t
}

// buildMST returns the rectilinear minimum spanning tree via Prim's
// algorithm, O(n²).
func buildMST(pts []geom.Point) Tree {
	t := Tree{Nodes: make([]Node, len(pts))}
	for i, p := range pts {
		t.Nodes[i] = Node{P: p, Pin: i}
	}
	t.Edges = primEdges(pts)
	return t
}

// primEdges computes MST edges over the points.
func primEdges(pts []geom.Point) []Edge {
	n := len(pts)
	if n < 2 {
		return nil
	}
	inTree := make([]bool, n)
	dist := make([]float64, n)
	parent := make([]int, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		parent[i] = -1
	}
	dist[0] = 0
	edges := make([]Edge, 0, n-1)
	for k := 0; k < n; k++ {
		best, bd := -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !inTree[i] && dist[i] < bd {
				best, bd = i, dist[i]
			}
		}
		inTree[best] = true
		if parent[best] >= 0 {
			edges = append(edges, Edge{parent[best], best})
		}
		for i := 0; i < n; i++ {
			if !inTree[i] {
				if d := pts[best].ManhattanDist(pts[i]); d < dist[i] {
					dist[i] = d
					parent[i] = best
				}
			}
		}
	}
	return edges
}

// mstLength returns the MST length over the points.
func mstLength(pts []geom.Point) float64 {
	total := 0.0
	for _, e := range primEdges(pts) {
		total += pts[e.A].ManhattanDist(pts[e.B])
	}
	return total
}

// buildOneSteiner runs the iterated 1-Steiner heuristic: repeatedly insert
// the Hanan-grid candidate that shrinks the MST the most, pruning Steiner
// points that end up with degree <= 2.
func buildOneSteiner(pts []geom.Point) Tree {
	pins := append([]geom.Point(nil), pts...)
	var steiners []geom.Point

	all := func() []geom.Point {
		return append(append([]geom.Point(nil), pins...), steiners...)
	}

	const maxInserts = 4
	for round := 0; round < maxInserts; round++ {
		cur := all()
		base := mstLength(cur)

		// Hanan grid over current node set.
		xs := uniqueCoords(cur, func(p geom.Point) float64 { return p.X })
		ys := uniqueCoords(cur, func(p geom.Point) float64 { return p.Y })

		bestGain := 1e-9
		var bestPt geom.Point
		found := false
		cand := make([]geom.Point, len(cur)+1)
		copy(cand, cur)
		for _, x := range xs {
			for _, y := range ys {
				h := geom.Pt(x, y)
				if containsPoint(cur, h) {
					continue
				}
				cand[len(cur)] = h
				if gain := base - mstLength(cand); gain > bestGain {
					bestGain = gain
					bestPt = h
					found = true
				}
			}
		}
		if !found {
			break
		}
		steiners = append(steiners, bestPt)
		steiners = pruneLowDegree(pins, steiners)
	}

	// Final topology over pins + surviving Steiner points.
	nodes := make([]Node, 0, len(pins)+len(steiners))
	for i, p := range pins {
		nodes = append(nodes, Node{P: p, Pin: i})
	}
	for _, s := range steiners {
		nodes = append(nodes, Node{P: s, Steiner: true, Pin: -1})
	}
	allPts := all()
	return Tree{Nodes: nodes, Edges: primEdges(allPts)}
}

// pruneLowDegree drops Steiner points whose degree in the MST over
// pins+steiners is <= 2 (they cannot reduce length), iterating to a fixed
// point.
func pruneLowDegree(pins, steiners []geom.Point) []geom.Point {
	for {
		cur := append(append([]geom.Point(nil), pins...), steiners...)
		deg := make([]int, len(cur))
		for _, e := range primEdges(cur) {
			deg[e.A]++
			deg[e.B]++
		}
		kept := steiners[:0]
		removed := false
		for i, s := range steiners {
			if deg[len(pins)+i] > 2 {
				kept = append(kept, s)
			} else {
				removed = true
			}
		}
		steiners = kept
		if !removed {
			return steiners
		}
	}
}

func uniqueCoords(pts []geom.Point, get func(geom.Point) float64) []float64 {
	vals := make([]float64, 0, len(pts))
	for _, p := range pts {
		vals = append(vals, get(p))
	}
	sort.Float64s(vals)
	out := vals[:0]
	for i, v := range vals {
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

func containsPoint(pts []geom.Point, q geom.Point) bool {
	for _, p := range pts {
		if p == q {
			return true
		}
	}
	return false
}
