package rsmt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"puffer/internal/geom"
)

// connected reports whether the tree spans all its nodes.
func connected(t *Tree) bool {
	n := len(t.Nodes)
	if n == 0 {
		return true
	}
	adj := make([][]int, n)
	for _, e := range t.Edges {
		adj[e.A] = append(adj[e.A], e.B)
		adj[e.B] = append(adj[e.B], e.A)
	}
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[v] {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == n
}

func bboxHalfPerimeter(pts []geom.Point) float64 {
	if len(pts) == 0 {
		return 0
	}
	minX, maxX := pts[0].X, pts[0].X
	minY, maxY := pts[0].Y, pts[0].Y
	for _, p := range pts[1:] {
		minX = math.Min(minX, p.X)
		maxX = math.Max(maxX, p.X)
		minY = math.Min(minY, p.Y)
		maxY = math.Max(maxY, p.Y)
	}
	return (maxX - minX) + (maxY - minY)
}

func TestTwoPin(t *testing.T) {
	tr := Build([]geom.Point{geom.Pt(0, 0), geom.Pt(3, 4)})
	if len(tr.Nodes) != 2 || len(tr.Edges) != 1 {
		t.Fatalf("2-pin tree: %d nodes, %d edges", len(tr.Nodes), len(tr.Edges))
	}
	if tr.Length() != 7 {
		t.Errorf("2-pin length = %v, want 7", tr.Length())
	}
}

func TestThreePinOptimal(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(4, 2), geom.Pt(2, 6)}
	tr := Build(pts)
	// Optimal 3-pin RSMT length is the bbox half-perimeter.
	if want := bboxHalfPerimeter(pts); math.Abs(tr.Length()-want) > 1e-12 {
		t.Errorf("3-pin length = %v, want %v", tr.Length(), want)
	}
	steiners := 0
	for _, n := range tr.Nodes {
		if n.Steiner {
			steiners++
			if n.P != geom.Pt(2, 2) {
				t.Errorf("Steiner at %v, want (2,2)", n.P)
			}
			if n.Pin != -1 {
				t.Errorf("Steiner node Pin = %d, want -1", n.Pin)
			}
		}
	}
	if steiners != 1 {
		t.Errorf("steiners = %d, want 1", steiners)
	}
}

func TestThreePinMedianOnPin(t *testing.T) {
	// Median point (2,2) coincides with the middle pin: no Steiner needed.
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(2, 2), geom.Pt(5, 7)}
	tr := Build(pts)
	for _, n := range tr.Nodes {
		if n.Steiner {
			t.Error("unnecessary Steiner point created")
		}
	}
	if want := bboxHalfPerimeter(pts); math.Abs(tr.Length()-want) > 1e-12 {
		t.Errorf("length = %v, want %v", tr.Length(), want)
	}
}

func TestFourPinCrossFindsSteiner(t *testing.T) {
	// Plus-shaped pins: MST length 6, optimal RSMT 4 via Steiner at (1,1).
	pts := []geom.Point{geom.Pt(1, 0), geom.Pt(0, 1), geom.Pt(2, 1), geom.Pt(1, 2)}
	tr := Build(pts)
	if math.Abs(tr.Length()-4) > 1e-12 {
		t.Errorf("cross RSMT length = %v, want 4", tr.Length())
	}
	if !connected(&tr) {
		t.Error("tree not connected")
	}
}

func TestLargeNetFallsBackToMST(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := make([]geom.Point, maxSteinerPins+5)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
	}
	tr := Build(pts)
	for _, n := range tr.Nodes {
		if n.Steiner {
			t.Fatal("large net produced Steiner nodes")
		}
	}
	if len(tr.Edges) != len(pts)-1 {
		t.Errorf("edges = %d, want %d", len(tr.Edges), len(pts)-1)
	}
	if !connected(&tr) {
		t.Error("MST not connected")
	}
}

func TestDuplicatePoints(t *testing.T) {
	pts := []geom.Point{geom.Pt(1, 1), geom.Pt(1, 1), geom.Pt(4, 4), geom.Pt(1, 1)}
	tr := Build(pts)
	if !connected(&tr) {
		t.Error("tree with duplicates not connected")
	}
	if math.Abs(tr.Length()-6) > 1e-12 {
		t.Errorf("length = %v, want 6", tr.Length())
	}
}

func TestEmptyAndSingle(t *testing.T) {
	if tr := Build(nil); len(tr.Nodes) != 0 || len(tr.Edges) != 0 {
		t.Error("empty input produced nodes")
	}
	tr := Build([]geom.Point{geom.Pt(5, 5)})
	if len(tr.Nodes) != 1 || len(tr.Edges) != 0 {
		t.Error("single pin tree wrong")
	}
}

// Properties over random nets: spanning, pin tagging, the lower bound
// length >= bbox half-perimeter, the upper bound length <= MST length,
// and no low-degree Steiner points.
func TestRandomNetProperties(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		n := 2 + int(size%12)
		rng := rand.New(rand.NewSource(seed))
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(float64(rng.Intn(50)), float64(rng.Intn(50)))
		}
		tr := Build(pts)
		if !connected(&tr) {
			t.Logf("not connected: %v", pts)
			return false
		}
		// Pins preserved in order.
		for i := 0; i < n; i++ {
			if tr.Nodes[i].Pin != i || tr.Nodes[i].P != pts[i] || tr.Nodes[i].Steiner {
				t.Logf("pin %d corrupted", i)
				return false
			}
		}
		length := tr.Length()
		if length < bboxHalfPerimeter(pts)-1e-9 {
			t.Logf("length %v below bbox bound %v", length, bboxHalfPerimeter(pts))
			return false
		}
		if mst := mstLength(pts); length > mst+1e-9 {
			t.Logf("length %v above MST %v", length, mst)
			return false
		}
		// Steiner points must have degree >= 3.
		deg := tr.Degrees()
		for i := n; i < len(tr.Nodes); i++ {
			if deg[i] <= 2 {
				t.Logf("Steiner node with degree %d", deg[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSteinerImprovesOverMSTOnAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	improved := 0
	const trials = 50
	for trial := 0; trial < trials; trial++ {
		pts := make([]geom.Point, 8)
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
		}
		tr := Build(pts)
		if tr.Length() < mstLength(pts)-1e-9 {
			improved++
		}
	}
	// The 1-Steiner heuristic should beat the plain MST on most random
	// 8-pin nets (expected improvement ~8-10%).
	if improved < trials/2 {
		t.Errorf("Steiner improved only %d/%d nets", improved, trials)
	}
}

func BenchmarkBuild8Pin(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := make([]geom.Point, 8)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Build(pts)
	}
}

func BenchmarkBuild64Pin(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	pts := make([]geom.Point, 64)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Build(pts)
	}
}
