package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"time"

	"puffer/internal/obs"
	"puffer/internal/synth"
)

// maxSpecBytes bounds a submission body (inlined Bookshelf uploads
// included) — backpressure starts at the socket.
const maxSpecBytes = 64 << 20

// Handler builds the daemon's HTTP surface:
//
//	POST   /api/v1/jobs                   submit (202; 429+Retry-After when full; 503 draining)
//	GET    /api/v1/jobs                   list job summaries
//	GET    /api/v1/jobs/{id}              manifest (durable job record)
//	GET    /api/v1/jobs/{id}/events       SSE progress stream (replay + live)
//	GET    /api/v1/jobs/{id}/result       final result (409 until done)
//	GET    /api/v1/jobs/{id}/artifacts/{name}  spooled artifact download
//	POST   /api/v1/jobs/{id}/cancel       cancel (queued or running)
//	DELETE /api/v1/jobs/{id}              alias for cancel
//	POST   /api/v1/sessions               open an ECO session (202; cold place runs async)
//	GET    /api/v1/sessions               list session summaries
//	GET    /api/v1/sessions/{id}          session manifest
//	POST   /api/v1/sessions/{id}/deltas   apply one ECO delta (synchronous warm re-place)
//	GET    /api/v1/sessions/{id}/events   SSE progress stream (replay + live)
//	DELETE /api/v1/sessions/{id}          close the session
//	GET    /healthz                       liveness (always 200 while the process serves)
//	GET    /readyz                        readiness (503 while draining / saturated / SLO burning)
//	GET    /api/v1/ops                    operational snapshot (queue, histograms, SLOs)
//	GET    /metrics, /debug/...           daemon registry (Prometheus, pprof, expvar)
//
// Every route passes through withTelemetry: request latency lands in the
// serve.http_request_seconds histogram and each request logs one
// structured line correlated with any incoming traceparent.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /api/v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /api/v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /api/v1/jobs/{id}/artifacts/{name}", s.handleArtifact)
	mux.HandleFunc("POST /api/v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("DELETE /api/v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("POST /api/v1/sessions", s.handleSessionOpen)
	mux.HandleFunc("GET /api/v1/sessions", s.handleSessionList)
	mux.HandleFunc("GET /api/v1/sessions/{id}", s.handleSessionStatus)
	mux.HandleFunc("POST /api/v1/sessions/{id}/deltas", s.handleSessionDelta)
	mux.HandleFunc("GET /api/v1/sessions/{id}/events", s.handleSessionEvents)
	mux.HandleFunc("DELETE /api/v1/sessions/{id}", s.handleSessionClose)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /api/v1/ops", s.handleOps)

	// The former cmd/puffer -debug-addr surface, folded into the daemon.
	debug := obs.NewDebugMux(s.reg)
	mux.Handle("/debug/", debug)
	mux.Handle("/metrics", debug)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "pufferd placement job service\n\n/api/v1/jobs\n/api/v1/ops\n/healthz\n/readyz\n/metrics\n/debug/pprof/\n/debug/vars\n")
	})
	return s.withTelemetry(mux)
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// apiError is the uniform error body.
func apiError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		apiError(w, http.StatusServiceUnavailable, "daemon is draining; not admitting jobs")
		return
	}
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		apiError(w, http.StatusBadRequest, "decode job spec: %v", err)
		return
	}
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		apiError(w, http.StatusBadRequest, "invalid job spec: %v", err)
		return
	}
	if spec.Distributed {
		apiError(w, http.StatusBadRequest,
			"distributed exploration requires a fleet coordinator; this is a worker daemon")
		return
	}
	if spec.Profile != "" {
		if _, err := synth.ProfileByName(spec.Profile); err != nil {
			apiError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}

	m := &Manifest{
		ID:          newJobID(),
		Spec:        spec,
		State:       StateQueued,
		SubmittedAt: time.Now().UTC(),
	}
	// Persist a valid incoming trace context with the job: the worker that
	// eventually claims it (possibly after a daemon restart) adopts it, so
	// the pipeline's span tree joins the submitting client's trace.
	if tp := r.Header.Get(obs.TraceparentHeader); tp != "" {
		if _, err := obs.ParseTraceparent(tp); err == nil {
			m.TraceParent = tp
		}
	}
	if err := s.spool.CreateJob(m); err != nil {
		apiError(w, http.StatusInternalServerError, "spool job: %v", err)
		return
	}
	s.ensureJob(m.ID)
	if err := s.queue.TryPush(m.ID); err != nil {
		os.RemoveAll(s.spool.JobDir(m.ID))
		s.mu.Lock()
		delete(s.jobs, m.ID)
		s.mu.Unlock()
		if errors.Is(err, ErrQueueFull) {
			s.reg.Counter("serve.jobs_rejected").Inc()
			retry := s.queue.RetryAfter(s.cfg.Workers)
			w.Header().Set("Retry-After", strconv.Itoa(int(retry.Seconds())))
			apiError(w, http.StatusTooManyRequests,
				"queue full (%d/%d); retry in %s", s.queue.Len(), s.queue.Cap(), retry)
			return
		}
		apiError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	s.reg.Counter("serve.jobs_submitted").Inc()
	s.reg.Gauge("serve.queue_depth").Set(float64(s.queue.Len()))
	s.log.InfoContext(r.Context(), "job queued", "job", m.ID, "kind", spec.Kind)
	writeJSON(w, http.StatusAccepted, m)
}

// jobSummary is one row of the list endpoint.
type jobSummary struct {
	ID          string     `json:"id"`
	Kind        string     `json:"kind"`
	Design      string     `json:"design"`
	State       JobState   `json:"state"`
	Stage       string     `json:"stage,omitempty"`
	Attempts    int        `json:"attempts"`
	SubmittedAt time.Time  `json:"submitted_at"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
	HPWL        float64    `json:"hpwl,omitempty"`
	Error       string     `json:"error,omitempty"`
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	ms, err := s.spool.List()
	if err != nil {
		apiError(w, http.StatusInternalServerError, "list spool: %v", err)
		return
	}
	out := make([]jobSummary, 0, len(ms))
	for _, m := range ms {
		design := m.Spec.Profile
		if design == "" {
			design = m.Spec.AuxName()
		}
		row := jobSummary{
			ID: m.ID, Kind: m.Spec.Kind, Design: design, State: m.State,
			Stage: m.Stage, Attempts: m.Attempts,
			SubmittedAt: m.SubmittedAt, FinishedAt: m.FinishedAt, Error: m.Error,
		}
		if m.Result != nil {
			row.HPWL = m.Result.HPWL
		}
		out = append(out, row)
	}
	writeJSON(w, http.StatusOK, out)
}

// loadManifest fetches the manifest for the path's {id}, writing the 404.
func (s *Server) loadManifest(w http.ResponseWriter, r *http.Request) *Manifest {
	id := r.PathValue("id")
	m, err := s.spool.ReadManifest(id)
	if err != nil {
		apiError(w, http.StatusNotFound, "job %s: %v", id, err)
		return nil
	}
	return m
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if m := s.loadManifest(w, r); m != nil {
		writeJSON(w, http.StatusOK, m)
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	m := s.loadManifest(w, r)
	if m == nil {
		return
	}
	if m.State != StateDone {
		apiError(w, http.StatusConflict, "job %s is %s, not done", m.ID, m.State)
		return
	}
	writeJSON(w, http.StatusOK, m.Result)
}

func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	m := s.loadManifest(w, r)
	if m == nil {
		return
	}
	path, err := s.spool.ArtifactPath(m.ID, r.PathValue("name"))
	if err != nil {
		apiError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if st, serr := os.Stat(path); serr != nil || st.IsDir() {
		apiError(w, http.StatusNotFound, "job %s has no artifact %q", m.ID, r.PathValue("name"))
		return
	}
	http.ServeFile(w, r, path)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	m := s.loadManifest(w, r)
	if m == nil {
		return
	}
	if m.State.Terminal() {
		apiError(w, http.StatusConflict, "job %s already %s", m.ID, m.State)
		return
	}
	// Queued (or parked) jobs cancel durably in the spool; running jobs
	// cancel through their context and the worker records the state.
	switch m.State {
	case StateQueued, StateParked:
		now := time.Now()
		updated, err := s.spool.Update(m.ID, func(mm *Manifest) error {
			if mm.State == StateRunning { // raced with a worker claim
				return nil
			}
			mm.State = StateCanceled
			mm.Error = errJobCanceled.Error()
			mm.FinishedAt = &now
			return nil
		})
		if err != nil {
			apiError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		m = updated
		if m.State == StateCanceled {
			s.reg.Counter("serve.jobs_canceled").Inc()
			if a, ok := s.jobRuntime(m.ID); ok {
				a.hub.Publish(Event{Type: "state", State: StateCanceled, Error: m.Error})
				a.hub.Close()
			}
			// The job never reached a worker, so no runJob call will retire
			// it; enroll the hub in retention here or it leaks forever.
			s.retireJob(m.ID)
			writeJSON(w, http.StatusOK, m)
			return
		}
		fallthrough
	case StateRunning:
		if a, ok := s.jobRuntime(m.ID); ok {
			s.mu.Lock()
			cancel := a.cancel
			s.mu.Unlock()
			if cancel != nil {
				cancel(errJobCanceled)
			}
		}
		writeJSON(w, http.StatusAccepted, map[string]string{"id": m.ID, "state": "canceling"})
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	status := "serving"
	if s.Draining() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      status,
		"queue_depth": s.queue.Len(),
		"queue_cap":   s.queue.Cap(),
		"workers":     s.cfg.Workers,
		"active_jobs": s.activeCount(),
	})
}

// handleEvents streams the job's progress as server-sent events: the
// retained replay first, then live events until the job finishes or the
// client disconnects. Terminal jobs with no retained hub get a single
// synthetic state event so `pufferctl watch` always terminates.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	m := s.loadManifest(w, r)
	if m == nil {
		return
	}
	var hub *Hub
	if a, ok := s.jobRuntime(m.ID); ok {
		hub = a.hub
	}
	s.streamHub(w, r, hub, Event{Type: "state", State: m.State, Error: m.Error})
}

// streamHub writes an SSE stream from hub: the retained replay first, then
// live events until the stream closes or the client disconnects. A nil hub
// (no runtime this boot, or retention expired) gets the single synthetic
// fallback event so watchers always terminate. Each live write+flush is
// timed into serve.sse_fanout_seconds — the latency a watcher sees between
// an event being published and reaching its socket buffer.
func (s *Server) streamHub(w http.ResponseWriter, r *http.Request, hub *Hub, fallback Event) {
	fl, ok := w.(http.Flusher)
	if !ok {
		apiError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	writeEvent := func(e Event) {
		data, _ := json.Marshal(e)
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.Type, data)
	}

	if hub == nil {
		writeEvent(fallback)
		fl.Flush()
		return
	}
	replay, live, cancel := hub.Subscribe()
	defer cancel()
	for _, e := range replay {
		writeEvent(e)
	}
	fl.Flush()
	for {
		select {
		case e, open := <-live:
			if !open {
				return
			}
			t0 := time.Now()
			writeEvent(e)
			fl.Flush()
			s.hSSE.ObserveSince(t0)
		case <-r.Context().Done():
			return
		}
	}
}
