package serve

import (
	"sync"

	"puffer/internal/cas"
	"puffer/internal/netlist"
	"puffer/internal/rsmt"
)

// designEntry is the expensive per-design state shared by every job
// touching one design on this worker: the pristine parsed/generated
// netlist (jobs run on clones) and a memo of RSMT topologies keyed by
// exact pin positions. Exploration trials of one design all start from
// the same initial placement and walk identical global-placement
// trajectories until their first strategy-dependent divergence, so the
// memo turns that shared prefix's full-netlist topology stamps into
// lookups.
type designEntry struct {
	base *netlist.Design
	topo *rsmt.Memo
}

// designCache bounds how many designs keep their parsed state resident.
// Keys are content addresses (upload blob digests or profile identities),
// so a hit is always the byte-identical design.
type designCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*designEntry
	order   []string // insertion order; oldest evicts first
}

// designCacheCap is how many designs a worker keeps warm. Exploration
// traffic concentrates on one design per farm; a handful covers mixed
// workloads without holding every historical netlist alive.
const designCacheCap = 4

func newDesignCache() *designCache {
	return &designCache{cap: designCacheCap, entries: map[string]*designEntry{}}
}

// lookup returns the entry for key, or nil.
func (c *designCache) lookup(key string) *designEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.entries[key]
}

// insert stores the entry, evicting the oldest design at capacity. A
// racing insert of the same key keeps the first entry (its memo may
// already be warm).
func (c *designCache) insert(key string, e *designEntry) *designEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.entries[key]; ok {
		return prev
	}
	for len(c.order) >= c.cap {
		old := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, old)
	}
	c.entries[key] = e
	c.order = append(c.order, key)
	return e
}

// designKey returns the content address under which a job's design may be
// cached ("" = uncacheable). Coordinator-dispatched jobs carry the design
// digest in the manifest; standalone profile jobs derive the same identity
// locally. Standalone uploads have no digest without re-encoding the
// files, so they skip the cache.
func designKey(m *Manifest) string {
	if m.DesignDigest != "" {
		return m.DesignDigest
	}
	if m.Spec.Profile != "" {
		return string(cas.ProfileDesignDigest(m.Spec.Profile, m.Spec.Scale, m.Spec.Seed))
	}
	return ""
}
